// Text pipeline demo: run the full ADCNN workflow on the CharCNN text
// classifier — train the original model on synthetic keyword data,
// progressively retrain it for a 1-D FDSP partition with compression
// (Algorithm 1), then serve classifications from a distributed cluster
// of in-process Conv nodes.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"adcnn/internal/core"
	"adcnn/internal/dataset"
	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/trainer"
)

func main() {
	cfg := models.CharCNNSim()
	data := dataset.Text(256, cfg.Classes, cfg.InputC, cfg.InputH, 11)
	train, test := data.Split(192)

	// Train the original CharCNN.
	ori, err := models.Build(cfg, models.Options{}, 3)
	if err != nil {
		log.Fatal(err)
	}
	tr := trainer.New(trainer.Params{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4, BatchSize: 16, Seed: 3})
	tr.Train(ori, train, 10)
	origAcc := trainer.Evaluate(ori, test, 16)
	fmt.Printf("original CharCNN accuracy: %.3f\n", origAcc)

	// Progressive retraining for an 8-segment 1-D partition + 4-bit
	// compression (Algorithm 1).
	lo, hi := trainer.SuggestClipBounds(ori, train, 8, 0.6, 0.995)
	pc := trainer.ProgressiveConfig{
		Target: models.Options{
			Grid:   fdsp.Grid{Rows: 8, Cols: 1}, // 1-D: 8 sequence segments
			ClipLo: lo, ClipHi: hi, QuantBits: 4,
		},
		Tolerance:         0.03,
		MaxEpochsPerStage: 6,
		Seed:              4,
	}
	res, err := trainer.ProgressiveRetrain(tr, cfg, ori, train, test, pc)
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range res.Stages {
		fmt.Printf("  stage %-14s %d epochs -> accuracy %.3f\n", st.Name, st.Epochs, st.Metric)
	}

	// Serve the retrained model from 4 distributed Conv nodes.
	m := res.Final
	conns := make([]core.Conn, 4)
	var wg sync.WaitGroup
	for i := range conns {
		a, b := core.Pipe()
		conns[i] = a
		w := core.NewWorker(i+1, m)
		wg.Add(1)
		go func() { defer wg.Done(); _ = w.Serve(context.Background(), b) }()
	}
	central, err := core.NewCentral(m, conns, 5*time.Second, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { central.Shutdown(); wg.Wait() }()

	correct, total := 0, 16
	for i := 0; i < total; i++ {
		x, labels := test.Batch(i, 1)
		out, st, err := central.Infer(x)
		if err != nil {
			log.Fatal(err)
		}
		pred := out.ArgMax()
		if pred == labels[0] {
			correct++
		}
		if i < 4 {
			fmt.Printf("  text %d: predicted class %d (true %d), latency %v, wire %d B\n",
				i, pred, labels[0], st.Latency.Round(time.Microsecond), st.WireBytes)
		}
	}
	fmt.Printf("distributed text classification: %d/%d correct (local model: %.3f)\n",
		correct, total, res.FinalMetric())
}

// Heterogeneous-cluster demo: reproduce the paper's Figure 15 scenario —
// a steady 8-node VGG16 deployment whose nodes 5-8 suddenly lose 55-76%
// of their CPU — and watch Algorithms 2+3 rebalance the tile allocation.
package main

import (
	"fmt"
	"log"

	"adcnn/internal/cluster"
	"adcnn/internal/experiments"
	"adcnn/internal/models"
)

func main() {
	opts := experiments.DefaultSimOptions()
	sim, _, _, err := experiments.NewADCNNSim(models.VGG16(), opts)
	if err != nil {
		log.Fatal(err)
	}

	const images = 50
	const degradeAt = 25
	events := []cluster.ThrottleEvent{
		{Image: degradeAt, DeviceID: 5, Fraction: 0.45}, // -55% CPU
		{Image: degradeAt, DeviceID: 6, Fraction: 0.45},
		{Image: degradeAt, DeviceID: 7, Fraction: 0.24}, // -76% CPU
		{Image: degradeAt, DeviceID: 8, Fraction: 0.24},
	}

	fmt.Println("processing 50 VGG16 images; nodes 5-8 degrade at image 25 (CPUlimit style)")
	fmt.Printf("%-6s %-12s %s\n", "image", "latency", "tiles per node")
	results := sim.RunImages(images, events)
	for i, r := range results {
		marker := ""
		if i == degradeAt {
			marker = "   <-- nodes 5,6 -55% CPU; nodes 7,8 -76% CPU"
		}
		if i%5 == 0 || i == degradeAt || i == degradeAt+1 {
			fmt.Printf("%-6d %-12v %v%s\n", i, r.Latency.Round(1e6), r.Alloc, marker)
		}
	}
	fmt.Printf("\nsummary: steady %.0f ms -> spike %.0f ms -> settled %.0f ms\n",
		msf(results[degradeAt-1].Latency), msf(results[degradeAt].Latency),
		msf(results[images-1].Latency))
	fmt.Printf("tile shares: before %v  after adaptation %v\n",
		results[degradeAt-1].Alloc, results[images-1].Alloc)
}

func msf(d interface{ Milliseconds() int64 }) float64 { return float64(d.Milliseconds()) }

// Quickstart: partition a CNN with FDSP, run it distributed across four
// in-process Conv-node workers, and check the result against local
// execution — the smallest end-to-end tour of the ADCNN public pieces.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"adcnn/internal/core"
	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/tensor"
)

func main() {
	// 1. Build a VGG-style model partitioned 4×4, with the paper's
	//    communication reduction (clipped ReLU + 4-bit quantization).
	cfg := models.VGGSim()
	opt := models.Options{
		Grid:   fdsp.Grid{Rows: 4, Cols: 4},
		ClipLo: 0.05, ClipHi: 2.5, QuantBits: 4,
	}
	m, err := models.Build(cfg, opt, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %s: %d parameters, separable prefix %d of %d blocks, grid %s\n",
		cfg.Name, m.ParamCount(), cfg.Separable, len(cfg.Blocks), opt.Grid)

	// 2. Start four Conv-node workers connected by in-process pipes.
	const workers = 4
	conns := make([]core.Conn, workers)
	var wg sync.WaitGroup
	for i := range conns {
		a, b := core.Pipe()
		conns[i] = a
		w := core.NewWorker(i+1, m)
		wg.Add(1)
		go func() { defer wg.Done(); _ = w.Serve(context.Background(), b) }()
	}

	// 3. Create the Central node (statistics decay γ=0.9, deadline 5s).
	central, err := core.NewCentral(m, conns, 5*time.Second, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { central.Shutdown(); wg.Wait() }()

	// 4. Run a few images through the distributed pipeline.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3; i++ {
		x := tensor.New(1, cfg.InputC, cfg.InputH, cfg.InputW)
		x.RandN(rng, 1)

		out, st, err := central.Infer(x)
		if err != nil {
			log.Fatal(err)
		}
		want := m.Net.Forward(x, false)
		match := out.Equal(want, 1e-4)
		fmt.Printf("image %d: class %d, latency %v, tiles/node %v, wire %d B, matches local: %v\n",
			i, out.ArgMax(), st.Latency.Round(time.Microsecond), st.Alloc, st.WireBytes, match)
		if !match {
			log.Fatal("distributed result diverged from local execution")
		}
	}
	fmt.Println("distributed FDSP inference verified against local execution ✓")
}

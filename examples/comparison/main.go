// Comparison demo: put ADCNN side by side with every baseline the paper
// evaluates — single device, remote cloud, Neurosurgeon and AOFL — on
// the three Figure 14 models, using the calibrated edge testbed models.
package main

import (
	"fmt"
	"log"

	"adcnn/internal/baseline"
	"adcnn/internal/experiments"
	"adcnn/internal/models"
	"adcnn/internal/perfmodel"
)

func main() {
	opts := experiments.DefaultSimOptions()
	fmt.Println("edge testbed: 8 Conv nodes + 1 Central (Raspberry-Pi class), 87.72 Mbps WiFi;")
	fmt.Println("cloud: EC2 p3.2xlarge class behind a 61.30 Mbps WAN")
	fmt.Printf("\n%-10s %12s %12s %12s %14s %10s\n",
		"model", "ADCNN", "single-dev", "rem-cloud", "neurosurgeon", "AOFL")

	for _, cfg := range []models.Config{models.YOLO(), models.VGG16(), models.ResNet34()} {
		sim, _, _, err := experiments.NewADCNNSim(cfg, opts)
		if err != nil {
			log.Fatal(err)
		}
		adcnn, _, _ := experiments.MeasureLatency(sim, 30)
		single := baseline.SingleDevice(cfg, perfmodel.RaspberryPi())
		cloud := baseline.RemoteCloud(cfg, perfmodel.CloudServer(), perfmodel.WAN())
		ns := baseline.Neurosurgeon(cfg, perfmodel.RaspberryPi(), perfmodel.CloudServer(), perfmodel.WAN())
		aofl := baseline.AOFL(cfg, experiments.AOFLGrid(cfg.Name, opts.Nodes), opts.Nodes,
			perfmodel.RaspberryPi(), opts.Link)

		fmt.Printf("%-10s %10.1fms %10.1fms %10.1fms %12.1fms %8.1fms\n",
			cfg.Name, adcnn,
			float64(single.Total().Milliseconds()),
			float64(cloud.Total().Milliseconds()),
			float64(ns.Total().Milliseconds()),
			float64(aofl.Total().Milliseconds()))
		fmt.Printf("%-10s neurosurgeon split=%d, AOFL fused %d blocks (halo overhead %.0f%%)\n",
			"", ns.SplitAfter, aofl.FusedBlocks, 100*aofl.ComputeOverhead)
	}
	fmt.Println("\nshape check (paper Figure 14): ADCNN < AOFL < Neurosurgeon per model")
}

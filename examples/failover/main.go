// Failover demo: run distributed inference on a live in-process cluster,
// kill a Conv node mid-stream, and watch the Central node reroute tiles
// to the survivors without stopping the stream — the runtime half of the
// paper's fault-tolerance story.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"adcnn/internal/core"
	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/tensor"
)

func main() {
	cfg := models.VGGSim()
	m, err := models.Build(cfg, models.Options{Grid: fdsp.Grid{Rows: 4, Cols: 4}}, 42)
	if err != nil {
		log.Fatal(err)
	}

	const workers = 4
	conns := make([]core.Conn, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		a, b := core.Pipe()
		conns[i] = a
		w := core.NewWorker(i+1, m)
		wg.Add(1)
		go func() { defer wg.Done(); _ = w.Serve(context.Background(), b) }()
	}
	central, err := core.NewCentral(m, conns, 2*time.Second, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { central.Shutdown(); wg.Wait() }()

	rng := rand.New(rand.NewSource(5))
	x := tensor.New(1, cfg.InputC, cfg.InputH, cfg.InputW)
	x.RandN(rng, 1)
	want := m.Net.Forward(x, false).ArgMax()

	fmt.Println("streaming images through a 4-node cluster; node 3 dies after image 2")
	for i := 0; i < 6; i++ {
		if i == 3 {
			conns[2].Close()
			fmt.Println("  *** node 3 connection lost ***")
		}
		out, st, err := central.Infer(x)
		if err != nil {
			log.Fatalf("image %d: %v", i, err)
		}
		ok := "exact"
		if st.TilesMissed > 0 {
			ok = fmt.Sprintf("%d tiles zero-filled (deadline)", st.TilesMissed)
		} else if out.ArgMax() != want {
			ok = "WRONG"
		}
		fmt.Printf("  image %d: alloc %v  -> %s\n", i, st.Alloc, ok)
	}
	fmt.Println("cluster kept serving with the remaining 3 nodes ✓")
}

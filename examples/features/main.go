// Features demo: reproduce the paper's Figure 2(d) feature-interpretation
// experiment — train a small CNN, then for several layer-block depths
// save an image grid of the input fragments that excite a filter most.
// Early blocks surface tiny texture fragments; deeper blocks large,
// layout-scale ones. Output: /tmp/adcnn-features-block{1,3,5,7}.pgm.
package main

import (
	"fmt"
	"log"
	"os"

	"adcnn/internal/dataset"
	"adcnn/internal/models"
	"adcnn/internal/trainer"
	"adcnn/internal/viz"
)

func main() {
	cfg := models.VGGSim()
	data := dataset.Classification(160, cfg.Classes, cfg.InputC, cfg.InputH, cfg.InputW, 0.15, 9)
	train, _ := data.Split(128)

	m, err := models.Build(cfg, models.Options{}, 9)
	if err != nil {
		log.Fatal(err)
	}
	tr := trainer.New(trainer.Params{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4, BatchSize: 16, Seed: 9})
	tr.Train(m, train, 8)
	fmt.Println("trained; extracting top-activating fragments per depth")

	for _, block := range []int{1, 3, 5, 7} {
		patches, err := viz.TopPatches(m, train, block, 0, 9, 64)
		if err != nil {
			log.Fatal(err)
		}
		grid := viz.PatchGrid(patches, 3)
		path := fmt.Sprintf("/tmp/adcnn-features-block%d.pgm", block)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := viz.WritePGM(f, grid); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("block %d: fragment size %2dx%-2d px, strongest response %.2f -> %s\n",
			block, patches[0].Size, patches[0].Size, patches[0].Response, path)
	}
	fmt.Println("deeper blocks respond to larger input fragments — the Section 2.3 observation behind FDSP")
}

// Command adcnn-train runs the full ADCNN model-preparation pipeline
// (paper Sections 4-5) on a sim-scale model and synthetic data:
//
//  1. train the original model,
//  2. progressively retrain it for FDSP, clipped ReLU and quantization
//     (Algorithm 1),
//  3. report per-stage epochs and metrics,
//  4. optionally save the final weights for the adcnn-central /
//     adcnn-conv binaries.
//
// Usage:
//
//	adcnn-train -model vgg-sim -grid 4x4 -out weights.bin
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"adcnn/internal/cliutil"
	"adcnn/internal/dataset"
	"adcnn/internal/models"
	"adcnn/internal/trainer"
)

func main() {
	model := flag.String("model", "vgg-sim", "model short name")
	grid := flag.String("grid", "4x4", "FDSP partition")
	samples := flag.Int("samples", 256, "synthetic dataset size")
	origEpochs := flag.Int("orig-epochs", 15, "epochs for the original model")
	stageEpochs := flag.Int("stage-epochs", 8, "max epochs per retraining stage")
	quant := flag.Int("quant", 4, "quantization bits")
	tolerance := flag.Float64("tolerance", 0.02, "allowed metric drop")
	seed := flag.Int64("seed", 42, "seed")
	out := flag.String("out", "", "write final weights snapshot here")
	flag.Parse()

	cfg, err := cliutil.SimConfigByName(*model)
	if err != nil {
		log.Fatal(err)
	}
	g, err := cliutil.ParseGrid(*grid)
	if err != nil {
		log.Fatal(err)
	}

	data, err := buildSet(cfg, *samples, *seed)
	if err != nil {
		log.Fatal(err)
	}
	train, test := data.Split(*samples * 3 / 4)

	fmt.Printf("training original %s on %d synthetic samples (%s)\n", cfg.Name, train.Len(), cfg.Task)
	ori, err := models.Build(cfg, models.Options{}, *seed)
	if err != nil {
		log.Fatal(err)
	}
	tr := trainer.New(trainer.Params{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4, BatchSize: 16, Seed: *seed})
	losses := tr.Train(ori, train, *origEpochs)
	origMetric := trainer.Evaluate(ori, test, 16)
	fmt.Printf("original: final loss %.4f, test metric %.3f\n", losses[len(losses)-1], origMetric)

	lo, hi := trainer.SuggestClipBounds(ori, train, 8, 0.6, 0.995)
	fmt.Printf("clipped-ReLU bounds from activation statistics: [%.3f, %.3f]\n", lo, hi)

	pc := trainer.ProgressiveConfig{
		Target:            models.Options{Grid: g, ClipLo: lo, ClipHi: hi, QuantBits: *quant},
		Tolerance:         *tolerance,
		MaxEpochsPerStage: *stageEpochs,
		Seed:              *seed + 7,
	}
	res, err := trainer.ProgressiveRetrain(tr, cfg, ori, train, test, pc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprogressive retraining (Algorithm 1):\n")
	for _, st := range res.Stages {
		fmt.Printf("  %-14s %2d epochs -> metric %.3f\n", st.Name, st.Epochs, st.Metric)
	}
	fmt.Printf("  total %d epochs; original %.3f -> final %.3f (drop %.1f%%)\n",
		res.TotalEpochs(), origMetric, res.FinalMetric(), 100*(origMetric-res.FinalMetric()))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Final.Net.SaveParams(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("saved final weights to %s (use with adcnn-central/-conv: -grid %s -clip-lo %.4f -clip-hi %.4f -quant %d)\n",
			*out, *grid, lo, hi, *quant)
	}
}

func buildSet(cfg models.Config, n int, seed int64) (*dataset.Set, error) {
	switch cfg.Task {
	case models.TaskClassify:
		return dataset.Classification(n, cfg.Classes, cfg.InputC, cfg.InputH, cfg.InputW, 0.15, seed), nil
	case models.TaskSegment:
		return dataset.Segmentation(n, cfg.Classes, cfg.InputC, cfg.InputH, cfg.InputW, seed), nil
	case models.TaskDetect:
		dh, dw := cfg.TotalDownsample()
		return dataset.Cells(n, cfg.Classes, cfg.InputC, cfg.InputH, cfg.InputW, cfg.InputH/dh, cfg.InputW/dw, seed), nil
	case models.TaskText:
		return dataset.Text(n, cfg.Classes, cfg.InputC, cfg.InputH, seed), nil
	}
	return nil, fmt.Errorf("unknown task")
}

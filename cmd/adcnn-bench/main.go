// Command adcnn-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	adcnn-bench -exp all            # everything (accuracy experiments train models; minutes)
//	adcnn-bench -exp fig11          # one experiment
//	adcnn-bench -exp accuracy -quick
//
// Experiments: fig3, accuracy (= fig10 + table1 + table2), fig11,
// table3, fig12, fig13, fig14, fig15, stream, slo, chaos, cluster, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"adcnn/internal/compress/codecbench"
	"adcnn/internal/core"
	"adcnn/internal/experiments"
	"adcnn/internal/models"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor/kernelbench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (kernels|compress|fig3|fig9|accuracy|fig11|table3|fig12|fig13|fig14|fig15|stream|slo|chaos|cluster|partition|locality|failure|all)")
	images := flag.Int("images", 50, "images per latency measurement")
	quick := flag.Bool("quick", false, "small accuracy setup (fast, one model)")
	seed := flag.Int64("seed", 1, "random seed")
	kernelsOut := flag.String("kernels-out", "BENCH_kernels.json", "output path for the kernel microbenchmark report (-exp kernels)")
	int8Gate := flag.Float64("int8-gate", 0, "fail if the minimum whole-layer int8/f32 forward ratio falls below this floor (-exp kernels; 0 disables)")
	compressOut := flag.String("compress-out", "BENCH_compress.json", "output path for the boundary-codec microbenchmark report (-exp compress)")
	streamOut := flag.String("stream-out", "BENCH_stream.json", "output path for the live-stream telemetry-overhead report (-exp stream)")
	sloOut := flag.String("slo-out", "BENCH_slo.json", "output path for the SLO slow-node detection report (-exp slo)")
	chaosOut := flag.String("chaos-out", "BENCH_chaos.json", "output path for the chaos drill report (-exp chaos)")
	clusterOut := flag.String("cluster-out", "BENCH_cluster.json", "output path for the multi-replica control-plane report (-exp cluster)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON timeline from the traced experiments (fig9, stream) to this file")
	flag.Parse()

	w := os.Stdout
	opts := experiments.DefaultSimOptions()
	opts.Seed = *seed

	var trace *telemetry.Trace
	if *tracePath != "" {
		trace = telemetry.NewTrace()
		defer func() {
			if err := trace.WriteFile(*tracePath); err != nil {
				fmt.Fprintf(os.Stderr, "write trace: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(w, "wrote %s (%d events)\n", *tracePath, trace.Len())
		}()
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Fprintf(w, "\n==== %s ====\n", strings.ToUpper(name))
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}

	// The kernel suite is deliberately not part of -exp all: it pins
	// GOMAXPROCS while calibrating and takes ~a minute on its own.
	if *exp == "kernels" {
		rep := kernelbench.Run()
		rep.WriteText(w)
		if err := rep.WriteJSON(*kernelsOut); err != nil {
			fmt.Fprintf(os.Stderr, "kernels: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "\nwrote %s\n", *kernelsOut)
		if *int8Gate > 0 {
			ratio := rep.MinInt8WholeLayerRatio()
			if ratio < *int8Gate {
				fmt.Fprintf(os.Stderr, "kernels: int8 whole-layer ratio %.3fx below gate %.3fx\n", ratio, *int8Gate)
				os.Exit(1)
			}
			fmt.Fprintf(w, "int8 whole-layer gate: min ratio %.3fx >= %.3fx\n", ratio, *int8Gate)
		}
		return
	}

	// Likewise for the boundary-codec suite: it measures the fused
	// encoder/decoder against the retained scalar reference.
	if *exp == "compress" {
		rep := codecbench.Run()
		rep.WriteText(w)
		if err := rep.WriteJSON(*compressOut); err != nil {
			fmt.Fprintf(os.Stderr, "compress: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "\nwrote %s\n", *compressOut)
		return
	}

	run("fig3", func() error {
		experiments.Figure3().WriteText(w)
		return nil
	})
	run("fig9", func() error {
		sim, _, _, err := experiments.NewADCNNSim(models.VGG16(), opts)
		if err != nil {
			return err
		}
		sim.SetTrace(trace)
		r := sim.RunImage()
		core.TimelineFor(r).WriteText(w, 64)
		return nil
	})
	run("accuracy", func() error {
		setup := experiments.FullAccuracySetup()
		if *quick {
			setup = experiments.QuickAccuracySetup()
		}
		setup.Seed = *seed
		res, err := experiments.RunAccuracy(setup)
		if err != nil {
			return err
		}
		res.WriteText(w)
		return nil
	})
	run("fig11", func() error {
		res, err := experiments.Figure11(*images, opts)
		if err != nil {
			return err
		}
		res.WriteText(w)
		return nil
	})
	run("table3", func() error {
		res, err := experiments.Table3(opts)
		if err != nil {
			return err
		}
		res.WriteText(w)
		return nil
	})
	run("fig12", func() error {
		res, err := experiments.Figure12(*images, *seed)
		if err != nil {
			return err
		}
		res.WriteText(w)
		return nil
	})
	run("fig13", func() error {
		res, err := experiments.Figure13(*images, opts)
		if err != nil {
			return err
		}
		res.WriteText(w)
		return nil
	})
	run("fig14", func() error {
		res, err := experiments.Figure14(*images, opts)
		if err != nil {
			return err
		}
		res.WriteText(w)
		return nil
	})
	run("fig15", func() error {
		res, err := experiments.Figure15(*images, opts)
		if err != nil {
			return err
		}
		res.WriteText(w)
		return nil
	})
	run("stream", func() error {
		res, err := experiments.Throughput(*images, opts)
		if err != nil {
			return err
		}
		res.WriteText(w)
		// Live-runtime half: pin the telemetry instrumentation overhead
		// on the real hot path and persist it for cross-PR tracking.
		rep, err := experiments.StreamBench(*images, trace)
		if err != nil {
			return err
		}
		rep.WriteText(w)
		if err := rep.WriteJSON(*streamOut); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *streamOut)
		return nil
	})
	run("slo", func() error {
		// Gray-failure drill: inject a slow node into a live cluster and
		// measure how fast the burn-rate SLO engine detects it, whether
		// the health scorer blames the right node, and how fast the
		// breach clears after recovery.
		rep, err := experiments.SLOBench(experiments.SLOBenchConfig{})
		if err != nil {
			return err
		}
		rep.WriteText(w)
		if err := rep.WriteJSON(*sloOut); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *sloOut)
		return nil
	})
	run("chaos", func() error {
		// Scripted fault schedule against the live TCP runtime: node
		// crash/restart, bandwidth collapse, clock skew, and a slow-node
		// gray failure, each asserting the telemetry stack saw what
		// happened (link estimates, audit attribution, breach + blame,
		// recovery).
		rep, err := experiments.ChaosBench(experiments.ChaosBenchConfig{})
		if err != nil {
			return err
		}
		rep.WriteText(w)
		if err := rep.WriteJSON(*chaosOut); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *chaosOut)
		if !rep.Pass {
			return fmt.Errorf("drill assertions failed (see %s)", *chaosOut)
		}
		return nil
	})
	run("cluster", func() error {
		// Control-plane sharding: single vs dual Central replica
		// throughput over one shared live-TCP Conv pool, plus the 3:1
		// origin-imbalance work-stealing pass.
		rep, err := experiments.ClusterBench(*images * 4)
		if err != nil {
			return err
		}
		rep.WriteText(w)
		if err := rep.WriteJSON(*clusterOut); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *clusterOut)
		return nil
	})
	run("locality", func() error {
		setup := experiments.QuickAccuracySetup()
		setup.Seed = *seed
		res, err := experiments.FeatureLocality(setup)
		if err != nil {
			return err
		}
		res.WriteText(w)
		return nil
	})
	run("partition", func() error {
		setup := experiments.QuickAccuracySetup()
		setup.Seed = *seed
		res, err := experiments.ComparePartitioning(setup)
		if err != nil {
			return err
		}
		res.WriteText(w)
		return nil
	})
	run("failure", func() error {
		setup := experiments.QuickAccuracySetup()
		setup.Seed = *seed
		res, err := experiments.FailureSweep(setup, 4)
		if err != nil {
			return err
		}
		res.WriteText(w)
		return nil
	})
}

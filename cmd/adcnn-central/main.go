// Command adcnn-central runs the ADCNN Central node over TCP: it builds
// the model (same seed as the Conv nodes so weights match, or loads a
// shared snapshot), connects to the Conv nodes, streams synthetic input
// images through the distributed pipeline, and reports per-image latency,
// tile allocation, and agreement with local execution.
//
// Usage:
//
//	adcnn-central -nodes 127.0.0.1:9001,127.0.0.1:9002 -model vgg-sim -grid 4x4 -images 10
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"adcnn/internal/cliutil"
	"adcnn/internal/compress"
	"adcnn/internal/core"
	"adcnn/internal/dataset"
	"adcnn/internal/models"
	"adcnn/internal/sched"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

// disableZero maps a zero flag value to −1, the "objective disabled"
// sentinel of core.SLOConfig (whose own zero means "use the default").
func disableZero(v float64) float64 {
	if v == 0 {
		return -1
	}
	return v
}

// dialNode dials addr with per-attempt timeouts and exponential backoff
// until budget is spent, so a Central started before its Conv nodes
// waits for them instead of exiting immediately.
func dialNode(addr string, budget time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(budget)
	backoff := 200 * time.Millisecond
	for attempt := 1; ; attempt++ {
		perAttempt := 2 * time.Second
		if rem := time.Until(deadline); rem < perAttempt {
			perAttempt = rem
		}
		if perAttempt <= 0 {
			return nil, fmt.Errorf("dial %s: no conv node after %v", addr, budget)
		}
		c, err := net.DialTimeout("tcp", addr, perAttempt)
		if err == nil {
			return c, nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("dial %s: %w (gave up after %d attempts over %v)",
				addr, err, attempt, budget)
		}
		slog.Warn("dial failed, retrying", "addr", addr, "err", err, "backoff", backoff)
		time.Sleep(backoff)
		if backoff *= 2; backoff > 3*time.Second {
			backoff = 3 * time.Second
		}
	}
}

func main() {
	nodeList := flag.String("nodes", "127.0.0.1:9001", "comma-separated Conv node addresses")
	model := flag.String("model", "vgg-sim", "model short name")
	grid := flag.String("grid", "4x4", "FDSP partition")
	seed := flag.Int64("seed", 42, "weight seed shared with conv nodes")
	images := flag.Int("images", 10, "number of synthetic images to run")
	tl := flag.Duration("tl", 5*time.Second, "result wait deadline T_L")
	gamma := flag.Float64("gamma", 0.9, "statistics decay γ")
	weights := flag.String("weights", "", "optional weight snapshot for the full net")
	clipLo := flag.Float64("clip-lo", 0, "clipped ReLU lower bound")
	clipHi := flag.Float64("clip-hi", 0, "clipped ReLU upper bound")
	quant := flag.Int("quant", 0, "quantization bits (0 = off)")
	quantized := flag.Bool("quantized", false, "int8 operating mode: quantize weights per channel, send quantized tiles, run the back layers through the int8 path")
	verify := flag.Bool("verify", true, "check outputs against local execution")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz, /debug/pprof, /debug/flight and /debug/sessions on this address (e.g. :9090)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON timeline (central + conv-side spans) to this file")
	connectTimeout := flag.Duration("connect-timeout", 30*time.Second, "total dial budget per conv node (retry with backoff)")
	pipeline := flag.Int("pipeline", 0, "stream images through a bounded pipeline of this depth (0 = sequential Infer loop)")
	replicas := flag.Int("replicas", 1, "cluster mode: run this many Central replicas over the same conv pool (each conv node serves one session per replica)")
	breakdown := flag.Bool("breakdown", false, "print the per-image mean phase decomposition after each image")
	flightSize := flag.Int("flight-size", telemetry.DefaultFlightSize, "flight recorder ring capacity (events)")
	sloP99 := flag.Duration("slo-p99", 250*time.Millisecond, "SLO: p99 tile round-trip latency objective (0 disables)")
	sloMiss := flag.Float64("slo-miss-budget", core.DefaultMissBudget, "SLO: tolerated zero-fill fraction (0 disables)")
	sloFast := flag.Duration("slo-fast", core.DefaultSLOWindows[0], "SLO: fast burn-rate window")
	sloSlow := flag.Duration("slo-slow", core.DefaultSLOWindows[1], "SLO: slow burn-rate window")
	probeInterval := flag.Duration("probe-interval", time.Second, "link probe period per node session, keeping RTT estimates fresh through idle periods (0 disables)")
	linkAware := flag.Bool("link-aware", false, "fold measured link transfer costs into the tile allocation (sched.EffectiveSpeeds)")
	lf := cliutil.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	logger := cliutil.MustLogger(lf, "adcnn-central")
	die := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	cfg, err := cliutil.SimConfigByName(*model)
	if err != nil {
		die("bad -model", "err", err)
	}
	g, err := cliutil.ParseGrid(*grid)
	if err != nil {
		die("bad -grid", "err", err)
	}
	m, err := models.Build(cfg, models.Options{
		Grid: g, ClipLo: float32(*clipLo), ClipHi: float32(*clipHi), QuantBits: *quant,
		Int8: *quantized,
	}, *seed)
	if err != nil {
		die("build model", "err", err)
	}
	if *weights != "" {
		f, err := os.Open(*weights)
		if err != nil {
			die("open weights", "err", err)
		}
		if err := m.Net.LoadParams(f); err != nil {
			die("load weights", "err", err)
		}
		f.Close()
	}
	if *quantized {
		n, err := m.QuantizeInt8()
		if err != nil {
			die("int8 quantize", "err", err)
		}
		logger.Info("int8 inference enabled", "layers", n, "quantized_uplink", m.Int8InputOK())
	}

	if m.Opt.Clipped() && *quant > 0 {
		// Same line the conv nodes emit, so mismatched clip/quant flags
		// between the two ends show up immediately in the logs.
		p := compress.NewPipeline(*quant, m.Opt.ClipHi-m.Opt.ClipLo)
		q := p.Quantizer()
		logger.Info("boundary codec",
			"bits", *quant, "range", m.Opt.ClipHi-m.Opt.ClipLo,
			"step", q.Step(), "zero_threshold", q.ZeroThreshold())
	}

	var addrs []string
	for _, addr := range strings.Split(*nodeList, ",") {
		addrs = append(addrs, strings.TrimSpace(addr))
	}

	if *replicas > 1 {
		runCluster(logger, die, m, clusterConfig{
			addrs: addrs, replicas: *replicas,
			cfg: cfg, opt: m.Opt, seed: *seed, weights: *weights, quantized: *quantized,
			tl: *tl, gamma: *gamma, images: *images, depth: *pipeline,
			verify: *verify, breakdown: *breakdown,
			metricsAddr: *metricsAddr, connectTimeout: *connectTimeout,
			flightSize:    *flightSize,
			probeInterval: *probeInterval, linkAware: *linkAware,
		})
		return
	}

	var conns []core.Conn
	for _, addr := range addrs {
		c, err := dialNode(addr, *connectTimeout)
		if err != nil {
			die("connect to conv node", "err", err)
		}
		conns = append(conns, core.NewStreamConn(c))
	}
	central, err := core.NewCentral(m, conns, *tl, *gamma)
	if err != nil {
		die("new central", "err", err)
	}
	defer central.Shutdown()
	if *probeInterval > 0 {
		central.EnableLinkProbes(*probeInterval)
	}
	if *linkAware {
		central.EnableLinkAware()
	}
	// Let each node session reconnect (with backoff) if its connection
	// drops mid-run, instead of staying dead forever.
	for k, addr := range addrs {
		addr := addr
		central.SetDialer(k, func(ctx context.Context) (core.Conn, error) {
			d := net.Dialer{}
			c, err := d.DialContext(ctx, "tcp", addr)
			if err != nil {
				return nil, err
			}
			return core.NewStreamConn(c), nil
		})
	}

	// The flight recorder is cheap (a mutex-guarded ring) and is what
	// explains a missed deadline after the fact, so it is always on; the
	// metrics address only decides whether it is reachable over HTTP.
	flight := telemetry.NewFlightRecorder(*flightSize)
	central.SetFlightRecorder(flight)

	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		met := core.NewMetrics(reg)
		central.SetMetrics(met)
		compress.Instrument(reg)
		telemetry.RegisterBuildInfo(reg, "central", tensor.DetectedKernelTier().String())

		// Scheduler decision audit: every Algorithm 3 reallocation lands
		// in a ring served at /debug/sched and logged at Debug level.
		met.Sched.AttachAudit(sched.NewAudit(0, logger))

		// SLO engine over the windowed instruments: a breach dumps the
		// flight ring (naming the objective and the worst-health node)
		// and flips /healthz to 503 so a load balancer drains us.
		engine := core.NewSLOEngine(met, core.SLOConfig{
			TileP99:    disableZero(sloP99.Seconds()),
			MissBudget: disableZero(*sloMiss),
			FastWindow: *sloFast,
			SlowWindow: *sloSlow,
		})
		central.WireSLO(engine)
		engine.Subscribe(func(tr telemetry.SLOTransition) {
			logger.Warn("slo transition", "objective", tr.Objective,
				"from", tr.FromName, "to", tr.ToName, "detail", tr.Detail)
		})
		go engine.Run(context.Background(), 0)

		breachCheck := func() error {
			if engine.Breached() {
				return fmt.Errorf("slo breach: %+v", engine.Status())
			}
			return nil
		}
		mux := telemetry.MuxChecks(reg, breachCheck, breachCheck)
		mux.Handle("/debug/flight", flight)
		mux.Handle("/debug/sessions", central.SessionsHandler())
		mux.Handle("/debug/sched", met.Sched.Audit())
		_, bound, err := telemetry.ServeMux(*metricsAddr, mux)
		if err != nil {
			die("metrics server", "err", err)
		}
		logger.Info("debug endpoints up",
			"addr", bound.String(),
			"paths", "/metrics /healthz /readyz /debug/pprof /debug/flight /debug/sessions /debug/sched")
	}
	var trace *telemetry.Trace
	if *tracePath != "" {
		trace = telemetry.NewTrace()
		central.SetTrace(trace)
		defer func() {
			if err := trace.WriteFile(*tracePath); err != nil {
				logger.Error("write trace", "err", err)
			} else {
				logger.Info("wrote trace", "path", *tracePath, "events", trace.Len())
			}
		}()
	}

	set, err := synthSet(cfg, *images, *seed+100)
	if err != nil {
		die("build dataset", "err", err)
	}
	var total time.Duration
	mismatches := 0
	// In the int8 operating mode the distributed run quantizes each tile
	// with its own affine while the local oracle quantizes the whole
	// image, so outputs agree only to within accumulated quantization
	// error — the verify tolerance widens accordingly.
	verifyTol := float32(1e-4)
	if *quantized {
		verifyTol = 5e-2
	}
	report := func(i int, x *tensor.Tensor, out *tensor.Tensor, st core.InferStats) {
		total += st.Latency
		status := ""
		if *verify {
			want := m.Net.Forward(x, false)
			if !out.Equal(want, verifyTol) {
				status = "  MISMATCH vs local"
				mismatches++
			}
		}
		fmt.Printf("image %2d: latency %8v  missed %d  alloc %v%s\n",
			i, st.Latency.Round(time.Microsecond), st.TilesMissed, st.Alloc, status)
		if *breakdown {
			st.Breakdown.WriteText(os.Stdout)
		}
		logger.Debug("image complete",
			"image", i, "trace_id", core.TraceIDString(st.TraceID),
			"latency", st.Latency, "missed", st.TilesMissed)
	}

	wallStart := time.Now()
	if *pipeline > 0 {
		// Streaming mode: up to -pipeline images in flight, so image i+1's
		// tiles are on the wire while image i's results are still arriving.
		p := core.NewPipeline(central, *pipeline)
		inputs := make(chan *tensor.Tensor, 1)
		go func() {
			defer close(inputs)
			for i := 0; i < *images; i++ {
				x, _ := set.Batch(i, 1)
				inputs <- x
			}
		}()
		for r := range p.Run(context.Background(), inputs) {
			if r.Err != nil {
				die("pipeline image failed", "image", r.Index, "err", r.Err)
			}
			x, _ := set.Batch(r.Index, 1)
			report(r.Index, x, r.Out, r.Stats)
		}
	} else {
		for i := 0; i < *images; i++ {
			x, _ := set.Batch(i, 1)
			out, st, err := central.Infer(x)
			if err != nil {
				die("infer failed", "image", i, "err", err)
			}
			report(i, x, out, st)
		}
	}
	wall := time.Since(wallStart)
	fmt.Printf("mean latency: %v over %d images; throughput %.2f imgs/s; %d mismatches\n",
		(total / time.Duration(*images)).Round(time.Microsecond), *images,
		float64(*images)/wall.Seconds(), mismatches)
	if mismatches > 0 {
		os.Exit(1)
	}
}

// clusterConfig carries the flag values the multi-replica path needs.
type clusterConfig struct {
	addrs          []string
	replicas       int
	cfg            models.Config
	opt            models.Options
	seed           int64
	weights        string
	quantized      bool
	tl             time.Duration
	gamma          float64
	images         int
	depth          int
	verify         bool
	breakdown      bool
	metricsAddr    string
	connectTimeout time.Duration
	flightSize     int
	probeInterval  time.Duration
	linkAware      bool
}

// runCluster is the -replicas N path: N full Centrals — each with its
// own connections, statistics, and pending table — drive the same Conv
// pool through core.Cluster, which partitions node capacity by demand
// and steals queued images between replicas. Images are submitted
// round-robin across replica origins and reported in submission order.
func runCluster(logger *slog.Logger, die func(string, ...any), oracle *models.Model, cc clusterConfig) {
	var reg *telemetry.Registry
	if cc.metricsAddr != "" {
		reg = telemetry.NewRegistry()
		compress.Instrument(reg)
		telemetry.RegisterBuildInfo(reg, "central", tensor.DetectedKernelTier().String())
	}
	// One audit ring and one flight ring for the whole cluster: replica
	// reallocations and cluster rebalances interleave in the same
	// decision history, which is exactly the view a postmortem wants.
	audit := sched.NewAudit(0, logger)
	flight := telemetry.NewFlightRecorder(cc.flightSize)

	build := func(r int) (*core.Central, error) {
		// Each replica gets its own model instance (same seed, same
		// weights, so all replicas compute identical back layers) —
		// Central serializes back-layer execution per instance, and
		// replicas must not contend on one model's scratch state.
		mr, err := models.Build(cc.cfg, cc.opt, cc.seed)
		if err != nil {
			return nil, err
		}
		if cc.weights != "" {
			f, err := os.Open(cc.weights)
			if err != nil {
				return nil, err
			}
			if err := mr.Net.LoadParams(f); err != nil {
				f.Close()
				return nil, err
			}
			f.Close()
		}
		if cc.quantized {
			if _, err := mr.QuantizeInt8(); err != nil {
				return nil, err
			}
		}
		var conns []core.Conn
		for _, addr := range cc.addrs {
			nc, err := dialNode(addr, cc.connectTimeout)
			if err != nil {
				return nil, err
			}
			conns = append(conns, core.NewStreamConn(nc))
		}
		cen, err := core.NewCentral(mr, conns, cc.tl, cc.gamma)
		if err != nil {
			return nil, err
		}
		if cc.probeInterval > 0 {
			cen.EnableLinkProbes(cc.probeInterval)
		}
		if cc.linkAware {
			cen.EnableLinkAware()
		}
		for k, addr := range cc.addrs {
			addr := addr
			cen.SetDialer(k, func(ctx context.Context) (core.Conn, error) {
				d := net.Dialer{}
				nc, err := d.DialContext(ctx, "tcp", addr)
				if err != nil {
					return nil, err
				}
				return core.NewStreamConn(nc), nil
			})
		}
		cen.SetFlightRecorder(flight)
		if reg != nil {
			met := core.NewReplicaMetrics(reg, strconv.Itoa(r))
			cen.SetMetrics(met)
			met.Sched.AttachAudit(audit)
		}
		return cen, nil
	}

	cl, err := core.NewCluster(build, core.ClusterOptions{
		Replicas: cc.replicas, Depth: cc.depth, Registry: reg, Audit: audit,
	})
	if err != nil {
		die("new cluster", "err", err)
	}
	defer cl.Shutdown()
	logger.Info("cluster up", "replicas", cc.replicas, "nodes", len(cc.addrs))

	if cc.metricsAddr != "" {
		mux := telemetry.MuxChecks(reg, nil, nil)
		mux.Handle("/debug/flight", flight)
		mux.Handle("/debug/sched", audit)
		mux.Handle("/debug/sessions", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			all := make(map[string][]core.SessionDebug, cl.Replicas())
			for r := 0; r < cl.Replicas(); r++ {
				all[strconv.Itoa(r)] = cl.Replica(r).DebugSessions()
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", " ")
			_ = enc.Encode(all)
		}))
		_, bound, err := telemetry.ServeMux(cc.metricsAddr, mux)
		if err != nil {
			die("metrics server", "err", err)
		}
		logger.Info("debug endpoints up", "addr", bound.String(),
			"paths", "/metrics /healthz /readyz /debug/pprof /debug/flight /debug/sessions /debug/sched")
	}

	set, err := synthSet(cc.cfg, cc.images, cc.seed+100)
	if err != nil {
		die("build dataset", "err", err)
	}
	verifyTol := float32(1e-4)
	if cc.quantized {
		verifyTol = 5e-2
	}

	// Submit from a feeder goroutine (Submit blocks on admission once a
	// replica's queue is full) and collect in submission order here.
	type pendingImg struct {
		i  int
		ch <-chan core.ClusterResult
	}
	pend := make(chan pendingImg, cc.replicas*4)
	go func() {
		defer close(pend)
		for i := 0; i < cc.images; i++ {
			x, _ := set.Batch(i, 1)
			ch, err := cl.Submit(context.Background(), i%cc.replicas, x)
			if err != nil {
				ec := make(chan core.ClusterResult, 1)
				ec <- core.ClusterResult{Origin: i % cc.replicas, Err: err}
				ch = ec
			}
			pend <- pendingImg{i, ch}
		}
	}()

	wallStart := time.Now()
	var total time.Duration
	mismatches := 0
	executed := make([]int, cc.replicas)
	for p := range pend {
		r := <-p.ch
		if r.Err != nil {
			die("cluster image failed", "image", p.i, "err", r.Err)
		}
		executed[r.Replica]++
		total += r.Stats.Latency
		status := ""
		if cc.verify {
			x, _ := set.Batch(p.i, 1)
			want := oracle.Net.Forward(x, false)
			if !r.Out.Equal(want, verifyTol) {
				status = "  MISMATCH vs local"
				mismatches++
			}
		}
		stolen := ""
		if r.Replica != r.Origin {
			stolen = fmt.Sprintf(" (stolen %d<-%d)", r.Replica, r.Origin)
		}
		fmt.Printf("image %2d: replica %d  latency %8v  missed %d  alloc %v%s%s\n",
			p.i, r.Replica, r.Stats.Latency.Round(time.Microsecond),
			r.Stats.TilesMissed, r.Stats.Alloc, stolen, status)
		if cc.breakdown {
			r.Stats.Breakdown.WriteText(os.Stdout)
		}
	}
	wall := time.Since(wallStart)
	fmt.Printf("mean latency: %v over %d images; throughput %.2f imgs/s; %d mismatches\n",
		(total / time.Duration(cc.images)).Round(time.Microsecond), cc.images,
		float64(cc.images)/wall.Seconds(), mismatches)
	fmt.Printf("cluster: executed per replica %v; steals %v\n", executed, cl.Steals())
	if mismatches > 0 {
		os.Exit(1)
	}
}

func synthSet(cfg models.Config, n int, seed int64) (*dataset.Set, error) {
	switch cfg.Task {
	case models.TaskClassify:
		return dataset.Classification(n, cfg.Classes, cfg.InputC, cfg.InputH, cfg.InputW, 0.15, seed), nil
	case models.TaskSegment:
		return dataset.Segmentation(n, cfg.Classes, cfg.InputC, cfg.InputH, cfg.InputW, seed), nil
	case models.TaskDetect:
		dh, dw := cfg.TotalDownsample()
		return dataset.Cells(n, cfg.Classes, cfg.InputC, cfg.InputH, cfg.InputW, cfg.InputH/dh, cfg.InputW/dw, seed), nil
	case models.TaskText:
		return dataset.Text(n, cfg.Classes, cfg.InputC, cfg.InputH, seed), nil
	}
	return nil, fmt.Errorf("unknown task")
}

// Command adcnn-top is a live terminal ops console for an ADCNN
// deployment: it polls the Central's (and optionally the Conv nodes')
// debug endpoints — /metrics, /debug/sessions, /debug/sched — and
// renders throughput, per-node speed/health/phase bars, SLO status and
// the scheduler's recent decisions as an ANSI dashboard. Dependency
// free: the Prometheus text parsing lives in internal/telemetry.
//
// Usage:
//
//	adcnn-top -central 127.0.0.1:9090
//	adcnn-top -central 127.0.0.1:9090 -conv 127.0.0.1:9091,127.0.0.1:9092
//	adcnn-top -central 127.0.0.1:9090 -once          # one frame, no ANSI
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"adcnn/internal/telemetry"
)

// scrapeSet is everything one poll gathered from one daemon.
type scrapeSet struct {
	at       time.Time
	metrics  *telemetry.PromScrape
	sessions []sessionRow
	sched    *schedPage
	err      error
}

// sessionRow mirrors core.SessionDebug's JSON.
type sessionRow struct {
	Node         int     `json:"node"`
	Alive        bool    `json:"alive"`
	Epochs       int     `json:"epochs"`
	QueueDepth   int     `json:"queue_depth"`
	PendingTiles int     `json:"pending_tiles"`
	BackoffMs    float64 `json:"reconnect_backoff_ms"`
	RTTNs        int64   `json:"rtt_ns"`
	UplinkBps    float64 `json:"uplink_bytes_per_sec"`
	DownlinkBps  float64 `json:"downlink_bytes_per_sec"`
	LinkSamples  int     `json:"link_samples"`
	LinkProbes   uint64  `json:"link_probes"`
}

// schedPage mirrors sched.Audit's /debug/sched JSON.
type schedPage struct {
	Recorded  uint64 `json:"decisions_recorded"`
	Decisions []struct {
		Seq        uint64    `json:"seq"`
		At         time.Time `json:"at"`
		Image      uint32    `json:"image"`
		Prev       []int     `json:"prev"`
		Next       []int     `json:"next"`
		ObjBefore  float64   `json:"obj_before"`
		ObjAfter   float64   `json:"obj_after"`
		TilesMoved int       `json:"tiles_moved"`
		Trigger    string    `json:"trigger"`
	} `json:"decisions"`
}

// sloRow is one objective's judgment, reconstructed from the gauges.
type sloRow struct {
	name     string
	state    int
	fastBurn float64
	slowBurn float64
}

func main() {
	central := flag.String("central", "127.0.0.1:9090", "Central metrics address (host:port)")
	convList := flag.String("conv", "", "comma-separated Conv metrics addresses")
	interval := flag.Duration("interval", time.Second, "poll interval")
	once := flag.Bool("once", false, "render one frame and exit (no screen control)")
	noColor := flag.Bool("no-color", false, "disable ANSI colors")
	flag.Parse()

	var convs []string
	for _, a := range strings.Split(*convList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			convs = append(convs, a)
		}
	}
	cl := &http.Client{Timeout: 2 * time.Second}
	d := &dash{color: !*noColor, central: *central, convs: convs, client: cl}

	if *once {
		d.prev = d.poll(*central)
		fmt.Print(d.render())
		return
	}
	// Alternate screen, cursor hidden; restore on exit.
	fmt.Print("\x1b[?1049h\x1b[?25l")
	defer fmt.Print("\x1b[?25h\x1b[?1049l")
	d.prev = d.poll(*central)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for range tick.C {
		frame := d.render()
		fmt.Print("\x1b[H\x1b[2J" + frame)
	}
}

// dash holds poll state: rates need the previous scrape.
type dash struct {
	color   bool
	central string
	convs   []string
	client  *http.Client
	prev    *scrapeSet
}

// fetch GETs one URL with the shared client.
func (d *dash) fetch(addr, path string) ([]byte, error) {
	resp, err := d.client.Get("http://" + addr + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(io.LimitReader(resp.Body, 4<<20))
}

// poll gathers one scrape set from the Central.
func (d *dash) poll(addr string) *scrapeSet {
	s := &scrapeSet{at: time.Now()}
	raw, err := d.fetch(addr, "/metrics")
	if err != nil {
		s.err = err
		return s
	}
	s.metrics, s.err = telemetry.ParsePrometheus(strings.NewReader(string(raw)))
	if body, err := d.fetch(addr, "/debug/sessions"); err == nil {
		// Single-Central mode serves an array; cluster mode serves a map
		// of replica id -> sessions. In cluster mode the node table shows
		// the lowest replica's view (states rarely diverge — every replica
		// talks to the same nodes).
		if json.Unmarshal(body, &s.sessions) != nil || len(s.sessions) == 0 {
			var byRep map[string][]sessionRow
			if json.Unmarshal(body, &byRep) == nil && len(byRep) > 0 {
				keys := make([]string, 0, len(byRep))
				for k := range byRep {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				s.sessions = byRep[keys[0]]
			}
		}
	}
	if body, err := d.fetch(addr, "/debug/sched"); err == nil {
		var page schedPage
		if json.Unmarshal(body, &page) == nil {
			s.sched = &page
		}
	}
	return s
}

// render polls and draws one frame, updating the rate baseline.
func (d *dash) render() string {
	cur := d.poll(d.central)
	prev := d.prev
	d.prev = cur

	var b strings.Builder
	fmt.Fprintf(&b, "%s  central=%s  %s",
		d.bold("adcnn-top"), d.central, cur.at.Format("15:04:05"))
	if cur.err == nil {
		if bi := buildLine(cur.metrics); bi != "" {
			fmt.Fprintf(&b, "  %s", bi)
		}
	}
	b.WriteString("\n")
	if cur.err != nil {
		fmt.Fprintf(&b, "\n  %s %v\n", d.red("scrape failed:"), cur.err)
		return b.String()
	}
	m := cur.metrics

	// ---- throughput line: deltas against the previous poll.
	dt := cur.at.Sub(prev.at).Seconds()
	if dt <= 0 {
		dt = 1
	}
	imgRate := d.rate(m, prev.metrics, "adcnn_central_images_total", dt)
	missRate := d.rate(m, prev.metrics, "adcnn_central_tiles_missed_total", dt)
	inflight, _ := sumName(m, "adcnn_central_inflight_images")
	fmt.Fprintf(&b, "\n  images %6.1f/s   inflight %2.0f   zero-fill %5.2f/s",
		imgRate, inflight, missRate)

	// Tile round-trip quantiles from the bucket delta between polls
	// (falls back to since-start when the delta is empty).
	upper, cum := m.Buckets("adcnn_central_tile_roundtrip_seconds")
	if prev.metrics != nil {
		pu, pc := prev.metrics.Buckets("adcnn_central_tile_roundtrip_seconds")
		if len(pu) == len(upper) {
			if delta := telemetry.DeltaBuckets(cum, pc); delta != nil && delta[len(delta)-1] > 0 {
				cum = delta
			}
		}
	}
	if len(cum) > 0 && cum[len(cum)-1] > 0 {
		fmt.Fprintf(&b, "   tile p50/p95/p99 %s/%s/%s",
			fmtSec(telemetry.QuantileFromBuckets(upper, cum, 0.50)),
			fmtSec(telemetry.QuantileFromBuckets(upper, cum, 0.95)),
			fmtSec(telemetry.QuantileFromBuckets(upper, cum, 0.99)))
	}
	b.WriteString("\n")

	// ---- SLO status.
	if rows := sloRows(m); len(rows) > 0 {
		fmt.Fprintf(&b, "\n  %s\n", d.bold("SLO"))
		for _, r := range rows {
			state := d.green("ok")
			switch r.state {
			case 1:
				state = d.yellow("warn")
			case 2:
				state = d.red("BREACH")
			}
			fmt.Fprintf(&b, "   %-18s %-14s burn fast %5.1f  slow %5.1f\n",
				r.name, state, r.fastBurn, r.slowBurn)
		}
	}

	// ---- cluster replicas (only present in -replicas N mode).
	if reps := m.LabelValues("adcnn_cluster_images_total", "replica"); len(reps) > 0 {
		fmt.Fprintf(&b, "\n  %s\n", d.bold("replicas"))
		fmt.Fprintf(&b, "   %-7s %-8s %-6s %-7s %s\n",
			"replica", "imgs/s", "queue", "steals", "node shares")
		shareNodes := m.LabelValues("adcnn_cluster_share", "node")
		for _, r := range reps {
			tput := d.rateWith(m, prev.metrics, "adcnn_cluster_images_total", dt, "replica", r)
			queue, _ := m.Value("adcnn_cluster_queue_depth", "replica", r)
			steals, _ := m.Value("adcnn_cluster_steals_total", "replica", r)
			var shares []string
			for _, n := range shareNodes {
				if v, ok := m.Value("adcnn_cluster_share", "replica", r, "node", n); ok {
					shares = append(shares, fmt.Sprintf("n%s:%.2f", n, v))
				}
			}
			fmt.Fprintf(&b, "   %-7s %-8.1f %-6.0f %-7.0f %s\n",
				r, tput, queue, steals, strings.Join(shares, " "))
		}
	}

	// ---- per-node table.
	nodes := m.LabelValues("adcnn_sched_speed", "node")
	if len(nodes) > 0 {
		fmt.Fprintf(&b, "\n  %s\n", d.bold("nodes"))
		fmt.Fprintf(&b, "   %-4s %-7s %-22s %-7s %-20s %-6s %s\n",
			"node", "s_k", "", "health", "", "queue", "state")
		maxSpeed := 0.0
		for _, n := range nodes {
			if v, ok := m.Value("adcnn_sched_speed", "node", n); ok && v > maxSpeed {
				maxSpeed = v
			}
		}
		sessions := map[int]sessionRow{}
		for _, r := range cur.sessions {
			sessions[r.Node] = r
		}
		for _, n := range nodes {
			speed, _ := m.Value("adcnn_sched_speed", "node", n)
			health, _ := m.Value("adcnn_central_node_health", "node", n)
			queue, _ := m.Value("adcnn_central_send_queue_depth", "node", n)
			state := d.green("alive")
			k, _ := strconv.Atoi(n)
			if row, ok := sessions[k]; ok && !row.Alive {
				state = d.red(fmt.Sprintf("down (backoff %.0fms)", row.BackoffMs))
			} else if ok && row.Epochs > 1 {
				state = d.yellow(fmt.Sprintf("alive (epoch %d)", row.Epochs))
			}
			healthStr := d.green(fmt.Sprintf("%5.2f", health))
			if health >= 1 {
				healthStr = d.red(fmt.Sprintf("%5.2f", health))
			} else if health >= 0.5 {
				healthStr = d.yellow(fmt.Sprintf("%5.2f", health))
			}
			fmt.Fprintf(&b, "   %-4s %-7.2f %-22s %s  %-20s %-6.0f %s\n",
				n, speed, d.bar(speed, maxSpeed, 20), healthStr,
				d.bar(math.Min(health, 2), 2, 18), queue, state)
		}
	}

	// ---- phase decomposition (mean seconds per phase since last poll).
	if line := d.phaseLine(m, prev.metrics); line != "" {
		fmt.Fprintf(&b, "\n  %s\n   %s\n", d.bold("tile phases (mean, last interval)"), line)
	}

	// ---- link telemetry: probe-refreshed RTT + passive rate estimates.
	linkNodes := m.LabelValues("adcnn_central_link_rtt_seconds", "node")
	if len(linkNodes) == 0 {
		linkNodes = m.LabelValues("adcnn_central_link_up_bytes_per_second", "node")
	}
	if len(linkNodes) > 0 {
		fmt.Fprintf(&b, "\n  %s\n", d.bold("links"))
		fmt.Fprintf(&b, "   %-4s %-8s %-10s %-10s %-8s %s\n",
			"node", "rtt", "uplink", "downlink", "samples", "probes")
		sess := map[int]sessionRow{}
		for _, r := range cur.sessions {
			sess[r.Node] = r
		}
		for _, n := range linkNodes {
			rtt, _ := m.Value("adcnn_central_link_rtt_seconds", "node", n)
			up, _ := m.Value("adcnn_central_link_up_bytes_per_second", "node", n)
			down, _ := m.Value("adcnn_central_link_down_bytes_per_second", "node", n)
			probes, _ := m.Value("adcnn_central_link_probes_total", "node", n)
			rttStr := "-"
			if rtt > 0 {
				rttStr = fmtSec(rtt)
			}
			samples := 0
			if k, err := strconv.Atoi(n); err == nil {
				samples = sess[k].LinkSamples
			}
			fmt.Fprintf(&b, "   %-4s %-8s %-10s %-10s %-8d %.0f\n",
				n, rttStr, fmtBps(up), fmtBps(down), samples, probes)
		}
	}

	// ---- recent scheduler decisions.
	if cur.sched != nil && len(cur.sched.Decisions) > 0 {
		fmt.Fprintf(&b, "\n  %s (%d total)\n", d.bold("scheduler decisions"), cur.sched.Recorded)
		ds := cur.sched.Decisions
		if len(ds) > 5 {
			ds = ds[len(ds)-5:]
		}
		for _, dec := range ds {
			fmt.Fprintf(&b, "   #%-4d img %-5d %v -> %v  moved %d  obj %.2f->%.2f  %s\n",
				dec.Seq, dec.Image, dec.Prev, dec.Next, dec.TilesMoved,
				dec.ObjBefore, dec.ObjAfter, dec.Trigger)
		}
	}

	// ---- conv daemons.
	for _, addr := range d.convs {
		raw, err := d.fetch(addr, "/metrics")
		if err != nil {
			fmt.Fprintf(&b, "\n  %s %s: %v\n", d.bold("conv"), addr, d.red(err.Error()))
			continue
		}
		wm, err := telemetry.ParsePrometheus(strings.NewReader(string(raw)))
		if err != nil {
			continue
		}
		tasks := 0.0
		for _, n := range wm.LabelValues("adcnn_worker_tasks_total", "node") {
			v, _ := wm.Value("adcnn_worker_tasks_total", "node", n)
			tasks += v
		}
		line := fmt.Sprintf("tasks %d", int(tasks))
		if u, c := wm.Buckets("adcnn_worker_process_seconds"); len(c) > 0 && c[len(c)-1] > 0 {
			line += fmt.Sprintf("   process p50 %s p99 %s",
				fmtSec(telemetry.QuantileFromBuckets(u, c, 0.50)),
				fmtSec(telemetry.QuantileFromBuckets(u, c, 0.99)))
		}
		fmt.Fprintf(&b, "\n  %s %s: %s\n", d.bold("conv"), addr, line)
	}
	return b.String()
}

// rate computes a counter's per-second delta between two scrapes,
// summed over all of the family's samples — so in cluster mode, where
// every family carries a replica label, the headline rates aggregate
// across replicas instead of picking an arbitrary one.
func (d *dash) rate(cur, prev *telemetry.PromScrape, name string, dt float64) float64 {
	cv, ok := sumName(cur, name)
	if !ok || prev == nil {
		return 0
	}
	pv, _ := sumName(prev, name)
	if cv < pv {
		return 0
	}
	return (cv - pv) / dt
}

// rateWith is rate for one labeled sample (no summing).
func (d *dash) rateWith(cur, prev *telemetry.PromScrape, name string, dt float64, labels ...string) float64 {
	cv, ok := cur.Value(name, labels...)
	if !ok || prev == nil {
		return 0
	}
	pv, _ := prev.Value(name, labels...)
	if cv < pv {
		return 0
	}
	return (cv - pv) / dt
}

// sumName sums every sample of a family regardless of labels.
func sumName(s *telemetry.PromScrape, name string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	var v float64
	found := false
	for _, smp := range s.Samples {
		if smp.Name == name {
			v += smp.Value
			found = true
		}
	}
	return v, found
}

// phaseLine renders mean per-phase time from the histogram sum/count
// deltas of adcnn_central_tile_phase_seconds.
func (d *dash) phaseLine(cur, prev *telemetry.PromScrape) string {
	var parts []string
	for _, phase := range cur.LabelValues("adcnn_central_tile_phase_seconds_count", "phase") {
		cc, _ := cur.Value("adcnn_central_tile_phase_seconds_count", "phase", phase)
		cs, _ := cur.Value("adcnn_central_tile_phase_seconds_sum", "phase", phase)
		if prev != nil {
			pc, _ := prev.Value("adcnn_central_tile_phase_seconds_count", "phase", phase)
			ps, _ := prev.Value("adcnn_central_tile_phase_seconds_sum", "phase", phase)
			if cc >= pc {
				cc -= pc
				cs -= ps
			}
		}
		if cc > 0 {
			parts = append(parts, fmt.Sprintf("%s=%s", phase, fmtSec(cs/cc)))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, "  ")
}

// sloRows reconstructs objective judgments from the exported gauges.
func sloRows(m *telemetry.PromScrape) []sloRow {
	var out []sloRow
	for _, name := range m.LabelValues("adcnn_slo_state", "objective") {
		st, _ := m.Value("adcnn_slo_state", "objective", name)
		fast, _ := m.Value("adcnn_slo_burn", "objective", name, "window", "fast")
		slow, _ := m.Value("adcnn_slo_burn", "objective", name, "window", "slow")
		out = append(out, sloRow{name: name, state: int(st), fastBurn: fast, slowBurn: slow})
	}
	return out
}

// bar renders v/hi as a fixed-width block bar.
func (d *dash) bar(v, hi float64, width int) string {
	if hi <= 0 || v < 0 {
		v, hi = 0, 1
	}
	n := int(v / hi * float64(width))
	if n > width {
		n = width
	}
	return "[" + strings.Repeat("|", n) + strings.Repeat(" ", width-n) + "]"
}

// buildLine summarizes every scraped adcnn_build_info sample, so the
// header names the build (revision, Go version, kernel tier) of each
// component sharing the Central's registry.
func buildLine(m *telemetry.PromScrape) string {
	if m == nil {
		return ""
	}
	var parts []string
	for _, smp := range m.Samples {
		if smp.Name != "adcnn_build_info" || smp.Labels == nil {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %s go=%s simd=%s",
			smp.Labels["component"], smp.Labels["revision"],
			smp.Labels["go_version"], smp.Labels["kernel_tier"]))
	}
	sort.Strings(parts)
	return strings.Join(parts, "  ")
}

// fmtBps renders a bytes-per-second estimate (0 = unknown).
func fmtBps(v float64) string {
	switch {
	case v <= 0:
		return "-"
	case v < 1e3:
		return fmt.Sprintf("%.0fB/s", v)
	case v < 1e6:
		return fmt.Sprintf("%.1fKB/s", v/1e3)
	case v < 1e9:
		return fmt.Sprintf("%.1fMB/s", v/1e6)
	default:
		return fmt.Sprintf("%.1fGB/s", v/1e9)
	}
}

// fmtSec renders seconds human-readably (µs/ms/s).
func fmtSec(s float64) string {
	switch {
	case math.IsNaN(s):
		return "-"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

// ANSI helpers; plain strings when color is off or stdout is not a TTY.
func (d *dash) wrap(code, s string) string {
	if !d.color {
		return s
	}
	return "\x1b[" + code + "m" + s + "\x1b[0m"
}
func (d *dash) bold(s string) string   { return d.wrap("1", s) }
func (d *dash) red(s string) string    { return d.wrap("31", s) }
func (d *dash) green(s string) string  { return d.wrap("32", s) }
func (d *dash) yellow(s string) string { return d.wrap("33", s) }

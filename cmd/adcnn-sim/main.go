// Command adcnn-sim explores the ADCNN design space on the calibrated
// virtual-time simulator: pick a model, cluster size, partition, link
// and compression settings, optionally schedule mid-run throttle/failure
// events, and watch per-image latency and tile allocation.
//
// Usage examples:
//
//	adcnn-sim -model VGG16 -nodes 8 -images 20
//	adcnn-sim -model YOLO -mbps 12.66 -prune=false
//	adcnn-sim -model VGG16 -images 50 -events "25:5:0.45,25:6:0.45,25:7:0.24,25:8:0.24"
//	adcnn-sim -model VGG16 -stream -images 200
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"adcnn/internal/cliutil"
	"adcnn/internal/cluster"
	"adcnn/internal/core"
	"adcnn/internal/experiments"
	"adcnn/internal/perfmodel"
	"adcnn/internal/stats"
	"adcnn/internal/telemetry"
)

func main() {
	model := flag.String("model", "VGG16", "full-scale model: VGG16|ResNet34|YOLO|FCN|CharCNN")
	nodes := flag.Int("nodes", 8, "number of Conv nodes")
	mbps := flag.Float64("mbps", 87.72, "link bandwidth in Mbps")
	prune := flag.Bool("prune", true, "compress Conv-node outputs")
	images := flag.Int("images", 20, "images to process")
	noise := flag.Float64("noise", 0.04, "compute-time jitter fraction")
	seed := flag.Int64("seed", 1, "jitter seed")
	events := flag.String("events", "", "throttle events image:node:fraction[,...] (fraction 0 = failure)")
	stream := flag.Bool("stream", false, "report pipelined-stream throughput instead of per-image lines")
	timeline := flag.Bool("timeline", false, "render the Figure 9 phase timeline of the first image")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON timeline (per-tile spans, virtual time) to this file")
	lf := cliutil.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	logger := cliutil.MustLogger(lf, "adcnn-sim")
	die := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	cfg, err := cliutil.FullConfigByName(*model)
	if err != nil {
		die("bad -model", "err", err)
	}
	opts := experiments.SimOptions{
		Nodes:   *nodes,
		Link:    perfmodel.LinkModel{Name: "cli", BandwidthMbps: *mbps, LatencyMs: 0.5, Efficiency: 0.85},
		Pruning: *prune,
		Noise:   *noise,
		Seed:    *seed,
	}
	sim, nodeDevs, _, err := experiments.NewADCNNSim(cfg, opts)
	if err != nil {
		die("build simulator", "err", err)
	}

	evs, err := parseEvents(*events)
	if err != nil {
		die("bad -events", "err", err)
	}

	var trace *telemetry.Trace
	if *tracePath != "" {
		trace = telemetry.NewTrace()
		sim.SetTrace(trace)
		defer func() {
			if err := trace.WriteFile(*tracePath); err != nil {
				die("write trace", "err", err)
			}
			logger.Info("wrote trace", "path", *tracePath, "events", trace.Len())
		}()
	}

	if *stream {
		res := sim.RunStream(*images, evs)
		fmt.Printf("%s on %d nodes @ %.2f Mbps: %.2f images/s, mean latency %v over %d images\n",
			cfg.Name, *nodes, *mbps, res.Throughput, res.AvgLatency.Round(time.Millisecond), res.Images)
		return
	}

	var lat []time.Duration
	for i := 0; i < *images; i++ {
		cluster.ApplyEvents(nodeDevs, evs, i)
		r := sim.RunImage()
		lat = append(lat, r.Latency)
		marker := ""
		for _, ev := range evs {
			if ev.Image == i {
				marker = "  <-- event"
			}
		}
		fmt.Printf("image %3d: %8v  missed %2d  alloc %v%s\n",
			i, r.Latency.Round(time.Millisecond), r.TilesMissed, r.Alloc, marker)
		if i == 0 && *timeline {
			core.TimelineFor(r).WriteText(flag.CommandLine.Output(), 60)
		}
	}
	mean, ci := stats.CI95(stats.Durations(lat))
	fmt.Printf("\n%s, %d nodes, %.2f Mbps, prune=%v: mean %.1f ± %.1f ms over %d images\n",
		cfg.Name, *nodes, *mbps, *prune, mean, ci, *images)
}

// parseEvents parses "image:node:fraction" triples.
func parseEvents(s string) ([]cluster.ThrottleEvent, error) {
	if s == "" {
		return nil, nil
	}
	var out []cluster.ThrottleEvent
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad event %q (want image:node:fraction)", part)
		}
		img, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, err
		}
		node, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, err
		}
		frac, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, err
		}
		out = append(out, cluster.ThrottleEvent{Image: img, DeviceID: node, Fraction: frac})
	}
	return out, nil
}

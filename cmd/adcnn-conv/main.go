// Command adcnn-conv runs one ADCNN Conv node: it listens on a TCP port,
// builds the (deterministically seeded) model whose separable blocks it
// executes, optionally loads retrained weights, and serves tile tasks
// until the Central node shuts it down.
//
// Usage:
//
//	adcnn-conv -listen :9001 -model vgg-sim -grid 4x4 -weights front.bin
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adcnn/internal/cliutil"
	"adcnn/internal/compress"
	"adcnn/internal/core"
	"adcnn/internal/models"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

func main() {
	listen := flag.String("listen", ":9001", "TCP listen address")
	model := flag.String("model", "vgg-sim", "model: vgg-sim|resnet-sim|yolo-sim|fcn-sim|charcnn-sim")
	grid := flag.String("grid", "4x4", "FDSP partition, e.g. 4x4")
	seed := flag.Int64("seed", 42, "weight seed shared with the central node")
	id := flag.Int("id", 1, "node ID")
	weights := flag.String("weights", "", "optional weight snapshot (nn.SaveParams format) for the full net")
	clipLo := flag.Float64("clip-lo", 0, "clipped ReLU lower bound (0 with hi=0 disables)")
	clipHi := flag.Float64("clip-hi", 0, "clipped ReLU upper bound")
	quant := flag.Int("quant", 0, "quantization bits (0 = off)")
	quantized := flag.Bool("quantized", false, "int8 operating mode: quantize weights per channel and serve quantized tiles through the int8 GEMM path")
	queue := flag.Int("session-queue", 0, "per-session bounded compute queue depth (0 = default)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. :9091)")
	lf := cliutil.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	logger := cliutil.MustLogger(lf, "adcnn-conv")
	die := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	m, err := buildModel(*model, *grid, *seed, float32(*clipLo), float32(*clipHi), *quant, *quantized)
	if err != nil {
		die("build model", "err", err)
	}
	if *weights != "" {
		f, err := os.Open(*weights)
		if err != nil {
			die("open weights", "err", err)
		}
		if err := m.Net.LoadParams(f); err != nil {
			die("load weights", "err", err)
		}
		f.Close()
	}
	if *quantized {
		// Quantize after the weights are final: the int8 snapshot freezes
		// whatever the layers hold at this point.
		n, err := m.QuantizeInt8()
		if err != nil {
			die("int8 quantize", "err", err)
		}
		logger.Info("int8 inference enabled", "layers", n, "levels_entry", m.Int8InputOK())
	}

	if m.Opt.Clipped() && *quant > 0 {
		// Surface the exact fused-codec operating point: the zero threshold
		// is what the single-pass encoder classifies runs against, so having
		// it in the log makes sparsity numbers reproducible offline.
		p := compress.NewPipeline(*quant, m.Opt.ClipHi-m.Opt.ClipLo)
		q := p.Quantizer()
		logger.Info("boundary codec",
			"bits", *quant, "range", m.Opt.ClipHi-m.Opt.ClipLo,
			"step", q.Step(), "zero_threshold", q.ZeroThreshold())
	}

	// One worker, one NodeServer: every Central that connects gets an
	// independent session (own epoch, timing buffers, bounded compute
	// queue) while sharing the node's one simulated device, so N
	// replicas see the node's real capacity split between them.
	w := core.NewWorker(*id, m)
	ns := core.NewNodeServer(w, *queue)

	// Probe semantics: /healthz is pure liveness ("the process is up and
	// its model built") and always passes once we are serving — a Conv
	// node with no Central attached is idle, not broken, so restarting
	// it would be wrong. /readyz is readiness ("send me traffic"): 503
	// until at least one session is attached — "≥ 1", not "exactly 1",
	// because a node serving several Central replicas is more ready, not
	// less — so an orchestrator can hold a rollout until the node is
	// actually doing work.
	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		w.Metrics = core.NewMetrics(reg)
		compress.Instrument(reg)
		telemetry.RegisterBuildInfo(reg, "conv", tensor.DetectedKernelTier().String())
		ready := func() error {
			if ns.ActiveSessions() == 0 {
				return errors.New("not ready: weights loaded, no central session attached")
			}
			return nil
		}
		mux := telemetry.MuxChecks(reg, nil, ready)
		mux.Handle("/debug/worker", http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(rw)
			enc.SetIndent("", " ")
			_ = enc.Encode(ns.Sessions())
		}))
		_, bound, err := telemetry.ServeMux(*metricsAddr, mux)
		if err != nil {
			die("metrics server", "err", err)
		}
		logger.Info("debug endpoints up", "addr", bound.String(),
			"paths", "/metrics /healthz /readyz /debug/worker /debug/pprof")
	}

	// SIGINT/SIGTERM cancel the context, which closes every in-flight
	// connection and lets Serve return cleanly.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		die("listen", "addr", *listen, "err", err)
	}
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	logger.Info("conv node serving", "node", *id, "model", *model, "grid", *grid, "addr", ln.Addr().String())
	// Transient Accept failures (EMFILE, ECONNABORTED, momentary stack
	// hiccups) must not take the daemon down — every attached Central
	// session would die with it. Log, back off, retry; only shutdown
	// ends the loop.
	acceptBackoff := 10 * time.Millisecond
	const acceptBackoffMax = time.Second
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				logger.Info("shutting down", "node", *id)
				return
			}
			logger.Warn("accept failed, retrying", "node", *id, "err", err, "backoff", acceptBackoff)
			select {
			case <-time.After(acceptBackoff):
			case <-ctx.Done():
				logger.Info("shutting down", "node", *id)
				return
			}
			if acceptBackoff *= 2; acceptBackoff > acceptBackoffMax {
				acceptBackoff = acceptBackoffMax
			}
			continue
		}
		acceptBackoff = 10 * time.Millisecond
		logger.Info("central connected", "node", *id, "peer", conn.RemoteAddr().String(),
			"sessions", ns.ActiveSessions()+1)
		go func() {
			if err := ns.ServeConn(ctx, core.NewStreamConn(conn)); err != nil {
				logger.Warn("session ended", "node", *id, "err", err)
			}
		}()
	}
}

func buildModel(name, grid string, seed int64, lo, hi float32, quant int, int8Mode bool) (*models.Model, error) {
	cfg, err := cliutil.SimConfigByName(name)
	if err != nil {
		return nil, err
	}
	g, err := cliutil.ParseGrid(grid)
	if err != nil {
		return nil, err
	}
	opt := models.Options{Grid: g, ClipLo: lo, ClipHi: hi, QuantBits: quant, Int8: int8Mode}
	return models.Build(cfg, opt, seed)
}

module adcnn

go 1.22

package nn

import (
	"fmt"
	"math"

	"adcnn/internal/tensor"
)

// MaxPoolRect is max pooling with independent vertical/horizontal window
// sizes and strides. CharCNN's 1-D pipeline uses it with KW=SW=1 so text
// laid out along the H axis pools only along the sequence dimension.
type MaxPoolRect struct {
	label          string
	KH, KW, SH, SW int

	inShape []int
	argmax  []int
}

// NewMaxPoolRect creates a rectangular max-pooling layer.
func NewMaxPoolRect(label string, kh, kw, sh, sw int) *MaxPoolRect {
	if kh < 1 || kw < 1 || sh < 1 || sw < 1 {
		panic("nn: MaxPoolRect window/stride must be >= 1")
	}
	return &MaxPoolRect{label: label, KH: kh, KW: kw, SH: sh, SW: sw}
}

// Forward computes the windowed max.
func (p *MaxPoolRect) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: %s expects NCHW, got %v", p.label, x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := (h-p.KH)/p.SH + 1
	ow := (w-p.KW)/p.SW + 1
	if oh < 1 || ow < 1 {
		panic(fmt.Sprintf("nn: %s window too large for %v", p.label, x.Shape))
	}
	y := tensor.New(n, c, oh, ow)
	if train {
		p.inShape = []int{n, c, h, w}
		p.argmax = make([]int, n*c*oh*ow)
	}
	for i := 0; i < n*c; i++ {
		src := x.Data[i*h*w:]
		dstBase := i * oh * ow
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := float32(math.Inf(-1))
				bi := -1
				for ky := 0; ky < p.KH; ky++ {
					iy := oy*p.SH + ky
					for kx := 0; kx < p.KW; kx++ {
						ix := ox*p.SW + kx
						if v := src[iy*w+ix]; v > best {
							best, bi = v, iy*w+ix
						}
					}
				}
				y.Data[dstBase+oy*ow+ox] = best
				if train {
					p.argmax[dstBase+oy*ow+ox] = i*h*w + bi
				}
			}
		}
	}
	return y
}

// Backward scatters gradients to the max positions.
func (p *MaxPoolRect) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.argmax == nil {
		panic("nn: MaxPoolRect.Backward before Forward(train=true)")
	}
	dx := tensor.New(p.inShape...)
	for i, v := range grad.Data {
		dx.Data[p.argmax[i]] += v
	}
	p.argmax = nil
	return dx
}

// Params returns nil.
func (p *MaxPoolRect) Params() []*Param { return nil }

// Name returns the layer label.
func (p *MaxPoolRect) Name() string { return p.label }

package nn

import (
	"math/rand"
	"testing"

	"adcnn/internal/tensor"
)

// TestConv2DForwardIntoInferenceAllocFree verifies the acceptance
// criterion that inference-mode forward passes take all im2col/column
// scratch from the buffer pool: ForwardInto into a preallocated output
// performs zero per-call heap allocations.
func TestConv2DForwardIntoInferenceAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D("c", 8, 16, 3, 3, 1, 1, rng)
	x := tensor.New(1, 8, 16, 16)
	x.RandU(rng, -1, 1)
	y := tensor.New(conv.OutShape(x.Shape)...)
	conv.ForwardInto(y, x, false) // prime the pool
	allocs := testing.AllocsPerRun(100, func() {
		conv.ForwardInto(y, x, false)
	})
	// Tolerate sub-1 noise from a GC sweep emptying the sync.Pool mid-run.
	if allocs >= 0.5 {
		t.Fatalf("Conv2D.ForwardInto(train=false) allocates %v per call, want 0", allocs)
	}
}

func TestConv2DOneByOneForwardIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	conv := NewConv2D("c1x1", 16, 8, 1, 1, 1, 0, rng)
	x := tensor.New(1, 16, 12, 12)
	x.RandU(rng, -1, 1)
	y := tensor.New(conv.OutShape(x.Shape)...)
	conv.ForwardInto(y, x, false)
	allocs := testing.AllocsPerRun(100, func() {
		conv.ForwardInto(y, x, false)
	})
	if allocs >= 0.5 {
		t.Fatalf("1x1 Conv2D.ForwardInto(train=false) allocates %v per call, want 0", allocs)
	}
}

func TestLinearForwardIntoInferenceAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lin := NewLinear("fc", 64, 32, rng)
	x := tensor.New(1, 64)
	x.RandU(rng, -1, 1)
	y := tensor.New(1, 32)
	lin.ForwardInto(y, x, false)
	allocs := testing.AllocsPerRun(100, func() {
		lin.ForwardInto(y, x, false)
	})
	if allocs >= 0.5 {
		t.Fatalf("Linear.ForwardInto(train=false) allocates %v per call, want 0", allocs)
	}
}

// TestConv2DOneByOnePropertyVsReference is the 1×1-conv leg of the GEMM
// property test: the no-im2col fast path must agree with the reference
// matmul of the flattened filters against the input planes.
func TestConv2DOneByOnePropertyVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		inC := 1 + rng.Intn(12)
		outC := 1 + rng.Intn(12)
		h := 1 + rng.Intn(9)
		w := 1 + rng.Intn(9)
		n := 1 + rng.Intn(3)
		conv := NewConv2D("p", inC, outC, 1, 1, 1, 0, rng)
		conv.Bias.Value.RandU(rng, -1, 1)
		x := tensor.New(n, inC, h, w)
		x.RandU(rng, -1, 1)

		got := conv.Forward(x, false)

		w2 := conv.Weight.Value.Reshape(outC, inC)
		plane := h * w
		want := tensor.New(n, outC, h, w)
		for i := 0; i < n; i++ {
			xi := tensor.FromSlice(x.Data[i*inC*plane:(i+1)*inC*plane], inC, plane)
			yi := tensor.New(outC, plane)
			tensor.RefMatMulInto(yi, w2, xi)
			for oc := 0; oc < outC; oc++ {
				b := conv.Bias.Value.Data[oc]
				for j := 0; j < plane; j++ {
					want.Data[(i*outC+oc)*plane+j] = yi.Data[oc*plane+j] + b
				}
			}
		}
		if !got.Equal(want, 1e-4) {
			t.Fatalf("1x1 conv diverges from reference (inC=%d outC=%d h=%d w=%d n=%d)", inC, outC, h, w, n)
		}
	}
}

// TestConv2DGeneralPropertyVsReference cross-checks the full
// im2col+blocked-GEMM forward path against Im2Col + the reference matmul.
func TestConv2DGeneralPropertyVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		inC := 1 + rng.Intn(6)
		outC := 1 + rng.Intn(10)
		kh := 1 + rng.Intn(4)
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(2)
		h := kh + rng.Intn(10)
		w := kh + rng.Intn(10)
		conv := NewConv2D("g", inC, outC, kh, kh, stride, pad, rng)
		conv.Bias.Value.RandU(rng, -1, 1)
		x := tensor.New(2, inC, h, w)
		x.RandU(rng, -1, 1)

		got := conv.Forward(x, false)

		oh, ow := conv.Geom.OutSize(h, w)
		plane := oh * ow
		w2 := conv.Weight.Value.Reshape(outC, inC*kh*kh)
		want := tensor.New(2, outC, oh, ow)
		for i := 0; i < 2; i++ {
			xi := tensor.FromSlice(x.Data[i*inC*h*w:(i+1)*inC*h*w], inC, h, w)
			cols := tensor.Im2Col(xi, conv.Geom)
			yi := tensor.New(outC, plane)
			tensor.RefMatMulInto(yi, w2, cols)
			for oc := 0; oc < outC; oc++ {
				b := conv.Bias.Value.Data[oc]
				for j := 0; j < plane; j++ {
					want.Data[(i*outC+oc)*plane+j] = yi.Data[oc*plane+j] + b
				}
			}
		}
		if !got.Equal(want, 1e-3) {
			t.Fatalf("conv diverges from reference (inC=%d outC=%d k=%d s=%d p=%d h=%d w=%d)",
				inC, outC, kh, stride, pad, h, w)
		}
	}
}

package nn

import (
	"math/rand"

	"adcnn/internal/tensor"
)

// ReLU is the standard rectified linear unit.
type ReLU struct {
	label string
	mask  []bool
}

// NewReLU creates a ReLU activation layer.
func NewReLU(label string) *ReLU { return &ReLU{label: label} }

// Forward computes max(0, x).
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.New(x.Shape...)
	if train {
		r.mask = make([]bool, len(x.Data))
	}
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
			if train {
				r.mask[i] = true
			}
		}
	}
	return y
}

// Backward zeroes the gradient where the forward input was non-positive.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil {
		panic("nn: ReLU.Backward before Forward(train=true)")
	}
	dx := tensor.New(grad.Shape...)
	for i, v := range grad.Data {
		if r.mask[i] {
			dx.Data[i] = v
		}
	}
	r.mask = nil
	return dx
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Name returns the layer label.
func (r *ReLU) Name() string { return r.label }

// ClippedReLU is the paper's ReLU[a,b] (Section 4.1):
//
//	y = b-a  if x > b
//	y = x-a  if a <= x <= b
//	y = 0    if x < a
//
// The lower bound a prunes small activations to exact zeros (raising
// sparsity for the RLE stage) and the upper bound b caps the dynamic
// range so a fixed-point quantizer covers it with few bits.
type ClippedReLU struct {
	label string
	Lo    float32 // a
	Hi    float32 // b
	mask  []bool  // true where gradient passes (a <= x <= b)
}

// NewClippedReLU creates a clipped ReLU with bounds [lo, hi].
func NewClippedReLU(label string, lo, hi float32) *ClippedReLU {
	if hi <= lo {
		panic("nn: ClippedReLU requires hi > lo")
	}
	return &ClippedReLU{label: label, Lo: lo, Hi: hi}
}

// Range returns the output dynamic range b-a.
func (c *ClippedReLU) Range() float32 { return c.Hi - c.Lo }

// Forward applies the clipped rectifier.
func (c *ClippedReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.New(x.Shape...)
	if train {
		c.mask = make([]bool, len(x.Data))
	}
	for i, v := range x.Data {
		switch {
		case v > c.Hi:
			y.Data[i] = c.Hi - c.Lo
		case v >= c.Lo:
			y.Data[i] = v - c.Lo
			if train {
				c.mask[i] = true
			}
		}
	}
	return y
}

// Backward passes gradient only through the linear region.
func (c *ClippedReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.mask == nil {
		panic("nn: ClippedReLU.Backward before Forward(train=true)")
	}
	dx := tensor.New(grad.Shape...)
	for i, v := range grad.Data {
		if c.mask[i] {
			dx.Data[i] = v
		}
	}
	c.mask = nil
	return dx
}

// Params returns nil; the bounds are hyperparameters, not learned.
func (c *ClippedReLU) Params() []*Param { return nil }

// Name returns the layer label.
func (c *ClippedReLU) Name() string { return c.label }

// Dropout randomly zeroes activations during training (inverted dropout,
// so inference is the identity).
type Dropout struct {
	label string
	P     float32
	rng   *rand.Rand
	mask  []float32
}

// NewDropout creates a dropout layer with drop probability p.
func NewDropout(label string, p float32, rng *rand.Rand) *Dropout {
	return &Dropout{label: label, P: p, rng: rng}
}

// Forward applies the dropout mask in training mode; identity otherwise.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		return x.Clone()
	}
	y := tensor.New(x.Shape...)
	d.mask = make([]float32, len(x.Data))
	scale := 1 / (1 - d.P)
	for i, v := range x.Data {
		if d.rng.Float32() >= d.P {
			d.mask[i] = scale
			y.Data[i] = v * scale
		}
	}
	return y
}

// Backward applies the same mask to the gradient.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		// Dropout was a no-op (P==0); pass gradient through.
		return grad.Clone()
	}
	dx := tensor.New(grad.Shape...)
	for i, v := range grad.Data {
		dx.Data[i] = v * d.mask[i]
	}
	d.mask = nil
	return dx
}

// Params returns nil; dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }

// Name returns the layer label.
func (d *Dropout) Name() string { return d.label }

package nn

// Layer-tree walkers for the int8 inference path: models enable or
// disable quantized execution across a whole network without knowing its
// block structure.

// QuantizeInt8 walks a layer tree (through Sequential and Residual
// containers) and snapshots int8 weights on every Conv2D and Linear.
// It returns how many layers were quantized; on error the already
// quantized layers keep their snapshots (call ClearInt8 to roll back).
func QuantizeInt8(root Layer) (int, error) {
	n := 0
	var walk func(l Layer) error
	walk = func(l Layer) error {
		switch v := l.(type) {
		case *Sequential:
			for _, s := range v.Layers {
				if err := walk(s); err != nil {
					return err
				}
			}
		case *Residual:
			if err := walk(v.Body); err != nil {
				return err
			}
			if v.Shortcut != nil {
				return walk(v.Shortcut)
			}
		case *Conv2D:
			if err := v.QuantizeInt8(); err != nil {
				return err
			}
			n++
		case *Linear:
			if err := v.QuantizeInt8(); err != nil {
				return err
			}
			n++
		}
		return nil
	}
	err := walk(root)
	return n, err
}

// ClearInt8 walks a layer tree and drops every int8 snapshot, restoring
// pure f32 inference.
func ClearInt8(root Layer) {
	switch v := root.(type) {
	case *Sequential:
		for _, s := range v.Layers {
			ClearInt8(s)
		}
	case *Residual:
		ClearInt8(v.Body)
		if v.Shortcut != nil {
			ClearInt8(v.Shortcut)
		}
	case *Conv2D:
		v.ClearInt8()
	case *Linear:
		v.ClearInt8()
	}
}

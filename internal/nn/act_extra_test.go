package nn

import (
	"math"
	"testing"

	"adcnn/internal/tensor"
)

func TestLeakyReLUForward(t *testing.T) {
	l := NewLeakyReLU("lr", 0.1)
	x := tensor.FromSlice([]float32{-2, 0, 3}, 3)
	y := l.Forward(x, false)
	want := []float32{-0.2, 0, 3}
	for i := range want {
		if math.Abs(float64(y.Data[i]-want[i])) > 1e-6 {
			t.Fatalf("leaky = %v", y.Data)
		}
	}
}

func TestLeakyReLUGradients(t *testing.T) {
	l := NewLeakyReLU("lr", 0.1)
	x := randInput(2, 3, 3)
	for i := range x.Data {
		if math.Abs(float64(x.Data[i])) < 0.05 {
			x.Data[i] = 0.4
		}
	}
	checkInputGrad(t, l, x, 1e-2)
}

func TestLeakyReLUBadAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLeakyReLU("bad", 1.5)
}

func TestSigmoidGradients(t *testing.T) {
	s := NewSigmoid("sig")
	x := randInput(2, 4)
	checkInputGrad(t, s, x, 1e-2)
}

func TestSigmoidRange(t *testing.T) {
	s := NewSigmoid("sig")
	x := tensor.FromSlice([]float32{-100, 0, 100}, 3)
	y := s.Forward(x, false)
	if y.Data[0] > 1e-6 || math.Abs(float64(y.Data[1]-0.5)) > 1e-6 || y.Data[2] < 1-1e-6 {
		t.Fatalf("sigmoid values %v", y.Data)
	}
}

func TestTanhGradients(t *testing.T) {
	th := NewTanh("tanh")
	x := randInput(2, 4)
	checkInputGrad(t, th, x, 1e-2)
}

func TestTanhOddFunction(t *testing.T) {
	th := NewTanh("tanh")
	x := tensor.FromSlice([]float32{-1.5, 1.5}, 2)
	y := th.Forward(x, false)
	if math.Abs(float64(y.Data[0]+y.Data[1])) > 1e-6 {
		t.Fatalf("tanh must be odd: %v", y.Data)
	}
}

package nn

import (
	"fmt"

	"adcnn/internal/tensor"
)

// Upsample2D performs nearest-neighbour upsampling by an integer factor,
// used by the FCN head to restore input resolution after the backbone's
// pooling. Backward sums the gradient over each replicated block.
type Upsample2D struct {
	label   string
	Factor  int
	inShape []int
}

// NewUpsample2D creates an upsampling layer.
func NewUpsample2D(label string, factor int) *Upsample2D {
	if factor < 1 {
		panic("nn: upsample factor must be >= 1")
	}
	return &Upsample2D{label: label, Factor: factor}
}

// Forward replicates each pixel factor×factor times.
func (u *Upsample2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: %s expects NCHW, got %v", u.label, x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	f := u.Factor
	y := tensor.New(n, c, h*f, w*f)
	for i := 0; i < n*c; i++ {
		src := x.Data[i*h*w : (i+1)*h*w]
		dst := y.Data[i*h*f*w*f:]
		for yy := 0; yy < h; yy++ {
			for xx := 0; xx < w; xx++ {
				v := src[yy*w+xx]
				for fy := 0; fy < f; fy++ {
					row := dst[(yy*f+fy)*w*f+xx*f:]
					for fx := 0; fx < f; fx++ {
						row[fx] = v
					}
				}
			}
		}
	}
	if train {
		u.inShape = []int{n, c, h, w}
	}
	return y
}

// Backward sums gradients over each factor×factor block.
func (u *Upsample2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if u.inShape == nil {
		panic("nn: Upsample2D.Backward before Forward(train=true)")
	}
	n, c, h, w := u.inShape[0], u.inShape[1], u.inShape[2], u.inShape[3]
	f := u.Factor
	dx := tensor.New(u.inShape...)
	for i := 0; i < n*c; i++ {
		src := grad.Data[i*h*f*w*f:]
		dst := dx.Data[i*h*w : (i+1)*h*w]
		for yy := 0; yy < h; yy++ {
			for xx := 0; xx < w; xx++ {
				var s float32
				for fy := 0; fy < f; fy++ {
					row := src[(yy*f+fy)*w*f+xx*f:]
					for fx := 0; fx < f; fx++ {
						s += row[fx]
					}
				}
				dst[yy*w+xx] = s
			}
		}
	}
	u.inShape = nil
	return dx
}

// Params returns nil.
func (u *Upsample2D) Params() []*Param { return nil }

// Name returns the layer label.
func (u *Upsample2D) Name() string { return u.label }

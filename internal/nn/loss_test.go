package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"adcnn/internal/tensor"
)

func TestSoftmaxCrossEntropyUniform(t *testing.T) {
	logits := tensor.New(2, 4) // all-zero logits → uniform distribution
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 3})
	want := math.Log(4)
	if math.Abs(loss-want) > 1e-6 {
		t.Fatalf("loss = %v, want ln(4)=%v", loss, want)
	}
	// gradient rows sum to zero
	for i := 0; i < 2; i++ {
		var s float64
		for j := 0; j < 4; j++ {
			s += float64(grad.At(i, j))
		}
		if math.Abs(s) > 1e-6 {
			t.Fatalf("grad row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxCrossEntropyGradNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	logits := tensor.New(3, 5)
	logits.RandN(rng, 1)
	labels := []int{1, 4, 0}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	const eps = 1e-3
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig - eps
		lm, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(grad.Data[i])) > 1e-3 {
			t.Fatalf("grad[%d]: numeric %v vs analytic %v", i, num, grad.Data[i])
		}
	}
}

func TestPixelSoftmaxCrossEntropyGradNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	logits := tensor.New(1, 3, 2, 2)
	logits.RandN(rng, 1)
	labels := []int{0, 1, 2, 1}
	_, grad := PixelSoftmaxCrossEntropy(logits, labels)
	const eps = 1e-3
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := PixelSoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig - eps
		lm, _ := PixelSoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(grad.Data[i])) > 1e-3 {
			t.Fatalf("grad[%d]: numeric %v vs analytic %v", i, num, grad.Data[i])
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		1, 2, 0, // argmax 1
		5, 0, 0, // argmax 0
		0, 0, 9, // argmax 2
	}, 3, 3)
	if got := Accuracy(logits, []int{1, 0, 0}); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("Accuracy = %v", got)
	}
}

func TestPixelAccuracyAndIoU(t *testing.T) {
	// 2 classes, 1x(2x2): predictions = class of max logit per pixel.
	logits := tensor.FromSlice([]float32{
		// class 0 plane
		1, 0,
		0, 1,
		// class 1 plane
		0, 1,
		1, 0,
	}, 1, 2, 2, 2)
	labels := []int{0, 1, 0, 0} // predicted: 0,1,1,0 → 3/4 pixel acc
	if got := PixelAccuracy(logits, labels); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("PixelAccuracy = %v", got)
	}
	iou := MeanIoU(logits, labels)
	// class0: inter=2, union=3 → 2/3; class1: inter=1, union=2 → 1/2; mean=7/12
	if math.Abs(iou-7.0/12) > 1e-9 {
		t.Fatalf("MeanIoU = %v, want %v", iou, 7.0/12)
	}
}

func TestSGDConvergesOnLinearProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Learn a separable 2-class problem with one linear layer.
	l := NewLinear("fc", 2, 2, rng)
	opt := NewSGD(0.5, 0.9, 0)
	n := 64
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float32()*2-1, rng.Float32()*2-1
		x.Set(a, i, 0)
		x.Set(b, i, 1)
		if a+b > 0 {
			labels[i] = 1
		}
	}
	var last float64
	for epoch := 0; epoch < 60; epoch++ {
		y := l.Forward(x, true)
		loss, g := SoftmaxCrossEntropy(y, labels)
		l.Backward(g)
		opt.Step(l.Params())
		last = loss
	}
	y := l.Forward(x, false)
	if acc := Accuracy(y, labels); acc < 0.95 {
		t.Fatalf("SGD failed to fit linear problem: acc %v, last loss %v", acc, last)
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewLinear("fc", 4, 4, rng)
	before := l.Weight.Value.Clone()
	opt := NewSGD(0.1, 0, 0.5)
	// zero gradient + weight decay → pure shrink
	opt.Step(l.Params())
	for i := range before.Data {
		want := before.Data[i] * (1 - 0.1*0.5)
		if math.Abs(float64(l.Weight.Value.Data[i]-want)) > 1e-5 {
			t.Fatalf("weight decay wrong at %d: %v vs %v", i, l.Weight.Value.Data[i], want)
		}
	}
}

func TestSaveLoadParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	build := func() *Sequential {
		r := rand.New(rand.NewSource(999))
		return NewSequential("m",
			NewConv2D("c", 1, 2, 3, 3, 1, 1, r),
			NewBatchNorm2D("bn", 2),
			NewReLU("r"),
			NewFlatten("f"),
			NewLinear("fc", 2*4*4, 3, r),
		)
	}
	m1 := build()
	for _, p := range m1.Params() {
		p.Value.RandN(rng, 1)
	}
	// push some batch stats through
	x := tensor.New(2, 1, 4, 4)
	x.RandN(rng, 1)
	m1.Forward(x, true)

	var buf bytes.Buffer
	if err := m1.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := build()
	if err := m2.LoadParams(&buf); err != nil {
		t.Fatal(err)
	}
	y1 := m1.Forward(x, false)
	y2 := m2.Forward(x, false)
	if !y1.Equal(y2, 1e-6) {
		t.Fatal("loaded model must reproduce original outputs")
	}
}

func TestCopyParamsFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	build := func(seed int64) *Sequential {
		r := rand.New(rand.NewSource(seed))
		return NewSequential("m",
			NewConv2D("c", 1, 2, 3, 3, 1, 1, r),
			NewBatchNorm2D("bn", 2),
			NewFlatten("f"),
			NewLinear("fc", 2*3*3, 2, r),
		)
	}
	src := build(1)
	dst := build(2)
	x := tensor.New(1, 1, 3, 3)
	x.RandN(rng, 1)
	src.Forward(x, true) // make running stats non-trivial
	if err := dst.CopyParamsFrom(src); err != nil {
		t.Fatal(err)
	}
	y1 := src.Forward(x, false)
	y2 := dst.Forward(x, false)
	if !y1.Equal(y2, 1e-6) {
		t.Fatal("CopyParamsFrom must make models functionally identical")
	}
}

func TestCopyParamsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := NewSequential("a", NewLinear("fc", 2, 2, rng))
	b := NewSequential("b", NewLinear("fc", 2, 3, rng))
	if err := a.CopyParamsFrom(b); err == nil {
		t.Fatal("size mismatch must be reported")
	}
	c := NewSequential("c", NewLinear("fc", 2, 2, rng), NewLinear("fc2", 2, 2, rng))
	if err := a.CopyParamsFrom(c); err == nil {
		t.Fatal("count mismatch must be reported")
	}
}

func TestForwardUpToFromSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	seq := NewSequential("net",
		NewConv2D("c1", 1, 2, 3, 3, 1, 1, rng),
		NewReLU("r1"),
		NewFlatten("f"),
		NewLinear("fc", 2*4*4, 3, rng),
	)
	x := tensor.New(1, 1, 4, 4)
	x.RandN(rng, 1)
	full := seq.Forward(x, false)
	for split := 0; split <= len(seq.Layers); split++ {
		mid := seq.ForwardUpTo(x, split, false)
		out := seq.ForwardFrom(mid, split, false)
		if !out.Equal(full, 1e-6) {
			t.Fatalf("split at %d changes the output", split)
		}
	}
}

package nn

import (
	"fmt"
	"math"
	"math/rand"

	"adcnn/internal/quant"
	"adcnn/internal/tensor"
)

// Flatten reshapes NCHW activations to [N, C*H*W]. It is a pure view
// change but records the input shape so gradients can be folded back.
type Flatten struct {
	label   string
	inShape []int
}

// NewFlatten creates a flatten layer.
func NewFlatten(label string) *Flatten { return &Flatten{label: label} }

// Forward flattens all non-batch dimensions.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		f.inShape = append([]int(nil), x.Shape...)
	}
	n := x.Shape[0]
	return x.Reshape(n, x.Len()/n)
}

// Backward restores the original shape.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if f.inShape == nil {
		panic("nn: Flatten.Backward before Forward(train=true)")
	}
	out := grad.Reshape(f.inShape...)
	f.inShape = nil
	return out
}

// Params returns nil.
func (f *Flatten) Params() []*Param { return nil }

// Name returns the layer label.
func (f *Flatten) Name() string { return f.label }

// Linear is a fully connected layer: y = x·Wᵀ + b with W of shape
// [Out, In] and input [N, In].
type Linear struct {
	label        string
	In, Out      int
	Weight, Bias *Param

	x *tensor.Tensor // cached input

	// int8 inference snapshot (linear_int8.go); nil means f32 execution
	int8w *quant.PerChannel
}

// NewLinear creates a fully connected layer with He-initialised weights.
func NewLinear(label string, in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		label:  label,
		In:     in,
		Out:    out,
		Weight: NewParam(label+".weight", out, in),
		Bias:   NewParam(label+".bias", out),
	}
	std := float32(math.Sqrt(2.0 / float64(in)))
	l.Weight.Value.RandN(rng, std)
	return l
}

// Forward computes the affine transform.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.New(x.Shape[0], l.Out)
	l.ForwardInto(y, x, train)
	return y
}

// ForwardInto is Forward writing into a caller-owned [N, Out] output. In
// inference mode (train=false) the call is allocation-free: the GEMM runs
// either in the small-batch dot kernel or against pooled repack scratch.
func (l *Linear) ForwardInto(y, x *tensor.Tensor, train bool) {
	if x.Rank() != 2 || x.Shape[1] != l.In {
		panic(fmt.Sprintf("nn: %s expects [N %d], got %v", l.label, l.In, x.Shape))
	}
	n := x.Shape[0]
	if y.Rank() != 2 || y.Shape[0] != n || y.Shape[1] != l.Out {
		panic(fmt.Sprintf("nn: %s output shape %v, want [%d %d]", l.label, y.Shape, n, l.Out))
	}
	if !train && l.int8w != nil && l.forwardInt8(y, x) {
		return
	}
	tensor.MatMulTransBInto(y, x, l.Weight.Value) // [N,In]·[Out,In]ᵀ = [N,Out]
	bias := l.Bias.Value.Data
	for i := 0; i < n; i++ {
		row := y.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += bias[j]
		}
	}
	if train {
		l.x = x.Clone()
	}
}

// Backward accumulates dW = gᵀ·x, db = Σg and returns dx = g·W.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.x == nil {
		panic("nn: Linear.Backward before Forward(train=true)")
	}
	// dW[Out,In] += gradᵀ[Out,N] · x[N,In]; the temporary product lives in
	// pooled storage.
	dw := tensor.GetTensor(l.Out, l.In)
	tensor.MatMulTransAInto(dw, grad, l.x)
	l.Weight.Grad.Add(dw)
	tensor.PutTensor(dw)
	n := grad.Shape[0]
	for i := 0; i < n; i++ {
		row := grad.Data[i*l.Out : (i+1)*l.Out]
		for j, v := range row {
			l.Bias.Grad.Data[j] += v
		}
	}
	dx := tensor.MatMul(grad, l.Weight.Value) // [N,Out]·[Out,In]
	l.x = nil
	return dx
}

// Params returns weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Name returns the layer label.
func (l *Linear) Name() string { return l.label }

// FLOPs returns the multiply-accumulate count (×2) per sample.
func (l *Linear) FLOPs() int64 { return 2 * int64(l.In) * int64(l.Out) }

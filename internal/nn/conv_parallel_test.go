package nn

import (
	"math/rand"
	"runtime"
	"testing"

	"adcnn/internal/tensor"
)

// TestConvParallelDeterminism: batch-parallel execution must produce the
// same numbers as single-threaded execution (the reduction order of the
// weight-gradient shards is fixed).
func TestConvParallelDeterminism(t *testing.T) {
	run := func(procs int) (*tensor.Tensor, *tensor.Tensor, *tensor.Tensor) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		rng := rand.New(rand.NewSource(77))
		conv := NewConv2D("c", 3, 5, 3, 3, 1, 1, rng)
		x := tensor.New(8, 3, 10, 10)
		x.RandN(rng, 1)
		y := conv.Forward(x, true)
		g := tensor.New(y.Shape...)
		g.Fill(0.5)
		dx := conv.Backward(g)
		return y, dx, conv.Weight.Grad
	}
	y1, dx1, dw1 := run(1)
	y2, dx2, dw2 := run(runtime.NumCPU())
	if !y1.Equal(y2, 0) {
		t.Fatal("forward output differs between 1 and N workers")
	}
	if !dx1.Equal(dx2, 0) {
		t.Fatal("input gradient differs between 1 and N workers")
	}
	if !dw1.Equal(dw2, 0) {
		t.Fatal("weight gradient differs between 1 and N workers")
	}
}

// The 1×1 fast path must agree with the generic im2col path in both
// directions (it shares Backward with the generic code).
func TestConv1x1FastPathMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	fast := NewConv2D("fast", 6, 4, 1, 1, 1, 0, rng)
	// A 1×1 conv with artificial padding disables the fast path but is
	// numerically different, so instead compare against a 1×1 expressed
	// through the generic path by forcing a fake 1×1 geometry via Im2Col:
	// the reference is a hand-rolled per-pixel matmul.
	x := tensor.New(2, 6, 5, 5)
	x.RandN(rng, 1)
	y := fast.Forward(x, true)
	for i := 0; i < 2; i++ {
		for oc := 0; oc < 4; oc++ {
			for p := 0; p < 25; p++ {
				var want float32
				for ic := 0; ic < 6; ic++ {
					want += fast.Weight.Value.At(oc, ic, 0, 0) * x.Data[i*6*25+ic*25+p]
				}
				want += fast.Bias.Value.Data[oc]
				got := y.Data[i*4*25+oc*25+p]
				if d := got - want; d > 1e-4 || d < -1e-4 {
					t.Fatalf("1x1 mismatch at (%d,%d,%d): %v vs %v", i, oc, p, got, want)
				}
			}
		}
	}
	// Backward through the cached view must produce finite gradients.
	g := tensor.New(y.Shape...)
	g.Fill(1)
	dx := fast.Backward(g)
	if !dx.SameShape(x) {
		t.Fatal("backward shape")
	}
}

func BenchmarkConvForwardBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D("c", 16, 32, 3, 3, 1, 1, rng)
	x := tensor.New(16, 16, 32, 32)
	x.RandN(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, false)
	}
}

func BenchmarkConvTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	conv := NewConv2D("c", 8, 16, 3, 3, 1, 1, rng)
	x := tensor.New(8, 8, 16, 16)
	x.RandN(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := conv.Forward(x, true)
		conv.Backward(y)
	}
}

package nn

import (
	"fmt"

	"adcnn/internal/tensor"
)

// Residual implements the ResNet shortcut block (paper Figure 2(b,c)):
// y = ReLU(body(x) + shortcut(x)). The shortcut is the identity when the
// body preserves shape, or a projection (1×1 conv + BN) when it does not.
type Residual struct {
	label    string
	Body     *Sequential
	Shortcut *Sequential // nil means identity
	relu     *ReLU
}

// NewResidual creates a residual block; pass shortcut=nil for identity.
func NewResidual(label string, body *Sequential, shortcut *Sequential) *Residual {
	return &Residual{label: label, Body: body, Shortcut: shortcut, relu: NewReLU(label + ".relu")}
}

// Forward computes ReLU(body(x) + shortcut(x)).
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	main := r.Body.Forward(x, train)
	var skip *tensor.Tensor
	if r.Shortcut != nil {
		skip = r.Shortcut.Forward(x, train)
	} else {
		skip = x
	}
	if !main.SameShape(skip) {
		panic(fmt.Sprintf("nn: %s shape mismatch body %v vs shortcut %v", r.label, main.Shape, skip.Shape))
	}
	sum := main.Clone().Add(skip)
	return r.relu.Forward(sum, train)
}

// Backward propagates through the ReLU, the body, and the shortcut,
// summing the two input gradients.
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := r.relu.Backward(grad)
	dxBody := r.Body.Backward(g.Clone())
	if r.Shortcut != nil {
		dxSkip := r.Shortcut.Backward(g)
		return dxBody.Add(dxSkip)
	}
	return dxBody.Add(g)
}

// Params returns body and shortcut parameters.
func (r *Residual) Params() []*Param {
	ps := r.Body.Params()
	if r.Shortcut != nil {
		ps = append(ps, r.Shortcut.Params()...)
	}
	return ps
}

// Name returns the block label.
func (r *Residual) Name() string { return r.label }

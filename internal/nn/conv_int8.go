package nn

import (
	"fmt"

	"adcnn/internal/quant"
	"adcnn/internal/tensor"
)

// Int8 inference path for Conv2D. QuantizeInt8 snapshots the current
// weights as per-output-channel symmetric int8 in the packed layout the
// int8 GEMM consumes; inference forwards then quantize each sample's
// activations with a dynamic affine (min/max of the sample), run the
// int8×uint8→int32 GEMM, and requantize straight into the f32 output:
//
//	y[oc][j] = s_w[oc]·s_x·(acc[oc][j] − zp·Σ_k w_q[oc][k]) + bias[oc]
//
// The f32 weights are untouched — training and the f32 oracle path keep
// working — but the snapshot goes stale if weights change afterwards;
// re-call QuantizeInt8 (or ClearInt8) after updating parameters.

// QuantizeInt8 enables the int8 inference path, snapshotting the current
// weights with one symmetric scale per output channel.
func (c *Conv2D) QuantizeInt8() error {
	kdim := c.InC * c.Geom.KH * c.Geom.KW
	pc, err := quant.QuantizePerChannel(c.Weight.Value.Data, c.OutC, kdim, tensor.Int8KP(kdim))
	if err != nil {
		return fmt.Errorf("nn: %s: %w", c.label, err)
	}
	c.int8w = pc
	return nil
}

// ClearInt8 drops the int8 snapshot, restoring the f32 inference path.
func (c *Conv2D) ClearInt8() { c.int8w = nil }

// Int8 reports whether the int8 inference path is enabled.
func (c *Conv2D) Int8() bool { return c.int8w != nil }

// forwardSampleInt8 is the int8 counterpart of forwardSample: quantizing
// im2col into pooled uint8 scratch, int8 GEMM into pooled int32
// accumulators, fused requantize+bias into ys. Zero allocations. If the
// sample's activation range is non-finite (NaN/Inf input) it falls back
// to the f32 path, which propagates the values faithfully.
func (c *Conv2D) forwardSampleInt8(yd, xd []float32, i, h, w, oh, ow int) {
	plane := oh * ow
	sample := c.InC * h * w
	outSample := c.OutC * plane
	xs := xd[i*sample : (i+1)*sample]
	ys := yd[i*outSample : (i+1)*outSample]
	mn, mx := tensor.MinMax(xs)
	af, err := quant.AffineFor(mn, mx)
	if err != nil {
		c.forwardSample(yd, xd, i, h, w, oh, ow, false)
		return
	}
	kp := c.int8w.KP
	bq := tensor.GetBytes(plane * kp)
	tensor.Im2ColQuantSlice(bq, xs, c.InC, h, w, c.Geom, af.InvScale(), af.Zero, kp)
	c.int8Gemm(ys, bq, plane, af)
	tensor.PutBytes(bq)
}

// int8Gemm multiplies the packed activation columns against the int8
// weight snapshot and requantizes each output channel row (with bias)
// into ys[OutC][plane].
func (c *Conv2D) int8Gemm(ys []float32, bq []uint8, plane int, af quant.Affine) {
	acc := tensor.GetI32(c.OutC * plane)
	tensor.GemmInt8DotInto(acc, c.int8w.Data, bq, c.OutC, plane, c.int8w.KP)
	z := int32(af.Zero)
	for oc := 0; oc < c.OutC; oc++ {
		var b float32
		if c.UseBias {
			b = c.Bias.Value.Data[oc]
		}
		tensor.RequantizeI32Row(ys[oc*plane:(oc+1)*plane], acc[oc*plane:(oc+1)*plane],
			c.int8w.Scales[oc]*af.Scale, z*c.int8w.RowSum[oc], b)
	}
	tensor.PutI32(acc)
}

// ForwardLevelsInto runs the int8 forward on a single sample whose
// activations are already uint8 affine levels — a decoded wire payload —
// writing the f32 output [1, OutC, OH, OW] into y. This is how the Conv
// worker consumes a quantized tile without a dequant→f32→requant round
// trip: the levels feed the quantized im2col gather directly, with
// spatial padding reading as af.Zero (the level of 0.0). Requires
// QuantizeInt8 to have been called.
func (c *Conv2D) ForwardLevelsInto(y *tensor.Tensor, levels []uint8, h, w int, af quant.Affine) {
	if c.int8w == nil {
		panic(fmt.Sprintf("nn: %s ForwardLevelsInto without QuantizeInt8", c.label))
	}
	if len(levels) < c.InC*h*w {
		panic(fmt.Sprintf("nn: %s levels slice %d below %d×%d×%d", c.label, len(levels), c.InC, h, w))
	}
	oh, ow := c.Geom.OutSize(h, w)
	if y.Rank() != 4 || y.Shape[0] != 1 || y.Shape[1] != c.OutC || y.Shape[2] != oh || y.Shape[3] != ow {
		panic(fmt.Sprintf("nn: %s output shape %v, want [1 %d %d %d]", c.label, y.Shape, c.OutC, oh, ow))
	}
	plane := oh * ow
	kp := c.int8w.KP
	bq := tensor.GetBytes(plane * kp)
	tensor.Im2ColU8Slice(bq, levels, c.InC, h, w, c.Geom, af.Zero, kp)
	c.int8Gemm(y.Data, bq, plane, af)
	tensor.PutBytes(bq)
}

package nn

import (
	"math"

	"adcnn/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and clears the gradients.
	Step(params []*Param)
	// SetLR changes the learning rate (for schedules).
	SetLR(lr float32)
}

// SGD is stochastic gradient descent with momentum and L2 weight decay,
// matching the default PyTorch recipe the paper's retraining uses.
type SGD struct {
	LR          float32
	Momentum    float32
	WeightDecay float32

	velocity map[*Param]*tensor.Tensor
}

// NewSGD creates an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*Param]*tensor.Tensor)}
}

// Step applies one update to every parameter and clears the gradients.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		g := p.Grad
		if o.WeightDecay != 0 {
			g.AddScaled(o.WeightDecay, p.Value)
		}
		if o.Momentum != 0 {
			v, ok := o.velocity[p]
			if !ok {
				v = tensor.New(p.Value.Shape...)
				o.velocity[p] = v
			}
			v.Scale(o.Momentum).Add(g)
			p.Value.AddScaled(-o.LR, v)
		} else {
			p.Value.AddScaled(-o.LR, g)
		}
		p.ZeroGrad()
	}
}

// SetLR changes the learning rate.
func (o *SGD) SetLR(lr float32) { o.LR = lr }

var _ Optimizer = (*SGD)(nil)

// Adam is the Adam optimizer (Kingma & Ba) with optional decoupled-style
// L2 weight decay folded into the gradient.
type Adam struct {
	LR           float32
	Beta1, Beta2 float32
	Eps          float32
	WeightDecay  float32

	t int
	m map[*Param]*tensor.Tensor
	v map[*Param]*tensor.Tensor
}

// NewAdam creates an Adam optimizer with the standard β defaults.
func NewAdam(lr, weightDecay float32) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay,
		m: make(map[*Param]*tensor.Tensor),
		v: make(map[*Param]*tensor.Tensor),
	}
}

// Step applies one Adam update and clears the gradients.
func (o *Adam) Step(params []*Param) {
	o.t++
	bc1 := 1 - float32(math.Pow(float64(o.Beta1), float64(o.t)))
	bc2 := 1 - float32(math.Pow(float64(o.Beta2), float64(o.t)))
	for _, p := range params {
		g := p.Grad
		if o.WeightDecay != 0 {
			g.AddScaled(o.WeightDecay, p.Value)
		}
		m, ok := o.m[p]
		if !ok {
			m = tensor.New(p.Value.Shape...)
			o.m[p] = m
			o.v[p] = tensor.New(p.Value.Shape...)
		}
		v := o.v[p]
		for i, gi := range g.Data {
			m.Data[i] = o.Beta1*m.Data[i] + (1-o.Beta1)*gi
			v.Data[i] = o.Beta2*v.Data[i] + (1-o.Beta2)*gi*gi
			mhat := m.Data[i] / bc1
			vhat := v.Data[i] / bc2
			p.Value.Data[i] -= o.LR * mhat / (float32(math.Sqrt(float64(vhat))) + o.Eps)
		}
		p.ZeroGrad()
	}
}

// SetLR changes the learning rate.
func (o *Adam) SetLR(lr float32) { o.LR = lr }

var _ Optimizer = (*Adam)(nil)

// StepDecay returns the learning rate for an epoch under step decay:
// base · factor^(epoch/every) — the classic ImageNet-recipe schedule.
func StepDecay(base float32, epoch, every int, factor float32) float32 {
	if every <= 0 {
		return base
	}
	lr := base
	for k := 0; k < epoch/every; k++ {
		lr *= factor
	}
	return lr
}

package nn

import (
	"fmt"

	"adcnn/internal/quant"
	"adcnn/internal/tensor"
)

// Int8 inference path for Linear, mirroring conv_int8.go: per-output
// symmetric int8 weights, one dynamic affine for the whole input batch
// (inference batches here are single tiles or single samples), exact
// int32 accumulation, fused requantize+bias.

// QuantizeInt8 enables the int8 inference path, snapshotting the current
// weights with one symmetric scale per output row.
func (l *Linear) QuantizeInt8() error {
	pc, err := quant.QuantizePerChannel(l.Weight.Value.Data, l.Out, l.In, tensor.Int8KP(l.In))
	if err != nil {
		return fmt.Errorf("nn: %s: %w", l.label, err)
	}
	l.int8w = pc
	return nil
}

// ClearInt8 drops the int8 snapshot, restoring the f32 inference path.
func (l *Linear) ClearInt8() { l.int8w = nil }

// Int8 reports whether the int8 inference path is enabled.
func (l *Linear) Int8() bool { return l.int8w != nil }

// forwardInt8 computes y = x·Wᵀ + b through the int8 engine. Returns
// false (leaving y untouched) when the activation range is non-finite,
// in which case the caller runs the f32 path.
func (l *Linear) forwardInt8(y, x *tensor.Tensor) bool {
	mn, mx := tensor.MinMax(x.Data)
	af, err := quant.AffineFor(mn, mx)
	if err != nil {
		return false
	}
	n := x.Shape[0]
	kp := l.int8w.KP
	bq := tensor.GetBytes(n * kp)
	for i := 0; i < n; i++ {
		row := bq[i*kp : (i+1)*kp]
		tensor.QuantizeAffineSlice(row[:l.In], x.Data[i*l.In:(i+1)*l.In], af.InvScale(), af.Zero)
		for k := l.In; k < kp; k++ {
			row[k] = 0
		}
	}
	acc := tensor.GetI32(l.Out * n)
	tensor.GemmInt8DotInto(acc, l.int8w.Data, bq, l.Out, n, kp)
	// acc is [Out][n]; y is [n][Out] — transpose during requantization.
	z := int32(af.Zero)
	bias := l.Bias.Value.Data
	for oc := 0; oc < l.Out; oc++ {
		scale := l.int8w.Scales[oc] * af.Scale
		corr := z * l.int8w.RowSum[oc]
		b := bias[oc]
		for i := 0; i < n; i++ {
			y.Data[i*l.Out+oc] = scale*float32(acc[oc*n+i]-corr) + b
		}
	}
	tensor.PutI32(acc)
	tensor.PutBytes(bq)
	return true
}

package nn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"adcnn/internal/tensor"
)

func TestResidualWithBatchNormGradients(t *testing.T) {
	// The real ResNet unit: conv-bn-relu-conv-bn with identity shortcut.
	rng := rand.New(rand.NewSource(71))
	body := NewSequential("body",
		NewConv2D("c1", 2, 2, 3, 3, 1, 1, rng).NoBias(),
		NewBatchNorm2D("bn1", 2),
		NewReLU("r1"),
		NewConv2D("c2", 2, 2, 3, 3, 1, 1, rng).NoBias(),
		NewBatchNorm2D("bn2", 2),
	)
	res := NewResidual("res", body, nil)
	x := randInput(2, 2, 4, 4)
	checkInputGrad(t, res, x, 8e-2)
}

func TestForwardUpToOutOfRangePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	seq := NewSequential("s", NewReLU("r"), NewLinear("fc", 4, 4, rng))
	x := tensor.New(1, 4)
	for _, f := range []func(){
		func() { seq.ForwardUpTo(x, -1, false) },
		func() { seq.ForwardUpTo(x, 3, false) },
		func() { seq.ForwardFrom(x, -1, false) },
		func() { seq.ForwardFrom(x, 3, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLoadParamsRejectsCorruptStream(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	m := NewSequential("m", NewLinear("fc", 2, 2, rng))
	var buf bytes.Buffer
	if err := m.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if err := m.LoadParams(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic not rejected: %v", err)
	}
	// Truncated stream.
	if err := m.LoadParams(bytes.NewReader(good[:len(good)-3])); err == nil {
		t.Fatal("truncation not rejected")
	}
	// Wrong architecture (different tensor count).
	other := NewSequential("o", NewLinear("fc", 2, 2, rng), NewLinear("fc2", 2, 2, rng))
	if err := other.LoadParams(bytes.NewReader(good)); err == nil {
		t.Fatal("tensor-count mismatch not rejected")
	}
	// Wrong tensor size.
	small := NewSequential("s", NewLinear("fc", 2, 1, rng))
	if err := small.LoadParams(bytes.NewReader(good)); err == nil {
		t.Fatal("tensor-size mismatch not rejected")
	}
	// The pristine stream still loads.
	if err := m.LoadParams(bytes.NewReader(good)); err != nil {
		t.Fatal(err)
	}
}

func TestFrozenBatchNormMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	bn := NewBatchNorm2D("bn", 3)
	bn.RunningMean.RandN(rng, 1)
	bn.RunningVar.RandU(rng, 0.5, 2)
	x := randInput(2, 3, 4, 4)
	evalOut := bn.Forward(x, false)
	bn.Frozen = true
	frozenTrainOut := bn.Forward(x, true)
	if !evalOut.Equal(frozenTrainOut, 1e-5) {
		t.Fatal("frozen train-mode forward must equal eval forward")
	}
	// And gradients flow elementwise (no batch coupling): perturbing one
	// input changes only that output position.
	g := tensor.New(frozenTrainOut.Shape...)
	g.Set(1, 0, 0, 0, 0)
	dx := bn.Backward(g)
	nonzero := 0
	for _, v := range dx.Data {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("frozen BN must be elementwise: %d nonzero gradient entries", nonzero)
	}
}

func TestSequentialZeroGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	seq := NewSequential("s", NewLinear("fc", 3, 3, rng))
	x := tensor.New(2, 3)
	x.RandN(rng, 1)
	y := seq.Forward(x, true)
	seq.Backward(y)
	seq.ZeroGrad()
	for _, p := range seq.Params() {
		for _, v := range p.Grad.Data {
			if v != 0 {
				t.Fatal("ZeroGrad left residue")
			}
		}
	}
}

package nn

import (
	"math"
	"math/rand"
	"testing"

	"adcnn/internal/quant"
	"adcnn/internal/tensor"
)

// convInt8Bound computes the analytic per-element quantization error
// bound for conv output (oc, j): activation step × Σ|w[oc]| plus half
// the weight step × Σ|x̂[j]|, with a small absolute slack for the f32
// requantization arithmetic.
func convInt8Bound(w []float32, oc, kdim int, bq []uint8, j, kp int, af quant.Affine, wScale float32) float64 {
	var sumAbsW, sumAbsXhat float64
	for k := 0; k < kdim; k++ {
		sumAbsW += math.Abs(float64(w[oc*kdim+k]))
		xhat := float64(af.Scale) * float64(int32(bq[j*kp+k])-int32(af.Zero))
		sumAbsXhat += math.Abs(xhat)
	}
	return float64(af.Scale)*sumAbsW + float64(wScale)/2*sumAbsXhat + 1e-3
}

// TestConv2DInt8VsF32Oracle pins the int8 forward against the f32
// forward within the analytic quantization error bound, across
// geometries (padding, stride, 1×1) and a multi-sample batch.
func TestConv2DInt8VsF32Oracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	type cfg struct {
		inC, outC, kh, kw, stride, pad, h, w, n int
	}
	for _, c := range []cfg{
		{3, 8, 3, 3, 1, 1, 12, 12, 1},
		{4, 6, 3, 3, 2, 1, 11, 9, 2},
		{8, 5, 1, 1, 1, 0, 7, 7, 1},
	} {
		conv := NewConv2D("t", c.inC, c.outC, c.kh, c.kw, c.stride, c.pad, rng)
		x := tensor.New(c.n, c.inC, c.h, c.w)
		x.RandU(rng, -2, 2)
		oh, ow := conv.Geom.OutSize(c.h, c.w)
		yf := tensor.New(c.n, c.outC, oh, ow)
		conv.ForwardInto(yf, x, false)
		if err := conv.QuantizeInt8(); err != nil {
			t.Fatal(err)
		}
		if !conv.Int8() {
			t.Fatal("Int8() false after QuantizeInt8")
		}
		yq := tensor.New(c.n, c.outC, oh, ow)
		conv.ForwardInto(yq, x, false)

		kdim := c.inC * c.kh * c.kw
		kp := tensor.Int8KP(kdim)
		plane := oh * ow
		wd := conv.Weight.Value.Data
		for i := 0; i < c.n; i++ {
			xs := x.Data[i*c.inC*c.h*c.w : (i+1)*c.inC*c.h*c.w]
			mn, mx := tensor.MinMax(xs)
			af, err := quant.AffineFor(mn, mx)
			if err != nil {
				t.Fatal(err)
			}
			bq := make([]uint8, plane*kp)
			tensor.Im2ColQuantSlice(bq, xs, c.inC, c.h, c.w, conv.Geom, af.InvScale(), af.Zero, kp)
			for oc := 0; oc < c.outC; oc++ {
				// Reconstruct the per-channel scale the snapshot used.
				var maxAbs float32
				for k := 0; k < kdim; k++ {
					if a := float32(math.Abs(float64(wd[oc*kdim+k]))); a > maxAbs {
						maxAbs = a
					}
				}
				wScale := maxAbs / 127
				for j := 0; j < plane; j++ {
					idx := (i*c.outC+oc)*plane + j
					bound := convInt8Bound(wd, oc, kdim, bq, j, kp, af, wScale)
					if d := math.Abs(float64(yq.Data[idx] - yf.Data[idx])); d > bound {
						t.Fatalf("cfg %+v y[%d][%d][%d]: int8 %g vs f32 %g, |Δ|=%g > bound %g",
							c, i, oc, j, yq.Data[idx], yf.Data[idx], d, bound)
					}
				}
			}
		}
	}
}

// TestLinearInt8VsF32Oracle pins the int8 linear forward within the
// analytic bound.
func TestLinearInt8VsF32Oracle(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	lin := NewLinear("t", 50, 12, rng)
	x := tensor.New(3, 50)
	x.RandU(rng, -3, 3)
	yf := tensor.New(3, 12)
	lin.ForwardInto(yf, x, false)
	if err := lin.QuantizeInt8(); err != nil {
		t.Fatal(err)
	}
	yq := tensor.New(3, 12)
	lin.ForwardInto(yq, x, false)

	mn, mx := tensor.MinMax(x.Data)
	af, _ := quant.AffineFor(mn, mx)
	wd := lin.Weight.Value.Data
	for i := 0; i < 3; i++ {
		for oc := 0; oc < 12; oc++ {
			var maxAbs float32
			var sumAbsW, sumAbsXhat float64
			for k := 0; k < 50; k++ {
				wv := wd[oc*50+k]
				if a := float32(math.Abs(float64(wv))); a > maxAbs {
					maxAbs = a
				}
				sumAbsW += math.Abs(float64(wv))
				q := tensor.QuantizeAffine(x.Data[i*50+k], af.InvScale(), float32(af.Zero))
				sumAbsXhat += math.Abs(float64(af.Scale) * float64(int32(q)-int32(af.Zero)))
			}
			bound := float64(af.Scale)*sumAbsW + float64(maxAbs/127)/2*sumAbsXhat + 1e-3
			idx := i*12 + oc
			if d := math.Abs(float64(yq.Data[idx] - yf.Data[idx])); d > bound {
				t.Fatalf("y[%d][%d]: int8 %g vs f32 %g, |Δ|=%g > bound %g",
					i, oc, yq.Data[idx], yf.Data[idx], d, bound)
			}
		}
	}
}

// TestForwardLevelsMatchesInt8Forward: feeding pre-quantized levels must
// reproduce the internal quantize-then-multiply path bit-exactly, since
// both gathers produce the same packed operand.
func TestForwardLevelsMatchesInt8Forward(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	conv := NewConv2D("t", 4, 7, 3, 3, 1, 1, rng)
	if err := conv.QuantizeInt8(); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 4, 10, 10)
	x.RandU(rng, -1, 3)
	oh, ow := conv.Geom.OutSize(10, 10)
	yInt8 := tensor.New(1, 7, oh, ow)
	conv.ForwardInto(yInt8, x, false)

	mn, mx := tensor.MinMax(x.Data)
	af, err := quant.AffineFor(mn, mx)
	if err != nil {
		t.Fatal(err)
	}
	levels := make([]uint8, len(x.Data))
	tensor.QuantizeAffineSlice(levels, x.Data, af.InvScale(), af.Zero)
	yLv := tensor.New(1, 7, oh, ow)
	conv.ForwardLevelsInto(yLv, levels, 10, 10, af)
	for i := range yLv.Data {
		if yLv.Data[i] != yInt8.Data[i] {
			t.Fatalf("levels path diverges at %d: %g vs %g", i, yLv.Data[i], yInt8.Data[i])
		}
	}
}

// TestInt8ForwardAllocFree: the int8 conv and linear forwards must not
// allocate on the steady-state inference path.
func TestInt8ForwardAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	conv := NewConv2D("t", 8, 16, 3, 3, 1, 1, rng)
	if err := conv.QuantizeInt8(); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 8, 14, 14)
	x.RandU(rng, -1, 1)
	y := tensor.New(conv.OutShape(x.Shape)...)
	conv.ForwardInto(y, x, false) // prime the pools
	if avg := testing.AllocsPerRun(100, func() {
		conv.ForwardInto(y, x, false)
	}); avg >= 0.5 {
		t.Fatalf("int8 Conv2D forward allocates %.2f/op", avg)
	}

	lin := NewLinear("t", 128, 10, rng)
	if err := lin.QuantizeInt8(); err != nil {
		t.Fatal(err)
	}
	xl := tensor.New(1, 128)
	xl.RandU(rng, -1, 1)
	yl := tensor.New(1, 10)
	lin.ForwardInto(yl, xl, false)
	if avg := testing.AllocsPerRun(100, func() {
		lin.ForwardInto(yl, xl, false)
	}); avg >= 0.5 {
		t.Fatalf("int8 Linear forward allocates %.2f/op", avg)
	}

	// Levels entry point likewise.
	mn, mx := tensor.MinMax(x.Data)
	af, _ := quant.AffineFor(mn, mx)
	levels := make([]uint8, len(x.Data))
	tensor.QuantizeAffineSlice(levels, x.Data, af.InvScale(), af.Zero)
	conv.ForwardLevelsInto(y, levels, 14, 14, af)
	if avg := testing.AllocsPerRun(100, func() {
		conv.ForwardLevelsInto(y, levels, 14, 14, af)
	}); avg >= 0.5 {
		t.Fatalf("ForwardLevelsInto allocates %.2f/op", avg)
	}
}

// TestQuantizeInt8Walker: the tree walker quantizes every Conv2D and
// Linear through Sequential and Residual containers, and ClearInt8
// restores bit-exact f32 execution.
func TestQuantizeInt8Walker(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	body := NewSequential("body", NewConv2D("c2", 6, 6, 3, 3, 1, 1, rng).NoBias())
	net := NewSequential("net",
		NewConv2D("c1", 3, 6, 3, 3, 1, 1, rng),
		NewReLU("r1"),
		NewResidual("res", body, nil),
		NewFlatten("f"),
		NewLinear("l1", 6*8*8, 4, rng),
	)
	x := tensor.New(1, 3, 8, 8)
	x.RandU(rng, -1, 1)
	before := net.Forward(x, false).Clone()

	n, err := QuantizeInt8(net)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("quantized %d layers, want 3", n)
	}
	quantized := net.Forward(x, false)
	var diff float64
	for i := range before.Data {
		diff += math.Abs(float64(quantized.Data[i] - before.Data[i]))
	}
	if diff == 0 {
		t.Fatal("int8 forward identical to f32 — quantized path likely not taken")
	}

	ClearInt8(net)
	after := net.Forward(x, false)
	for i := range before.Data {
		if after.Data[i] != before.Data[i] {
			t.Fatalf("ClearInt8 did not restore f32 execution at %d", i)
		}
	}
}

// TestQuantizeInt8RejectsNonFinite: a layer with a NaN weight fails to
// quantize with a labelled error.
func TestQuantizeInt8RejectsNonFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	conv := NewConv2D("bad", 2, 2, 3, 3, 1, 1, rng)
	conv.Weight.Value.Data[5] = float32(math.NaN())
	if err := conv.QuantizeInt8(); err == nil {
		t.Fatal("expected error for NaN weight")
	}
	if conv.Int8() {
		t.Fatal("failed quantization must not enable the int8 path")
	}
}

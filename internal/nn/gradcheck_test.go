package nn

import (
	"math"
	"math/rand"
	"testing"

	"adcnn/internal/tensor"
)

// numericalGrad computes d(sum of f(x) weighted by w)/dx by central
// differences, where f runs the layer forward in training mode.
func numericalGrad(t *testing.T, layer Layer, x, w *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	const eps = 1e-2
	g := tensor.New(x.Shape...)
	for i := range x.Data {
		orig := x.Data[i]
		// Train-mode forward so layers that use batch statistics (BatchNorm)
		// are differentiated through the same path Backward assumes.
		x.Data[i] = orig + eps
		yp := layer.Forward(x, true)
		x.Data[i] = orig - eps
		ym := layer.Forward(x, true)
		x.Data[i] = orig
		var d float64
		for j := range yp.Data {
			d += float64(w.Data[j]) * (float64(yp.Data[j]) - float64(ym.Data[j]))
		}
		g.Data[i] = float32(d / (2 * eps))
	}
	return g
}

// checkInputGrad verifies layer.Backward against central differences for
// the weighted-sum loss L = <w, layer(x)>.
func checkInputGrad(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	y := layer.Forward(x, true)
	w := tensor.New(y.Shape...)
	w.RandN(rng, 1)
	analytic := layer.Backward(w.Clone())
	numeric := numericalGrad(t, layer, x, w)
	maxDiff, maxRef := 0.0, 1e-6
	for i := range analytic.Data {
		d := math.Abs(float64(analytic.Data[i]) - float64(numeric.Data[i]))
		if d > maxDiff {
			maxDiff = d
		}
		if r := math.Abs(float64(numeric.Data[i])); r > maxRef {
			maxRef = r
		}
	}
	if maxDiff/maxRef > tol {
		t.Fatalf("%s: input gradient mismatch: max diff %v (scale %v)", layer.Name(), maxDiff, maxRef)
	}
}

// checkParamGrad verifies parameter gradients by perturbing each
// parameter element.
func checkParamGrad(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	y := layer.Forward(x, true)
	w := tensor.New(y.Shape...)
	w.RandN(rng, 1)
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	layer.Backward(w.Clone())
	const eps = 1e-2
	for _, p := range layer.Params() {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			yp := layer.Forward(x, false)
			p.Value.Data[i] = orig - eps
			ym := layer.Forward(x, false)
			p.Value.Data[i] = orig
			var d float64
			for j := range yp.Data {
				d += float64(w.Data[j]) * (float64(yp.Data[j]) - float64(ym.Data[j]))
			}
			num := d / (2 * eps)
			ana := float64(p.Grad.Data[i])
			scale := math.Max(math.Abs(num), math.Max(math.Abs(ana), 1))
			if math.Abs(num-ana)/scale > tol {
				t.Fatalf("%s param %s[%d]: analytic %v vs numeric %v", layer.Name(), p.Name, i, ana, num)
			}
		}
	}
}

func randInput(shape ...int) *tensor.Tensor {
	rng := rand.New(rand.NewSource(42))
	x := tensor.New(shape...)
	x.RandN(rng, 1)
	return x
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D("conv", 2, 3, 3, 3, 1, 1, rng)
	x := randInput(2, 2, 5, 5)
	checkInputGrad(t, conv, x, 2e-2)
	checkParamGrad(t, conv, x, 2e-2)
}

func TestConv2DStride2Gradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	conv := NewConv2D("conv_s2", 2, 2, 3, 3, 2, 1, rng)
	x := randInput(1, 2, 6, 6)
	checkInputGrad(t, conv, x, 2e-2)
	checkParamGrad(t, conv, x, 2e-2)
}

func TestConv2DNoBias(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	conv := NewConv2D("conv_nb", 1, 2, 3, 3, 1, 1, rng).NoBias()
	if len(conv.Params()) != 1 {
		t.Fatalf("NoBias should expose only weight, got %d params", len(conv.Params()))
	}
	x := randInput(1, 1, 4, 4)
	checkInputGrad(t, conv, x, 2e-2)
}

func TestConv2DForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	conv := NewConv2D("conv_k", 1, 1, 2, 2, 1, 0, rng)
	conv.Weight.Value.Data = []float32{1, 0, 0, 1} // identity-ish: sum of diagonal
	conv.Bias.Value.Data[0] = 10
	x := tensor.FromSlice([]float32{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	y := conv.Forward(x, false)
	// single output: 1*1 + 4*1 + bias = 15
	if y.Len() != 1 || y.Data[0] != 15 {
		t.Fatalf("conv output %v, want [15]", y.Data)
	}
}

func TestConv2DShapeChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	conv := NewConv2D("c", 3, 4, 3, 3, 1, 1, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong channel count")
		}
	}()
	conv.Forward(tensor.New(1, 2, 8, 8), false)
}

func TestBatchNormGradients(t *testing.T) {
	bn := NewBatchNorm2D("bn", 3)
	x := randInput(4, 3, 3, 3)
	checkInputGrad(t, bn, x, 5e-2)
}

func TestBatchNormParamGradients(t *testing.T) {
	// Use eval-mode forward in finite difference: that checks against the
	// folded-affine path, so only validate the analytic direction against
	// a train-mode numeric computed manually here.
	bn := NewBatchNorm2D("bn", 2)
	x := randInput(3, 2, 2, 2)
	rng := rand.New(rand.NewSource(11))
	y := bn.Forward(x, true)
	w := tensor.New(y.Shape...)
	w.RandN(rng, 1)
	bn.Gamma.ZeroGrad()
	bn.Beta.ZeroGrad()
	bn.Backward(w.Clone())
	const eps = 1e-2
	for _, p := range []*Param{bn.Gamma, bn.Beta} {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			// Freeze running stats so the two train-mode forwards see the
			// same normalisation statistics.
			rm, rv := bn.RunningMean.Clone(), bn.RunningVar.Clone()
			p.Value.Data[i] = orig + eps
			yp := bn.Forward(x, true)
			p.Value.Data[i] = orig - eps
			ym := bn.Forward(x, true)
			p.Value.Data[i] = orig
			bn.RunningMean, bn.RunningVar = rm, rv
			var d float64
			for j := range yp.Data {
				d += float64(w.Data[j]) * (float64(yp.Data[j]) - float64(ym.Data[j]))
			}
			num := d / (2 * eps)
			ana := float64(p.Grad.Data[i])
			if math.Abs(num-ana)/math.Max(1, math.Abs(num)) > 5e-2 {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, i, ana, num)
			}
		}
	}
	bn.xhat = nil
}

func TestBatchNormInferenceMatchesFoldedAffine(t *testing.T) {
	bn := NewBatchNorm2D("bn", 2)
	rng := rand.New(rand.NewSource(13))
	bn.RunningMean.RandN(rng, 1)
	bn.RunningVar.RandU(rng, 0.5, 2)
	bn.Gamma.Value.RandU(rng, 0.5, 1.5)
	bn.Beta.Value.RandN(rng, 1)
	x := randInput(2, 2, 3, 3)
	y := bn.Forward(x, false)
	// Paper Section 2.1: inference equals y = a·x + b with a = γ/σ, b = β−µγ/σ.
	for ch := 0; ch < 2; ch++ {
		sigma := float32(math.Sqrt(float64(bn.RunningVar.Data[ch]) + float64(bn.Eps)))
		a := bn.Gamma.Value.Data[ch] / sigma
		b := bn.Beta.Value.Data[ch] - bn.RunningMean.Data[ch]*a
		for i := 0; i < 2; i++ {
			for yy := 0; yy < 3; yy++ {
				for xx := 0; xx < 3; xx++ {
					want := a*x.At(i, ch, yy, xx) + b
					got := y.At(i, ch, yy, xx)
					if math.Abs(float64(want-got)) > 1e-5 {
						t.Fatalf("folded affine mismatch: %v vs %v", got, want)
					}
				}
			}
		}
	}
}

func TestReLUGradients(t *testing.T) {
	r := NewReLU("relu")
	x := randInput(2, 2, 3, 3)
	// keep inputs away from the kink for finite differences
	for i := range x.Data {
		if math.Abs(float64(x.Data[i])) < 0.05 {
			x.Data[i] = 0.2
		}
	}
	checkInputGrad(t, r, x, 1e-2)
}

func TestClippedReLUForward(t *testing.T) {
	c := NewClippedReLU("cr", 0.2, 2.0)
	x := tensor.FromSlice([]float32{-1, 0.1, 0.2, 1.0, 2.0, 3.0}, 6)
	y := c.Forward(x, false)
	want := []float32{0, 0, 0, 0.8, 1.8, 1.8}
	for i := range want {
		if math.Abs(float64(y.Data[i]-want[i])) > 1e-6 {
			t.Fatalf("ClippedReLU = %v, want %v", y.Data, want)
		}
	}
}

func TestClippedReLUGradients(t *testing.T) {
	c := NewClippedReLU("cr", 0.3, 1.5)
	x := randInput(2, 8)
	for i := range x.Data {
		// avoid the kinks at 0.3 and 1.5
		v := math.Abs(float64(x.Data[i]))
		if math.Abs(v-0.3) < 0.05 || math.Abs(v-1.5) < 0.05 {
			x.Data[i] = 0.8
		}
	}
	checkInputGrad(t, c, x, 1e-2)
}

func TestClippedReLUBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewClippedReLU("bad", 2, 1)
}

func TestClippedReLUSparsity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x := tensor.New(10000)
	x.RandN(rng, 1)
	loose := NewClippedReLU("loose", 0, 3).Forward(x, false)
	tight := NewClippedReLU("tight", 0.5, 3).Forward(x, false)
	if tight.Sparsity() <= loose.Sparsity() {
		t.Fatalf("raising the lower bound must raise sparsity: %v vs %v",
			tight.Sparsity(), loose.Sparsity())
	}
}

func TestMaxPoolGradients(t *testing.T) {
	p := NewMaxPool2D("mp", 2, 2)
	x := randInput(2, 2, 4, 4)
	checkInputGrad(t, p, x, 1e-2)
}

func TestMaxPoolForwardKnown(t *testing.T) {
	p := NewMaxPool2D("mp", 2, 2)
	x := tensor.FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 1, 4, 4)
	y := p.Forward(x, false)
	want := []float32{4, 8, 12, 16}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("maxpool = %v, want %v", y.Data, want)
		}
	}
}

func TestAvgPoolGradients(t *testing.T) {
	p := NewAvgPool2D("ap", 2, 2)
	x := randInput(1, 2, 4, 4)
	checkInputGrad(t, p, x, 1e-2)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	p := NewGlobalAvgPool2D("gap")
	x := randInput(2, 3, 3, 3)
	checkInputGrad(t, p, x, 1e-2)
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	l := NewLinear("fc", 6, 4, rng)
	x := randInput(3, 6)
	checkInputGrad(t, l, x, 2e-2)
	checkParamGrad(t, l, x, 2e-2)
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten("flat")
	x := randInput(2, 3, 2, 2)
	y := f.Forward(x, true)
	if y.Shape[0] != 2 || y.Shape[1] != 12 {
		t.Fatalf("flatten shape %v", y.Shape)
	}
	g := f.Backward(y.Clone())
	if !g.SameShape(x) {
		t.Fatalf("backward shape %v", g.Shape)
	}
}

func TestResidualGradientsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	body := NewSequential("body",
		NewConv2D("c1", 2, 2, 3, 3, 1, 1, rng),
	)
	res := NewResidual("res", body, nil)
	x := randInput(1, 2, 4, 4)
	checkInputGrad(t, res, x, 3e-2)
}

func TestResidualGradientsProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	body := NewSequential("body",
		NewConv2D("c1", 2, 3, 3, 3, 2, 1, rng),
	)
	short := NewSequential("short",
		NewConv2D("p", 2, 3, 1, 1, 2, 0, rng),
	)
	res := NewResidual("res", body, short)
	x := randInput(1, 2, 4, 4)
	checkInputGrad(t, res, x, 3e-2)
	if len(res.Params()) != 4 {
		t.Fatalf("expected 4 params (2 conv weights + 2 biases), got %d", len(res.Params()))
	}
}

func TestSequentialGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	seq := NewSequential("net",
		NewConv2D("c1", 1, 2, 3, 3, 1, 1, rng),
		NewReLU("r1"),
		NewMaxPool2D("p1", 2, 2),
		NewFlatten("f"),
		NewLinear("fc", 2*2*2, 3, rng),
	)
	x := randInput(1, 1, 4, 4)
	for i := range x.Data {
		if math.Abs(float64(x.Data[i])) < 0.05 {
			x.Data[i] = 0.3
		}
	}
	checkInputGrad(t, seq, x, 5e-2)
}

func TestDropoutTrainEval(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	d := NewDropout("do", 0.5, rng)
	x := randInput(1, 100)
	ev := d.Forward(x, false)
	if !ev.Equal(x, 0) {
		t.Fatal("eval-mode dropout must be the identity")
	}
	tr := d.Forward(x, true)
	zeros := 0
	for _, v := range tr.Data {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 20 || zeros > 80 {
		t.Fatalf("p=0.5 dropout zeroed %d/100 values", zeros)
	}
	g := d.Backward(tr.Clone())
	for i := range tr.Data {
		if (tr.Data[i] == 0) != (g.Data[i] == 0) && x.Data[i] != 0 {
			t.Fatal("dropout backward must use the same mask")
		}
	}
}

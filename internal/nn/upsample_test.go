package nn

import (
	"testing"

	"adcnn/internal/tensor"
)

func TestUpsampleForwardKnown(t *testing.T) {
	u := NewUpsample2D("up", 2)
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	y := u.Forward(x, false)
	want := []float32{
		1, 1, 2, 2,
		1, 1, 2, 2,
		3, 3, 4, 4,
		3, 3, 4, 4,
	}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("upsample = %v", y.Data)
		}
	}
}

func TestUpsampleGradients(t *testing.T) {
	u := NewUpsample2D("up", 3)
	x := randInput(1, 2, 2, 2)
	checkInputGrad(t, u, x, 1e-2)
}

func TestUpsampleFactor1Identity(t *testing.T) {
	u := NewUpsample2D("up", 1)
	x := randInput(2, 2, 3, 3)
	if !u.Forward(x, false).Equal(x, 0) {
		t.Fatal("factor-1 upsample must be identity")
	}
}

func TestUpsampleBadFactorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUpsample2D("up", 0)
}

func TestMaxPoolRectMatchesSquare(t *testing.T) {
	sq := NewMaxPool2D("sq", 2, 2)
	rc := NewMaxPoolRect("rc", 2, 2, 2, 2)
	x := randInput(2, 2, 4, 4)
	if !sq.Forward(x, false).Equal(rc.Forward(x, false), 0) {
		t.Fatal("rect pool with square window must equal square pool")
	}
}

func TestMaxPoolRect1D(t *testing.T) {
	p := NewMaxPoolRect("p1d", 3, 1, 3, 1)
	x := tensor.FromSlice([]float32{1, 5, 2, 9, 0, 3}, 1, 1, 6, 1)
	y := p.Forward(x, false)
	if y.Shape[2] != 2 || y.Shape[3] != 1 {
		t.Fatalf("shape %v", y.Shape)
	}
	if y.Data[0] != 5 || y.Data[1] != 9 {
		t.Fatalf("values %v", y.Data)
	}
}

func TestMaxPoolRectGradients(t *testing.T) {
	p := NewMaxPoolRect("p", 2, 1, 2, 1)
	x := randInput(1, 2, 6, 3)
	// Separate values so finite differences never flip a window's argmax.
	for i := range x.Data {
		x.Data[i] = float32(i%7) + float32(i)*0.1
	}
	checkInputGrad(t, p, x, 1e-2)
}

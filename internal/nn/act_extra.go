package nn

import (
	"math"

	"adcnn/internal/tensor"
)

// LeakyReLU is max(αx, x) — the activation the YOLO/Darknet family uses.
type LeakyReLU struct {
	label string
	Alpha float32
	mask  []bool // true where x > 0
}

// NewLeakyReLU creates a leaky rectifier (Darknet uses α = 0.1).
func NewLeakyReLU(label string, alpha float32) *LeakyReLU {
	if alpha < 0 || alpha >= 1 {
		panic("nn: LeakyReLU alpha out of [0,1)")
	}
	return &LeakyReLU{label: label, Alpha: alpha}
}

// Forward computes x for x>0 and αx otherwise.
func (l *LeakyReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.New(x.Shape...)
	if train {
		l.mask = make([]bool, len(x.Data))
	}
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
			if train {
				l.mask[i] = true
			}
		} else {
			y.Data[i] = l.Alpha * v
		}
	}
	return y
}

// Backward scales the gradient by 1 or α per element.
func (l *LeakyReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.mask == nil {
		panic("nn: LeakyReLU.Backward before Forward(train=true)")
	}
	dx := tensor.New(grad.Shape...)
	for i, v := range grad.Data {
		if l.mask[i] {
			dx.Data[i] = v
		} else {
			dx.Data[i] = l.Alpha * v
		}
	}
	l.mask = nil
	return dx
}

// Params returns nil.
func (l *LeakyReLU) Params() []*Param { return nil }

// Name returns the layer label.
func (l *LeakyReLU) Name() string { return l.label }

// Sigmoid is the logistic activation (the paper's background contrasts
// its saturating gradient with ReLU's).
type Sigmoid struct {
	label string
	out   *tensor.Tensor
}

// NewSigmoid creates a sigmoid layer.
func NewSigmoid(label string) *Sigmoid { return &Sigmoid{label: label} }

// Forward computes 1/(1+e^{-x}).
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.New(x.Shape...)
	for i, v := range x.Data {
		y.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	if train {
		s.out = y.Clone()
	}
	return y
}

// Backward uses dy/dx = y(1−y).
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if s.out == nil {
		panic("nn: Sigmoid.Backward before Forward(train=true)")
	}
	dx := tensor.New(grad.Shape...)
	for i, g := range grad.Data {
		y := s.out.Data[i]
		dx.Data[i] = g * y * (1 - y)
	}
	s.out = nil
	return dx
}

// Params returns nil.
func (s *Sigmoid) Params() []*Param { return nil }

// Name returns the layer label.
func (s *Sigmoid) Name() string { return s.label }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	label string
	out   *tensor.Tensor
}

// NewTanh creates a tanh layer.
func NewTanh(label string) *Tanh { return &Tanh{label: label} }

// Forward computes tanh(x).
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.New(x.Shape...)
	for i, v := range x.Data {
		y.Data[i] = float32(math.Tanh(float64(v)))
	}
	if train {
		t.out = y.Clone()
	}
	return y
}

// Backward uses dy/dx = 1 − y².
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if t.out == nil {
		panic("nn: Tanh.Backward before Forward(train=true)")
	}
	dx := tensor.New(grad.Shape...)
	for i, g := range grad.Data {
		y := t.out.Data[i]
		dx.Data[i] = g * (1 - y*y)
	}
	t.out = nil
	return dx
}

// Params returns nil.
func (t *Tanh) Params() []*Param { return nil }

// Name returns the layer label.
func (t *Tanh) Name() string { return t.label }

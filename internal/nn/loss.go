package nn

import (
	"fmt"
	"math"

	"adcnn/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// [N, K] against integer class labels, and the gradient w.r.t. the logits.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy expects [N K] logits, got %v", logits.Shape))
	}
	n, k := logits.Shape[0], logits.Shape[1]
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), n))
	}
	grad := tensor.New(n, k)
	var loss float64
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		// stable softmax
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logSum := math.Log(sum)
		y := labels[i]
		if y < 0 || y >= k {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, k))
		}
		loss += logSum - float64(row[y]-maxv)
		g := grad.Data[i*k : (i+1)*k]
		for j, v := range row {
			p := math.Exp(float64(v-maxv)) / sum
			g[j] = float32(p) / float32(n)
		}
		g[y] -= 1 / float32(n)
	}
	return loss / float64(n), grad
}

// PixelSoftmaxCrossEntropy computes the mean per-pixel cross-entropy for
// dense-prediction (segmentation) logits [N, K, H, W] against labels
// [N, H, W] stored as a flat int slice. It returns loss and gradient.
func PixelSoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	if logits.Rank() != 4 {
		panic(fmt.Sprintf("nn: PixelSoftmaxCrossEntropy expects [N K H W], got %v", logits.Shape))
	}
	n, k, h, w := logits.Shape[0], logits.Shape[1], logits.Shape[2], logits.Shape[3]
	if len(labels) != n*h*w {
		panic(fmt.Sprintf("nn: %d labels for %d pixels", len(labels), n*h*w))
	}
	grad := tensor.New(n, k, h, w)
	plane := h * w
	sample := k * plane
	total := float64(n * plane)
	var loss float64
	for i := 0; i < n; i++ {
		for px := 0; px < plane; px++ {
			maxv := float32(math.Inf(-1))
			for c := 0; c < k; c++ {
				v := logits.Data[i*sample+c*plane+px]
				if v > maxv {
					maxv = v
				}
			}
			var sum float64
			for c := 0; c < k; c++ {
				sum += math.Exp(float64(logits.Data[i*sample+c*plane+px] - maxv))
			}
			logSum := math.Log(sum)
			y := labels[i*plane+px]
			loss += logSum - float64(logits.Data[i*sample+y*plane+px]-maxv)
			for c := 0; c < k; c++ {
				p := math.Exp(float64(logits.Data[i*sample+c*plane+px]-maxv)) / sum
				grad.Data[i*sample+c*plane+px] = float32(p / total)
			}
			grad.Data[i*sample+y*plane+px] -= float32(1 / total)
		}
	}
	return loss / total, grad
}

// Accuracy returns the fraction of rows of logits [N,K] whose argmax
// equals the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n, k := logits.Shape[0], logits.Shape[1]
	correct := 0
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		best, bi := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, bi = v, j+1
			}
		}
		if bi == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// PixelAccuracy returns the per-pixel argmax accuracy for segmentation
// logits [N,K,H,W].
func PixelAccuracy(logits *tensor.Tensor, labels []int) float64 {
	n, k, h, w := logits.Shape[0], logits.Shape[1], logits.Shape[2], logits.Shape[3]
	plane := h * w
	sample := k * plane
	correct := 0
	for i := 0; i < n; i++ {
		for px := 0; px < plane; px++ {
			best, bi := logits.Data[i*sample+px], 0
			for c := 1; c < k; c++ {
				v := logits.Data[i*sample+c*plane+px]
				if v > best {
					best, bi = v, c
				}
			}
			if bi == labels[i*plane+px] {
				correct++
			}
		}
	}
	return float64(correct) / float64(n*plane)
}

// MeanIoU returns the mean intersection-over-union across k classes for
// segmentation logits [N,K,H,W], the paper's FCN metric.
func MeanIoU(logits *tensor.Tensor, labels []int) float64 {
	n, k, h, w := logits.Shape[0], logits.Shape[1], logits.Shape[2], logits.Shape[3]
	plane := h * w
	sample := k * plane
	inter := make([]int, k)
	union := make([]int, k)
	for i := 0; i < n; i++ {
		for px := 0; px < plane; px++ {
			best, bi := logits.Data[i*sample+px], 0
			for c := 1; c < k; c++ {
				v := logits.Data[i*sample+c*plane+px]
				if v > best {
					best, bi = v, c
				}
			}
			y := labels[i*plane+px]
			if bi == y {
				inter[y]++
				union[y]++
			} else {
				union[y]++
				union[bi]++
			}
		}
	}
	var sum float64
	classes := 0
	for c := 0; c < k; c++ {
		if union[c] > 0 {
			sum += float64(inter[c]) / float64(union[c])
			classes++
		}
	}
	if classes == 0 {
		return 0
	}
	return sum / float64(classes)
}

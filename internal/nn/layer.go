// Package nn implements the neural-network layers, losses and optimizers
// that ADCNN's CNN models are built from. Every layer supports both
// inference and training (backpropagation), because ADCNN's progressive
// retraining (paper Algorithm 1) re-trains models after each architecture
// modification.
//
// Data layout: convolutional activations are NCHW ([batch, channel,
// height, width]); fully-connected activations are [batch, features].
package nn

import (
	"fmt"

	"adcnn/internal/tensor"
)

// Param is a trainable parameter with its accumulated gradient.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter and matching zero gradient.
func NewParam(name string, shape ...int) *Param {
	return &Param{Name: name, Value: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable network component. Forward must be called
// before Backward; Backward consumes the gradient w.r.t. the layer output
// and returns the gradient w.r.t. the layer input, accumulating parameter
// gradients as a side effect.
type Layer interface {
	// Forward computes the layer output. train selects training-mode
	// behaviour (batch statistics, dropout masks, caches for Backward).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward propagates gradients. It must only be called after a
	// Forward with train=true.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameters (possibly empty).
	Params() []*Param
	// Name identifies the layer for debugging and serialization.
	Name() string
}

// Sequential chains layers; the output of layer i feeds layer i+1.
type Sequential struct {
	label  string
	Layers []Layer
}

// NewSequential builds a named layer chain.
func NewSequential(label string, layers ...Layer) *Sequential {
	return &Sequential{label: label, Layers: layers}
}

// Append adds layers to the end of the chain.
func (s *Sequential) Append(layers ...Layer) { s.Layers = append(s.Layers, layers...) }

// Forward runs every layer in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs every layer's backward pass in reverse order.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params collects the parameters of all contained layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Name returns the chain label.
func (s *Sequential) Name() string { return s.label }

// ForwardUpTo runs layers [0, n) and returns the intermediate activation.
// It is used by partitioning frameworks that split a model at layer n.
func (s *Sequential) ForwardUpTo(x *tensor.Tensor, n int, train bool) *tensor.Tensor {
	if n < 0 || n > len(s.Layers) {
		panic(fmt.Sprintf("nn: ForwardUpTo(%d) out of range for %d layers", n, len(s.Layers)))
	}
	for _, l := range s.Layers[:n] {
		x = l.Forward(x, train)
	}
	return x
}

// ForwardFrom runs layers [n, len) on x.
func (s *Sequential) ForwardFrom(x *tensor.Tensor, n int, train bool) *tensor.Tensor {
	if n < 0 || n > len(s.Layers) {
		panic(fmt.Sprintf("nn: ForwardFrom(%d) out of range for %d layers", n, len(s.Layers)))
	}
	for _, l := range s.Layers[n:] {
		x = l.Forward(x, train)
	}
	return x
}

// ZeroGrad clears the gradients of every parameter in the chain.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.Params() {
		p.ZeroGrad()
	}
}

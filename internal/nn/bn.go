package nn

import (
	"fmt"
	"math"

	"adcnn/internal/tensor"
)

// BatchNorm2D normalises each channel over the batch and spatial
// dimensions. During inference it applies the folded affine transform
// y = a·x + b with a = γ/σ and b = β − µγ/σ, exactly as described in the
// paper's Section 2.1.
type BatchNorm2D struct {
	label string
	C     int
	Eps   float32
	// Momentum is the running-statistics update rate (PyTorch convention:
	// running = (1-momentum)*running + momentum*batch).
	Momentum float32
	// Frozen makes training-mode forwards use the running statistics as
	// fixed constants (standard for fine-tuning, and required by probes
	// that must not let gradients flow through batch statistics).
	Frozen bool

	Gamma, Beta             *Param
	RunningMean, RunningVar *tensor.Tensor

	// training caches
	xhat      *tensor.Tensor
	invStd    []float32
	batchSize int
	spatial   int
	frozenBwd bool
}

// NewBatchNorm2D creates a batch-norm layer for c channels.
func NewBatchNorm2D(label string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		label:       label,
		C:           c,
		Eps:         1e-5,
		Momentum:    0.1,
		Gamma:       NewParam(label+".gamma", c),
		Beta:        NewParam(label+".beta", c),
		RunningMean: tensor.New(c),
		RunningVar:  tensor.New(c),
	}
	bn.Gamma.Value.Fill(1)
	bn.RunningVar.Fill(1)
	return bn
}

// Forward normalises x. In training mode it uses batch statistics and
// updates the running estimates; in inference mode it uses the running
// statistics only.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Shape[1] != bn.C {
		panic(fmt.Sprintf("nn: %s expects NCHW with C=%d, got %v", bn.label, bn.C, x.Shape))
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	plane := h * w
	sample := bn.C * plane
	y := tensor.New(x.Shape...)

	if !train {
		for ch := 0; ch < bn.C; ch++ {
			inv := float32(1.0 / math.Sqrt(float64(bn.RunningVar.Data[ch])+float64(bn.Eps)))
			a := bn.Gamma.Value.Data[ch] * inv
			b := bn.Beta.Value.Data[ch] - bn.RunningMean.Data[ch]*a
			for i := 0; i < n; i++ {
				src := x.Data[i*sample+ch*plane : i*sample+(ch+1)*plane]
				dst := y.Data[i*sample+ch*plane : i*sample+(ch+1)*plane]
				for j, v := range src {
					dst[j] = a*v + b
				}
			}
		}
		return y
	}

	if bn.Frozen {
		// Training-mode forward with fixed statistics: cache what the
		// frozen backward needs, normalise with the running estimates.
		bn.xhat = tensor.New(x.Shape...)
		bn.invStd = make([]float32, bn.C)
		bn.batchSize, bn.spatial = n, plane
		bn.frozenBwd = true
		for ch := 0; ch < bn.C; ch++ {
			inv := float32(1.0 / math.Sqrt(float64(bn.RunningVar.Data[ch])+float64(bn.Eps)))
			bn.invStd[ch] = inv
			g, b := bn.Gamma.Value.Data[ch], bn.Beta.Value.Data[ch]
			mean := bn.RunningMean.Data[ch]
			for i := 0; i < n; i++ {
				src := x.Data[i*sample+ch*plane : i*sample+(ch+1)*plane]
				xh := bn.xhat.Data[i*sample+ch*plane : i*sample+(ch+1)*plane]
				dst := y.Data[i*sample+ch*plane : i*sample+(ch+1)*plane]
				for j, v := range src {
					h := (v - mean) * inv
					xh[j] = h
					dst[j] = g*h + b
				}
			}
		}
		return y
	}

	m := float32(n * plane)
	bn.xhat = tensor.New(x.Shape...)
	bn.invStd = make([]float32, bn.C)
	bn.batchSize, bn.spatial = n, plane
	bn.frozenBwd = false
	for ch := 0; ch < bn.C; ch++ {
		var sum, sq float64
		for i := 0; i < n; i++ {
			src := x.Data[i*sample+ch*plane : i*sample+(ch+1)*plane]
			for _, v := range src {
				sum += float64(v)
				sq += float64(v) * float64(v)
			}
		}
		mean := float32(sum / float64(m))
		variance := float32(sq/float64(m)) - mean*mean
		if variance < 0 {
			variance = 0
		}
		inv := float32(1.0 / math.Sqrt(float64(variance)+float64(bn.Eps)))
		bn.invStd[ch] = inv
		g, b := bn.Gamma.Value.Data[ch], bn.Beta.Value.Data[ch]
		for i := 0; i < n; i++ {
			src := x.Data[i*sample+ch*plane : i*sample+(ch+1)*plane]
			xh := bn.xhat.Data[i*sample+ch*plane : i*sample+(ch+1)*plane]
			dst := y.Data[i*sample+ch*plane : i*sample+(ch+1)*plane]
			for j, v := range src {
				h := (v - mean) * inv
				xh[j] = h
				dst[j] = g*h + b
			}
		}
		bn.RunningMean.Data[ch] = (1-bn.Momentum)*bn.RunningMean.Data[ch] + bn.Momentum*mean
		bn.RunningVar.Data[ch] = (1-bn.Momentum)*bn.RunningVar.Data[ch] + bn.Momentum*variance
	}
	return y
}

// Backward computes gradients through the batch-normalisation transform.
func (bn *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if bn.xhat == nil {
		panic("nn: BatchNorm2D.Backward before Forward(train=true)")
	}
	n, plane := bn.batchSize, bn.spatial
	sample := bn.C * plane
	m := float32(n * plane)
	dx := tensor.New(grad.Shape...)
	if bn.frozenBwd {
		// Statistics were constants, so dx = dy·γ·inv; γ/β gradients as usual.
		for ch := 0; ch < bn.C; ch++ {
			g := bn.Gamma.Value.Data[ch]
			inv := bn.invStd[ch]
			var sumDy, sumDyXhat float64
			for i := 0; i < n; i++ {
				dy := grad.Data[i*sample+ch*plane : i*sample+(ch+1)*plane]
				xh := bn.xhat.Data[i*sample+ch*plane : i*sample+(ch+1)*plane]
				dst := dx.Data[i*sample+ch*plane : i*sample+(ch+1)*plane]
				for j, v := range dy {
					sumDy += float64(v)
					sumDyXhat += float64(v) * float64(xh[j])
					dst[j] = g * inv * v
				}
			}
			bn.Beta.Grad.Data[ch] += float32(sumDy)
			bn.Gamma.Grad.Data[ch] += float32(sumDyXhat)
		}
		bn.xhat = nil
		return dx
	}
	for ch := 0; ch < bn.C; ch++ {
		var sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			dy := grad.Data[i*sample+ch*plane : i*sample+(ch+1)*plane]
			xh := bn.xhat.Data[i*sample+ch*plane : i*sample+(ch+1)*plane]
			for j, v := range dy {
				sumDy += float64(v)
				sumDyXhat += float64(v) * float64(xh[j])
			}
		}
		bn.Beta.Grad.Data[ch] += float32(sumDy)
		bn.Gamma.Grad.Data[ch] += float32(sumDyXhat)
		g := bn.Gamma.Value.Data[ch]
		inv := bn.invStd[ch]
		meanDy := float32(sumDy) / m
		meanDyXhat := float32(sumDyXhat) / m
		for i := 0; i < n; i++ {
			dy := grad.Data[i*sample+ch*plane : i*sample+(ch+1)*plane]
			xh := bn.xhat.Data[i*sample+ch*plane : i*sample+(ch+1)*plane]
			dst := dx.Data[i*sample+ch*plane : i*sample+(ch+1)*plane]
			for j, v := range dy {
				dst[j] = g * inv * (v - meanDy - xh[j]*meanDyXhat)
			}
		}
	}
	bn.xhat = nil
	return dx
}

// Params returns γ and β.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// Name returns the layer label.
func (bn *BatchNorm2D) Name() string { return bn.label }

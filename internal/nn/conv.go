package nn

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"

	"adcnn/internal/parallel"
	"adcnn/internal/quant"
	"adcnn/internal/tensor"
)

// Conv2D is a standard 2-D convolution layer over NCHW input.
// Weights have shape [OutC, InC, KH, KW]; bias has shape [OutC].
type Conv2D struct {
	label        string
	InC, OutC    int
	Geom         tensor.ConvGeom
	Weight, Bias *Param
	UseBias      bool

	// training caches
	inShape []int
	cols    []*tensor.Tensor // per-sample im2col matrices

	// int8 inference snapshot (conv_int8.go); nil means f32 execution
	int8w *quant.PerChannel
}

// NewConv2D creates a convolution layer with He-initialised weights.
func NewConv2D(label string, inC, outC, kh, kw, stride, pad int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{
		label:   label,
		InC:     inC,
		OutC:    outC,
		Geom:    tensor.ConvGeom{KH: kh, KW: kw, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad},
		Weight:  NewParam(label+".weight", outC, inC, kh, kw),
		Bias:    NewParam(label+".bias", outC),
		UseBias: true,
	}
	fanIn := inC * kh * kw
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	c.Weight.Value.RandN(rng, std)
	return c
}

// NoBias disables the additive bias (common when a BatchNorm follows).
func (c *Conv2D) NoBias() *Conv2D {
	c.UseBias = false
	return c
}

// OutShape returns the output NCHW shape for an input NCHW shape.
func (c *Conv2D) OutShape(in []int) []int {
	oh, ow := c.Geom.OutSize(in[2], in[3])
	return []int{in[0], c.OutC, oh, ow}
}

// oneByOne reports whether the layer is a pure 1×1 stride-1 convolution,
// for which the input plane already is the column matrix (YOLO's
// bottleneck layers hit this path) and im2col is skipped entirely.
func (c *Conv2D) oneByOne() bool {
	return c.Geom.KH == 1 && c.Geom.KW == 1 &&
		c.Geom.StrideH == 1 && c.Geom.StrideW == 1 &&
		c.Geom.PadH == 0 && c.Geom.PadW == 0
}

// Forward computes y[n] = W·im2col(x[n]) + b for each sample n.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := c.Geom.OutSize(h, w)
	y := tensor.New(n, c.OutC, oh, ow)
	c.ForwardInto(y, x, train)
	return y
}

// ForwardInto is Forward writing into a caller-owned output of shape
// [N, OutC, OH, OW]. In inference mode (train=false) the im2col scratch
// comes from the tensor buffer pool, so the call is allocation-free — the
// hot path for FDSP tile serving.
func (c *Conv2D) ForwardInto(y, x *tensor.Tensor, train bool) {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: %s expects NCHW input, got %v", c.label, x.Shape))
	}
	if x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: %s expects %d input channels, got %v", c.label, c.InC, x.Shape))
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := c.Geom.OutSize(h, w)
	if y.Rank() != 4 || y.Shape[0] != n || y.Shape[1] != c.OutC || y.Shape[2] != oh || y.Shape[3] != ow {
		panic(fmt.Sprintf("nn: %s output shape %v, want [%d %d %d %d]", c.label, y.Shape, n, c.OutC, oh, ow))
	}
	if train {
		c.inShape = []int{n, c.InC, h, w}
		c.cols = make([]*tensor.Tensor, n)
	}
	// Samples are independent, so the im2col + matmul + bias work
	// parallelises cleanly across the batch. Single-sample (and
	// single-proc) calls take the direct loop: no closure, no goroutines,
	// no allocations.
	if !train && c.int8w != nil {
		if n == 1 || runtime.GOMAXPROCS(0) == 1 {
			for i := 0; i < n; i++ {
				c.forwardSampleInt8(y.Data, x.Data, i, h, w, oh, ow)
			}
			return
		}
		parallel.For(n, func(i int) {
			c.forwardSampleInt8(y.Data, x.Data, i, h, w, oh, ow)
		})
		return
	}
	if n == 1 || runtime.GOMAXPROCS(0) == 1 {
		for i := 0; i < n; i++ {
			c.forwardSample(y.Data, x.Data, i, h, w, oh, ow, train)
		}
		return
	}
	parallel.For(n, func(i int) {
		c.forwardSample(y.Data, x.Data, i, h, w, oh, ow, train)
	})
}

// forwardSample computes one sample's output plane stack, including the
// per-channel bias, so large batches never serialise on a post-pass.
func (c *Conv2D) forwardSample(yd, xd []float32, i, h, w, oh, ow int, train bool) {
	kdim := c.InC * c.Geom.KH * c.Geom.KW
	plane := oh * ow
	sample := c.InC * h * w
	outSample := c.OutC * plane
	xs := xd[i*sample : (i+1)*sample]
	ys := yd[i*outSample : (i+1)*outSample]
	wd := c.Weight.Value.Data
	switch {
	case c.oneByOne():
		if train {
			c.cols[i] = tensor.FromSlice(xs, c.InC, h*w)
		}
		tensor.GemmInto(ys, wd, xs, c.OutC, kdim, plane)
	case train:
		// Training keeps the column matrix for Backward; its storage is
		// pooled and recycled there.
		cols := tensor.GetTensor(kdim, plane)
		tensor.Im2ColSlice(cols.Data, xs, c.InC, h, w, c.Geom)
		c.cols[i] = cols
		tensor.GemmInto(ys, wd, cols.Data, c.OutC, kdim, plane)
	default:
		buf := tensor.GetBuf(kdim * plane)
		tensor.Im2ColSlice(buf, xs, c.InC, h, w, c.Geom)
		tensor.GemmInto(ys, wd, buf, c.OutC, kdim, plane)
		tensor.PutBuf(buf)
	}
	if c.UseBias {
		bias := c.Bias.Value.Data
		for oc := 0; oc < c.OutC; oc++ {
			b := bias[oc]
			row := ys[oc*plane : (oc+1)*plane]
			for j := range row {
				row[j] += b
			}
		}
	}
}

// Backward accumulates dW, db and returns dx.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.cols == nil {
		panic("nn: Conv2D.Backward before Forward(train=true)")
	}
	n, h, w := c.inShape[0], c.inShape[2], c.inShape[3]
	oh, ow := c.Geom.OutSize(h, w)
	plane := oh * ow
	outSample := c.OutC * plane
	w2 := c.Weight.Value.Reshape(c.OutC, c.InC*c.Geom.KH*c.Geom.KW)
	dw := c.Weight.Grad.Reshape(c.OutC, c.InC*c.Geom.KH*c.Geom.KW)
	dx := tensor.New(c.inShape...)
	inSample := c.InC * h * w
	// Per-sample weight-gradient shards avoid racing on the shared dW;
	// they are reduced sequentially below.
	dwShards := make([]*tensor.Tensor, n)
	dbShards := make([][]float32, n)
	pooledCols := !c.oneByOne() // 1×1 cols are views into x, not pool-owned
	parallel.For(n, func(i int) {
		gi := tensor.FromSlice(grad.Data[i*outSample:(i+1)*outSample], c.OutC, plane)
		// dW_i = g · colsᵀ
		dwShards[i] = tensor.MatMulTransB(gi, c.cols[i])
		// dcols = Wᵀ · g, then fold back into image space.
		dcols := tensor.GetTensor(c.InC*c.Geom.KH*c.Geom.KW, plane)
		tensor.MatMulTransAInto(dcols, w2, gi)
		tensor.Col2ImSlice(dx.Data[i*inSample:(i+1)*inSample], dcols.Data, c.InC, h, w, c.Geom)
		tensor.PutTensor(dcols)
		if pooledCols {
			tensor.PutTensor(c.cols[i])
		}
		if c.UseBias {
			db := make([]float32, c.OutC)
			for oc := 0; oc < c.OutC; oc++ {
				var s float32
				row := gi.Data[oc*plane : (oc+1)*plane]
				for _, v := range row {
					s += v
				}
				db[oc] = s
			}
			dbShards[i] = db
		}
	})
	for i := 0; i < n; i++ {
		dw.Add(dwShards[i])
		if c.UseBias {
			for oc, s := range dbShards[i] {
				c.Bias.Grad.Data[oc] += s
			}
		}
	}
	c.cols = nil
	return dx
}

// Params returns weight (and bias when enabled).
func (c *Conv2D) Params() []*Param {
	if c.UseBias {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}

// Name returns the layer label.
func (c *Conv2D) Name() string { return c.label }

// FLOPs returns the multiply-accumulate count (×2 for mul+add) for an
// input of spatial size h×w. Used by the analytic performance model.
func (c *Conv2D) FLOPs(h, w int) int64 {
	oh, ow := c.Geom.OutSize(h, w)
	macs := int64(oh) * int64(ow) * int64(c.OutC) * int64(c.InC) * int64(c.Geom.KH) * int64(c.Geom.KW)
	return 2 * macs
}

package nn

import (
	"fmt"
	"math"

	"adcnn/internal/tensor"
)

// MaxPool2D applies max pooling with a square window. The paper keeps
// pooling receptive fields entirely inside each FDSP tile, so this layer
// never needs cross-tile data.
type MaxPool2D struct {
	label  string
	K      int // window size
	Stride int

	inShape []int
	argmax  []int // flat input index chosen per output element
}

// NewMaxPool2D creates a max-pooling layer (window k, stride s).
func NewMaxPool2D(label string, k, s int) *MaxPool2D {
	return &MaxPool2D{label: label, K: k, Stride: s}
}

// OutShape returns the output NCHW shape for an input NCHW shape.
func (p *MaxPool2D) OutShape(in []int) []int {
	oh := (in[2]-p.K)/p.Stride + 1
	ow := (in[3]-p.K)/p.Stride + 1
	return []int{in[0], in[1], oh, ow}
}

// Forward computes the max over each window, caching argmax for Backward.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: %s expects NCHW input, got %v", p.label, x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := (h-p.K)/p.Stride + 1
	ow := (w-p.K)/p.Stride + 1
	if oh < 1 || ow < 1 {
		panic(fmt.Sprintf("nn: %s window %d too large for input %v", p.label, p.K, x.Shape))
	}
	y := tensor.New(n, c, oh, ow)
	if train {
		p.inShape = []int{n, c, h, w}
		p.argmax = make([]int, n*c*oh*ow)
	}
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			src := x.Data[(i*c+ch)*h*w:]
			dstBase := (i*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(math.Inf(-1))
					bi := -1
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride + ky
						for kx := 0; kx < p.K; kx++ {
							ix := ox*p.Stride + kx
							v := src[iy*w+ix]
							if v > best {
								best, bi = v, iy*w+ix
							}
						}
					}
					y.Data[dstBase+oy*ow+ox] = best
					if train {
						p.argmax[dstBase+oy*ow+ox] = (i*c+ch)*h*w + bi
					}
				}
			}
		}
	}
	return y
}

// Backward scatters each output gradient to the input position that won
// the max.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.argmax == nil {
		panic("nn: MaxPool2D.Backward before Forward(train=true)")
	}
	dx := tensor.New(p.inShape...)
	for i, v := range grad.Data {
		dx.Data[p.argmax[i]] += v
	}
	p.argmax = nil
	return dx
}

// Params returns nil; pooling has no parameters.
func (p *MaxPool2D) Params() []*Param { return nil }

// Name returns the layer label.
func (p *MaxPool2D) Name() string { return p.label }

// AvgPool2D applies average pooling with a square window.
type AvgPool2D struct {
	label  string
	K      int
	Stride int

	inShape []int
}

// NewAvgPool2D creates an average-pooling layer (window k, stride s).
func NewAvgPool2D(label string, k, s int) *AvgPool2D {
	return &AvgPool2D{label: label, K: k, Stride: s}
}

// Forward computes the mean over each window.
func (p *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := (h-p.K)/p.Stride + 1
	ow := (w-p.K)/p.Stride + 1
	y := tensor.New(n, c, oh, ow)
	if train {
		p.inShape = []int{n, c, h, w}
	}
	inv := 1 / float32(p.K*p.K)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			src := x.Data[(i*c+ch)*h*w:]
			dstBase := (i*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var s float32
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride + ky
						for kx := 0; kx < p.K; kx++ {
							s += src[iy*w+ox*p.Stride+kx]
						}
					}
					y.Data[dstBase+oy*ow+ox] = s * inv
				}
			}
		}
	}
	return y
}

// Backward spreads each output gradient uniformly over its window.
func (p *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.inShape == nil {
		panic("nn: AvgPool2D.Backward before Forward(train=true)")
	}
	n, c, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	oh := (h-p.K)/p.Stride + 1
	ow := (w-p.K)/p.Stride + 1
	dx := tensor.New(p.inShape...)
	inv := 1 / float32(p.K*p.K)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			dst := dx.Data[(i*c+ch)*h*w:]
			srcBase := (i*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := grad.Data[srcBase+oy*ow+ox] * inv
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride + ky
						for kx := 0; kx < p.K; kx++ {
							dst[iy*w+ox*p.Stride+kx] += g
						}
					}
				}
			}
		}
	}
	p.inShape = nil
	return dx
}

// Params returns nil.
func (p *AvgPool2D) Params() []*Param { return nil }

// Name returns the layer label.
func (p *AvgPool2D) Name() string { return p.label }

// GlobalAvgPool2D averages each channel's full spatial plane, producing a
// [N, C] activation (used by ResNet-style heads).
type GlobalAvgPool2D struct {
	label   string
	inShape []int
}

// NewGlobalAvgPool2D creates a global average pooling layer.
func NewGlobalAvgPool2D(label string) *GlobalAvgPool2D {
	return &GlobalAvgPool2D{label: label}
}

// Forward averages over H×W per channel.
func (p *GlobalAvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	y := tensor.New(n, c)
	inv := 1 / float32(h*w)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			src := x.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			var s float32
			for _, v := range src {
				s += v
			}
			y.Data[i*c+ch] = s * inv
		}
	}
	if train {
		p.inShape = []int{n, c, h, w}
	}
	return y
}

// Backward spreads the gradient uniformly across the plane.
func (p *GlobalAvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.inShape == nil {
		panic("nn: GlobalAvgPool2D.Backward before Forward(train=true)")
	}
	n, c, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	dx := tensor.New(p.inShape...)
	inv := 1 / float32(h*w)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			g := grad.Data[i*c+ch] * inv
			dst := dx.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			for j := range dst {
				dst[j] = g
			}
		}
	}
	p.inShape = nil
	return dx
}

// Params returns nil.
func (p *GlobalAvgPool2D) Params() []*Param { return nil }

// Name returns the layer label.
func (p *GlobalAvgPool2D) Name() string { return p.label }

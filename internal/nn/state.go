package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// CopyParamsFrom copies parameter values (not gradients) from src into s.
// Both models must have identical parameter lists — this is how
// progressive retraining seeds each stage with the previous stage's
// weights.
func (s *Sequential) CopyParamsFrom(src *Sequential) error {
	dst := s.Params()
	from := src.Params()
	if len(dst) != len(from) {
		return fmt.Errorf("nn: parameter count mismatch %d vs %d", len(dst), len(from))
	}
	for i, p := range dst {
		if p.Value.Len() != from[i].Value.Len() {
			return fmt.Errorf("nn: parameter %q size mismatch %v vs %v", p.Name, p.Value.Shape, from[i].Value.Shape)
		}
		copy(p.Value.Data, from[i].Value.Data)
	}
	// Copy batch-norm running statistics too; they are state, not params.
	db := collectBN(s)
	sb := collectBN(src)
	if len(db) == len(sb) {
		for i, bn := range db {
			copy(bn.RunningMean.Data, sb[i].RunningMean.Data)
			copy(bn.RunningVar.Data, sb[i].RunningVar.Data)
		}
	}
	return nil
}

// FreezeBatchNorm sets the Frozen flag on every BatchNorm2D nested in s.
func FreezeBatchNorm(s *Sequential, frozen bool) {
	for _, bn := range collectBN(s) {
		bn.Frozen = frozen
	}
}

func collectBN(s *Sequential) []*BatchNorm2D {
	var out []*BatchNorm2D
	for _, l := range s.Layers {
		switch v := l.(type) {
		case *BatchNorm2D:
			out = append(out, v)
		case *Sequential:
			out = append(out, collectBN(v)...)
		case *Residual:
			out = append(out, collectBN(v.Body)...)
			if v.Shortcut != nil {
				out = append(out, collectBN(v.Shortcut)...)
			}
		}
	}
	return out
}

const stateMagic = 0x41444e4e // "ADNN"

// SaveParams writes every parameter value (and batch-norm running stats)
// to w in a simple length-prefixed little-endian format.
func (s *Sequential) SaveParams(w io.Writer) error {
	var tensors [][]float32
	for _, p := range s.Params() {
		tensors = append(tensors, p.Value.Data)
	}
	for _, bn := range collectBN(s) {
		tensors = append(tensors, bn.RunningMean.Data, bn.RunningVar.Data)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(stateMagic)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(tensors))); err != nil {
		return err
	}
	buf := make([]byte, 4)
	for _, t := range tensors {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(t))); err != nil {
			return err
		}
		for _, v := range t {
			binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// LoadParams restores parameters previously written by SaveParams. The
// model architecture must match exactly.
func (s *Sequential) LoadParams(r io.Reader) error {
	var tensors [][]float32
	for _, p := range s.Params() {
		tensors = append(tensors, p.Value.Data)
	}
	for _, bn := range collectBN(s) {
		tensors = append(tensors, bn.RunningMean.Data, bn.RunningVar.Data)
	}
	var magic, count uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return err
	}
	if magic != stateMagic {
		return fmt.Errorf("nn: bad state magic %#x", magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return err
	}
	if int(count) != len(tensors) {
		return fmt.Errorf("nn: state has %d tensors, model expects %d", count, len(tensors))
	}
	buf := make([]byte, 4)
	for _, t := range tensors {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return err
		}
		if int(n) != len(t) {
			return fmt.Errorf("nn: tensor length %d, model expects %d", n, len(t))
		}
		for i := range t {
			if _, err := io.ReadFull(r, buf); err != nil {
				return err
			}
			t[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf))
		}
	}
	return nil
}

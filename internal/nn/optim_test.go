package nn

import (
	"math"
	"math/rand"
	"testing"

	"adcnn/internal/tensor"
)

func TestAdamConvergesOnLinearProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	l := NewLinear("fc", 2, 2, rng)
	opt := NewAdam(0.05, 0)
	n := 64
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float32()*2-1, rng.Float32()*2-1
		x.Set(a, i, 0)
		x.Set(b, i, 1)
		if a-b > 0 {
			labels[i] = 1
		}
	}
	for epoch := 0; epoch < 80; epoch++ {
		y := l.Forward(x, true)
		_, g := SoftmaxCrossEntropy(y, labels)
		l.Backward(g)
		opt.Step(l.Params())
	}
	if acc := Accuracy(l.Forward(x, false), labels); acc < 0.95 {
		t.Fatalf("Adam failed to fit linear problem: acc %v", acc)
	}
}

func TestAdamFirstStepIsBounded(t *testing.T) {
	// Bias correction keeps the very first update ≈ LR in magnitude.
	rng := rand.New(rand.NewSource(62))
	l := NewLinear("fc", 3, 3, rng)
	before := l.Weight.Value.Clone()
	for i := range l.Weight.Grad.Data {
		l.Weight.Grad.Data[i] = 1
	}
	opt := NewAdam(0.01, 0)
	opt.Step(l.Params())
	for i := range before.Data {
		d := math.Abs(float64(l.Weight.Value.Data[i] - before.Data[i]))
		if d > 0.011 {
			t.Fatalf("first Adam step moved %v, want ≈ LR", d)
		}
	}
}

func TestStepDecay(t *testing.T) {
	if StepDecay(0.1, 0, 10, 0.5) != 0.1 {
		t.Fatal("epoch 0 keeps base LR")
	}
	if got := StepDecay(0.1, 10, 10, 0.5); math.Abs(float64(got)-0.05) > 1e-7 {
		t.Fatalf("epoch 10: %v", got)
	}
	if got := StepDecay(0.1, 25, 10, 0.5); math.Abs(float64(got)-0.025) > 1e-7 {
		t.Fatalf("epoch 25: %v", got)
	}
	if StepDecay(0.1, 100, 0, 0.5) != 0.1 {
		t.Fatal("every=0 disables decay")
	}
}

func TestSetLR(t *testing.T) {
	s := NewSGD(0.1, 0, 0)
	s.SetLR(0.01)
	if s.LR != 0.01 {
		t.Fatal("SGD SetLR failed")
	}
	a := NewAdam(0.1, 0)
	a.SetLR(0.02)
	if a.LR != 0.02 {
		t.Fatal("Adam SetLR failed")
	}
}

package rle

import (
	"bytes"
	"testing"
)

// FuzzDecode: arbitrary bytes must never panic and any accepted payload
// must re-encode losslessly.
func FuzzDecode(f *testing.F) {
	good, _ := Encode([]uint16{0, 0, 5, 7, 0, 1}, 4)
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 4})
	f.Add([]byte{255, 255, 255, 255, 4, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		levels, err := Decode(data)
		if err != nil {
			return
		}
		// Round-trip what was accepted.
		bits := int(data[4])
		re, err := Encode(levels, bits)
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", err)
		}
		back, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded payload failed to decode: %v", err)
		}
		if len(back) != len(levels) {
			t.Fatal("length changed across round trip")
		}
		for i := range levels {
			if back[i] != levels[i] {
				t.Fatal("value changed across round trip")
			}
		}
	})
}

// FuzzEncode: any level stream within the bit width must round-trip.
func FuzzEncode(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 0, 15}, 4)
	f.Add([]byte{}, 1)
	f.Fuzz(func(t *testing.T, raw []byte, bits int) {
		if bits < 1 || bits > 16 {
			return
		}
		mask := uint16(1<<bits - 1)
		levels := make([]uint16, len(raw))
		for i, b := range raw {
			levels[i] = uint16(b) & mask
		}
		enc, err := Encode(levels, bits)
		if err != nil {
			t.Fatalf("in-range levels rejected: %v", err)
		}
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(back) != len(levels) {
			t.Fatal("length mismatch")
		}
		for i := range levels {
			if back[i] != levels[i] {
				t.Fatal("mismatch")
			}
		}
		if CompressedSize(levels, bits) != len(enc) {
			t.Fatal("CompressedSize disagrees with Encode")
		}
	})
	_ = bytes.MinRead
}

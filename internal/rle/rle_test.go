package rle

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripSimple(t *testing.T) {
	in := []uint16{0, 0, 0, 5, 7, 0, 0, 1, 0}
	enc, err := Encode(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], in[i])
		}
	}
}

func TestEmptyStream(t *testing.T) {
	enc, err := Encode(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("expected empty, got %v", out)
	}
}

func TestAllZeros(t *testing.T) {
	in := make([]uint16, 10000)
	enc, err := Encode(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 10000 zeros should compress to a header plus a handful of bytes.
	if len(enc) > 12 {
		t.Fatalf("all-zero stream encoded to %d bytes", len(enc))
	}
	out, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("length %d", len(out))
	}
	for _, v := range out {
		if v != 0 {
			t.Fatal("non-zero after decode")
		}
	}
}

func TestAllNonZero(t *testing.T) {
	in := make([]uint16, 100)
	for i := range in {
		in[i] = uint16(1 + i%15)
	}
	enc, err := Encode(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestLevelTooWideRejected(t *testing.T) {
	if _, err := Encode([]uint16{16}, 4); err == nil {
		t.Fatal("level 16 must not fit in 4 bits")
	}
}

func TestBadBits(t *testing.T) {
	if _, err := Encode([]uint16{1}, 0); err == nil {
		t.Fatal("bits=0 must be rejected")
	}
	if _, err := Encode([]uint16{1}, 17); err == nil {
		t.Fatal("bits=17 must be rejected")
	}
}

func TestDecodeTruncated(t *testing.T) {
	in := []uint16{0, 0, 3, 3, 3, 0, 9}
	enc, err := Encode(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte{1, 2}); err == nil {
		t.Fatal("short garbage must fail")
	}
	// Valid header claiming 4 symbols, then an unknown token.
	bad := []byte{4, 0, 0, 0, 4, 0xFF, 1}
	if _, err := Decode(bad); err == nil {
		t.Fatal("unknown token must fail")
	}
}

// Property: Decode(Encode(x)) == x for random sparse streams at any width.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := 1 + rng.Intn(16)
		maxLevel := uint16(1<<bits - 1)
		n := rng.Intn(500)
		in := make([]uint16, n)
		for i := range in {
			if rng.Float32() < 0.7 { // sparse like real clipped-ReLU output
				in[i] = 0
			} else {
				in[i] = uint16(rng.Intn(int(maxLevel))) + 1
				if in[i] > maxLevel {
					in[i] = maxLevel
				}
			}
		}
		enc, err := Encode(in, bits)
		if err != nil {
			return false
		}
		out, err := Decode(enc)
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CompressedSize matches the actual encoded length.
func TestCompressedSizeMatchesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := 1 + rng.Intn(8)
		n := rng.Intn(300)
		in := make([]uint16, n)
		for i := range in {
			if rng.Float32() < 0.6 {
				in[i] = uint16(rng.Intn(1<<bits-1)) + 1
			}
		}
		enc, err := Encode(in, bits)
		if err != nil {
			return false
		}
		return CompressedSize(in, bits) == len(enc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseStreamCompresses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := make([]uint16, 10000)
	for i := range in {
		if rng.Float32() < 0.05 {
			in[i] = uint16(rng.Intn(15)) + 1
		}
	}
	enc, err := Encode(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 95% sparse 4-bit data should be far below the 5000-byte dense packing.
	if len(enc) >= 5000 {
		t.Fatalf("sparse stream encoded to %d bytes, expected < 5000", len(enc))
	}
}

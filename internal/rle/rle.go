// Package rle implements the run-length encoding ADCNN uses to compress
// sparse, quantized Conv-node outputs (paper Section 4.3): runs of zero
// levels are replaced by a single counter, and non-zero 4-bit levels are
// packed densely.
//
// Wire format (little-endian):
//
//	u32  number of symbols (original length)
//	u8   bits per non-zero value
//	then a token stream; each token starts with a control byte:
//	  0x00       — a zero run follows as uvarint count
//	  0x01       — a literal run follows: uvarint count, then packed levels
//
// This package is the retained scalar reference for the wire format: the
// production hot path is the fused single-pass codec in internal/compress,
// which emits and consumes exactly this stream without materialising the
// intermediate []uint16. Property tests in compress pin the two
// implementations byte-identical.
package rle

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Token control bytes of the wire format. Exported so the fused codec in
// internal/compress can emit and parse the identical stream.
const (
	TokZeroRun = 0x00
	TokLiteral = 0x01
)

// MaxSymbols bounds the declared symbol count a payload may carry (2^26
// levels = a 256 MiB float32 tensor, the wire frame limit). A handful of
// token bytes can otherwise declare billions of zeros and turn a tiny
// corrupt payload into a giant allocation. compress enforces the same
// bound, so the reference and fused decoders accept the same streams.
const MaxSymbols = 1 << 26

// Encode compresses a stream of quantization levels. bits is the width of
// each level (1..16); levels above the width are rejected.
func Encode(levels []uint16, bits int) ([]byte, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("rle: bits %d out of [1,16]", bits)
	}
	maxLevel := uint16(1<<bits - 1)
	out := make([]byte, 0, len(levels)/2+16)
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(levels)))
	hdr[4] = byte(bits)
	out = append(out, hdr[:]...)

	i := 0
	var tmp [binary.MaxVarintLen64]byte
	for i < len(levels) {
		if levels[i] == 0 {
			j := i
			for j < len(levels) && levels[j] == 0 {
				j++
			}
			out = append(out, TokZeroRun)
			n := binary.PutUvarint(tmp[:], uint64(j-i))
			out = append(out, tmp[:n]...)
			i = j
			continue
		}
		j := i
		for j < len(levels) && levels[j] != 0 {
			if levels[j] > maxLevel {
				return nil, fmt.Errorf("rle: level %d exceeds %d-bit width", levels[j], bits)
			}
			j++
		}
		out = append(out, TokLiteral)
		n := binary.PutUvarint(tmp[:], uint64(j-i))
		out = append(out, tmp[:n]...)
		out = appendPacked(out, levels[i:j], bits)
		i = j
	}
	return out, nil
}

// appendPacked bit-packs levels (each `bits` wide) onto out, LSB first.
func appendPacked(out []byte, levels []uint16, bits int) []byte {
	var acc uint32
	var nbits int
	for _, l := range levels {
		acc |= uint32(l) << nbits
		nbits += bits
		for nbits >= 8 {
			out = append(out, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		out = append(out, byte(acc))
	}
	return out
}

// Decode reverses Encode, returning the original level stream.
func Decode(data []byte) ([]uint16, error) {
	if len(data) < 5 {
		return nil, errors.New("rle: truncated header")
	}
	total := int(binary.LittleEndian.Uint32(data[:4]))
	if total > MaxSymbols {
		return nil, fmt.Errorf("rle: declared length %d exceeds limit %d", total, MaxSymbols)
	}
	bits := int(data[4])
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("rle: corrupt bits field %d", bits)
	}
	pos := 5
	out := make([]uint16, 0, total)
	for len(out) < total {
		if pos >= len(data) {
			return nil, errors.New("rle: truncated token stream")
		}
		tok := data[pos]
		pos++
		count, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, errors.New("rle: bad run length")
		}
		pos += n
		// Compare in uint64: a 10-byte varint can declare a count that
		// wraps negative as an int and would sail past an int compare.
		if count > uint64(total-len(out)) {
			return nil, errors.New("rle: run overflows declared length")
		}
		switch tok {
		case TokZeroRun:
			for k := uint64(0); k < count; k++ {
				out = append(out, 0)
			}
		case TokLiteral:
			need := (int(count)*bits + 7) / 8
			if pos+need > len(data) {
				return nil, errors.New("rle: truncated literal run")
			}
			out = appendUnpacked(out, data[pos:pos+need], int(count), bits)
			pos += need
		default:
			return nil, fmt.Errorf("rle: unknown token %#x", tok)
		}
	}
	return out, nil
}

// appendUnpacked reverses appendPacked for count levels.
func appendUnpacked(out []uint16, data []byte, count, bits int) []uint16 {
	var acc uint32
	var nbits, di int
	mask := uint32(1<<bits - 1)
	for k := 0; k < count; k++ {
		for nbits < bits {
			acc |= uint32(data[di]) << nbits
			di++
			nbits += 8
		}
		out = append(out, uint16(acc&mask))
		acc >>= bits
		nbits -= bits
	}
	return out
}

// CompressedSize returns what Encode would produce in bytes without
// building the buffer (used by the analytic communication model).
func CompressedSize(levels []uint16, bits int) int {
	size := 5
	var tmp [binary.MaxVarintLen64]byte
	i := 0
	for i < len(levels) {
		zero := levels[i] == 0
		j := i
		for j < len(levels) && (levels[j] == 0) == zero {
			j++
		}
		size += 1 + binary.PutUvarint(tmp[:], uint64(j-i))
		if !zero {
			size += ((j-i)*bits + 7) / 8
		}
		i = j
	}
	return size
}

package baseline

import (
	"testing"

	"adcnn/internal/models"
	"adcnn/internal/perfmodel"
)

func TestChannelPartitionLayerBitsMatchesPaper(t *testing.T) {
	// Section 3.1: VGG16 block-1 ofmap is 224×224×64; the per-pair
	// exchange under 2-way channel partitioning is 51.38 Mbits.
	bits := ChannelPartitionLayerBits(models.VGG16(), 0)
	if bits < 50e6 || bits > 53e6 {
		t.Fatalf("exchange = %.2f Mbits, paper says 51.38", float64(bits)/1e6)
	}
}

func TestChannelPartitionIsCommunicationBound(t *testing.T) {
	// The paper's conclusion: "channel partitioning is not a good option"
	// — its per-layer exchanges dominate and it loses to even the
	// single-device scheme on a WiFi edge network.
	cfg := models.VGG16()
	ch := ChannelPartition(cfg, 8, perfmodel.RaspberryPi(), perfmodel.WiFi())
	if ch.Transmission < ch.Computation {
		t.Fatalf("channel partitioning must be communication-bound: %v vs %v",
			ch.Transmission, ch.Computation)
	}
	single := SingleDevice(cfg, perfmodel.RaspberryPi())
	if ch.Total() < single.Total() {
		t.Fatalf("channel partitioning on WiFi (%v) should not beat single device (%v)",
			ch.Total(), single.Total())
	}
}

func TestBatchPartitionThroughputNotLatency(t *testing.T) {
	cfg := models.VGG16()
	single := SingleDevice(cfg, perfmodel.RaspberryPi())
	bp := BatchPartition(cfg, 8, perfmodel.RaspberryPi())
	// Latency unchanged.
	if bp.Computation != single.Computation {
		t.Fatal("batch partitioning must not change per-image latency")
	}
	// Throughput scales with devices.
	one := BatchPartition(cfg, 1, perfmodel.RaspberryPi())
	if bp.ThroughputPerSec < 7.9*one.ThroughputPerSec {
		t.Fatalf("8-device throughput %.3f should be ~8x single %.3f",
			bp.ThroughputPerSec, one.ThroughputPerSec)
	}
}

package baseline

import (
	"adcnn/internal/models"
	"adcnn/internal/perfmodel"
)

// ChannelPartition models the channel-partitioning strategy the paper
// rejects in Section 3.1: feature maps are split along channels across K
// devices, so each convolution layer needs the partially accumulated
// output maps exchanged before the next layer can run. Compute
// parallelises perfectly, but every layer boundary moves (K−1)/K of the
// full ofmap per device through the shared medium.
func ChannelPartition(cfg models.Config, devices int,
	dev perfmodel.DeviceModel, link perfmodel.LinkModel) Breakdown {

	k := int64(devices)
	var comp, xferBytes int64
	for _, b := range cfg.Profile() {
		comp += b.FLOPs / k
		// Every device must receive the (K-1)/K of each ofmap it did not
		// accumulate; all of it crosses the shared medium.
		xferBytes += b.OfmapBytes * (k - 1)
	}
	head := cfg.HeadProfile()
	comp += head.FLOPs
	memPerDev := cfg.TotalMemBytes() / k
	return Breakdown{
		Scheme:       "channel-partition",
		Transmission: link.TransferTime(xferBytes),
		Computation:  dev.Time(comp, memPerDev),
	}
}

// ChannelPartitionLayerBits returns the bits a pair of devices exchanges
// after one layer under 2-way channel partitioning — the paper's
// Section 3.1 example computes 51.38 Mbits for VGG16's first block.
func ChannelPartitionLayerBits(cfg models.Config, layer int) int64 {
	return cfg.Profile()[layer].OfmapBytes / 2 * 8
}

// BatchPartition models batch partitioning (Section 3.1): whole images
// go to different devices. Per-image latency equals the single-device
// scheme — "it does not mitigate resource bottlenecks ... and hence does
// not minimize latency" — while throughput scales with the device count.
type BatchPartitionResult struct {
	Breakdown
	ThroughputPerSec float64
}

// BatchPartition returns the per-image latency and aggregate throughput
// of a K-device batch-partitioned deployment.
func BatchPartition(cfg models.Config, devices int, dev perfmodel.DeviceModel) BatchPartitionResult {
	single := SingleDevice(cfg, dev)
	lat := single.Total()
	res := BatchPartitionResult{
		Breakdown:        Breakdown{Scheme: "batch-partition", Computation: single.Computation},
		ThroughputPerSec: float64(devices) / lat.Seconds(),
	}
	return res
}

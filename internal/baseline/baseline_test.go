package baseline

import (
	"testing"
	"time"

	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/perfmodel"
)

func TestSingleDeviceMatchesTable3(t *testing.T) {
	b := SingleDevice(models.VGG16(), perfmodel.RaspberryPi())
	if b.Transmission != 0 {
		t.Fatal("single device has no transmission")
	}
	if b.Computation < 1400*time.Millisecond || b.Computation > 1750*time.Millisecond {
		t.Fatalf("computation = %v, Table 3 says 1586.53 ms", b.Computation)
	}
}

func TestRemoteCloudMatchesTable3(t *testing.T) {
	b := RemoteCloud(models.VGG16(), perfmodel.CloudServer(), perfmodel.WAN())
	// Table 3: transmission 502.21 ms, computation 98.94 ms.
	if b.Transmission < 400*time.Millisecond || b.Transmission > 650*time.Millisecond {
		t.Fatalf("transmission = %v, Table 3 says ≈502 ms", b.Transmission)
	}
	if b.Computation < 85*time.Millisecond || b.Computation > 115*time.Millisecond {
		t.Fatalf("computation = %v, Table 3 says ≈99 ms", b.Computation)
	}
	// Remote cloud is transmission-bound (the paper's observation).
	if b.Transmission < b.Computation {
		t.Fatal("remote cloud must be dominated by transmission")
	}
}

func TestNeurosurgeonSplitStructure(t *testing.T) {
	// Paper Section 7.4: Neurosurgeon splits early because intermediate
	// CNN feature maps are larger than the input, and its latency is
	// communication-dominated. In our model that shows as: whenever the
	// cloud is involved at all, the split is at the very front (upload the
	// raw input) and transmission dominates; otherwise the optimum
	// collapses to fully-local. Mid-network splits never win.
	for _, cfg := range []models.Config{models.VGG16(), models.ResNet34(), models.YOLO()} {
		r := Neurosurgeon(cfg, perfmodel.RaspberryPi(), perfmodel.CloudServer(), perfmodel.WAN())
		early := r.SplitAfter <= 1
		local := r.SplitAfter >= len(cfg.Blocks)
		if !early && !local {
			t.Errorf("%s: mid-network split %d should never be optimal", cfg.Name, r.SplitAfter)
		}
		if early {
			share := float64(r.Transmission) / float64(r.Total())
			if share < 0.5 {
				t.Errorf("%s: cloud-bound split must be communication-dominated, share %.2f",
					cfg.Name, share)
			}
		}
	}
	// VGG16 specifically is cloud-bound (single device is 1586 ms).
	v := Neurosurgeon(models.VGG16(), perfmodel.RaspberryPi(), perfmodel.CloudServer(), perfmodel.WAN())
	if v.SplitAfter > 1 {
		t.Errorf("VGG16 split = %d, expected an early (cloud-heavy) split", v.SplitAfter)
	}
}

func TestNeurosurgeonNeverWorseThanEndpoints(t *testing.T) {
	for _, cfg := range models.FullScale() {
		r := Neurosurgeon(cfg, perfmodel.RaspberryPi(), perfmodel.CloudServer(), perfmodel.WAN())
		allEdge := SingleDevice(cfg, perfmodel.RaspberryPi())
		allCloud := RemoteCloud(cfg, perfmodel.CloudServer(), perfmodel.WAN())
		if r.Total() > allEdge.Total() || r.Total() > allCloud.Total()+time.Millisecond {
			t.Errorf("%s: neurosurgeon %v worse than endpoints (%v / %v)",
				cfg.Name, r.Total(), allEdge.Total(), allCloud.Total())
		}
	}
}

func TestAOFLFusesEarlyLayers(t *testing.T) {
	// Paper: AOFL fuses the first 13 layers for VGG16 and 14 for YOLO —
	// early layers, where halo overhead is relatively low.
	for _, tc := range []struct {
		cfg  models.Config
		grid fdsp.Grid
	}{
		{models.VGG16(), fdsp.Grid{Rows: 2, Cols: 4}},
		{models.YOLO(), fdsp.Grid{Rows: 2, Cols: 4}},
		{models.ResNet34(), fdsp.Grid{Rows: 2, Cols: 4}},
	} {
		r := AOFL(tc.cfg, tc.grid, 8, perfmodel.RaspberryPi(), perfmodel.WiFi())
		if r.FusedBlocks < 2 {
			t.Errorf("%s: fused only %d blocks", tc.cfg.Name, r.FusedBlocks)
		}
		if r.ComputeOverhead <= 0 {
			t.Errorf("%s: halo must cost extra compute, got %.3f", tc.cfg.Name, r.ComputeOverhead)
		}
	}
}

func TestAOFLBeatsSingleDevice(t *testing.T) {
	cfg := models.VGG16()
	a := AOFL(cfg, fdsp.Grid{Rows: 2, Cols: 4}, 8, perfmodel.RaspberryPi(), perfmodel.WiFi())
	s := SingleDevice(cfg, perfmodel.RaspberryPi())
	if a.Total() >= s.Total() {
		t.Fatalf("AOFL %v must beat single device %v", a.Total(), s.Total())
	}
}

func TestOrderingMatchesFigure14(t *testing.T) {
	// Figure 14: ADCNN < AOFL < Neurosurgeon for YOLO, VGG16, ResNet34.
	// Here we check the baseline half: AOFL < Neurosurgeon.
	for _, cfg := range []models.Config{models.VGG16(), models.ResNet34(), models.YOLO()} {
		a := AOFL(cfg, fdsp.Grid{Rows: 2, Cols: 4}, 8, perfmodel.RaspberryPi(), perfmodel.WiFi())
		n := Neurosurgeon(cfg, perfmodel.RaspberryPi(), perfmodel.CloudServer(), perfmodel.WAN())
		if a.Total() >= n.Total() {
			t.Errorf("%s: AOFL %v should beat Neurosurgeon %v", cfg.Name, a.Total(), n.Total())
		}
	}
}

func TestHaloMarginGrowsWithFusedDepth(t *testing.T) {
	cfg := models.VGG16()
	m2 := blockMarginIn(cfg, 0, 2)
	m7 := blockMarginIn(cfg, 0, 7)
	if m7 <= m2 {
		t.Fatalf("deeper fusion must need a larger halo: %d vs %d", m2, m7)
	}
}

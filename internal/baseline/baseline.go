// Package baseline implements the comparison schemes of the paper's
// evaluation: the single-device and remote-cloud schemes (Figure 11,
// Table 3), Neurosurgeon's optimal layer-wise edge/cloud split, and
// AOFL's fused-layer spatial partition with halo-extended tiles
// (Figure 14). All schemes run on the same calibrated device and link
// models as the ADCNN simulator, so the comparisons isolate the
// partitioning strategy.
package baseline

import (
	"time"

	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/perfmodel"
)

// Breakdown is a scheme's latency decomposition (Table 3's columns).
type Breakdown struct {
	Scheme       string
	Transmission time.Duration
	Computation  time.Duration
}

// Total returns transmission + computation.
func (b Breakdown) Total() time.Duration { return b.Transmission + b.Computation }

// SingleDevice runs the whole network on one edge device.
func SingleDevice(cfg models.Config, dev perfmodel.DeviceModel) Breakdown {
	return Breakdown{
		Scheme:      "single-device",
		Computation: dev.Time(cfg.TotalFLOPs(), cfg.TotalMemBytes()),
	}
}

// RemoteCloud uploads the input over the WAN, runs the whole network on
// the cloud server, and downloads the result.
func RemoteCloud(cfg models.Config, cloud perfmodel.DeviceModel, wan perfmodel.LinkModel) Breakdown {
	up := wan.TransferTime(cfg.InputBytes())
	down := wan.TransferTime(resultBytes(cfg))
	return Breakdown{
		Scheme:       "remote-cloud",
		Transmission: up + down,
		Computation:  cloud.Time(cfg.TotalFLOPs(), 0),
	}
}

// resultBytes is the wire size of the final prediction.
func resultBytes(cfg models.Config) int64 {
	h := cfg.HeadProfile()
	return h.OfmapBytes
}

// NeurosurgeonResult reports the best layer-wise split.
type NeurosurgeonResult struct {
	Breakdown
	// SplitAfter is the number of blocks executed on the edge device:
	// 0 = everything in the cloud, len(Blocks) = all blocks on the edge
	// with the head in the cloud, len(Blocks)+1 = fully local (no cloud).
	SplitAfter int
}

// Neurosurgeon tries every layer-wise split position: blocks [0,i) run on
// the edge device, the intermediate feature map crosses the WAN, and the
// rest (plus head) runs in the cloud. The fully-local configuration is
// also a candidate, as in Kang et al.'s search space. It returns the
// latency-optimal split.
func Neurosurgeon(cfg models.Config, edge, cloud perfmodel.DeviceModel, wan perfmodel.LinkModel) NeurosurgeonResult {
	prof := cfg.Profile()
	head := cfg.HeadProfile()
	best := NeurosurgeonResult{
		Breakdown:  SingleDevice(cfg, edge),
		SplitAfter: len(prof) + 1,
	}
	best.Scheme = "neurosurgeon"
	for i := 0; i <= len(prof); i++ {
		var edgeFLOPs, edgeMem int64
		for _, b := range prof[:i] {
			edgeFLOPs += b.FLOPs
			edgeMem += b.IfmapBytes + b.OfmapBytes
		}
		var cloudFLOPs int64
		for _, b := range prof[i:] {
			cloudFLOPs += b.FLOPs
		}
		cloudFLOPs += head.FLOPs

		var boundary int64
		if i == 0 {
			boundary = cfg.InputBytes()
		} else {
			boundary = prof[i-1].OfmapBytes
		}
		xfer := wan.TransferTime(boundary) + wan.TransferTime(resultBytes(cfg))
		comp := edge.Time(edgeFLOPs, edgeMem) + cloud.Time(cloudFLOPs, 0)
		cand := NeurosurgeonResult{
			Breakdown:  Breakdown{Scheme: "neurosurgeon", Transmission: xfer, Computation: comp},
			SplitAfter: i,
		}
		if cand.Total() < best.Total() {
			best = cand
		}
	}
	return best
}

// AOFLResult reports the best fused-layer configuration.
type AOFLResult struct {
	Breakdown
	// Boundaries are the fused-block split points: segment i covers
	// blocks [Boundaries[i], Boundaries[i+1]). The first entry is 0 and
	// the last is len(Blocks).
	Boundaries []int
	// FusedBlocks is the depth of the first fused block (the number the
	// paper reports: 13 for VGG16, 14 for YOLO, 16 for ResNet34).
	FusedBlocks int
	// ComputeOverhead is (halo-extended work)/(exact tile work) − 1 over
	// the whole network.
	ComputeOverhead float64
}

// AOFL implements the Adaptive Optimal Fused-Layer baseline (Zhou et
// al., as deployed in the paper's Section 7.4): the same deep prefix
// ADCNN distributes runs spatially partitioned across the devices as a
// sequence of fused blocks. Within a fused block each device's tile is
// extended by the block's data halo, so no communication happens inside
// it — but the halo grows with fused depth and costs extra computation
// (the overhead ADCNN's retraining eliminates). Between fused blocks
// only the halo rings are exchanged over the shared link. The remaining
// blocks and the head run on a central device, and — unlike ADCNN — the
// intermediate feature maps travel uncompressed. The fused-block
// boundaries are chosen by exact dynamic programming, mirroring the
// paper's exhaustive search.
func AOFL(cfg models.Config, grid fdsp.Grid, devices int,
	dev perfmodel.DeviceModel, link perfmodel.LinkModel) AOFLResult {
	return AOFLWithReuse(cfg, grid, devices, dev, link, DefaultHaloReuse)
}

// DefaultHaloReuse is the fraction of halo-duplicated computation the
// multi-round scheduling of the AOFL/DeepThings line recovers by reusing
// neighbours' overlapping results instead of recomputing them.
const DefaultHaloReuse = 0.75

// AOFLWithReuse exposes the halo-reuse efficiency for ablations:
// reuse=0 is naive one-shot halo extension (every tile recomputes its
// full overlap), reuse→1 approaches perfect overlap sharing.
func AOFLWithReuse(cfg models.Config, grid fdsp.Grid, devices int,
	dev perfmodel.DeviceModel, link perfmodel.LinkModel, reuse float64) AOFLResult {

	cfg = cfg.Systemized()
	prof := cfg.Profile()
	head := cfg.HeadProfile()
	tiles := grid.Tiles()
	perDev := (tiles + devices - 1) / devices
	n := cfg.Separable

	// tileDims[b] is the exact tile size at block b's input.
	tileH := make([]float64, n+1)
	tileW := make([]float64, n+1)
	tileH[0] = float64(cfg.InputH) / float64(grid.Rows)
	tileW[0] = float64(cfg.InputW) / float64(grid.Cols)
	for b := 0; b < n; b++ {
		dh, dw := cfg.Blocks[b].Downsample()
		tileH[b+1] = tileH[b] / float64(dh)
		tileW[b+1] = tileW[b] / float64(dw)
	}

	// segCost returns the device compute time of fused segment [a, b) plus
	// its incoming scatter cost, or a huge value when infeasible.
	const infeasible = time.Duration(1) << 60
	segCost := func(a, b int) (time.Duration, float64, float64) {
		var flops, mem, exactF, exactM float64
		for blk := a; blk < b; blk++ {
			margin := blockMarginIn(cfg, blk, b)
			scale := ((tileH[blk] + 2*float64(margin)) * (tileW[blk] + 2*float64(margin))) /
				(tileH[blk] * tileW[blk])
			scale = 1 + (scale-1)*(1-reuse)
			if tileH[blk] < 1 || tileW[blk] < 1 {
				return infeasible, 0, 0
			}
			flops += float64(prof[blk].FLOPs) / float64(tiles) * scale
			mem += float64(prof[blk].IfmapBytes+prof[blk].OfmapBytes) / float64(tiles) * scale
			exactF += float64(prof[blk].FLOPs) / float64(tiles)
			exactM += float64(prof[blk].IfmapBytes+prof[blk].OfmapBytes) / float64(tiles)
		}
		comp := dev.Time(int64(flops*float64(perDev)), int64(mem*float64(perDev)))
		exact := dev.Time(int64(exactF*float64(perDev)), int64(exactM*float64(perDev)))
		return comp, float64(exact), float64(comp)
	}

	// scatterCost is the communication entering the segment starting at
	// block a. For a=0 the raw image is scattered (halo duplication
	// included). For later boundaries the feature map stays distributed
	// and only the halo rings are exchanged; on a WiFi edge network every
	// exchange traverses the access point, so halo bytes count twice, and
	// each tile costs two messages of per-message latency.
	scatterCost := func(a, b int) time.Duration {
		margin := float64(blockMarginIn(cfg, a, b))
		extArea := (tileH[a] + 2*margin) * (tileW[a] + 2*margin)
		area := tileH[a] * tileW[a]
		if a == 0 {
			bytes := float64(cfg.InputBytes()) / 4 * extArea / area // 1-byte image values
			return link.TransferTime(int64(bytes))
		}
		chans := float64(prof[a].InC)
		haloBytes := (extArea - area) * chans * 4 * float64(tiles) * 2
		msgs := time.Duration(2*tiles) * time.Duration(link.LatencyMs*float64(time.Millisecond))
		return time.Duration(haloBytes/link.GoodputBps()*float64(time.Second)) + msgs
	}

	// DP over boundaries.
	type state struct {
		cost  time.Duration
		comp  time.Duration
		xfer  time.Duration
		exact float64
		halo  float64
		next  int
	}
	// centralize(a) is the cost of gathering the distributed map before
	// block a and finishing blocks a.. plus the head on a single device.
	centralize := func(a int) state {
		var gather time.Duration
		if a > 0 {
			gather = link.TransferTime(prof[a-1].OfmapBytes)
		}
		var restFLOPs, restMem int64
		for _, b := range prof[a:] {
			restFLOPs += b.FLOPs
			restMem += b.IfmapBytes + b.OfmapBytes
		}
		restTime := dev.Time(restFLOPs+head.FLOPs, restMem+head.IfmapBytes+head.OfmapBytes)
		return state{cost: gather + restTime, comp: restTime, xfer: gather, next: -1}
	}

	dp := make([]state, n+1)
	dp[n] = centralize(n)
	for a := n - 1; a >= 0; a-- {
		// Option 1: stop distributing here and centralize the rest.
		dp[a] = centralize(a)
		// Option 2: run one more fused segment [a, b) distributed.
		for b := a + 1; b <= n; b++ {
			comp, exact, halo := segCost(a, b)
			if comp >= infeasible {
				continue
			}
			sc := scatterCost(a, b)
			total := sc + comp + dp[b].cost
			if total < dp[a].cost {
				dp[a] = state{
					cost:  total,
					comp:  comp + dp[b].comp,
					xfer:  sc + dp[b].xfer,
					exact: exact + dp[b].exact,
					halo:  halo + dp[b].halo,
					next:  b,
				}
			}
		}
	}

	var boundaries []int
	for a := 0; a != -1 && a <= n; a = dp[a].next {
		boundaries = append(boundaries, a)
		if a == n {
			break
		}
	}
	res := AOFLResult{
		Breakdown: Breakdown{
			Scheme:       "aofl",
			Transmission: dp[0].xfer,
			Computation:  dp[0].comp,
		},
		Boundaries: boundaries,
	}
	if len(boundaries) >= 2 {
		res.FusedBlocks = boundaries[1] - boundaries[0]
	}
	if dp[0].exact > 0 {
		res.ComputeOverhead = dp[0].halo/dp[0].exact - 1
	}
	return res
}

// blockMarginIn returns the halo margin block b's input needs inside a
// fused segment ending at block d (exclusive).
func blockMarginIn(cfg models.Config, b, d int) int {
	var geoms []fdsp.LayerGeom
	for _, g := range cfg.HaloGeoms(d)[stageIndex(cfg, b):] {
		geoms = append(geoms, fdsp.LayerGeom{Kernel: g[0], Stride: g[1]})
	}
	return fdsp.HaloMargin(geoms)
}

// stageIndex maps a block index to its first stage in HaloGeoms output.
func stageIndex(cfg models.Config, b int) int {
	idx := 0
	for _, blk := range cfg.Blocks[:b] {
		idx++
		if blk.Residual {
			idx++
		}
		if blk.Pool > 0 {
			idx++
		}
	}
	return idx
}

package trainer

import (
	"fmt"

	"adcnn/internal/dataset"
	"adcnn/internal/models"
)

// StageResult records one step of Algorithm 1.
type StageResult struct {
	Name   string // "fdsp", "clipped-relu", "quantization"
	Epochs int    // retraining epochs needed to recover accuracy
	Metric float64
}

// ProgressiveResult is the outcome of the full Algorithm 1 run.
type ProgressiveResult struct {
	OriginalMetric float64
	Stages         []StageResult
	Final          *models.Model
}

// TotalEpochs sums the per-stage retraining epochs (Table 1's "Total").
func (r *ProgressiveResult) TotalEpochs() int {
	n := 0
	for _, s := range r.Stages {
		n += s.Epochs
	}
	return n
}

// FinalMetric returns the last stage's metric.
func (r *ProgressiveResult) FinalMetric() float64 {
	if len(r.Stages) == 0 {
		return r.OriginalMetric
	}
	return r.Stages[len(r.Stages)-1].Metric
}

// ProgressiveConfig tunes Algorithm 1.
type ProgressiveConfig struct {
	Target models.Options // the final architecture modifications
	// Tolerance is the acceptable accuracy drop from the original model
	// (the paper allows up to 1%).
	Tolerance float64
	// MaxEpochsPerStage caps each stage's retraining.
	MaxEpochsPerStage int
	Seed              int64
}

// ProgressiveRetrain implements Algorithm 1. ori must be a trained
// original model (M_ori). Each stage builds a model with one more
// modification, warm-starts it from the previous stage, and retrains
// until the test metric recovers to (original − tolerance).
func ProgressiveRetrain(tr *Trainer, cfg models.Config, ori *models.Model,
	train, test *dataset.Set, pc ProgressiveConfig) (*ProgressiveResult, error) {

	if !pc.Target.Partitioned() {
		return nil, fmt.Errorf("trainer: progressive retraining needs a partition grid")
	}
	res := &ProgressiveResult{OriginalMetric: Evaluate(ori, test, tr.P.BatchSize)}
	target := res.OriginalMetric - pc.Tolerance

	// Stage 1 (Algorithm 1 step 3): apply FDSP, retrain to recover.
	prev := ori
	stageOpts := []struct {
		name string
		opt  models.Options
	}{
		{"fdsp", models.Options{Grid: pc.Target.Grid}},
	}
	if pc.Target.Clipped() {
		stageOpts = append(stageOpts, struct {
			name string
			opt  models.Options
		}{"clipped-relu", models.Options{Grid: pc.Target.Grid, ClipLo: pc.Target.ClipLo, ClipHi: pc.Target.ClipHi}})
	}
	if pc.Target.QuantBits > 0 {
		stageOpts = append(stageOpts, struct {
			name string
			opt  models.Options
		}{"quantization", pc.Target})
	}

	for _, st := range stageOpts {
		m, err := models.Build(cfg, st.opt, pc.Seed)
		if err != nil {
			return nil, fmt.Errorf("trainer: stage %s: %w", st.name, err)
		}
		if err := m.CopyWeightsFrom(prev); err != nil {
			return nil, fmt.Errorf("trainer: stage %s warm start: %w", st.name, err)
		}
		epochs, metric := tr.TrainUntil(m, train, test, target, pc.MaxEpochsPerStage)
		res.Stages = append(res.Stages, StageResult{Name: st.name, Epochs: epochs, Metric: metric})
		prev = m
	}
	res.Final = prev
	return res, nil
}

// OneShotRetrain is the ablation baseline the paper motivates Algorithm 1
// against: build the fully modified model directly from M_ori's weights
// and retrain it in a single stage for the same epoch budget.
func OneShotRetrain(tr *Trainer, cfg models.Config, ori *models.Model,
	train, test *dataset.Set, pc ProgressiveConfig) (*ProgressiveResult, error) {

	res := &ProgressiveResult{OriginalMetric: Evaluate(ori, test, tr.P.BatchSize)}
	target := res.OriginalMetric - pc.Tolerance
	m, err := models.Build(cfg, pc.Target, pc.Seed)
	if err != nil {
		return nil, err
	}
	if err := m.CopyWeightsFrom(ori); err != nil {
		return nil, err
	}
	budget := pc.MaxEpochsPerStage * 3
	epochs, metric := tr.TrainUntil(m, train, test, target, budget)
	res.Stages = append(res.Stages, StageResult{Name: "one-shot", Epochs: epochs, Metric: metric})
	res.Final = m
	return res, nil
}

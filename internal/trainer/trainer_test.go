package trainer

import (
	"testing"

	"adcnn/internal/dataset"
	"adcnn/internal/fdsp"
	"adcnn/internal/models"
)

// smallClassifyModel builds a tiny classifier + dataset that trains in
// well under a second.
func smallClassifySetup(t *testing.T, opt models.Options) (*models.Model, *dataset.Set, *dataset.Set) {
	t.Helper()
	cfg := models.Config{
		Name: "tiny", Task: models.TaskClassify,
		InputC: 1, InputH: 16, InputW: 16, Classes: 3,
		Blocks: []models.BlockSpec{
			{Name: "b1", OutC: 6, Kernel: 3, Stride: 1, Pool: 2},
			{Name: "b2", OutC: 8, Kernel: 3, Stride: 1, Pool: 2},
		},
		Separable: 1,
		Head:      models.HeadFC, HiddenFC: 16,
	}
	m, err := models.Build(cfg, opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	all := dataset.Classification(144, 3, 1, 16, 16, 0.15, 10)
	train, test := all.Split(96)
	return m, train, test
}

func TestTrainingImprovesAccuracy(t *testing.T) {
	m, train, test := smallClassifySetup(t, models.Options{})
	tr := New(Params{LR: 0.05, Momentum: 0.9, BatchSize: 16, Seed: 1})
	before := Evaluate(m, test, 16)
	losses := tr.Train(m, train, 8)
	after := Evaluate(m, test, 16)
	if after <= before+0.1 {
		t.Fatalf("training did not help: %.3f -> %.3f", before, after)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v", losses)
	}
	if after < 0.8 {
		t.Fatalf("tiny separable problem should reach >80%%, got %.3f", after)
	}
}

func TestTrainUntilStopsEarly(t *testing.T) {
	m, train, test := smallClassifySetup(t, models.Options{})
	tr := New(Params{LR: 0.05, Momentum: 0.9, BatchSize: 16, Seed: 2})
	tr.Train(m, train, 8) // pre-train to high accuracy
	target := Evaluate(m, test, 16) - 0.05
	epochs, metric := tr.TrainUntil(m, train, test, target, 10)
	if epochs != 0 {
		t.Fatalf("already above target but used %d epochs", epochs)
	}
	if metric < target {
		t.Fatalf("metric %v below target %v", metric, target)
	}
}

func TestSuggestClipBounds(t *testing.T) {
	m, train, _ := smallClassifySetup(t, models.Options{})
	lo, hi := SuggestClipBounds(m, train, 8, 0.05, 0.95)
	if !(hi > lo) {
		t.Fatalf("bounds lo=%v hi=%v", lo, hi)
	}
	if lo < 0 {
		t.Fatalf("front output is post-ReLU, lo must be >= 0, got %v", lo)
	}
}

func TestProgressiveRetrainRecoversAccuracy(t *testing.T) {
	m, train, test := smallClassifySetup(t, models.Options{})
	tr := New(Params{LR: 0.05, Momentum: 0.9, BatchSize: 16, Seed: 3})
	tr.Train(m, train, 10)
	ori := Evaluate(m, test, 16)
	if ori < 0.8 {
		t.Fatalf("original model too weak (%.3f) for the experiment to be meaningful", ori)
	}
	lo, hi := SuggestClipBounds(m, train, 8, 0.02, 0.98)
	pc := ProgressiveConfig{
		Target: models.Options{
			Grid:   fdsp.Grid{Rows: 2, Cols: 2},
			ClipLo: lo, ClipHi: hi, QuantBits: 4,
		},
		Tolerance:         0.05,
		MaxEpochsPerStage: 8,
		Seed:              4,
	}
	res, err := ProgressiveRetrain(tr, modelCfg(m), m, train, test, pc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 3 {
		t.Fatalf("expected 3 stages, got %d", len(res.Stages))
	}
	if res.FinalMetric() < ori-0.1 {
		t.Fatalf("progressive retraining failed to recover: original %.3f, final %.3f",
			ori, res.FinalMetric())
	}
	if res.TotalEpochs() < 0 || res.TotalEpochs() > 24 {
		t.Fatalf("TotalEpochs = %d", res.TotalEpochs())
	}
	if res.Final == nil || !res.Final.Opt.Partitioned() {
		t.Fatal("final model must carry the target options")
	}
}

func TestProgressiveRequiresGrid(t *testing.T) {
	m, train, test := smallClassifySetup(t, models.Options{})
	tr := New(DefaultParams())
	_, err := ProgressiveRetrain(tr, modelCfg(m), m, train, test, ProgressiveConfig{})
	if err == nil {
		t.Fatal("missing grid must be rejected")
	}
}

func TestOneShotRetrainRuns(t *testing.T) {
	m, train, test := smallClassifySetup(t, models.Options{})
	tr := New(Params{LR: 0.05, Momentum: 0.9, BatchSize: 16, Seed: 5})
	tr.Train(m, train, 6)
	lo, hi := SuggestClipBounds(m, train, 4, 0.02, 0.98)
	pc := ProgressiveConfig{
		Target: models.Options{
			Grid: fdsp.Grid{Rows: 2, Cols: 2}, ClipLo: lo, ClipHi: hi, QuantBits: 4,
		},
		Tolerance:         0.05,
		MaxEpochsPerStage: 3,
		Seed:              6,
	}
	res, err := OneShotRetrain(tr, modelCfg(m), m, train, test, pc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 1 || res.Stages[0].Name != "one-shot" {
		t.Fatalf("stages: %+v", res.Stages)
	}
}

// modelCfg recovers the Config from a model (test helper).
func modelCfg(m *models.Model) models.Config { return m.Cfg }

package trainer

import (
	"testing"

	"adcnn/internal/models"
	"adcnn/internal/nn"
)

func TestSearchClipBoundsHitsTargetSparsity(t *testing.T) {
	m, train, _ := smallClassifySetup(t, models.Options{})
	tr := New(Params{LR: 0.05, Momentum: 0.9, BatchSize: 16, Seed: 51})
	tr.Train(m, train, 4)

	for _, target := range []float64{0.7, 0.9} {
		lo, hi := SearchClipBounds(m, train, 8, target)
		if !(hi > lo) || lo < 0 {
			t.Fatalf("bad bounds lo=%v hi=%v", lo, hi)
		}
		// Measure the actual sparsity those bounds produce.
		clip := nn.NewClippedReLU("probe", lo, hi)
		var zeros, total int
		for i := 0; i < 8; i++ {
			x, _ := train.Batch(i, 1)
			y := clip.Forward(m.Front.Forward(x, false), false)
			total += y.Len()
			for _, v := range y.Data {
				if v == 0 {
					zeros++
				}
			}
		}
		got := float64(zeros) / float64(total)
		if got < target-0.2 || got > target+0.2 {
			t.Fatalf("target sparsity %.2f: bounds [%.3f, %.3f] gave %.3f", target, lo, hi, got)
		}
	}
}

func TestSearchClipBoundsMonotoneInTarget(t *testing.T) {
	m, train, _ := smallClassifySetup(t, models.Options{})
	tr := New(Params{LR: 0.05, Momentum: 0.9, BatchSize: 16, Seed: 52})
	tr.Train(m, train, 4)
	lo1, _ := SearchClipBounds(m, train, 8, 0.6)
	lo2, _ := SearchClipBounds(m, train, 8, 0.95)
	if lo2 < lo1 {
		t.Fatalf("higher target sparsity needs a higher lower bound: %.3f vs %.3f", lo1, lo2)
	}
}

package trainer

import (
	"math"
	"sort"

	"adcnn/internal/dataset"
	"adcnn/internal/models"
)

// SearchClipBounds implements the paper's two-step bound selection
// (Section 7.1): "first search for a coarse parameter range based on
// separable layer block output statistics, and then perform grid search
// to produce expected output sparsity". It collects the Front output
// distribution on a few samples, builds candidate (lo, hi) pairs from
// its quantiles, and returns the pair whose clipped-ReLU output sparsity
// is closest to target.
func SearchClipBounds(m *models.Model, set *dataset.Set, samples int, target float64) (lo, hi float32) {
	if samples > set.Len() {
		samples = set.Len()
	}
	var vals []float32
	total := 0
	for i := 0; i < samples; i++ {
		x, _ := set.Batch(i, 1)
		y := m.Front.Forward(x, false)
		total += y.Len()
		for _, v := range y.Data {
			if v > 0 {
				vals = append(vals, v)
			}
		}
	}
	if len(vals) == 0 || total == 0 {
		return 0, 1
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	q := func(p float64) float32 {
		idx := int(p * float64(len(vals)-1))
		return vals[idx]
	}
	baseZero := float64(total-len(vals)) / float64(total) // ReLU sparsity floor

	loCands := []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95}
	hiCands := []float64{0.9, 0.95, 0.99, 0.999}
	best := math.Inf(1)
	lo, hi = 0, q(0.999)
	for _, lq := range loCands {
		for _, hq := range hiCands {
			l, h := q(lq), q(hq)
			if h <= l {
				continue
			}
			// Sparsity after ReLU[l,h]: zeros = base zeros + values below l.
			sparsity := baseZero + lq*(1-baseZero)
			if d := math.Abs(sparsity - target); d < best {
				best = d
				lo, hi = l, h
			}
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	return lo, hi
}

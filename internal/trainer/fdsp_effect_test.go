package trainer

import (
	"testing"

	"adcnn/internal/dataset"
	"adcnn/internal/fdsp"
	"adcnn/internal/models"
)

// dsClassification is a shorthand for the synthetic classification set.
func dsClassification(n, classes, size int, noise float32, seed int64) *dataset.Set {
	return dataset.Classification(n, classes, 1, size, size, noise, seed)
}

// TestFDSPDegradesAndRetrainingRecovers validates the paper's central
// empirical claim end to end on a trained model:
//
//  1. applying FDSP to a trained model *without* retraining hurts the
//     metric (zero padding at tile borders destroys information),
//  2. progressive retraining recovers most of the loss,
//  3. the exact halo-extended partition (AOFL-style) is lossless by
//     construction.
func TestFDSPDegradesAndRetrainingRecovers(t *testing.T) {
	// A harder task than the usual fixture: 8 classes with heavy pixel
	// noise, so accuracy sits below saturation and border distortion from
	// zero padding is visible.
	cfg := models.Config{
		Name: "tiny8", Task: models.TaskClassify,
		InputC: 1, InputH: 16, InputW: 16, Classes: 8,
		Blocks: []models.BlockSpec{
			{Name: "b1", OutC: 8, Kernel: 3, Stride: 1, Pool: 2},
			{Name: "b2", OutC: 12, Kernel: 3, Stride: 1, Pool: 2},
		},
		Separable: 1,
		Head:      models.HeadFC, HiddenFC: 24,
	}
	m, err := models.Build(cfg, models.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	all := dsClassification(256, 8, 16, 0.6, 31)
	train, test := all.Split(192)
	tr := New(Params{LR: 0.05, Momentum: 0.9, BatchSize: 16, Seed: 21})
	tr.Train(m, train, 12)
	orig := Evaluate(m, test, 16)
	if orig < 0.6 {
		t.Fatalf("original model too weak (%.3f)", orig)
	}

	// 1. FDSP without retraining: copy weights into a partitioned model.
	grid := fdsp.Grid{Rows: 4, Cols: 4}
	part, err := models.Build(m.Cfg, models.Options{Grid: grid}, 99)
	if err != nil {
		t.Fatal(err)
	}
	if err := part.CopyWeightsFrom(m); err != nil {
		t.Fatal(err)
	}
	noRetrain := Evaluate(part, test, 16)
	if noRetrain >= orig {
		t.Skipf("FDSP happened not to hurt on this seed (%.3f vs %.3f); degradation is distribution-dependent", noRetrain, orig)
	}

	// 2. Retraining recovers.
	pc := ProgressiveConfig{
		Target:            models.Options{Grid: grid},
		Tolerance:         0.02,
		MaxEpochsPerStage: 8,
		Seed:              23,
	}
	res, err := ProgressiveRetrain(tr, m.Cfg, m, train, test, pc)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalMetric() <= noRetrain {
		t.Fatalf("retraining must improve on the unretrained FDSP model: %.3f vs %.3f",
			res.FinalMetric(), noRetrain)
	}

	// 3. Halo-extended execution of the *original* Front is exact, so the
	// full model metric is unchanged. (Verified functionally in
	// internal/fdsp; here we check the metric consequence on real data.)
	x, labels := test.Batch(0, 8)
	full := m.Net.Forward(x, false)
	accFull := m.Metric(full, labels)
	// Run each sample's front through RunWithHalo and the back.
	var geoms []fdsp.LayerGeom
	for _, g := range m.Cfg.HaloGeoms(m.Cfg.Separable) {
		geoms = append(geoms, fdsp.LayerGeom{Kernel: g[0], Stride: g[1]})
	}
	correct := 0
	for i := 0; i < 8; i++ {
		xi, _ := test.Batch(i, 1)
		mid := fdsp.RunWithHalo(m.Front, xi, grid, geoms)
		out := m.Back.Forward(mid, false)
		if out.ArgMax() == labels[i] {
			correct++
		}
	}
	if float64(correct)/8 < accFull-1e-9 {
		t.Fatalf("halo partition must be lossless: %d/8 vs full-model %.3f", correct, accFull)
	}
}

// Package trainer implements model training, evaluation, and the
// paper's progressive retraining procedure (Algorithm 1): the original
// model's weights seed an FDSP-partitioned model, which is retrained
// until accuracy recovers; the result seeds the clipped-ReLU model; and
// that seeds the quantized model. Each stage makes one small training-
// graph modification, keeping forward/backward disparity low.
package trainer

import (
	"fmt"
	"math/rand"
	"sort"

	"adcnn/internal/dataset"
	"adcnn/internal/models"
	"adcnn/internal/nn"
	"adcnn/internal/tensor"
)

// Params holds the optimization hyperparameters (PyTorch-default style).
type Params struct {
	LR          float32
	Momentum    float32
	WeightDecay float32
	BatchSize   int
	Seed        int64
	// Optimizer selects "sgd" (default) or "adam".
	Optimizer string
	// LRDecayEvery/LRDecayFactor apply step decay to the learning rate
	// every N epochs (0 disables).
	LRDecayEvery  int
	LRDecayFactor float32
}

// DefaultParams returns sensible defaults for the sim-scale models.
func DefaultParams() Params {
	return Params{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4, BatchSize: 16, Seed: 1}
}

// Trainer runs SGD epochs over a dataset.
type Trainer struct {
	P   Params
	rng *rand.Rand
}

// New creates a trainer.
func New(p Params) *Trainer {
	if p.BatchSize < 1 {
		p.BatchSize = 16
	}
	return &Trainer{P: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// Epoch runs one pass over the training set and returns the mean loss.
func (t *Trainer) Epoch(m *models.Model, set *dataset.Set, opt *optState) float64 {
	n := set.Len()
	order := t.rng.Perm(n)
	var total float64
	batches := 0
	for start := 0; start < n; start += t.P.BatchSize {
		end := start + t.P.BatchSize
		if end > n {
			end = n
		}
		x, labels := gatherBatch(set, order[start:end])
		logits := m.Net.Forward(x, true)
		loss, grad := m.Loss(logits, labels)
		m.Net.Backward(grad)
		opt.step(m)
		total += loss
		batches++
	}
	return total / float64(batches)
}

// Train runs epochs and returns the per-epoch training losses.
func (t *Trainer) Train(m *models.Model, set *dataset.Set, epochs int) []float64 {
	opt := newOptState(t.P)
	losses := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		opt.setEpoch(t.P, e)
		losses = append(losses, t.Epoch(m, set, opt))
	}
	return losses
}

// TrainUntil trains until Evaluate(test) >= target or maxEpochs is
// reached, returning the epochs used and the final metric. This is how
// Table 1's "epochs needed for each modification" is measured.
func (t *Trainer) TrainUntil(m *models.Model, train, test *dataset.Set, target float64, maxEpochs int) (int, float64) {
	opt := newOptState(t.P)
	best := Evaluate(m, test, t.P.BatchSize)
	if best >= target {
		return 0, best
	}
	for e := 1; e <= maxEpochs; e++ {
		opt.setEpoch(t.P, e-1)
		t.Epoch(m, train, opt)
		metric := Evaluate(m, test, t.P.BatchSize)
		if metric > best {
			best = metric
		}
		if metric >= target {
			return e, metric
		}
	}
	return maxEpochs, best
}

// Evaluate returns the model's task metric over a set.
func Evaluate(m *models.Model, set *dataset.Set, batchSize int) float64 {
	if batchSize < 1 {
		batchSize = 16
	}
	n := set.Len()
	var weighted float64
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		x, labels := set.Batch(start, end-start)
		logits := m.Net.Forward(x, false)
		weighted += m.Metric(logits, labels) * float64(end-start)
	}
	return weighted / float64(n)
}

// gatherBatch assembles a shuffled mini-batch by copying sample rows.
func gatherBatch(set *dataset.Set, idx []int) (x *tensor.Tensor, labels []int) {
	c, h, w := set.X.Shape[1], set.X.Shape[2], set.X.Shape[3]
	sample := c * h * w
	per := set.LabelH * set.LabelW
	out := tensor.New(len(idx), c, h, w)
	labels = make([]int, 0, len(idx)*per)
	for bi, i := range idx {
		copy(out.Data[bi*sample:(bi+1)*sample], set.X.Data[i*sample:(i+1)*sample])
		labels = append(labels, set.Labels[i*per:(i+1)*per]...)
	}
	return out, labels
}

// SuggestClipBounds inspects the Front output distribution on a few
// samples and returns clipped-ReLU bounds covering [loQ, hiQ] quantiles
// of the non-zero activations — the paper's "coarse parameter range based
// on separable layer block output statistics".
func SuggestClipBounds(m *models.Model, set *dataset.Set, samples int, loQ, hiQ float64) (lo, hi float32) {
	if samples > set.Len() {
		samples = set.Len()
	}
	var vals []float32
	for i := 0; i < samples; i++ {
		x, _ := set.Batch(i, 1)
		y := m.Front.Forward(x, false)
		for _, v := range y.Data {
			if v > 0 {
				vals = append(vals, v)
			}
		}
	}
	if len(vals) == 0 {
		return 0, 1
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	lo = vals[int(loQ*float64(len(vals)-1))]
	hi = vals[int(hiQ*float64(len(vals)-1))]
	if hi <= lo {
		hi = lo + 1
	}
	return lo, hi
}

// String implements a compact description of Params for logs.
func (p Params) String() string {
	return fmt.Sprintf("lr=%g mom=%g wd=%g bs=%d", p.LR, p.Momentum, p.WeightDecay, p.BatchSize)
}

// optState wraps the optimizer so its state (momentum / Adam moments)
// persists across epochs of one training run but never leaks between
// runs.
type optState struct {
	opt nn.Optimizer
}

func newOptState(p Params) *optState {
	switch p.Optimizer {
	case "", "sgd":
		return &optState{opt: nn.NewSGD(p.LR, p.Momentum, p.WeightDecay)}
	case "adam":
		return &optState{opt: nn.NewAdam(p.LR, p.WeightDecay)}
	}
	panic(fmt.Sprintf("trainer: unknown optimizer %q", p.Optimizer))
}

// setEpoch applies the step-decay learning-rate schedule.
func (o *optState) setEpoch(p Params, epoch int) {
	if p.LRDecayEvery > 0 && p.LRDecayFactor > 0 {
		o.opt.SetLR(nn.StepDecay(p.LR, epoch, p.LRDecayEvery, p.LRDecayFactor))
	}
}

func (o *optState) step(m *models.Model) {
	o.opt.Step(m.Net.Params())
}

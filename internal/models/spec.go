// Package models defines the CNN architectures the paper evaluates
// (VGG16, ResNet18/34, YOLO, FCN, CharCNN) as declarative layer-block
// specs. Full-scale configs drive the analytic performance model
// (Figure 3 and the system experiments); proportionally scaled-down
// "sim" configs are actually built and trained on synthetic data for
// the accuracy experiments (Figure 10, Tables 1-2).
package models

import "fmt"

// Task is the model's prediction task, which selects loss and metric.
type Task int

// Task values.
const (
	TaskClassify Task = iota // image classification (top-1 accuracy)
	TaskSegment              // semantic segmentation (pixel acc, mean IoU)
	TaskDetect               // detection proxy: per-cell class prediction (cell accuracy ~ mAP shape)
	TaskText                 // text classification (accuracy)
)

// String names the task.
func (t Task) String() string {
	switch t {
	case TaskClassify:
		return "classify"
	case TaskSegment:
		return "segment"
	case TaskDetect:
		return "detect"
	case TaskText:
		return "text"
	}
	return fmt.Sprintf("task(%d)", int(t))
}

// HeadKind selects the model head attached after the layer blocks.
type HeadKind int

// HeadKind values.
const (
	HeadFC      HeadKind = iota // flatten → FC(hidden) → ReLU → FC(classes)
	HeadGAP                     // global average pool → FC(classes)
	HeadSegment                 // 1×1 conv hidden → 1×1 conv classes → upsample to input res
	HeadCells                   // 1×1 conv to classes at the final spatial resolution
)

// BlockSpec describes one "layer block" in the paper's sense: a
// convolution + batch norm + ReLU, optionally followed by a pooling
// layer — or a two-conv residual unit when Residual is set.
type BlockSpec struct {
	Name     string
	OutC     int
	Kernel   int // conv kernel height (and width unless KernelW > 0)
	KernelW  int // 0 → square kernel; 1 for 1-D (text) convolutions
	Stride   int // conv stride (first conv of a residual unit)
	Pool     int // trailing max-pool window=stride (0 = none)
	PoolW    int // 0 → square pool; 1 for 1-D pooling
	Residual bool
}

func (b BlockSpec) kw() int {
	if b.KernelW > 0 {
		return b.KernelW
	}
	return b.Kernel
}

func (b BlockSpec) poolW() int {
	if b.PoolW > 0 {
		return b.PoolW
	}
	return b.Pool
}

// Downsample returns the spatial shrink factor of the block in (H, W).
func (b BlockSpec) Downsample() (dh, dw int) {
	dh, dw = b.Stride, b.Stride
	if b.Pool > 0 {
		dh *= b.Pool
		dw *= b.poolW()
	}
	return
}

// Config is a complete architecture description.
type Config struct {
	Name      string
	Task      Task
	InputC    int
	InputH    int
	InputW    int
	Classes   int
	Blocks    []BlockSpec
	Separable int // number of leading blocks FDSP is applied to
	// SystemSeparable is the deeper prefix used in the system/testbed
	// experiments (0 = same as Separable). Table 3's latency breakdown is
	// only reachable when nearly all convolutional work is distributed,
	// so the system runs partition every block whose pooling geometry
	// survives the tile size.
	SystemSeparable int
	Head            HeadKind
	HiddenFC        int // hidden width for HeadFC / hidden channels for HeadSegment
}

// Systemized returns a copy of the config with the separable prefix set
// to SystemSeparable, for use in the system-latency experiments.
func (c Config) Systemized() Config {
	if c.SystemSeparable > 0 {
		c.Separable = c.SystemSeparable
	}
	return c
}

// Validate performs basic sanity checks.
func (c Config) Validate() error {
	if len(c.Blocks) == 0 {
		return fmt.Errorf("models: %s has no blocks", c.Name)
	}
	if c.Separable < 0 || c.Separable > len(c.Blocks) {
		return fmt.Errorf("models: %s separable prefix %d out of range", c.Name, c.Separable)
	}
	if c.Classes < 2 {
		return fmt.Errorf("models: %s needs >= 2 classes", c.Name)
	}
	return nil
}

// FrontDownsample returns the (H, W) downsampling of the separable prefix.
func (c Config) FrontDownsample() (dh, dw int) {
	dh, dw = 1, 1
	for _, b := range c.Blocks[:c.Separable] {
		bh, bw := b.Downsample()
		dh *= bh
		dw *= bw
	}
	return
}

// TotalDownsample returns the (H, W) downsampling of all blocks.
func (c Config) TotalDownsample() (dh, dw int) {
	dh, dw = 1, 1
	for _, b := range c.Blocks {
		bh, bw := b.Downsample()
		dh *= bh
		dw *= bw
	}
	return
}

// InputBytes returns the raw float32 size of one input sample.
func (c Config) InputBytes() int64 {
	return 4 * int64(c.InputC) * int64(c.InputH) * int64(c.InputW)
}

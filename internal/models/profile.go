package models

// BlockProfile is the analytic cost of one layer block: the numbers
// behind Figure 3 (per-block execution time and ifmap size) and the
// system latency model.
type BlockProfile struct {
	Name             string
	InC, InH, InW    int
	OutC, OutH, OutW int
	FLOPs            int64 // forward multiply-add count ×2 plus elementwise work
	IfmapBytes       int64 // float32 input feature-map size
	OfmapBytes       int64 // float32 output feature-map size
	WeightBytes      int64 // float32 parameter size
}

// Profile walks the blocks and computes each one's analytic cost for the
// configured input resolution.
func (c Config) Profile() []BlockProfile {
	out := make([]BlockProfile, 0, len(c.Blocks))
	inC, h, w := c.InputC, c.InputH, c.InputW
	for _, b := range c.Blocks {
		p := profileBlock(b, inC, h, w)
		out = append(out, p)
		inC, h, w = p.OutC, p.OutH, p.OutW
	}
	return out
}

func profileBlock(b BlockSpec, inC, h, w int) BlockProfile {
	kw := b.kw()
	convH := h / b.Stride
	convW := w / b.Stride
	var flops, weights int64
	if b.Residual {
		// conv1 (stride), conv2 (stride 1), optional projection, add.
		flops += 2 * int64(b.Kernel) * int64(kw) * int64(inC) * int64(b.OutC) * int64(convH) * int64(convW)
		flops += 2 * int64(b.Kernel) * int64(kw) * int64(b.OutC) * int64(b.OutC) * int64(convH) * int64(convW)
		weights += int64(b.Kernel)*int64(kw)*int64(inC)*int64(b.OutC) + int64(b.Kernel)*int64(kw)*int64(b.OutC)*int64(b.OutC)
		if b.Stride != 1 || inC != b.OutC {
			flops += 2 * int64(inC) * int64(b.OutC) * int64(convH) * int64(convW)
			weights += int64(inC) * int64(b.OutC)
		}
		flops += int64(b.OutC) * int64(convH) * int64(convW) // residual add
		// two BN+ReLU passes
		flops += 2 * 4 * int64(b.OutC) * int64(convH) * int64(convW)
		weights += 4 * int64(b.OutC) // γ/β ×2
	} else {
		flops += 2 * int64(b.Kernel) * int64(kw) * int64(inC) * int64(b.OutC) * int64(convH) * int64(convW)
		weights += int64(b.Kernel) * int64(kw) * int64(inC) * int64(b.OutC)
		flops += 4 * int64(b.OutC) * int64(convH) * int64(convW) // BN + ReLU
		weights += 2 * int64(b.OutC)
	}
	outH, outW := convH, convW
	if b.Pool > 0 {
		pw := b.poolW()
		outH = convH / b.Pool
		outW = convW / pw
		flops += int64(b.Pool) * int64(pw) * int64(b.OutC) * int64(outH) * int64(outW)
	}
	return BlockProfile{
		Name: b.Name,
		InC:  inC, InH: h, InW: w,
		OutC: b.OutC, OutH: outH, OutW: outW,
		FLOPs:       flops,
		IfmapBytes:  4 * int64(inC) * int64(h) * int64(w),
		OfmapBytes:  4 * int64(b.OutC) * int64(outH) * int64(outW),
		WeightBytes: 4 * weights,
	}
}

// HeadProfile returns the analytic cost of the model head.
func (c Config) HeadProfile() BlockProfile {
	blocks := c.Profile()
	last := blocks[len(blocks)-1]
	inC, oh, ow := last.OutC, last.OutH, last.OutW
	p := BlockProfile{
		Name: "head",
		InC:  inC, InH: oh, InW: ow,
		IfmapBytes: 4 * int64(inC) * int64(oh) * int64(ow),
	}
	switch c.Head {
	case HeadFC:
		flat := int64(inC) * int64(oh) * int64(ow)
		p.FLOPs = 2 * (flat*int64(c.HiddenFC) + int64(c.HiddenFC)*int64(c.Classes))
		p.WeightBytes = 4 * (flat*int64(c.HiddenFC) + int64(c.HiddenFC)*int64(c.Classes))
		p.OutC, p.OutH, p.OutW = c.Classes, 1, 1
	case HeadGAP:
		p.FLOPs = int64(inC)*int64(oh)*int64(ow) + 2*int64(inC)*int64(c.Classes)
		p.WeightBytes = 4 * int64(inC) * int64(c.Classes)
		p.OutC, p.OutH, p.OutW = c.Classes, 1, 1
	case HeadSegment:
		hidden := c.HiddenFC
		if hidden == 0 {
			hidden = inC
		}
		p.FLOPs = 2*int64(inC)*int64(hidden)*int64(oh)*int64(ow) +
			2*int64(hidden)*int64(c.Classes)*int64(oh)*int64(ow)
		p.WeightBytes = 4 * (int64(inC)*int64(hidden) + int64(hidden)*int64(c.Classes))
		p.OutC, p.OutH, p.OutW = c.Classes, c.InputH, c.InputW
	case HeadCells:
		p.FLOPs = 2 * int64(inC) * int64(c.Classes) * int64(oh) * int64(ow)
		p.WeightBytes = 4 * int64(inC) * int64(c.Classes)
		p.OutC, p.OutH, p.OutW = c.Classes, oh, ow
	}
	p.OfmapBytes = 4 * int64(p.OutC) * int64(p.OutH) * int64(p.OutW)
	return p
}

// TotalFLOPs returns the whole network's forward cost including the head.
func (c Config) TotalFLOPs() int64 {
	var s int64
	for _, b := range c.Profile() {
		s += b.FLOPs
	}
	return s + c.HeadProfile().FLOPs
}

// FrontFLOPs returns the separable prefix's forward cost for the full
// image. Per-tile cost is FrontFLOPs / (grid tiles) because every
// block's work is proportional to its spatial area.
func (c Config) FrontFLOPs() int64 {
	var s int64
	for _, b := range c.Profile()[:c.Separable] {
		s += b.FLOPs
	}
	return s
}

// BackFLOPs returns the Central node's share (non-separable blocks plus
// the head).
func (c Config) BackFLOPs() int64 { return c.TotalFLOPs() - c.FrontFLOPs() }

// FrontOutBytes returns the float32 size of the separable prefix output
// for the full image (the "before pruning" transmission volume).
func (c Config) FrontOutBytes() int64 {
	if c.Separable == 0 {
		return c.InputBytes()
	}
	return c.Profile()[c.Separable-1].OfmapBytes
}

// FrontWeightBytes returns the parameter bytes each Conv node stores.
func (c Config) FrontWeightBytes() int64 {
	var s int64
	for _, b := range c.Profile()[:c.Separable] {
		s += b.WeightBytes
	}
	return s
}

// FrontMemBytes returns the feature-map traffic (ifmap + ofmap bytes) of
// the separable prefix — the memory-bound component of edge-device
// execution time.
func (c Config) FrontMemBytes() int64 {
	var s int64
	for _, b := range c.Profile()[:c.Separable] {
		s += b.IfmapBytes + b.OfmapBytes
	}
	return s
}

// TotalMemBytes returns the feature-map traffic of all blocks plus the
// head's input and output maps.
func (c Config) TotalMemBytes() int64 {
	var s int64
	for _, b := range c.Profile() {
		s += b.IfmapBytes + b.OfmapBytes
	}
	h := c.HeadProfile()
	return s + h.IfmapBytes + h.OfmapBytes
}

// BackMemBytes returns the Central node's feature-map traffic.
func (c Config) BackMemBytes() int64 { return c.TotalMemBytes() - c.FrontMemBytes() }

// HaloGeoms returns the sliding-window geometry of the first n blocks
// for the AOFL halo-margin computation (conv stages followed by pools).
func (c Config) HaloGeoms(n int) [][2]int {
	var out [][2]int
	for _, b := range c.Blocks[:n] {
		out = append(out, [2]int{b.Kernel, b.Stride})
		if b.Residual {
			out = append(out, [2]int{b.Kernel, 1})
		}
		if b.Pool > 0 {
			out = append(out, [2]int{b.Pool, b.Pool})
		}
	}
	return out
}

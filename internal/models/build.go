package models

import (
	"fmt"
	"math/rand"

	"adcnn/internal/compress"
	"adcnn/internal/fdsp"
	"adcnn/internal/nn"
)

// Options selects the architecture modifications of paper Section 3-4.
// The zero value builds the original, unpartitioned model (M_ori).
type Options struct {
	// Grid partitions the separable prefix with FDSP. Zero value = none.
	Grid fdsp.Grid
	// ClipLo/ClipHi insert a clipped ReLU at the Front/Back boundary when
	// ClipHi > ClipLo (Algorithm 1 step 4).
	ClipLo, ClipHi float32
	// QuantBits inserts straight-through quantization after the clipped
	// ReLU when > 0 (Algorithm 1 step 5). Requires a clipped ReLU.
	QuantBits int
	// Int8 selects the quantized operating mode: daemons that see it call
	// Model.QuantizeInt8 after loading trained parameters (Build itself
	// never quantizes — weights are random at build time) and exchange
	// quantized task payloads when the peer supports them. f32 stays the
	// default and the correctness oracle.
	Int8 bool
}

// Partitioned reports whether FDSP is enabled.
func (o Options) Partitioned() bool { return o.Grid.Rows > 0 && o.Grid.Cols > 0 }

// Clipped reports whether the boundary clipped ReLU is enabled.
func (o Options) Clipped() bool { return o.ClipHi > o.ClipLo }

// Model is an instantiated network split at the FDSP boundary.
type Model struct {
	Cfg Config
	Opt Options

	// Front holds the separable layer blocks — the weights every Conv
	// node stores. It operates on one tile (or the whole image when
	// unpartitioned).
	Front *nn.Sequential
	// Boundary holds the communication-reduction ops (clipped ReLU,
	// quantization). Elementwise, so Conv nodes apply it per tile before
	// transmitting.
	Boundary *nn.Sequential
	// Back holds the remaining blocks and the head — the Central node's
	// share.
	Back *nn.Sequential
	// Net is the end-to-end training graph: FDSP wrapper around Front
	// (when partitioned), then Boundary, then Back. It shares all layer
	// objects (and therefore parameters) with Front/Boundary/Back.
	Net *nn.Sequential
}

// Build instantiates a model from a config. Deterministic given seed.
func Build(cfg Config, opt Options, seed int64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.QuantBits > 0 && !opt.Clipped() {
		return nil, fmt.Errorf("models: quantization requires a clipped ReLU to bound the range")
	}
	if opt.Partitioned() {
		if cfg.InputH%opt.Grid.Rows != 0 || cfg.InputW%opt.Grid.Cols != 0 {
			return nil, fmt.Errorf("models: input %dx%d not divisible by grid %v",
				cfg.InputH, cfg.InputW, opt.Grid)
		}
		dh, dw := cfg.FrontDownsample()
		th, tw := cfg.InputH/opt.Grid.Rows, cfg.InputW/opt.Grid.Cols
		if th%dh != 0 || tw%dw != 0 {
			return nil, fmt.Errorf("models: tile %dx%d not divisible by front downsample %dx%d",
				th, tw, dh, dw)
		}
	}
	rng := rand.New(rand.NewSource(seed))

	// Each layer block becomes one nested Sequential so runtimes that
	// step block-by-block (halo exchange) can address them individually.
	front := nn.NewSequential(cfg.Name + ".front")
	inC := cfg.InputC
	for _, b := range cfg.Blocks[:cfg.Separable] {
		front.Append(nn.NewSequential(cfg.Name+"."+b.Name, buildBlock(b, inC, rng)...))
		inC = b.OutC
	}

	boundary := nn.NewSequential(cfg.Name + ".boundary")
	if opt.Clipped() {
		boundary.Append(nn.NewClippedReLU(cfg.Name+".clip", opt.ClipLo, opt.ClipHi))
		if opt.QuantBits > 0 {
			p := compress.NewPipeline(opt.QuantBits, opt.ClipHi-opt.ClipLo)
			boundary.Append(compress.NewSTQuant(cfg.Name+".quant", p))
		}
	}

	back := nn.NewSequential(cfg.Name + ".back")
	for _, b := range cfg.Blocks[cfg.Separable:] {
		back.Append(nn.NewSequential(cfg.Name+"."+b.Name, buildBlock(b, inC, rng)...))
		inC = b.OutC
	}
	appendHead(back, cfg, inC, rng)

	net := nn.NewSequential(cfg.Name)
	if opt.Partitioned() {
		net.Append(fdsp.NewFrontLayer(cfg.Name+".fdsp", opt.Grid, front))
	} else {
		net.Append(front)
	}
	net.Append(boundary, back)
	return &Model{Cfg: cfg, Opt: opt, Front: front, Boundary: boundary, Back: back, Net: net}, nil
}

// buildBlock creates the nn layers of one layer block.
func buildBlock(b BlockSpec, inC int, rng *rand.Rand) []nn.Layer {
	var layers []nn.Layer
	if b.Residual {
		body := nn.NewSequential(b.Name+".body",
			nn.NewConv2D(b.Name+".conv1", inC, b.OutC, b.Kernel, b.kw(), b.Stride, (b.Kernel-1)/2, rng).NoBias(),
			nn.NewBatchNorm2D(b.Name+".bn1", b.OutC),
			nn.NewReLU(b.Name+".relu1"),
			nn.NewConv2D(b.Name+".conv2", b.OutC, b.OutC, b.Kernel, b.kw(), 1, (b.Kernel-1)/2, rng).NoBias(),
			nn.NewBatchNorm2D(b.Name+".bn2", b.OutC),
		)
		var shortcut *nn.Sequential
		if b.Stride != 1 || inC != b.OutC {
			shortcut = nn.NewSequential(b.Name+".short",
				nn.NewConv2D(b.Name+".proj", inC, b.OutC, 1, 1, b.Stride, 0, rng).NoBias(),
				nn.NewBatchNorm2D(b.Name+".projbn", b.OutC),
			)
		}
		layers = append(layers, nn.NewResidual(b.Name, body, shortcut))
	} else {
		padH := (b.Kernel - 1) / 2
		convLayer := nn.NewConv2D(b.Name+".conv", inC, b.OutC, b.Kernel, b.kw(), b.Stride, padH, rng).NoBias()
		// Asymmetric padding for 1-D kernels: pad only along H.
		convLayer.Geom.PadW = (b.kw() - 1) / 2
		layers = append(layers,
			convLayer,
			nn.NewBatchNorm2D(b.Name+".bn", b.OutC),
			nn.NewReLU(b.Name+".relu"),
		)
	}
	if b.Pool > 0 {
		if b.poolW() == b.Pool {
			layers = append(layers, nn.NewMaxPool2D(b.Name+".pool", b.Pool, b.Pool))
		} else {
			layers = append(layers, nn.NewMaxPoolRect(b.Name+".pool", b.Pool, b.poolW(), b.Pool, b.poolW()))
		}
	}
	return layers
}

// appendHead attaches the task head to back.
func appendHead(back *nn.Sequential, cfg Config, inC int, rng *rand.Rand) {
	dh, dw := cfg.TotalDownsample()
	oh, ow := cfg.InputH/dh, cfg.InputW/dw
	switch cfg.Head {
	case HeadFC:
		back.Append(
			nn.NewFlatten(cfg.Name+".flatten"),
			nn.NewLinear(cfg.Name+".fc1", inC*oh*ow, cfg.HiddenFC, rng),
		)
		back.Append(reluFC(cfg.Name), nn.NewLinear(cfg.Name+".fc2", cfg.HiddenFC, cfg.Classes, rng))
	case HeadGAP:
		back.Append(
			nn.NewGlobalAvgPool2D(cfg.Name+".gap"),
			nn.NewLinear(cfg.Name+".fc", inC, cfg.Classes, rng),
		)
	case HeadSegment:
		hidden := cfg.HiddenFC
		if hidden == 0 {
			hidden = inC
		}
		back.Append(
			nn.NewConv2D(cfg.Name+".score1", inC, hidden, 1, 1, 1, 0, rng),
			nn.NewReLU(cfg.Name+".scorerelu"),
			nn.NewConv2D(cfg.Name+".score2", hidden, cfg.Classes, 1, 1, 1, 0, rng),
			nn.NewUpsample2D(cfg.Name+".up", dh),
		)
	case HeadCells:
		back.Append(nn.NewConv2D(cfg.Name+".cells", inC, cfg.Classes, 1, 1, 1, 0, rng))
	default:
		panic(fmt.Sprintf("models: unknown head %d", cfg.Head))
	}
}

func reluFC(name string) nn.Layer { return nn.NewReLU(name + ".fcrelu") }

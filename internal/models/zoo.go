package models

// Full-scale architecture configs. These are never instantiated as
// trainable networks (VGG16 alone has 138M parameters); they feed the
// analytic performance model that reproduces the paper's system-side
// numbers. The separable prefix lengths (7/7/4/12/12) come from the
// paper's Figure 10 caption.

// conv is a shorthand BlockSpec constructor.
func conv(name string, outC, k, stride, pool int) BlockSpec {
	return BlockSpec{Name: name, OutC: outC, Kernel: k, Stride: stride, Pool: pool}
}

// res is a residual-unit shorthand.
func res(name string, outC, stride int) BlockSpec {
	return BlockSpec{Name: name, OutC: outC, Kernel: 3, Stride: stride, Residual: true}
}

// VGG16 is the 13-conv-block ImageNet VGG16 (Simonyan & Zisserman).
func VGG16() Config {
	return Config{
		Name: "VGG16", Task: TaskClassify,
		InputC: 3, InputH: 224, InputW: 224, Classes: 1000,
		Blocks: []BlockSpec{
			conv("L1", 64, 3, 1, 0), conv("L2", 64, 3, 1, 2),
			conv("L3", 128, 3, 1, 0), conv("L4", 128, 3, 1, 2),
			conv("L5", 256, 3, 1, 0), conv("L6", 256, 3, 1, 0), conv("L7", 256, 3, 1, 2),
			conv("L8", 512, 3, 1, 0), conv("L9", 512, 3, 1, 0), conv("L10", 512, 3, 1, 2),
			conv("L11", 512, 3, 1, 0), conv("L12", 512, 3, 1, 0), conv("L13", 512, 3, 1, 2),
		},
		Separable: 7, SystemSeparable: 12,
		Head: HeadFC, HiddenFC: 4096,
	}
}

// ResNet18 is the 18-layer residual network used in Figure 3.
func ResNet18() Config {
	return Config{
		Name: "ResNet18", Task: TaskClassify,
		InputC: 3, InputH: 224, InputW: 224, Classes: 1000,
		Blocks: []BlockSpec{
			conv("stem", 64, 7, 2, 2),
			res("L1", 64, 1), res("L2", 64, 1),
			res("L3", 128, 2), res("L4", 128, 1),
			res("L5", 256, 2), res("L6", 256, 1),
			res("L7", 512, 2), res("L8", 512, 1),
		},
		Separable: 5,
		Head:      HeadGAP,
	}
}

// ResNet34 is the 34-layer residual network (paper: 12 separable blocks).
func ResNet34() Config {
	blocks := []BlockSpec{conv("stem", 64, 7, 2, 2)}
	stage := func(prefix string, n, c, firstStride int) {
		for i := 0; i < n; i++ {
			s := 1
			if i == 0 {
				s = firstStride
			}
			blocks = append(blocks, res(prefix+string(rune('a'+i)), c, s))
		}
	}
	stage("L1", 3, 64, 1)
	stage("L2", 4, 128, 2)
	stage("L3", 6, 256, 2)
	stage("L4", 3, 512, 2)
	return Config{
		Name: "ResNet34", Task: TaskClassify,
		InputC: 3, InputH: 224, InputW: 224, Classes: 1000,
		Blocks:          blocks,
		Separable:       12,
		SystemSeparable: 17,
		Head:            HeadGAP,
	}
}

// YOLO is a Darknet-19 style detector backbone (YOLO9000) on 416×416
// VOC input; the paper applies FDSP to its first 12 blocks.
func YOLO() Config {
	return Config{
		Name: "YOLO", Task: TaskDetect,
		InputC: 3, InputH: 416, InputW: 416, Classes: 20,
		Blocks: []BlockSpec{
			conv("L1", 32, 3, 1, 2),
			conv("L2", 64, 3, 1, 2),
			conv("L3", 128, 3, 1, 0), BlockSpec{Name: "L4", OutC: 64, Kernel: 1, Stride: 1},
			conv("L5", 128, 3, 1, 2),
			conv("L6", 256, 3, 1, 0), BlockSpec{Name: "L7", OutC: 128, Kernel: 1, Stride: 1},
			conv("L8", 256, 3, 1, 2),
			conv("L9", 512, 3, 1, 0), BlockSpec{Name: "L10", OutC: 256, Kernel: 1, Stride: 1},
			conv("L11", 512, 3, 1, 0), BlockSpec{Name: "L12", OutC: 256, Kernel: 1, Stride: 1},
			conv("L13", 512, 3, 1, 2),
			conv("L14", 1024, 3, 1, 0), BlockSpec{Name: "L15", OutC: 512, Kernel: 1, Stride: 1},
			conv("L16", 1024, 3, 1, 0), BlockSpec{Name: "L17", OutC: 512, Kernel: 1, Stride: 1},
			conv("L18", 1024, 3, 1, 0),
		},
		Separable: 12, SystemSeparable: 18,
		Head: HeadCells,
	}
}

// FCN is the fully convolutional segmentation network evaluated on
// CamVid (11 classes + void). Its block list is chosen so the seventh
// (last separable) block outputs 512×28×28 — Section 4's example, whose
// transmission volume is 2.7× the input image.
func FCN() Config {
	return Config{
		Name: "FCN", Task: TaskSegment,
		InputC: 3, InputH: 224, InputW: 224, Classes: 12,
		Blocks: []BlockSpec{
			conv("L1", 64, 3, 1, 0), conv("L2", 64, 3, 1, 2),
			conv("L3", 128, 3, 1, 2),
			conv("L4", 256, 3, 1, 0), conv("L5", 256, 3, 1, 2),
			conv("L6", 512, 3, 1, 0), conv("L7", 512, 3, 1, 0),
			conv("L8", 512, 3, 1, 2),
			conv("L9", 512, 3, 1, 0), conv("L10", 512, 3, 1, 0),
		},
		Separable: 7, SystemSeparable: 10,
		Head: HeadSegment, HiddenFC: 1024,
	}
}

// CharCNN is the character-level text classifier of Zhang et al. (2015):
// 1-D convolutions over a 70-symbol alphabet and 1014-character frames.
// The sequence runs along H with W fixed to 1.
func CharCNN() Config {
	char := func(name string, k, pool int) BlockSpec {
		return BlockSpec{Name: name, OutC: 256, Kernel: k, KernelW: 1, Stride: 1, Pool: pool, PoolW: 1}
	}
	return Config{
		Name: "CharCNN", Task: TaskText,
		InputC: 70, InputH: 1014, InputW: 1, Classes: 4,
		Blocks: []BlockSpec{
			char("L1", 7, 3),
			char("L2", 7, 3),
			char("L3", 3, 0),
			char("L4", 3, 0),
			char("L5", 3, 0),
			char("L6", 3, 3),
		},
		Separable: 4, SystemSeparable: 5,
		Head: HeadFC, HiddenFC: 1024,
	}
}

// AlexNet is the classic Krizhevsky et al. network the paper's
// Figure 2(d) analyses (early layers detect edges/textures, late layers
// shapes/objects). Its overlapping 3×3-stride-2 pools are approximated
// by 2×2-stride-2 pools, which the profile treats identically up to one
// output row.
func AlexNet() Config {
	return Config{
		Name: "AlexNet", Task: TaskClassify,
		InputC: 3, InputH: 224, InputW: 224, Classes: 1000,
		Blocks: []BlockSpec{
			{Name: "L1", OutC: 96, Kernel: 11, Stride: 4, Pool: 2},
			{Name: "L2", OutC: 256, Kernel: 5, Stride: 1, Pool: 2},
			conv("L3", 384, 3, 1, 0),
			conv("L4", 384, 3, 1, 0),
			conv("L5", 256, 3, 1, 2),
		},
		Separable: 2,
		Head:      HeadFC, HiddenFC: 4096,
	}
}

// FullScale returns the five evaluation models plus ResNet18 (used only
// in the workload-characteristics figure).
func FullScale() []Config {
	return []Config{VGG16(), ResNet34(), YOLO(), FCN(), CharCNN()}
}

// --- Sim-scale configs -------------------------------------------------
//
// These keep each architecture's layer-block *structure* (pool placement,
// channel growth, residual shortcuts, 1-D text geometry, separable prefix
// proportion) while shrinking channels and resolution enough that the
// progressive-retraining experiments run in seconds. Input sizes are
// chosen so every evaluated grid divides them and pooling receptive
// fields stay inside tiles (the paper's own constraint).

// VGGSim is the scaled-down VGG-style classifier.
func VGGSim() Config {
	return Config{
		Name: "VGG16-sim", Task: TaskClassify,
		InputC: 3, InputH: 32, InputW: 32, Classes: 8,
		Blocks: []BlockSpec{
			conv("L1", 12, 3, 1, 0), conv("L2", 12, 3, 1, 2),
			conv("L3", 16, 3, 1, 0), conv("L4", 16, 3, 1, 2),
			conv("L5", 24, 3, 1, 0), conv("L6", 24, 3, 1, 0), conv("L7", 24, 3, 1, 0),
			conv("L8", 32, 3, 1, 2), conv("L9", 32, 3, 1, 0),
		},
		Separable: 7,
		Head:      HeadFC, HiddenFC: 48,
	}
}

// ResNetSim is the scaled-down residual classifier.
func ResNetSim() Config {
	return Config{
		Name: "ResNet34-sim", Task: TaskClassify,
		InputC: 3, InputH: 32, InputW: 32, Classes: 8,
		Blocks: []BlockSpec{
			conv("stem", 12, 3, 1, 0),
			res("L1", 12, 1), res("L2", 12, 1),
			res("L3", 24, 2), res("L4", 24, 1),
			res("L5", 32, 2),
		},
		Separable: 3,
		Head:      HeadGAP,
	}
}

// YOLOSim is the scaled-down detection proxy (per-cell classification on
// an 8×8 output grid).
func YOLOSim() Config {
	return Config{
		Name: "YOLO-sim", Task: TaskDetect,
		InputC: 3, InputH: 32, InputW: 32, Classes: 6,
		Blocks: []BlockSpec{
			conv("L1", 12, 3, 1, 2),
			conv("L2", 16, 3, 1, 2),
			conv("L3", 24, 3, 1, 0),
			BlockSpec{Name: "L4", OutC: 16, Kernel: 1, Stride: 1},
			conv("L5", 24, 3, 1, 0),
		},
		Separable: 4,
		Head:      HeadCells,
	}
}

// FCNSim is the scaled-down segmentation network.
func FCNSim() Config {
	return Config{
		Name: "FCN-sim", Task: TaskSegment,
		InputC: 3, InputH: 32, InputW: 32, Classes: 5,
		Blocks: []BlockSpec{
			conv("L1", 12, 3, 1, 0), conv("L2", 12, 3, 1, 2),
			conv("L3", 16, 3, 1, 0), conv("L4", 16, 3, 1, 2),
			conv("L5", 24, 3, 1, 0), conv("L6", 24, 3, 1, 0), conv("L7", 24, 3, 1, 0),
		},
		Separable: 7,
		Head:      HeadSegment, HiddenFC: 32,
	}
}

// CharCNNSim is the scaled-down character-level text classifier.
func CharCNNSim() Config {
	char := func(name string, c, k, pool int) BlockSpec {
		return BlockSpec{Name: name, OutC: c, Kernel: k, KernelW: 1, Stride: 1, Pool: pool, PoolW: 1}
	}
	return Config{
		Name: "CharCNN-sim", Task: TaskText,
		InputC: 16, InputH: 64, InputW: 1, Classes: 4,
		Blocks: []BlockSpec{
			char("L1", 16, 5, 2),
			char("L2", 24, 3, 2),
			char("L3", 32, 3, 0),
			char("L4", 32, 3, 0),
		},
		Separable: 4,
		Head:      HeadFC, HiddenFC: 32,
	}
}

// SimScale returns the five sim-scale models in the paper's Figure 10
// order.
func SimScale() []Config {
	return []Config{VGGSim(), FCNSim(), CharCNNSim(), ResNetSim(), YOLOSim()}
}

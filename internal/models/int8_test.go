package models

import (
	"math"
	"math/rand"
	"testing"

	"adcnn/internal/quant"
	"adcnn/internal/tensor"
)

// TestModelQuantizeInt8 quantizes a full zoo model, checks the quantized
// forward stays close to f32, and that ClearInt8 restores bit-exact f32.
func TestModelQuantizeInt8(t *testing.T) {
	m, err := Build(VGGSim(), Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 3, 32, 32)
	x.RandU(rand.New(rand.NewSource(7)), -1, 1)
	before := m.Net.Forward(x, false).Clone()

	n, err := m.QuantizeInt8()
	if err != nil {
		t.Fatal(err)
	}
	// VGGSim: 9 convs + 2 FC head layers.
	if n != 11 {
		t.Fatalf("quantized %d layers, want 11", n)
	}
	if !m.Int8InputOK() {
		t.Fatal("VGGSim front opens with a plain conv; Int8InputOK must be true")
	}
	after := m.Net.Forward(x, false)
	var diff float64
	for i := range before.Data {
		diff += math.Abs(float64(after.Data[i] - before.Data[i]))
	}
	if diff == 0 {
		t.Fatal("int8 forward identical to f32 — quantized path likely not taken")
	}

	m.ClearInt8()
	if m.Int8InputOK() {
		t.Fatal("Int8InputOK true after ClearInt8")
	}
	restored := m.Net.Forward(x, false)
	for i := range before.Data {
		if restored.Data[i] != before.Data[i] {
			t.Fatalf("ClearInt8 did not restore f32 execution at %d", i)
		}
	}
}

// TestForwardFrontLevels: feeding pre-quantized input levels through the
// models-level entry must match running the int8 Front on the dequantized
// f32 input within the input quantization error propagated through the
// entry conv (both paths share the int8 engine past layer 1, so the only
// divergence is entry-conv input quantization — bit-exact here because
// the f32 path re-quantizes to the very same levels).
func TestForwardFrontLevels(t *testing.T) {
	m, err := Build(VGGSim(), Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.QuantizeInt8(); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 3, 32, 32)
	x.RandU(rand.New(rand.NewSource(11)), -1, 1)

	mn, mx := tensor.MinMax(x.Data)
	af, err := quant.AffineFor(mn, mx)
	if err != nil {
		t.Fatal(err)
	}
	levels := make([]uint8, x.Len())
	tensor.QuantizeAffineSlice(levels, x.Data, af.InvScale(), af.Zero)

	got, ok := m.ForwardFrontLevels(levels, 3, 32, 32, af)
	if !ok {
		t.Fatal("ForwardFrontLevels refused a plain-conv-entry model")
	}
	if _, ok := m.ForwardFrontLevels(levels, 4, 32, 32, af); ok {
		t.Fatal("ForwardFrontLevels accepted a channel-count mismatch")
	}

	// Oracle: dequantize the levels and run the regular (int8-enabled)
	// Front. Its entry conv re-quantizes the dequantized input with the
	// same affine extents, reproducing the same levels, so the two paths
	// should agree almost exactly; the dynamic affine recomputed from the
	// dequantized tensor may differ by one grid step, hence the small
	// tolerance.
	xd := tensor.New(1, 3, 32, 32)
	tensor.DequantizeAffineSlice(xd.Data, levels, af.Scale, af.Zero)
	want := m.Front.Forward(xd, false)
	if got.Len() != want.Len() {
		t.Fatalf("shape mismatch: %v vs %v", got.Shape, want.Shape)
	}
	for i := range got.Data {
		if d := math.Abs(float64(got.Data[i] - want.Data[i])); d > 2e-2 {
			t.Fatalf("levels front diverges at %d: %g vs %g", i, got.Data[i], want.Data[i])
		}
	}
}

// TestForwardFrontLevelsResidualEntry: residual-entry models cannot take
// the levels fast path (ResNetSim opens with a plain stem conv, so build
// a front that starts at a residual block instead).
func TestForwardFrontLevelsResidualEntry(t *testing.T) {
	cfg := ResNetSim()
	// Drop the stem so the first separable block is residual.
	cfg.Blocks = cfg.Blocks[1:]
	cfg.InputC = 12
	cfg.Separable = 2
	m, err := Build(cfg, Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.QuantizeInt8(); err != nil {
		t.Fatal(err)
	}
	if m.Int8InputOK() {
		t.Fatal("residual-entry front must not report Int8InputOK")
	}
	af := quant.Affine{Scale: 1, Zero: 0}
	if _, ok := m.ForwardFrontLevels(make([]uint8, 12*32*32), 12, 32, 32, af); ok {
		t.Fatal("ForwardFrontLevels must refuse a residual-entry front")
	}
}

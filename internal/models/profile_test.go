package models

import (
	"math/rand"
	"testing"

	"adcnn/internal/tensor"
)

func TestProfileAggregatesConsistent(t *testing.T) {
	for _, cfg := range append(FullScale(), AlexNet(), ResNet18()) {
		total := cfg.TotalFLOPs()
		front := cfg.FrontFLOPs()
		back := cfg.BackFLOPs()
		if front+back != total {
			t.Errorf("%s: front %d + back %d != total %d", cfg.Name, front, back, total)
		}
		if front <= 0 || back <= 0 {
			t.Errorf("%s: degenerate split %d/%d", cfg.Name, front, back)
		}
		if cfg.FrontMemBytes()+cfg.BackMemBytes() != cfg.TotalMemBytes() {
			t.Errorf("%s: memory aggregates inconsistent", cfg.Name)
		}
		if cfg.FrontWeightBytes() <= 0 {
			t.Errorf("%s: front weights must be positive", cfg.Name)
		}
		if cfg.FrontOutBytes() <= 0 {
			t.Errorf("%s: front output must be positive", cfg.Name)
		}
	}
}

func TestSystemizedDeepensPrefix(t *testing.T) {
	cfg := VGG16()
	sys := cfg.Systemized()
	if sys.Separable != 12 {
		t.Fatalf("systemized separable = %d, want 12", sys.Separable)
	}
	if cfg.Separable != 7 {
		t.Fatal("Systemized must not mutate the receiver")
	}
	// A config without SystemSeparable stays unchanged.
	plain := VGGSim()
	if plain.Systemized().Separable != plain.Separable {
		t.Fatal("zero SystemSeparable must be a no-op")
	}
	// The deeper prefix shifts work from Back to Front.
	if sys.FrontFLOPs() <= cfg.FrontFLOPs() {
		t.Fatal("systemized front must carry more work")
	}
}

func TestTaskStrings(t *testing.T) {
	for task, want := range map[Task]string{
		TaskClassify: "classify", TaskSegment: "segment",
		TaskDetect: "detect", TaskText: "text", Task(99): "task(99)",
	} {
		if task.String() != want {
			t.Fatalf("%d.String() = %q", int(task), task.String())
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	good := VGGSim()
	bad := good
	bad.Blocks = nil
	if bad.Validate() == nil {
		t.Fatal("no blocks must fail")
	}
	bad = good
	bad.Separable = 99
	if bad.Validate() == nil {
		t.Fatal("out-of-range separable must fail")
	}
	bad = good
	bad.Classes = 1
	if bad.Validate() == nil {
		t.Fatal("single class must fail")
	}
}

func TestParamCountAndSecondaryMetric(t *testing.T) {
	m, err := Build(FCNSim(), Options{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.ParamCount() <= 0 {
		t.Fatal("param count must be positive")
	}
	rng := rand.New(rand.NewSource(6))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	y := m.Forward(x, false)
	labels := make([]int, 32*32)
	iou := m.SecondaryMetric(y, labels)
	if iou < 0 || iou > 1 {
		t.Fatalf("FCN mean IoU = %v", iou)
	}
	cls, err := Build(VGGSim(), Options{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cls.SecondaryMetric(nil, nil) != -1 {
		t.Fatal("classification has no secondary metric")
	}
}

func TestHeadProfileVariants(t *testing.T) {
	// Every head kind produces positive FLOPs and a sane output shape.
	for _, cfg := range []Config{VGG16(), ResNet34(), YOLO(), FCN()} {
		h := cfg.HeadProfile()
		if h.FLOPs <= 0 || h.OutC <= 0 {
			t.Errorf("%s head profile degenerate: %+v", cfg.Name, h)
		}
	}
	// Segmentation head restores input resolution.
	fh := FCN().HeadProfile()
	if fh.OutH != 224 || fh.OutW != 224 {
		t.Fatalf("FCN head output %dx%d, want input resolution", fh.OutH, fh.OutW)
	}
	// GAP head collapses to a vector.
	rh := ResNet34().HeadProfile()
	if rh.OutH != 1 || rh.OutW != 1 || rh.OutC != 1000 {
		t.Fatalf("ResNet head output %+v", rh)
	}
}

func TestBlockSpecDownsample(t *testing.T) {
	b := BlockSpec{Kernel: 3, Stride: 2, Pool: 2}
	dh, dw := b.Downsample()
	if dh != 4 || dw != 4 {
		t.Fatalf("downsample %d,%d want 4,4", dh, dw)
	}
	b1d := BlockSpec{Kernel: 3, KernelW: 1, Stride: 1, Pool: 3, PoolW: 1}
	dh, dw = b1d.Downsample()
	if dh != 3 || dw != 1 {
		t.Fatalf("1-D downsample %d,%d want 3,1", dh, dw)
	}
}

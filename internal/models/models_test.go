package models

import (
	"math/rand"
	"testing"

	"adcnn/internal/fdsp"
	"adcnn/internal/tensor"
)

func TestFullScaleConfigsValidate(t *testing.T) {
	for _, cfg := range append(FullScale(), ResNet18()) {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestSimScaleConfigsValidate(t *testing.T) {
	for _, cfg := range SimScale() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestVGG16ProfileMatchesKnownNumbers(t *testing.T) {
	cfg := VGG16()
	prof := cfg.Profile()
	if len(prof) != 13 {
		t.Fatalf("VGG16 has %d blocks, want 13", len(prof))
	}
	// First conv: 2*3*3*3*64*224*224 ≈ 173 MFLOPs.
	want := int64(2 * 3 * 3 * 3 * 64 * 224 * 224)
	if prof[0].FLOPs < want || prof[0].FLOPs > want+want/10 {
		t.Fatalf("L1 FLOPs = %d, want ≈ %d", prof[0].FLOPs, want)
	}
	// Total VGG16 conv FLOPs ≈ 30.7 GFLOPs (15.3 GMACs).
	total := cfg.TotalFLOPs()
	if total < 29e9 || total > 33e9 {
		t.Fatalf("VGG16 total FLOPs = %.2fe9, want ~30.7e9", float64(total)/1e9)
	}
	// Final feature map 512×7×7.
	lastBlock := prof[12]
	if lastBlock.OutC != 512 || lastBlock.OutH != 7 || lastBlock.OutW != 7 {
		t.Fatalf("final fmap %dx%dx%d", lastBlock.OutC, lastBlock.OutH, lastBlock.OutW)
	}
}

func TestIfmapPeaksEarlyLikeFigure3(t *testing.T) {
	// Figure 3: ifmap size and per-block time grow after block 1 and later
	// shrink; early blocks dominate.
	for _, cfg := range []Config{VGG16(), ResNet18(), FCN()} {
		prof := cfg.Profile()
		peak, peakIdx := int64(0), 0
		for i, p := range prof {
			if p.IfmapBytes > peak {
				peak, peakIdx = p.IfmapBytes, i
			}
		}
		if peakIdx > len(prof)/2 {
			t.Errorf("%s: ifmap peak at block %d of %d — should be in the first half",
				cfg.Name, peakIdx, len(prof))
		}
		if prof[len(prof)-1].IfmapBytes >= peak {
			t.Errorf("%s: last ifmap not smaller than the peak", cfg.Name)
		}
	}
}

func TestVGG16EarlyBlocksDominateCompute(t *testing.T) {
	// Paper: first 4 blocks of VGG16 account for 41.4% of latency.
	cfg := VGG16()
	prof := cfg.Profile()
	var first4, total int64
	for i, p := range prof {
		total += p.FLOPs
		if i < 4 {
			first4 += p.FLOPs
		}
	}
	total += cfg.HeadProfile().FLOPs
	share := float64(first4) / float64(total)
	if share < 0.30 || share > 0.55 {
		t.Fatalf("first-4-block share = %.3f, paper reports ≈ 0.414", share)
	}
}

func TestChannelPartitionOverheadEstimate(t *testing.T) {
	// Section 3.1: VGG16 block-1 ofmap is 224×224×64; half of it is
	// 51.38 Mbits — 11× the input image.
	cfg := VGG16()
	of := cfg.Profile()[0].OfmapBytes // bytes, float32
	bits := of * 8 / 2
	if bits < 50e6 || bits > 53e6 {
		t.Fatalf("half ofmap = %.2f Mbits, paper says 51.38", float64(bits)/1e6)
	}
	ratio := float64(bits) / float64(cfg.InputBytes()*8)
	if ratio < 9 || ratio > 12 {
		t.Fatalf("ratio to input = %.1f, paper says ≈ 11", ratio)
	}
}

func TestFCNBoundaryTransmissionMatchesPaper(t *testing.T) {
	// Section 4: FCN layer-7 ofmap is 28×28×512 and its transmission
	// volume is 2.7× the input image. (The paper also quotes "25.7 Mbits",
	// but 28·28·512·32 = 12.8 Mbits, and only 12.8 is consistent with the
	// 2.7× ratio it states; we match the consistent pair.)
	cfg := FCN()
	shape := cfg.Profile()[cfg.Separable-1]
	if shape.OutC != 512 || shape.OutH != 28 || shape.OutW != 28 {
		t.Fatalf("front out %dx%dx%d, want 512x28x28", shape.OutC, shape.OutH, shape.OutW)
	}
	ratio := float64(cfg.FrontOutBytes()) / float64(cfg.InputBytes())
	if ratio < 2.4 || ratio > 3.0 {
		t.Fatalf("transmission ratio = %.2f, paper says 2.7", ratio)
	}
}

func TestAlexNetProfile(t *testing.T) {
	cfg := AlexNet()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// AlexNet is ≈ 0.7 GMACs = 1.4 GFLOPs of conv plus ≈ 0.12 GFLOPs of
	// FC; our pool-2 approximation keeps it in that ballpark.
	total := cfg.TotalFLOPs()
	if total < 1.0e9 || total > 4e9 {
		t.Fatalf("AlexNet total = %.2fe9 FLOPs, want ~1.5-3e9", float64(total)/1e9)
	}
	// The giant first-FC layer dominates the weights (paper-era trivia
	// that the head profile must reflect).
	if cfg.HeadProfile().WeightBytes < 100e6 {
		t.Fatalf("AlexNet FC weights = %d bytes, expected > 100 MB", cfg.HeadProfile().WeightBytes)
	}
}

func TestResNet34BlockCount(t *testing.T) {
	cfg := ResNet34()
	// stem + 3+4+6+3 residual units = 17 blocks.
	if len(cfg.Blocks) != 17 {
		t.Fatalf("ResNet34 has %d blocks, want 17", len(cfg.Blocks))
	}
	if cfg.Separable != 12 {
		t.Fatalf("ResNet34 separable = %d, want 12 (paper)", cfg.Separable)
	}
}

func TestCharCNNGeometryIs1D(t *testing.T) {
	cfg := CharCNN()
	if cfg.InputW != 1 {
		t.Fatal("CharCNN width must be 1")
	}
	prof := cfg.Profile()
	for _, p := range prof {
		if p.OutW != 1 {
			t.Fatalf("block %s widened the 1-D sequence: %+v", p.Name, p)
		}
	}
}

func TestBuildAllSimModelsForward(t *testing.T) {
	for _, cfg := range SimScale() {
		m, err := Build(cfg, Options{}, 1)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		x := tensor.New(2, cfg.InputC, cfg.InputH, cfg.InputW)
		rng := rand.New(rand.NewSource(2))
		x.RandN(rng, 1)
		y := m.Forward(x, false)
		switch cfg.Task {
		case TaskClassify, TaskText:
			if y.Rank() != 2 || y.Shape[1] != cfg.Classes {
				t.Fatalf("%s: logits %v", cfg.Name, y.Shape)
			}
		case TaskSegment:
			if y.Shape[1] != cfg.Classes || y.Shape[2] != cfg.InputH || y.Shape[3] != cfg.InputW {
				t.Fatalf("%s: seg logits %v", cfg.Name, y.Shape)
			}
		case TaskDetect:
			if y.Shape[1] != cfg.Classes {
				t.Fatalf("%s: cell logits %v", cfg.Name, y.Shape)
			}
		}
	}
}

func TestBuildPartitionedMatchesUnpartitionedShapes(t *testing.T) {
	for _, cfg := range SimScale() {
		grid := fdsp.Grid{Rows: 2, Cols: 2}
		if cfg.Task == TaskText {
			grid = fdsp.Grid{Rows: 2, Cols: 1}
		}
		plain, err := Build(cfg, Options{}, 3)
		if err != nil {
			t.Fatal(err)
		}
		part, err := Build(cfg, Options{Grid: grid}, 3)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		x := tensor.New(1, cfg.InputC, cfg.InputH, cfg.InputW)
		rng := rand.New(rand.NewSource(4))
		x.RandN(rng, 1)
		y1 := plain.Forward(x, false)
		y2 := part.Forward(x, false)
		if !y1.SameShape(y2) {
			t.Fatalf("%s: partitioned output %v vs %v", cfg.Name, y2.Shape, y1.Shape)
		}
	}
}

func TestBuildWithSameSeedIsDeterministic(t *testing.T) {
	cfg := VGGSim()
	a, _ := Build(cfg, Options{}, 7)
	b, _ := Build(cfg, Options{}, 7)
	x := tensor.New(1, 3, 32, 32)
	rng := rand.New(rand.NewSource(5))
	x.RandN(rng, 1)
	if !a.Forward(x, false).Equal(b.Forward(x, false), 0) {
		t.Fatal("same seed must give identical models")
	}
}

func TestBuildRejectsQuantWithoutClip(t *testing.T) {
	if _, err := Build(VGGSim(), Options{QuantBits: 4}, 1); err == nil {
		t.Fatal("quantization without clipped ReLU must be rejected")
	}
}

func TestBuildRejectsBadGrid(t *testing.T) {
	if _, err := Build(VGGSim(), Options{Grid: fdsp.Grid{Rows: 5, Cols: 5}}, 1); err == nil {
		t.Fatal("32x32 is not divisible by 5x5")
	}
}

func TestBoundaryOpsPresent(t *testing.T) {
	m, err := Build(VGGSim(), Options{
		Grid:   fdsp.Grid{Rows: 4, Cols: 4},
		ClipLo: 0.1, ClipHi: 2.1, QuantBits: 4,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Boundary.Layers) != 2 {
		t.Fatalf("boundary has %d layers, want clip+quant", len(m.Boundary.Layers))
	}
}

func TestCopyWeightsAcrossOptions(t *testing.T) {
	cfg := VGGSim()
	ori, err := Build(cfg, Options{}, 11)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Build(cfg, Options{
		Grid:   fdsp.Grid{Rows: 2, Cols: 2},
		ClipLo: 0, ClipHi: 4,
	}, 22)
	if err != nil {
		t.Fatal(err)
	}
	if err := mod.CopyWeightsFrom(ori); err != nil {
		t.Fatal(err)
	}
	// After copying, the FDSP model on a 1x1-equivalent should track the
	// original closely: compare Front outputs directly on one tile.
	x := tensor.New(1, 3, 16, 16)
	rng := rand.New(rand.NewSource(6))
	x.RandN(rng, 1)
	y1 := ori.Front.Forward(x, false)
	y2 := mod.Front.Forward(x, false)
	if !y1.Equal(y2, 1e-6) {
		t.Fatal("copied Front weights must reproduce source outputs")
	}
}

func TestFrontOutputShape(t *testing.T) {
	m, _ := Build(VGGSim(), Options{}, 1)
	s := m.FrontOutputShape()
	// VGGSim front: 7 blocks, pools at L2 and L4 → 32/4 = 8 spatial, 24 ch.
	if s[0] != 24 || s[1] != 8 || s[2] != 8 {
		t.Fatalf("front output shape %v", s)
	}
	// The analytic FrontOutBytes must agree.
	if VGGSim().FrontOutBytes() != int64(4*24*8*8) {
		t.Fatalf("FrontOutBytes = %d", VGGSim().FrontOutBytes())
	}
}

func TestLossAndMetricPerTask(t *testing.T) {
	for _, cfg := range SimScale() {
		m, err := Build(cfg, Options{}, 9)
		if err != nil {
			t.Fatal(err)
		}
		x := tensor.New(1, cfg.InputC, cfg.InputH, cfg.InputW)
		rng := rand.New(rand.NewSource(10))
		x.RandN(rng, 1)
		y := m.Forward(x, true)
		var labels []int
		switch cfg.Task {
		case TaskClassify, TaskText:
			labels = []int{0}
		case TaskSegment:
			labels = make([]int, cfg.InputH*cfg.InputW)
		case TaskDetect:
			labels = make([]int, y.Shape[2]*y.Shape[3])
		}
		loss, grad := m.Loss(y, labels)
		if loss <= 0 {
			t.Fatalf("%s: loss %v", cfg.Name, loss)
		}
		if !grad.SameShape(y) {
			t.Fatalf("%s: grad shape %v vs %v", cfg.Name, grad.Shape, y.Shape)
		}
		metric := m.Metric(y, labels)
		if metric < 0 || metric > 1 {
			t.Fatalf("%s: metric %v", cfg.Name, metric)
		}
		// gradient flows end to end
		m.Net.Backward(grad)
		var nz bool
		for _, p := range m.Net.Params() {
			for _, v := range p.Grad.Data {
				if v != 0 {
					nz = true
					break
				}
			}
		}
		if !nz {
			t.Fatalf("%s: no parameter received gradient", cfg.Name)
		}
	}
}

func TestHaloGeomsResNet(t *testing.T) {
	cfg := ResNetSim()
	g := cfg.HaloGeoms(3) // stem + 2 residual blocks
	// stem conv + (conv,conv) ×2 = 5 stages.
	if len(g) != 5 {
		t.Fatalf("HaloGeoms = %v", g)
	}
}

package models

// Int8 operating mode for a built model: per-channel weight quantization
// across all Front and Back blocks, plus the levels-entry fast path the
// Conv worker uses to feed decoded wire payloads straight into the first
// convolution's int8 activation buffer.

import (
	"adcnn/internal/nn"
	"adcnn/internal/quant"
	"adcnn/internal/tensor"
)

// QuantizeInt8 snapshots int8 weights on every Conv2D and Linear in the
// model, enabling quantized inference. It walks Front, Boundary and Back
// directly (not Net: the FDSP wrapper is opaque to the layer walker) —
// the containers share layer objects, so Net picks up the snapshots too.
// Call after loading trained parameters; re-call if parameters change.
// Returns the number of quantized layers. On error the model is rolled
// back to pure f32 execution.
func (m *Model) QuantizeInt8() (int, error) {
	total := 0
	for _, root := range []*nn.Sequential{m.Front, m.Boundary, m.Back} {
		n, err := nn.QuantizeInt8(root)
		if err != nil {
			m.ClearInt8()
			return 0, err
		}
		total += n
	}
	return total, nil
}

// ClearInt8 drops every int8 snapshot, restoring f32 inference.
func (m *Model) ClearInt8() {
	nn.ClearInt8(m.Front)
	nn.ClearInt8(m.Boundary)
	nn.ClearInt8(m.Back)
}

// frontEntryConv returns the first convolution of the first Front block
// when the block opens with a plain Conv2D. Residual-entry fronts (the
// projection shortcut consumes the same input as the body) return false:
// those models still run int8 inside each conv but cannot consume a
// quantized input tile directly.
func (m *Model) frontEntryConv() (*nn.Conv2D, bool) {
	if len(m.Front.Layers) == 0 {
		return nil, false
	}
	block, ok := m.Front.Layers[0].(*nn.Sequential)
	if !ok || len(block.Layers) == 0 {
		return nil, false
	}
	conv, ok := block.Layers[0].(*nn.Conv2D)
	return conv, ok
}

// Int8InputOK reports whether the model can consume quantized input
// tiles via ForwardFrontLevels: the front must open with a plain Conv2D
// that has an int8 snapshot.
func (m *Model) Int8InputOK() bool {
	conv, ok := m.frontEntryConv()
	return ok && conv.Int8()
}

// ForwardFrontLevels runs the Front stack on a single input tile whose
// activations arrive as uint8 affine levels (a decoded quantized wire
// payload) of shape [c, h, w]. The entry convolution consumes the
// levels directly through its int8 GEMM — no dequant→f32→requant round
// trip on the boundary tensor — and the remaining Front layers continue
// in their configured mode. Returns (nil, false) when the model cannot
// take the levels entry (see Int8InputOK) or the shape does not match
// the entry convolution; the caller then dequantizes and runs the
// ordinary f32 Front.
func (m *Model) ForwardFrontLevels(levels []uint8, c, h, w int, af quant.Affine) (*tensor.Tensor, bool) {
	conv, ok := m.frontEntryConv()
	if !ok || !conv.Int8() {
		return nil, false
	}
	if c != conv.InC || h <= 0 || w <= 0 || len(levels) != c*h*w {
		return nil, false
	}
	oh, ow := conv.Geom.OutSize(h, w)
	cur := tensor.New(1, conv.OutC, oh, ow)
	conv.ForwardLevelsInto(cur, levels, h, w, af)
	block0 := m.Front.Layers[0].(*nn.Sequential)
	for _, l := range block0.Layers[1:] {
		cur = l.Forward(cur, false)
	}
	for _, l := range m.Front.Layers[1:] {
		cur = l.Forward(cur, false)
	}
	return cur, true
}

package models

import (
	"fmt"

	"adcnn/internal/fdsp"
	"adcnn/internal/nn"
	"adcnn/internal/tensor"
)

// Forward runs the full network.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return m.Net.Forward(x, train)
}

// Loss computes the task loss and gradient for a batch. labels is
// class-per-sample for classify/text, class-per-pixel for segment, and
// class-per-cell for detect.
func (m *Model) Loss(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	switch m.Cfg.Task {
	case TaskClassify, TaskText:
		return nn.SoftmaxCrossEntropy(logits, labels)
	case TaskSegment, TaskDetect:
		return nn.PixelSoftmaxCrossEntropy(logits, labels)
	}
	panic(fmt.Sprintf("models: unknown task %v", m.Cfg.Task))
}

// Metric computes the paper's headline metric for the task: top-1
// accuracy (classify/text), pixel accuracy (segment), or per-cell
// accuracy (detect, the mAP stand-in).
func (m *Model) Metric(logits *tensor.Tensor, labels []int) float64 {
	switch m.Cfg.Task {
	case TaskClassify, TaskText:
		return nn.Accuracy(logits, labels)
	case TaskSegment, TaskDetect:
		return nn.PixelAccuracy(logits, labels)
	}
	panic(fmt.Sprintf("models: unknown task %v", m.Cfg.Task))
}

// SecondaryMetric returns mean IoU for segmentation and -1 otherwise.
func (m *Model) SecondaryMetric(logits *tensor.Tensor, labels []int) float64 {
	if m.Cfg.Task == TaskSegment {
		return nn.MeanIoU(logits, labels)
	}
	return -1
}

// ParamCount returns the total number of trainable scalars.
func (m *Model) ParamCount() int {
	n := 0
	for _, p := range m.Net.Params() {
		n += p.Value.Len()
	}
	return n
}

// FrontOutputShape returns the [C,H,W] shape of the separable prefix's
// output for a full (unpartitioned) input.
func (m *Model) FrontOutputShape() []int {
	c := m.Cfg.InputC
	h, w := m.Cfg.InputH, m.Cfg.InputW
	for _, b := range m.Cfg.Blocks[:m.Cfg.Separable] {
		c = b.OutC
		dh, dw := b.Downsample()
		h /= dh
		w /= dw
	}
	return []int{c, h, w}
}

// ExchangeBlocks splits the separable prefix into per-round units for
// fdsp.RunWithExchange — the naive spatial partition of paper
// Section 3.1 that exchanges data halos instead of zero-padding. Only
// stride-1 blocks are supported (every separable block of the sim-scale
// zoo qualifies).
func (m *Model) ExchangeBlocks() ([]fdsp.ExchangeBlock, error) {
	out := make([]fdsp.ExchangeBlock, 0, m.Cfg.Separable)
	for i, spec := range m.Cfg.Blocks[:m.Cfg.Separable] {
		if spec.Stride != 1 {
			return nil, fmt.Errorf("models: block %s has stride %d; halo exchange supports stride 1",
				spec.Name, spec.Stride)
		}
		blockSeq, ok := m.Front.Layers[i].(*nn.Sequential)
		if !ok {
			return nil, fmt.Errorf("models: front block %d is not a Sequential", i)
		}
		margin := (spec.Kernel - 1) / 2
		if spec.Residual {
			margin *= 2 // two stacked convolutions
		}
		eb := fdsp.ExchangeBlock{Margin: margin}
		layers := blockSeq.Layers
		if spec.Pool > 0 {
			eb.Pool = layers[len(layers)-1]
			layers = layers[:len(layers)-1]
		}
		eb.Conv = nn.NewSequential(blockSeq.Name()+".conv", layers...)
		out = append(out, eb)
	}
	return out, nil
}

// CopyWeightsFrom transfers all shared-architecture weights from src.
// The two models must have identical Front/Back structure; boundary
// layers carry no parameters, so any combination of Options works —
// this is the warm start between progressive-retraining stages.
func (m *Model) CopyWeightsFrom(src *Model) error {
	if err := m.Front.CopyParamsFrom(src.Front); err != nil {
		return fmt.Errorf("front: %w", err)
	}
	if err := m.Back.CopyParamsFrom(src.Back); err != nil {
		return fmt.Errorf("back: %w", err)
	}
	return nil
}

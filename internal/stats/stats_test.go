package stats

import (
	"math"
	"testing"
	"time"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean must be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-sample stddev must be 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	// Sample stddev of this classic set is ≈ 2.138.
	if math.Abs(got-2.138) > 0.01 {
		t.Fatalf("stddev = %v", got)
	}
}

func TestCI95(t *testing.T) {
	mean, half := CI95([]float64{10, 10, 10, 10})
	if mean != 10 || half != 0 {
		t.Fatalf("constant data: mean %v half %v", mean, half)
	}
	_, half = CI95([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	if half <= 0 {
		t.Fatal("varying data must have positive CI width")
	}
}

func TestDurations(t *testing.T) {
	ds := Durations([]time.Duration{time.Second, 500 * time.Millisecond})
	if ds[0] != 1000 || ds[1] != 500 {
		t.Fatalf("Durations = %v", ds)
	}
}

func TestMeanMaxDuration(t *testing.T) {
	if MeanDuration(nil) != 0 || MaxDuration(nil) != 0 {
		t.Fatal("empty inputs must yield zero")
	}
	ds := []time.Duration{time.Millisecond, 3 * time.Millisecond}
	if MeanDuration(ds) != 2*time.Millisecond {
		t.Fatal("mean duration wrong")
	}
	if MaxDuration(ds) != 3*time.Millisecond {
		t.Fatal("max duration wrong")
	}
}

// Package stats provides the small statistical helpers the benchmark
// harness uses to report means and 95% confidence intervals, matching
// the error bars in the paper's figures.
package stats

import (
	"math"
	"time"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// CI95 returns the mean and the half-width of the 95% confidence
// interval using the normal approximation (1.96·σ/√n).
func CI95(xs []float64) (mean, half float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	half = 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
	return
}

// Durations converts a slice of durations to float64 milliseconds.
func Durations(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d) / float64(time.Millisecond)
	}
	return out
}

// MeanDuration returns the mean of a duration slice.
func MeanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var s time.Duration
	for _, d := range ds {
		s += d
	}
	return s / time.Duration(len(ds))
}

// MaxDuration returns the maximum (0 for empty input).
func MaxDuration(ds []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

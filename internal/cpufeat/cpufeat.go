// Package cpufeat detects x86 SIMD capability at runtime via CPUID so
// the tensor kernels can dispatch the widest micro-kernel the host (and
// the operating system's register-state support) actually provides, and
// so benchmark reports can record which kernel tier was exercised.
// Non-amd64 builds (and the noasm build tag) report no features, which
// routes every caller to the portable kernels.
package cpufeat

import (
	"strings"
	"sync"
)

// Features is the SIMD capability set relevant to the compute kernels.
type Features struct {
	SSE2     bool // amd64 baseline
	SSE41    bool
	SSE42    bool
	AVX      bool
	FMA      bool
	AVX2     bool
	AVX512F  bool
	AVX512BW bool
	AVX512VL bool
	// AVX512VNNI is the int8 dot-product extension (VPDPBUSD): four
	// u8×s8 products accumulated into each int32 lane in one
	// instruction, halving the instruction count of the widen+VPMADDWD
	// int8 kernel.
	AVX512VNNI bool
	// OSYMM reports that the OS saves the full YMM register state
	// (XGETBV XCR0 bits 1-2); without it AVX/AVX2 must not be used even
	// when the CPU advertises them.
	OSYMM bool
	// OSZMM reports that the OS additionally saves the AVX-512 state:
	// opmask registers and the ZMM halves (XGETBV XCR0 bits 5-7).
	// Without it AVX-512 must not be used even when the CPU advertises
	// it — the kernel would silently corrupt ZMM state across context
	// switches.
	OSZMM bool
}

var (
	once     sync.Once
	detected Features
)

// Detect returns the host's feature set. The CPUID probe runs once; the
// result is cached for the process lifetime.
func Detect() Features {
	once.Do(func() { detected = detect() })
	return detected
}

// UsableAVX2 reports whether AVX2+FMA kernels may be executed: the CPU
// advertises both and the OS preserves YMM state across context switches.
func (f Features) UsableAVX2() bool { return f.AVX2 && f.FMA && f.OSYMM }

// UsableAVX512 reports whether AVX-512 (F+BW+VL) kernels may be
// executed: the CPU advertises the feature trio and the OS preserves
// both the YMM and the extended ZMM/opmask register state.
func (f Features) UsableAVX512() bool {
	return f.AVX512F && f.AVX512BW && f.AVX512VL && f.OSYMM && f.OSZMM
}

// UsableVNNI reports whether the VPDPBUSD int8 fast path may be used on
// top of the AVX-512 kernels.
func (f Features) UsableVNNI() bool { return f.UsableAVX512() && f.AVX512VNNI }

// String renders the enabled features as a comma-separated list
// ("sse2,sse4.1,avx,fma,avx2,..."), empty when nothing was detected.
func (f Features) String() string {
	var names []string
	add := func(on bool, name string) {
		if on {
			names = append(names, name)
		}
	}
	add(f.SSE2, "sse2")
	add(f.SSE41, "sse4.1")
	add(f.SSE42, "sse4.2")
	add(f.AVX, "avx")
	add(f.FMA, "fma")
	add(f.AVX2, "avx2")
	add(f.AVX512F, "avx512f")
	add(f.AVX512BW, "avx512bw")
	add(f.AVX512VL, "avx512vl")
	add(f.AVX512VNNI, "avx512vnni")
	return strings.Join(names, ",")
}

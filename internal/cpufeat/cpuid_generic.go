//go:build !amd64 || noasm

package cpufeat

// detect reports no SIMD features on non-amd64 platforms and under the
// noasm build tag, steering kernel dispatch to the portable paths.
func detect() Features { return Features{} }

package cpufeat

import (
	"runtime"
	"strings"
	"testing"
)

func TestDetectCached(t *testing.T) {
	a, b := Detect(), Detect()
	if a != b {
		t.Fatalf("Detect not stable: %+v vs %+v", a, b)
	}
}

func TestBaseline(t *testing.T) {
	f := Detect()
	// Under the noasm tag (or off amd64) detection reports nothing; when
	// anything was detected the amd64 SSE2 baseline must be present.
	if f.String() != "" && runtime.GOARCH == "amd64" && !f.SSE2 {
		t.Fatalf("amd64 detection reported features without the SSE2 baseline: %q", f)
	}
	// Implication chain: the Usable predicates require OS YMM support.
	if f.UsableAVX2() && !f.OSYMM {
		t.Fatal("UsableAVX2 true without OS YMM state support")
	}
	if f.UsableAVX512() && !f.AVX512F {
		t.Fatal("UsableAVX512 true without AVX512F")
	}
}

func TestStringNames(t *testing.T) {
	f := Features{SSE2: true, SSE41: true, AVX2: true}
	got := f.String()
	if got != "sse2,sse4.1,avx2" {
		t.Fatalf("String() = %q, want sse2,sse4.1,avx2", got)
	}
	if (Features{}).String() != "" {
		t.Fatalf("empty feature set should render empty, got %q", Features{}.String())
	}
	all := Features{SSE2: true, SSE41: true, SSE42: true, AVX: true, FMA: true,
		AVX2: true, AVX512F: true, AVX512BW: true, AVX512VL: true, OSYMM: true}
	for _, want := range []string{"sse2", "sse4.2", "fma", "avx512bw", "avx512vl"} {
		if !strings.Contains(all.String(), want) {
			t.Fatalf("String() missing %q: %q", want, all.String())
		}
	}
}

//go:build amd64 && !noasm

package cpufeat

// cpuid executes the CPUID instruction for (leaf, subleaf).
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register XCR0.
func xgetbv() (eax, edx uint32)

const (
	// leaf 1 ECX bits
	bitFMA     = 1 << 12
	bitSSE41   = 1 << 19
	bitSSE42   = 1 << 20
	bitOSXSAVE = 1 << 27
	bitAVX     = 1 << 28
	// leaf 7 EBX bits
	bitAVX2     = 1 << 5
	bitAVX512F  = 1 << 16
	bitAVX512BW = 1 << 30
	bitAVX512VL = 1 << 31
	// leaf 7 ECX bits
	bitAVX512VNNI = 1 << 11
	// XCR0 bits: SSE (XMM) and AVX (YMM) register state, then the
	// AVX-512 triple — opmask (k0-k7), ZMM0-15 upper halves, ZMM16-31.
	xcr0SSE       = 1 << 1
	xcr0AVX       = 1 << 2
	xcr0Opmask    = 1 << 5
	xcr0ZMMHi256  = 1 << 6
	xcr0Hi16ZMM   = 1 << 7
	xcr0AVX512All = xcr0Opmask | xcr0ZMMHi256 | xcr0Hi16ZMM
)

func detect() Features {
	var f Features
	f.SSE2 = true // amd64 baseline
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return f
	}
	_, _, ecx1, _ := cpuid(1, 0)
	f.SSE41 = ecx1&bitSSE41 != 0
	f.SSE42 = ecx1&bitSSE42 != 0
	f.FMA = ecx1&bitFMA != 0
	f.AVX = ecx1&bitAVX != 0
	if ecx1&bitOSXSAVE != 0 {
		lo, _ := xgetbv()
		f.OSYMM = lo&(xcr0SSE|xcr0AVX) == (xcr0SSE | xcr0AVX)
		f.OSZMM = f.OSYMM && lo&xcr0AVX512All == xcr0AVX512All
	}
	if maxLeaf >= 7 {
		_, ebx7, ecx7, _ := cpuid(7, 0)
		f.AVX2 = ebx7&bitAVX2 != 0
		f.AVX512F = ebx7&bitAVX512F != 0
		f.AVX512BW = ebx7&bitAVX512BW != 0
		f.AVX512VL = ebx7&bitAVX512VL != 0
		f.AVX512VNNI = ecx7&bitAVX512VNNI != 0
	}
	return f
}

package sched

import (
	"math"
	"strings"
	"testing"

	"adcnn/internal/telemetry"
)

func TestEffectiveSpeedsMath(t *testing.T) {
	// s'_k = s_k / (1 + s_k·xfer_k/ref): s=10, xfer=0.1s, ref=1s → 5.
	eff := EffectiveSpeeds([]float64{10, 10}, []float64{0, 0.1}, 1)
	if eff == nil {
		t.Fatal("expected derated speeds")
	}
	if eff[0] != 10 {
		t.Fatalf("node without transfer cost changed: %v", eff[0])
	}
	if want := 5.0; math.Abs(eff[1]-want) > 1e-9 {
		t.Fatalf("eff[1] = %v, want %v", eff[1], want)
	}
}

func TestEffectiveSpeedsGates(t *testing.T) {
	if EffectiveSpeeds([]float64{1}, nil, 1) != nil {
		t.Fatal("no transfer costs must return nil")
	}
	if EffectiveSpeeds([]float64{1}, []float64{0.5}, 0) != nil {
		t.Fatal("uncalibrated reference must return nil")
	}
	if EffectiveSpeeds([]float64{1, 2}, []float64{0, 0}, 1) != nil {
		t.Fatal("all-unknown transfer costs must return nil")
	}
	if EffectiveSpeeds([]float64{0}, []float64{0.5}, 1) != nil {
		t.Fatal("a dead node alone must not enable derating")
	}
}

// TestEffectiveSpeedsShiftAllocation: two equally fast nodes, one behind
// a slow link — the greedy must move tiles off the slow-link node once
// the transfer cost is folded in.
func TestEffectiveSpeedsShiftAllocation(t *testing.T) {
	speeds := []float64{10, 10}
	base, err := Allocate(16, speeds, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	eff := EffectiveSpeeds(speeds, []float64{0, 0.3}, 1)
	shifted, err := Allocate(16, eff, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if shifted[0] <= base[0] {
		t.Fatalf("link cost on node 1 did not shift tiles: base %v, link-aware %v", base, shifted)
	}
}

func TestAttributeTriggerLink(t *testing.T) {
	steady := []float64{10, 10}
	// A link cost appearing on node 1 with steady speeds → link blame,
	// even against a predecessor that carried no link costs at all.
	trig := attributeTriggerLink(steady, steady, nil, []float64{0, 0.5})
	if !strings.HasPrefix(trig, "link node=1 +") {
		t.Fatalf("new link cost attributed as %q", trig)
	}
	// A dominant speed shift outranks a small link wobble.
	trig = attributeTriggerLink(steady, []float64{10, 5}, []float64{0.1, 0.1}, []float64{0.1, 0.105})
	if !strings.HasPrefix(trig, "speed node=1 -") {
		t.Fatalf("speed collapse attributed as %q", trig)
	}
	// A link recovery (cost shrinking) blames the link with a minus sign.
	trig = attributeTriggerLink(steady, steady, []float64{0, 0.5}, []float64{0, 0.1})
	if !strings.HasPrefix(trig, "link node=1 -") {
		t.Fatalf("link recovery attributed as %q", trig)
	}
	// Without link inputs the classic attribution is unchanged.
	if got := attributeTrigger(steady, steady); got != "speed-drift" {
		t.Fatalf("steady speeds attributed as %q", got)
	}
	if got := attributeTrigger([]float64{10}, steady); got != "node-set-changed" {
		t.Fatalf("length mismatch attributed as %q", got)
	}
}

// TestMonitorObserveAllocationLink: a link-aware decision must land in
// the audit ring with the effective speeds, the transfer costs, and a
// link-attributed trigger.
func TestMonitorObserveAllocationLink(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMonitor(reg)
	m.AttachAudit(NewAudit(0, nil))

	speeds := []float64{10, 10}
	m.ObserveAllocationLink(Allocation{8, 8}, speeds, nil, nil, 1)

	linkSecs := []float64{0, 0.3}
	eff := EffectiveSpeeds(speeds, linkSecs, 1)
	m.ObserveAllocationLink(Allocation{12, 4}, speeds, eff, linkSecs, 2)

	ds := m.Audit().Decisions()
	if len(ds) != 2 {
		t.Fatalf("audit holds %d decisions, want 2", len(ds))
	}
	d := ds[1]
	if !strings.HasPrefix(d.Trigger, "link node=1") {
		t.Fatalf("trigger %q, want link attribution for node 1", d.Trigger)
	}
	if len(d.EffSpeeds) != 2 || len(d.LinkSecs) != 2 {
		t.Fatalf("decision missing link context: eff=%v link=%v", d.EffSpeeds, d.LinkSecs)
	}
	if d.TilesMoved != 4 {
		t.Fatalf("tiles moved = %d, want 4", d.TilesMoved)
	}
}

package sched

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"adcnn/internal/telemetry"
)

func TestAuditRecordsDecisions(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMonitor(reg)
	a := NewAudit(8, nil)
	m.AttachAudit(a)
	if m.Audit() != a {
		t.Fatal("Audit accessor lost the attached ring")
	}

	// First allocation: audited as "initial", no predecessor.
	m.ObserveAllocation(Allocation{8, 8}, []float64{4, 4}, 1)
	// Identical split: a steady state, not a decision worth auditing.
	m.ObserveAllocation(Allocation{8, 8}, []float64{4, 4}, 2)
	// Node 1 slowed to half speed, scheduler shifted 4 tiles off it.
	m.ObserveAllocation(Allocation{12, 4}, []float64{4, 2}, 3)

	ds := a.Decisions()
	if len(ds) != 2 {
		t.Fatalf("audited %d decisions, want 2 (initial + reallocation): %+v", len(ds), ds)
	}

	first := ds[0]
	if first.Trigger != "initial" || first.Prev != nil || first.Image != 1 {
		t.Fatalf("initial decision wrong: %+v", first)
	}
	if first.Seq != 1 {
		t.Fatalf("seq %d, want 1", first.Seq)
	}

	re := ds[1]
	if re.Image != 3 || re.TilesMoved != 4 {
		t.Fatalf("reallocation record wrong: %+v", re)
	}
	if !strings.Contains(re.Trigger, "node=1") || !strings.Contains(re.Trigger, "-50%") {
		t.Fatalf("trigger attribution %q, want node=1 -50%%", re.Trigger)
	}
	// Old split {8,8} under new speeds {4,2}: bottleneck 8/2 = 4.
	// New split {12,4}: bottleneck 12/4 = 3. The audit shows the payoff.
	if re.ObjBefore != 4 || re.ObjAfter != 3 {
		t.Fatalf("objective delta %v → %v, want 4 → 3", re.ObjBefore, re.ObjAfter)
	}
	if len(re.Speeds) != 2 || re.Speeds[1] != 2 {
		t.Fatalf("speeds not captured: %v", re.Speeds)
	}
}

func TestAuditServeHTTP(t *testing.T) {
	m := NewMonitor(telemetry.NewRegistry())
	a := NewAudit(4, nil)
	m.AttachAudit(a)
	m.ObserveAllocation(Allocation{4}, []float64{2}, 7)

	rr := httptest.NewRecorder()
	a.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/sched", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var page struct {
		Recorded  uint64     `json:"decisions_recorded"`
		Capacity  int        `json:"capacity"`
		Decisions []Decision `json:"decisions"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &page); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if page.Recorded != 1 || page.Capacity != 4 || len(page.Decisions) != 1 {
		t.Fatalf("page: %+v", page)
	}
	if page.Decisions[0].Image != 7 {
		t.Fatalf("decision image %d, want 7", page.Decisions[0].Image)
	}
}

func TestAuditRingWraps(t *testing.T) {
	m := NewMonitor(telemetry.NewRegistry())
	a := NewAudit(3, nil)
	m.AttachAudit(a)
	// Alternate splits so every allocation is a fresh decision.
	for i := 0; i < 7; i++ {
		x := Allocation{10 + i, 6 - i%2}
		m.ObserveAllocation(x, []float64{2, float64(1 + i)}, uint32(i))
	}
	ds := a.Decisions()
	if len(ds) != 3 {
		t.Fatalf("ring holds %d, want capacity 3", len(ds))
	}
	for i := 1; i < len(ds); i++ {
		if ds[i].Seq != ds[i-1].Seq+1 {
			t.Fatalf("sequence gap: %+v", ds)
		}
	}
	if ds[len(ds)-1].Seq != 7 {
		t.Fatalf("latest seq %d, want 7", ds[len(ds)-1].Seq)
	}
}

func TestAuditNilSafe(t *testing.T) {
	var a *Audit
	a.record(Decision{})
	if a.Decisions() != nil {
		t.Fatal("nil audit must return nil decisions")
	}
	rr := httptest.NewRecorder()
	a.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/sched", nil))
	if rr.Body.String() != "{}\n" {
		t.Fatalf("nil audit body %q", rr.Body.String())
	}
	// Monitor without an attached audit must not record or panic.
	m := NewMonitor(telemetry.NewRegistry())
	m.ObserveAllocation(Allocation{1}, []float64{1}, 0)
	if m.Audit() != nil {
		t.Fatal("unattached monitor reports an audit")
	}
}

func TestTilesMovedAndTrigger(t *testing.T) {
	if got := tilesMoved(Allocation{8, 8}, Allocation{12, 4}); got != 4 {
		t.Fatalf("tilesMoved = %d, want 4", got)
	}
	if got := tilesMoved(Allocation{8}, Allocation{4, 4}); got != 8 {
		t.Fatalf("length-mismatch tilesMoved = %d, want total 8", got)
	}
	if got := attributeTrigger([]float64{2, 2}, []float64{2, 2}); got != "speed-drift" {
		t.Fatalf("no-drift trigger %q", got)
	}
	if got := attributeTrigger([]float64{2}, []float64{2, 2}); got != "node-set-changed" {
		t.Fatalf("node-set trigger %q", got)
	}
	if got := attributeTrigger([]float64{2, 4}, []float64{2, 6}); !strings.Contains(got, "node=1 +50%") {
		t.Fatalf("speed-up trigger %q", got)
	}
}

package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStatsConvergesToSteadyCounts(t *testing.T) {
	st := NewStats(2, 0.9, 8)
	for i := 0; i < 50; i++ {
		st.Update([]int{12, 4})
	}
	s := st.Speeds()
	if math.Abs(s[0]-12) > 0.01 || math.Abs(s[1]-4) > 0.01 {
		t.Fatalf("speeds = %v, want ≈[12 4]", s)
	}
}

func TestStatsDecayTracksChange(t *testing.T) {
	// γ=0.9 (paper's setting) adapts almost immediately.
	st := NewStats(1, 0.9, 8)
	st.Update([]int{0}) // node failed
	if st.Speed(0) > 1 {
		t.Fatalf("speed after failure = %v, should collapse quickly", st.Speed(0))
	}
	// small γ adapts slowly
	slow := NewStats(1, 0.1, 8)
	slow.Update([]int{0})
	if slow.Speed(0) < 7 {
		t.Fatalf("low-gamma speed = %v, should decay slowly", slow.Speed(0))
	}
}

func TestStatsAddAndShortUpdate(t *testing.T) {
	st := NewStats(2, 0.5, 4)
	if k := st.Add(); k != 2 {
		t.Fatalf("Add returned index %d, want 2", k)
	}
	if st.Nodes() != 3 || st.Speed(2) != 4 {
		t.Fatalf("added node: nodes=%d speed=%v, want 3 nodes at the initial estimate", st.Nodes(), st.Speed(2))
	}
	// An image dispatched before the join updates only the old nodes.
	st.Update([]int{8, 8})
	if st.Speed(0) != 6 || st.Speed(1) != 6 {
		t.Fatalf("old nodes = %v,%v, want 6", st.Speed(0), st.Speed(1))
	}
	if st.Speed(2) != 4 {
		t.Fatalf("new node decayed to %v on a pre-join image", st.Speed(2))
	}
}

func TestStatsValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewStats(0, 0.5, 1) },
		func() { NewStats(2, 0, 1) },
		func() { NewStats(2, 1.5, 1) },
		func() { NewStats(2, 0.5, 1).Update([]int{1, 2, 3}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAllocateEqualSpeedsBalanced(t *testing.T) {
	a, err := Allocate(64, []float64{8, 8, 8, 8, 8, 8, 8, 8}, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, x := range a {
		if x != 8 {
			t.Fatalf("node %d got %d tiles, want 8 (allocation %v)", k, x, a)
		}
	}
}

func TestAllocateProportionalToSpeed(t *testing.T) {
	// Figure 15(c): after nodes 5-8 degrade, fast nodes get ~12 tiles and
	// slow ones 3-5. Emulate with speeds 12,12,12,12,5,5,3,3.
	speeds := []float64{12, 12, 12, 12, 5, 5, 3, 3}
	a, err := Allocate(64, speeds, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total() != 64 {
		t.Fatalf("total %d", a.Total())
	}
	for k := 0; k < 4; k++ {
		if a[k] < 10 || a[k] > 14 {
			t.Fatalf("fast node %d got %d tiles: %v", k, a[k], a)
		}
	}
	for k := 6; k < 8; k++ {
		if a[k] < 2 || a[k] > 4 {
			t.Fatalf("slow node %d got %d tiles: %v", k, a[k], a)
		}
	}
}

func TestAllocateSkipsFailedNodes(t *testing.T) {
	a, err := Allocate(10, []float64{5, 0, 5}, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a[1] != 0 {
		t.Fatalf("failed node received tiles: %v", a)
	}
	if a[0]+a[2] != 10 {
		t.Fatalf("allocation %v", a)
	}
}

func TestAllocateRespectsStorageCapacity(t *testing.T) {
	// Node 0 is fast but can hold only 2 tiles.
	caps := []int64{2 * 100, 100 * 100}
	a, err := Allocate(10, []float64{100, 1}, 100, caps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != 2 || a[1] != 8 {
		t.Fatalf("allocation %v, want [2 8]", a)
	}
}

func TestAllocateNoCapacityError(t *testing.T) {
	caps := []int64{100, 100}
	if _, err := Allocate(5, []float64{1, 1}, 100, caps, nil); err != ErrNoCapacity {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
	if _, err := Allocate(1, []float64{0, 0}, 0, nil, nil); err != ErrNoCapacity {
		t.Fatal("all-failed cluster must error")
	}
}

func TestAllocateZeroTiles(t *testing.T) {
	a, err := Allocate(0, []float64{1, 2}, 0, nil, nil)
	if err != nil || a.Total() != 0 {
		t.Fatalf("a=%v err=%v", a, err)
	}
}

// Property: the greedy allocation's bottleneck is within one tile of the
// fractional lower bound tiles/Σs.
func TestAllocateNearOptimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(8)
		speeds := make([]float64, k)
		var sum float64
		for i := range speeds {
			speeds[i] = 1 + rng.Float64()*15
			sum += speeds[i]
		}
		tiles := 1 + rng.Intn(128)
		a, err := Allocate(tiles, speeds, 0, nil, rng)
		if err != nil || a.Total() != tiles {
			return false
		}
		lower := float64(tiles) / sum
		maxSlow := 0.0
		for i := range speeds {
			if 1/speeds[i] > maxSlow {
				maxSlow = 1 / speeds[i]
			}
		}
		// Greedy is within one tile's worth of work of the fluid optimum.
		return a.Bottleneck(speeds) <= lower+maxSlow+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: allocations are monotone — a faster node never gets fewer
// tiles than a strictly slower node (up to one-tile granularity).
func TestAllocateMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(6)
		speeds := make([]float64, k)
		for i := range speeds {
			speeds[i] = 1 + rng.Float64()*10
		}
		tiles := 1 + rng.Intn(96)
		a, err := Allocate(tiles, speeds, 0, nil, nil)
		if err != nil {
			return false
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if speeds[i] > speeds[j] && a[i] < a[j]-1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBottleneckInfiniteForZeroSpeed(t *testing.T) {
	a := Allocation{1, 0}
	if a.Bottleneck([]float64{0, 1}) < 1e299 {
		t.Fatal("zero-speed node with tiles must have infinite bottleneck")
	}
}

package sched

// Link-aware dispatch cost. Algorithm 3's greedy places each tile on
// the node minimizing (x_k+1)/s_k — a pure compute cost of 1/s_k per
// tile. With a per-node transfer estimate xfer_k (seconds a tile spends
// on node k's links) the per-tile cost becomes
//
//	1/s_k + xfer_k/ref
//
// where ref converts wall seconds into the allocator's 1/s_k units (the
// caller passes its EWMA image latency, so the conversion self-
// calibrates to whatever timescale the s_k estimates live on). Rather
// than change the greedy, the sum is folded back into a single
// *effective* speed:
//
//	1/s'_k = 1/s_k + xfer_k/ref   ⇒   s'_k = s_k / (1 + s_k·xfer_k/ref)
//
// which makes link awareness a pure input transformation: Allocate,
// Bottleneck, and the audit trail all run unchanged on s'_k.

// EffectiveSpeeds derates measured compute speeds by per-node transfer
// cost. xferSecs[k] is node k's estimated per-tile transfer time in
// seconds (≤0 = unknown, leaves the node's speed untouched); refSecs is
// the caller's seconds→speed-units reference. Returns nil — meaning
// "use the measured speeds as-is" — when no node has a usable transfer
// estimate or the reference is not yet calibrated.
func EffectiveSpeeds(speeds, xferSecs []float64, refSecs float64) []float64 {
	if len(xferSecs) == 0 || refSecs <= 0 {
		return nil
	}
	out := make([]float64, len(speeds))
	changed := false
	for k, s := range speeds {
		out[k] = s
		if s <= 0 || k >= len(xferSecs) || xferSecs[k] <= 0 {
			continue
		}
		out[k] = s / (1 + s*xferSecs[k]/refSecs)
		changed = true
	}
	if !changed {
		return nil
	}
	return out
}

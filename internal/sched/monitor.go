package sched

import (
	"strconv"
	"sync"

	"adcnn/internal/telemetry"
)

// Monitor publishes the scheduler's internal state — the quantities
// Algorithm 2 and 3 are driven by — as metrics:
//
//	adcnn_sched_speed{node}        EWMA throughput estimate s_k
//	adcnn_sched_bottleneck         allocation objective max_k x_k/s_k
//	adcnn_sched_allocations_total  allocations computed
//	adcnn_sched_realloc_total      allocations that shifted tiles between
//	                               nodes relative to the previous one
//
// All methods are nil-receiver safe so call sites need no guards.
type Monitor struct {
	speed      *telemetry.GaugeVec
	bottleneck *telemetry.Gauge
	allocs     *telemetry.Counter
	reallocs   *telemetry.Counter

	mu   sync.Mutex
	last Allocation
}

// NewMonitor registers the scheduler metrics on reg.
func NewMonitor(reg *telemetry.Registry) *Monitor {
	return &Monitor{
		speed:      reg.GaugeVec("adcnn_sched_speed", "Algorithm 2 EWMA throughput estimate s_k per Conv node.", "node"),
		bottleneck: reg.Gauge("adcnn_sched_bottleneck", "Allocation objective max_k x_k/s_k of the last allocation (Equation 1)."),
		allocs:     reg.Counter("adcnn_sched_allocations_total", "Tile allocations computed."),
		reallocs:   reg.Counter("adcnn_sched_realloc_total", "Allocations that moved tiles between nodes vs the previous image."),
	}
}

// ObserveSpeeds publishes the current s_k estimates.
func (m *Monitor) ObserveSpeeds(speeds []float64) {
	if m == nil {
		return
	}
	for k, s := range speeds {
		m.speed.With(strconv.Itoa(k)).Set(s)
	}
}

// ObserveAllocation publishes one allocation's objective and counts a
// reallocation event when the tile split changed since the last image.
func (m *Monitor) ObserveAllocation(a Allocation, speeds []float64) {
	if m == nil {
		return
	}
	m.bottleneck.Set(a.Bottleneck(speeds))
	m.allocs.Inc()
	m.mu.Lock()
	changed := len(m.last) == len(a)
	if changed {
		same := true
		for k, x := range a {
			if m.last[k] != x {
				same = false
				break
			}
		}
		changed = !same
	}
	m.last = append(m.last[:0], a...)
	m.mu.Unlock()
	if changed {
		m.reallocs.Inc()
	}
}

package sched

import (
	"strconv"
	"sync"
	"time"

	"adcnn/internal/telemetry"
)

// Monitor publishes the scheduler's internal state — the quantities
// Algorithm 2 and 3 are driven by — as metrics:
//
//	adcnn_sched_speed{node}        EWMA throughput estimate s_k
//	adcnn_sched_bottleneck         allocation objective max_k x_k/s_k
//	adcnn_sched_allocations_total  allocations computed
//	adcnn_sched_realloc_total      allocations that shifted tiles between
//	                               nodes relative to the previous one
//
// When an Audit ring is attached the Monitor also appends a structured
// Decision record for the first allocation and for every reallocation,
// with trigger attribution from the speed drift since the previous one.
// All methods are nil-receiver safe so call sites need no guards.
type Monitor struct {
	speed      *telemetry.GaugeVec
	bottleneck *telemetry.Gauge
	allocs     *telemetry.Counter
	reallocs   *telemetry.Counter

	mu         sync.Mutex
	last       Allocation
	lastSpeeds []float64
	lastLink   []float64
	seen       bool
	audit      *Audit
}

// NewMonitor registers the scheduler metrics on reg.
func NewMonitor(reg *telemetry.Registry) *Monitor {
	return &Monitor{
		speed:      reg.GaugeVec("adcnn_sched_speed", "Algorithm 2 EWMA throughput estimate s_k per Conv node.", "node"),
		bottleneck: reg.Gauge("adcnn_sched_bottleneck", "Allocation objective max_k x_k/s_k of the last allocation (Equation 1)."),
		allocs:     reg.Counter("adcnn_sched_allocations_total", "Tile allocations computed."),
		reallocs:   reg.Counter("adcnn_sched_realloc_total", "Allocations that moved tiles between nodes vs the previous image."),
	}
}

// NewReplicaMonitor registers the scheduler metrics with a leading
// "replica" label, for processes hosting several Central replicas on
// one registry. Every replica's monitor must come through here — the
// registry rejects mixing the labeled and unlabeled schemas.
func NewReplicaMonitor(reg *telemetry.Registry, replica string) *Monitor {
	return &Monitor{
		speed: reg.GaugeVec("adcnn_sched_speed",
			"Algorithm 2 EWMA throughput estimate s_k per Conv node.", "replica", "node").Curry(replica),
		bottleneck: reg.GaugeVec("adcnn_sched_bottleneck",
			"Allocation objective max_k x_k/s_k of the last allocation (Equation 1).", "replica").With(replica),
		allocs: reg.CounterVec("adcnn_sched_allocations_total",
			"Tile allocations computed.", "replica").With(replica),
		reallocs: reg.CounterVec("adcnn_sched_realloc_total",
			"Allocations that moved tiles between nodes vs the previous image.", "replica").With(replica),
	}
}

// ObserveSpeeds publishes the current s_k estimates.
func (m *Monitor) ObserveSpeeds(speeds []float64) {
	if m == nil {
		return
	}
	for k, s := range speeds {
		m.speed.With(strconv.Itoa(k)).Set(s)
	}
}

// AttachAudit wires a decision-audit ring into the monitor. Safe to
// call once before traffic; a nil audit leaves auditing off.
func (m *Monitor) AttachAudit(a *Audit) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.audit = a
	m.mu.Unlock()
}

// Audit returns the attached decision ring (nil when none).
func (m *Monitor) Audit() *Audit {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.audit
}

// ObserveAllocation publishes one allocation's objective, counts a
// reallocation event when the tile split changed since the last image,
// and — when an Audit is attached — records the decision with its s_k
// inputs, objective delta, and trigger attribution. image identifies
// the inference the allocation was computed for.
func (m *Monitor) ObserveAllocation(a Allocation, speeds []float64, image uint32) {
	m.ObserveAllocationLink(a, speeds, nil, nil, image)
}

// ObserveAllocationLink is ObserveAllocation for link-aware decisions:
// effSpeeds are the transfer-derated speeds the split was actually
// computed from (nil when the mode is off or uncalibrated) and linkSecs
// the per-node transfer costs behind them. Objectives are evaluated on
// the effective speeds — the quantity the allocator minimized — and
// trigger attribution weighs link-cost shifts against speed shifts, so
// a move caused purely by a bandwidth collapse is named "link node=K"
// even while the measured s_k held steady.
func (m *Monitor) ObserveAllocationLink(a Allocation, speeds, effSpeeds, linkSecs []float64, image uint32) {
	if m == nil {
		return
	}
	objSpeeds := speeds
	if effSpeeds != nil {
		objSpeeds = effSpeeds
	}
	objAfter := a.Bottleneck(objSpeeds)
	m.bottleneck.Set(objAfter)
	m.allocs.Inc()
	m.mu.Lock()
	first := !m.seen
	changed := len(m.last) == len(a)
	if changed {
		same := true
		for k, x := range a {
			if m.last[k] != x {
				same = false
				break
			}
		}
		changed = !same
	}
	var d *Decision
	if m.audit != nil && (first || changed) {
		d = &Decision{
			At:       time.Now(),
			Image:    image,
			Speeds:   append([]float64(nil), speeds...),
			Next:     append(Allocation(nil), a...),
			ObjAfter: objAfter,
		}
		if effSpeeds != nil {
			d.EffSpeeds = append([]float64(nil), effSpeeds...)
			d.LinkSecs = append([]float64(nil), linkSecs...)
		}
		if first {
			d.ObjBefore = objAfter
			d.Trigger = "initial"
		} else {
			d.Prev = append(Allocation(nil), m.last...)
			d.ObjBefore = d.Prev.Bottleneck(objSpeeds)
			d.TilesMoved = tilesMoved(d.Prev, a)
			d.Trigger = attributeTriggerLink(m.lastSpeeds, speeds, m.lastLink, linkSecs)
		}
	}
	audit := m.audit
	m.last = append(m.last[:0], a...)
	m.lastSpeeds = append(m.lastSpeeds[:0], speeds...)
	m.lastLink = append(m.lastLink[:0], linkSecs...)
	m.seen = true
	m.mu.Unlock()
	if changed {
		m.reallocs.Inc()
	}
	if d != nil {
		audit.record(*d)
	}
}

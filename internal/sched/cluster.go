package sched

// Cluster capacity partitioning. With N Central replicas driving one
// Conv pool, each node's measured capacity s_k is one resource the
// replicas must split: every replica runs Algorithm 3 against
// share[k]·s_k instead of s_k, so the pool-wide allocation stays a
// min-max over the true capacities even though no replica sees the
// others' tiles. The partitioner produces those shares — equal splits
// when nothing is known, demand-weighted splits once the replicas'
// queue depths diverge — and the cluster layer in internal/core applies
// them via Central.SetShare plus work-stealing for the residual
// imbalance between rebalances.

// ShareFloor is the minimum share a live replica keeps of every node.
// A replica squeezed to exactly zero could never route a tile anywhere
// — including the probe traffic the demand estimate needs to recover —
// so rebalancing pins each replica above this floor and renormalizes.
const ShareFloor = 0.05

// AffinityTilt skews each node's split slightly toward one replica
// (node k leans to replica k mod N). Without it the replicas are
// symmetric: with identical speed estimates every replica's Algorithm 3
// resolves its argmin ties to the same nodes, they herd onto one
// subset of the pool, and the shared per-node device serializes them
// while the rest of the pool idles — and because Algorithm 2 folds in
// received-tile *counts*, the idle nodes' estimates decay to zero and
// the herd can never discover them. A deterministic ±10% tilt breaks
// the tie from the first image, spreading replicas across disjoint
// node subsets when tiles-per-image < nodes, while perturbing the
// actual capacity split too little to matter when they must overlap.
const AffinityTilt = 0.10

// applyAffinity tilts a share matrix toward the rotated affinity
// pattern and renormalizes each node's column to sum to 1. A single
// replica owns everything; tilting is a no-op.
func applyAffinity(shares [][]float64) [][]float64 {
	replicas := len(shares)
	if replicas <= 1 {
		return shares
	}
	nodes := len(shares[0])
	for k := 0; k < nodes; k++ {
		sum := 0.0
		for r := 0; r < replicas; r++ {
			if k%replicas == r {
				shares[r][k] *= 1 + AffinityTilt
			} else {
				shares[r][k] *= 1 - AffinityTilt
			}
			sum += shares[r][k]
		}
		if sum > 0 {
			for r := 0; r < replicas; r++ {
				shares[r][k] /= sum
			}
		}
	}
	return shares
}

// FairShares splits every node evenly across replicas (modulo the
// affinity tilt): the static partition used before any demand has been
// observed. The result is indexed [replica][node].
func FairShares(nodes, replicas int) [][]float64 {
	if nodes <= 0 || replicas <= 0 {
		return nil
	}
	out := make([][]float64, replicas)
	for r := range out {
		out[r] = make([]float64, nodes)
		for k := range out[r] {
			out[r][k] = 1 / float64(replicas)
		}
	}
	return applyAffinity(out)
}

// DemandShares splits every node across replicas in proportion to each
// replica's observed demand (queued plus in-flight images), with every
// replica floored at ShareFloor so it can keep serving — and keep
// generating the demand signal — even when idle. Zero total demand
// falls back to fair shares. The result is indexed [replica][node].
func DemandShares(nodes int, demand []float64) [][]float64 {
	replicas := len(demand)
	if nodes <= 0 || replicas <= 0 {
		return nil
	}
	total := 0.0
	for _, d := range demand {
		if d > 0 {
			total += d
		}
	}
	if total <= 0 {
		return FairShares(nodes, replicas)
	}
	frac := make([]float64, replicas)
	sum := 0.0
	for r, d := range demand {
		f := 0.0
		if d > 0 {
			f = d / total
		}
		if f < ShareFloor {
			f = ShareFloor
		}
		frac[r] = f
		sum += f
	}
	out := make([][]float64, replicas)
	for r := range out {
		frac[r] /= sum
		out[r] = make([]float64, nodes)
		for k := range out[r] {
			out[r][k] = frac[r]
		}
	}
	return applyAffinity(out)
}

// ShareTotals sums a share matrix per replica (mean share across
// nodes), the scalar entitlement the work-stealing threshold compares
// queue depths against.
func ShareTotals(shares [][]float64) []float64 {
	out := make([]float64, len(shares))
	for r, row := range shares {
		if len(row) == 0 {
			continue
		}
		s := 0.0
		for _, v := range row {
			s += v
		}
		out[r] = s / float64(len(row))
	}
	return out
}

// Package sched implements ADCNN's runtime scheduling logic: the
// statistics-collection process of paper Algorithm 2 (an exponentially
// weighted running mean of how many tile results each Conv node returned
// within the deadline) and the input-tile allocation of Algorithm 3 (a
// greedy minimizer of max_k x_k/s_k subject to per-node storage).
package sched

import (
	"errors"
	"fmt"
	"math/rand"
)

// Stats tracks the per-node throughput estimate s_k (Algorithm 2).
type Stats struct {
	// Gamma is the decay parameter γ: s_k ← (1−γ)s_k + γ n_k.
	Gamma   float64
	s       []float64
	initial float64
}

// NewStats creates the tracker with an initial estimate per node. The
// paper starts nodes as equals; initial > 0 avoids a cold-start where no
// node ever receives work.
func NewStats(nodes int, gamma float64, initial float64) *Stats {
	if nodes < 1 {
		panic("sched: need at least one node")
	}
	if gamma <= 0 || gamma > 1 {
		panic(fmt.Sprintf("sched: gamma %v out of (0,1]", gamma))
	}
	st := &Stats{Gamma: gamma, s: make([]float64, nodes), initial: initial}
	for i := range st.s {
		st.s[i] = initial
	}
	return st
}

// Revive restores node k's estimate to at least the cold-start value.
// A node that was dead (or throttled to zero) receives no tiles, so its
// EWMA can never recover on its own; a reconnecting node calls this to
// re-enter the allocation as an equal and let Algorithm 2 re-measure it.
func (st *Stats) Revive(k int) {
	if st.s[k] < st.initial {
		st.s[k] = st.initial
	}
}

// Nodes returns the node count.
func (st *Stats) Nodes() int { return len(st.s) }

// Add appends a fresh node at the cold-start estimate (runtime
// membership growth) and returns its index.
func (st *Stats) Add() int {
	st.s = append(st.s, st.initial)
	return len(st.s) - 1
}

// Update folds one image's per-node result counts n_k into the running
// means (Algorithm 2 line 6). counts may be shorter than the node set —
// an image dispatched before a node joined carries no verdict on the new
// node, whose estimate is left untouched. More counts than nodes is
// still a caller bug.
func (st *Stats) Update(counts []int) {
	if len(counts) > len(st.s) {
		panic(fmt.Sprintf("sched: %d counts for %d nodes", len(counts), len(st.s)))
	}
	for k, n := range counts {
		st.s[k] = (1-st.Gamma)*st.s[k] + st.Gamma*float64(n)
	}
}

// Speeds returns a copy of the current estimates.
func (st *Stats) Speeds() []float64 {
	out := make([]float64, len(st.s))
	copy(out, st.s)
	return out
}

// Speed returns node k's estimate.
func (st *Stats) Speed(k int) float64 { return st.s[k] }

// Allocation is the number of tiles assigned to each node.
type Allocation []int

// Total returns the number of tiles allocated.
func (a Allocation) Total() int {
	n := 0
	for _, x := range a {
		n += x
	}
	return n
}

// Bottleneck returns max_k x_k/s_k, the objective of Equation (1).
func (a Allocation) Bottleneck(speeds []float64) float64 {
	worst := 0.0
	for k, x := range a {
		if x == 0 {
			continue
		}
		if speeds[k] <= 0 {
			return inf
		}
		if v := float64(x) / speeds[k]; v > worst {
			worst = v
		}
	}
	return worst
}

const inf = 1e300

// ErrNoCapacity is returned when tiles cannot all be placed.
var ErrNoCapacity = errors.New("sched: not enough node capacity for all tiles")

// Allocate implements Algorithm 3: place tiles one by one on the node
// whose (x_k+1)/s_k is smallest among nodes with remaining storage,
// breaking ties randomly via rng (deterministically by index when rng is
// nil). tileBytes and capacities enforce the constraint M·x_k ≤ H_k;
// pass nil capacities for unlimited storage. Nodes with s_k = 0 (failed
// per the paper) receive nothing.
func Allocate(tiles int, speeds []float64, tileBytes int64, capacities []int64, rng *rand.Rand) (Allocation, error) {
	if tiles < 0 {
		return nil, errors.New("sched: negative tile count")
	}
	k := len(speeds)
	if k == 0 {
		return nil, errors.New("sched: no nodes")
	}
	maxTiles := make([]int, k)
	for i := range maxTiles {
		maxTiles[i] = tiles
		if capacities != nil && tileBytes > 0 {
			maxTiles[i] = int(capacities[i] / tileBytes)
		}
	}
	x := make(Allocation, k)
	for t := 0; t < tiles; t++ {
		best := -1
		bestCost := inf
		var ties []int
		for i := 0; i < k; i++ {
			if speeds[i] <= 0 || x[i] >= maxTiles[i] {
				continue
			}
			cost := float64(x[i]+1) / speeds[i]
			switch {
			case cost < bestCost:
				bestCost, best = cost, i
				ties = ties[:0]
				ties = append(ties, i)
			case cost == bestCost:
				ties = append(ties, i)
			}
		}
		if best < 0 {
			return nil, ErrNoCapacity
		}
		if len(ties) > 1 && rng != nil {
			best = ties[rng.Intn(len(ties))]
		}
		x[best]++
	}
	return x, nil
}

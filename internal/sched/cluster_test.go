package sched

import (
	"math"
	"testing"
)

func TestFairShares(t *testing.T) {
	s := FairShares(4, 2)
	if len(s) != 2 || len(s[0]) != 4 {
		t.Fatalf("shape = %dx%d, want 2x4", len(s), len(s[0]))
	}
	for r := range s {
		for k := range s[r] {
			// Even split modulo the affinity tilt: node k leans to
			// replica k mod 2, and every node's column sums to 1.
			want := 0.5 * (1 - AffinityTilt)
			if k%2 == r {
				want = 0.5 * (1 + AffinityTilt)
			}
			if math.Abs(s[r][k]-want) > 1e-12 {
				t.Fatalf("share[%d][%d] = %v, want %v", r, k, s[r][k], want)
			}
		}
	}
	for k := 0; k < 4; k++ {
		if sum := s[0][k] + s[1][k]; math.Abs(sum-1) > 1e-12 {
			t.Fatalf("node %d shares sum to %v, want 1", k, sum)
		}
	}
	if FairShares(0, 2) != nil || FairShares(2, 0) != nil {
		t.Fatal("degenerate inputs should return nil")
	}
}

func TestFairSharesSingleReplicaUntilted(t *testing.T) {
	s := FairShares(3, 1)
	for k := range s[0] {
		if s[0][k] != 1 {
			t.Fatalf("single replica share[0][%d] = %v, want 1", k, s[0][k])
		}
	}
}

func TestFairSharesAffinityDisjoint(t *testing.T) {
	// The point of the tilt: with N replicas over N·m nodes, each
	// replica's strictly-largest shares land on a disjoint node subset,
	// so symmetric replicas break their argmin ties apart.
	s := FairShares(4, 2)
	for k := 0; k < 4; k++ {
		lean := k % 2
		other := 1 - lean
		if s[lean][k] <= s[other][k] {
			t.Fatalf("node %d should lean to replica %d: %v vs %v", k, lean, s[lean][k], s[other][k])
		}
	}
}

func TestDemandSharesProportional(t *testing.T) {
	s := DemandShares(3, []float64{3, 1})
	for k := 0; k < 3; k++ {
		// Demand-proportional within the affinity tilt, columns sum to 1.
		if math.Abs(s[0][k]-0.75) > AffinityTilt || math.Abs(s[1][k]-0.25) > AffinityTilt {
			t.Fatalf("node %d shares = %v/%v, want 0.75/0.25 within tilt", k, s[0][k], s[1][k])
		}
		if sum := s[0][k] + s[1][k]; math.Abs(sum-1) > 1e-12 {
			t.Fatalf("node %d shares sum to %v, want 1", k, sum)
		}
		if s[0][k] <= s[1][k] {
			t.Fatalf("node %d: demand 3:1 must dominate the tilt: %v vs %v", k, s[0][k], s[1][k])
		}
	}
}

func TestDemandSharesFloor(t *testing.T) {
	s := DemandShares(2, []float64{100, 0})
	// The idle replica keeps the floor; the node splits must still sum to 1.
	if s[1][0] < ShareFloor/2 {
		t.Fatalf("idle replica share %v collapsed below the floor", s[1][0])
	}
	for k := 0; k < 2; k++ {
		sum := s[0][k] + s[1][k]
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("node %d shares sum to %v, want 1", k, sum)
		}
	}
}

func TestDemandSharesZeroDemand(t *testing.T) {
	s := DemandShares(3, []float64{0, 0, 0})
	for r := range s {
		for k := range s[r] {
			if math.Abs(s[r][k]-1.0/3) > AffinityTilt {
				t.Fatalf("share[%d][%d] = %v, want fair third within tilt", r, k, s[r][k])
			}
		}
		for k := 0; k < 3; k++ {
			sum := s[0][k] + s[1][k] + s[2][k]
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("node %d shares sum to %v, want 1", k, sum)
			}
		}
	}
}

func TestShareTotals(t *testing.T) {
	tot := ShareTotals([][]float64{{0.6, 0.8}, {0.4, 0.2}})
	if math.Abs(tot[0]-0.7) > 1e-12 || math.Abs(tot[1]-0.3) > 1e-12 {
		t.Fatalf("totals = %v, want [0.7 0.3]", tot)
	}
}

package sched

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"
)

// Decision audit: every allocation Algorithm 3 computes is appended to a
// bounded ring as a structured record — the s_k inputs it saw, the split
// it replaced, the objective before and after, and a best-effort
// attribution of *why* it moved (which node's estimate shifted most).
// The ring answers the operator question "why did the scheduler just
// move 4 tiles off node 2" without reconstructing it from metrics.

// Decision is one audited allocation.
type Decision struct {
	Seq   uint64    `json:"seq"`
	At    time.Time `json:"at"`
	Image uint32    `json:"image"`

	// Speeds are the s_k estimates the allocation was computed from.
	Speeds []float64 `json:"speeds"`

	// LinkSecs is the per-node transfer-cost estimate (seconds per
	// tile) a link-aware allocation folded in, and EffSpeeds the
	// derated speeds the split was actually computed from. Both are
	// omitted when link-aware dispatch was off or uncalibrated.
	LinkSecs  []float64 `json:"link_secs,omitempty"`
	EffSpeeds []float64 `json:"eff_speeds,omitempty"`

	// Prev is the split this one replaced; nil for the first allocation.
	Prev Allocation `json:"prev,omitempty"`
	Next Allocation `json:"next"`

	// ObjBefore is the old split's bottleneck under the *new* speeds —
	// what the objective would have been had the scheduler not moved —
	// and ObjAfter the new split's. Their gap is the move's payoff.
	ObjBefore float64 `json:"obj_before"`
	ObjAfter  float64 `json:"obj_after"`

	// TilesMoved counts tiles that changed nodes (half the L1 distance
	// between the splits).
	TilesMoved int `json:"tiles_moved"`

	// Trigger names what prompted the move: "initial" for the first
	// allocation, otherwise "speed node=K ±P%" for the node whose
	// estimate shifted most since the previous decision, or
	// "link node=K ±P%" when a transfer-cost shift dominated it.
	Trigger string `json:"trigger"`
}

// DefaultAuditSize is the ring capacity used when size ≤ 0.
const DefaultAuditSize = 256

// Audit is a fixed-size ring of scheduler decisions. All methods are
// nil-receiver safe; ServeHTTP makes it mountable at /debug/sched.
type Audit struct {
	mu      sync.Mutex
	buf     []Decision
	next    int
	wrapped bool
	seq     uint64
	log     *slog.Logger
}

// NewAudit creates a ring holding the last size decisions. logger may
// be nil; when set, every recorded decision is logged at Debug level.
func NewAudit(size int, logger *slog.Logger) *Audit {
	if size <= 0 {
		size = DefaultAuditSize
	}
	return &Audit{buf: make([]Decision, size), log: logger}
}

// Record appends one decision, stamping its sequence number. The
// Monitor feeds per-image allocation decisions through here; the
// cluster layer records its share rebalances the same way, so one ring
// answers both "why did tiles move between nodes" and "why did capacity
// move between replicas".
func (a *Audit) Record(d Decision) { a.record(d) }

// record appends one decision, stamping its sequence number.
func (a *Audit) record(d Decision) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.seq++
	d.Seq = a.seq
	a.buf[a.next] = d
	a.next++
	if a.next == len(a.buf) {
		a.next = 0
		a.wrapped = true
	}
	log := a.log
	a.mu.Unlock()
	if log != nil {
		log.Debug("sched decision",
			"seq", d.Seq, "image", d.Image, "trigger", d.Trigger,
			"tiles_moved", d.TilesMoved,
			"obj_before", d.ObjBefore, "obj_after", d.ObjAfter)
	}
}

// Decisions returns a copy of the ring contents, oldest first.
func (a *Audit) Decisions() []Decision {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.wrapped {
		return append([]Decision(nil), a.buf[:a.next]...)
	}
	out := make([]Decision, 0, len(a.buf))
	out = append(out, a.buf[a.next:]...)
	return append(out, a.buf[:a.next]...)
}

// auditPage is the /debug/sched JSON shape.
type auditPage struct {
	Recorded  uint64     `json:"decisions_recorded"`
	Capacity  int        `json:"capacity"`
	Decisions []Decision `json:"decisions"`
}

// ServeHTTP renders the audit ring as JSON, oldest decision first.
func (a *Audit) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if a == nil {
		_, _ = w.Write([]byte("{}\n"))
		return
	}
	a.mu.Lock()
	seq := a.seq
	capacity := len(a.buf)
	a.mu.Unlock()
	page := auditPage{Recorded: seq, Capacity: capacity, Decisions: a.Decisions()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(page)
}

// tilesMoved is half the L1 distance between two splits — the number of
// tiles that changed nodes. Length mismatch (node set changed) counts
// every tile of the larger split as moved.
func tilesMoved(prev, next Allocation) int {
	if len(prev) != len(next) {
		if t := next.Total(); t > 0 {
			return t
		}
		return prev.Total()
	}
	d := 0
	for k := range next {
		if diff := next[k] - prev[k]; diff > 0 {
			d += diff
		} else {
			d -= diff
		}
	}
	return d / 2
}

// attributeTrigger names the node whose s_k estimate moved most
// (relatively) between two decisions. Equal-length inputs only.
func attributeTrigger(prevSpeeds, speeds []float64) string {
	return attributeTriggerLink(prevSpeeds, speeds, nil, nil)
}

// worstShift finds the largest relative shift between two estimate
// vectors; floor bounds the denominator so a zero baseline still yields
// a finite attribution.
func worstShift(prev, cur []float64, floor float64) (float64, int) {
	worst, worstK := 0.0, -1
	for k := range cur {
		base := prev[k]
		if base <= 0 {
			base = floor
		}
		rel := (cur[k] - prev[k]) / base
		if rel < 0 {
			rel = -rel
		}
		if rel > worst {
			worst, worstK = rel, k
		}
	}
	return worst, worstK
}

// linkShiftFloor bounds the relative-shift denominator for transfer
// costs: a fraction of a millisecond, so a link cost appearing from
// nothing registers as a very large shift.
const linkShiftFloor = 1e-4

// attributeTriggerLink is attributeTrigger with the link dimension: when
// the transfer-cost estimates shifted more (relatively) than any speed
// estimate did, the move is attributed to the link, not the node's
// compute rate. A decision whose predecessor carried no link costs
// compares against zeros — the first link-aware reallocation after a
// bandwidth collapse is exactly the move that must read "link node=K".
func attributeTriggerLink(prevSpeeds, speeds, prevLink, link []float64) string {
	if len(prevSpeeds) != len(speeds) {
		return "node-set-changed"
	}
	sWorst, sK := worstShift(prevSpeeds, speeds, 1)
	lWorst, lK := 0.0, -1
	if len(link) > 0 {
		pl := prevLink
		if len(pl) != len(link) {
			pl = make([]float64, len(link))
		}
		lWorst, lK = worstShift(pl, link, linkShiftFloor)
	}
	if lK >= 0 && lWorst >= 1e-9 && lWorst > sWorst {
		sign := "+"
		if lK < len(prevLink) && link[lK] < prevLink[lK] {
			sign = "-"
		}
		return fmt.Sprintf("link node=%d %s%.0f%%", lK, sign, lWorst*100)
	}
	if sK < 0 || sWorst < 1e-9 {
		return "speed-drift"
	}
	sign := "+"
	if speeds[sK] < prevSpeeds[sK] {
		sign = "-"
	}
	return fmt.Sprintf("speed node=%d %s%.0f%%", sK, sign, sWorst*100)
}

package sched_test

import (
	"fmt"

	"adcnn/internal/sched"
)

// Allocate 16 tiles across three nodes whose measured throughputs are
// 8, 4 and 4 results per deadline window (Algorithm 3).
func ExampleAllocate() {
	alloc, err := sched.Allocate(16, []float64{8, 4, 4}, 0, nil, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(alloc, "bottleneck:", alloc.Bottleneck([]float64{8, 4, 4}))
	// Output: [8 4 4] bottleneck: 1
}

// Track node throughput with the EWMA of Algorithm 2: a node that stops
// returning results decays toward zero and stops receiving work.
func ExampleStats() {
	st := sched.NewStats(2, 0.9, 8)
	st.Update([]int{8, 0}) // node 2 returned nothing this image
	fmt.Printf("%.2f %.2f\n", st.Speed(0), st.Speed(1))
	// Output: 8.00 0.80
}

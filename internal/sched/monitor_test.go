package sched

import (
	"testing"

	"adcnn/internal/telemetry"
)

func TestMonitorPublishesSchedulerState(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMonitor(reg)
	speeds := []float64{2, 4}

	m.ObserveSpeeds(speeds)
	if v, ok := reg.Value("adcnn_sched_speed", "1"); !ok || v != 4 {
		t.Fatalf("s_1 = %v (ok=%v), want 4", v, ok)
	}

	m.ObserveAllocation(Allocation{4, 12}, speeds, 1)
	if v, _ := reg.Value("adcnn_sched_bottleneck"); v != 3 {
		t.Fatalf("bottleneck = %v, want 3 (12 tiles / speed 4)", v)
	}
	if v, _ := reg.Value("adcnn_sched_allocations_total"); v != 1 {
		t.Fatalf("allocations = %v, want 1", v)
	}
	// The very first allocation has no predecessor: not a reallocation.
	if v, _ := reg.Value("adcnn_sched_realloc_total"); v != 0 {
		t.Fatalf("realloc after first allocation = %v, want 0", v)
	}

	// Identical split: still no reallocation.
	m.ObserveAllocation(Allocation{4, 12}, speeds, 2)
	if v, _ := reg.Value("adcnn_sched_realloc_total"); v != 0 {
		t.Fatalf("realloc after identical split = %v, want 0", v)
	}

	// The split moved tiles: one reallocation event.
	m.ObserveAllocation(Allocation{6, 10}, speeds, 3)
	if v, _ := reg.Value("adcnn_sched_realloc_total"); v != 1 {
		t.Fatalf("realloc after changed split = %v, want 1", v)
	}
	if v, _ := reg.Value("adcnn_sched_allocations_total"); v != 3 {
		t.Fatalf("allocations = %v, want 3", v)
	}
}

// TestMonitorNilIsInert mirrors the runtime contract: instrumentation
// sites carry no nil guards.
func TestMonitorNilIsInert(t *testing.T) {
	var m *Monitor
	m.ObserveSpeeds([]float64{1})
	m.ObserveAllocation(Allocation{1}, []float64{1}, 0)
}

// Package dataset generates the synthetic workloads that stand in for
// the paper's datasets (ImageNet/Caltech101 → structured-pattern images,
// CamVid → blob scenes with masks, VOC detection → per-cell patterns,
// AG-news → keyword character streams). Each generator produces a
// distribution with both local texture and global layout, so accuracy
// degrades under FDSP's tile-border zero padding and recovers under
// retraining — the property the paper's accuracy experiments probe.
package dataset

import (
	"math"
	"math/rand"

	"adcnn/internal/tensor"
)

// Set is an in-memory dataset: one sample per row of X with task labels.
// For classification/text there is one label per sample; for dense tasks
// there are LabelH*LabelW labels per sample, row-major.
type Set struct {
	X      *tensor.Tensor // [N, C, H, W]
	Labels []int
	// LabelH/LabelW describe dense label geometry (1×1 for classification).
	LabelH, LabelW int
	Classes        int
}

// Len returns the number of samples.
func (s *Set) Len() int { return s.X.Shape[0] }

// Split divides the set into a training prefix of n samples and a test
// remainder. Both halves come from the same generation run, so they share
// class patterns — use this rather than generating two sets with
// different seeds, which would produce two unrelated distributions.
func (s *Set) Split(n int) (train, test *Set) {
	if n <= 0 || n >= s.Len() {
		panic("dataset: split size out of range")
	}
	c, h, w := s.X.Shape[1], s.X.Shape[2], s.X.Shape[3]
	sample := c * h * w
	per := s.LabelH * s.LabelW
	mk := func(lo, hi int) *Set {
		return &Set{
			X:      tensorFromRange(s.X.Data[lo*sample:hi*sample], hi-lo, c, h, w),
			Labels: s.Labels[lo*per : hi*per],
			LabelH: s.LabelH, LabelW: s.LabelW,
			Classes: s.Classes,
		}
	}
	return mk(0, n), mk(n, s.Len())
}

func tensorFromRange(data []float32, shape ...int) *tensor.Tensor {
	return tensor.FromSlice(data, shape...)
}

// Batch returns samples [i, i+n) as a view-free copy plus their labels.
func (s *Set) Batch(i, n int) (*tensor.Tensor, []int) {
	if i < 0 || i+n > s.Len() {
		panic("dataset: batch out of range")
	}
	c, h, w := s.X.Shape[1], s.X.Shape[2], s.X.Shape[3]
	sample := c * h * w
	x := tensor.FromSlice(s.X.Data[i*sample:(i+n)*sample], n, c, h, w)
	per := s.LabelH * s.LabelW
	return x, s.Labels[i*per : (i+n)*per]
}

// classPattern builds a smooth class-characteristic field from a few
// random low-frequency cosine components, giving each class a distinct
// global layout that tiling disrupts.
func classPattern(rng *rand.Rand, c, h, w int) *tensor.Tensor {
	p := tensor.New(c, h, w)
	const waves = 4
	for ch := 0; ch < c; ch++ {
		for k := 0; k < waves; k++ {
			fy := (rng.Float64()*2 - 1) * 3 * math.Pi / float64(h)
			fx := (rng.Float64()*2 - 1) * 3 * math.Pi / float64(w)
			phase := rng.Float64() * 2 * math.Pi
			amp := 0.5 + rng.Float64()
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					p.Data[ch*h*w+y*w+x] += float32(amp * math.Cos(fy*float64(y)+fx*float64(x)+phase))
				}
			}
		}
	}
	return p
}

// Classification generates an image-classification set: each class has a
// fixed smooth pattern; samples add Gaussian pixel noise and a small
// random translation.
func Classification(n, classes, c, h, w int, noise float32, seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	patterns := make([]*tensor.Tensor, classes)
	for k := range patterns {
		patterns[k] = classPattern(rng, c, h, w)
	}
	s := &Set{
		X:      tensor.New(n, c, h, w),
		Labels: make([]int, n),
		LabelH: 1, LabelW: 1,
		Classes: classes,
	}
	for i := 0; i < n; i++ {
		k := rng.Intn(classes)
		s.Labels[i] = k
		dy, dx := rng.Intn(5)-2, rng.Intn(5)-2
		base := i * c * h * w
		p := patterns[k]
		for ch := 0; ch < c; ch++ {
			for y := 0; y < h; y++ {
				sy := (y + dy + h) % h
				for x := 0; x < w; x++ {
					sx := (x + dx + w) % w
					s.X.Data[base+ch*h*w+y*w+x] = p.Data[ch*h*w+sy*w+sx] + noise*float32(rng.NormFloat64())
				}
			}
		}
	}
	return s
}

// Segmentation generates blob scenes: each image contains a few
// rectangular blobs of class-specific texture on a background (class 0);
// labels mark the class of every pixel.
func Segmentation(n, classes, c, h, w int, seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	// Per-class texture: a mean level per channel plus a stripe frequency.
	type tex struct {
		mean []float32
		freq float64
	}
	texes := make([]tex, classes)
	for k := range texes {
		m := make([]float32, c)
		for ch := range m {
			m[ch] = float32(rng.NormFloat64())
		}
		texes[k] = tex{mean: m, freq: 0.5 + rng.Float64()*2}
	}
	s := &Set{
		X:      tensor.New(n, c, h, w),
		Labels: make([]int, n*h*w),
		LabelH: h, LabelW: w,
		Classes: classes,
	}
	for i := 0; i < n; i++ {
		base := i * c * h * w
		lbase := i * h * w
		paint := func(k, y0, x0, bh, bw int) {
			t := texes[k]
			for y := y0; y < y0+bh && y < h; y++ {
				for x := x0; x < x0+bw && x < w; x++ {
					s.Labels[lbase+y*w+x] = k
					for ch := 0; ch < c; ch++ {
						v := t.mean[ch] + float32(0.5*math.Sin(t.freq*float64(y+x))) +
							0.2*float32(rng.NormFloat64())
						s.X.Data[base+ch*h*w+y*w+x] = v
					}
				}
			}
		}
		paint(0, 0, 0, h, w) // background
		blobs := 2 + rng.Intn(3)
		for b := 0; b < blobs; b++ {
			k := 1 + rng.Intn(classes-1)
			bh := h/4 + rng.Intn(h/3)
			bw := w/4 + rng.Intn(w/3)
			paint(k, rng.Intn(h-bh), rng.Intn(w-bw), bh, bw)
		}
	}
	return s
}

// Cells generates the detection proxy: the image is divided into
// cellH×cellW regions and each region is filled with one class's
// texture; labels give the class per cell (the YOLO-style dense target).
func Cells(n, classes, c, h, w, cellH, cellW int, seed int64) *Set {
	if h%cellH != 0 || w%cellW != 0 {
		panic("dataset: cells must divide the image")
	}
	rng := rand.New(rand.NewSource(seed))
	patterns := make([]*tensor.Tensor, classes)
	ph, pw := h/cellH, w/cellW
	for k := range patterns {
		patterns[k] = classPattern(rng, c, ph, pw)
	}
	s := &Set{
		X:      tensor.New(n, c, h, w),
		Labels: make([]int, n*cellH*cellW),
		LabelH: cellH, LabelW: cellW,
		Classes: classes,
	}
	for i := 0; i < n; i++ {
		base := i * c * h * w
		for cy := 0; cy < cellH; cy++ {
			for cx := 0; cx < cellW; cx++ {
				k := rng.Intn(classes)
				s.Labels[i*cellH*cellW+cy*cellW+cx] = k
				p := patterns[k]
				for ch := 0; ch < c; ch++ {
					for y := 0; y < ph; y++ {
						for x := 0; x < pw; x++ {
							s.X.Data[base+ch*h*w+(cy*ph+y)*w+cx*pw+x] =
								p.Data[ch*ph*pw+y*pw+x] + 0.3*float32(rng.NormFloat64())
						}
					}
				}
			}
		}
	}
	return s
}

// Text generates character sequences (one-hot over an alphabet of size c,
// sequence along H, W=1). Each class plants its own keyword patterns at
// random positions in a random-character stream — the character-level
// classification structure CharCNN exploits.
func Text(n, classes, c, length int, seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	kwLen := 5
	keywords := make([][][]int, classes) // per class: several keywords
	for k := range keywords {
		kws := make([][]int, 3)
		for j := range kws {
			kw := make([]int, kwLen)
			for i := range kw {
				kw[i] = rng.Intn(c)
			}
			kws[j] = kw
		}
		keywords[k] = kws
	}
	s := &Set{
		X:      tensor.New(n, c, length, 1),
		Labels: make([]int, n),
		LabelH: 1, LabelW: 1,
		Classes: classes,
	}
	for i := 0; i < n; i++ {
		k := rng.Intn(classes)
		s.Labels[i] = k
		seq := make([]int, length)
		for j := range seq {
			seq[j] = rng.Intn(c)
		}
		// Plant several keyword occurrences.
		for rep := 0; rep < 4; rep++ {
			kw := keywords[k][rng.Intn(len(keywords[k]))]
			pos := rng.Intn(length - kwLen)
			copy(seq[pos:pos+kwLen], kw)
		}
		base := i * c * length
		for j, ch := range seq {
			s.X.Data[base+ch*length+j] = 1
		}
	}
	return s
}

package dataset

import (
	"testing"
)

func TestClassificationShapeAndLabels(t *testing.T) {
	s := Classification(20, 4, 3, 16, 16, 0.1, 1)
	if s.Len() != 20 {
		t.Fatalf("Len = %d", s.Len())
	}
	if len(s.Labels) != 20 {
		t.Fatalf("labels = %d", len(s.Labels))
	}
	for _, l := range s.Labels {
		if l < 0 || l >= 4 {
			t.Fatalf("label %d out of range", l)
		}
	}
	x, labels := s.Batch(5, 3)
	if x.Shape[0] != 3 || len(labels) != 3 {
		t.Fatalf("batch shapes %v %d", x.Shape, len(labels))
	}
}

func TestClassificationDeterministic(t *testing.T) {
	a := Classification(5, 3, 1, 8, 8, 0.1, 42)
	b := Classification(5, 3, 1, 8, 8, 0.1, 42)
	if !a.X.Equal(b.X, 0) {
		t.Fatal("same seed must reproduce data")
	}
	c := Classification(5, 3, 1, 8, 8, 0.1, 43)
	if a.X.Equal(c.X, 0) {
		t.Fatal("different seeds should differ")
	}
}

func TestClassificationClassesSeparable(t *testing.T) {
	// Nearest-class-pattern classification on clean-ish data should beat
	// chance by a wide margin: verify per-class means differ.
	s := Classification(100, 2, 1, 8, 8, 0.05, 7)
	var m0, m1 float64
	var n0, n1 int
	sample := 8 * 8
	for i := 0; i < s.Len(); i++ {
		var sum float64
		for _, v := range s.X.Data[i*sample : (i+1)*sample] {
			sum += float64(v)
		}
		if s.Labels[i] == 0 {
			m0 += sum
			n0++
		} else {
			m1 += sum
			n1++
		}
	}
	if n0 == 0 || n1 == 0 {
		t.Fatal("degenerate class balance")
	}
	// The class patterns are random fields, so their means differ with
	// overwhelming probability for this seed.
	if m0/float64(n0) == m1/float64(n1) {
		t.Fatal("class distributions identical")
	}
}

func TestBatchOutOfRangePanics(t *testing.T) {
	s := Classification(4, 2, 1, 8, 8, 0.1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Batch(3, 2)
}

func TestSegmentationLabelsPerPixel(t *testing.T) {
	s := Segmentation(6, 4, 3, 16, 16, 2)
	if len(s.Labels) != 6*16*16 {
		t.Fatalf("labels = %d", len(s.Labels))
	}
	if s.LabelH != 16 || s.LabelW != 16 {
		t.Fatal("label geometry")
	}
	seen := map[int]bool{}
	for _, l := range s.Labels {
		if l < 0 || l >= 4 {
			t.Fatalf("label %d", l)
		}
		seen[l] = true
	}
	if len(seen) < 2 {
		t.Fatal("segmentation must contain multiple classes")
	}
	// background should be present
	if !seen[0] {
		t.Fatal("no background pixels")
	}
}

func TestCellsGeometry(t *testing.T) {
	s := Cells(5, 3, 3, 32, 32, 8, 8, 3)
	if len(s.Labels) != 5*8*8 {
		t.Fatalf("labels = %d", len(s.Labels))
	}
	x, labels := s.Batch(0, 2)
	if x.Shape[2] != 32 || len(labels) != 2*64 {
		t.Fatal("batch geometry")
	}
}

func TestCellsIndivisiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Cells(1, 2, 1, 30, 30, 8, 8, 1)
}

func TestTextOneHot(t *testing.T) {
	s := Text(10, 4, 16, 64, 5)
	if s.X.Shape[1] != 16 || s.X.Shape[2] != 64 || s.X.Shape[3] != 1 {
		t.Fatalf("shape %v", s.X.Shape)
	}
	// Every position must have exactly one hot channel.
	for i := 0; i < s.Len(); i++ {
		for pos := 0; pos < 64; pos++ {
			count := 0
			for ch := 0; ch < 16; ch++ {
				if s.X.At(i, ch, pos, 0) == 1 {
					count++
				} else if s.X.At(i, ch, pos, 0) != 0 {
					t.Fatal("non-binary value in one-hot stream")
				}
			}
			if count != 1 {
				t.Fatalf("sample %d pos %d has %d hot channels", i, pos, count)
			}
		}
	}
}

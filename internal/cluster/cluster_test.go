package cluster

import (
	"testing"
	"time"

	"adcnn/internal/perfmodel"
)

func TestThrottleScalesComputeTime(t *testing.T) {
	d := NewDevice(1, perfmodel.RaspberryPi())
	full, ok := d.ComputeTime(1e9, 1e6)
	if !ok {
		t.Fatal("healthy device must compute")
	}
	d.SetThrottle(0.5)
	half, _ := d.ComputeTime(1e9, 1e6)
	if half < full*19/10 || half > full*21/10 {
		t.Fatalf("50%% throttle: %v vs full %v", half, full)
	}
}

func TestThrottleClamped(t *testing.T) {
	d := NewDevice(1, perfmodel.RaspberryPi())
	d.SetThrottle(2)
	if d.Throttle() != 1 {
		t.Fatal("throttle must clamp to 1")
	}
	d.SetThrottle(-1)
	if d.Throttle() != 0 {
		t.Fatal("throttle must clamp to 0")
	}
	if _, ok := d.ComputeTime(1, 0); ok {
		t.Fatal("zero-speed device cannot compute")
	}
}

func TestFailRestore(t *testing.T) {
	d := NewDevice(1, perfmodel.RaspberryPi())
	d.Fail()
	if !d.Failed() || d.EffectiveFLOPS() != 0 {
		t.Fatal("failed device must have zero rate")
	}
	d.Restore()
	if d.Failed() || d.EffectiveFLOPS() != d.Model.FLOPS {
		t.Fatal("restore must return full speed")
	}
}

func TestMemoryAccounting(t *testing.T) {
	d := NewDevice(1, perfmodel.RaspberryPi())
	d.Alloc(100)
	d.Alloc(200)
	d.Free(150)
	d.Alloc(50)
	if d.PeakMem() != 300 {
		t.Fatalf("peak = %d, want 300", d.PeakMem())
	}
	d.Free(10000) // over-free clamps at zero
	d.Alloc(10)
	if d.PeakMem() != 300 {
		t.Fatal("peak must not move after clamped free")
	}
}

func TestBusyAndEnergy(t *testing.T) {
	d := NewDevice(1, perfmodel.RaspberryPi())
	d.RecordBusy(time.Second)
	e := d.Energy(perfmodel.PiEnergy(), 2*time.Second)
	want := perfmodel.PiEnergy().ActiveWatts + perfmodel.PiEnergy().IdleWatts
	if e < want-1e-9 || e > want+1e-9 {
		t.Fatalf("energy = %v, want %v", e, want)
	}
	d.ResetAccounting()
	if d.BusyTime() != 0 || d.PeakMem() != 0 {
		t.Fatal("reset failed")
	}
}

func TestPiClusterIDs(t *testing.T) {
	ds := NewPiCluster(8)
	if len(ds) != 8 || ds[0].ID != 1 || ds[7].ID != 8 {
		t.Fatal("cluster IDs must be 1..8")
	}
}

func TestApplyEvents(t *testing.T) {
	ds := NewPiCluster(4)
	events := []ThrottleEvent{
		{Image: 25, DeviceID: 3, Fraction: 0.45},
		{Image: 25, DeviceID: 4, Fraction: 0},
		{Image: 30, DeviceID: 1, Fraction: 0.5},
	}
	ApplyEvents(ds, events, 25)
	if ds[2].Throttle() != 0.45 {
		t.Fatal("device 3 not throttled")
	}
	if !ds[3].Failed() {
		t.Fatal("device 4 not failed")
	}
	if ds[0].Throttle() != 1 {
		t.Fatal("device 1 changed too early")
	}
}

// Package cluster models the edge-device cluster: per-node compute rate
// with runtime throttling (the paper degrades nodes with CPUlimit),
// failure injection, storage capacity, and busy-time/memory accounting
// for the energy and footprint measurements of Figure 13.
package cluster

import (
	"fmt"
	"time"

	"adcnn/internal/perfmodel"
)

// Device is one simulated edge node.
type Device struct {
	ID    int
	Name  string
	Model perfmodel.DeviceModel

	throttle float64 // fraction of full speed currently available
	failed   bool

	// Capacity is the storage budget H_k for input tiles (bytes);
	// 0 means unlimited.
	Capacity int64

	busy    time.Duration
	curMem  int64
	peakMem int64
}

// NewDevice creates a full-speed device.
func NewDevice(id int, model perfmodel.DeviceModel) *Device {
	return &Device{ID: id, Name: fmt.Sprintf("%s-%d", model.Name, id), Model: model, throttle: 1}
}

// NewPiCluster creates n identical Raspberry Pi devices (IDs 1..n),
// matching the paper's testbed of identical Conv nodes.
func NewPiCluster(n int) []*Device {
	out := make([]*Device, n)
	for i := range out {
		out[i] = NewDevice(i+1, perfmodel.RaspberryPi())
	}
	return out
}

// SetThrottle limits the device to frac of its full speed (CPUlimit
// semantics: frac=0.45 after a 55% reduction). frac is clamped to [0,1];
// 0 behaves like a failure.
func (d *Device) SetThrottle(frac float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	d.throttle = frac
}

// Throttle returns the current speed fraction.
func (d *Device) Throttle() float64 { return d.throttle }

// Fail marks the device as crashed; ComputeTime becomes unavailable.
func (d *Device) Fail() { d.failed = true }

// Restore brings a failed device back at full speed.
func (d *Device) Restore() { d.failed = false; d.throttle = 1 }

// Failed reports the failure flag.
func (d *Device) Failed() bool { return d.failed }

// EffectiveFLOPS returns the current effective compute rate.
func (d *Device) EffectiveFLOPS() float64 {
	if d.failed {
		return 0
	}
	return d.Model.FLOPS * d.throttle
}

// ComputeTime returns how long a workload (compute + feature-map
// traffic) takes at the current throttle, and false when the device
// cannot compute at all. Throttling slows both terms: CPUlimit starves
// the process of time slices, stretching memory-bound phases equally.
func (d *Device) ComputeTime(flops, memBytes int64) (time.Duration, bool) {
	if d.failed || d.throttle <= 0 {
		return 0, false
	}
	base := d.Model.Time(flops, memBytes)
	return time.Duration(float64(base) / d.throttle), true
}

// RecordBusy accumulates busy time for the energy model.
func (d *Device) RecordBusy(t time.Duration) { d.busy += t }

// BusyTime returns the accumulated busy time.
func (d *Device) BusyTime() time.Duration { return d.busy }

// Alloc tracks a transient memory allocation (tiles + activations).
func (d *Device) Alloc(bytes int64) {
	d.curMem += bytes
	if d.curMem > d.peakMem {
		d.peakMem = d.curMem
	}
}

// Free releases a transient allocation.
func (d *Device) Free(bytes int64) {
	d.curMem -= bytes
	if d.curMem < 0 {
		d.curMem = 0
	}
}

// PeakMem returns the high-water memory mark.
func (d *Device) PeakMem() int64 { return d.peakMem }

// ResetAccounting clears busy-time and memory statistics (not throttle).
func (d *Device) ResetAccounting() {
	d.busy = 0
	d.curMem = 0
	d.peakMem = 0
}

// Energy returns the joules consumed over a total elapsed window.
func (d *Device) Energy(model perfmodel.EnergyModel, elapsed time.Duration) float64 {
	return model.Energy(d.busy, elapsed)
}

// ThrottleEvent schedules a speed change before processing image index
// Image (used to reproduce Figure 15's mid-run degradation).
type ThrottleEvent struct {
	Image    int
	DeviceID int
	Fraction float64 // new speed fraction; 0 = failure
}

// ApplyEvents applies all events scheduled for the given image index.
func ApplyEvents(devices []*Device, events []ThrottleEvent, image int) {
	for _, ev := range events {
		if ev.Image != image {
			continue
		}
		for _, d := range devices {
			if d.ID == ev.DeviceID {
				if ev.Fraction <= 0 {
					d.Fail()
				} else {
					d.SetThrottle(ev.Fraction)
				}
			}
		}
	}
}

// Package parallel provides the small data-parallel helpers the compute
// kernels use: a parallel for-loop over an index range with bounded
// workers. Stdlib-only (sync + runtime).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n), spreading iterations over up to
// GOMAXPROCS goroutines. It returns when all iterations finish. For tiny
// n it runs inline to avoid goroutine overhead. fn must be safe to call
// concurrently for distinct i.
func For(n int, fn func(i int)) {
	ForWorkers(n, runtime.GOMAXPROCS(0), fn)
}

// ForChunked runs fn(lo, hi) over disjoint index ranges that cover
// [0, n), each at most chunk wide. Handing workers a range instead of a
// single index amortises the atomic work-stealing counter over chunk
// iterations, which matters when the loop body is tiny (a few hundred
// nanoseconds) — the GEMM row scheduler is the canonical caller. A
// non-positive chunk defaults to ceil(n/GOMAXPROCS). fn must be safe to
// call concurrently for disjoint ranges.
func ForChunked(n, chunk int, fn func(lo, hi int)) {
	ForChunkedWorkers(n, chunk, runtime.GOMAXPROCS(0), fn)
}

// ForChunkedWorkers is ForChunked with an explicit worker bound.
func ForChunkedWorkers(n, chunk, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		if workers < 1 {
			workers = 1
		}
		chunk = (n + workers - 1) / workers
	}
	nChunks := (n + chunk - 1) / chunk
	if workers > nChunks {
		workers = nChunks
	}
	if workers <= 1 || nChunks == 1 {
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				ci := int(atomic.AddInt64(&next, 1))
				if ci >= nChunks {
					return
				}
				lo := ci * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ForWorkers is For with an explicit worker bound.
func ForWorkers(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Package parallel provides the small data-parallel helpers the compute
// kernels use: a parallel for-loop over an index range with bounded
// workers. Stdlib-only (sync + runtime).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n), spreading iterations over up to
// GOMAXPROCS goroutines. It returns when all iterations finish. For tiny
// n it runs inline to avoid goroutine overhead. fn must be safe to call
// concurrently for distinct i.
func For(n int, fn func(i int)) {
	ForWorkers(n, runtime.GOMAXPROCS(0), fn)
}

// ForWorkers is For with an explicit worker bound.
func ForWorkers(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

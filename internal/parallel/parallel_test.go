package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	f := func(seed int64) bool {
		n := int(uint64(seed) % 500)
		counts := make([]int64, n)
		For(n, func(i int) { atomic.AddInt64(&counts[i], 1) })
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, func(int) { called = true })
	For(-3, func(int) { called = true })
	if called {
		t.Fatal("fn must not run for n <= 0")
	}
}

func TestForWorkersSingle(t *testing.T) {
	order := make([]int, 0, 5)
	ForWorkers(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker must run in order: %v", order)
		}
	}
}

func TestForWorkersMoreWorkersThanWork(t *testing.T) {
	var sum int64
	ForWorkers(3, 64, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 3 {
		t.Fatalf("sum = %d, want 3", sum)
	}
}

func TestForChunkedCoversEveryIndexOnce(t *testing.T) {
	f := func(seed int64) bool {
		n := int(uint64(seed) % 500)
		chunk := 1 + int(uint64(seed)%17)
		counts := make([]int64, n)
		ForChunked(n, chunk, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad range [%d,%d) for n=%d", lo, hi, n)
			}
			if hi-lo > chunk {
				t.Errorf("range [%d,%d) wider than chunk %d", lo, hi, chunk)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt64(&counts[i], 1)
			}
		})
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForChunkedZeroAndNegative(t *testing.T) {
	called := false
	ForChunked(0, 4, func(int, int) { called = true })
	ForChunked(-7, 4, func(int, int) { called = true })
	if called {
		t.Fatal("fn must not run for n <= 0")
	}
}

func TestForChunkedDefaultChunk(t *testing.T) {
	// chunk <= 0 defaults to an even split; every index still covered once.
	counts := make([]int64, 1000)
	ForChunked(1000, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt64(&counts[i], 1)
		}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func TestForChunkedWorkersConcurrent(t *testing.T) {
	// Explicit worker count so goroutines actually spawn even on a
	// single-CPU box; the race detector then sees the concurrent paths.
	counts := make([]int64, 333)
	ForChunkedWorkers(len(counts), 7, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt64(&counts[i], 1)
		}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func TestForChunkedWorkersSingleInOrder(t *testing.T) {
	var ranges [][2]int
	ForChunkedWorkers(10, 3, 1, func(lo, hi int) { ranges = append(ranges, [2]int{lo, hi}) })
	want := [][2]int{{0, 3}, {3, 6}, {6, 9}, {9, 10}}
	if len(ranges) != len(want) {
		t.Fatalf("ranges = %v, want %v", ranges, want)
	}
	for i, r := range ranges {
		if r != want[i] {
			t.Fatalf("ranges = %v, want %v", ranges, want)
		}
	}
}

package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	f := func(seed int64) bool {
		n := int(uint64(seed) % 500)
		counts := make([]int64, n)
		For(n, func(i int) { atomic.AddInt64(&counts[i], 1) })
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, func(int) { called = true })
	For(-3, func(int) { called = true })
	if called {
		t.Fatal("fn must not run for n <= 0")
	}
}

func TestForWorkersSingle(t *testing.T) {
	order := make([]int, 0, 5)
	ForWorkers(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker must run in order: %v", order)
		}
	}
}

func TestForWorkersMoreWorkersThanWork(t *testing.T) {
	var sum int64
	ForWorkers(3, 64, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 3 {
		t.Fatalf("sum = %d, want 3", sum)
	}
}

// Package cliutil provides the small helpers the adcnn command-line
// tools share: resolving sim-scale model configs by short name and
// parsing partition grids.
package cliutil

import (
	"fmt"

	"adcnn/internal/fdsp"
	"adcnn/internal/models"
)

// shortNames maps CLI model names to sim-scale config names.
var shortNames = map[string]string{
	"vgg-sim":     "VGG16-sim",
	"resnet-sim":  "ResNet34-sim",
	"yolo-sim":    "YOLO-sim",
	"fcn-sim":     "FCN-sim",
	"charcnn-sim": "CharCNN-sim",
}

// SimConfigByName resolves a CLI short name to its sim-scale config.
func SimConfigByName(name string) (models.Config, error) {
	want, ok := shortNames[name]
	if !ok {
		return models.Config{}, fmt.Errorf("unknown model %q (want vgg-sim|resnet-sim|yolo-sim|fcn-sim|charcnn-sim)", name)
	}
	for _, cfg := range models.SimScale() {
		if cfg.Name == want {
			return cfg, nil
		}
	}
	return models.Config{}, fmt.Errorf("config %q missing from zoo", want)
}

// FullConfigByName resolves a full-scale model by its paper name.
func FullConfigByName(name string) (models.Config, error) {
	for _, cfg := range models.FullScale() {
		if cfg.Name == name {
			return cfg, nil
		}
	}
	return models.Config{}, fmt.Errorf("unknown full-scale model %q", name)
}

// ParseGrid parses "RxC" partition syntax.
func ParseGrid(s string) (fdsp.Grid, error) {
	var g fdsp.Grid
	if _, err := fmt.Sscanf(s, "%dx%d", &g.Rows, &g.Cols); err != nil {
		return g, fmt.Errorf("bad grid %q (want e.g. 4x4): %w", s, err)
	}
	if err := g.Validate(); err != nil {
		return g, err
	}
	return g, nil
}

package cliutil

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
)

// LogFlags holds the shared -log-level / -log-format flag values. Every
// daemon registers the same pair so operators configure logging the same
// way across adcnn-central, adcnn-conv, and adcnn-sim.
type LogFlags struct {
	Level  string
	Format string
}

// RegisterLogFlags adds -log-level and -log-format to fs (typically
// flag.CommandLine). Call before flag.Parse.
func RegisterLogFlags(fs *flag.FlagSet) *LogFlags {
	lf := &LogFlags{}
	fs.StringVar(&lf.Level, "log-level", "info", "log level: debug|info|warn|error")
	fs.StringVar(&lf.Format, "log-format", "text", "log output format: text|json")
	return lf
}

// Logger builds the slog.Logger the flags describe, tags every record
// with the component name, and installs it as the process default so
// library code using slog.Default inherits it.
func (lf *LogFlags) Logger(component string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(lf.Level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug|info|warn|error)", lf.Level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(lf.Format) {
	case "text":
		h = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text|json)", lf.Format)
	}
	l := slog.New(h).With("component", component)
	slog.SetDefault(l)
	return l, nil
}

// MustLogger is Logger for main functions: flag errors are usage errors,
// so it prints to stderr and exits non-zero.
func MustLogger(lf *LogFlags, component string) *slog.Logger {
	l, err := lf.Logger(component)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return l
}

package cliutil

import "testing"

func TestSimConfigByName(t *testing.T) {
	for short, want := range map[string]string{
		"vgg-sim": "VGG16-sim", "resnet-sim": "ResNet34-sim",
		"yolo-sim": "YOLO-sim", "fcn-sim": "FCN-sim", "charcnn-sim": "CharCNN-sim",
	} {
		cfg, err := SimConfigByName(short)
		if err != nil {
			t.Fatalf("%s: %v", short, err)
		}
		if cfg.Name != want {
			t.Fatalf("%s resolved to %s, want %s", short, cfg.Name, want)
		}
	}
	if _, err := SimConfigByName("bogus"); err == nil {
		t.Fatal("unknown name must error")
	}
}

func TestFullConfigByName(t *testing.T) {
	cfg, err := FullConfigByName("VGG16")
	if err != nil || cfg.Name != "VGG16" {
		t.Fatalf("cfg %v err %v", cfg.Name, err)
	}
	if _, err := FullConfigByName("AlexNet"); err == nil {
		t.Fatal("unknown full model must error")
	}
}

func TestParseGrid(t *testing.T) {
	g, err := ParseGrid("4x8")
	if err != nil || g.Rows != 4 || g.Cols != 8 {
		t.Fatalf("g %v err %v", g, err)
	}
	for _, bad := range []string{"", "4", "4x", "x8", "0x4", "axb"} {
		if _, err := ParseGrid(bad); err == nil {
			t.Fatalf("%q must fail", bad)
		}
	}
}

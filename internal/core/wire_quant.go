package core

// Quantized tensor encoding for the int8 operating mode's uplink: a task
// tile travels as uint8 affine levels plus the (scale, zero-point) pair
// that defines them — 4× smaller than the float32 encoding, and directly
// consumable by the Conv worker's int8 GEMM without a dequant→f32→requant
// round trip on the boundary tensor.
//
// Layout: rank(1) | dims(4·rank, u32 LE) | scale(4, f32 LE) | zero(1) |
// levels(Π dims). A frame carrying this encoding sets flagQuantized.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"adcnn/internal/quant"
	"adcnn/internal/tensor"
)

// QuantTile is a decoded quantized tensor payload: shape, the affine that
// maps levels back to values (x ≈ Scale·(q − Zero)), and the raw levels.
// Levels is backed by a pooled wire buffer when decoded with
// DecodeQuantTensorInto — call Release (or keep reusing the struct) when
// done.
type QuantTile struct {
	Shape  []int
	Affine quant.Affine
	Levels []uint8
}

// Release returns the levels storage to the wire buffer pool.
func (q *QuantTile) Release() {
	tensor.PutBytes(q.Levels)
	q.Levels = nil
}

// QuantTensorWireSize is the exact byte length AppendQuantTensor produces
// for t, so callers can pre-size a pooled buffer.
func QuantTensorWireSize(t *tensor.Tensor) int { return 1 + 4*t.Rank() + 5 + t.Len() }

// AppendQuantTensor quantizes t with af and appends the encoding onto
// dst, returning the extended slice. When dst has QuantTensorWireSize
// spare capacity no allocation occurs.
func AppendQuantTensor(dst []byte, t *tensor.Tensor, af quant.Affine) []byte {
	off := len(dst)
	need := QuantTensorWireSize(t)
	if cap(dst) < off+need {
		grown := make([]byte, off, off+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+need]
	dst[off] = byte(t.Rank())
	p := off + 1
	for _, d := range t.Shape {
		binary.LittleEndian.PutUint32(dst[p:], uint32(d))
		p += 4
	}
	binary.LittleEndian.PutUint32(dst[p:], math.Float32bits(af.Scale))
	p += 4
	dst[p] = af.Zero
	p++
	tensor.QuantizeAffineSlice(dst[p:], t.Data, af.InvScale(), af.Zero)
	return dst
}

// DecodeQuantTensorInto decodes an AppendQuantTensor payload into dst,
// reusing the capacity of dst.Shape and dst.Levels (a too-small levels
// buffer is swapped for one from the wire buffer pool), so a recycled
// destination decodes with zero steady-state allocations. The payload
// bytes are fully copied out — the caller may release the wire buffer
// immediately after this returns.
func DecodeQuantTensorInto(dst *QuantTile, data []byte) error {
	if len(data) < 1 {
		return errors.New("core: empty quantized tensor payload")
	}
	rank := int(data[0])
	off := 1
	if len(data) < off+4*rank+5 {
		return errors.New("core: truncated quantized tensor header")
	}
	dst.Shape = dst.Shape[:0]
	vol := 1
	for i := 0; i < rank; i++ {
		d := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		dst.Shape = append(dst.Shape, d)
		vol *= d
		if vol < 0 || vol > maxFrame {
			return fmt.Errorf("core: quantized tensor volume overflows frame limit")
		}
	}
	scale := math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	zero := data[off]
	off++
	if scale <= 0 || math.IsInf(float64(scale), 0) || math.IsNaN(float64(scale)) {
		return fmt.Errorf("core: quantized tensor scale %g out of range", scale)
	}
	if len(data) != off+vol {
		return fmt.Errorf("core: quantized tensor payload %d bytes, want %d", len(data), off+vol)
	}
	dst.Affine = quant.Affine{Scale: scale, Zero: zero}
	if cap(dst.Levels) < vol {
		tensor.PutBytes(dst.Levels)
		dst.Levels = tensor.GetBytes(vol)
	}
	dst.Levels = dst.Levels[:vol]
	copy(dst.Levels, data[off:])
	return nil
}

// DequantizeQuantTensorInto decodes an AppendQuantTensor payload
// straight into a float32 tensor: one fused pass dequantizes the wire
// levels into pooled dst storage, with no intermediate QuantTile and no
// levels copy — the downlink counterpart of the worker's levels-native
// uplink. The payload is fully consumed before returning, so the caller
// may release the wire buffer immediately. Same validation as
// DecodeQuantTensorInto.
func DequantizeQuantTensorInto(dst *tensor.Tensor, data []byte) error {
	if len(data) < 1 {
		return errors.New("core: empty quantized tensor payload")
	}
	rank := int(data[0])
	off := 1
	if len(data) < off+4*rank+5 {
		return errors.New("core: truncated quantized tensor header")
	}
	dst.Shape = dst.Shape[:0]
	vol := 1
	for i := 0; i < rank; i++ {
		d := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		dst.Shape = append(dst.Shape, d)
		vol *= d
		if vol < 0 || vol > maxFrame {
			return fmt.Errorf("core: quantized tensor volume overflows frame limit")
		}
	}
	scale := math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	zero := data[off]
	off++
	if scale <= 0 || math.IsInf(float64(scale), 0) || math.IsNaN(float64(scale)) {
		return fmt.Errorf("core: quantized tensor scale %g out of range", scale)
	}
	if len(data) != off+vol {
		return fmt.Errorf("core: quantized tensor payload %d bytes, want %d", len(data), off+vol)
	}
	if cap(dst.Data) < vol {
		tensor.PutBuf(dst.Data)
		dst.Data = tensor.GetBuf(vol)
	}
	dst.Data = dst.Data[:vol]
	tensor.DequantizeAffineSlice(dst.Data, data[off:], scale, zero)
	return nil
}

// DequantizeInto expands the tile to float32 into dst, reshaping it in
// place with pooled storage like DecodeTensorInto — the fallback for a
// worker whose model cannot consume levels directly.
func (q *QuantTile) DequantizeInto(dst *tensor.Tensor) {
	vol := len(q.Levels)
	dst.Shape = append(dst.Shape[:0], q.Shape...)
	if cap(dst.Data) < vol {
		tensor.PutBuf(dst.Data)
		dst.Data = tensor.GetBuf(vol)
	}
	dst.Data = dst.Data[:vol]
	tensor.DequantizeAffineSlice(dst.Data, q.Levels, q.Affine.Scale, q.Affine.Zero)
}

package core

import (
	"sync"
	"time"

	"adcnn/internal/telemetry"
)

// Link-estimator tuning. The transfer-rate EWMAs live in the
// seconds-per-byte domain, not bytes-per-second: a bandwidth collapse
// multiplies seconds-per-byte, and an EWMA converges toward a large
// new value in a couple of samples where the reciprocal bytes-per-second
// EWMA would crawl down from a huge healthy baseline for dozens. The
// alphas are asymmetric for the same reason the health tracker's are:
// react to a slowdown fast (attack), forgive recoveries a little more
// slowly (decay) so one lucky transfer does not erase a collapse.
const (
	linkAttackAlpha = 0.5                  // sample says the link got slower
	linkDecayAlpha  = 0.2                  // sample says the link got faster
	linkStale       = 3 * time.Second      // no sample this long → estimate unknown
	linkMinSamples  = 3                    // samples before an estimate feeds dispatch
	linkMinDur      = 2 * time.Microsecond // duration floor, avoids loopback ∞ bps
)

// linkState is one session's view of the network path to its Conv node:
// EWMA'd uplink/downlink transfer rates estimated passively from tile
// phase timings, plus the probe counter for the active RTT exchange
// (the RTT estimate itself lives in the session's OffsetEstimator — the
// probe frames exist to keep it fresh when no tiles are flowing).
type linkState struct {
	mu      sync.Mutex
	upSpb   float64 // uplink seconds-per-byte EWMA (0 = no estimate)
	downSpb float64 // downlink seconds-per-byte EWMA
	upAt    int64   // central mono ns of the last uplink sample
	downAt  int64
	upN     int // samples folded in since the last reset
	downN   int
	probes  uint64 // probe echoes received this session

	rttGauge  *telemetry.Gauge   // nil disables
	upGauge   *telemetry.Gauge   // nil disables
	downGauge *telemetry.Gauge   // nil disables
	probeCt   *telemetry.Counter // nil disables
}

// ewmaSpb folds one seconds-per-byte sample into the running estimate
// with the attack/decay asymmetry described above.
func ewmaSpb(cur, sample float64) float64 {
	if cur <= 0 {
		return sample
	}
	a := linkDecayAlpha
	if sample > cur {
		a = linkAttackAlpha
	}
	return cur + a*(sample-cur)
}

// observe folds one tile exchange's transfer measurements in: bytes on
// the wire in each direction and the phase durations (central-clock ns)
// the bytes took. Zero or negative inputs on a direction skip it — the
// phase decomposition yields no uplink/downlink split without a timing
// record, and a zero-byte frame carries no rate information.
func (l *linkState) observe(upBytes, downBytes, upNs, downNs int64) {
	now := monoNow()
	l.mu.Lock()
	if upBytes > 0 && upNs > 0 {
		d := upNs
		if d < int64(linkMinDur) {
			d = int64(linkMinDur)
		}
		l.upSpb = ewmaSpb(l.upSpb, float64(d)/1e9/float64(upBytes))
		l.upAt = now
		l.upN++
	}
	if downBytes > 0 && downNs > 0 {
		d := downNs
		if d < int64(linkMinDur) {
			d = int64(linkMinDur)
		}
		l.downSpb = ewmaSpb(l.downSpb, float64(d)/1e9/float64(downBytes))
		l.downAt = now
		l.downN++
	}
	up, down := l.ratesLocked(now)
	l.mu.Unlock()
	if l.upGauge != nil {
		l.upGauge.Set(up)
	}
	if l.downGauge != nil {
		l.downGauge.Set(down)
	}
}

// observeProbe counts a probe echo and publishes the estimator's RTT.
func (l *linkState) observeProbe(rttNs int64) {
	l.mu.Lock()
	l.probes++
	l.mu.Unlock()
	if l.rttGauge != nil && rttNs > 0 {
		l.rttGauge.Set(float64(rttNs) / 1e9)
	}
	if l.probeCt != nil {
		l.probeCt.Inc()
	}
}

// ratesLocked converts the estimates to bytes/sec, returning 0 for a
// direction whose estimate is missing, unconverged, or stale. Staleness
// matters for recovery: after a throttle lifts, the collapsed estimate
// would otherwise pin the node's dispatch cost high forever — expiring
// it lets tiles return, which produces fresh samples at the true rate.
func (l *linkState) ratesLocked(now int64) (upBps, downBps float64) {
	if l.upSpb > 0 && l.upN >= linkMinSamples && now-l.upAt <= int64(linkStale) {
		upBps = 1 / l.upSpb
	}
	if l.downSpb > 0 && l.downN >= linkMinSamples && now-l.downAt <= int64(linkStale) {
		downBps = 1 / l.downSpb
	}
	return upBps, downBps
}

// rates is the exported view: current uplink/downlink bytes-per-second
// estimates, 0 when unknown.
func (l *linkState) rates() (upBps, downBps float64) {
	now := monoNow()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ratesLocked(now)
}

// snapshot reports the debug view: rates plus sample/probe counts.
func (l *linkState) snapshot() (upBps, downBps float64, samples int, probes uint64) {
	now := monoNow()
	l.mu.Lock()
	defer l.mu.Unlock()
	upBps, downBps = l.ratesLocked(now)
	return upBps, downBps, l.upN + l.downN, l.probes
}

// reset discards the transfer estimates (a reconnected node may be on a
// different path); the cumulative probe count survives.
func (l *linkState) reset() {
	l.mu.Lock()
	l.upSpb, l.downSpb = 0, 0
	l.upAt, l.downAt = 0, 0
	l.upN, l.downN = 0, 0
	l.mu.Unlock()
}

package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/tensor"
)

func TestTensorWireRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shape := []int{1 + rng.Intn(3), 1 + rng.Intn(4), 1 + rng.Intn(5)}
		x := tensor.New(shape...)
		x.RandN(rng, 1)
		y, err := DecodeTensor(EncodeTensor(x))
		return err == nil && y.Equal(x, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTensorRejectsCorrupt(t *testing.T) {
	x := tensor.New(2, 3)
	enc := EncodeTensor(x)
	if _, err := DecodeTensor(nil); err == nil {
		t.Fatal("nil payload must fail")
	}
	if _, err := DecodeTensor(enc[:5]); err == nil {
		t.Fatal("truncated payload must fail")
	}
	if _, err := DecodeTensor(append(enc, 0)); err == nil {
		t.Fatal("oversized payload must fail")
	}
}

func TestMessageFramingRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Message{Kind: KindResult, ImageID: 7, TileID: 42, NodeID: 3,
		Compressed: true, Payload: []byte{1, 2, 3, 4, 5}}
	if err := WriteMessage(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.ImageID != 7 || out.TileID != 42 ||
		out.NodeID != 3 || !out.Compressed || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestMessageFramingRejectsBadLength(t *testing.T) {
	if _, err := ReadMessage(bytes.NewReader([]byte{protoMagic, ProtoVersion, 0xff, 0xff, 0xff, 0xff})); err == nil {
		t.Fatal("absurd frame length must fail")
	}
	if _, err := ReadMessage(bytes.NewReader([]byte{protoMagic, ProtoVersion, 1, 0, 0, 0, 1})); err == nil {
		t.Fatal("too-short frame must fail")
	}
}

func TestMessageFramingRejectsBadMagic(t *testing.T) {
	// An HTTP client hitting a Conv port, say: first byte is 'G'.
	_, err := ReadMessage(bytes.NewReader([]byte("GET / HTTP/1.1\r\n")))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic must fail with ErrBadMagic, got %v", err)
	}
}

func TestMessageFramingRejectsVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Kind: KindTask, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	frame[1] = ProtoVersion + 1 // a future protocol revision
	_, err := ReadMessage(bytes.NewReader(frame))
	if !errors.Is(err, ErrProtoVersion) {
		t.Fatalf("version mismatch must fail with ErrProtoVersion, got %v", err)
	}
	ours := fmt.Sprintf("v%d", ProtoVersion)
	theirs := fmt.Sprintf("v%d", ProtoVersion+1)
	if !strings.Contains(err.Error(), ours) || !strings.Contains(err.Error(), theirs) {
		t.Fatalf("version error must name both revisions: %v", err)
	}
}

func TestCentralRejectsV1Peer(t *testing.T) {
	// A v1 frame: magic, version 1, then the old 14-byte body header. A
	// current build must reject it before trusting any length, with an
	// error naming both revisions so the operator knows which side to
	// upgrade.
	v1 := []byte{protoMagic, 1, 14, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	_, err := ReadMessage(bytes.NewReader(v1))
	if !errors.Is(err, ErrProtoVersion) {
		t.Fatalf("v1 peer must fail with ErrProtoVersion, got %v", err)
	}
	ours := fmt.Sprintf("v%d", ProtoVersion)
	if !strings.Contains(err.Error(), "v1") || !strings.Contains(err.Error(), ours) {
		t.Fatalf("error must name both v1 and the current revision: %v", err)
	}
}

func TestMessageTraceContextAndTimingRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Message{
		Kind: KindResult, ImageID: 3, TileID: 9, NodeID: 1, Compressed: true,
		TraceID: 0xdeadbeefcafe0001, SpanID: 0x42,
		Timing: &ConvTiming{
			RecvNs: 100, DecodeNs: 150, ComputeStartNs: 200,
			ComputeEndNs: 900, EncodeNs: 950, SendNs: 1000,
		},
		Payload: []byte{7, 8, 9},
	}
	if err := WriteMessage(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.TraceID != in.TraceID || out.SpanID != in.SpanID {
		t.Fatalf("trace context lost: %+v", out)
	}
	if out.Timing == nil || *out.Timing != *in.Timing {
		t.Fatalf("timing record lost: %+v", out.Timing)
	}
	if !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("payload corrupted after timing record: %v", out.Payload)
	}
	// Truncated timing record must error, not panic or misparse.
	var short bytes.Buffer
	if err := WriteMessage(&short, in); err != nil {
		t.Fatal(err)
	}
	frame := short.Bytes()
	cut := frame[:len(frame)-len(in.Payload)-8] // drop payload + tail of timing
	binary.LittleEndian.PutUint32(cut[2:], uint32(len(cut)-6))
	if _, err := ReadMessage(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated timing record must fail")
	}
}

func TestPipeConnDelivers(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	msg := &Message{Kind: KindTask, ImageID: 1, Payload: []byte("x")}
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil || got.ImageID != 1 {
		t.Fatalf("recv: %v %+v", err, got)
	}
	a.Close()
	if err := a.Send(msg); err == nil {
		t.Fatal("send on closed conn must fail")
	}
}

// buildRuntime wires a Central and n in-process Workers sharing one
// model's weights.
func buildRuntime(t *testing.T, opt models.Options, n int, tl time.Duration) (*Central, *models.Model, func()) {
	t.Helper()
	cfg := models.VGGSim()
	m, err := models.Build(cfg, opt, 42)
	if err != nil {
		t.Fatal(err)
	}
	c, _, stop := buildRuntimeConns(t, m, n, tl)
	return c, m, stop
}

// buildRuntimeConns is buildRuntime for callers that need the central
// sides of the pipes (e.g. to kill one mid-test).
func buildRuntimeConns(t *testing.T, m *models.Model, n int, tl time.Duration) (*Central, []Conn, func()) {
	t.Helper()
	conns := make([]Conn, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		a, b := Pipe()
		conns[i] = a
		w := NewWorker(i+1, m)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Serve(context.Background(), b)
		}()
	}
	c, err := NewCentral(m, conns, tl, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return c, conns, func() { c.Shutdown(); wg.Wait() }
}

func TestDistributedMatchesLocalExecution(t *testing.T) {
	opt := models.Options{Grid: fdsp.Grid{Rows: 4, Cols: 4}}
	c, m, stop := buildRuntime(t, opt, 4, 5*time.Second)
	defer stop()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 3; trial++ {
		x := tensor.New(1, 3, 32, 32)
		x.RandN(rng, 1)
		want := m.Net.Forward(x, false)
		got, st, err := c.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		if st.TilesMissed != 0 {
			t.Fatalf("missed %d tiles with a generous deadline", st.TilesMissed)
		}
		if !got.Equal(want, 1e-4) {
			t.Fatal("distributed inference must match local execution")
		}
	}
}

func TestDistributedWithCompressionMatchesLocal(t *testing.T) {
	opt := models.Options{
		Grid:   fdsp.Grid{Rows: 4, Cols: 4},
		ClipLo: 0.05, ClipHi: 2.0, QuantBits: 4,
	}
	c, m, stop := buildRuntime(t, opt, 4, 5*time.Second)
	defer stop()
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	want := m.Net.Forward(x, false) // local graph includes clip + STQuant
	got, st, err := c.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-4) {
		t.Fatal("compressed distributed inference must match the modified training graph")
	}
	// Compression must actually shrink the wire volume versus raw floats.
	raw := int64(models.VGGSim().FrontOutBytes())
	if st.WireBytes >= raw {
		t.Fatalf("wire bytes %d not smaller than raw %d", st.WireBytes, raw)
	}
}

func TestDistributedLoadBalancesAcrossImages(t *testing.T) {
	opt := models.Options{Grid: fdsp.Grid{Rows: 4, Cols: 4}}
	c, _, stop := buildRuntime(t, opt, 4, 5*time.Second)
	defer stop()
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	var last InferStats
	for i := 0; i < 5; i++ {
		_, st, err := c.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		last = st
	}
	if last.Alloc.Total() != 16 {
		t.Fatalf("total tiles %d", last.Alloc.Total())
	}
	for k, n := range last.Alloc {
		if n == 0 {
			t.Fatalf("node %d starved: %v", k, last.Alloc)
		}
	}
}

func TestDeadlineZeroFillsMissingTiles(t *testing.T) {
	// A 1ns deadline guarantees every tile misses; inference must still
	// produce an output of the right shape.
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	c, m, stop := buildRuntime(t, opt, 2, time.Nanosecond)
	defer stop()
	rng := rand.New(rand.NewSource(4))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	got, st, err := c.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	if st.TilesMissed == 0 {
		t.Skip("scheduler beat a 1ns deadline — environment too fast to force misses")
	}
	want := m.Net.Forward(x, false)
	if !got.SameShape(want) {
		t.Fatalf("output shape %v, want %v", got.Shape, want.Shape)
	}
}

func TestCentralRequiresPartitionedModel(t *testing.T) {
	m, err := models.Build(models.VGGSim(), models.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := Pipe()
	if _, err := NewCentral(m, []Conn{a}, time.Second, 0.9); err == nil {
		t.Fatal("unpartitioned model must be rejected")
	}
}

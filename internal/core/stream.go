package core

import (
	"time"

	"adcnn/internal/cluster"
)

// StreamResult summarises a pipelined multi-image run (paper Figure 9:
// the Central node transmits image i+1's tiles before image i finishes,
// so the three pipeline stages — tile transmission, Conv-node
// computation+return, Central-node later layers — overlap across
// consecutive images).
type StreamResult struct {
	Images     int
	Makespan   time.Duration
	Throughput float64       // images per second
	AvgLatency time.Duration // mean per-image latency including pipeline queueing
}

// StreamDepth bounds the number of in-flight images: the Central node
// starts transmitting image i only after image i−StreamDepth has
// finished (the paper's t_s^{i+1} < t_c^i keeps roughly one extra image
// in flight; we allow a small window). Without this bound a saturated
// open-loop stream would grow its queue — and per-image latency —
// without limit.
const StreamDepth = 3

// RunStream simulates n images flowing through the pipeline. Each image
// is first simulated in isolation (RunImage, which also drives the
// scheduler state), then the stream makespan is assembled from the
// per-stage spans with classic pipeline overlap: every stage is a
// resource (the shared link, the Conv cluster, the Central node) that
// processes images in order, with at most StreamDepth images in flight.
func (s *Sim) RunStream(n int, events []cluster.ThrottleEvent) StreamResult {
	var linkFree, clusterFree, centralFree time.Duration
	var totalLatency time.Duration
	var makespan time.Duration
	done := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		cluster.ApplyEvents(s.cfg.Nodes, events, i)
		r := s.RunImage()
		// Stage spans for this image.
		sSend := r.InputXfer
		sConv := r.ConvCompute + r.OutputXfer
		sBack := r.BackCompute

		start := linkFree
		if i >= StreamDepth && done[i-StreamDepth] > start {
			start = done[i-StreamDepth] // admission control
		}
		sendDone := start + sSend
		linkFree = sendDone
		convDone := maxDur(sendDone, clusterFree) + sConv
		clusterFree = convDone
		backDone := maxDur(convDone, centralFree) + sBack
		centralFree = backDone
		done[i] = backDone

		totalLatency += backDone - start
		makespan = backDone
	}
	if n == 0 {
		return StreamResult{}
	}
	return StreamResult{
		Images:     n,
		Makespan:   makespan,
		Throughput: float64(n) / makespan.Seconds(),
		AvgLatency: totalLatency / time.Duration(n),
	}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

// TestSessionReconnectRevivesNode kills one node's connection, hands the
// Central a dialer that produces a fresh Pipe-backed worker, and asserts
// the node re-enters the allocation within a few images.
func TestSessionReconnectRevivesNode(t *testing.T) {
	cfg := models.VGGSim()
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	m, err := models.Build(cfg, opt, 42)
	if err != nil {
		t.Fatal(err)
	}
	c, conns, stop := buildRuntimeConns(t, m, 2, 5*time.Second)
	// Shutdown closes the reconnected conns, which is what lets the
	// dialer-spawned workers exit — so stop must run before wg.Wait.
	var wg sync.WaitGroup
	defer func() { stop(); wg.Wait() }()

	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	c.SetMetrics(met)

	c.SetDialer(0, func(ctx context.Context) (Conn, error) {
		a, b := Pipe()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = NewWorker(1, m).Serve(context.Background(), b)
		}()
		return a, nil
	})

	rng := rand.New(rand.NewSource(31))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	want := m.Net.Forward(x, false)

	if _, _, err := c.Infer(x); err != nil {
		t.Fatal(err)
	}
	conns[0].Close() // transport failure; the session must redial

	// The supervisor notices the dead conn, drains, and redials with
	// backoff; wait for the reconnect to land before probing allocation.
	deadline := time.Now().Add(5 * time.Second)
	for met.Reconnects.With(nodeLabel(0)).Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never reconnected through the dialer")
		}
		time.Sleep(10 * time.Millisecond)
	}
	revived := false
	for time.Now().Before(deadline) {
		out, st, err := c.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		if st.TilesMissed == 0 && !out.Equal(want, 1e-4) {
			t.Fatal("inference diverged from local execution during failover")
		}
		if st.Alloc[0] > 0 && st.TilesMissed == 0 {
			revived = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !revived {
		t.Fatal("node 0 never served tiles again after reconnect")
	}
}

// TestInferAsyncOverlap keeps several images in flight at once and
// verifies each handle resolves to the same output as local execution.
func TestInferAsyncOverlap(t *testing.T) {
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	c, m, stop := buildRuntime(t, opt, 2, 5*time.Second)
	defer stop()

	rng := rand.New(rand.NewSource(32))
	const n = 4
	inputs := make([]*tensor.Tensor, n)
	handles := make([]*Inflight, n)
	for i := range inputs {
		inputs[i] = tensor.New(1, 3, 32, 32)
		inputs[i].RandN(rng, 1)
		h, err := c.InferAsync(context.Background(), inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	for i, h := range handles {
		out, st, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if st.TilesMissed != 0 {
			t.Fatalf("image %d missed %d tiles with a generous deadline", i, st.TilesMissed)
		}
		want := m.Net.Forward(inputs[i], false)
		if !out.Equal(want, 1e-4) {
			t.Fatalf("image %d: overlapped inference diverged from local execution", i)
		}
	}
}

// TestPipelineOrderedResults streams images through a bounded Pipeline
// and checks results come back in submission order with correct outputs.
func TestPipelineOrderedResults(t *testing.T) {
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	c, m, stop := buildRuntime(t, opt, 2, 5*time.Second)
	defer stop()

	p := NewPipeline(c, 2)
	if p.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", p.Depth())
	}

	rng := rand.New(rand.NewSource(33))
	const n = 6
	inputs := make([]*tensor.Tensor, n)
	in := make(chan *tensor.Tensor)
	go func() {
		defer close(in)
		for i := 0; i < n; i++ {
			inputs[i] = tensor.New(1, 3, 32, 32)
			inputs[i].RandN(rng, 1)
			in <- inputs[i]
		}
	}()

	next := 0
	for r := range p.Run(context.Background(), in) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Index != next {
			t.Fatalf("result index %d, want %d (results must preserve submission order)", r.Index, next)
		}
		want := m.Net.Forward(inputs[r.Index], false)
		if !r.Out.Equal(want, 1e-4) {
			t.Fatalf("image %d: pipelined inference diverged from local execution", r.Index)
		}
		next++
	}
	if next != n {
		t.Fatalf("got %d results, want %d", next, n)
	}
	if p.InFlight() != 0 {
		t.Fatalf("pipeline still holds %d admission slots after drain", p.InFlight())
	}
}

// TestInferContextCancellation: cancelling the caller's context while
// results are pending must return promptly with the context error, not
// sit out the full T_L deadline.
func TestInferContextCancellation(t *testing.T) {
	cfg := models.VGGSim()
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	m, err := models.Build(cfg, opt, 42)
	if err != nil {
		t.Fatal(err)
	}
	conns := make([]Conn, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		a, b := Pipe()
		conns[i] = a
		w := NewWorker(i+1, m)
		w.Delay = time.Second // results won't arrive before the cancel
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Serve(context.Background(), b)
		}()
	}
	c, err := NewCentral(m, conns, 30*time.Second, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { c.Shutdown(); wg.Wait() }()

	rng := rand.New(rand.NewSource(34))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err = c.InferContext(ctx, x)
	if err == nil {
		t.Fatal("cancelled InferContext must return an error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; the T_L deadline leaked through", elapsed)
	}
}

// TestStaleResultsCounted: results landing after T_L settled their tiles
// must be dropped and counted, not delivered to a dead collector.
func TestStaleResultsCounted(t *testing.T) {
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	c, _, stop := buildRuntime(t, opt, 2, time.Nanosecond)
	defer stop()
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	c.SetMetrics(met)

	rng := rand.New(rand.NewSource(35))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	_, st, err := c.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	if st.TilesMissed == 0 {
		t.Skip("scheduler beat a 1ns deadline — cannot force stale results")
	}
	deadline := time.Now().Add(2 * time.Second)
	for met.StaleResults.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("overdue results never hit the stale counter")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

//go:build race

package core

// raceEnabled gates allocation-count assertions: under the race detector
// sync.Pool deliberately drops puts, so pooled paths legitimately
// allocate.
const raceEnabled = true

package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/tensor"
)

func TestHaloModeIsExact(t *testing.T) {
	cfg := models.VGGSim()
	m, err := models.Build(cfg, models.Options{}, 42) // original model
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	conns := make([]Conn, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		a, b := Pipe()
		conns[i] = a
		w := NewWorker(i+1, m)
		wg.Add(1)
		go func() { defer wg.Done(); _ = w.Serve(context.Background(), b) }()
	}
	hc, err := NewHaloCentral(m, fdsp.Grid{Rows: 4, Cols: 4}, conns, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { hc.Shutdown(); wg.Wait() }()
	if hc.Margin() <= 0 {
		t.Fatal("a multi-conv front must need a positive halo margin")
	}

	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 3; trial++ {
		x := tensor.New(1, 3, 32, 32)
		x.RandN(rng, 1)
		want := m.Net.Forward(x, false)
		got, st, err := hc.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, 1e-4) {
			t.Fatal("halo-mode distributed inference must be exact")
		}
		if st.WireBytes <= int64(4*3*32*32) {
			t.Fatal("halo transmission must exceed the raw image (overlap overhead)")
		}
	}
}

func TestHaloModeRejectsModifiedModels(t *testing.T) {
	m, err := models.Build(models.VGGSim(), models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := Pipe()
	if _, err := NewHaloCentral(m, fdsp.Grid{Rows: 2, Cols: 2}, []Conn{a}, time.Second); err == nil {
		t.Fatal("halo mode must reject FDSP-modified models")
	}
}

// Halo mode ships more bytes than FDSP mode for the same image: the
// quantitative core of the ADCNN-vs-AOFL comparison, on the live runtime.
func TestHaloModeCostsMoreWireThanFDSP(t *testing.T) {
	cfg := models.VGGSim()
	grid := fdsp.Grid{Rows: 4, Cols: 4}

	runWire := func(build func() (interface {
		Infer(*tensor.Tensor) (*tensor.Tensor, InferStats, error)
	}, func())) int64 {
		infer, stop := build()
		defer stop()
		rng := rand.New(rand.NewSource(5))
		x := tensor.New(1, 3, 32, 32)
		x.RandN(rng, 1)
		_, st, err := infer.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		return st.WireBytes
	}

	haloWire := runWire(func() (interface {
		Infer(*tensor.Tensor) (*tensor.Tensor, InferStats, error)
	}, func()) {
		m, _ := models.Build(cfg, models.Options{}, 42)
		conns := make([]Conn, 4)
		var wg sync.WaitGroup
		for i := range conns {
			a, b := Pipe()
			conns[i] = a
			w := NewWorker(i+1, m)
			wg.Add(1)
			go func() { defer wg.Done(); _ = w.Serve(context.Background(), b) }()
		}
		hc, err := NewHaloCentral(m, grid, conns, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return hc, func() { hc.Shutdown(); wg.Wait() }
	})

	fdspWire := runWire(func() (interface {
		Infer(*tensor.Tensor) (*tensor.Tensor, InferStats, error)
	}, func()) {
		m, _ := models.Build(cfg, models.Options{
			Grid: grid, ClipLo: 0.05, ClipHi: 2.5, QuantBits: 4,
		}, 42)
		conns := make([]Conn, 4)
		var wg sync.WaitGroup
		for i := range conns {
			a, b := Pipe()
			conns[i] = a
			w := NewWorker(i+1, m)
			wg.Add(1)
			go func() { defer wg.Done(); _ = w.Serve(context.Background(), b) }()
		}
		c, err := NewCentral(m, conns, 5*time.Second, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		return c, func() { c.Shutdown(); wg.Wait() }
	})

	// HaloCentral counts outbound (input) bytes; Central counts inbound
	// compressed results. Compare halo's extended-input volume against
	// FDSP's compressed-results volume — the two wire costs that differ
	// between the schemes.
	if haloWire <= fdspWire {
		t.Fatalf("halo wire %d must exceed compressed FDSP wire %d", haloWire, fdspWire)
	}
}

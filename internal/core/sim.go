// Package core implements the ADCNN runtime (paper Section 6): a Central
// node that partitions inputs with FDSP, allocates tiles to Conv nodes
// with Algorithms 2-3, tolerates stragglers with a deadline, and computes
// the later layers — plus a Conv-node worker. Two execution engines are
// provided:
//
//   - a virtual-time simulator (this file) that reproduces the paper's
//     latency/energy/adaptation experiments on calibrated device models,
//     deterministically and in microseconds of wall time;
//   - a live runtime (runtime.go / transport.go / tcp.go) that runs the
//     actual sim-scale networks across goroutines or TCP connections and
//     verifies the distributed protocol end to end.
package core

import (
	"fmt"
	"math/rand"
	"time"

	"adcnn/internal/cluster"
	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/perfmodel"
	"adcnn/internal/sched"
	"adcnn/internal/telemetry"
)

// SimConfig parameterises a virtual-time ADCNN run.
type SimConfig struct {
	Model models.Config
	Grid  fdsp.Grid

	Nodes   []*cluster.Device   // Conv nodes
	Central *cluster.Device     // runs partition + later layers
	Link    perfmodel.LinkModel // shared medium between Central and Conv nodes

	// Pruning enables the clipped-ReLU + 4-bit + RLE compression of the
	// Conv-node outputs; PruneRatio is the measured compressed/raw ratio
	// (Table 2 magnitudes, e.g. 0.032 for VGG16).
	Pruning    bool
	PruneRatio float64

	// InputBytesPerValue is the wire size of one input element. Raw
	// camera images travel as 1 byte/channel-pixel; set 4 to model
	// float32 transport.
	InputBytesPerValue int

	// StatsWindow is the Algorithm 2 counting window T_L, measured from
	// the moment the Central node finishes transmitting an image's tiles.
	// 0 = auto: 1.25× the expected per-node compute time under an equal
	// split at full speed.
	StatsWindow time.Duration
	// DropDeadline is the hard deadline after which missing tiles are
	// zero-filled so a failed node cannot stall the system. 0 = auto
	// (4× StatsWindow).
	DropDeadline time.Duration

	// Gamma is Algorithm 2's decay (paper: 0.9).
	Gamma float64

	// Pipeline overlaps a node's tile reception with its computation
	// (Figure 9's t_s^{i+1} < t_c^i behaviour within an image).
	Pipeline bool

	// LinkScale optionally scales each node's effective link speed
	// (1 = nominal, 0.5 = half throughput). Real edge networks are
	// heterogeneous in bandwidth as well as CPU; Algorithm 2's
	// count-based statistics absorb both. nil = all nominal.
	LinkScale []float64

	// Noise adds multiplicative lognormal-ish jitter to per-tile compute
	// times (fraction, e.g. 0.05 = ±5%), modelling the measurement
	// variation behind the paper's confidence intervals. 0 = fully
	// deterministic. Seed controls the jitter stream.
	Noise float64
	Seed  int64
}

// ImageResult is the simulated outcome for one input image.
type ImageResult struct {
	Latency      time.Duration
	InputXfer    time.Duration // Central→Conv tile transmission (serialized on the shared link)
	ConvCompute  time.Duration // max per-node tile compute span
	OutputXfer   time.Duration // Conv→Central intermediate-result transmission
	BackCompute  time.Duration // later layers on the Central node
	TilesMissed  int           // zero-filled at the drop deadline
	Alloc        sched.Allocation
	ReceivedByTL []int // n_k: results within the stats window
	// Utilization is each Conv node's effective CPU usage during this
	// image: (time spent computing / image latency) × throttle fraction —
	// the quantity Figure 15(a) plots.
	Utilization []float64
}

// Sim is the virtual-time ADCNN engine.
type Sim struct {
	cfg   SimConfig
	stats *sched.Stats

	tiles       int
	tileInWire  int64
	tileOutWire int64
	tileFLOPs   int64
	tileMemTraf int64
	backFLOPs   int64
	backMemTraf int64
	tileMem     int64

	window   time.Duration
	deadline time.Duration

	rng *rand.Rand

	trace   *telemetry.Trace
	imageNo int           // images simulated, for trace labels
	elapsed time.Duration // virtual wall clock across images
}

// SetTrace attaches a tracer: every subsequent RunImage emits its phase
// spans (send, per-tile compute, per-tile return, back) at virtual-time
// offsets, so a whole RunStream renders as one Perfetto timeline.
func (s *Sim) SetTrace(t *telemetry.Trace) {
	s.trace = t
	if t != nil {
		t.SetThreadName(0, "central")
		for k := range s.cfg.Nodes {
			t.SetThreadName(k+1, fmt.Sprintf("conv-%d", k))
		}
	}
}

// NewSim validates the config and precomputes the per-tile cost model.
func NewSim(cfg SimConfig) (*Sim, error) {
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Grid.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Nodes) == 0 || cfg.Central == nil {
		return nil, fmt.Errorf("core: need conv nodes and a central node")
	}
	if cfg.Gamma <= 0 || cfg.Gamma > 1 {
		return nil, fmt.Errorf("core: gamma %v out of (0,1]", cfg.Gamma)
	}
	if cfg.Pruning && (cfg.PruneRatio <= 0 || cfg.PruneRatio > 1) {
		return nil, fmt.Errorf("core: prune ratio %v out of (0,1]", cfg.PruneRatio)
	}
	bpv := cfg.InputBytesPerValue
	if bpv == 0 {
		bpv = 1
	}
	s := &Sim{cfg: cfg}
	s.tiles = cfg.Grid.Tiles()
	inValues := int64(cfg.Model.InputC) * int64(cfg.Model.InputH) * int64(cfg.Model.InputW)
	s.tileInWire = inValues * int64(bpv) / int64(s.tiles)
	rawOut := cfg.Model.FrontOutBytes() / int64(s.tiles)
	if cfg.Pruning {
		s.tileOutWire = int64(float64(rawOut) * cfg.PruneRatio)
		if s.tileOutWire < 16 {
			s.tileOutWire = 16
		}
	} else {
		s.tileOutWire = rawOut
	}
	s.tileFLOPs = cfg.Model.FrontFLOPs() / int64(s.tiles)
	s.tileMemTraf = cfg.Model.FrontMemBytes() / int64(s.tiles)
	s.backFLOPs = cfg.Model.BackFLOPs()
	s.backMemTraf = cfg.Model.BackMemBytes()
	// Peak transient memory per tile: input tile plus the largest
	// intermediate feature map the separable blocks produce for it.
	var peak int64
	for _, b := range cfg.Model.Profile()[:cfg.Model.Separable] {
		if v := b.IfmapBytes + b.OfmapBytes; v > peak {
			peak = v
		}
	}
	s.tileMem = cfg.Model.InputBytes()/int64(s.tiles) + peak/int64(s.tiles)

	s.window = cfg.StatsWindow
	if s.window == 0 {
		equal := (s.tiles + len(cfg.Nodes) - 1) / len(cfg.Nodes)
		perNode := cfg.Nodes[0].Model.Time(s.tileFLOPs*int64(equal), s.tileMemTraf*int64(equal))
		s.window = perNode * 5 / 4
	}
	s.deadline = cfg.DropDeadline
	if s.deadline == 0 {
		s.deadline = 4 * s.window
	}
	s.stats = sched.NewStats(len(cfg.Nodes), cfg.Gamma, float64(s.tiles)/float64(len(cfg.Nodes)))
	s.rng = rand.New(rand.NewSource(cfg.Seed + 1))
	return s, nil
}

// jitter scales a duration by (1 + Noise·N(0,1)), floored at half.
func (s *Sim) jitter(d time.Duration) time.Duration {
	if s.cfg.Noise <= 0 {
		return d
	}
	f := 1 + s.cfg.Noise*s.rng.NormFloat64()
	if f < 0.5 {
		f = 0.5
	}
	return time.Duration(float64(d) * f)
}

// Stats exposes the live Algorithm 2 tracker (for inspection in tests).
func (s *Sim) Stats() *sched.Stats { return s.stats }

// Window returns the effective stats window.
func (s *Sim) Window() time.Duration { return s.window }

// Elapsed returns the virtual wall-clock time consumed so far.
func (s *Sim) Elapsed() time.Duration { return s.elapsed }

// RunImage simulates one inference and updates scheduler state and
// device accounting.
func (s *Sim) RunImage() ImageResult {
	base := s.elapsed // virtual-time origin of this image, for tracing
	s.imageNo++
	img := s.imageNo
	caps := make([]int64, len(s.cfg.Nodes))
	for i, d := range s.cfg.Nodes {
		caps[i] = d.Capacity
		if caps[i] == 0 {
			caps[i] = int64(s.tiles) * s.tileInWire // effectively unlimited
		}
	}
	speeds := s.stats.Speeds()
	// Failed devices report zero speed immediately (link layer notices a
	// dead peer) so the allocator can avoid them even before Algorithm 2
	// decays their estimate.
	for i, d := range s.cfg.Nodes {
		if d.Failed() {
			speeds[i] = 0
		}
	}
	alloc, err := sched.Allocate(s.tiles, speeds, s.tileInWire, caps, nil)
	if err != nil {
		// Nothing can run: all nodes failed. Model total loss: the image
		// is processed with all-zero features after the drop deadline.
		res := ImageResult{
			Latency:     s.deadline + s.cfg.Central.Model.Time(s.backFLOPs, s.backMemTraf),
			BackCompute: s.cfg.Central.Model.Time(s.backFLOPs, s.backMemTraf),
			TilesMissed: s.tiles,
			Alloc:       make(sched.Allocation, len(s.cfg.Nodes)),
		}
		s.trace.Instant("all-nodes-failed", "central", 0, base, map[string]any{"image": img})
		s.trace.Span(fmt.Sprintf("image %d", img), "image", 0, base, res.Latency,
			map[string]any{"missed": res.TilesMissed})
		s.elapsed += res.Latency
		return res
	}

	goodput := s.cfg.Link.GoodputBps()
	latency := time.Duration(s.cfg.Link.LatencyMs * float64(time.Millisecond))
	baseTxTile := time.Duration(float64(s.tileInWire)/goodput*float64(time.Second)) + latency/time.Duration(maxInt(s.tiles, 1))
	linkScale := func(k int) float64 {
		if k < len(s.cfg.LinkScale) && s.cfg.LinkScale[k] > 0 {
			return s.cfg.LinkScale[k]
		}
		return 1
	}
	txTileFor := func(k int) time.Duration {
		return time.Duration(float64(baseTxTile) / linkScale(k))
	}

	// Phase 1: Central streams tiles node by node on the shared medium.
	sendDone := make([]time.Duration, len(alloc))
	var cursor time.Duration
	firstTile := make([]time.Duration, len(alloc))
	for k, x := range alloc {
		if x == 0 {
			sendDone[k] = cursor
			continue
		}
		firstTile[k] = cursor + txTileFor(k)
		cursor += time.Duration(x) * txTileFor(k)
		sendDone[k] = cursor
	}
	allSent := cursor

	// Phase 2: per-node compute with optional pipelining. Each tile's
	// result is transmitted as soon as it is computed (paper Figure 8
	// step 3 streams intermediate results per tile), so we track every
	// tile's completion time individually.
	compSpan := make([]time.Duration, len(alloc))
	var events []retEvent // one per computed tile
	for k, x := range alloc {
		if x == 0 {
			continue
		}
		d := s.cfg.Nodes[k]
		ct, ok := d.ComputeTime(s.tileFLOPs, s.tileMemTraf)
		if !ok {
			continue // failed mid-allocation: its tiles never complete
		}
		ct = s.jitter(ct)
		done := firstTile[k]
		if !s.cfg.Pipeline {
			done = sendDone[k]
		}
		for m := 0; m < x; m++ {
			if s.cfg.Pipeline {
				arriveIn := firstTile[k] + time.Duration(m)*txTileFor(k)
				if arriveIn > done {
					done = arriveIn
				}
			}
			done += ct
			events = append(events, retEvent{k, done})
			s.trace.Span(fmt.Sprintf("tile %d/%d", m+1, x), "tile", k+1, base+done-ct, ct,
				map[string]any{"image": img, "node": k})
		}
		compSpan[k] = time.Duration(x) * ct
		d.RecordBusy(compSpan[k])
		d.Alloc(int64(x) * s.tileMem)
		d.Free(int64(x) * s.tileMem)
	}

	// Phase 3: tile results serialize on the shared return medium in
	// compute-completion order.
	sortRets(events)
	baseTxOut := time.Duration(float64(s.tileOutWire)/goodput*float64(time.Second)) + latency/8
	windowEnd := allSent + s.window
	dropEnd := allSent + s.deadline
	received := make([]int, len(alloc))
	arrivedTiles := 0
	var lastNeeded, linkFree, outSpan time.Duration
	for _, ev := range events {
		start := ev.done
		if linkFree > start {
			start = linkFree
		}
		arrive := start + time.Duration(float64(baseTxOut)/linkScale(ev.k))
		linkFree = arrive
		s.trace.Span("return", "xfer", ev.k+1, base+start, arrive-start,
			map[string]any{"image": img, "node": ev.k})
		if arrive > dropEnd {
			continue // zero-filled at the deadline
		}
		arrivedTiles++
		if arrive > lastNeeded {
			lastNeeded = arrive
		}
		if arrive <= windowEnd {
			received[ev.k]++
		}
		if d := arrive - ev.done; d > outSpan {
			outSpan = d
		}
	}
	missed := s.tiles - arrivedTiles
	if missed > 0 {
		lastNeeded = dropEnd
	}
	s.stats.Update(received)

	back := s.cfg.Central.Model.Time(s.backFLOPs, s.backMemTraf)
	s.cfg.Central.RecordBusy(back)
	total := lastNeeded + back

	util := make([]float64, len(s.cfg.Nodes))
	for k, d := range s.cfg.Nodes {
		if total > 0 {
			frac := float64(compSpan[k]) / float64(total)
			if frac > 1 {
				frac = 1
			}
			util[k] = frac * d.Throttle()
		}
	}
	if s.trace != nil {
		s.trace.Span("send", "xfer", 0, base, allSent, map[string]any{"image": img})
		s.trace.Span("back", "compute", 0, base+lastNeeded, back, map[string]any{"image": img})
		if missed > 0 {
			s.trace.Instant("zero-fill", "central", 0, base+dropEnd,
				map[string]any{"image": img, "missed": missed})
		}
		s.trace.Span(fmt.Sprintf("image %d", img), "image", 0, base, total,
			map[string]any{"missed": missed, "alloc": fmt.Sprint(alloc)})
	}
	res := ImageResult{
		Latency:      total,
		InputXfer:    allSent,
		ConvCompute:  maxSpan(compSpan),
		OutputXfer:   outSpan,
		BackCompute:  back,
		TilesMissed:  missed,
		Alloc:        alloc,
		ReceivedByTL: received,
		Utilization:  util,
	}
	s.elapsed += total
	return res
}

// RunImages simulates n consecutive inferences, applying any scheduled
// throttle events before each image.
func (s *Sim) RunImages(n int, events []cluster.ThrottleEvent) []ImageResult {
	out := make([]ImageResult, 0, n)
	for i := 0; i < n; i++ {
		cluster.ApplyEvents(s.cfg.Nodes, events, i)
		out = append(out, s.RunImage())
	}
	return out
}

func maxSpan(ds []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// retEvent is a node's compute-completion event on the return link.
type retEvent struct {
	k    int
	done time.Duration
}

// sortRets orders return events by completion time (insertion sort — the
// slice is at most the node count).
func sortRets(rs []retEvent) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].done < rs[j-1].done; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

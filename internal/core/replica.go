package core

import (
	"context"
	"fmt"
	"sync"
)

// replica is the replica-scoped half of a Central: the per-node
// sessions, their dialers, the pending-table demux and the session
// goroutines. One Central owns exactly one replica; what makes the
// split worth having is that everything here is private to one control
// plane instance — N Centrals sharing a Conv pool each hold their own
// replica (own sessions, own epochs, own clock-offset estimators, own
// pending table), while the pool-wide state (capacity shares, steal
// queues) lives above them in Cluster.
type replica struct {
	c *Central

	mu       sync.Mutex
	sessions []*nodeSession
	dialers  []func(context.Context) (Conn, error)

	pending demux
	loopWG  sync.WaitGroup
}

func newReplica(c *Central, nodes int) *replica {
	r := &replica{
		c:       c,
		dialers: make([]func(context.Context) (Conn, error), nodes),
	}
	r.pending.init()
	return r
}

// setDialer records node k's reconnect dialer (pre-start only; live
// joins pass the dialer to addNode directly).
func (r *replica) setDialer(k int, dial func(context.Context) (Conn, error)) {
	r.mu.Lock()
	r.dialers[k] = dial
	r.mu.Unlock()
}

// start builds the initial sessions from the construction-time
// connections and spawns their supervisors.
func (r *replica) start(conns []Conn) {
	r.mu.Lock()
	for k, conn := range conns {
		s := newNodeSession(k, r, conn, r.dialers[k])
		r.sessions = append(r.sessions, s)
		r.loopWG.Add(1)
	}
	sessions := append([]*nodeSession(nil), r.sessions...)
	r.mu.Unlock()
	for _, s := range sessions {
		go s.run()
	}
}

// snapshot returns the current membership view. The slice is append-only
// (RemoveNode tombstones a session rather than shrinking the slice, so
// node indices are stable for the life of the replica), which makes the
// snapshot safe to read without further locking.
func (r *replica) snapshot() []*nodeSession {
	r.mu.Lock()
	s := r.sessions[:len(r.sessions):len(r.sessions)]
	r.mu.Unlock()
	return s
}

// session returns node k's session, or nil when k is out of range.
func (r *replica) session(k int) *nodeSession {
	r.mu.Lock()
	defer r.mu.Unlock()
	if k < 0 || k >= len(r.sessions) {
		return nil
	}
	return r.sessions[k]
}

// addNode appends a session for a newly joined node and spawns its
// supervisor. The caller (Central.AddNode) has already grown the
// scheduler estimate, so an allocation racing this append sees a
// consistent view whichever side of the append it lands on.
func (r *replica) addNode(conn Conn, dial func(context.Context) (Conn, error)) int {
	r.mu.Lock()
	k := len(r.sessions)
	s := newNodeSession(k, r, conn, dial)
	r.sessions = append(r.sessions, s)
	r.dialers = append(r.dialers, dial)
	r.loopWG.Add(1)
	r.mu.Unlock()
	go s.run()
	return k
}

// redispatch re-routes tasks stranded by a connection failure to
// surviving nodes. A tile with no alive node left aborts its image's
// inference — the caller sees the same "no alive conv node" error the
// dispatcher raises.
func (r *replica) redispatch(orphans []*Message) {
	c := r.c
	for _, m := range orphans {
		if m.Kind != KindTask {
			continue
		}
		placed := false
		for _, s := range r.snapshot() {
			if s.Alive() {
				r.pending.markEnqueued(pendingKey{m.ImageID, m.TileID}, s.id, monoNow(), len(m.Payload))
				if !s.enqueue(c.ctx, m) {
					continue
				}
				if c.metrics != nil {
					c.metrics.TilesDispatched.With(nodeLabel(s.id)).Inc()
				}
				c.flight.Record("redispatch", m.ImageID, int(m.TileID), s.id, "")
				placed = true
				break
			}
		}
		if !placed {
			if e, ok := r.pending.claim(pendingKey{m.ImageID, m.TileID}); ok {
				c.flight.Record("abort", m.ImageID, int(m.TileID), -1, "no alive conv node")
				e.col.abort(fmt.Errorf("core: no alive conv node for tile %d", m.TileID))
			}
		}
	}
}

package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestTimelinePhasesOrderedAndCovering(t *testing.T) {
	s := vggSim(t, 8, nil)
	r := s.RunImage()
	tl := TimelineFor(r)
	if len(tl.Spans) != 4 {
		t.Fatalf("expected 4 phases, got %d", len(tl.Spans))
	}
	// Phases are ordered and non-negative.
	for i, sp := range tl.Spans {
		if sp.End < sp.Start {
			t.Fatalf("phase %d inverted: %+v", i, sp)
		}
	}
	// First three phases chain (Figure 9: T_F then T_Conv then T_C).
	if tl.Spans[1].Start != tl.Spans[0].End || tl.Spans[2].Start != tl.Spans[1].End {
		t.Fatal("transmission/compute phases must chain")
	}
	// The rest-layer phase ends at the total latency.
	if tl.Spans[3].End != tl.Total {
		t.Fatal("T_rest must end at the total latency")
	}
	var buf bytes.Buffer
	tl.WriteText(&buf, 60)
	out := buf.String()
	for _, want := range []string{"T_F", "T_Conv", "T_C", "T_rest"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %s in rendering:\n%s", want, out)
		}
	}
}

func TestTimelineEmpty(t *testing.T) {
	var buf bytes.Buffer
	Timeline{}.WriteText(&buf, 40)
	if !strings.Contains(buf.String(), "empty") {
		t.Fatal("empty timeline should say so")
	}
}

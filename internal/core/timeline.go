package core

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// PhaseSpan is one labelled interval of the inference timeline.
type PhaseSpan struct {
	Label      string
	Start, End time.Duration
}

// Timeline is the Figure 9 artifact: the phase intervals of one image's
// distributed inference (T_F input transmission, T_Conv separable-block
// computation, T_C result transmission, T_rest later layers).
type Timeline struct {
	Spans []PhaseSpan
	Total time.Duration
}

// TimelineFor derives the Figure 9 timeline from one simulated image.
func TimelineFor(r ImageResult) Timeline {
	tF := r.InputXfer
	tConvEnd := tF + r.ConvCompute
	tCEnd := tConvEnd + r.OutputXfer
	return Timeline{
		Spans: []PhaseSpan{
			{Label: "T_F    (input tiles → Conv nodes)", Start: 0, End: tF},
			{Label: "T_Conv (separable layer blocks)", Start: tF, End: tConvEnd},
			{Label: "T_C    (intermediate results → Central)", Start: tConvEnd, End: tCEnd},
			{Label: "T_rest (later layers on Central)", Start: r.Latency - r.BackCompute, End: r.Latency},
		},
		Total: r.Latency,
	}
}

// WriteText renders a proportional text Gantt chart.
func (t Timeline) WriteText(w io.Writer, width int) {
	if width < 20 {
		width = 60
	}
	if t.Total <= 0 {
		fmt.Fprintln(w, "empty timeline")
		return
	}
	scale := float64(width) / float64(t.Total)
	fmt.Fprintf(w, "timeline of one image (total %v):\n", t.Total.Round(time.Millisecond))
	for _, s := range t.Spans {
		lo := int(float64(s.Start) * scale)
		hi := int(float64(s.End) * scale)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("█", hi-lo)
		fmt.Fprintf(w, "  %-42s |%-*s| %6.1fms\n", s.Label, width, bar,
			float64(s.End-s.Start)/float64(time.Millisecond))
	}
}

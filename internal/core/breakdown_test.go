package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// TestBreakdownPhasesSumExactly: for any causally plausible tile journey
// — monotone Central timestamps, monotone Conv timestamps, and a round
// trip at least as long as the tile's stay on the node — the six phases
// are each non-negative and sum to the end-to-end latency exactly,
// regardless of how wrong the clock-offset estimate is. That invariance
// is the design property: the offset only splits uplink/downlink.
func TestBreakdownPhasesSumExactly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		enq := rng.Int63n(1 << 40)
		sent := enq + rng.Int63n(1<<20)
		// Conv clock: arbitrary epoch, monotone stamps.
		convRecv := rng.Int63n(1 << 40)
		tm := &ConvTiming{RecvNs: convRecv}
		tm.DecodeNs = convRecv + rng.Int63n(1<<18)
		tm.ComputeStartNs = tm.DecodeNs + rng.Int63n(1<<20)
		tm.ComputeEndNs = tm.ComputeStartNs + rng.Int63n(1<<22)
		tm.EncodeNs = tm.ComputeEndNs + rng.Int63n(1<<18)
		tm.SendNs = tm.EncodeNs + rng.Int63n(1<<16)
		residence := tm.SendNs - tm.RecvNs
		recv := sent + residence + rng.Int63n(1<<20) // network ≥ 0
		collect := recv + rng.Int63n(1<<18)
		offset := rng.Int63n(1<<30) - (1 << 29) // wildly wrong is fine

		tb := newTileBreakdown(3, 1, enq, sent, recv, collect, tm, offset)
		for p, d := range tb.Phase {
			if d < 0 {
				t.Logf("phase %s negative: %v", PhaseNames[p], d)
				return false
			}
		}
		return tb.PhaseSum() == tb.Total && tb.Total == time.Duration(collect-enq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdownWithoutTimingStillCloses(t *testing.T) {
	tb := newTileBreakdown(0, 2, 100, 250, 900, 1000, nil, 0)
	if tb.PhaseSum() != tb.Total || tb.Total != 900 {
		t.Fatalf("coarse split must close: sum %v total %v", tb.PhaseSum(), tb.Total)
	}
	if tb.Phase[PhaseDispatchQueue] != 150 || tb.Phase[PhaseCompute] != 650 || tb.Phase[PhaseCollect] != 100 {
		t.Fatalf("coarse phases %v", tb.Phase)
	}
	if tb.Phase[PhaseUplink] != 0 || tb.Phase[PhaseDownlink] != 0 || tb.Phase[PhaseNodeQueue] != 0 {
		t.Fatalf("timing-free phases must stay zero: %v", tb.Phase)
	}
}

func TestBreakdownOffsetSplitsNetwork(t *testing.T) {
	// 100ns uplink, 300ns on the node, 200ns downlink; the Conv clock
	// runs 5000ns ahead of the Central's, so the correct additive offset
	// is −5000. With the exact offset the split is exact.
	tm := &ConvTiming{RecvNs: 5100, DecodeNs: 5150, ComputeStartNs: 5200, ComputeEndNs: 5350, EncodeNs: 5380, SendNs: 5400}
	tb := newTileBreakdown(0, 0, 0, 0, 600, 600, tm, -5000)
	if tb.Phase[PhaseUplink] != 100 || tb.Phase[PhaseDownlink] != 200 {
		t.Fatalf("split %v/%v, want 100/200", tb.Phase[PhaseUplink], tb.Phase[PhaseDownlink])
	}
	if tb.Phase[PhaseNodeQueue] != 100 || tb.Phase[PhaseCompute] != 200 {
		t.Fatalf("node phases %v", tb.Phase)
	}
	// A grossly wrong offset clamps the split but never the sum.
	tb2 := newTileBreakdown(0, 0, 0, 0, 600, 600, tm, -9000)
	if tb2.Phase[PhaseUplink] != 0 || tb2.Phase[PhaseDownlink] != 300 {
		t.Fatalf("clamped split %v/%v", tb2.Phase[PhaseUplink], tb2.Phase[PhaseDownlink])
	}
	if tb2.PhaseSum() != tb2.Total {
		t.Fatalf("clamping broke the sum: %v vs %v", tb2.PhaseSum(), tb2.Total)
	}
}

func TestBreakdownMeansAndText(t *testing.T) {
	b := &Breakdown{Image: 1, TraceID: 42}
	tm := &ConvTiming{RecvNs: 10, DecodeNs: 12, ComputeStartNs: 20, ComputeEndNs: 90, EncodeNs: 95, SendNs: 100}
	for i := 0; i < 4; i++ {
		b.Tiles = append(b.Tiles, newTileBreakdown(i, i%2, 0, 5, 120, 130, tm, 0))
	}
	means := b.MeanPhases()
	var sum time.Duration
	for _, m := range means {
		sum += m
	}
	if sum != b.MeanTotal() {
		t.Fatalf("mean phases %v don't sum to mean total %v", sum, b.MeanTotal())
	}
	var sb strings.Builder
	b.WriteText(&sb)
	for _, name := range PhaseNames {
		if !strings.Contains(sb.String(), name) {
			t.Fatalf("text rendering missing phase %q: %s", name, sb.String())
		}
	}
	var empty *Breakdown
	empty.WriteText(&sb) // must not panic
	if empty.MeanTotal() != 0 {
		t.Fatal("nil breakdown mean must be 0")
	}
}

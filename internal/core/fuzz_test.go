package core

import (
	"bytes"
	"testing"

	"adcnn/internal/tensor"
)

// FuzzReadMessage: arbitrary frames must never panic; accepted frames
// must survive a write/read round trip.
func FuzzReadMessage(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteMessage(&buf, &Message{Kind: KindTask, ImageID: 1, TileID: 2, NodeID: 3, Payload: []byte("abc")})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	// Minimal valid frame: magic, version, length=14, empty payload.
	f.Add([]byte{protoMagic, ProtoVersion, 14, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	// Wrong magic and wrong version with otherwise-valid frames.
	f.Add([]byte{0x00, ProtoVersion, 14, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{protoMagic, ProtoVersion + 1, 14, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteMessage(&out, m); err != nil {
			t.Fatalf("accepted message failed to re-frame: %v", err)
		}
		m2, err := ReadMessage(&out)
		if err != nil {
			t.Fatalf("re-framed message failed to parse: %v", err)
		}
		if m2.Kind != m.Kind || m2.ImageID != m.ImageID || m2.TileID != m.TileID ||
			m2.NodeID != m.NodeID || m2.Compressed != m.Compressed ||
			!bytes.Equal(m2.Payload, m.Payload) {
			t.Fatal("frame round trip changed the message")
		}
	})
}

// FuzzDecodeTensor: arbitrary tensor payloads must never panic; accepted
// payloads must round-trip.
func FuzzDecodeTensor(f *testing.F) {
	x := tensor.New(2, 3)
	x.Data[0] = 1.5
	f.Add(EncodeTensor(x))
	f.Add([]byte{})
	f.Add([]byte{1, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Guard against absurd allocations from corrupt shape headers:
		// DecodeTensor validates total length, so a huge declared volume
		// with a short payload errors before allocating... the tensor.New
		// happens after the length check.
		y, err := DecodeTensor(data)
		if err != nil {
			return
		}
		z, err := DecodeTensor(EncodeTensor(y))
		if err != nil || !z.Equal(y, 0) {
			t.Fatal("tensor round trip failed")
		}
	})
}

package core

import (
	"bytes"
	"testing"

	"adcnn/internal/quant"
	"adcnn/internal/tensor"
)

// FuzzReadMessage: arbitrary frames must never panic; accepted frames
// must survive a write/read round trip.
func FuzzReadMessage(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteMessage(&buf, &Message{Kind: KindTask, ImageID: 1, TileID: 2, NodeID: 3,
		TraceID: 0x1122334455667788, SpanID: 0x99, Payload: []byte("abc")})
	f.Add(buf.Bytes())
	var timed bytes.Buffer
	_ = WriteMessage(&timed, &Message{Kind: KindResult, ImageID: 4, TileID: 5, NodeID: 6,
		TraceID: 7, SpanID: 8,
		Timing:  &ConvTiming{RecvNs: 10, DecodeNs: 20, ComputeStartNs: 30, ComputeEndNs: 40, EncodeNs: 50, SendNs: 60},
		Payload: []byte("xyz")})
	f.Add(timed.Bytes())
	var quantized bytes.Buffer
	_ = WriteMessage(&quantized, &Message{Kind: KindTask, ImageID: 9, TileID: 0,
		Quantized: true, Payload: []byte{1, 4, 0, 0, 0, 0, 0, 128, 63, 7, 10, 20, 30, 40}})
	f.Add(quantized.Bytes())
	f.Add([]byte{})
	// Minimal valid current-revision frame: magic, version,
	// length=bodyHeader, all-zero header fields (kind 1), no timing,
	// empty payload.
	minimal := append([]byte{protoMagic, ProtoVersion, bodyHeader, 0, 0, 0, 1}, make([]byte, bodyHeader-1)...)
	f.Add(minimal)
	// Wrong magic and wrong version with otherwise-valid frames, plus a
	// v1 frame (old 14-byte header) a current build must reject cleanly.
	f.Add(append([]byte{0x00, ProtoVersion, bodyHeader, 0, 0, 0, 1}, make([]byte, bodyHeader-1)...))
	f.Add(append([]byte{protoMagic, ProtoVersion + 1, bodyHeader, 0, 0, 0, 1}, make([]byte, bodyHeader-1)...))
	f.Add([]byte{protoMagic, 1, 14, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	// Timing flag set (bit 1 of flags at body offset 13) but truncated
	// record: must error, never misparse.
	liar := append([]byte{protoMagic, ProtoVersion, bodyHeader + 8, 0, 0, 0, 2}, make([]byte, bodyHeader+8-1)...)
	liar[6+13] = flagTiming
	f.Add(liar)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteMessage(&out, m); err != nil {
			t.Fatalf("accepted message failed to re-frame: %v", err)
		}
		m2, err := ReadMessage(&out)
		if err != nil {
			t.Fatalf("re-framed message failed to parse: %v", err)
		}
		if m2.Kind != m.Kind || m2.ImageID != m.ImageID || m2.TileID != m.TileID ||
			m2.NodeID != m.NodeID || m2.Compressed != m.Compressed ||
			m2.Quantized != m.Quantized ||
			m2.TraceID != m.TraceID || m2.SpanID != m.SpanID ||
			!bytes.Equal(m2.Payload, m.Payload) {
			t.Fatal("frame round trip changed the message")
		}
		if (m2.Timing == nil) != (m.Timing == nil) ||
			(m.Timing != nil && *m2.Timing != *m.Timing) {
			t.Fatal("frame round trip changed the timing record")
		}
	})
}

// FuzzDecodeTensor: arbitrary tensor payloads must never panic; accepted
// payloads must round-trip.
func FuzzDecodeTensor(f *testing.F) {
	x := tensor.New(2, 3)
	x.Data[0] = 1.5
	f.Add(EncodeTensor(x))
	f.Add([]byte{})
	f.Add([]byte{1, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Guard against absurd allocations from corrupt shape headers:
		// DecodeTensor validates total length, so a huge declared volume
		// with a short payload errors before allocating... the tensor.New
		// happens after the length check.
		y, err := DecodeTensor(data)
		if err != nil {
			return
		}
		z, err := DecodeTensor(EncodeTensor(y))
		if err != nil || !z.Equal(y, 0) {
			t.Fatal("tensor round trip failed")
		}
	})
}

// FuzzDequantizeQuantTensor: the fused levels-downlink decode must never
// panic on arbitrary payloads — truncated headers, overlong level runs,
// non-finite or non-positive scales — and must agree exactly with the
// two-step decode (DecodeQuantTensorInto + DequantizeInto) on both the
// accept/reject decision and the produced float values.
func FuzzDequantizeQuantTensor(f *testing.F) {
	x := tensor.New(2, 3, 4)
	for i := range x.Data {
		x.Data[i] = float32(i) * 0.125
	}
	af := quant.Affine{Scale: 0.0625, Zero: 3}
	valid := AppendQuantTensor(nil, x, af)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])                         // truncated levels
	f.Add(append(valid, 0, 0, 0))                       // overlong levels
	f.Add(valid[:3])                                    // truncated header
	f.Add([]byte{})                                     // empty
	f.Add([]byte{0, 0, 0, 0, 192, 127, 0})              // rank 0, scale NaN
	f.Add([]byte{0, 0, 0, 128, 127, 0})                 // rank 0, scale +Inf (short: rejected)
	f.Add([]byte{0, 0, 0, 0x80, 0xFF, 0})               // rank 0, scale -Inf... header is 6 bytes for rank 0
	f.Add([]byte{1, 255, 255, 255, 255, 0, 0, 0, 0, 0}) // huge dim
	f.Fuzz(func(t *testing.T, data []byte) {
		got := tensor.New(1)
		err := DequantizeQuantTensorInto(got, data)
		var q QuantTile
		err2 := DecodeQuantTensorInto(&q, data)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("fused decode err=%v, two-step decode err=%v", err, err2)
		}
		if err != nil {
			return
		}
		want := tensor.New(1)
		q.DequantizeInto(want)
		if len(got.Data) != len(want.Data) {
			t.Fatalf("fused decode %d values, two-step %d", len(got.Data), len(want.Data))
		}
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("value %d: fused %g, two-step %g", i, got.Data[i], want.Data[i])
			}
		}
	})
}

// FuzzDecodeQuantTensor: arbitrary quantized tensor payloads must never
// panic; accepted payloads must round-trip through encode exactly.
func FuzzDecodeQuantTensor(f *testing.F) {
	x := tensor.New(1, 2, 3)
	x.Data[0] = 0.5
	x.Data[5] = -1.25
	af := quant.Affine{Scale: 0.25, Zero: 128}
	f.Add(AppendQuantTensor(nil, x, af))
	f.Add([]byte{})
	f.Add([]byte{1, 255, 255, 255, 255})
	f.Add([]byte{0, 0, 0, 0, 0, 0}) // rank 0, scale 0 (rejected)
	f.Fuzz(func(t *testing.T, data []byte) {
		var q QuantTile
		if err := DecodeQuantTensorInto(&q, data); err != nil {
			return
		}
		vol := 1
		for _, d := range q.Shape {
			vol *= d
		}
		if vol != len(q.Levels) {
			t.Fatalf("shape %v volume %d != %d levels", q.Shape, vol, len(q.Levels))
		}
		// Re-encode from the decoded fields: dequantize with the decoded
		// affine, then quantize back — levels must survive exactly because
		// dequantize(q) lands on the centre of q's grid cell.
		xt := tensor.New(q.Shape...)
		tensor.DequantizeAffineSlice(xt.Data, q.Levels, q.Affine.Scale, q.Affine.Zero)
		out := AppendQuantTensor(nil, xt, q.Affine)
		if !bytes.Equal(out, data) {
			t.Fatalf("quantized tensor round trip changed the payload")
		}
	})
}

package core

import (
	"context"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/tensor"
)

func TestStreamConnOverNetPipe(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewStreamConn(a), NewStreamConn(b)
	defer ca.Close()
	defer cb.Close()
	go func() {
		_ = ca.Send(&Message{Kind: KindTask, ImageID: 9, Payload: []byte("hello")})
	}()
	m, err := cb.Recv()
	if err != nil || m.ImageID != 9 || string(m.Payload) != "hello" {
		t.Fatalf("recv %v %+v", err, m)
	}
}

func TestDistributedOverRealTCP(t *testing.T) {
	// Full ADCNN protocol over loopback TCP: two Conv-node servers, one
	// Central client, outputs identical to local execution.
	cfg := models.VGGSim()
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}, ClipLo: 0.02, ClipHi: 2.5, QuantBits: 4}
	m, err := models.Build(cfg, opt, 7)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	conns := make([]Conn, 2)
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		w := NewWorker(i+1, m)
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := ln.Accept()
			if err != nil {
				return
			}
			_ = w.Serve(context.Background(), NewStreamConn(c))
		}()
		dial, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = NewStreamConn(dial)
		defer ln.Close()
	}

	central, err := NewCentral(m, conns, 10*time.Second, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { central.Shutdown(); wg.Wait() }()

	rng := rand.New(rand.NewSource(8))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	want := m.Net.Forward(x, false)
	got, st, err := central.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	if st.TilesMissed != 0 {
		t.Fatalf("missed %d tiles over loopback", st.TilesMissed)
	}
	if !got.Equal(want, 1e-4) {
		t.Fatal("TCP distributed inference must match local execution")
	}
}

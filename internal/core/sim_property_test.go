package core

import (
	"testing"
	"testing/quick"

	"adcnn/internal/perfmodel"
)

// Property: every allocation distributes exactly the grid's tile count,
// across arbitrary mid-run throttle patterns.
func TestSimTileConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := vggSim(t, 8, func(c *SimConfig) { c.Seed = seed; c.Noise = 0.1 })
		// Derive a throttle pattern from the seed.
		frac := 0.2 + float64(uint64(seed)%60)/100.0
		node := int(uint64(seed)%8) + 1
		for i := 0; i < 6; i++ {
			if i == 3 {
				s.cfg.Nodes[node-1].SetThrottle(frac)
			}
			r := s.RunImage()
			if r.Alloc.Total() != 64 {
				return false
			}
			if r.Latency <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a faster link never increases latency (all else equal).
func TestSimLinkMonotonicityProperty(t *testing.T) {
	run := func(mbps float64) int64 {
		s := vggSim(t, 8, func(c *SimConfig) {
			c.Link = perfmodel.LinkModel{Name: "x", BandwidthMbps: mbps, LatencyMs: 0.5, Efficiency: 0.85}
		})
		var sum int64
		for i := 0; i < 5; i++ {
			sum += int64(s.RunImage().Latency)
		}
		return sum
	}
	prev := run(5)
	for _, mbps := range []float64{10, 20, 40, 80, 160} {
		cur := run(mbps)
		if cur > prev {
			t.Fatalf("latency rose when link sped up to %v Mbps", mbps)
		}
		prev = cur
	}
}

// Property: pruning never increases latency.
func TestSimPruningNeverHurtsProperty(t *testing.T) {
	for _, nodes := range []int{2, 4, 8} {
		withP := vggSim(t, nodes, nil)
		withoutP := vggSim(t, nodes, func(c *SimConfig) { c.Pruning = false })
		for i := 0; i < 3; i++ {
			a, b := withP.RunImage().Latency, withoutP.RunImage().Latency
			if a > b {
				t.Fatalf("nodes=%d image %d: pruned %v slower than raw %v", nodes, i, a, b)
			}
		}
	}
}

// Property: more nodes never increases latency in a healthy cluster.
func TestSimNodeMonotonicityProperty(t *testing.T) {
	var prev int64 = 1 << 62
	for _, nodes := range []int{1, 2, 4, 8, 16} {
		s := vggSim(t, nodes, nil)
		var sum int64
		for i := 0; i < 5; i++ {
			sum += int64(s.RunImage().Latency)
		}
		if sum > prev {
			t.Fatalf("latency rose when cluster grew to %d nodes", nodes)
		}
		prev = sum
	}
}

// Property: the stats window tracks node speed — after a throttle, the
// EWMA estimate of a slowed node ends below a healthy one's.
func TestSimStatsTrackSpeedProperty(t *testing.T) {
	f := func(seed int64) bool {
		frac := 0.2 + float64(uint64(seed)%50)/100.0
		s := vggSim(t, 4, nil)
		for i := 0; i < 3; i++ {
			s.RunImage()
		}
		s.cfg.Nodes[1].SetThrottle(frac)
		for i := 0; i < 10; i++ {
			s.RunImage()
		}
		sp := s.Stats().Speeds()
		return sp[1] < sp[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

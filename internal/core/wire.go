package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"unsafe"

	"adcnn/internal/tensor"
)

// MsgKind tags protocol messages.
type MsgKind uint8

// Message kinds.
const (
	KindTask     MsgKind = 1 // Central → Conv: one input tile
	KindResult   MsgKind = 2 // Conv → Central: one intermediate result
	KindShutdown MsgKind = 3 // Central → Conv: stop serving
	// KindProbe is a link-profiling ping: the Central sends an 8-byte
	// payload holding its send timestamp, the Conv node echoes the
	// payload verbatim with a ConvTiming record stamping when the probe
	// was read and when the echo left. The four timestamps feed the
	// session's clock-offset/RTT estimator exactly like a task→result
	// exchange, but without charging the simulated device.
	KindProbe MsgKind = 4
)

// Message is one protocol frame. Tiles carry the image ID and tile ID of
// paper Figure 8 so results can be matched to requests, plus a trace
// context so every hop of a tile's journey lands under one trace.
type Message struct {
	Kind    MsgKind
	ImageID uint32
	TileID  uint32
	NodeID  uint32
	// Compressed marks Payload as a compress-pipeline payload rather
	// than a raw tensor encoding.
	Compressed bool
	// Quantized marks Payload as a quantized tensor encoding (uint8
	// affine levels + scale/zero-point, see AppendQuantTensor) rather
	// than raw float32 words. Task frames use it for the int8 operating
	// mode's uplink: the Conv worker feeds the levels straight into the
	// first convolution's int8 GEMM.
	Quantized bool
	// TraceID is the per-image trace identifier; SpanID is the parent
	// span (the tile dispatch) the receiver should attribute work to.
	// Workers echo both back on the result frame.
	TraceID uint64
	SpanID  uint64
	// Timing is the Conv-side timing record attached to result frames
	// (nil on tasks and on results from a worker that did not time the
	// tile). Timestamps are monotonic nanoseconds on the sender's clock;
	// the Central maps them onto its own clock with the per-session
	// offset estimator.
	Timing *ConvTiming
	// Payload is the frame body. Ownership: a message produced by
	// Conn.Recv owns its payload, which is backed by a pooled wire buffer
	// (tensor.GetBytes); the receiver must call ReleasePayload once the
	// bytes have been consumed (for tile frames: right after the tensor
	// decode that follows demux) — or simply drop the message and let the
	// GC take the buffer. On Send the transport only borrows the payload:
	// once Send returns, the buffer is the caller's again to reuse or
	// release (stream transports have fully serialised it; the in-process
	// pipe hands the peer a pooled copy).
	Payload []byte
}

// ReleasePayload returns the payload's backing storage to the wire
// buffer pool and clears the field. Safe to call twice, on a nil
// payload, or on a payload that never came from the pool (non-pooled
// backing is silently dropped). The caller must not retain views of the
// payload (including decoded-in-place aliases) past this call.
func (m *Message) ReleasePayload() {
	tensor.PutBytes(m.Payload)
	m.Payload = nil
}

// ConvTiming is the per-tile timing record a Conv node attaches to each
// result: six monotonic timestamps (nanoseconds since the Conv process
// epoch) bracketing every stage of the tile's stay on the node.
type ConvTiming struct {
	RecvNs         int64 // task frame read off the wire
	DecodeNs       int64 // input tensor decoded
	ComputeStartNs int64 // device free, Front compute begins (queue wait ends)
	ComputeEndNs   int64 // Front+Boundary forward done
	EncodeNs       int64 // result payload encoded
	SendNs         int64 // result frame about to be written
}

// timingSize is the wire size of a ConvTiming record: 6 × int64.
const timingSize = 48

func (tm *ConvTiming) encode(dst []byte) {
	binary.LittleEndian.PutUint64(dst[0:], uint64(tm.RecvNs))
	binary.LittleEndian.PutUint64(dst[8:], uint64(tm.DecodeNs))
	binary.LittleEndian.PutUint64(dst[16:], uint64(tm.ComputeStartNs))
	binary.LittleEndian.PutUint64(dst[24:], uint64(tm.ComputeEndNs))
	binary.LittleEndian.PutUint64(dst[32:], uint64(tm.EncodeNs))
	binary.LittleEndian.PutUint64(dst[40:], uint64(tm.SendNs))
}

func decodeTiming(tm *ConvTiming, src []byte) {
	tm.RecvNs = int64(binary.LittleEndian.Uint64(src[0:]))
	tm.DecodeNs = int64(binary.LittleEndian.Uint64(src[8:]))
	tm.ComputeStartNs = int64(binary.LittleEndian.Uint64(src[16:]))
	tm.ComputeEndNs = int64(binary.LittleEndian.Uint64(src[24:]))
	tm.EncodeNs = int64(binary.LittleEndian.Uint64(src[32:]))
	tm.SendNs = int64(binary.LittleEndian.Uint64(src[40:]))
}

// Wire frame layout: every frame starts with a magic byte and a protocol
// version byte, so a Central talking to the wrong port (or to a node
// built from an incompatible revision) fails with a clear error instead
// of misparsing a length.
const (
	protoMagic = 0xAD // "ADcnn"
	// ProtoVersion is the wire protocol revision. Bump on any frame
	// layout change. v2 added the trace context (traceID + parent
	// spanID) to every frame and the optional ConvTiming record to
	// results. v3 added the quantized-payload flag (int8 operating
	// mode); the frame layout is unchanged, but a v2 peer would
	// misread a quantized payload as float32 words, so the version
	// gate rejects the pairing outright. v4 added the probe frame
	// kind (link profiling); again no layout change, but a v3 worker
	// treats the unknown kind as a protocol error and drops the
	// session, so the pairing is rejected up front. v5 extended the
	// quantized-payload flag to result frames (levels-native downlink
	// in the int8 operating mode); a v4 Central would misread a
	// quantized result as float32 words, so the pairing is rejected.
	ProtoVersion = 5
)

// ErrProtoVersion reports a peer speaking a different frame revision.
var ErrProtoVersion = errors.New("core: protocol version mismatch")

// ErrBadMagic reports a stream that is not the ADCNN protocol at all.
var ErrBadMagic = errors.New("core: bad frame magic (not an ADCNN peer?)")

const maxFrame = 256 << 20 // 256 MiB guard against corrupt lengths

// bodyHeader is the fixed-size message header inside the frame body:
// kind(1) + imageID(4) + tileID(4) + nodeID(4) + flags(1) +
// traceID(8) + spanID(8).
const bodyHeader = 30

// Header flag bits.
const (
	flagCompressed = 1 << 0 // Payload is a compress-pipeline encoding
	flagTiming     = 1 << 1 // a ConvTiming record precedes the payload
	flagQuantized  = 1 << 2 // Payload is a quantized tensor encoding
)

// WriteMessage frames and writes a message. The header is staged in a
// pooled scratch buffer rather than a stack array: the bytes escape
// through the io.Writer interface, and a per-frame heap header would be
// the last allocation left on the tile round trip.
func WriteMessage(w io.Writer, m *Message) error {
	if len(m.Payload) > maxFrame {
		return fmt.Errorf("core: payload %d exceeds frame limit", len(m.Payload))
	}
	body := uint32(len(m.Payload)) + bodyHeader
	if m.Timing != nil {
		body += timingSize
	}
	scratch := tensor.GetBytes(6 + bodyHeader + timingSize)
	defer tensor.PutBytes(scratch)
	hdr := scratch
	hdr[0] = protoMagic
	hdr[1] = ProtoVersion
	binary.LittleEndian.PutUint32(hdr[2:], body)
	hdr[6] = byte(m.Kind)
	binary.LittleEndian.PutUint32(hdr[7:], m.ImageID)
	binary.LittleEndian.PutUint32(hdr[11:], m.TileID)
	binary.LittleEndian.PutUint32(hdr[15:], m.NodeID)
	var flags byte
	if m.Compressed {
		flags |= flagCompressed
	}
	if m.Timing != nil {
		flags |= flagTiming
	}
	if m.Quantized {
		flags |= flagQuantized
	}
	hdr[19] = flags
	binary.LittleEndian.PutUint64(hdr[20:], m.TraceID)
	binary.LittleEndian.PutUint64(hdr[28:], m.SpanID)
	n := 6 + bodyHeader
	if m.Timing != nil {
		m.Timing.encode(hdr[n:])
		n += timingSize
	}
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.Write(m.Payload)
	return err
}

// ReadMessage reads one framed message. A wrong magic byte or protocol
// version fails with ErrBadMagic / ErrProtoVersion before any length is
// trusted; a v1 peer is named explicitly so the operator knows which
// side to upgrade. The returned message's payload is a pooled wire
// buffer — see Message.Payload for the release contract.
func ReadMessage(r io.Reader) (*Message, error) {
	m := &Message{}
	if err := ReadMessageInto(r, m); err != nil {
		return nil, err
	}
	return m, nil
}

// ReadMessageInto reads one framed message into m, reusing m's Timing
// record and the capacity of m.Payload so a receive loop that recycles
// one Message (or calls ReleasePayload between frames) reads with zero
// steady-state allocations. The frame header and timing record land in
// stack scratch; only the payload bytes touch m.Payload, which is
// re-taken from the wire buffer pool when too small. On error m is left
// partially filled but its Payload storage remains valid to reuse or
// release.
func ReadMessageInto(r io.Reader, m *Message) error {
	// Pooled scratch for the fixed-size frame sections (they escape
	// through the io.Reader interface, so stack arrays would heap-allocate
	// per frame); the payload reads straight into m.Payload.
	scratch := tensor.GetBytes(bodyHeader + timingSize)
	defer tensor.PutBytes(scratch)
	pre := scratch[:6]
	if _, err := io.ReadFull(r, pre); err != nil {
		return err
	}
	if pre[0] != protoMagic {
		return fmt.Errorf("%w: got 0x%02x", ErrBadMagic, pre[0])
	}
	if pre[1] != ProtoVersion {
		return fmt.Errorf("%w: peer speaks v%d, this build speaks v%d",
			ErrProtoVersion, pre[1], ProtoVersion)
	}
	n := binary.LittleEndian.Uint32(pre[2:])
	if n < bodyHeader || n > maxFrame {
		return fmt.Errorf("core: bad frame length %d", n)
	}
	hdr := scratch[:bodyHeader]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return err
	}
	flags := hdr[13]
	m.Kind = MsgKind(hdr[0])
	m.ImageID = binary.LittleEndian.Uint32(hdr[1:])
	m.TileID = binary.LittleEndian.Uint32(hdr[5:])
	m.NodeID = binary.LittleEndian.Uint32(hdr[9:])
	m.Compressed = flags&flagCompressed != 0
	m.Quantized = flags&flagQuantized != 0
	m.TraceID = binary.LittleEndian.Uint64(hdr[14:])
	m.SpanID = binary.LittleEndian.Uint64(hdr[22:])
	rest := int(n) - bodyHeader
	if flags&flagTiming != 0 {
		if rest < timingSize {
			return fmt.Errorf("core: frame advertises a timing record but carries %d bytes", rest)
		}
		tb := scratch[:timingSize]
		if _, err := io.ReadFull(r, tb); err != nil {
			return err
		}
		if m.Timing == nil {
			m.Timing = new(ConvTiming)
		}
		decodeTiming(m.Timing, tb)
		rest -= timingSize
	} else {
		m.Timing = nil
	}
	if cap(m.Payload) < rest {
		tensor.PutBytes(m.Payload)
		m.Payload = tensor.GetBytes(rest)
	}
	m.Payload = m.Payload[:rest]
	_, err := io.ReadFull(r, m.Payload)
	return err
}

// hostLittleEndian reports whether float32 words can be bulk-copied into
// the (little-endian) wire format without per-element byte swaps.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// putFloat32s writes src as little-endian uint32 words into dst
// (len(dst) ≥ 4·len(src)). On little-endian hosts the float data already
// has the wire layout, so the whole slice is copied as bytes in one
// memmove instead of a per-element PutUint32 loop.
func putFloat32s(dst []byte, src []float32) {
	if len(src) == 0 {
		return
	}
	if hostLittleEndian {
		copy(dst, unsafe.Slice((*byte)(unsafe.Pointer(&src[0])), 4*len(src)))
		return
	}
	for i, v := range src {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(v))
	}
}

// getFloat32s reads len(dst) little-endian float32 words from src.
func getFloat32s(dst []float32, src []byte) {
	if len(dst) == 0 {
		return
	}
	if hostLittleEndian {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), 4*len(dst)), src)
		return
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
}

// TensorWireSize is the exact byte length EncodeTensor/AppendTensor
// produce for t, so callers can pre-size a pooled buffer.
func TensorWireSize(t *tensor.Tensor) int { return 1 + 4*t.Rank() + 4*t.Len() }

// AppendTensor serialises t (shape + raw float32 data) onto dst and
// returns the extended slice. When dst has TensorWireSize spare
// capacity — e.g. a buffer from tensor.GetBytes — no allocation occurs.
func AppendTensor(dst []byte, t *tensor.Tensor) []byte {
	off := len(dst)
	need := TensorWireSize(t)
	if cap(dst) < off+need {
		grown := make([]byte, off, off+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+need]
	dst[off] = byte(t.Rank())
	p := off + 1
	for _, d := range t.Shape {
		binary.LittleEndian.PutUint32(dst[p:], uint32(d))
		p += 4
	}
	putFloat32s(dst[p:], t.Data)
	return dst
}

// EncodeTensor serialises a tensor as shape + raw float32 data.
func EncodeTensor(t *tensor.Tensor) []byte {
	return AppendTensor(make([]byte, 0, TensorWireSize(t)), t)
}

// DecodeTensor reverses EncodeTensor into a fresh tensor. Hot paths
// should use DecodeTensorInto with a recycled destination instead.
func DecodeTensor(data []byte) (*tensor.Tensor, error) {
	t := &tensor.Tensor{}
	if err := DecodeTensorInto(t, data); err != nil {
		return nil, err
	}
	return t, nil
}

// DecodeTensorInto decodes an EncodeTensor payload into dst, reshaping
// it in place. Like compress.DecodeInto, dst must own its storage: a
// too-small backing array is swapped for one from the tensor buffer
// pool, so a reused (or pool-released) destination decodes with zero
// steady-state allocations. The payload bytes are fully copied out —
// dst never aliases data, so the caller may release the wire buffer
// immediately after this returns.
func DecodeTensorInto(dst *tensor.Tensor, data []byte) error {
	if len(data) < 1 {
		return errors.New("core: empty tensor payload")
	}
	rank := int(data[0])
	off := 1
	if len(data) < off+4*rank {
		return errors.New("core: truncated tensor header")
	}
	dst.Shape = dst.Shape[:0]
	vol := 1
	for i := 0; i < rank; i++ {
		d := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		dst.Shape = append(dst.Shape, d)
		vol *= d
		// Guard against integer overflow from corrupt shape headers: no
		// legitimate payload exceeds the frame limit.
		if vol < 0 || vol > maxFrame/4 {
			return fmt.Errorf("core: tensor volume overflows frame limit")
		}
	}
	if len(data) != off+4*vol {
		return fmt.Errorf("core: tensor payload %d bytes, want %d", len(data), off+4*vol)
	}
	if cap(dst.Data) < vol {
		tensor.PutBuf(dst.Data)
		dst.Data = tensor.GetBuf(vol)
	}
	dst.Data = dst.Data[:vol]
	getFloat32s(dst.Data, data[off:])
	return nil
}

// Conn is a bidirectional message channel between Central and one Conv
// node.
//
// Send borrows m for the duration of the call: once it returns, the
// caller owns m and m.Payload again and may overwrite or release them
// (the stream transport has serialised the frame; the in-process pipe
// enqueues a pooled copy). Recv transfers payload ownership to the
// caller — see Message.Payload.
type Conn interface {
	Send(m *Message) error
	Recv() (*Message, error)
	Close() error
}

// chanConn is the in-process transport: two buffered channels.
type chanConn struct {
	out    chan<- *Message
	in     <-chan *Message
	closed chan struct{}
}

// Pipe returns a connected pair of in-process Conns.
func Pipe() (a, b Conn) {
	ab := make(chan *Message, 1024)
	ba := make(chan *Message, 1024)
	closed := make(chan struct{})
	return &chanConn{out: ab, in: ba, closed: closed},
		&chanConn{out: ba, in: ab, closed: closed}
}

func (c *chanConn) Send(m *Message) error {
	// Check the closed flag first: with a buffered channel both select
	// cases can be ready and the choice would be random.
	select {
	case <-c.closed:
		return errors.New("core: connection closed")
	default:
	}
	// Honour the Conn.Send borrow contract: the caller may reuse m and
	// m.Payload the moment Send returns, so the peer must receive its
	// own copy — struct, timing record, and a pooled payload clone the
	// receiver can ReleasePayload exactly like a stream-read frame.
	cp := new(Message)
	*cp = *m
	if m.Timing != nil {
		tm := *m.Timing
		cp.Timing = &tm
	}
	if m.Payload != nil {
		cp.Payload = tensor.GetBytes(len(m.Payload))
		copy(cp.Payload, m.Payload)
	}
	select {
	case <-c.closed:
		cp.ReleasePayload()
		return errors.New("core: connection closed")
	case c.out <- cp:
		return nil
	}
}

func (c *chanConn) Recv() (*Message, error) {
	select {
	case <-c.closed:
		return nil, io.EOF
	case m, ok := <-c.in:
		if !ok {
			return nil, io.EOF
		}
		return m, nil
	}
}

func (c *chanConn) Close() error {
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	return nil
}

// streamConn adapts an io.ReadWriteCloser (e.g. a TCP connection) to
// Conn with buffered framing.
type streamConn struct {
	rw io.ReadWriteCloser
	br *bufio.Reader
	bw *bufio.Writer
}

// NewStreamConn wraps a byte stream in the message framing.
func NewStreamConn(rw io.ReadWriteCloser) Conn {
	return &streamConn{rw: rw, br: bufio.NewReaderSize(rw, 1<<16), bw: bufio.NewWriterSize(rw, 1<<16)}
}

func (s *streamConn) Send(m *Message) error {
	if err := WriteMessage(s.bw, m); err != nil {
		return err
	}
	return s.bw.Flush()
}

func (s *streamConn) Recv() (*Message, error) { return ReadMessage(s.br) }

func (s *streamConn) Close() error { return s.rw.Close() }

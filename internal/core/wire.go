package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"unsafe"

	"adcnn/internal/tensor"
)

// MsgKind tags protocol messages.
type MsgKind uint8

// Message kinds.
const (
	KindTask     MsgKind = 1 // Central → Conv: one input tile
	KindResult   MsgKind = 2 // Conv → Central: one intermediate result
	KindShutdown MsgKind = 3 // Central → Conv: stop serving
)

// Message is one protocol frame. Tiles carry the image ID and tile ID of
// paper Figure 8 so results can be matched to requests.
type Message struct {
	Kind    MsgKind
	ImageID uint32
	TileID  uint32
	NodeID  uint32
	// Compressed marks Payload as a compress-pipeline payload rather
	// than a raw tensor encoding.
	Compressed bool
	Payload    []byte
}

// Wire frame layout: every frame starts with a magic byte and a protocol
// version byte, so a Central talking to the wrong port (or to a node
// built from an incompatible revision) fails with a clear error instead
// of misparsing a length.
const (
	protoMagic = 0xAD // "ADcnn"
	// ProtoVersion is the wire protocol revision. Bump on any frame
	// layout change.
	ProtoVersion = 1
)

// ErrProtoVersion reports a peer speaking a different frame revision.
var ErrProtoVersion = errors.New("core: protocol version mismatch")

// ErrBadMagic reports a stream that is not the ADCNN protocol at all.
var ErrBadMagic = errors.New("core: bad frame magic (not an ADCNN peer?)")

const maxFrame = 256 << 20 // 256 MiB guard against corrupt lengths

// bodyHeader is the fixed-size message header inside the frame body:
// kind(1) + imageID(4) + tileID(4) + nodeID(4) + compressed(1).
const bodyHeader = 14

// WriteMessage frames and writes a message.
func WriteMessage(w io.Writer, m *Message) error {
	if len(m.Payload) > maxFrame {
		return fmt.Errorf("core: payload %d exceeds frame limit", len(m.Payload))
	}
	var hdr [20]byte
	hdr[0] = protoMagic
	hdr[1] = ProtoVersion
	binary.LittleEndian.PutUint32(hdr[2:], uint32(len(m.Payload))+bodyHeader)
	hdr[6] = byte(m.Kind)
	binary.LittleEndian.PutUint32(hdr[7:], m.ImageID)
	binary.LittleEndian.PutUint32(hdr[11:], m.TileID)
	binary.LittleEndian.PutUint32(hdr[15:], m.NodeID)
	if m.Compressed {
		hdr[19] = 1
	}
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(m.Payload)
	return err
}

// ReadMessage reads one framed message. A wrong magic byte or protocol
// version fails with ErrBadMagic / ErrProtoVersion before any length is
// trusted.
func ReadMessage(r io.Reader) (*Message, error) {
	var pre [6]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, err
	}
	if pre[0] != protoMagic {
		return nil, fmt.Errorf("%w: got 0x%02x", ErrBadMagic, pre[0])
	}
	if pre[1] != ProtoVersion {
		return nil, fmt.Errorf("%w: peer speaks v%d, this build speaks v%d",
			ErrProtoVersion, pre[1], ProtoVersion)
	}
	n := binary.LittleEndian.Uint32(pre[2:])
	if n < bodyHeader || n > maxFrame {
		return nil, fmt.Errorf("core: bad frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	m := &Message{
		Kind:       MsgKind(body[0]),
		ImageID:    binary.LittleEndian.Uint32(body[1:]),
		TileID:     binary.LittleEndian.Uint32(body[5:]),
		NodeID:     binary.LittleEndian.Uint32(body[9:]),
		Compressed: body[13] == 1,
		Payload:    body[14:],
	}
	return m, nil
}

// hostLittleEndian reports whether float32 words can be bulk-copied into
// the (little-endian) wire format without per-element byte swaps.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// putFloat32s writes src as little-endian uint32 words into dst
// (len(dst) ≥ 4·len(src)). On little-endian hosts the float data already
// has the wire layout, so the whole slice is copied as bytes in one
// memmove instead of a per-element PutUint32 loop.
func putFloat32s(dst []byte, src []float32) {
	if len(src) == 0 {
		return
	}
	if hostLittleEndian {
		copy(dst, unsafe.Slice((*byte)(unsafe.Pointer(&src[0])), 4*len(src)))
		return
	}
	for i, v := range src {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(v))
	}
}

// getFloat32s reads len(dst) little-endian float32 words from src.
func getFloat32s(dst []float32, src []byte) {
	if len(dst) == 0 {
		return
	}
	if hostLittleEndian {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), 4*len(dst)), src)
		return
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
}

// EncodeTensor serialises a tensor as shape + raw float32 data.
func EncodeTensor(t *tensor.Tensor) []byte {
	out := make([]byte, 1+4*t.Rank()+4*t.Len())
	out[0] = byte(t.Rank())
	off := 1
	for _, d := range t.Shape {
		binary.LittleEndian.PutUint32(out[off:], uint32(d))
		off += 4
	}
	putFloat32s(out[off:], t.Data)
	return out
}

// DecodeTensor reverses EncodeTensor.
func DecodeTensor(data []byte) (*tensor.Tensor, error) {
	if len(data) < 1 {
		return nil, errors.New("core: empty tensor payload")
	}
	rank := int(data[0])
	off := 1
	if len(data) < off+4*rank {
		return nil, errors.New("core: truncated tensor header")
	}
	shape := make([]int, rank)
	vol := 1
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		vol *= shape[i]
		// Guard against integer overflow from corrupt shape headers: no
		// legitimate payload exceeds the frame limit.
		if vol < 0 || vol > maxFrame/4 {
			return nil, fmt.Errorf("core: tensor volume overflows frame limit")
		}
	}
	if len(data) != off+4*vol {
		return nil, fmt.Errorf("core: tensor payload %d bytes, want %d", len(data), off+4*vol)
	}
	t := tensor.New(shape...)
	getFloat32s(t.Data, data[off:])
	return t, nil
}

// Conn is a bidirectional message channel between Central and one Conv
// node.
type Conn interface {
	Send(m *Message) error
	Recv() (*Message, error)
	Close() error
}

// chanConn is the in-process transport: two buffered channels.
type chanConn struct {
	out    chan<- *Message
	in     <-chan *Message
	closed chan struct{}
}

// Pipe returns a connected pair of in-process Conns.
func Pipe() (a, b Conn) {
	ab := make(chan *Message, 1024)
	ba := make(chan *Message, 1024)
	closed := make(chan struct{})
	return &chanConn{out: ab, in: ba, closed: closed},
		&chanConn{out: ba, in: ab, closed: closed}
}

func (c *chanConn) Send(m *Message) error {
	// Check the closed flag first: with a buffered channel both select
	// cases can be ready and the choice would be random.
	select {
	case <-c.closed:
		return errors.New("core: connection closed")
	default:
	}
	select {
	case <-c.closed:
		return errors.New("core: connection closed")
	case c.out <- m:
		return nil
	}
}

func (c *chanConn) Recv() (*Message, error) {
	select {
	case <-c.closed:
		return nil, io.EOF
	case m, ok := <-c.in:
		if !ok {
			return nil, io.EOF
		}
		return m, nil
	}
}

func (c *chanConn) Close() error {
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	return nil
}

// streamConn adapts an io.ReadWriteCloser (e.g. a TCP connection) to
// Conn with buffered framing.
type streamConn struct {
	rw io.ReadWriteCloser
	br *bufio.Reader
	bw *bufio.Writer
}

// NewStreamConn wraps a byte stream in the message framing.
func NewStreamConn(rw io.ReadWriteCloser) Conn {
	return &streamConn{rw: rw, br: bufio.NewReaderSize(rw, 1<<16), bw: bufio.NewWriterSize(rw, 1<<16)}
}

func (s *streamConn) Send(m *Message) error {
	if err := WriteMessage(s.bw, m); err != nil {
		return err
	}
	return s.bw.Flush()
}

func (s *streamConn) Recv() (*Message, error) { return ReadMessage(s.br) }

func (s *streamConn) Close() error { return s.rw.Close() }

package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"unsafe"

	"adcnn/internal/tensor"
)

// MsgKind tags protocol messages.
type MsgKind uint8

// Message kinds.
const (
	KindTask     MsgKind = 1 // Central → Conv: one input tile
	KindResult   MsgKind = 2 // Conv → Central: one intermediate result
	KindShutdown MsgKind = 3 // Central → Conv: stop serving
)

// Message is one protocol frame. Tiles carry the image ID and tile ID of
// paper Figure 8 so results can be matched to requests, plus a trace
// context so every hop of a tile's journey lands under one trace.
type Message struct {
	Kind    MsgKind
	ImageID uint32
	TileID  uint32
	NodeID  uint32
	// Compressed marks Payload as a compress-pipeline payload rather
	// than a raw tensor encoding.
	Compressed bool
	// TraceID is the per-image trace identifier; SpanID is the parent
	// span (the tile dispatch) the receiver should attribute work to.
	// Workers echo both back on the result frame.
	TraceID uint64
	SpanID  uint64
	// Timing is the Conv-side timing record attached to result frames
	// (nil on tasks and on results from a worker that did not time the
	// tile). Timestamps are monotonic nanoseconds on the sender's clock;
	// the Central maps them onto its own clock with the per-session
	// offset estimator.
	Timing  *ConvTiming
	Payload []byte
}

// ConvTiming is the per-tile timing record a Conv node attaches to each
// result: six monotonic timestamps (nanoseconds since the Conv process
// epoch) bracketing every stage of the tile's stay on the node.
type ConvTiming struct {
	RecvNs         int64 // task frame read off the wire
	DecodeNs       int64 // input tensor decoded
	ComputeStartNs int64 // device free, Front compute begins (queue wait ends)
	ComputeEndNs   int64 // Front+Boundary forward done
	EncodeNs       int64 // result payload encoded
	SendNs         int64 // result frame about to be written
}

// timingSize is the wire size of a ConvTiming record: 6 × int64.
const timingSize = 48

func (tm *ConvTiming) encode(dst []byte) {
	binary.LittleEndian.PutUint64(dst[0:], uint64(tm.RecvNs))
	binary.LittleEndian.PutUint64(dst[8:], uint64(tm.DecodeNs))
	binary.LittleEndian.PutUint64(dst[16:], uint64(tm.ComputeStartNs))
	binary.LittleEndian.PutUint64(dst[24:], uint64(tm.ComputeEndNs))
	binary.LittleEndian.PutUint64(dst[32:], uint64(tm.EncodeNs))
	binary.LittleEndian.PutUint64(dst[40:], uint64(tm.SendNs))
}

func decodeTiming(src []byte) *ConvTiming {
	return &ConvTiming{
		RecvNs:         int64(binary.LittleEndian.Uint64(src[0:])),
		DecodeNs:       int64(binary.LittleEndian.Uint64(src[8:])),
		ComputeStartNs: int64(binary.LittleEndian.Uint64(src[16:])),
		ComputeEndNs:   int64(binary.LittleEndian.Uint64(src[24:])),
		EncodeNs:       int64(binary.LittleEndian.Uint64(src[32:])),
		SendNs:         int64(binary.LittleEndian.Uint64(src[40:])),
	}
}

// Wire frame layout: every frame starts with a magic byte and a protocol
// version byte, so a Central talking to the wrong port (or to a node
// built from an incompatible revision) fails with a clear error instead
// of misparsing a length.
const (
	protoMagic = 0xAD // "ADcnn"
	// ProtoVersion is the wire protocol revision. Bump on any frame
	// layout change. v2 added the trace context (traceID + parent
	// spanID) to every frame and the optional ConvTiming record to
	// results.
	ProtoVersion = 2
)

// ErrProtoVersion reports a peer speaking a different frame revision.
var ErrProtoVersion = errors.New("core: protocol version mismatch")

// ErrBadMagic reports a stream that is not the ADCNN protocol at all.
var ErrBadMagic = errors.New("core: bad frame magic (not an ADCNN peer?)")

const maxFrame = 256 << 20 // 256 MiB guard against corrupt lengths

// bodyHeader is the fixed-size message header inside the frame body:
// kind(1) + imageID(4) + tileID(4) + nodeID(4) + flags(1) +
// traceID(8) + spanID(8).
const bodyHeader = 30

// Header flag bits.
const (
	flagCompressed = 1 << 0 // Payload is a compress-pipeline encoding
	flagTiming     = 1 << 1 // a ConvTiming record precedes the payload
)

// WriteMessage frames and writes a message.
func WriteMessage(w io.Writer, m *Message) error {
	if len(m.Payload) > maxFrame {
		return fmt.Errorf("core: payload %d exceeds frame limit", len(m.Payload))
	}
	body := uint32(len(m.Payload)) + bodyHeader
	if m.Timing != nil {
		body += timingSize
	}
	var hdr [6 + bodyHeader + timingSize]byte
	hdr[0] = protoMagic
	hdr[1] = ProtoVersion
	binary.LittleEndian.PutUint32(hdr[2:], body)
	hdr[6] = byte(m.Kind)
	binary.LittleEndian.PutUint32(hdr[7:], m.ImageID)
	binary.LittleEndian.PutUint32(hdr[11:], m.TileID)
	binary.LittleEndian.PutUint32(hdr[15:], m.NodeID)
	var flags byte
	if m.Compressed {
		flags |= flagCompressed
	}
	if m.Timing != nil {
		flags |= flagTiming
	}
	hdr[19] = flags
	binary.LittleEndian.PutUint64(hdr[20:], m.TraceID)
	binary.LittleEndian.PutUint64(hdr[28:], m.SpanID)
	n := 6 + bodyHeader
	if m.Timing != nil {
		m.Timing.encode(hdr[n:])
		n += timingSize
	}
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.Write(m.Payload)
	return err
}

// ReadMessage reads one framed message. A wrong magic byte or protocol
// version fails with ErrBadMagic / ErrProtoVersion before any length is
// trusted; a v1 peer is named explicitly so the operator knows which
// side to upgrade.
func ReadMessage(r io.Reader) (*Message, error) {
	var pre [6]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, err
	}
	if pre[0] != protoMagic {
		return nil, fmt.Errorf("%w: got 0x%02x", ErrBadMagic, pre[0])
	}
	if pre[1] != ProtoVersion {
		return nil, fmt.Errorf("%w: peer speaks v%d, this build speaks v%d",
			ErrProtoVersion, pre[1], ProtoVersion)
	}
	n := binary.LittleEndian.Uint32(pre[2:])
	if n < bodyHeader || n > maxFrame {
		return nil, fmt.Errorf("core: bad frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	flags := body[13]
	m := &Message{
		Kind:       MsgKind(body[0]),
		ImageID:    binary.LittleEndian.Uint32(body[1:]),
		TileID:     binary.LittleEndian.Uint32(body[5:]),
		NodeID:     binary.LittleEndian.Uint32(body[9:]),
		Compressed: flags&flagCompressed != 0,
		TraceID:    binary.LittleEndian.Uint64(body[14:]),
		SpanID:     binary.LittleEndian.Uint64(body[22:]),
	}
	rest := body[bodyHeader:]
	if flags&flagTiming != 0 {
		if len(rest) < timingSize {
			return nil, fmt.Errorf("core: frame advertises a timing record but carries %d bytes", len(rest))
		}
		m.Timing = decodeTiming(rest)
		rest = rest[timingSize:]
	}
	m.Payload = rest
	return m, nil
}

// hostLittleEndian reports whether float32 words can be bulk-copied into
// the (little-endian) wire format without per-element byte swaps.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// putFloat32s writes src as little-endian uint32 words into dst
// (len(dst) ≥ 4·len(src)). On little-endian hosts the float data already
// has the wire layout, so the whole slice is copied as bytes in one
// memmove instead of a per-element PutUint32 loop.
func putFloat32s(dst []byte, src []float32) {
	if len(src) == 0 {
		return
	}
	if hostLittleEndian {
		copy(dst, unsafe.Slice((*byte)(unsafe.Pointer(&src[0])), 4*len(src)))
		return
	}
	for i, v := range src {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(v))
	}
}

// getFloat32s reads len(dst) little-endian float32 words from src.
func getFloat32s(dst []float32, src []byte) {
	if len(dst) == 0 {
		return
	}
	if hostLittleEndian {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), 4*len(dst)), src)
		return
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
}

// EncodeTensor serialises a tensor as shape + raw float32 data.
func EncodeTensor(t *tensor.Tensor) []byte {
	out := make([]byte, 1+4*t.Rank()+4*t.Len())
	out[0] = byte(t.Rank())
	off := 1
	for _, d := range t.Shape {
		binary.LittleEndian.PutUint32(out[off:], uint32(d))
		off += 4
	}
	putFloat32s(out[off:], t.Data)
	return out
}

// DecodeTensor reverses EncodeTensor.
func DecodeTensor(data []byte) (*tensor.Tensor, error) {
	if len(data) < 1 {
		return nil, errors.New("core: empty tensor payload")
	}
	rank := int(data[0])
	off := 1
	if len(data) < off+4*rank {
		return nil, errors.New("core: truncated tensor header")
	}
	shape := make([]int, rank)
	vol := 1
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		vol *= shape[i]
		// Guard against integer overflow from corrupt shape headers: no
		// legitimate payload exceeds the frame limit.
		if vol < 0 || vol > maxFrame/4 {
			return nil, fmt.Errorf("core: tensor volume overflows frame limit")
		}
	}
	if len(data) != off+4*vol {
		return nil, fmt.Errorf("core: tensor payload %d bytes, want %d", len(data), off+4*vol)
	}
	t := tensor.New(shape...)
	getFloat32s(t.Data, data[off:])
	return t, nil
}

// Conn is a bidirectional message channel between Central and one Conv
// node.
type Conn interface {
	Send(m *Message) error
	Recv() (*Message, error)
	Close() error
}

// chanConn is the in-process transport: two buffered channels.
type chanConn struct {
	out    chan<- *Message
	in     <-chan *Message
	closed chan struct{}
}

// Pipe returns a connected pair of in-process Conns.
func Pipe() (a, b Conn) {
	ab := make(chan *Message, 1024)
	ba := make(chan *Message, 1024)
	closed := make(chan struct{})
	return &chanConn{out: ab, in: ba, closed: closed},
		&chanConn{out: ba, in: ab, closed: closed}
}

func (c *chanConn) Send(m *Message) error {
	// Check the closed flag first: with a buffered channel both select
	// cases can be ready and the choice would be random.
	select {
	case <-c.closed:
		return errors.New("core: connection closed")
	default:
	}
	select {
	case <-c.closed:
		return errors.New("core: connection closed")
	case c.out <- m:
		return nil
	}
}

func (c *chanConn) Recv() (*Message, error) {
	select {
	case <-c.closed:
		return nil, io.EOF
	case m, ok := <-c.in:
		if !ok {
			return nil, io.EOF
		}
		return m, nil
	}
}

func (c *chanConn) Close() error {
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	return nil
}

// streamConn adapts an io.ReadWriteCloser (e.g. a TCP connection) to
// Conn with buffered framing.
type streamConn struct {
	rw io.ReadWriteCloser
	br *bufio.Reader
	bw *bufio.Writer
}

// NewStreamConn wraps a byte stream in the message framing.
func NewStreamConn(rw io.ReadWriteCloser) Conn {
	return &streamConn{rw: rw, br: bufio.NewReaderSize(rw, 1<<16), bw: bufio.NewWriterSize(rw, 1<<16)}
}

func (s *streamConn) Send(m *Message) error {
	if err := WriteMessage(s.bw, m); err != nil {
		return err
	}
	return s.bw.Flush()
}

func (s *streamConn) Recv() (*Message, error) { return ReadMessage(s.br) }

func (s *streamConn) Close() error { return s.rw.Close() }

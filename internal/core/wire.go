package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"adcnn/internal/tensor"
)

// MsgKind tags protocol messages.
type MsgKind uint8

// Message kinds.
const (
	KindTask     MsgKind = 1 // Central → Conv: one input tile
	KindResult   MsgKind = 2 // Conv → Central: one intermediate result
	KindShutdown MsgKind = 3 // Central → Conv: stop serving
)

// Message is one protocol frame. Tiles carry the image ID and tile ID of
// paper Figure 8 so results can be matched to requests.
type Message struct {
	Kind    MsgKind
	ImageID uint32
	TileID  uint32
	NodeID  uint32
	// Compressed marks Payload as a compress-pipeline payload rather
	// than a raw tensor encoding.
	Compressed bool
	Payload    []byte
}

const maxFrame = 256 << 20 // 256 MiB guard against corrupt lengths

// WriteMessage frames and writes a message.
func WriteMessage(w io.Writer, m *Message) error {
	if len(m.Payload) > maxFrame {
		return fmt.Errorf("core: payload %d exceeds frame limit", len(m.Payload))
	}
	var hdr [18]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(m.Payload))+14)
	hdr[4] = byte(m.Kind)
	binary.LittleEndian.PutUint32(hdr[5:], m.ImageID)
	binary.LittleEndian.PutUint32(hdr[9:], m.TileID)
	binary.LittleEndian.PutUint32(hdr[13:], m.NodeID)
	if m.Compressed {
		hdr[17] = 1
	}
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(m.Payload)
	return err
}

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (*Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < 14 || n > maxFrame {
		return nil, fmt.Errorf("core: bad frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	m := &Message{
		Kind:       MsgKind(body[0]),
		ImageID:    binary.LittleEndian.Uint32(body[1:]),
		TileID:     binary.LittleEndian.Uint32(body[5:]),
		NodeID:     binary.LittleEndian.Uint32(body[9:]),
		Compressed: body[13] == 1,
		Payload:    body[14:],
	}
	return m, nil
}

// EncodeTensor serialises a tensor as shape + raw float32 data.
func EncodeTensor(t *tensor.Tensor) []byte {
	out := make([]byte, 1+4*t.Rank()+4*t.Len())
	out[0] = byte(t.Rank())
	off := 1
	for _, d := range t.Shape {
		binary.LittleEndian.PutUint32(out[off:], uint32(d))
		off += 4
	}
	for _, v := range t.Data {
		binary.LittleEndian.PutUint32(out[off:], math.Float32bits(v))
		off += 4
	}
	return out
}

// DecodeTensor reverses EncodeTensor.
func DecodeTensor(data []byte) (*tensor.Tensor, error) {
	if len(data) < 1 {
		return nil, errors.New("core: empty tensor payload")
	}
	rank := int(data[0])
	off := 1
	if len(data) < off+4*rank {
		return nil, errors.New("core: truncated tensor header")
	}
	shape := make([]int, rank)
	vol := 1
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		vol *= shape[i]
		// Guard against integer overflow from corrupt shape headers: no
		// legitimate payload exceeds the frame limit.
		if vol < 0 || vol > maxFrame/4 {
			return nil, fmt.Errorf("core: tensor volume overflows frame limit")
		}
	}
	if len(data) != off+4*vol {
		return nil, fmt.Errorf("core: tensor payload %d bytes, want %d", len(data), off+4*vol)
	}
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
		off += 4
	}
	return t, nil
}

// Conn is a bidirectional message channel between Central and one Conv
// node.
type Conn interface {
	Send(m *Message) error
	Recv() (*Message, error)
	Close() error
}

// chanConn is the in-process transport: two buffered channels.
type chanConn struct {
	out    chan<- *Message
	in     <-chan *Message
	closed chan struct{}
}

// Pipe returns a connected pair of in-process Conns.
func Pipe() (a, b Conn) {
	ab := make(chan *Message, 1024)
	ba := make(chan *Message, 1024)
	closed := make(chan struct{})
	return &chanConn{out: ab, in: ba, closed: closed},
		&chanConn{out: ba, in: ab, closed: closed}
}

func (c *chanConn) Send(m *Message) error {
	// Check the closed flag first: with a buffered channel both select
	// cases can be ready and the choice would be random.
	select {
	case <-c.closed:
		return errors.New("core: connection closed")
	default:
	}
	select {
	case <-c.closed:
		return errors.New("core: connection closed")
	case c.out <- m:
		return nil
	}
}

func (c *chanConn) Recv() (*Message, error) {
	select {
	case <-c.closed:
		return nil, io.EOF
	case m, ok := <-c.in:
		if !ok {
			return nil, io.EOF
		}
		return m, nil
	}
}

func (c *chanConn) Close() error {
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	return nil
}

// streamConn adapts an io.ReadWriteCloser (e.g. a TCP connection) to
// Conn with buffered framing.
type streamConn struct {
	rw io.ReadWriteCloser
	br *bufio.Reader
	bw *bufio.Writer
}

// NewStreamConn wraps a byte stream in the message framing.
func NewStreamConn(rw io.ReadWriteCloser) Conn {
	return &streamConn{rw: rw, br: bufio.NewReaderSize(rw, 1<<16), bw: bufio.NewWriterSize(rw, 1<<16)}
}

func (s *streamConn) Send(m *Message) error {
	if err := WriteMessage(s.bw, m); err != nil {
		return err
	}
	return s.bw.Flush()
}

func (s *streamConn) Recv() (*Message, error) { return ReadMessage(s.br) }

func (s *streamConn) Close() error { return s.rw.Close() }

package core

import (
	"fmt"
	"io"
	"time"
)

// The per-tile phase taxonomy. Every tile's end-to-end latency is
// decomposed into six consecutive phases of its journey (paper Figs.
// 8/11 separate transfer from compute; this is the runtime's finer
// rendering of that split):
//
//	dispatch_queue  enqueue on the Central → frame handed to the socket
//	uplink          frame on the wire → task read by the Conv node
//	node_queue      task read → compute begins (decode + device queue wait)
//	compute         Front+Boundary forward + result encode on the node
//	downlink        result frame written → read back by the Central
//	collect         result decoded → popped by the image's collector
//
// The Conv-internal phases come straight from the ConvTiming record
// (differences of same-clock timestamps, so no offset error); the
// uplink/downlink split of the network time uses the session's clock
// offset estimate, clamped so the six phases always sum to the
// measured end-to-end tile latency exactly.
const (
	PhaseDispatchQueue = iota
	PhaseUplink
	PhaseNodeQueue
	PhaseCompute
	PhaseDownlink
	PhaseCollect
	NumPhases
)

// PhaseNames maps phase indices to their metric label values.
var PhaseNames = [NumPhases]string{
	"dispatch_queue", "uplink", "node_queue", "compute", "downlink", "collect",
}

// monoEpoch anchors the process-wide monotonic clock used on the wire:
// both sides timestamp with nanoseconds since their own process start,
// and the Central's offset estimator maps a Conv node's readings onto
// the Central's epoch.
var monoEpoch = time.Now()

// monoNow returns monotonic nanoseconds since the process epoch.
func monoNow() int64 { return int64(time.Since(monoEpoch)) }

// monoWall converts a monotonic reading (this process's clock) back to
// a wall instant, for trace offsets.
func monoWall(ns int64) time.Time { return monoEpoch.Add(time.Duration(ns)) }

// TileBreakdown is one tile's reconstructed timeline.
type TileBreakdown struct {
	Tile  int
	Node  int
	Total time.Duration // enqueue → collected (sum of Phase)
	Phase [NumPhases]time.Duration
	// Conv is the raw Conv-side timing record (that node's clock) and
	// OffsetNs the estimated offset that maps it onto the Central's
	// clock (add to Conv timestamps). Nil/zero when the worker sent no
	// timing record — then only dispatch-queue and a merged remainder
	// are attributable and Phase holds the coarse split.
	Conv     *ConvTiming
	OffsetNs int64
}

// Breakdown is one image's per-tile latency decomposition, surfaced on
// InferStats. Tiles appear in arrival order; tiles that missed the
// deadline are absent.
type Breakdown struct {
	Image   uint32
	TraceID uint64
	Tiles   []TileBreakdown
}

// newTileBreakdown reconstructs one tile's phase timeline from the
// Central-side timestamps (central mono ns) and the Conv timing record.
func newTileBreakdown(tile, node int, enqNs, sentNs, recvNs, collectNs int64, tm *ConvTiming, offsetNs int64) TileBreakdown {
	b := TileBreakdown{
		Tile: tile, Node: node,
		Total: time.Duration(collectNs - enqNs),
		Conv:  tm, OffsetNs: offsetNs,
	}
	if sentNs < enqNs { // never marked sent (shouldn't happen); fold into dispatch
		sentNs = enqNs
	}
	b.Phase[PhaseDispatchQueue] = time.Duration(sentNs - enqNs)
	b.Phase[PhaseCollect] = time.Duration(collectNs - recvNs)
	if tm == nil {
		// No Conv-side record: everything between send and receive is one
		// opaque blob; call it compute so the sum still closes.
		b.Phase[PhaseCompute] = time.Duration(recvNs - sentNs)
		return b
	}
	// Conv-internal phases are same-clock differences — offset-free.
	nodeQueue := tm.ComputeStartNs - tm.RecvNs
	computeT := tm.SendNs - tm.ComputeStartNs
	if nodeQueue < 0 {
		nodeQueue = 0
	}
	if computeT < 0 {
		computeT = 0
	}
	// The total network time is also offset-free: round trip minus the
	// tile's stay on the node. Only its uplink/downlink split needs the
	// offset estimate, so clock error can never un-balance the sum.
	network := (recvNs - sentNs) - (tm.SendNs - tm.RecvNs)
	if network < 0 {
		network = 0
	}
	uplink := (tm.RecvNs + offsetNs) - sentNs
	if uplink < 0 {
		uplink = 0
	}
	if uplink > network {
		uplink = network
	}
	b.Phase[PhaseNodeQueue] = time.Duration(nodeQueue)
	b.Phase[PhaseCompute] = time.Duration(computeT)
	b.Phase[PhaseUplink] = time.Duration(uplink)
	b.Phase[PhaseDownlink] = time.Duration(network - uplink)
	return b
}

// PhaseSum returns the sum of the six phases (equals Total up to
// clamping of negative clock artifacts).
func (t *TileBreakdown) PhaseSum() time.Duration {
	var s time.Duration
	for _, p := range t.Phase {
		s += p
	}
	return s
}

// MeanPhases averages each phase over the image's collected tiles.
func (b *Breakdown) MeanPhases() [NumPhases]time.Duration {
	var out [NumPhases]time.Duration
	if b == nil || len(b.Tiles) == 0 {
		return out
	}
	for _, t := range b.Tiles {
		for p := range t.Phase {
			out[p] += t.Phase[p]
		}
	}
	for p := range out {
		out[p] /= time.Duration(len(b.Tiles))
	}
	return out
}

// MeanTotal averages the end-to-end tile latency over collected tiles.
func (b *Breakdown) MeanTotal() time.Duration {
	if b == nil || len(b.Tiles) == 0 {
		return 0
	}
	var s time.Duration
	for _, t := range b.Tiles {
		s += t.Total
	}
	return s / time.Duration(len(b.Tiles))
}

// WriteText renders the mean per-phase decomposition as one line, e.g.
// for the central daemon's -breakdown mode.
func (b *Breakdown) WriteText(w io.Writer) {
	if b == nil || len(b.Tiles) == 0 {
		fmt.Fprintln(w, "  breakdown: no tiles collected")
		return
	}
	mean := b.MeanPhases()
	fmt.Fprintf(w, "  breakdown (mean over %d tiles):", len(b.Tiles))
	for p := 0; p < NumPhases; p++ {
		fmt.Fprintf(w, " %s=%v", PhaseNames[p], mean[p].Round(time.Microsecond))
	}
	fmt.Fprintf(w, " total=%v\n", b.MeanTotal().Round(time.Microsecond))
}

package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/tensor"
)

// TestLiveRuntimeAdaptsToSlowWorker runs the real distributed protocol
// with one artificially slowed Conv node. Algorithm 2's EWMA (driven by
// results received within T_L) must shift tiles toward the fast nodes —
// the live-runtime version of Figure 15.
func TestLiveRuntimeAdaptsToSlowWorker(t *testing.T) {
	cfg := models.VGGSim()
	m, err := models.Build(cfg, models.Options{Grid: fdsp.Grid{Rows: 4, Cols: 4}}, 42)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	conns := make([]Conn, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		a, b := Pipe()
		conns[i] = a
		w := NewWorker(i+1, m)
		if i == workers-1 {
			w.Delay = 80 * time.Millisecond // last node is far slower per tile
		}
		wg.Add(1)
		go func() { defer wg.Done(); _ = w.Serve(context.Background(), b) }()
	}
	// T_L chosen so the fast nodes always make it and the slow node's
	// later tiles miss the window (its tiles are zero-filled — accuracy
	// cost — but the scheduler learns).
	c, err := NewCentral(m, conns, 250*time.Millisecond, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { c.Shutdown(); wg.Wait() }()

	rng := rand.New(rand.NewSource(11))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)

	var last InferStats
	for i := 0; i < 8; i++ {
		_, st, err := c.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		last = st
	}
	slow := last.Alloc[workers-1]
	for k := 0; k < workers-1; k++ {
		if last.Alloc[k] <= slow {
			t.Fatalf("fast node %d got %d tiles, not more than slow node's %d: %v",
				k+1, last.Alloc[k], slow, last.Alloc)
		}
	}
	// A node slow enough to keep missing the window may legitimately decay
	// to zero work (the paper's failure semantics), so we only require the
	// allocation to remain complete.
	if last.Alloc.Total() != 16 {
		t.Fatalf("tiles lost: %v", last.Alloc)
	}
}

package core

import (
	"testing"
	"time"

	"adcnn/internal/cluster"
	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/perfmodel"
)

func vggSim(t *testing.T, nodes int, mutate func(*SimConfig)) *Sim {
	t.Helper()
	cfg := SimConfig{
		Model:      models.VGG16().Systemized(),
		Grid:       fdsp.Grid{Rows: 8, Cols: 8},
		Nodes:      cluster.NewPiCluster(nodes),
		Central:    cluster.NewDevice(0, perfmodel.RaspberryPi()),
		Link:       perfmodel.WiFi(),
		Pruning:    true,
		PruneRatio: 0.032,
		Gamma:      0.9,
		Pipeline:   true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSimLatencyInPaperBallpark(t *testing.T) {
	// Figure 11 / Table 3: ADCNN VGG16 with 8 Conv nodes ≈ 240 ms
	// end-to-end (202.88 compute + 37.14 transmission).
	s := vggSim(t, 8, nil)
	var latencies []time.Duration
	for i := 0; i < 10; i++ {
		latencies = append(latencies, s.RunImage().Latency)
	}
	mean := meanDur(latencies)
	if mean < 120*time.Millisecond || mean > 500*time.Millisecond {
		t.Fatalf("ADCNN VGG16 latency = %v, want the 150-450 ms regime", mean)
	}
}

func TestSimBeatsSingleDeviceByPaperFactor(t *testing.T) {
	// Paper: 6.68× faster than single-device on average (5 models); for
	// VGG16 1586 ms single vs ~240 ms ADCNN ≈ 6.6×.
	s := vggSim(t, 8, nil)
	var sum time.Duration
	n := 10
	for i := 0; i < n; i++ {
		sum += s.RunImage().Latency
	}
	adcnn := sum / time.Duration(n)
	single := perfmodel.RaspberryPi().Time(models.VGG16().TotalFLOPs(), models.VGG16().TotalMemBytes())
	speedup := float64(single) / float64(adcnn)
	if speedup < 4 || speedup > 9 {
		t.Fatalf("speedup = %.2f×, paper reports ≈6.7×", speedup)
	}
}

func TestSimEqualNodesGetEqualTiles(t *testing.T) {
	s := vggSim(t, 8, nil)
	res := s.RunImage()
	for k, x := range res.Alloc {
		if x != 8 {
			t.Fatalf("node %d got %d tiles, want 8: %v", k, x, res.Alloc)
		}
	}
}

func TestSimThrottleAdaptsAllocation(t *testing.T) {
	// Figure 15: throttle nodes 5,6 to 45% and 7,8 to 24% mid-run; the
	// scheduler must shift tiles to nodes 1-4 and latency must first jump,
	// then partially recover.
	s := vggSim(t, 8, nil)
	events := []cluster.ThrottleEvent{
		{Image: 10, DeviceID: 5, Fraction: 0.45},
		{Image: 10, DeviceID: 6, Fraction: 0.45},
		{Image: 10, DeviceID: 7, Fraction: 0.24},
		{Image: 10, DeviceID: 8, Fraction: 0.24},
	}
	results := s.RunImages(40, events)

	before := results[9]
	jump := results[10]
	settled := results[39]

	if jump.Latency <= before.Latency {
		t.Fatalf("degradation must raise latency: %v -> %v", before.Latency, jump.Latency)
	}
	if settled.Latency >= jump.Latency {
		t.Fatalf("adaptation must recover some latency: jump %v, settled %v",
			jump.Latency, settled.Latency)
	}
	if settled.Latency <= before.Latency {
		t.Fatalf("slow cluster cannot be as fast as healthy one: %v vs %v",
			settled.Latency, before.Latency)
	}
	// Tile shares shift: fast nodes (1-4) get more than the initial 8,
	// slow nodes fewer; most-throttled nodes (7,8) get the least.
	a := settled.Alloc
	for k := 0; k < 4; k++ {
		if a[k] <= 8 {
			t.Fatalf("fast node %d should exceed 8 tiles after adaptation: %v", k+1, a)
		}
	}
	for k := 6; k < 8; k++ {
		if a[k] >= a[4] {
			t.Fatalf("76%%-throttled node %d should get fewer tiles than 55%%-throttled: %v", k+1, a)
		}
	}
}

func TestSimNodeFailureToleratedAndRecovers(t *testing.T) {
	s := vggSim(t, 4, nil)
	events := []cluster.ThrottleEvent{{Image: 5, DeviceID: 2, Fraction: 0}}
	results := s.RunImages(15, events)
	// After failure the dead node receives nothing and the system keeps
	// producing results.
	for i := 5; i < 15; i++ {
		if results[i].Alloc[1] != 0 {
			t.Fatalf("image %d allocated tiles to the failed node: %v", i, results[i].Alloc)
		}
		if results[i].Latency <= 0 {
			t.Fatalf("image %d has no latency", i)
		}
	}
	// The remaining three nodes absorb all 64 tiles.
	if got := results[14].Alloc.Total(); got != 64 {
		t.Fatalf("total tiles after failure = %d", got)
	}
}

func TestSimAllNodesFailedStillTerminates(t *testing.T) {
	s := vggSim(t, 2, nil)
	for _, d := range s.cfg.Nodes {
		d.Fail()
	}
	res := s.RunImage()
	if res.TilesMissed != 64 {
		t.Fatalf("missed = %d, want 64", res.TilesMissed)
	}
	if res.Latency <= 0 {
		t.Fatal("latency must still be finite")
	}
}

func TestSimPruningReducesLatencyMoreOnSlowLink(t *testing.T) {
	// Figure 12: pruning saves ~10.7% at 87.72 Mbps and ~31.2% at
	// 12.66 Mbps — the slow link benefits much more.
	run := func(link perfmodel.LinkModel, prune bool) time.Duration {
		s := vggSim(t, 8, func(c *SimConfig) {
			c.Link = link
			c.Pruning = prune
			if prune {
				c.PruneRatio = 0.032
			}
		})
		var sum time.Duration
		for i := 0; i < 5; i++ {
			sum += s.RunImage().Latency
		}
		return sum / 5
	}
	fastGain := 1 - float64(run(perfmodel.WiFi(), true))/float64(run(perfmodel.WiFi(), false))
	slowGain := 1 - float64(run(perfmodel.WiFiSlow(), true))/float64(run(perfmodel.WiFiSlow(), false))
	if fastGain <= 0 || slowGain <= 0 {
		t.Fatalf("pruning must help on both links: fast %.3f slow %.3f", fastGain, slowGain)
	}
	if slowGain <= fastGain {
		t.Fatalf("pruning must help more on the slow link: fast %.3f slow %.3f", fastGain, slowGain)
	}
}

func TestSimSpeedupGrowsSublinearly(t *testing.T) {
	// Figure 13: speedup grows 1.8× → 6.2× from 2 to 8 nodes with a
	// decreasing growth rate.
	single := perfmodel.RaspberryPi().Time(models.VGG16().TotalFLOPs(), models.VGG16().TotalMemBytes())
	speedup := func(nodes int) float64 {
		s := vggSim(t, nodes, nil)
		var sum time.Duration
		for i := 0; i < 5; i++ {
			sum += s.RunImage().Latency
		}
		return float64(single) / (float64(sum) / 5)
	}
	s2, s4, s8 := speedup(2), speedup(4), speedup(8)
	if !(s2 < s4 && s4 < s8) {
		t.Fatalf("speedup must grow with nodes: %v %v %v", s2, s4, s8)
	}
	if s2 < 1.2 || s2 > 3 {
		t.Fatalf("2-node speedup = %.2f, paper ≈1.8", s2)
	}
	if s8 < 4 || s8 > 9 {
		t.Fatalf("8-node speedup = %.2f, paper ≈6.2", s8)
	}
	// Diminishing returns: growth 4→8 < growth 2→4 per node.
	if (s8-s4)/4 >= (s4-s2)/2 {
		t.Fatalf("growth rate must decrease: %v %v %v", s2, s4, s8)
	}
}

func TestSimPipeliningHelps(t *testing.T) {
	run := func(pipe bool) time.Duration {
		s := vggSim(t, 8, func(c *SimConfig) {
			c.Pipeline = pipe
			c.InputBytesPerValue = 4 // larger input transfers make overlap visible
		})
		var sum time.Duration
		for i := 0; i < 5; i++ {
			sum += s.RunImage().Latency
		}
		return sum / 5
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Fatalf("pipelining must not slow things down: with %v, without %v", with, without)
	}
}

func TestSimBusyTimeAndMemoryAccounted(t *testing.T) {
	s := vggSim(t, 8, nil)
	s.RunImage()
	for k, d := range s.cfg.Nodes {
		if d.BusyTime() <= 0 {
			t.Fatalf("node %d has no busy time", k)
		}
		if d.PeakMem() <= 0 {
			t.Fatalf("node %d has no peak memory", k)
		}
	}
	if s.cfg.Central.BusyTime() <= 0 {
		t.Fatal("central busy time missing")
	}
	// More nodes → fewer tiles each → less peak memory per node.
	s2 := vggSim(t, 2, nil)
	s2.RunImage()
	if s2.cfg.Nodes[0].PeakMem() <= s.cfg.Nodes[0].PeakMem() {
		t.Fatal("2-node cluster must use more memory per node than 8-node")
	}
}

func TestSimConfigValidation(t *testing.T) {
	base := SimConfig{
		Model:   models.VGG16().Systemized(),
		Grid:    fdsp.Grid{Rows: 8, Cols: 8},
		Nodes:   cluster.NewPiCluster(2),
		Central: cluster.NewDevice(0, perfmodel.RaspberryPi()),
		Link:    perfmodel.WiFi(),
		Gamma:   0.9,
	}
	bad := base
	bad.Nodes = nil
	if _, err := NewSim(bad); err == nil {
		t.Fatal("no nodes must be rejected")
	}
	bad = base
	bad.Gamma = 0
	if _, err := NewSim(bad); err == nil {
		t.Fatal("gamma 0 must be rejected")
	}
	bad = base
	bad.Pruning = true
	bad.PruneRatio = 2
	if _, err := NewSim(bad); err == nil {
		t.Fatal("prune ratio > 1 must be rejected")
	}
	bad = base
	bad.Grid = fdsp.Grid{}
	if _, err := NewSim(bad); err == nil {
		t.Fatal("zero grid must be rejected")
	}
}

func TestSimDeterministic(t *testing.T) {
	a := vggSim(t, 8, nil)
	b := vggSim(t, 8, nil)
	for i := 0; i < 5; i++ {
		ra, rb := a.RunImage(), b.RunImage()
		if ra.Latency != rb.Latency || ra.TilesMissed != rb.TilesMissed {
			t.Fatalf("image %d: nondeterministic results", i)
		}
	}
}

func meanDur(ds []time.Duration) time.Duration {
	var s time.Duration
	for _, d := range ds {
		s += d
	}
	return s / time.Duration(len(ds))
}

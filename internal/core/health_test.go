package core

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

// tileWithPhases fabricates a breakdown whose watched phases hold the
// given durations (seconds).
func tileWithPhases(compute, uplink, queue float64) *TileBreakdown {
	tb := &TileBreakdown{}
	tb.Phase[PhaseCompute] = time.Duration(compute * 1e9)
	tb.Phase[PhaseUplink] = time.Duration(uplink * 1e9)
	tb.Phase[PhaseNodeQueue] = time.Duration(queue * 1e9)
	return tb
}

func TestHealthTrackerScoresGrayFailure(t *testing.T) {
	reg := telemetry.NewRegistry()
	gauge := reg.GaugeVec("adcnn_central_node_health", "", "node")
	h := NewHealthTracker(2, gauge)

	// Both nodes behave identically through warmup.
	for i := 0; i < 50; i++ {
		h.Observe(0, tileWithPhases(0.010, 0.002, 0.001))
		h.Observe(1, tileWithPhases(0.010, 0.002, 0.001))
	}
	for k := 0; k < 2; k++ {
		if s := h.Score(k); s > 0.1 {
			t.Fatalf("steady node %d scored %.3f, want ~0", k, s)
		}
	}

	// Node 1 gray-fails: compute quietly goes 5×.
	for i := 0; i < 30; i++ {
		h.Observe(0, tileWithPhases(0.010, 0.002, 0.001))
		h.Observe(1, tileWithPhases(0.050, 0.002, 0.001))
	}
	if s := h.Score(1); s < 1.0 {
		t.Fatalf("5x compute slowdown scored only %.3f", s)
	}
	if s := h.Score(0); s > 0.1 {
		t.Fatalf("healthy node contaminated: %.3f", s)
	}
	node, score, phase := h.Worst()
	if node != 1 || score < 1.0 || phase != "compute" {
		t.Fatalf("Worst() = (%d, %.3f, %q), want node 1, compute", node, score, phase)
	}
	if v, ok := reg.Value("adcnn_central_node_health", "1"); !ok || v < 1.0 {
		t.Fatalf("health gauge = %v (ok=%v)", v, ok)
	}

	// The frozen baseline: even after a long anomaly, recovery to the
	// original behaviour must read as healthy again (the baseline did
	// not drift up to the degraded level).
	for i := 0; i < 60; i++ {
		h.Observe(1, tileWithPhases(0.010, 0.002, 0.001))
	}
	if s := h.Score(1); s > 0.25 {
		t.Fatalf("recovered node still scores %.3f — baseline drifted during anomaly", s)
	}

	scores := h.Scores()
	if len(scores) != 2 {
		t.Fatalf("Scores() length %d", len(scores))
	}
}

func TestHealthTrackerUplinkAnomaly(t *testing.T) {
	h := NewHealthTracker(1, nil)
	for i := 0; i < 40; i++ {
		h.Observe(0, tileWithPhases(0.010, 0.002, 0.001))
	}
	// The compute stays fine; the uplink congests 10×.
	for i := 0; i < 30; i++ {
		h.Observe(0, tileWithPhases(0.010, 0.020, 0.001))
	}
	node, score, phase := h.Worst()
	if node != 0 || score < 1.0 || phase != "uplink" {
		t.Fatalf("uplink anomaly attributed to (%d, %.3f, %q)", node, score, phase)
	}
}

func TestHealthTrackerNilAndBounds(t *testing.T) {
	var h *HealthTracker
	h.Observe(0, tileWithPhases(1, 1, 1))
	if h.Score(0) != 0 || h.Scores() != nil {
		t.Fatal("nil tracker must be inert")
	}
	if n, _, _ := h.Worst(); n != -1 {
		t.Fatal("nil tracker Worst() must be -1")
	}
	real := NewHealthTracker(1, nil)
	real.Observe(-1, tileWithPhases(1, 1, 1))
	real.Observe(5, tileWithPhases(1, 1, 1)) // out of range: ignored
	if s := real.Score(5); s != 0 {
		t.Fatal("out-of-range node must score 0")
	}
}

// TestHealthTrackerRecoveryTimeline pins the recovery semantics the
// chaos drills assert against: the slow baseline stays frozen through
// the anomaly, the score decays at the fast-EWMA rate once the node
// heals (≈ 2·0.75^t for a 3× anomaly), and after the freeze lifts the
// baseline resumes tracking genuine drift.
func TestHealthTrackerRecoveryTimeline(t *testing.T) {
	h := NewHealthTracker(1, nil)
	base := func() *TileBreakdown { return tileWithPhases(0.010, 0.002, 0.001) }

	for i := 0; i < 20; i++ {
		h.Observe(0, base())
	}
	if s := h.Score(0); s > 0.1 {
		t.Fatalf("warm baseline scores %.3f, want ~0", s)
	}

	// Anomaly: compute 3× for long enough that an unfrozen baseline
	// would have laundered it (slow α=0.02 over 40 samples).
	for i := 0; i < 40; i++ {
		h.Observe(0, tileWithPhases(0.030, 0.002, 0.001))
	}
	if s := h.Score(0); s < 1.7 {
		t.Fatalf("sustained 3x anomaly scores %.3f — baseline not frozen", s)
	}

	// Heal: the score must come down on the fast-EWMA schedule — still
	// clearly anomalous after 4 healthy tiles, below the 0.25 warn line
	// within 10.
	for i := 0; i < 4; i++ {
		h.Observe(0, base())
	}
	if s := h.Score(0); s < 0.4 || s > 0.9 {
		t.Fatalf("score after 4 healthy tiles = %.3f, want fast-α decay (~0.6)", s)
	}
	for i := 0; i < 6; i++ {
		h.Observe(0, base())
	}
	if s := h.Score(0); s > 0.25 {
		t.Fatalf("score after 10 healthy tiles = %.3f, want below warn threshold", s)
	}

	// Post-heal drift: a modest 1.3× shift is under the freeze ratio, so
	// the baseline must thaw and absorb it — the score returns to ~0
	// instead of reporting a permanent 0.3 anomaly.
	for i := 0; i < 200; i++ {
		h.Observe(0, tileWithPhases(0.013, 0.002, 0.001))
	}
	if s := h.Score(0); s > 0.1 {
		t.Fatalf("baseline failed to track post-heal drift: score %.3f", s)
	}
}

// TestSLOBreachDumpsFlightRecorder is the satellite acceptance test: a
// breach transition on a wired Central must trigger a whole-ring flight
// dump whose reason names the breaching objective and the worst-health
// node.
func TestSLOBreachDumpsFlightRecorder(t *testing.T) {
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	c, _, stop := buildRuntime(t, opt, 2, 10*time.Second)
	defer stop()
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	c.SetMetrics(met)
	flight := telemetry.NewFlightRecorder(0)
	c.SetFlightRecorder(flight)

	engine := NewSLOEngine(met, SLOConfig{
		TileP99:    0.001, // 1ms: any real inference breaches
		MissBudget: -1,    // latency objective only
		FastWindow: 500 * time.Millisecond,
		SlowWindow: time.Second,
	})
	c.WireSLO(engine)

	// Run real traffic so the windowed histogram fills.
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 4; i++ {
		x := tensor.New(1, 3, 32, 32)
		x.RandN(rng, 1)
		if _, _, err := c.Infer(x); err != nil {
			t.Fatal(err)
		}
	}
	// Degrade node 1 after the traffic (real tiles would otherwise pull
	// its fast EWMA back to baseline) so the dump has a worst node.
	for i := 0; i < 40; i++ {
		c.health.Observe(1, tileWithPhases(0.010, 0.002, 0.001))
	}
	for i := 0; i < 30; i++ {
		c.health.Observe(1, tileWithPhases(0.080, 0.002, 0.001))
	}
	trs := engine.Tick(time.Now())
	if !engine.Breached() {
		t.Skipf("1ms objective did not breach (transitions %+v) — environment faster than the threshold", trs)
	}

	dumps := flight.Dumps()
	if len(dumps) == 0 {
		t.Fatal("SLO breach must trigger a flight dump")
	}
	d := dumps[len(dumps)-1]
	if !strings.Contains(d.Reason, "slo-breach") || !strings.Contains(d.Reason, SLOTileLatency) {
		t.Fatalf("dump reason %q must name the breaching objective", d.Reason)
	}
	if !strings.Contains(d.Reason, "worst-node=1") {
		t.Fatalf("dump reason %q must name the worst-health node", d.Reason)
	}
	if len(d.Events) == 0 {
		t.Fatal("breach dump must carry the event ring")
	}
	// The transition itself must be in the event stream.
	found := false
	for _, ev := range d.Events {
		if ev.Kind == "slo-breach" && strings.Contains(ev.Detail, SLOTileLatency) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("breach transition event missing from dump: %+v", d.Events)
	}
}

// TestCentralFeedsWindowsAndHealth: after live traffic the windowed
// instruments and the health tracker must hold data — the SLO engine
// and ops console read from them.
func TestCentralFeedsWindowsAndHealth(t *testing.T) {
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	c, _, stop := buildRuntime(t, opt, 2, 10*time.Second)
	defer stop()
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	c.SetMetrics(met)

	rng := rand.New(rand.NewSource(22))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	if _, _, err := c.Infer(x); err != nil {
		t.Fatal(err)
	}

	if n := met.TileLatencyWindow.Snapshot(time.Minute).Count; n != 4 {
		t.Fatalf("latency window holds %d tiles, want 4", n)
	}
	if got := met.TilesOKWindow.Total(time.Minute); got != 4 {
		t.Fatalf("ok window = %v, want 4", got)
	}
	if got := met.TilesMissWindow.Total(time.Minute); got != 0 {
		t.Fatalf("miss window = %v, want 0", got)
	}
	if c.Health() == nil {
		t.Fatal("SetMetrics must create the health tracker")
	}
	// One image through two nodes: both observed at least one tile.
	if n, _, _ := c.Health().Worst(); n < 0 {
		t.Fatal("health tracker saw no tiles")
	}
}

package core

import (
	"context"
	"sync"
	"time"

	"adcnn/internal/compress"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

// arrival is one decoded intermediate result routed to its image's
// collector.
type arrival struct {
	tile int
	node int
	t    *tensor.Tensor
	wire int
}

// pendingKey identifies one outstanding tile: results are demultiplexed
// by (imageID, tileID), so a late result for a finished image has no
// entry and is dropped as stale — replacing the old per-Infer "skip
// mismatched ImageID" scan.
type pendingKey struct {
	img  uint32
	tile uint32
}

// imageCollector gathers one image's arrivals. The session recv loops
// push into ch (buffered to the tile count, so delivery never blocks);
// abort carries a fatal dispatch failure to the waiter.
type imageCollector struct {
	img  uint32
	ch   chan arrival
	fail chan struct{}
	once sync.Once
	err  error
}

func newImageCollector(img uint32, tiles int) *imageCollector {
	return &imageCollector{
		img:  img,
		ch:   make(chan arrival, tiles),
		fail: make(chan struct{}),
	}
}

// abort delivers a fatal error to the image's waiter (first error wins).
func (col *imageCollector) abort(err error) {
	col.once.Do(func() {
		col.err = err
		close(col.fail)
	})
}

// demux is the pending table shared by every node session.
type demux struct {
	mu    sync.Mutex
	m     map[pendingKey]*imageCollector
	stale *telemetry.Counter // nil disables
}

func (d *demux) init() { d.m = make(map[pendingKey]*imageCollector) }

// register enters every tile of an image into the table.
func (d *demux) register(col *imageCollector, tiles int) {
	d.mu.Lock()
	for t := 0; t < tiles; t++ {
		d.m[pendingKey{col.img, uint32(t)}] = col
	}
	d.mu.Unlock()
}

// claim removes and returns the collector for a key. The removal makes
// delivery exactly-once: a duplicate or late result finds no entry.
func (d *demux) claim(k pendingKey) (*imageCollector, bool) {
	d.mu.Lock()
	col, ok := d.m[k]
	if ok {
		delete(d.m, k)
	}
	d.mu.Unlock()
	return col, ok
}

// dropImage removes an image's remaining entries (deadline hit or the
// image finished); later results for it count as stale.
func (d *demux) dropImage(img uint32, tiles int) {
	d.mu.Lock()
	for t := 0; t < tiles; t++ {
		delete(d.m, pendingKey{img, uint32(t)})
	}
	d.mu.Unlock()
}

// markStale counts a result that arrived for an already-settled tile.
func (d *demux) markStale() {
	if d.stale != nil {
		d.stale.Inc()
	}
}

// Reconnect backoff bounds for node sessions.
const (
	reconnectBase = 50 * time.Millisecond
	reconnectMax  = 2 * time.Second
	dialTimeout   = 5 * time.Second
)

// nodeSession owns the Central's relationship with one Conv node: a
// persistent send loop draining a bounded task queue onto the
// connection, and a persistent recv loop decoding results and demuxing
// them through the pending table. Both loops live for the connection's
// lifetime; a supervisor restarts them after a reconnect. Queued tasks
// stranded by a connection failure are handed back to the Central for
// redispatch to surviving nodes, so a node death costs at most the tiles
// already on its wire.
type nodeSession struct {
	id int // node index (0-based)
	c  *Central
	// dial, when set, lets the session re-establish a failed connection
	// with exponential backoff instead of staying dead forever.
	dial func(context.Context) (Conn, error)

	sendq chan *Message

	mu          sync.Mutex
	conn        Conn
	alive       bool
	down        chan struct{} // closed when the session goes down
	pendingSend *Message      // in-flight message a failed Send may strand

	queueDepth *telemetry.Gauge // nil disables
}

func newNodeSession(id int, c *Central, conn Conn, dial func(context.Context) (Conn, error)) *nodeSession {
	s := &nodeSession{
		id:    id,
		c:     c,
		dial:  dial,
		sendq: make(chan *Message, 256),
		conn:  conn,
		alive: true,
		down:  make(chan struct{}),
	}
	if c.metrics != nil {
		s.queueDepth = c.metrics.SendQueueDepth.With(nodeLabel(id))
	}
	return s
}

// Alive reports whether the session currently has a usable connection.
func (s *nodeSession) Alive() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alive
}

// enqueue hands a task to the send loop. It returns false when the
// session is down or the contexts are cancelled, so the dispatcher can
// fall over to another node. The channel send happens under the session
// mutex so it cannot race the markDown drain: once markDown has run, no
// message can slip into a queue nobody reads.
func (s *nodeSession) enqueue(ctx context.Context, m *Message) bool {
	for {
		s.mu.Lock()
		if !s.alive {
			s.mu.Unlock()
			return false
		}
		select {
		case s.sendq <- m:
			s.mu.Unlock()
			s.observeQueue()
			return true
		default:
		}
		down := s.down
		s.mu.Unlock()
		// Queue full: wait for drain, death, or cancellation.
		select {
		case <-down:
			return false
		case <-ctx.Done():
			return false
		case <-s.c.ctx.Done():
			return false
		case <-time.After(time.Millisecond):
		}
	}
}

func (s *nodeSession) observeQueue() {
	if s.queueDepth != nil {
		s.queueDepth.Set(float64(len(s.sendq)))
	}
}

// markDown flags the session dead and returns every queued (plus the
// possibly half-sent) task for redispatch.
func (s *nodeSession) markDown() []*Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.alive {
		return nil
	}
	s.alive = false
	close(s.down)
	var orphans []*Message
	if s.pendingSend != nil {
		orphans = append(orphans, s.pendingSend)
		s.pendingSend = nil
	}
	for {
		select {
		case m := <-s.sendq:
			orphans = append(orphans, m)
		default:
			s.observeQueue()
			return orphans
		}
	}
}

// revive installs a fresh connection after a reconnect.
func (s *nodeSession) revive(conn Conn) {
	s.mu.Lock()
	s.conn = conn
	s.alive = true
	s.down = make(chan struct{})
	s.mu.Unlock()
}

// run is the session supervisor: it spawns one send loop and one recv
// loop per connection epoch, tears the epoch down on the first failure
// (redispatching stranded tasks), and — when a dialer is configured —
// reconnects with exponential backoff and starts the next epoch.
func (s *nodeSession) run() {
	defer s.c.loopWG.Done()
	for {
		s.mu.Lock()
		conn := s.conn
		s.mu.Unlock()

		stop := make(chan struct{})
		sendDone := make(chan error, 1)
		recvDone := make(chan error, 1)
		go func() { sendDone <- s.sendLoop(conn, stop) }()
		go func() { recvDone <- s.recvLoop(conn) }()

		shutdown := false
		sendOpen, recvOpen := true, true
		select {
		case <-s.c.ctx.Done():
			shutdown = true
		case <-sendDone:
			sendOpen = false
		case <-recvDone:
			recvOpen = false
		}
		// Tear the epoch down: closing the connection unblocks whichever
		// loop is still inside Send/Recv.
		close(stop)
		_ = conn.Close()
		if sendOpen {
			<-sendDone
		}
		if recvOpen {
			<-recvDone
		}
		if shutdown || s.c.ctx.Err() != nil {
			s.markDown()
			return
		}

		// Connection failure: the node is dead until proven otherwise.
		orphans := s.markDown()
		if s.c.metrics != nil {
			s.c.metrics.ConnDrops.With(nodeLabel(s.id)).Inc()
		}
		s.c.redispatch(orphans)
		if s.dial == nil {
			return
		}
		if !s.reconnect() {
			return
		}
	}
}

// sendLoop drains the task queue onto the connection. A Send error ends
// the epoch; the failed message is left in pendingSend for markDown.
func (s *nodeSession) sendLoop(conn Conn, stop chan struct{}) error {
	for {
		select {
		case <-s.c.ctx.Done():
			return nil
		case <-stop:
			return nil
		case m := <-s.sendq:
			s.observeQueue()
			s.mu.Lock()
			s.pendingSend = m
			s.mu.Unlock()
			if err := conn.Send(m); err != nil {
				return err
			}
			s.mu.Lock()
			s.pendingSend = nil
			s.mu.Unlock()
		}
	}
}

// recvLoop decodes results off the connection and routes each through
// the pending table to its image's collector.
func (s *nodeSession) recvLoop(conn Conn) error {
	for {
		m, err := conn.Recv()
		if err != nil {
			return err
		}
		if m.Kind != KindResult {
			continue
		}
		col, ok := s.c.pending.claim(pendingKey{m.ImageID, m.TileID})
		if !ok {
			s.c.pending.markStale()
			continue
		}
		var t *tensor.Tensor
		var derr error
		if m.Compressed {
			t, derr = compress.Decode(m.Payload)
		} else {
			t, derr = DecodeTensor(m.Payload)
		}
		if derr != nil {
			// An undecodable result is as good as a missed tile: the
			// image zero-fills it at the deadline.
			continue
		}
		col.ch <- arrival{tile: int(m.TileID), node: s.id, t: t, wire: len(m.Payload)}
	}
}

// reconnect dials until it succeeds or the Central shuts down, with
// exponential backoff, then revives the session and the node's
// scheduler estimate.
func (s *nodeSession) reconnect() bool {
	backoff := reconnectBase
	for {
		select {
		case <-s.c.ctx.Done():
			return false
		case <-time.After(backoff):
		}
		dctx, cancel := context.WithTimeout(s.c.ctx, dialTimeout)
		conn, err := s.dial(dctx)
		cancel()
		if err == nil && conn != nil {
			if s.c.metrics != nil && s.c.metrics.Wire != nil {
				conn = InstrumentConn(conn, s.c.metrics.Wire)
			}
			s.revive(conn)
			s.c.reviveNode(s.id)
			return true
		}
		backoff *= 2
		if backoff > reconnectMax {
			backoff = reconnectMax
		}
	}
}

package core

import (
	"context"
	"encoding/binary"
	"math/rand"
	"sync"
	"time"

	"adcnn/internal/compress"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

// arrival is one decoded intermediate result routed to its image's
// collector, carrying everything the collector needs to reconstruct the
// tile's phase timeline: the Central-side timestamps (central mono ns),
// the Conv-side timing record, and the session's clock-offset estimate
// at arrival time.
type arrival struct {
	tile     int
	node     int
	t        *tensor.Tensor
	wire     int // result payload bytes (downlink)
	taskWire int // task payload bytes (uplink)

	enqNs    int64 // task enqueued on the session
	sentNs   int64 // task frame handed to the socket
	recvNs   int64 // result frame read back
	timing   *ConvTiming
	offsetNs int64
}

// pendingKey identifies one outstanding tile: results are demultiplexed
// by (imageID, tileID), so a late result for a finished image has no
// entry and is dropped as stale — replacing the old per-Infer "skip
// mismatched ImageID" scan.
type pendingKey struct {
	img  uint32
	tile uint32
}

// imageCollector gathers one image's arrivals. The session recv loops
// push into ch (buffered to the tile count, so delivery never blocks);
// abort carries a fatal dispatch failure to the waiter.
type imageCollector struct {
	img  uint32
	ch   chan arrival
	fail chan struct{}
	once sync.Once
	err  error
}

func newImageCollector(img uint32, tiles int) *imageCollector {
	return &imageCollector{
		img:  img,
		ch:   make(chan arrival, tiles),
		fail: make(chan struct{}),
	}
}

// abort delivers a fatal error to the image's waiter (first error wins).
func (col *imageCollector) abort(err error) {
	col.once.Do(func() {
		col.err = err
		close(col.fail)
	})
}

// pendingEntry is one outstanding tile's table row: the collector it
// routes to plus the Central-side timestamps of its latest dispatch
// attempt (redispatch overwrites them, so the breakdown describes the
// attempt that actually produced the result).
type pendingEntry struct {
	col       *imageCollector
	node      int   // session the tile was last enqueued on
	enqNs     int64 // central mono ns, last enqueue
	sentNs    int64 // central mono ns, frame handed to the socket
	taskBytes int   // task payload bytes, for the link-rate estimate
}

// demux is the pending table shared by every node session.
type demux struct {
	mu    sync.Mutex
	m     map[pendingKey]*pendingEntry
	stale *telemetry.Counter // nil disables
}

func (d *demux) init() { d.m = make(map[pendingKey]*pendingEntry) }

// register enters every tile of an image into the table.
func (d *demux) register(col *imageCollector, tiles int) {
	d.mu.Lock()
	for t := 0; t < tiles; t++ {
		d.m[pendingKey{col.img, uint32(t)}] = &pendingEntry{col: col, node: -1}
	}
	d.mu.Unlock()
}

// markEnqueued stamps a tile's dispatch-queue entry time, owner, and
// uplink payload size.
func (d *demux) markEnqueued(k pendingKey, node int, ns int64, bytes int) {
	d.mu.Lock()
	if e, ok := d.m[k]; ok {
		e.node = node
		e.enqNs = ns
		e.sentNs = 0
		e.taskBytes = bytes
	}
	d.mu.Unlock()
}

// markSent stamps the instant a tile's frame was handed to the socket.
func (d *demux) markSent(k pendingKey, ns int64) {
	d.mu.Lock()
	if e, ok := d.m[k]; ok {
		e.sentNs = ns
	}
	d.mu.Unlock()
}

// claim removes and returns the entry for a key. The removal makes
// delivery exactly-once: a duplicate or late result finds no entry.
func (d *demux) claim(k pendingKey) (*pendingEntry, bool) {
	d.mu.Lock()
	e, ok := d.m[k]
	if ok {
		delete(d.m, k)
	}
	d.mu.Unlock()
	return e, ok
}

// perNode counts outstanding tiles by owning session (-1 = unassigned),
// for the /debug/sessions snapshot.
func (d *demux) perNode() map[int]int {
	out := make(map[int]int)
	d.mu.Lock()
	for _, e := range d.m {
		out[e.node]++
	}
	d.mu.Unlock()
	return out
}

// dropImage removes an image's remaining entries (deadline hit or the
// image finished); later results for it count as stale.
func (d *demux) dropImage(img uint32, tiles int) {
	d.mu.Lock()
	for t := 0; t < tiles; t++ {
		delete(d.m, pendingKey{img, uint32(t)})
	}
	d.mu.Unlock()
}

// markStale counts a result that arrived for an already-settled tile.
func (d *demux) markStale() {
	if d.stale != nil {
		d.stale.Inc()
	}
}

// Reconnect backoff bounds for node sessions.
const (
	reconnectBase = 50 * time.Millisecond
	reconnectMax  = 2 * time.Second
	dialTimeout   = 5 * time.Second
)

// nodeSession owns one replica's relationship with one Conv node: a
// persistent send loop draining a bounded task queue onto the
// connection, and a persistent recv loop decoding results and demuxing
// them through the replica's pending table. Both loops live for the
// connection's lifetime; a supervisor restarts them after a reconnect.
// Queued tasks stranded by a connection failure are handed back to the
// replica for redispatch to surviving nodes, so a node death costs at
// most the tiles already on its wire.
type nodeSession struct {
	id int // node index (0-based)
	r  *replica
	// dial, when set, lets the session re-establish a failed connection
	// with exponential backoff instead of staying dead forever.
	dial func(context.Context) (Conn, error)

	sendq chan *Message

	mu          sync.Mutex
	conn        Conn
	alive       bool
	closed      bool          // RemoveNode tombstone: never reconnect
	down        chan struct{} // closed when the session goes down
	pendingSend *Message      // in-flight message a failed Send may strand
	epochs      int           // connection epochs started (1 = original conn)
	backoff     time.Duration // current reconnect backoff (0 when connected)

	// offset maps this Conv node's monotonic clock onto the Central's,
	// refreshed from every task→result exchange (RTT-midpoint EWMA).
	offset *telemetry.OffsetEstimator

	// link profiles the network path: probe-refreshed RTT plus passive
	// uplink/downlink rate estimates from tile phase timings.
	link linkState

	queueDepth  *telemetry.Gauge // nil disables
	offsetGauge *telemetry.Gauge // nil disables
}

func newNodeSession(id int, r *replica, conn Conn, dial func(context.Context) (Conn, error)) *nodeSession {
	s := &nodeSession{
		id:     id,
		r:      r,
		dial:   dial,
		sendq:  make(chan *Message, 256),
		conn:   conn,
		alive:  true,
		down:   make(chan struct{}),
		offset: telemetry.NewOffsetEstimator(0),
	}
	if m := r.c.metrics; m != nil {
		s.queueDepth = m.SendQueueDepth.With(nodeLabel(id))
		s.offsetGauge = m.ClockOffset.With(nodeLabel(id))
		s.link.rttGauge = m.LinkRTT.With(nodeLabel(id))
		s.link.upGauge = m.LinkUp.With(nodeLabel(id))
		s.link.downGauge = m.LinkDown.With(nodeLabel(id))
		s.link.probeCt = m.LinkProbes.With(nodeLabel(id))
	}
	return s
}

// sendProbe enqueues one link probe, best-effort: a full send queue
// means tiles are flowing (and already feeding the estimators), so the
// probe is simply skipped rather than adding queue pressure. The 8-byte
// payload is patched with the send timestamp by the send loop just
// before the socket write, so queue wait does not inflate the RTT.
func (s *nodeSession) sendProbe() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.alive || s.closed {
		return
	}
	m := &Message{Kind: KindProbe, NodeID: uint32(s.id), Payload: make([]byte, 8)}
	select {
	case s.sendq <- m:
	default:
	}
}

// Alive reports whether the session currently has a usable connection.
func (s *nodeSession) Alive() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alive && !s.closed
}

// retire tombstones the session (RemoveNode): closing the connection
// ends the current epoch, and the supervisor — seeing the closed flag —
// redispatches stranded work and exits instead of reconnecting.
func (s *nodeSession) retire() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conn := s.conn
	s.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// isClosed reports whether retire has tombstoned the session.
func (s *nodeSession) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// closeConn closes the session's current connection (Shutdown path for
// nodes that joined after construction, whose conns are not in c.Conns).
func (s *nodeSession) closeConn() {
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// enqueue hands a task to the send loop. It returns false when the
// session is down or the contexts are cancelled, so the dispatcher can
// fall over to another node. The channel send happens under the session
// mutex so it cannot race the markDown drain: once markDown has run, no
// message can slip into a queue nobody reads.
func (s *nodeSession) enqueue(ctx context.Context, m *Message) bool {
	for {
		s.mu.Lock()
		if !s.alive || s.closed {
			s.mu.Unlock()
			return false
		}
		select {
		case s.sendq <- m:
			s.mu.Unlock()
			s.observeQueue()
			return true
		default:
		}
		down := s.down
		s.mu.Unlock()
		// Queue full: wait for drain, death, or cancellation.
		select {
		case <-down:
			return false
		case <-ctx.Done():
			return false
		case <-s.r.c.ctx.Done():
			return false
		case <-time.After(time.Millisecond):
		}
	}
}

func (s *nodeSession) observeQueue() {
	if s.queueDepth != nil {
		s.queueDepth.Set(float64(len(s.sendq)))
	}
}

// markDown flags the session dead and returns every queued (plus the
// possibly half-sent) task for redispatch.
func (s *nodeSession) markDown() []*Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.alive {
		return nil
	}
	s.alive = false
	close(s.down)
	var orphans []*Message
	if s.pendingSend != nil {
		orphans = append(orphans, s.pendingSend)
		s.pendingSend = nil
	}
	for {
		select {
		case m := <-s.sendq:
			orphans = append(orphans, m)
		default:
			s.observeQueue()
			return orphans
		}
	}
}

// revive installs a fresh connection after a reconnect.
func (s *nodeSession) revive(conn Conn) {
	s.mu.Lock()
	s.conn = conn
	s.alive = true
	s.down = make(chan struct{})
	s.mu.Unlock()
}

// run is the session supervisor: it spawns one send loop and one recv
// loop per connection epoch, tears the epoch down on the first failure
// (redispatching stranded tasks), and — when a dialer is configured —
// reconnects with exponential backoff and starts the next epoch.
func (s *nodeSession) run() {
	defer s.r.loopWG.Done()
	c := s.r.c
	for {
		s.mu.Lock()
		conn := s.conn
		s.epochs++
		s.mu.Unlock()

		stop := make(chan struct{})
		sendDone := make(chan error, 1)
		recvDone := make(chan error, 1)
		go func() { sendDone <- s.sendLoop(conn, stop) }()
		go func() { recvDone <- s.recvLoop(conn) }()

		shutdown := false
		sendOpen, recvOpen := true, true
		select {
		case <-c.ctx.Done():
			shutdown = true
		case <-sendDone:
			sendOpen = false
		case <-recvDone:
			recvOpen = false
		}
		// Tear the epoch down: closing the connection unblocks whichever
		// loop is still inside Send/Recv.
		close(stop)
		_ = conn.Close()
		if sendOpen {
			<-sendDone
		}
		if recvOpen {
			<-recvDone
		}
		if shutdown || c.ctx.Err() != nil {
			s.markDown()
			return
		}

		// Connection failure (or a RemoveNode tombstone closing the
		// connection): the node is dead until proven otherwise.
		orphans := s.markDown()
		if c.metrics != nil {
			c.metrics.ConnDrops.With(nodeLabel(s.id)).Inc()
		}
		c.flight.Record("session-down", 0, -1, s.id, "transport failure")
		// A failover strands in-flight work: dump the flight ring for
		// every image that had tasks queued on this session.
		seen := map[uint32]bool{}
		for _, m := range orphans {
			if m.Kind == KindTask && !seen[m.ImageID] {
				seen[m.ImageID] = true
				c.flight.Dump("session-failover", m.ImageID)
			}
		}
		s.r.redispatch(orphans)
		if s.isClosed() || s.dial == nil {
			return
		}
		if !s.reconnect() {
			return
		}
	}
}

// sendLoop drains the task queue onto the connection. A Send error ends
// the epoch; the failed message is left in pendingSend for markDown.
func (s *nodeSession) sendLoop(conn Conn, stop chan struct{}) error {
	for {
		select {
		case <-s.r.c.ctx.Done():
			return nil
		case <-stop:
			return nil
		case m := <-s.sendq:
			s.observeQueue()
			if m.Kind == KindProbe {
				// Stamp t0 directly into the payload at the last moment:
				// the probe measures the socket round trip, not the time
				// it queued behind tiles. A probe is never redispatched,
				// so it skips the pendingSend handoff.
				binary.LittleEndian.PutUint64(m.Payload, uint64(monoNow()))
				if err := conn.Send(m); err != nil {
					return err
				}
				continue
			}
			s.mu.Lock()
			s.pendingSend = m
			s.mu.Unlock()
			// Stamp t0 just before the write so the uplink phase (and the
			// offset estimator's request leg) includes the serialization.
			s.r.pending.markSent(pendingKey{m.ImageID, m.TileID}, monoNow())
			if err := conn.Send(m); err != nil {
				return err
			}
			s.r.c.flight.Record("sent", m.ImageID, int(m.TileID), s.id, "")
			// Release the task's pooled payload only if markDown has not
			// claimed the message in the window after Send returned: a
			// concurrent epoch teardown orphans pendingSend for redispatch,
			// and a redispatched frame must keep its payload intact.
			s.mu.Lock()
			owned := s.pendingSend == m
			s.pendingSend = nil
			s.mu.Unlock()
			if owned {
				m.ReleasePayload()
			}
		}
	}
}

// recvLoop decodes results off the connection and routes each through
// the pending table to its image's collector, folding each exchange's
// timestamps into the session's clock-offset estimate on the way.
func (s *nodeSession) recvLoop(conn Conn) error {
	for {
		m, err := conn.Recv()
		if err != nil {
			return err
		}
		recvNs := monoNow()
		if m.Kind == KindProbe {
			// Probe echo: the payload still holds our send timestamp, the
			// timing record stamps the node-side hold, so the exchange
			// feeds the offset/RTT estimator exactly like a task→result
			// pair — but with no compute time inside the window.
			if m.Timing != nil && len(m.Payload) == 8 {
				t0 := int64(binary.LittleEndian.Uint64(m.Payload))
				offsetNs, _ := s.offset.Update(t0, m.Timing.RecvNs, m.Timing.SendNs, recvNs)
				if s.offsetGauge != nil {
					s.offsetGauge.Set(float64(offsetNs) / 1e9)
				}
				s.link.observeProbe(s.offset.RTT())
			}
			m.ReleasePayload()
			continue
		}
		if m.Kind != KindResult {
			continue
		}
		e, ok := s.r.pending.claim(pendingKey{m.ImageID, m.TileID})
		if !ok {
			s.r.pending.markStale()
			s.r.c.flight.Record("stale", m.ImageID, int(m.TileID), s.id, "")
			continue
		}
		var offsetNs int64
		if m.Timing != nil && e.sentNs > 0 {
			offsetNs, _ = s.offset.Update(e.sentNs, m.Timing.RecvNs, m.Timing.SendNs, recvNs)
			if s.offsetGauge != nil {
				s.offsetGauge.Set(float64(offsetNs) / 1e9)
			}
		} else {
			offsetNs = s.offset.Offset()
		}
		// Decode into a pool-backed tensor, then hand the wire buffer
		// straight back: the decoders fully copy the payload out, so the
		// frame's bytes are dead the moment DecodeInto returns.
		t := new(tensor.Tensor)
		var derr error
		switch {
		case m.Compressed:
			derr = compress.DecodeInto(t, m.Payload)
		case m.Quantized:
			// Levels-native downlink: dequantize the uint8 levels into
			// the collect tensor in one fused pass.
			derr = DequantizeQuantTensorInto(t, m.Payload)
		default:
			derr = DecodeTensorInto(t, m.Payload)
		}
		wire := len(m.Payload)
		m.ReleasePayload()
		if derr != nil {
			// An undecodable result is as good as a missed tile: the
			// image zero-fills it at the deadline.
			s.r.c.flight.Record("decode-error", m.ImageID, int(m.TileID), s.id, derr.Error())
			continue
		}
		s.r.c.flight.Record("result", m.ImageID, int(m.TileID), s.id, "")
		e.col.ch <- arrival{
			tile: int(m.TileID), node: s.id, t: t, wire: wire,
			taskWire: e.taskBytes,
			enqNs:    e.enqNs, sentNs: e.sentNs, recvNs: recvNs,
			timing: m.Timing, offsetNs: offsetNs,
		}
	}
}

// reconnect dials until it succeeds or the Central shuts down, with
// exponential backoff, then revives the session and the node's
// scheduler estimate.
func (s *nodeSession) reconnect() bool {
	c := s.r.c
	backoff := reconnectBase
	for {
		s.mu.Lock()
		s.backoff = backoff
		s.mu.Unlock()
		// ±20% jitter: several replicas losing the same node reconnect on
		// the same schedule otherwise, and the restarted node takes every
		// redial in one synchronized burst.
		sleep := backoff + time.Duration((rand.Float64()-0.5)*0.4*float64(backoff))
		select {
		case <-c.ctx.Done():
			return false
		case <-time.After(sleep):
		}
		if s.isClosed() {
			return false
		}
		dctx, cancel := context.WithTimeout(c.ctx, dialTimeout)
		conn, err := s.dial(dctx)
		cancel()
		if err == nil && conn != nil {
			if c.metrics != nil && c.metrics.Wire != nil {
				conn = InstrumentConn(conn, c.metrics.Wire)
			}
			s.mu.Lock()
			s.backoff = 0
			s.mu.Unlock()
			// The reconnected node may sit behind a different path; let
			// the rate estimates rebuild from fresh samples.
			s.link.reset()
			s.revive(conn)
			c.reviveNode(s.id)
			c.flight.Record("session-reconnect", 0, -1, s.id, "")
			return true
		}
		backoff *= 2
		if backoff > reconnectMax {
			backoff = reconnectMax
		}
	}
}

// debugInfo snapshots the session state for /debug/sessions.
func (s *nodeSession) debugInfo() SessionDebug {
	s.mu.Lock()
	info := SessionDebug{
		Node:      s.id,
		Alive:     s.alive,
		Epochs:    s.epochs,
		BackoffMs: float64(s.backoff) / 1e6,
	}
	s.mu.Unlock()
	info.QueueDepth = len(s.sendq)
	info.ClockOffsetNs = s.offset.Offset()
	info.RTTNs = s.offset.RTT()
	info.OffsetSamples = s.offset.Samples()
	info.UplinkBps, info.DownlinkBps, info.LinkSamples, info.LinkProbes = s.link.snapshot()
	return info
}

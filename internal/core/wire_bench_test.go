package core

import (
	"math/rand"
	"testing"

	"adcnn/internal/tensor"
)

// benchTensor is sized like a real front-layer tile batch: the codec's
// bulk word conversion is what keeps tile dispatch off the CPU profile.
func benchTensor() *tensor.Tensor {
	x := tensor.New(1, 64, 56, 56)
	x.RandN(rand.New(rand.NewSource(7)), 1)
	return x
}

func BenchmarkEncodeTensor(b *testing.B) {
	x := benchTensor()
	b.SetBytes(int64(4 * len(x.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeTensor(x)
	}
}

func BenchmarkDecodeTensor(b *testing.B) {
	enc := EncodeTensor(benchTensor())
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeTensor(enc); err != nil {
			b.Fatal(err)
		}
	}
}

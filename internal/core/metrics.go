package core

import (
	"strconv"
	"time"

	"adcnn/internal/sched"
	"adcnn/internal/telemetry"
)

// Metrics bundles the live runtime's instruments, resolved once from a
// telemetry.Registry so the per-tile hot path never touches a map. A nil
// *Metrics disables instrumentation at every call site; the same bundle
// can be shared by a Central and its Workers (in-process runs) or built
// per binary (TCP runs).
type Metrics struct {
	Registry *telemetry.Registry

	// Central side.
	Images          *telemetry.Counter
	ImageLatency    *telemetry.Histogram            // seconds, full Infer round trip
	TileRoundTrip   *telemetry.Histogram            // seconds, tile dispatch → result arrival
	TilesDispatched *telemetry.CounterVec           // node
	TilesReceived   *telemetry.CounterVec           // node, within the drop deadline
	TilesMissed     *telemetry.Counter              // zero-filled at T_L
	ConnDrops       *telemetry.CounterVec           // node, transport failures → session down
	InflightImages  *telemetry.Gauge                // images dispatched, Wait not finished
	SendQueueDepth  *telemetry.GaugeVec             // node, tasks queued in the session send loop
	Reconnects      *telemetry.CounterVec           // node, successful session reconnects
	Revives         *telemetry.CounterVec           // node, probation revivals of starved-but-alive nodes
	StaleResults    *telemetry.Counter              // results for already-settled tiles
	PipelineDepth   *telemetry.Gauge                // admission slots held in a Pipeline
	TilePhase       [NumPhases]*telemetry.Histogram // seconds, per-tile latency decomposition by phase
	ClockOffset     *telemetry.GaugeVec             // node, estimated Conv-clock offset (seconds to add to map onto Central's clock)
	NodeHealth      *telemetry.GaugeVec             // node, gray-failure anomaly score (0 = at baseline)
	LinkRTT         *telemetry.GaugeVec             // node, probe-refreshed round-trip time (hold time subtracted)
	LinkUp          *telemetry.GaugeVec             // node, EWMA uplink bytes/sec (0 = unknown/stale)
	LinkDown        *telemetry.GaugeVec             // node, EWMA downlink bytes/sec (0 = unknown/stale)
	LinkProbes      *telemetry.CounterVec           // node, link probe echoes received
	Sched           *sched.Monitor

	// Sliding-window views of the live path, feeding the SLO engine and
	// the ops console: the cumulative instruments answer "ever", these
	// answer "the last few seconds".
	TileLatencyWindow *telemetry.WindowedHistogram // seconds, tile round trip
	TilesOKWindow     *telemetry.WindowedCounter   // tiles received in time
	TilesMissWindow   *telemetry.WindowedCounter   // tiles zero-filled at T_L

	// Worker side.
	WorkerTasks      *telemetry.CounterVec // node
	WorkerProcess    *telemetry.Histogram  // seconds, Front+Boundary+encode per tile
	WorkerRecvEOF    *telemetry.Counter    // clean peer disconnects
	WorkerRecvErrors *telemetry.Counter    // mid-stream receive failures
	WorkerSendErrors *telemetry.Counter    // result send failures

	// Transport.
	Wire *WireMetrics
}

// windowSpan/windowSlots size the sliding-window instruments: 60s of
// history at 250ms granularity, enough to serve any burn window the SLO
// engine is configured with (up to the span) from one ring.
const (
	windowSpan  = 60 * time.Second
	windowSlots = 240
)

// NewMetrics registers the runtime metric catalog on reg (see DESIGN.md
// "Observability" for the name catalog).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return newMetrics(reg, "")
}

// NewReplicaMetrics registers the same catalog with a leading "replica"
// label on every family, for processes hosting several Central replicas
// on one registry: each replica gets its own bundle (same family
// objects, curried to its replica value), so per-replica throughput,
// queue depth and node shares are separable in one scrape. A registry
// must use either the labeled or the unlabeled schema, never both.
func NewReplicaMetrics(reg *telemetry.Registry, replica string) *Metrics {
	return newMetrics(reg, replica)
}

func newMetrics(reg *telemetry.Registry, replica string) *Metrics {
	// The catalog is written once against the builders; replica == ""
	// yields exactly the historical schema, anything else prefixes every
	// family with the replica label and pre-binds it.
	counter := func(name, help string) *telemetry.Counter {
		if replica == "" {
			return reg.Counter(name, help)
		}
		return reg.CounterVec(name, help, "replica").With(replica)
	}
	gauge := func(name, help string) *telemetry.Gauge {
		if replica == "" {
			return reg.Gauge(name, help)
		}
		return reg.GaugeVec(name, help, "replica").With(replica)
	}
	hist := func(name, help string) *telemetry.Histogram {
		if replica == "" {
			return reg.Histogram(name, help, nil)
		}
		return reg.HistogramVec(name, help, nil, "replica").With(replica)
	}
	counterVec := func(name, help string, labels ...string) *telemetry.CounterVec {
		if replica == "" {
			return reg.CounterVec(name, help, labels...)
		}
		return reg.CounterVec(name, help, append([]string{"replica"}, labels...)...).Curry(replica)
	}
	gaugeVec := func(name, help string, labels ...string) *telemetry.GaugeVec {
		if replica == "" {
			return reg.GaugeVec(name, help, labels...)
		}
		return reg.GaugeVec(name, help, append([]string{"replica"}, labels...)...).Curry(replica)
	}
	histVec := func(name, help string, labels ...string) *telemetry.HistogramVec {
		if replica == "" {
			return reg.HistogramVec(name, help, nil, labels...)
		}
		return reg.HistogramVec(name, help, nil, append([]string{"replica"}, labels...)...).Curry(replica)
	}
	mon := sched.NewMonitor
	if replica != "" {
		mon = func(reg *telemetry.Registry) *sched.Monitor { return sched.NewReplicaMonitor(reg, replica) }
	}
	m := &Metrics{
		Registry:        reg,
		Images:          counter("adcnn_central_images_total", "Distributed inferences started."),
		ImageLatency:    hist("adcnn_central_image_latency_seconds", "End-to-end latency of one distributed inference."),
		TileRoundTrip:   hist("adcnn_central_tile_roundtrip_seconds", "Tile dispatch to intermediate-result arrival."),
		TilesDispatched: counterVec("adcnn_central_tiles_dispatched_total", "Tiles sent to each Conv node.", "node"),
		TilesReceived:   counterVec("adcnn_central_tiles_received_total", "Tile results received within the drop deadline.", "node"),
		TilesMissed:     counter("adcnn_central_tiles_missed_total", "Tiles zero-filled at the deadline T_L."),
		ConnDrops:       counterVec("adcnn_central_conn_drops_total", "Conv-node connections marked dead after a transport failure.", "node"),
		InflightImages:  gauge("adcnn_central_inflight_images", "Images dispatched whose results are still being collected."),
		SendQueueDepth:  gaugeVec("adcnn_central_send_queue_depth", "Tile tasks queued in each node session's send loop.", "node"),
		Reconnects:      counterVec("adcnn_central_reconnects_total", "Successful Conv-node session reconnects.", "node"),
		Revives:         counterVec("adcnn_central_probation_revives_total", "Starved-but-alive Conv nodes re-admitted to the allocation on probation.", "node"),
		StaleResults:    counter("adcnn_central_stale_results_total", "Results that arrived after their tile was already settled (duplicate or past T_L)."),
		PipelineDepth:   gauge("adcnn_pipeline_inflight", "Admission slots currently held in a streaming Pipeline."),
		ClockOffset:     gaugeVec("adcnn_central_clock_offset_seconds", "Estimated Conv-node clock offset (added to Conv timestamps to map onto Central's clock).", "node"),
		NodeHealth:      gaugeVec("adcnn_central_node_health", "Gray-failure anomaly score per Conv node: worst relative deviation of the fast phase-time EWMA over the node's slow baseline (0 = at baseline).", "node"),
		LinkRTT:         gaugeVec("adcnn_central_link_rtt_seconds", "Per-node link round-trip time from probe exchanges (remote hold time subtracted).", "node"),
		LinkUp:          gaugeVec("adcnn_central_link_up_bytes_per_second", "EWMA uplink transfer rate to each Conv node, estimated from tile phase timings (0 = unknown or stale).", "node"),
		LinkDown:        gaugeVec("adcnn_central_link_down_bytes_per_second", "EWMA downlink transfer rate from each Conv node, estimated from tile phase timings (0 = unknown or stale).", "node"),
		LinkProbes:      counterVec("adcnn_central_link_probes_total", "Link probe echoes received per Conv node.", "node"),
		Sched:           mon(reg),

		TileLatencyWindow: telemetry.NewWindowedHistogram(windowSpan, windowSlots, nil),
		TilesOKWindow:     telemetry.NewWindowedCounter(windowSpan, windowSlots),
		TilesMissWindow:   telemetry.NewWindowedCounter(windowSpan, windowSlots),
		WorkerTasks:       counterVec("adcnn_worker_tasks_total", "Tile tasks processed by this worker.", "node"),
		WorkerProcess:     hist("adcnn_worker_process_seconds", "Per-tile Front+Boundary compute and encode time."),
		WorkerRecvEOF:     counter("adcnn_worker_recv_eof_total", "Clean peer disconnects observed by workers."),
		WorkerRecvErrors:  counter("adcnn_worker_recv_errors_total", "Mid-stream receive failures observed by workers."),
		WorkerSendErrors:  counter("adcnn_worker_send_errors_total", "Result send failures observed by workers."),
		Wire:              newWireMetrics(reg, replica),
	}
	phases := histVec("adcnn_central_tile_phase_seconds",
		"Per-tile latency decomposition: time spent in each phase of the tile's journey.", "phase")
	for p := 0; p < NumPhases; p++ {
		m.TilePhase[p] = phases.With(PhaseNames[p])
	}
	return m
}

// kindLabel names a message kind for the wire metric labels.
func kindLabel(k MsgKind) int {
	if k >= KindTask && k <= KindProbe {
		return int(k)
	}
	return 0
}

var kindNames = [5]string{"other", "task", "result", "shutdown", "probe"}

// WireMetrics counts transport traffic per message kind and direction:
//
//	adcnn_wire_frames_total{kind,dir}       frames sent/received
//	adcnn_wire_bytes_total{kind,dir}        frame bytes (payload + header)
//	adcnn_wire_compressed_frames_total{dir} frames carrying compressed payloads
//	adcnn_wire_compressed_bytes_total{dir}  their payload bytes
//
// The counters are resolved per kind up front so metering a message is
// two atomic adds.
type WireMetrics struct {
	frames, bytes         [2][5]*telemetry.Counter // [dir][kind]
	compFrames, compBytes [2]*telemetry.Counter    // [dir]
}

const (
	dirSent = 0
	dirRecv = 1
)

var dirNames = [2]string{"sent", "recv"}

// NewWireMetrics registers the wire counters on reg.
func NewWireMetrics(reg *telemetry.Registry) *WireMetrics {
	return newWireMetrics(reg, "")
}

func newWireMetrics(reg *telemetry.Registry, replica string) *WireMetrics {
	vec := func(name, help string, labels ...string) *telemetry.CounterVec {
		if replica == "" {
			return reg.CounterVec(name, help, labels...)
		}
		return reg.CounterVec(name, help, append([]string{"replica"}, labels...)...).Curry(replica)
	}
	wm := &WireMetrics{}
	frames := vec("adcnn_wire_frames_total", "Protocol frames by message kind and direction.", "kind", "dir")
	bytes := vec("adcnn_wire_bytes_total", "Protocol frame bytes (payload plus header) by message kind and direction.", "kind", "dir")
	compFrames := vec("adcnn_wire_compressed_frames_total", "Frames carrying compress-pipeline payloads.", "dir")
	compBytes := vec("adcnn_wire_compressed_bytes_total", "Payload bytes of compressed frames.", "dir")
	for d := 0; d < 2; d++ {
		for k := 0; k < len(kindNames); k++ {
			wm.frames[d][k] = frames.With(kindNames[k], dirNames[d])
			wm.bytes[d][k] = bytes.With(kindNames[k], dirNames[d])
		}
		wm.compFrames[d] = compFrames.With(dirNames[d])
		wm.compBytes[d] = compBytes.With(dirNames[d])
	}
	return wm
}

// frameOverhead is the wire framing cost per message (magic + version +
// 4-byte length prefix + 30-byte header), kept in sync with
// WriteMessage. Result frames carrying a ConvTiming record cost
// timingSize more.
const frameOverhead = 6 + bodyHeader

func (wm *WireMetrics) record(dir int, m *Message) {
	k := kindLabel(m.Kind)
	n := len(m.Payload) + frameOverhead
	if m.Timing != nil {
		n += timingSize
	}
	wm.frames[dir][k].Inc()
	wm.bytes[dir][k].Add(float64(n))
	if m.Compressed {
		wm.compFrames[dir].Inc()
		wm.compBytes[dir].Add(float64(len(m.Payload)))
	}
}

// meteredConn wraps a Conn and counts traffic on both directions.
type meteredConn struct {
	Conn
	wm *WireMetrics
}

// InstrumentConn wraps conn so every frame is counted in wm. A nil wm
// returns conn unchanged.
func InstrumentConn(conn Conn, wm *WireMetrics) Conn {
	if wm == nil {
		return conn
	}
	return &meteredConn{Conn: conn, wm: wm}
}

func (c *meteredConn) Send(m *Message) error {
	err := c.Conn.Send(m)
	if err == nil {
		c.wm.record(dirSent, m)
	}
	return err
}

func (c *meteredConn) Recv() (*Message, error) {
	m, err := c.Conn.Recv()
	if err == nil {
		c.wm.record(dirRecv, m)
	}
	return m, err
}

// node returns the label value for a node index.
func nodeLabel(k int) string { return strconv.Itoa(k) }

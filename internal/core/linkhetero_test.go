package core

import (
	"testing"
	"time"
)

// TestLinkHeterogeneityShiftsAllocation: a node behind a slow link
// returns fewer results within the stats window, so Algorithm 2/3 shift
// tiles away from it even though its CPU is healthy — bandwidth
// heterogeneity is absorbed by the same mechanism as CPU heterogeneity.
func TestLinkHeterogeneityShiftsAllocation(t *testing.T) {
	// The stats window anchors at send-completion (paper: the timer starts
	// "after transmitting all the tiles"), so only the return path can
	// discriminate link speed: keep inputs small and results raw/big, and
	// slow one node's link hard.
	s := vggSim(t, 4, func(c *SimConfig) {
		c.Pruning = false // raw result transfers dominate the return path
		c.LinkScale = []float64{1, 1, 1, 0.02}
		// A tight window: the auto window (1.25x compute) plus the slow
		// node's inflated send phase would otherwise mask return slowness.
		c.StatsWindow = 350 * time.Millisecond
	})
	var last ImageResult
	for i := 0; i < 12; i++ {
		last = s.RunImage()
	}
	slow := last.Alloc[3]
	for k := 0; k < 3; k++ {
		if last.Alloc[k] <= slow {
			t.Fatalf("node %d (fast link) got %d tiles, not more than slow-link node's %d: %v",
				k+1, last.Alloc[k], slow, last.Alloc)
		}
	}
}

// A degenerate LinkScale entry (0) falls back to nominal speed.
func TestLinkScaleZeroIsNominal(t *testing.T) {
	a := vggSim(t, 2, func(c *SimConfig) { c.LinkScale = []float64{0, 0} })
	b := vggSim(t, 2, nil)
	ra, rb := a.RunImage(), b.RunImage()
	if ra.Latency != rb.Latency {
		t.Fatalf("zero scale must mean nominal: %v vs %v", ra.Latency, rb.Latency)
	}
}

package core

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"adcnn/internal/compress"
	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/sched"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

// Worker is a Conv node: it stores the separable layer blocks' weights,
// processes input tiles, applies the communication-reduction boundary,
// and streams intermediate results back (paper Figure 8, right side).
type Worker struct {
	ID    int
	Model *models.Model
	// Delay adds artificial per-tile latency — the live-runtime
	// equivalent of throttling a device with CPUlimit, used to exercise
	// the adaptive scheduler against a genuinely slow node.
	Delay time.Duration
	// Metrics, when set, records task counts, per-tile process time,
	// wire traffic, and disconnect causes.
	Metrics *Metrics
}

// NewWorker creates a Conv-node worker around a model instance (the
// worker uses only Front and Boundary).
func NewWorker(id int, m *models.Model) *Worker {
	return &Worker{ID: id, Model: m}
}

// Serve processes tasks from conn until a shutdown message or clean EOF
// (both return nil). A mid-stream transport failure is returned to the
// caller — and counted separately from clean disconnects — so operators
// can tell a Central that hung up from a network that broke.
func (w *Worker) Serve(conn Conn) error {
	met := w.Metrics
	if met != nil {
		conn = InstrumentConn(conn, met.Wire)
	}
	var tasks *telemetry.Counter
	if met != nil {
		tasks = met.WorkerTasks.With(nodeLabel(w.ID))
	}
	for {
		m, err := conn.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) {
				if met != nil {
					met.WorkerRecvEOF.Inc()
				}
				return nil // peer closed cleanly
			}
			if met != nil {
				met.WorkerRecvErrors.Inc()
			}
			return fmt.Errorf("core: worker %d: recv: %w", w.ID, err)
		}
		switch m.Kind {
		case KindShutdown:
			return nil
		case KindTask:
			if w.Delay > 0 {
				time.Sleep(w.Delay)
			}
			start := time.Now()
			out, compressed, err := w.process(m.Payload)
			if err != nil {
				return fmt.Errorf("core: worker %d: %w", w.ID, err)
			}
			if met != nil {
				tasks.Inc()
				met.WorkerProcess.ObserveDuration(time.Since(start).Nanoseconds())
			}
			res := &Message{
				Kind: KindResult, ImageID: m.ImageID, TileID: m.TileID,
				NodeID: uint32(w.ID), Compressed: compressed, Payload: out,
			}
			if err := conn.Send(res); err != nil {
				if met != nil {
					met.WorkerSendErrors.Inc()
				}
				return fmt.Errorf("core: worker %d: send: %w", w.ID, err)
			}
		default:
			return fmt.Errorf("core: worker %d: unexpected message kind %d", w.ID, m.Kind)
		}
	}
}

// process runs one tile through Front + Boundary and encodes the result.
func (w *Worker) process(payload []byte) ([]byte, bool, error) {
	x, err := DecodeTensor(payload)
	if err != nil {
		return nil, false, err
	}
	y := w.Model.Front.Forward(x, false)
	opt := w.Model.Opt
	if opt.Clipped() {
		// The boundary's clipped ReLU runs on the Conv node so the result
		// is sparse before encoding.
		y = w.Model.Boundary.Layers[0].Forward(y, false)
		if opt.QuantBits > 0 {
			p := compress.NewPipeline(opt.QuantBits, opt.ClipHi-opt.ClipLo)
			out, err := p.Encode(y)
			return out, true, err
		}
	}
	return EncodeTensor(y), false, nil
}

// InferStats reports one distributed inference's runtime behaviour.
type InferStats struct {
	Latency     time.Duration
	TilesMissed int
	Alloc       sched.Allocation
	Received    []int
	WireBytes   int64 // total result bytes received
}

// Central is the ADCNN Central node: input-partition block, statistics
// collection block (Algorithm 2) and layer-computation block.
type Central struct {
	Model *models.Model
	Conns []Conn
	// TL is the wait deadline for intermediate results; missing tiles are
	// zero-filled (paper Section 6.1).
	TL    time.Duration
	Stats *sched.Stats

	metrics *Metrics
	trace   *telemetry.Trace

	imageID uint32
	dead    []bool // nodes whose connection failed
	mu      sync.Mutex
}

// SetMetrics attaches an instrument bundle: wire traffic is metered on
// every connection and Infer records the full metric catalog. Call
// before the first Infer.
func (c *Central) SetMetrics(m *Metrics) {
	c.metrics = m
	if m != nil && m.Wire != nil {
		for i, conn := range c.Conns {
			c.Conns[i] = InstrumentConn(conn, m.Wire)
		}
	}
}

// SetTrace attaches a tracer: Infer emits per-image phase spans on tid 0
// and per-tile dispatch→result spans on tid node+1. Call before the
// first Infer.
func (c *Central) SetTrace(t *telemetry.Trace) {
	c.trace = t
	if t != nil {
		t.SetThreadName(0, "central")
		for k := range c.Conns {
			t.SetThreadName(k+1, fmt.Sprintf("conv-%d", k))
		}
	}
}

// NewCentral creates a Central node. gamma is Algorithm 2's decay.
func NewCentral(m *models.Model, conns []Conn, tl time.Duration, gamma float64) (*Central, error) {
	if !m.Opt.Partitioned() {
		return nil, fmt.Errorf("core: central requires a partitioned model")
	}
	if len(conns) == 0 {
		return nil, fmt.Errorf("core: central needs at least one conv node")
	}
	tiles := m.Opt.Grid.Tiles()
	return &Central{
		Model: m,
		Conns: conns,
		TL:    tl,
		Stats: sched.NewStats(len(conns), gamma, float64(tiles)/float64(len(conns))),
		dead:  make([]bool, len(conns)),
	}, nil
}

// markDead flags a node whose connection failed so future allocations
// skip it — the paper's "if node k fails ... no tiles will be assigned
// to it" behaviour, but triggered immediately by the transport layer
// instead of waiting for the EWMA to decay.
func (c *Central) markDead(k int) {
	c.mu.Lock()
	c.dead[k] = true
	c.mu.Unlock()
	if c.metrics != nil {
		c.metrics.ConnDrops.With(nodeLabel(k)).Inc()
	}
}

// aliveSpeeds returns the scheduler speeds with dead nodes zeroed.
func (c *Central) aliveSpeeds() []float64 {
	speeds := c.Stats.Speeds()
	c.mu.Lock()
	for k, d := range c.dead {
		if d {
			speeds[k] = 0
		}
	}
	c.mu.Unlock()
	return speeds
}

// tileOutShape returns the per-tile Front output shape [1,C,h,w].
func (c *Central) tileOutShape() []int {
	full := c.Model.FrontOutputShape()
	g := c.Model.Opt.Grid
	return []int{1, full[0], full[1] / g.Rows, full[2] / g.Cols}
}

// Infer runs one distributed inference for a [1,C,H,W] input and returns
// the model output.
func (c *Central) Infer(x *tensor.Tensor) (*tensor.Tensor, InferStats, error) {
	start := time.Now()
	c.mu.Lock()
	c.imageID++
	img := c.imageID
	c.mu.Unlock()
	met, tr := c.metrics, c.trace
	if met != nil {
		met.Images.Inc()
	}

	g := c.Model.Opt.Grid
	tiles := g.Layout(x.Shape[2], x.Shape[3])

	// Input-partition block: allocate tiles to nodes by current stats,
	// skipping nodes whose connections have failed.
	alloc, err := sched.Allocate(len(tiles), c.aliveSpeeds(), 0, nil, nil)
	if err != nil {
		return nil, InferStats{}, fmt.Errorf("core: allocation: %w", err)
	}
	assignment := make([]int, len(tiles)) // tile -> node
	next := 0
	for k, n := range alloc {
		for j := 0; j < n; j++ {
			assignment[next] = k
			next++
		}
	}

	// Dispatch every tile. A send failure marks the node dead and the
	// tile falls over to the next alive node — the runtime half of the
	// paper's failure tolerance.
	dispatchSpan := tr.Begin("dispatch", "central", 0)
	var dispatchAt []time.Time // per tile, for round-trip accounting
	if met != nil || tr != nil {
		dispatchAt = make([]time.Time, len(tiles))
	}
	counts := make(sched.Allocation, len(c.Conns)) // tiles actually sent per node
	for ti, tl := range tiles {
		task := &Message{
			Kind: KindTask, ImageID: img, TileID: uint32(ti),
			Payload: EncodeTensor(fdsp.ExtractTile(x, tl)),
		}
		k := assignment[ti]
		sent := false
		for attempt := 0; attempt < len(c.Conns); attempt++ {
			c.mu.Lock()
			deadK := c.dead[k]
			c.mu.Unlock()
			if !deadK {
				if err := c.Conns[k].Send(task); err == nil {
					counts[k]++
					sent = true
					break
				}
				c.markDead(k)
			}
			k = (k + 1) % len(c.Conns)
		}
		if !sent {
			return nil, InferStats{}, fmt.Errorf("core: no alive conv node for tile %d", ti)
		}
		if dispatchAt != nil {
			dispatchAt[ti] = time.Now()
		}
		if met != nil {
			met.TilesDispatched.With(nodeLabel(k)).Inc()
		}
	}
	alloc = counts
	dispatchSpan.End(map[string]any{"image": img, "tiles": len(tiles)})

	// Collect intermediate results until all tiles arrive or TL expires.
	type arrival struct {
		tile int
		node int
		t    *tensor.Tensor
		wire int
	}
	results := make(chan arrival, len(tiles))
	var wg sync.WaitGroup
	done := make(chan struct{})
	for k, conn := range c.Conns {
		if alloc[k] == 0 {
			continue
		}
		wg.Add(1)
		go func(k int, conn Conn, want int) {
			defer wg.Done()
			for i := 0; i < want; {
				m, err := conn.Recv()
				if err != nil {
					c.markDead(k) // connection lost mid-image
					return
				}
				if m.Kind != KindResult {
					return
				}
				if m.ImageID != img {
					continue // stale result from a timed-out earlier image
				}
				i++
				var t *tensor.Tensor
				var derr error
				if m.Compressed {
					t, derr = compress.Decode(m.Payload)
				} else {
					t, derr = DecodeTensor(m.Payload)
				}
				if derr != nil {
					return
				}
				select {
				case results <- arrival{int(m.TileID), k, t, len(m.Payload)}:
				case <-done:
					return
				}
			}
		}(k, conn, alloc[k])
	}

	outTiles := make([]*tensor.Tensor, len(tiles))
	received := make([]int, len(c.Conns))
	var wire int64
	got := 0
	deadline := time.NewTimer(c.TL)
	defer deadline.Stop()
collect:
	for got < len(tiles) {
		select {
		case a := <-results:
			if outTiles[a.tile] == nil {
				outTiles[a.tile] = a.t
				received[a.node]++
				wire += int64(a.wire)
				got++
				if dispatchAt != nil {
					rt := time.Since(dispatchAt[a.tile])
					if met != nil {
						met.TilesReceived.With(nodeLabel(a.node)).Inc()
						met.TileRoundTrip.ObserveDuration(rt.Nanoseconds())
					}
					tr.Span(fmt.Sprintf("tile %d", a.tile), "tile", a.node+1,
						tr.Offset(dispatchAt[a.tile]), rt,
						map[string]any{"image": img, "tile": a.tile, "wire_bytes": a.wire})
				}
			}
		case <-deadline.C:
			break collect
		}
	}
	close(done)

	// Statistics-collection block (Algorithm 2).
	c.Stats.Update(received)
	if met != nil {
		speeds := c.Stats.Speeds()
		met.Sched.ObserveSpeeds(speeds)
		met.Sched.ObserveAllocation(alloc, speeds)
	}

	// Zero-fill missing tiles (paper: "start executing the later layers by
	// setting the missing input to zero").
	missed := 0
	shape := c.tileOutShape()
	for i := range outTiles {
		if outTiles[i] == nil {
			outTiles[i] = tensor.New(shape...)
			missed++
		}
	}
	if missed > 0 {
		if met != nil {
			met.TilesMissed.Add(float64(missed))
		}
		tr.Instant("zero-fill", "central", 0, tr.Offset(time.Now()),
			map[string]any{"image": img, "missed": missed})
	}

	// Layer-computation block: reassemble and run the later layers. When
	// results arrived compressed they are already dequantized, so only the
	// plain (raw) path needs the boundary applied here to mirror the
	// training graph.
	merged := fdsp.Reassemble(outTiles, g)
	if c.Model.Opt.Clipped() && missed == len(tiles) {
		// degenerate case, nothing to do — boundary of zeros is zeros
		_ = merged
	}
	backSpan := tr.Begin("back", "central", 0)
	out := c.Model.Back.Forward(merged, false)
	backSpan.End(map[string]any{"image": img})

	go func() { wg.Wait() }()
	latency := time.Since(start)
	if met != nil {
		met.ImageLatency.ObserveDuration(latency.Nanoseconds())
	}
	tr.Span(fmt.Sprintf("image %d", img), "image", 0, tr.Offset(start), latency,
		map[string]any{"missed": missed, "wire_bytes": wire})
	return out, InferStats{
		Latency:     latency,
		TilesMissed: missed,
		Alloc:       alloc,
		Received:    received,
		WireBytes:   wire,
	}, nil
}

// Shutdown tells every Conv node to stop and closes the connections.
func (c *Central) Shutdown() {
	for _, conn := range c.Conns {
		_ = conn.Send(&Message{Kind: KindShutdown})
		_ = conn.Close()
	}
}

package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/quant"
	"adcnn/internal/sched"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

// InferStats reports one distributed inference's runtime behaviour.
type InferStats struct {
	Latency     time.Duration
	TilesMissed int
	Alloc       sched.Allocation
	Received    []int
	WireBytes   int64 // total result bytes received
	// TraceID identifies this image across both sides of the wire: every
	// span the Central and the Conv nodes contribute to the Chrome trace
	// carries it, as does every tile frame.
	TraceID uint64
	// Breakdown is the per-tile latency decomposition (nil only when no
	// tile returned a timing-capable result).
	Breakdown *Breakdown
}

// Central is the ADCNN Central node: input-partition block, statistics
// collection block (Algorithm 2) and layer-computation block. The live
// runtime is session-based: one persistent nodeSession per Conv node
// (send loop + recv loop), a pending-table demux routing results to
// per-image collectors, and cancellation plumbed from Shutdown and the
// T_L deadline down to every blocking point. Multiple images may be in
// flight at once (InferAsync / Pipeline); Infer is the synchronous
// convenience wrapper.
//
// The session machinery — per-node sessions, the pending table, the
// membership view — lives in a replica-scoped struct (see replica.go):
// a Central is one replica of the control plane, and several Centrals
// can drive the same Conv pool concurrently (the Conv side serves each
// an independent session; see NodeServer). SetShare tells a replica
// what fraction of each node's capacity the cluster partitioner has
// assigned it, so co-resident replicas split a node rather than both
// assuming they own it.
type Central struct {
	Model *models.Model
	Conns []Conn
	// TL is the wait deadline for intermediate results; missing tiles are
	// zero-filled (paper Section 6.1).
	TL    time.Duration
	Stats *sched.Stats

	metrics *Metrics
	trace   *telemetry.Trace
	flight  *telemetry.FlightRecorder
	health  *HealthTracker

	// traceBase salts per-image trace IDs so traces from successive runs
	// don't collide when merged; the image ID is folded in per image.
	traceBase uint64

	imageID  atomic.Uint32
	inflight atomic.Int64 // images dispatched, Wait not finished
	mu       sync.Mutex   // guards Stats, share, and allocation
	backMu   sync.Mutex   // serializes the back-layer compute stage

	// share scales each node's measured speed in the allocator: the
	// cluster partitioner's per-replica capacity share (nil = this
	// replica owns every node outright).
	share []float64

	// probeEvery, when >0, starts a probe loop on first use that keeps
	// every session's RTT estimate fresh even when no tiles are flowing.
	probeEvery time.Duration
	// linkAware folds per-node transfer costs into the allocation (see
	// sched.EffectiveSpeeds). Off by default: with no link estimates the
	// effective speeds equal the measured ones anyway, but the gate keeps
	// the historical allocation byte-identical for existing callers.
	linkAware atomic.Bool
	// Transfer-cost calibration, guarded by mu: EWMA per-tile payload
	// bytes in each direction, and the EWMA image latency that converts
	// link seconds into the allocator's 1/s_k units.
	upBytesEWMA   float64
	downBytesEWMA float64
	latEWMA       float64 // seconds

	// probation, guarded by mu, timestamps the last probation revival
	// per node: an alive node whose Algorithm 2 estimate has starved to
	// ~zero (it stopped receiving tiles, so its EWMA decayed and the
	// allocator would never re-measure it) is periodically re-admitted
	// at the cold-start weight. A handful of probe tiles then either
	// restore its estimate or the telemetry pushes it back out.
	probation []time.Time

	ctx       context.Context
	cancel    context.CancelFunc
	startOnce sync.Once
	rep       *replica
}

// SetMetrics attaches an instrument bundle: wire traffic is metered on
// every connection and Infer records the full metric catalog. Call
// before the first Infer.
func (c *Central) SetMetrics(m *Metrics) {
	c.metrics = m
	if m != nil && m.Wire != nil {
		for i, conn := range c.Conns {
			c.Conns[i] = InstrumentConn(conn, m.Wire)
		}
	}
	if m != nil {
		c.rep.pending.stale = m.StaleResults
		c.health = NewHealthTracker(len(c.Conns), m.NodeHealth)
	}
}

// SetTrace attaches a tracer: Infer emits per-image phase spans on tid 0
// and per-tile dispatch→result spans on tid node+1. Call before the
// first Infer.
func (c *Central) SetTrace(t *telemetry.Trace) {
	c.trace = t
	if t != nil {
		t.SetThreadName(0, "central")
		for k := range c.Conns {
			t.SetThreadName(k+1, fmt.Sprintf("conv-%d", k))
		}
	}
}

// SetFlightRecorder attaches a flight recorder: the runtime records a
// structured event stream (enqueue, sent, result, stale, deadline
// misses, session transitions) into its ring and dumps the affected
// image's recent events whenever a tile misses T_L or a session fails
// over. Call before the first Infer; nil disables (the default).
func (c *Central) SetFlightRecorder(f *telemetry.FlightRecorder) { c.flight = f }

// FlightRecorder returns the attached recorder (nil when disabled).
func (c *Central) FlightRecorder() *telemetry.FlightRecorder { return c.flight }

// SetDialer gives node k's session a way to re-establish its connection
// after a transport failure (reconnect with exponential backoff).
// Without a dialer a failed node stays dead forever, which is the right
// default for in-process pipes. Call before the first Infer.
func (c *Central) SetDialer(k int, dial func(context.Context) (Conn, error)) {
	c.rep.setDialer(k, dial)
}

// SetShare installs the cluster partitioner's per-node capacity shares
// for this replica: node k's measured speed is scaled by share[k] in
// every subsequent allocation, so a replica granted 40% of a node
// routes 40% of the tiles it would have routed owning the node alone.
// A nil or short share leaves the remaining nodes unscaled. Safe to
// call concurrently with Infer — shares take effect on the next
// allocation.
func (c *Central) SetShare(share []float64) {
	c.mu.Lock()
	c.share = append(c.share[:0], share...)
	c.mu.Unlock()
}

// InFlight reports how many images have been dispatched whose Wait has
// not finished — the replica's instantaneous load, used by the cluster
// rebalancer as its demand signal.
func (c *Central) InFlight() int { return int(c.inflight.Load()) }

// NumNodes reports the current size of the membership view (including
// tombstoned nodes that have left).
func (c *Central) NumNodes() int { return len(c.rep.snapshot()) }

// AliveNodes reports, per node index, whether the session currently has
// a usable connection.
func (c *Central) AliveNodes() []bool {
	sessions := c.rep.snapshot()
	out := make([]bool, len(sessions))
	for k, s := range sessions {
		out[k] = s.Alive()
	}
	return out
}

// NewCentral creates a Central node. gamma is Algorithm 2's decay.
func NewCentral(m *models.Model, conns []Conn, tl time.Duration, gamma float64) (*Central, error) {
	if !m.Opt.Partitioned() {
		return nil, fmt.Errorf("core: central requires a partitioned model")
	}
	if len(conns) == 0 {
		return nil, fmt.Errorf("core: central needs at least one conv node")
	}
	tiles := m.Opt.Grid.Tiles()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Central{
		Model:     m,
		Conns:     conns,
		TL:        tl,
		Stats:     sched.NewStats(len(conns), gamma, float64(tiles)/float64(len(conns))),
		traceBase: uint64(time.Now().UnixNano()) << 20,
		ctx:       ctx,
		cancel:    cancel,
	}
	c.rep = newReplica(c, len(conns))
	return c, nil
}

// EnableLinkProbes arranges for every node session to receive a link
// probe each interval once the runtime starts: the probes refresh the
// RTT/offset estimate through idle periods and cost 8 payload bytes
// each way. Call before the first Infer.
func (c *Central) EnableLinkProbes(interval time.Duration) {
	c.probeEvery = interval
}

// EnableLinkAware folds the per-node transfer cost (EWMA tile bytes
// over the measured link rates) into every subsequent allocation. Safe
// to call at any time; nodes without converged link estimates keep
// their pure-compute cost.
func (c *Central) EnableLinkAware() { c.linkAware.Store(true) }

// DisableLinkAware reverts subsequent allocations to the pure-compute
// cost 1/s_k. Safe to call at any time; the chaos harness flips the
// gate mid-run to contrast speed-only and link-aware dispatch under
// the same fault.
func (c *Central) DisableLinkAware() { c.linkAware.Store(false) }

// start spins up the per-node sessions on first use, after SetMetrics /
// SetTrace / SetDialer have had their chance to run.
func (c *Central) start() {
	c.startOnce.Do(func() {
		c.rep.start(c.Conns)
		if c.probeEvery > 0 {
			c.rep.loopWG.Add(1)
			go c.probeLoop()
		}
	})
}

// probeLoop fans one link probe out to every session per tick.
func (c *Central) probeLoop() {
	defer c.rep.loopWG.Done()
	t := time.NewTicker(c.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
			for _, s := range c.rep.snapshot() {
				s.sendProbe()
			}
		}
	}
}

// AddNode grows the membership view with a new Conv node while the
// runtime is live: the node gets a session (with reconnect support when
// dial is non-nil), a fresh scheduler estimate at the initial value, and
// a health-tracker slot, and receives tiles from the next allocation
// onward. Returns the new node's index.
func (c *Central) AddNode(conn Conn, dial func(context.Context) (Conn, error)) int {
	c.start()
	if c.metrics != nil && c.metrics.Wire != nil {
		conn = InstrumentConn(conn, c.metrics.Wire)
	}
	// Grow the estimate before publishing the session so a concurrent
	// allocation never sees a node without a speed.
	c.mu.Lock()
	c.Stats.Add()
	c.mu.Unlock()
	if c.health != nil {
		c.health.Grow(1)
	}
	k := c.rep.addNode(conn, dial)
	if c.trace != nil {
		c.trace.SetThreadName(k+1, fmt.Sprintf("conv-%d", k))
	}
	c.flight.Record("node-join", 0, -1, k, "")
	return k
}

// RemoveNode retires node k from the membership view: its session is
// closed, queued tiles fail over to surviving nodes, and the session
// never reconnects (the index stays valid as a tombstone so node
// numbering is stable). Reports whether k named a live node.
func (c *Central) RemoveNode(k int) bool {
	c.start()
	s := c.rep.session(k)
	if s == nil {
		return false
	}
	s.retire()
	c.flight.Record("node-leave", 0, -1, k, "")
	return true
}

// reviveNode restores a reconnected node's scheduler estimate so it
// re-enters the allocation (the EWMA of a dead node decays toward zero
// and would otherwise never assign it work again).
func (c *Central) reviveNode(k int) {
	c.mu.Lock()
	c.Stats.Revive(k)
	c.mu.Unlock()
	if c.metrics != nil {
		c.metrics.Reconnects.With(nodeLabel(k)).Inc()
	}
}

// tileOutShape returns the per-tile Front output shape [1,C,h,w].
func (c *Central) tileOutShape() []int {
	full := c.Model.FrontOutputShape()
	g := c.Model.Opt.Grid
	return []int{1, full[0], full[1] / g.Rows, full[2] / g.Cols}
}

// Inflight is one dispatched image whose results are still being
// collected. Wait blocks until every tile arrived, the T_L deadline
// expired (missing tiles are zero-filled), or the submitting context was
// cancelled, then runs the back layers and returns the output. Wait is
// idempotent: repeated calls return the memoized result.
type Inflight struct {
	c          *Central
	parent     context.Context
	cctx       context.Context // parent + T_L deadline
	cancelTL   context.CancelFunc
	img        uint32
	traceID    uint64
	tiles      []fdsp.Tile
	nodes      int // membership size at dispatch
	col        *imageCollector
	alloc      sched.Allocation
	dispatchAt []time.Time // per tile, for round-trip accounting
	start      time.Time
	release    func() // pipeline admission slot, may be nil

	// Link-aware allocation context (nil when the mode is off or no
	// estimates existed at dispatch), recorded in the audit trail.
	linkSecs  []float64
	effSpeeds []float64

	finished bool
	out      *tensor.Tensor
	stats    InferStats
	err      error
}

// InferAsync partitions x, dispatches its tiles to the node sessions and
// returns without waiting for results — image i+1's tiles can be on the
// wire while image i's results are still arriving (paper Figure 9).
// Call Wait on the handle to collect the output; every InferAsync must
// be paired with exactly one Wait.
func (c *Central) InferAsync(ctx context.Context, x *tensor.Tensor) (*Inflight, error) {
	c.start()
	if err := c.ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: central is shut down: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	img := c.imageID.Add(1)
	traceID := c.traceBase | uint64(img)
	met, tr := c.metrics, c.trace
	c.inflight.Add(1)
	if met != nil {
		met.Images.Inc()
		met.InflightImages.Add(1)
	}
	undo := func() {
		c.inflight.Add(-1)
		if met != nil {
			met.InflightImages.Add(-1)
		}
	}

	g := c.Model.Opt.Grid
	tiles := g.Layout(x.Shape[2], x.Shape[3])

	// The membership view is snapshotted once per image: a node joining
	// mid-dispatch receives tiles from the next image onward.
	sessions := c.rep.snapshot()

	// Input-partition block: allocate tiles to nodes by current stats,
	// skipping nodes whose sessions are down and scaling by the cluster
	// share when one is installed. In link-aware mode the speeds are
	// derated by each node's measured transfer cost first, so a node
	// behind a collapsed link sheds tiles even while its compute-rate
	// estimate still looks healthy.
	c.mu.Lock()
	c.probationRevivesLocked(sessions, start)
	allocSpeeds := c.aliveSpeedsLocked(sessions)
	var linkSecs, effSpeeds []float64
	if c.linkAware.Load() {
		linkSecs = c.linkSecsLocked(sessions)
		if effSpeeds = sched.EffectiveSpeeds(allocSpeeds, linkSecs, c.latEWMA); effSpeeds != nil {
			allocSpeeds = effSpeeds
		}
	}
	alloc, err := sched.Allocate(len(tiles), allocSpeeds, 0, nil, nil)
	c.mu.Unlock()
	if err != nil {
		undo()
		return nil, fmt.Errorf("core: allocation: %w", err)
	}
	assignment := make([]int, len(tiles)) // tile -> node
	next := 0
	for k, n := range alloc {
		for j := 0; j < n; j++ {
			assignment[next] = k
			next++
		}
	}

	// Register the collector before the first task leaves, so a result
	// can never beat its pending-table entry.
	col := newImageCollector(img, len(tiles))
	c.rep.pending.register(col, len(tiles))

	// Dispatch every tile. An enqueue failure (session down) falls over
	// to the next alive node — the runtime half of the paper's failure
	// tolerance; a task stranded deeper in a dying session's queue comes
	// back through redispatch.
	dispatchSpan := tr.Begin("dispatch", "central", 0)
	var dispatchAt []time.Time
	if met != nil || tr != nil {
		dispatchAt = make([]time.Time, len(tiles))
	}
	// In the int8 operating mode the uplink carries quantized tiles: uint8
	// levels plus a per-tile affine, 4× smaller than float32 and consumed
	// directly by the workers' int8 entry convolution. Gated on the model
	// actually supporting the levels entry; tiles whose value range defies
	// a finite affine (NaN/Inf input) fall back to float32 per tile.
	quantUplink := c.Model.Opt.Int8 && c.Model.Int8InputOK()
	counts := make(sched.Allocation, len(sessions)) // tiles actually enqueued per node
	for ti, tl := range tiles {
		// Serialise the tile into a pooled wire buffer; the session's send
		// loop releases it once the frame is safely on the wire (a failed
		// send keeps it intact for redispatch). The tile tensor itself is
		// dead after serialisation.
		tile := fdsp.ExtractTile(x, tl)
		var payload []byte
		sentQuant := false
		if quantUplink {
			mn, mx := tensor.MinMax(tile.Data)
			if af, aerr := quant.AffineFor(mn, mx); aerr == nil {
				payload = AppendQuantTensor(tensor.GetBytes(QuantTensorWireSize(tile))[:0], tile, af)
				sentQuant = true
			}
		}
		if !sentQuant {
			payload = AppendTensor(tensor.GetBytes(TensorWireSize(tile))[:0], tile)
		}
		tensor.PutTensor(tile)
		task := &Message{
			Kind: KindTask, ImageID: img, TileID: uint32(ti),
			TraceID: traceID, SpanID: tileSpanID(img, ti),
			Quantized: sentQuant, Payload: payload,
		}
		k := assignment[ti]
		sent := false
		for attempt := 0; attempt < len(sessions); attempt++ {
			c.rep.pending.markEnqueued(pendingKey{img, uint32(ti)}, k, monoNow(), len(payload))
			if sessions[k].enqueue(ctx, task) {
				counts[k]++
				sent = true
				break
			}
			k = (k + 1) % len(sessions)
		}
		if !sent {
			c.rep.pending.dropImage(img, len(tiles))
			undo()
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("core: no alive conv node for tile %d", ti)
		}
		c.flight.Record("enqueue", img, ti, k, "")
		if dispatchAt != nil {
			dispatchAt[ti] = time.Now()
		}
		if met != nil {
			met.TilesDispatched.With(nodeLabel(k)).Inc()
		}
	}
	dispatchSpan.End(map[string]any{"image": img, "tiles": len(tiles), "trace_id": TraceIDString(traceID)})

	// The T_L clock starts when the last tile is handed off, matching the
	// paper's "after transmitting all the tiles" anchor.
	cctx, cancelTL := context.WithTimeout(ctx, c.TL)
	return &Inflight{
		c: c, parent: ctx, cctx: cctx, cancelTL: cancelTL,
		img: img, traceID: traceID, tiles: tiles, nodes: len(sessions),
		col: col, alloc: counts, dispatchAt: dispatchAt, start: start,
		linkSecs: linkSecs, effSpeeds: effSpeeds,
	}, nil
}

// tileSpanID derives the parent span ID a tile frame carries: unique
// per (image, tile) so Conv-side work can be parented to the dispatch.
func tileSpanID(img uint32, tile int) uint64 {
	return uint64(img)<<24 | uint64(tile)&0xffffff
}

// TraceIDString renders a trace ID the way it appears in span args.
func TraceIDString(id uint64) string { return fmt.Sprintf("%016x", id) }

// Wait collects the image's intermediate results, zero-fills whatever
// missed the deadline, and runs the layer-computation block.
func (h *Inflight) Wait() (*tensor.Tensor, InferStats, error) {
	if h.finished {
		return h.out, h.stats, h.err
	}
	h.finished = true
	h.out, h.stats, h.err = h.collect()
	return h.out, h.stats, h.err
}

func (h *Inflight) collect() (*tensor.Tensor, InferStats, error) {
	c := h.c
	met, tr := c.metrics, c.trace
	cleanup := func() {
		c.rep.pending.dropImage(h.img, len(h.tiles))
		h.cancelTL()
		c.inflight.Add(-1)
		if met != nil {
			met.InflightImages.Add(-1)
		}
		if h.release != nil {
			h.release()
		}
	}

	outTiles := make([]*tensor.Tensor, len(h.tiles))
	received := make([]int, h.nodes)
	breakdown := &Breakdown{Image: h.img, TraceID: h.traceID}
	var wire, taskWire int64
	got := 0
collect:
	for got < len(h.tiles) {
		select {
		case a := <-h.col.ch:
			collectNs := monoNow()
			outTiles[a.tile] = a.t
			// A redispatch can route a tile to a node that joined after
			// this image was dispatched; grow the tally to fit.
			for a.node >= len(received) {
				received = append(received, 0)
			}
			received[a.node]++
			wire += int64(a.wire)
			taskWire += int64(a.taskWire)
			got++
			if a.enqNs > 0 {
				tb := newTileBreakdown(a.tile, a.node, a.enqNs, a.sentNs, a.recvNs, collectNs, a.timing, a.offsetNs)
				breakdown.Tiles = append(breakdown.Tiles, tb)
				if met != nil {
					for p := 0; p < NumPhases; p++ {
						met.TilePhase[p].ObserveDuration(int64(tb.Phase[p]))
					}
				}
				c.health.Observe(a.node, &tb)
				// Feed the link profiler: uplink bytes over the uplink
				// phase, downlink bytes over the downlink phase.
				if s := c.rep.session(a.node); s != nil {
					s.link.observe(int64(a.taskWire), int64(a.wire),
						int64(tb.Phase[PhaseUplink]), int64(tb.Phase[PhaseDownlink]))
				}
				h.tracePhases(&tb, a.sentNs)
			}
			if h.dispatchAt != nil {
				rt := time.Since(h.dispatchAt[a.tile])
				if met != nil {
					met.TilesReceived.With(nodeLabel(a.node)).Inc()
					met.TileRoundTrip.ObserveDuration(rt.Nanoseconds())
					met.TileLatencyWindow.ObserveDuration(rt.Nanoseconds())
					met.TilesOKWindow.Inc()
				}
				tr.Span(fmt.Sprintf("tile %d", a.tile), "tile", a.node+1,
					tr.Offset(h.dispatchAt[a.tile]), rt,
					map[string]any{"image": h.img, "tile": a.tile, "wire_bytes": a.wire,
						"trace_id": TraceIDString(h.traceID)})
			}
		case <-h.col.fail:
			cleanup()
			return nil, InferStats{Latency: time.Since(h.start), TraceID: h.traceID}, h.col.err
		case <-h.cctx.Done():
			break collect // T_L expired or the caller cancelled
		}
	}
	cleanup()
	if err := h.parent.Err(); err != nil {
		return nil, InferStats{Latency: time.Since(h.start), TraceID: h.traceID}, err
	}

	// Statistics-collection block (Algorithm 2), plus the transfer-cost
	// calibration the link-aware allocator reads: average payload bytes
	// per tile in each direction this image.
	c.mu.Lock()
	c.Stats.Update(received)
	speeds := c.Stats.Speeds()
	if got > 0 {
		c.upBytesEWMA = calibEWMA(c.upBytesEWMA, float64(taskWire)/float64(got))
		c.downBytesEWMA = calibEWMA(c.downBytesEWMA, float64(wire)/float64(got))
	}
	c.mu.Unlock()
	if met != nil {
		met.Sched.ObserveSpeeds(speeds)
		met.Sched.ObserveAllocationLink(h.alloc, speeds, h.effSpeeds, h.linkSecs, h.img)
	}

	// Zero-fill missing tiles (paper: "start executing the later layers by
	// setting the missing input to zero").
	missed := 0
	shape := c.tileOutShape()
	for i := range outTiles {
		if outTiles[i] == nil {
			z := tensor.GetTensor(shape...)
			for j := range z.Data {
				z.Data[j] = 0
			}
			outTiles[i] = z
			missed++
			c.flight.Record("deadline-miss", h.img, i, -1,
				fmt.Sprintf("tile %d of image %d zero-filled at T_L=%v", i, h.img, c.TL))
		}
	}
	if missed > 0 {
		if met != nil {
			met.TilesMissed.Add(float64(missed))
			met.TilesMissWindow.Add(float64(missed))
		}
		tr.Instant("zero-fill", "central", 0, tr.Offset(time.Now()),
			map[string]any{"image": h.img, "missed": missed, "trace_id": TraceIDString(h.traceID)})
		c.flight.Dump("deadline-miss", h.img)
	}

	// Layer-computation block: reassemble and run the later layers. The
	// boundary already ran on the Conv nodes (both the raw and the
	// compressed result paths), so the merged tensor feeds Back directly.
	// The Central's compute stage is one resource: concurrent in-flight
	// images run it in turn, which is exactly the pipeline's third stage.
	merged := fdsp.Reassemble(outTiles, c.Model.Opt.Grid)
	// Reassemble copies every tile into the merged tensor, so the
	// pool-backed per-tile buffers (decoded results and zero fills alike)
	// can go home immediately.
	for _, t := range outTiles {
		tensor.PutTensor(t)
	}
	c.backMu.Lock()
	backSpan := tr.Begin("back", "central", 0)
	out := c.Model.Back.Forward(merged, false)
	backSpan.End(map[string]any{"image": h.img, "trace_id": TraceIDString(h.traceID)})
	c.backMu.Unlock()

	latency := time.Since(h.start)
	c.mu.Lock()
	c.latEWMA = latRefEWMA(c.latEWMA, latency.Seconds())
	c.mu.Unlock()
	if met != nil {
		met.ImageLatency.ObserveDuration(latency.Nanoseconds())
	}
	tr.Span(fmt.Sprintf("image %d", h.img), "image", 0, tr.Offset(h.start), latency,
		map[string]any{"missed": missed, "wire_bytes": wire, "trace_id": TraceIDString(h.traceID)})
	if len(breakdown.Tiles) == 0 {
		breakdown = nil
	}
	return out, InferStats{
		Latency:     latency,
		TilesMissed: missed,
		Alloc:       h.alloc,
		Received:    received,
		WireBytes:   wire,
		TraceID:     h.traceID,
		Breakdown:   breakdown,
	}, nil
}

// tracePhases merges the Conv node's side of a tile's journey into the
// trace as contiguous child spans on that node's track, mapped onto the
// Central's clock: uplink → queue → compute → downlink tile the
// interval between the frame leaving the Central and the result coming
// back, so both sides of the wire render under one trace ID.
func (h *Inflight) tracePhases(tb *TileBreakdown, sentNs int64) {
	tr := h.c.trace
	if tr == nil || tb.Conv == nil {
		return
	}
	args := map[string]any{
		"image": h.img, "tile": tb.Tile, "trace_id": TraceIDString(h.traceID),
		"span_id":         fmt.Sprintf("%016x", tileSpanID(h.img, tb.Tile)),
		"clock_offset_ns": tb.OffsetNs,
	}
	tid := tb.Node + 1
	at := sentNs
	for _, ph := range [...]struct {
		name  string
		phase int
	}{
		{"uplink", PhaseUplink},
		{"queue", PhaseNodeQueue},
		{"compute", PhaseCompute},
		{"downlink", PhaseDownlink},
	} {
		dur := tb.Phase[ph.phase]
		tr.Span(ph.name, "conv", tid, tr.Offset(monoWall(at)), dur, args)
		at += int64(dur)
	}
}

// calibEWMA folds one calibration sample (per-tile bytes, image
// latency) into its running estimate; the first sample seeds it.
const linkCalibAlpha = 0.2

func calibEWMA(cur, sample float64) float64 {
	if cur <= 0 {
		return sample
	}
	return cur + linkCalibAlpha*(sample-cur)
}

// latRefEWMA folds an image-latency sample into the reference scale
// that converts link seconds into allocator cost. Unlike the byte
// calibration this reference must not chase a fault: a collapsed link
// inflates image latency, and a reference that follows it makes the
// collapsed link's transfer cost look proportionally cheap, neutering
// the derating exactly when it is needed — the same reason the health
// tracker freezes its baseline during an anomaly. Downward moves
// attack at the calibration rate; upward moves creep.
const latRefDecayAlpha = 0.02

func latRefEWMA(cur, sample float64) float64 {
	if cur <= 0 {
		return sample
	}
	a := linkCalibAlpha
	if sample > cur {
		a = latRefDecayAlpha
	}
	return cur + a*(sample-cur)
}

// linkSecsLocked estimates each alive node's per-tile transfer time in
// seconds: EWMA payload bytes over the node's measured link rates. A
// direction without a converged, fresh estimate contributes nothing, so
// a node the profiler knows nothing about keeps its pure-compute cost.
// Callers hold c.mu.
func (c *Central) linkSecsLocked(sessions []*nodeSession) []float64 {
	if c.upBytesEWMA <= 0 && c.downBytesEWMA <= 0 {
		return nil
	}
	out := make([]float64, len(sessions))
	any := false
	for k, s := range sessions {
		up, down := s.link.rates()
		if up > 0 && c.upBytesEWMA > 0 {
			out[k] += c.upBytesEWMA / up
			any = true
		}
		if down > 0 && c.downBytesEWMA > 0 {
			out[k] += c.downBytesEWMA / down
			any = true
		}
	}
	if !any {
		return nil
	}
	return out
}

// Probation revival: how often a starved-but-alive node is re-admitted,
// and how far below the best alive estimate a node must have fallen to
// count as starved. γ=0.9 drops a zero-tile node's estimate by 10× per
// image, so "starved" is unambiguous within a handful of images. The
// interval must comfortably exceed one re-measurement burst (the
// linkMinSamples images a revived node serves before its fresh link
// estimate can derate it again), or a still-faulty node would re-enter
// back-to-back and the probe traffic itself would hold the SLO in
// breach; at 2s the exploration cost is a few tiles per starved node
// per interval.
const (
	probationInterval = 2 * time.Second
	probationFrac     = 0.02
)

// probationRevivesLocked re-admits alive nodes whose speed estimate has
// decayed to effectively zero. Algorithm 2 has a blind spot the chaos
// bandwidth drill exposes: a node shed by link-aware dispatch (or any
// transient stall) receives no tiles, its EWMA decays toward zero, and
// Allocate skips zero-speed nodes forever — the node is starved even
// after the fault heals. Reviving it to the cold-start weight every
// probationInterval routes a few tiles through it, refreshing both the
// speed estimate and the link telemetry. The link estimate is reset
// alongside: it describes conditions from before the starvation and
// would otherwise derate the node back out after a single probe tile,
// throttling re-measurement to one sample per staleness cycle. Cleared,
// the min-samples gate leaves the node underated for a few images —
// exactly long enough to re-measure the link as it is now. Callers
// hold c.mu.
func (c *Central) probationRevivesLocked(sessions []*nodeSession, now time.Time) {
	n := c.Stats.Nodes()
	for len(c.probation) < n {
		c.probation = append(c.probation, time.Time{})
	}
	best := 0.0
	for k, s := range sessions {
		if k < n && s.Alive() {
			if v := c.Stats.Speed(k); v > best {
				best = v
			}
		}
	}
	if best <= 0 {
		return
	}
	for k, s := range sessions {
		if k >= n || !s.Alive() || c.Stats.Speed(k) >= probationFrac*best {
			continue
		}
		if now.Sub(c.probation[k]) < probationInterval {
			continue
		}
		c.probation[k] = now
		c.Stats.Revive(k)
		s.link.reset()
		if c.metrics != nil {
			c.metrics.Revives.With(nodeLabel(k)).Inc()
		}
		if c.flight != nil {
			c.flight.Record("probation-revive", 0, 0, k,
				"starved speed estimate: re-admitting node at cold-start weight")
		}
	}
}

// aliveSpeedsLocked returns the allocator's speed vector for a session
// snapshot: the Algorithm 2 estimates, zeroed for down sessions and
// scaled by the cluster share. Callers hold c.mu.
func (c *Central) aliveSpeedsLocked(sessions []*nodeSession) []float64 {
	speeds := c.Stats.Speeds()
	if len(speeds) > len(sessions) {
		speeds = speeds[:len(sessions)]
	}
	for len(speeds) < len(sessions) {
		speeds = append(speeds, 0)
	}
	for k, s := range sessions {
		if !s.Alive() {
			speeds[k] = 0
			continue
		}
		if k < len(c.share) {
			speeds[k] *= c.share[k]
		}
	}
	return speeds
}

// Infer runs one distributed inference for a [1,C,H,W] input and returns
// the model output.
func (c *Central) Infer(x *tensor.Tensor) (*tensor.Tensor, InferStats, error) {
	return c.InferContext(context.Background(), x)
}

// InferContext is Infer with cancellation: the context aborts dispatch
// and collection; the T_L deadline still bounds the result wait.
func (c *Central) InferContext(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, InferStats, error) {
	h, err := c.InferAsync(ctx, x)
	if err != nil {
		return nil, InferStats{}, err
	}
	return h.Wait()
}

// Shutdown cancels the runtime context, stopping every node session's
// send and recv loop, and closes the connections (Conv nodes treat the
// EOF as a clean disconnect). It blocks until all session goroutines
// have exited.
func (c *Central) Shutdown() {
	c.cancel()
	c.rep.loopWG.Wait()
	for _, conn := range c.Conns {
		_ = conn.Close()
	}
	// Connections added after construction are not in Conns.
	for _, s := range c.rep.snapshot() {
		s.closeConn()
	}
}

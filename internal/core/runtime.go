package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"adcnn/internal/compress"
	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/quant"
	"adcnn/internal/sched"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

// Worker is a Conv node: it stores the separable layer blocks' weights,
// processes input tiles, applies the communication-reduction boundary,
// and streams intermediate results back (paper Figure 8, right side).
type Worker struct {
	ID    int
	Model *models.Model
	// Delay adds artificial per-tile latency — the live-runtime
	// equivalent of throttling a device with CPUlimit, used to exercise
	// the adaptive scheduler against a genuinely slow node. Set before
	// Serve starts; for mid-run changes use SetDelay.
	Delay time.Duration
	// Metrics, when set, records task counts, per-tile process time,
	// wire traffic, and disconnect causes.
	Metrics *Metrics

	// dynDelay overrides Delay once SetDelay has been called (value is
	// delay+1 so an explicit SetDelay(0) is distinguishable from unset).
	dynDelay atomic.Int64
}

// SetDelay changes the per-tile delay while Serve is running — the
// race-safe path for injecting a mid-run slowdown (gray-failure and SLO
// experiments).
func (w *Worker) SetDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	w.dynDelay.Store(int64(d) + 1)
}

// tileDelay returns the delay in effect for the next task.
func (w *Worker) tileDelay() time.Duration {
	if v := w.dynDelay.Load(); v > 0 {
		return time.Duration(v - 1)
	}
	return w.Delay
}

// NewWorker creates a Conv-node worker around a model instance (the
// worker uses only Front and Boundary).
func NewWorker(id int, m *models.Model) *Worker {
	return &Worker{ID: id, Model: m}
}

// Serve processes tasks from conn until the context is cancelled, a
// shutdown message arrives, or the peer disconnects cleanly (all return
// nil). A mid-stream transport failure is returned to the caller — and
// counted separately from clean disconnects — so operators can tell a
// Central that hung up from a network that broke.
func (w *Worker) Serve(ctx context.Context, conn Conn) error {
	if ctx == nil {
		ctx = context.Background()
	}
	met := w.Metrics
	if met != nil {
		conn = InstrumentConn(conn, met.Wire)
	}
	var tasks *telemetry.Counter
	if met != nil {
		tasks = met.WorkerTasks.With(nodeLabel(w.ID))
	}
	// Cancellation closes the connection, which unblocks Recv; the stop
	// channel reaps the watchdog on a normal return.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			_ = conn.Close()
		case <-stop:
		}
	}()
	var nextFree time.Time // Delay pacer: when the simulated device frees up
	// Steady-state scratch, reused across tasks: the decoded input tensor
	// (the model never retains inference inputs), the timing record, the
	// result message, and the pooled encode buffer. Conn.Send only borrows
	// the message, so all of it is ours again once Send returns.
	x := new(tensor.Tensor)
	qt := new(QuantTile)
	tm := new(ConvTiming)
	res := new(Message)
	var encBuf []byte
	for {
		m, err := conn.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) || ctx.Err() != nil {
				if met != nil {
					met.WorkerRecvEOF.Inc()
				}
				return nil // peer closed cleanly or we were cancelled
			}
			if met != nil {
				met.WorkerRecvErrors.Inc()
			}
			return fmt.Errorf("core: worker %d: recv: %w", w.ID, err)
		}
		switch m.Kind {
		case KindShutdown:
			return nil
		case KindTask:
			start := time.Now()
			*tm = ConvTiming{RecvNs: monoNow()}
			quantized := m.Quantized
			if quantized {
				if err := DecodeQuantTensorInto(qt, m.Payload); err != nil {
					return fmt.Errorf("core: worker %d: %w", w.ID, err)
				}
			} else if err := DecodeTensorInto(x, m.Payload); err != nil {
				return fmt.Errorf("core: worker %d: %w", w.ID, err)
			}
			m.ReleasePayload()
			tm.DecodeNs = monoNow()
			// Delay models a device that serves tiles at a fixed rate: each
			// task occupies the device for Delay of wall-clock time, and
			// back-to-back tasks chain off the previous release time rather
			// than off this goroutine's (scheduler-jittered) wake-up. A
			// plain sleep-per-task would model a device that slows down
			// whenever the Central's CPU is busy, which no remote device
			// does — and it underestimates pipelining on a loaded host.
			// The wait sits between decode and compute, so it shows up in
			// the timing record as queue time, like a busy real device.
			if delay := w.tileDelay(); delay > 0 {
				if nextFree.Before(start) {
					nextFree = start
				}
				nextFree = nextFree.Add(delay)
				if rem := time.Until(nextFree); rem > 0 {
					select {
					case <-time.After(rem):
					case <-ctx.Done():
						return nil
					}
				}
			}
			tm.ComputeStartNs = monoNow()
			var out []byte
			var compressed bool
			var err error
			if quantized {
				out, compressed, err = w.computeEncodeLevels(qt, x, tm, encBuf)
			} else {
				out, compressed, err = w.computeEncode(x, tm, encBuf)
			}
			if err != nil {
				return fmt.Errorf("core: worker %d: %w", w.ID, err)
			}
			encBuf = out
			if met != nil {
				tasks.Inc()
				met.WorkerProcess.ObserveDuration(time.Since(start).Nanoseconds())
			}
			tm.SendNs = monoNow()
			*res = Message{
				Kind: KindResult, ImageID: m.ImageID, TileID: m.TileID,
				NodeID: uint32(w.ID), Compressed: compressed, Payload: out,
				TraceID: m.TraceID, SpanID: m.SpanID, Timing: tm,
			}
			if err := conn.Send(res); err != nil {
				if ctx.Err() != nil {
					return nil
				}
				if met != nil {
					met.WorkerSendErrors.Inc()
				}
				return fmt.Errorf("core: worker %d: send: %w", w.ID, err)
			}
		default:
			return fmt.Errorf("core: worker %d: unexpected message kind %d", w.ID, m.Kind)
		}
	}
}

// computeEncode runs one decoded tile through Front + Boundary and
// encodes the result into buf (a pooled scratch buffer the caller reuses
// across tiles; too small and it is swapped for a bigger pooled one),
// stamping the compute-done and encode-done marks into the timing
// record. The returned slice is the (possibly replaced) buffer — the
// caller must retain it as the next call's buf.
func (w *Worker) computeEncode(x *tensor.Tensor, tm *ConvTiming, buf []byte) ([]byte, bool, error) {
	return w.boundaryEncode(w.Model.Front.Forward(x, false), tm, buf)
}

// computeEncodeLevels runs one quantized tile. When the model's front
// opens with an int8-enabled plain convolution, the decoded levels feed
// its quantized GEMM directly — the no-dequant fast path of the int8
// operating mode. Otherwise (residual-entry front, or a worker that
// never called QuantizeInt8) the tile is dequantized into x and takes
// the ordinary f32 path, so a mixed deployment still computes correctly.
func (w *Worker) computeEncodeLevels(q *QuantTile, x *tensor.Tensor, tm *ConvTiming, buf []byte) ([]byte, bool, error) {
	if len(q.Shape) == 4 && q.Shape[0] == 1 {
		if y, ok := w.Model.ForwardFrontLevels(q.Levels, q.Shape[1], q.Shape[2], q.Shape[3], q.Affine); ok {
			return w.boundaryEncode(y, tm, buf)
		}
	}
	q.DequantizeInto(x)
	return w.computeEncode(x, tm, buf)
}

// boundaryEncode applies the boundary ops to a Front output and encodes
// the result into buf (pooled, reused across tiles — see computeEncode).
func (w *Worker) boundaryEncode(y *tensor.Tensor, tm *ConvTiming, buf []byte) ([]byte, bool, error) {
	opt := w.Model.Opt
	clipped := opt.Clipped()
	if clipped {
		// The boundary's clipped ReLU runs on the Conv node so the result
		// is sparse before encoding.
		y = w.Model.Boundary.Layers[0].Forward(y, false)
	}
	tm.ComputeEndNs = monoNow()
	if clipped && opt.QuantBits > 0 {
		p := compress.NewPipeline(opt.QuantBits, opt.ClipHi-opt.ClipLo)
		// Pre-size to the worst case so the fused encoder never grows the
		// buffer mid-scan; at steady state the same buffer serves every tile.
		if n := p.MaxEncodedSize(y); cap(buf) < n {
			tensor.PutBytes(buf)
			buf = tensor.GetBytes(n)
		}
		out, err := p.EncodeInto(buf[:0], y)
		tm.EncodeNs = monoNow()
		if err != nil {
			return buf[:0], true, err
		}
		return out, true, nil
	}
	if n := TensorWireSize(y); cap(buf) < n {
		tensor.PutBytes(buf)
		buf = tensor.GetBytes(n)
	}
	out := AppendTensor(buf[:0], y)
	tm.EncodeNs = monoNow()
	return out, false, nil
}

// InferStats reports one distributed inference's runtime behaviour.
type InferStats struct {
	Latency     time.Duration
	TilesMissed int
	Alloc       sched.Allocation
	Received    []int
	WireBytes   int64 // total result bytes received
	// TraceID identifies this image across both sides of the wire: every
	// span the Central and the Conv nodes contribute to the Chrome trace
	// carries it, as does every tile frame.
	TraceID uint64
	// Breakdown is the per-tile latency decomposition (nil only when no
	// tile returned a timing-capable result).
	Breakdown *Breakdown
}

// Central is the ADCNN Central node: input-partition block, statistics
// collection block (Algorithm 2) and layer-computation block. The live
// runtime is session-based: one persistent nodeSession per Conv node
// (send loop + recv loop), a pending-table demux routing results to
// per-image collectors, and cancellation plumbed from Shutdown and the
// T_L deadline down to every blocking point. Multiple images may be in
// flight at once (InferAsync / Pipeline); Infer is the synchronous
// convenience wrapper.
type Central struct {
	Model *models.Model
	Conns []Conn
	// TL is the wait deadline for intermediate results; missing tiles are
	// zero-filled (paper Section 6.1).
	TL    time.Duration
	Stats *sched.Stats

	metrics *Metrics
	trace   *telemetry.Trace
	flight  *telemetry.FlightRecorder
	health  *HealthTracker

	// traceBase salts per-image trace IDs so traces from successive runs
	// don't collide when merged; the image ID is folded in per image.
	traceBase uint64

	imageID atomic.Uint32
	mu      sync.Mutex // guards Stats and allocation
	backMu  sync.Mutex // serializes the back-layer compute stage

	ctx       context.Context
	cancel    context.CancelFunc
	startOnce sync.Once
	sessions  []*nodeSession
	dialers   []func(context.Context) (Conn, error)
	pending   demux
	loopWG    sync.WaitGroup
}

// SetMetrics attaches an instrument bundle: wire traffic is metered on
// every connection and Infer records the full metric catalog. Call
// before the first Infer.
func (c *Central) SetMetrics(m *Metrics) {
	c.metrics = m
	if m != nil && m.Wire != nil {
		for i, conn := range c.Conns {
			c.Conns[i] = InstrumentConn(conn, m.Wire)
		}
	}
	if m != nil {
		c.pending.stale = m.StaleResults
		c.health = NewHealthTracker(len(c.Conns), m.NodeHealth)
	}
}

// SetTrace attaches a tracer: Infer emits per-image phase spans on tid 0
// and per-tile dispatch→result spans on tid node+1. Call before the
// first Infer.
func (c *Central) SetTrace(t *telemetry.Trace) {
	c.trace = t
	if t != nil {
		t.SetThreadName(0, "central")
		for k := range c.Conns {
			t.SetThreadName(k+1, fmt.Sprintf("conv-%d", k))
		}
	}
}

// SetFlightRecorder attaches a flight recorder: the runtime records a
// structured event stream (enqueue, sent, result, stale, deadline
// misses, session transitions) into its ring and dumps the affected
// image's recent events whenever a tile misses T_L or a session fails
// over. Call before the first Infer; nil disables (the default).
func (c *Central) SetFlightRecorder(f *telemetry.FlightRecorder) { c.flight = f }

// FlightRecorder returns the attached recorder (nil when disabled).
func (c *Central) FlightRecorder() *telemetry.FlightRecorder { return c.flight }

// SetDialer gives node k's session a way to re-establish its connection
// after a transport failure (reconnect with exponential backoff).
// Without a dialer a failed node stays dead forever, which is the right
// default for in-process pipes. Call before the first Infer.
func (c *Central) SetDialer(k int, dial func(context.Context) (Conn, error)) {
	c.dialers[k] = dial
}

// NewCentral creates a Central node. gamma is Algorithm 2's decay.
func NewCentral(m *models.Model, conns []Conn, tl time.Duration, gamma float64) (*Central, error) {
	if !m.Opt.Partitioned() {
		return nil, fmt.Errorf("core: central requires a partitioned model")
	}
	if len(conns) == 0 {
		return nil, fmt.Errorf("core: central needs at least one conv node")
	}
	tiles := m.Opt.Grid.Tiles()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Central{
		Model:     m,
		Conns:     conns,
		TL:        tl,
		Stats:     sched.NewStats(len(conns), gamma, float64(tiles)/float64(len(conns))),
		traceBase: uint64(time.Now().UnixNano()) << 20,
		ctx:       ctx,
		cancel:    cancel,
		dialers:   make([]func(context.Context) (Conn, error), len(conns)),
	}
	c.pending.init()
	return c, nil
}

// start spins up the per-node sessions on first use, after SetMetrics /
// SetTrace / SetDialer have had their chance to run.
func (c *Central) start() {
	c.startOnce.Do(func() {
		sessions := make([]*nodeSession, len(c.Conns))
		for k, conn := range c.Conns {
			sessions[k] = newNodeSession(k, c, conn, c.dialers[k])
		}
		// Publish under mu so concurrent readers that can't ride on the
		// dispatching goroutine (the /debug/sessions handler) see a
		// consistent slice before the loops start.
		c.mu.Lock()
		c.sessions = sessions
		c.mu.Unlock()
		for _, s := range sessions {
			c.loopWG.Add(1)
			go s.run()
		}
	})
}

// reviveNode restores a reconnected node's scheduler estimate so it
// re-enters the allocation (the EWMA of a dead node decays toward zero
// and would otherwise never assign it work again).
func (c *Central) reviveNode(k int) {
	c.mu.Lock()
	c.Stats.Revive(k)
	c.mu.Unlock()
	if c.metrics != nil {
		c.metrics.Reconnects.With(nodeLabel(k)).Inc()
	}
}

// redispatch re-routes tasks stranded by a connection failure to
// surviving nodes. A tile with no alive node left aborts its image's
// inference — the caller sees the same "no alive conv node" error the
// dispatcher raises.
func (c *Central) redispatch(orphans []*Message) {
	for _, m := range orphans {
		if m.Kind != KindTask {
			continue
		}
		placed := false
		for _, s := range c.sessions {
			if s.Alive() {
				c.pending.markEnqueued(pendingKey{m.ImageID, m.TileID}, s.id, monoNow())
				if !s.enqueue(c.ctx, m) {
					continue
				}
				if c.metrics != nil {
					c.metrics.TilesDispatched.With(nodeLabel(s.id)).Inc()
				}
				c.flight.Record("redispatch", m.ImageID, int(m.TileID), s.id, "")
				placed = true
				break
			}
		}
		if !placed {
			if e, ok := c.pending.claim(pendingKey{m.ImageID, m.TileID}); ok {
				c.flight.Record("abort", m.ImageID, int(m.TileID), -1, "no alive conv node")
				e.col.abort(fmt.Errorf("core: no alive conv node for tile %d", m.TileID))
			}
		}
	}
}

// tileOutShape returns the per-tile Front output shape [1,C,h,w].
func (c *Central) tileOutShape() []int {
	full := c.Model.FrontOutputShape()
	g := c.Model.Opt.Grid
	return []int{1, full[0], full[1] / g.Rows, full[2] / g.Cols}
}

// Inflight is one dispatched image whose results are still being
// collected. Wait blocks until every tile arrived, the T_L deadline
// expired (missing tiles are zero-filled), or the submitting context was
// cancelled, then runs the back layers and returns the output. Wait is
// idempotent: repeated calls return the memoized result.
type Inflight struct {
	c          *Central
	parent     context.Context
	cctx       context.Context // parent + T_L deadline
	cancelTL   context.CancelFunc
	img        uint32
	traceID    uint64
	tiles      []fdsp.Tile
	col        *imageCollector
	alloc      sched.Allocation
	dispatchAt []time.Time // per tile, for round-trip accounting
	start      time.Time
	release    func() // pipeline admission slot, may be nil

	finished bool
	out      *tensor.Tensor
	stats    InferStats
	err      error
}

// InferAsync partitions x, dispatches its tiles to the node sessions and
// returns without waiting for results — image i+1's tiles can be on the
// wire while image i's results are still arriving (paper Figure 9).
// Call Wait on the handle to collect the output; every InferAsync must
// be paired with exactly one Wait.
func (c *Central) InferAsync(ctx context.Context, x *tensor.Tensor) (*Inflight, error) {
	c.start()
	if err := c.ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: central is shut down: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	img := c.imageID.Add(1)
	traceID := c.traceBase | uint64(img)
	met, tr := c.metrics, c.trace
	if met != nil {
		met.Images.Inc()
		met.InflightImages.Add(1)
	}

	g := c.Model.Opt.Grid
	tiles := g.Layout(x.Shape[2], x.Shape[3])

	// Input-partition block: allocate tiles to nodes by current stats,
	// skipping nodes whose sessions are down.
	c.mu.Lock()
	alloc, err := sched.Allocate(len(tiles), c.aliveSpeedsLocked(), 0, nil, nil)
	c.mu.Unlock()
	if err != nil {
		if met != nil {
			met.InflightImages.Add(-1)
		}
		return nil, fmt.Errorf("core: allocation: %w", err)
	}
	assignment := make([]int, len(tiles)) // tile -> node
	next := 0
	for k, n := range alloc {
		for j := 0; j < n; j++ {
			assignment[next] = k
			next++
		}
	}

	// Register the collector before the first task leaves, so a result
	// can never beat its pending-table entry.
	col := newImageCollector(img, len(tiles))
	c.pending.register(col, len(tiles))

	// Dispatch every tile. An enqueue failure (session down) falls over
	// to the next alive node — the runtime half of the paper's failure
	// tolerance; a task stranded deeper in a dying session's queue comes
	// back through redispatch.
	dispatchSpan := tr.Begin("dispatch", "central", 0)
	var dispatchAt []time.Time
	if met != nil || tr != nil {
		dispatchAt = make([]time.Time, len(tiles))
	}
	// In the int8 operating mode the uplink carries quantized tiles: uint8
	// levels plus a per-tile affine, 4× smaller than float32 and consumed
	// directly by the workers' int8 entry convolution. Gated on the model
	// actually supporting the levels entry; tiles whose value range defies
	// a finite affine (NaN/Inf input) fall back to float32 per tile.
	quantUplink := c.Model.Opt.Int8 && c.Model.Int8InputOK()
	counts := make(sched.Allocation, len(c.sessions)) // tiles actually enqueued per node
	for ti, tl := range tiles {
		// Serialise the tile into a pooled wire buffer; the session's send
		// loop releases it once the frame is safely on the wire (a failed
		// send keeps it intact for redispatch). The tile tensor itself is
		// dead after serialisation.
		tile := fdsp.ExtractTile(x, tl)
		var payload []byte
		sentQuant := false
		if quantUplink {
			mn, mx := tensor.MinMax(tile.Data)
			if af, aerr := quant.AffineFor(mn, mx); aerr == nil {
				payload = AppendQuantTensor(tensor.GetBytes(QuantTensorWireSize(tile))[:0], tile, af)
				sentQuant = true
			}
		}
		if !sentQuant {
			payload = AppendTensor(tensor.GetBytes(TensorWireSize(tile))[:0], tile)
		}
		tensor.PutTensor(tile)
		task := &Message{
			Kind: KindTask, ImageID: img, TileID: uint32(ti),
			TraceID: traceID, SpanID: tileSpanID(img, ti),
			Quantized: sentQuant, Payload: payload,
		}
		k := assignment[ti]
		sent := false
		for attempt := 0; attempt < len(c.sessions); attempt++ {
			c.pending.markEnqueued(pendingKey{img, uint32(ti)}, k, monoNow())
			if c.sessions[k].enqueue(ctx, task) {
				counts[k]++
				sent = true
				break
			}
			k = (k + 1) % len(c.sessions)
		}
		if !sent {
			c.pending.dropImage(img, len(tiles))
			if met != nil {
				met.InflightImages.Add(-1)
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("core: no alive conv node for tile %d", ti)
		}
		c.flight.Record("enqueue", img, ti, k, "")
		if dispatchAt != nil {
			dispatchAt[ti] = time.Now()
		}
		if met != nil {
			met.TilesDispatched.With(nodeLabel(k)).Inc()
		}
	}
	dispatchSpan.End(map[string]any{"image": img, "tiles": len(tiles), "trace_id": TraceIDString(traceID)})

	// The T_L clock starts when the last tile is handed off, matching the
	// paper's "after transmitting all the tiles" anchor.
	cctx, cancelTL := context.WithTimeout(ctx, c.TL)
	return &Inflight{
		c: c, parent: ctx, cctx: cctx, cancelTL: cancelTL,
		img: img, traceID: traceID, tiles: tiles, col: col, alloc: counts,
		dispatchAt: dispatchAt, start: start,
	}, nil
}

// tileSpanID derives the parent span ID a tile frame carries: unique
// per (image, tile) so Conv-side work can be parented to the dispatch.
func tileSpanID(img uint32, tile int) uint64 {
	return uint64(img)<<24 | uint64(tile)&0xffffff
}

// TraceIDString renders a trace ID the way it appears in span args.
func TraceIDString(id uint64) string { return fmt.Sprintf("%016x", id) }

// Wait collects the image's intermediate results, zero-fills whatever
// missed the deadline, and runs the layer-computation block.
func (h *Inflight) Wait() (*tensor.Tensor, InferStats, error) {
	if h.finished {
		return h.out, h.stats, h.err
	}
	h.finished = true
	h.out, h.stats, h.err = h.collect()
	return h.out, h.stats, h.err
}

func (h *Inflight) collect() (*tensor.Tensor, InferStats, error) {
	c := h.c
	met, tr := c.metrics, c.trace
	cleanup := func() {
		c.pending.dropImage(h.img, len(h.tiles))
		h.cancelTL()
		if met != nil {
			met.InflightImages.Add(-1)
		}
		if h.release != nil {
			h.release()
		}
	}

	outTiles := make([]*tensor.Tensor, len(h.tiles))
	received := make([]int, len(c.sessions))
	breakdown := &Breakdown{Image: h.img, TraceID: h.traceID}
	var wire int64
	got := 0
collect:
	for got < len(h.tiles) {
		select {
		case a := <-h.col.ch:
			collectNs := monoNow()
			outTiles[a.tile] = a.t
			received[a.node]++
			wire += int64(a.wire)
			got++
			if a.enqNs > 0 {
				tb := newTileBreakdown(a.tile, a.node, a.enqNs, a.sentNs, a.recvNs, collectNs, a.timing, a.offsetNs)
				breakdown.Tiles = append(breakdown.Tiles, tb)
				if met != nil {
					for p := 0; p < NumPhases; p++ {
						met.TilePhase[p].ObserveDuration(int64(tb.Phase[p]))
					}
				}
				c.health.Observe(a.node, &tb)
				h.tracePhases(&tb, a.sentNs)
			}
			if h.dispatchAt != nil {
				rt := time.Since(h.dispatchAt[a.tile])
				if met != nil {
					met.TilesReceived.With(nodeLabel(a.node)).Inc()
					met.TileRoundTrip.ObserveDuration(rt.Nanoseconds())
					met.TileLatencyWindow.ObserveDuration(rt.Nanoseconds())
					met.TilesOKWindow.Inc()
				}
				tr.Span(fmt.Sprintf("tile %d", a.tile), "tile", a.node+1,
					tr.Offset(h.dispatchAt[a.tile]), rt,
					map[string]any{"image": h.img, "tile": a.tile, "wire_bytes": a.wire,
						"trace_id": TraceIDString(h.traceID)})
			}
		case <-h.col.fail:
			cleanup()
			return nil, InferStats{Latency: time.Since(h.start), TraceID: h.traceID}, h.col.err
		case <-h.cctx.Done():
			break collect // T_L expired or the caller cancelled
		}
	}
	cleanup()
	if err := h.parent.Err(); err != nil {
		return nil, InferStats{Latency: time.Since(h.start), TraceID: h.traceID}, err
	}

	// Statistics-collection block (Algorithm 2).
	c.mu.Lock()
	c.Stats.Update(received)
	speeds := c.Stats.Speeds()
	c.mu.Unlock()
	if met != nil {
		met.Sched.ObserveSpeeds(speeds)
		met.Sched.ObserveAllocation(h.alloc, speeds, h.img)
	}

	// Zero-fill missing tiles (paper: "start executing the later layers by
	// setting the missing input to zero").
	missed := 0
	shape := c.tileOutShape()
	for i := range outTiles {
		if outTiles[i] == nil {
			z := tensor.GetTensor(shape...)
			for j := range z.Data {
				z.Data[j] = 0
			}
			outTiles[i] = z
			missed++
			c.flight.Record("deadline-miss", h.img, i, -1,
				fmt.Sprintf("tile %d of image %d zero-filled at T_L=%v", i, h.img, c.TL))
		}
	}
	if missed > 0 {
		if met != nil {
			met.TilesMissed.Add(float64(missed))
			met.TilesMissWindow.Add(float64(missed))
		}
		tr.Instant("zero-fill", "central", 0, tr.Offset(time.Now()),
			map[string]any{"image": h.img, "missed": missed, "trace_id": TraceIDString(h.traceID)})
		c.flight.Dump("deadline-miss", h.img)
	}

	// Layer-computation block: reassemble and run the later layers. The
	// boundary already ran on the Conv nodes (both the raw and the
	// compressed result paths), so the merged tensor feeds Back directly.
	// The Central's compute stage is one resource: concurrent in-flight
	// images run it in turn, which is exactly the pipeline's third stage.
	merged := fdsp.Reassemble(outTiles, c.Model.Opt.Grid)
	// Reassemble copies every tile into the merged tensor, so the
	// pool-backed per-tile buffers (decoded results and zero fills alike)
	// can go home immediately.
	for _, t := range outTiles {
		tensor.PutTensor(t)
	}
	c.backMu.Lock()
	backSpan := tr.Begin("back", "central", 0)
	out := c.Model.Back.Forward(merged, false)
	backSpan.End(map[string]any{"image": h.img, "trace_id": TraceIDString(h.traceID)})
	c.backMu.Unlock()

	latency := time.Since(h.start)
	if met != nil {
		met.ImageLatency.ObserveDuration(latency.Nanoseconds())
	}
	tr.Span(fmt.Sprintf("image %d", h.img), "image", 0, tr.Offset(h.start), latency,
		map[string]any{"missed": missed, "wire_bytes": wire, "trace_id": TraceIDString(h.traceID)})
	if len(breakdown.Tiles) == 0 {
		breakdown = nil
	}
	return out, InferStats{
		Latency:     latency,
		TilesMissed: missed,
		Alloc:       h.alloc,
		Received:    received,
		WireBytes:   wire,
		TraceID:     h.traceID,
		Breakdown:   breakdown,
	}, nil
}

// tracePhases merges the Conv node's side of a tile's journey into the
// trace as contiguous child spans on that node's track, mapped onto the
// Central's clock: uplink → queue → compute → downlink tile the
// interval between the frame leaving the Central and the result coming
// back, so both sides of the wire render under one trace ID.
func (h *Inflight) tracePhases(tb *TileBreakdown, sentNs int64) {
	tr := h.c.trace
	if tr == nil || tb.Conv == nil {
		return
	}
	args := map[string]any{
		"image": h.img, "tile": tb.Tile, "trace_id": TraceIDString(h.traceID),
		"span_id":         fmt.Sprintf("%016x", tileSpanID(h.img, tb.Tile)),
		"clock_offset_ns": tb.OffsetNs,
	}
	tid := tb.Node + 1
	at := sentNs
	for _, ph := range [...]struct {
		name  string
		phase int
	}{
		{"uplink", PhaseUplink},
		{"queue", PhaseNodeQueue},
		{"compute", PhaseCompute},
		{"downlink", PhaseDownlink},
	} {
		dur := tb.Phase[ph.phase]
		tr.Span(ph.name, "conv", tid, tr.Offset(monoWall(at)), dur, args)
		at += int64(dur)
	}
}

// aliveSpeedsLocked is aliveSpeeds for callers already holding c.mu.
func (c *Central) aliveSpeedsLocked() []float64 {
	speeds := c.Stats.Speeds()
	for k, s := range c.sessions {
		if !s.Alive() {
			speeds[k] = 0
		}
	}
	return speeds
}

// Infer runs one distributed inference for a [1,C,H,W] input and returns
// the model output.
func (c *Central) Infer(x *tensor.Tensor) (*tensor.Tensor, InferStats, error) {
	return c.InferContext(context.Background(), x)
}

// InferContext is Infer with cancellation: the context aborts dispatch
// and collection; the T_L deadline still bounds the result wait.
func (c *Central) InferContext(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, InferStats, error) {
	h, err := c.InferAsync(ctx, x)
	if err != nil {
		return nil, InferStats{}, err
	}
	return h.Wait()
}

// Shutdown cancels the runtime context, stopping every node session's
// send and recv loop, and closes the connections (Conv nodes treat the
// EOF as a clean disconnect). It blocks until all session goroutines
// have exited.
func (c *Central) Shutdown() {
	c.cancel()
	c.loopWG.Wait()
	for _, conn := range c.Conns {
		_ = conn.Close()
	}
}

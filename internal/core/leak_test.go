package core

import (
	"bytes"
	"context"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"sync"
	"testing"
	"time"

	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/tensor"
)

// leakCheck snapshots the goroutine count and returns an assertion that
// the runtime sheds everything it spawned — session supervisors, send
// and recv loops, worker watchdogs — once the Central is shut down. The
// count is polled because goroutine teardown is asynchronous.
func leakCheck(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if runtime.NumGoroutine() <= base {
				return
			}
			if time.Now().After(deadline) {
				var buf bytes.Buffer
				_ = pprof.Lookup("goroutine").WriteTo(&buf, 1)
				t.Fatalf("goroutine leak: baseline %d, now %d\n%s",
					base, runtime.NumGoroutine(), buf.String())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestNoGoroutineLeakAfterShutdown pins the basic hygiene contract: a
// healthy run leaves nothing behind.
func TestNoGoroutineLeakAfterShutdown(t *testing.T) {
	check := leakCheck(t)
	opt := models.Options{Grid: fdsp.Grid{Rows: 4, Cols: 4}}
	c, _, stop := buildRuntime(t, opt, 4, 5*time.Second)
	rng := rand.New(rand.NewSource(21))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	for i := 0; i < 3; i++ {
		if _, _, err := c.Infer(x); err != nil {
			t.Fatal(err)
		}
	}
	stop()
	check()
}

// TestNoGoroutineLeakWithMissedTiles: an Infer whose tiles blow the T_L
// deadline must not strand a collector — the old runtime leaked its
// per-image fan-out goroutines via `go wg.Wait()` here.
func TestNoGoroutineLeakWithMissedTiles(t *testing.T) {
	check := leakCheck(t)
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	c, _, stop := buildRuntime(t, opt, 2, time.Nanosecond)
	rng := rand.New(rand.NewSource(22))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	for i := 0; i < 3; i++ {
		if _, _, err := c.Infer(x); err != nil {
			t.Fatal(err)
		}
	}
	// Give the overdue results time to arrive and be dropped as stale.
	time.Sleep(50 * time.Millisecond)
	stop()
	check()
}

// TestNoGoroutineLeakAfterConnFailure kills a connection mid-stream:
// the session loops for that node must exit (no dialer → dead forever)
// and shutdown must reap everything else.
// TestNoGoroutineLeakAfterMembershipChurn exercises the live
// join/leave path: a node added mid-run must receive tiles on the very
// next allocation (one image = one realloc interval), and retiring it
// while images are in flight must fail its unsettled tiles over to the
// survivors without stranding a single goroutine.
func TestNoGoroutineLeakAfterMembershipChurn(t *testing.T) {
	check := leakCheck(t)
	cfg := models.VGGSim()
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	m, err := models.Build(cfg, opt, 42)
	if err != nil {
		t.Fatal(err)
	}
	c, _, stop := buildRuntimeConns(t, m, 2, 5*time.Second)

	rng := rand.New(rand.NewSource(31))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	want := m.Net.Forward(x, false)
	for i := 0; i < 2; i++ { // warm the scheduler statistics
		if _, _, err := c.Infer(x); err != nil {
			t.Fatal(err)
		}
	}

	// Join: a third worker over a fresh pipe, slow enough that tiles
	// queued on it are genuinely unsettled when we retire it below.
	a, b := Pipe()
	w := NewWorker(3, m)
	w.Delay = 2 * time.Millisecond
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() { defer wwg.Done(); _ = w.Serve(context.Background(), b) }()
	k := c.AddNode(a, nil)
	if k != 2 {
		t.Fatalf("joined node got index %d, want 2", k)
	}

	// The joiner must be in the allocation of the very next image: its
	// scheduler estimate starts at the initial value, so Algorithm 3 has
	// no reason to skip it.
	out, st, err := c.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Alloc) != 3 || st.Alloc[k] == 0 {
		t.Fatalf("joined node absent from the next allocation: %v", st.Alloc)
	}
	if st.TilesMissed != 0 || !out.Equal(want, 1e-4) {
		t.Fatalf("inference with the joined node diverged (missed %d)", st.TilesMissed)
	}

	// Leave: retire the joiner while images are in flight so it holds
	// unsettled tiles. Every in-flight image must still complete — the
	// transition image may zero-fill, nothing may error or hang.
	var flights []*Inflight
	for i := 0; i < 3; i++ {
		h, err := c.InferAsync(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
		flights = append(flights, h)
	}
	if !c.RemoveNode(k) {
		t.Fatal("RemoveNode(2) should have named a live node")
	}
	misses := 0
	for i, h := range flights {
		out, st, err := h.Wait()
		if err != nil {
			t.Fatalf("in-flight image %d after leave: %v", i, err)
		}
		if st.TilesMissed > 0 {
			misses++
			continue
		}
		if !out.Equal(want, 1e-4) {
			t.Fatalf("in-flight image %d after leave diverged", i)
		}
	}
	_ = misses // zero-filled transitions are legitimate; hangs and errors are not

	// Steady state after the leave: the tombstone stays in the view but
	// gets no work, and outputs are exact again.
	out, st, err = c.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Alloc) != 3 || st.Alloc[k] != 0 {
		t.Fatalf("retired node still allocated tiles: %v", st.Alloc)
	}
	if st.TilesMissed != 0 || !out.Equal(want, 1e-4) {
		t.Fatalf("post-leave inference diverged (missed %d)", st.TilesMissed)
	}

	stop()
	wwg.Wait()
	check()
}

func TestNoGoroutineLeakAfterConnFailure(t *testing.T) {
	check := leakCheck(t)
	cfg := models.VGGSim()
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	m, err := models.Build(cfg, opt, 42)
	if err != nil {
		t.Fatal(err)
	}
	c, conns, stop := buildRuntimeConns(t, m, 2, 5*time.Second)
	rng := rand.New(rand.NewSource(23))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	if _, _, err := c.Infer(x); err != nil {
		t.Fatal(err)
	}
	conns[0].Close() // mid-stream transport failure
	for i := 0; i < 2; i++ {
		if _, _, err := c.Infer(x); err != nil {
			t.Fatal(err)
		}
	}
	stop()
	check()
}

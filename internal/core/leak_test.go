package core

import (
	"bytes"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/tensor"
)

// leakCheck snapshots the goroutine count and returns an assertion that
// the runtime sheds everything it spawned — session supervisors, send
// and recv loops, worker watchdogs — once the Central is shut down. The
// count is polled because goroutine teardown is asynchronous.
func leakCheck(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if runtime.NumGoroutine() <= base {
				return
			}
			if time.Now().After(deadline) {
				var buf bytes.Buffer
				_ = pprof.Lookup("goroutine").WriteTo(&buf, 1)
				t.Fatalf("goroutine leak: baseline %d, now %d\n%s",
					base, runtime.NumGoroutine(), buf.String())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestNoGoroutineLeakAfterShutdown pins the basic hygiene contract: a
// healthy run leaves nothing behind.
func TestNoGoroutineLeakAfterShutdown(t *testing.T) {
	check := leakCheck(t)
	opt := models.Options{Grid: fdsp.Grid{Rows: 4, Cols: 4}}
	c, _, stop := buildRuntime(t, opt, 4, 5*time.Second)
	rng := rand.New(rand.NewSource(21))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	for i := 0; i < 3; i++ {
		if _, _, err := c.Infer(x); err != nil {
			t.Fatal(err)
		}
	}
	stop()
	check()
}

// TestNoGoroutineLeakWithMissedTiles: an Infer whose tiles blow the T_L
// deadline must not strand a collector — the old runtime leaked its
// per-image fan-out goroutines via `go wg.Wait()` here.
func TestNoGoroutineLeakWithMissedTiles(t *testing.T) {
	check := leakCheck(t)
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	c, _, stop := buildRuntime(t, opt, 2, time.Nanosecond)
	rng := rand.New(rand.NewSource(22))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	for i := 0; i < 3; i++ {
		if _, _, err := c.Infer(x); err != nil {
			t.Fatal(err)
		}
	}
	// Give the overdue results time to arrive and be dropped as stale.
	time.Sleep(50 * time.Millisecond)
	stop()
	check()
}

// TestNoGoroutineLeakAfterConnFailure kills a connection mid-stream:
// the session loops for that node must exit (no dialer → dead forever)
// and shutdown must reap everything else.
func TestNoGoroutineLeakAfterConnFailure(t *testing.T) {
	check := leakCheck(t)
	cfg := models.VGGSim()
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	m, err := models.Build(cfg, opt, 42)
	if err != nil {
		t.Fatal(err)
	}
	c, conns, stop := buildRuntimeConns(t, m, 2, 5*time.Second)
	rng := rand.New(rand.NewSource(23))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	if _, _, err := c.Infer(x); err != nil {
		t.Fatal(err)
	}
	conns[0].Close() // mid-stream transport failure
	for i := 0; i < 2; i++ {
		if _, _, err := c.Infer(x); err != nil {
			t.Fatal(err)
		}
	}
	stop()
	check()
}

package core

import (
	"context"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/tensor"
)

// serveNodeTCP runs a NodeServer behind a loopback TCP accept loop —
// the shape of the adcnn-conv daemon — so several Centrals can each
// dial their own session to the same node.
func serveNodeTCP(t *testing.T, ns *NodeServer) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() { defer wg.Done(); _ = ns.ServeConn(ctx, NewStreamConn(c)) }()
		}
	}()
	return ln.Addr().String(), func() { cancel(); ln.Close(); wg.Wait() }
}

// TestNodeServerConcurrentSessionsTCP is the Conv half of the sharded
// control plane: one NodeServer per node serving two independent
// Central sessions over real TCP at once. Each Central's outputs must
// match local execution exactly (tile demux routed every result to the
// session that sent the task, exactly once), each session must build
// its own clock-offset estimate, and the per-session tile counters must
// account for every tile sent — no duplication, no loss.
func TestNodeServerConcurrentSessionsTCP(t *testing.T) {
	check := leakCheck(t)
	cfg := models.VGGSim()
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	m, err := models.Build(cfg, opt, 7)
	if err != nil {
		t.Fatal(err)
	}

	const nodes, centrals, images = 2, 2, 4
	servers := make([]*NodeServer, nodes)
	addrs := make([]string, nodes)
	stops := make([]func(), nodes)
	for i := 0; i < nodes; i++ {
		servers[i] = NewNodeServer(NewWorker(i+1, m), 0)
		addrs[i], stops[i] = serveNodeTCP(t, servers[i])
	}

	cens := make([]*Central, centrals)
	for r := 0; r < centrals; r++ {
		conns := make([]Conn, nodes)
		for i, addr := range addrs {
			d, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			conns[i] = NewStreamConn(d)
		}
		cen, err := NewCentral(m, conns, 10*time.Second, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		cens[r] = cen
	}

	rng := rand.New(rand.NewSource(8))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	want := m.Net.Forward(x, false)

	var wg sync.WaitGroup
	errs := make([]error, centrals)
	for r, cen := range cens {
		wg.Add(1)
		go func(r int, cen *Central) {
			defer wg.Done()
			for i := 0; i < images; i++ {
				out, st, err := cen.Infer(x)
				if err != nil {
					errs[r] = err
					return
				}
				if st.TilesMissed != 0 {
					t.Errorf("central %d image %d missed %d tiles over loopback", r, i, st.TilesMissed)
					return
				}
				if !out.Equal(want, 1e-4) {
					t.Errorf("central %d image %d diverged from local execution", r, i)
					return
				}
			}
		}(r, cen)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("central %d: %v", r, err)
		}
	}

	// Both sessions should still be attached on every node, and the
	// per-session counters must account for every tile exactly once:
	// centrals × images × tiles-per-image in total across the pool.
	var tiles uint64
	for i, ns := range servers {
		if got := ns.ActiveSessions(); got != centrals {
			t.Fatalf("node %d serves %d sessions, want %d", i, got, centrals)
		}
		for _, s := range ns.Sessions() {
			tiles += s.Tiles
		}
	}
	if want := uint64(centrals * images * opt.Grid.Rows * opt.Grid.Cols); tiles != want {
		t.Fatalf("pool computed %d tiles, want exactly %d", tiles, want)
	}

	// Each Central's sessions carry independent clock-offset estimates
	// fed by that session's own task round-trips.
	for r, cen := range cens {
		for _, s := range cen.DebugSessions() {
			if s.OffsetSamples == 0 {
				t.Fatalf("central %d node %d session has no clock-offset samples", r, s.Node)
			}
		}
	}

	for _, cen := range cens {
		cen.Shutdown()
	}
	for _, stop := range stops {
		stop()
	}
	check()
}

// TestClusterStealsDrainsAndRejectsAfterShutdown drives a 2-replica
// Cluster over a shared NodeServer pool with every submission aimed at
// one origin: the idle replica must steal, every image must deliver its
// result exactly once and exactly right, Shutdown must drain, and a
// Submit after Shutdown must fail cleanly — all without leaking a
// goroutine.
func TestClusterStealsDrainsAndRejectsAfterShutdown(t *testing.T) {
	check := leakCheck(t)
	cfg := models.VGGSim()
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	m, err := models.Build(cfg, opt, 42)
	if err != nil {
		t.Fatal(err)
	}

	const nodes, replicas, images = 2, 2, 10
	servers := make([]*NodeServer, nodes)
	for i := range servers {
		w := NewWorker(i+1, m)
		w.Delay = 2 * time.Millisecond // make images slow enough to queue
		servers[i] = NewNodeServer(w, 0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	build := func(r int) (*Central, error) {
		conns := make([]Conn, nodes)
		for i, ns := range servers {
			a, b := Pipe()
			conns[i] = a
			wg.Add(1)
			go func(ns *NodeServer, b Conn) { defer wg.Done(); _ = ns.ServeConn(ctx, b) }(ns, b)
		}
		return NewCentral(m, conns, 5*time.Second, 0.9)
	}
	cl, err := NewCluster(build, ClusterOptions{Replicas: replicas, Depth: 1, RebalanceEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	want := m.Net.Forward(x, false)

	chans := make([]<-chan ClusterResult, images)
	for i := range chans {
		ch, err := cl.Submit(context.Background(), 0, x)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
	}
	stolen := 0
	for i, ch := range chans {
		r := <-ch
		if r.Err != nil {
			t.Fatalf("image %d: %v", i, r.Err)
		}
		if r.Origin != 0 {
			t.Fatalf("image %d reports origin %d, want 0", i, r.Origin)
		}
		if !r.Out.Equal(want, 1e-4) {
			t.Fatalf("image %d diverged from local execution", i)
		}
		if r.Replica != r.Origin {
			stolen++
		}
		select {
		case extra := <-ch:
			t.Fatalf("image %d delivered twice: %+v", i, extra)
		default: // exactly once
		}
	}
	if stolen == 0 {
		t.Fatal("the idle replica never stole from the loaded origin")
	}
	if steals := cl.Steals(); steals[1] == 0 {
		t.Fatalf("steal counters %v disagree with observed steals %d", steals, stolen)
	}

	cl.Shutdown()
	if _, err := cl.Submit(context.Background(), 0, x); err == nil {
		t.Fatal("submit after shutdown must fail")
	}
	cancel()
	wg.Wait()
	check()
}

package core

import (
	"encoding/json"
	"net/http"
)

// SessionDebug is one node session's state snapshot, served as JSON at
// /debug/sessions on the metrics mux.
type SessionDebug struct {
	Node  int  `json:"node"`
	Alive bool `json:"alive"`
	// Epochs counts connection epochs started (1 = the original
	// connection; each reconnect adds one).
	Epochs     int `json:"epochs"`
	QueueDepth int `json:"queue_depth"`
	// PendingTiles counts outstanding tiles last enqueued on this
	// session (dispatched, result not yet settled).
	PendingTiles int `json:"pending_tiles"`
	// BackoffMs is the current reconnect backoff; 0 while connected.
	BackoffMs float64 `json:"reconnect_backoff_ms"`
	// ClockOffsetNs maps this Conv node's monotonic timestamps onto the
	// Central's clock (added to Conv readings); RTTNs is the smoothed
	// round trip the estimate is based on.
	ClockOffsetNs int64 `json:"clock_offset_ns"`
	RTTNs         int64 `json:"rtt_ns"`
	OffsetSamples int64 `json:"offset_samples"`
	// UplinkBps/DownlinkBps are the passive link-rate estimates in
	// bytes/sec (0 = unknown, unconverged, or stale); LinkSamples counts
	// the transfer samples behind them, LinkProbes the probe echoes
	// folded into the RTT estimate.
	UplinkBps   float64 `json:"uplink_bytes_per_sec"`
	DownlinkBps float64 `json:"downlink_bytes_per_sec"`
	LinkSamples int     `json:"link_samples"`
	LinkProbes  uint64  `json:"link_probes"`
}

// DebugSessions snapshots every node session's state. It is safe to
// call before the first Infer (the sessions spin up on first use, so
// the list is empty until then).
func (c *Central) DebugSessions() []SessionDebug {
	sessions := c.rep.snapshot()
	out := make([]SessionDebug, 0, len(sessions))
	perNode := c.rep.pending.perNode()
	for _, s := range sessions {
		info := s.debugInfo()
		info.PendingTiles = perNode[s.id]
		out = append(out, info)
	}
	return out
}

// SessionsHandler serves DebugSessions as JSON, for mounting at
// /debug/sessions beside /metrics.
func (c *Central) SessionsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(c.DebugSessions())
	})
}

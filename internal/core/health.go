package core

import (
	"fmt"
	"sync"
	"time"

	"adcnn/internal/telemetry"
)

// Gray-failure health scoring. A node that dies outright is caught by
// the session layer (ConnDrops, reconnects); a node that silently
// degrades — thermal throttling, a congested uplink, a co-tenant
// stealing cycles — keeps answering but slower, and Algorithm 2's s_k
// folds the slowdown into one number without saying *why*. The tracker
// watches the per-tile phase decomposition (PR "tracing" layer) per
// node and per phase with two EWMAs:
//
//	fast (α≈0.25)  the node's behaviour over the last ~dozen tiles
//	slow (α≈0.02)  the node's learned baseline
//
// The health score is the worst relative deviation of fast over slow
// across the watched phases (compute, uplink, node_queue):
//
//	score = max_phase max(0, fast/slow − 1)
//
// 0 means "behaving like its own baseline"; 1 means "some phase is
// running 2× its baseline". The baseline is frozen while the fast EWMA
// is anomalous (ratio > freezeRatio), so a sustained slowdown cannot
// launder itself into the baseline and disappear. Scores are exported
// as adcnn_central_node_health{node} and the worst node is named in
// SLO-breach flight dumps.

// healthPhases are the phases the scorer watches: the three where a
// gray failure manifests. Downlink/dispatch/collect are dominated by
// the Central's own load and would blame the wrong party.
var healthPhases = [3]int{PhaseCompute, PhaseUplink, PhaseNodeQueue}

// Health tuning constants.
const (
	healthFastAlpha   = 0.25
	healthSlowAlpha   = 0.02
	healthWarmup      = 8    // samples before a node is judged
	healthFreezeRatio = 1.5  // fast/slow above this freezes the baseline
	healthFloorNs     = 50e3 // 50µs: phases below this are noise, not signal
)

// nodeHealth is one node's EWMA state.
type nodeHealth struct {
	fast, slow [len(healthPhases)]float64 // seconds
	samples    uint64
	score      float64
	worstPhase int
}

// HealthTracker scores every Conv node for gray failure. All methods
// are nil-receiver safe; Observe is called on the per-tile collect path
// and does two float ops per watched phase under one short mutex hold.
type HealthTracker struct {
	mu    sync.Mutex
	nodes []nodeHealth
	gauge *telemetry.GaugeVec // adcnn_central_node_health; may be nil
}

// NewHealthTracker creates a tracker for n nodes. gauge may be nil.
func NewHealthTracker(n int, gauge *telemetry.GaugeVec) *HealthTracker {
	return &HealthTracker{nodes: make([]nodeHealth, n), gauge: gauge}
}

// Grow adds n fresh slots for nodes that joined after construction
// (Central.AddNode). Nil-receiver safe.
func (t *HealthTracker) Grow(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.mu.Lock()
	t.nodes = append(t.nodes, make([]nodeHealth, n)...)
	t.mu.Unlock()
}

// Observe folds one tile's phase decomposition into node's EWMAs and
// refreshes its score.
func (t *HealthTracker) Observe(node int, tb *TileBreakdown) {
	if t == nil || node < 0 {
		return
	}
	t.mu.Lock()
	if node >= len(t.nodes) {
		t.mu.Unlock()
		return
	}
	h := &t.nodes[node]
	h.samples++
	warm := h.samples > healthWarmup
	score, worstPhase := 0.0, -1
	for i, p := range healthPhases {
		v := tb.Phase[p].Seconds()
		if v < 0 {
			v = 0
		}
		if h.samples == 1 {
			h.fast[i], h.slow[i] = v, v
			continue
		}
		h.fast[i] = (1-healthFastAlpha)*h.fast[i] + healthFastAlpha*v
		base := h.slow[i]
		ratio := 1.0
		if base > healthFloorNs/1e9 {
			ratio = h.fast[i] / base
		}
		// Freeze the baseline while this phase is anomalous so a
		// sustained slowdown cannot become the new normal.
		if !warm || ratio <= healthFreezeRatio {
			h.slow[i] = (1-healthSlowAlpha)*h.slow[i] + healthSlowAlpha*v
		}
		if warm {
			if d := ratio - 1; d > score {
				score, worstPhase = d, p
			}
		}
	}
	h.score, h.worstPhase = score, worstPhase
	gauge := t.gauge
	t.mu.Unlock()
	if gauge != nil {
		gauge.With(nodeLabel(node)).Set(score)
	}
}

// Score returns node's current anomaly score (0 = at baseline).
func (t *HealthTracker) Score(node int) float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if node < 0 || node >= len(t.nodes) {
		return 0
	}
	return t.nodes[node].score
}

// Scores returns every node's current score.
func (t *HealthTracker) Scores() []float64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]float64, len(t.nodes))
	for i := range t.nodes {
		out[i] = t.nodes[i].score
	}
	return out
}

// Worst returns the unhealthiest node, its score, and the phase driving
// it ("" when healthy). node is −1 when the tracker has no nodes.
func (t *HealthTracker) Worst() (node int, score float64, phase string) {
	if t == nil {
		return -1, 0, ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	node = -1
	for i := range t.nodes {
		if node == -1 || t.nodes[i].score > score {
			node, score = i, t.nodes[i].score
		}
	}
	if node >= 0 && t.nodes[node].worstPhase >= 0 {
		phase = PhaseNames[t.nodes[node].worstPhase]
	}
	return node, score, phase
}

// Health returns the Central's gray-failure tracker (nil when metrics
// are disabled).
func (c *Central) Health() *HealthTracker { return c.health }

// SLOConfig selects the Central's standard SLO objectives. Zero values
// take the defaults; a negative threshold/budget disables that
// objective.
type SLOConfig struct {
	// TileP99 is the p99 tile round-trip latency threshold in seconds.
	TileP99 float64
	// MissBudget is the tolerated zero-fill fraction (missed tiles over
	// all settled tiles).
	MissBudget float64
	// FastWindow/SlowWindow are the burn-rate evaluation windows.
	FastWindow, SlowWindow time.Duration
}

// Default SLO parameters: p99 tile latency under 250ms, zero-fill under
// 1%, judged over a 2s fast / 16s slow window pair.
const (
	DefaultTileP99    = 0.250
	DefaultMissBudget = 0.01
)

// DefaultSLOWindows are the standard burn-rate windows.
var DefaultSLOWindows = [2]time.Duration{2 * time.Second, 16 * time.Second}

// SLOTileLatency and SLOZeroFill name the standard objectives.
const (
	SLOTileLatency = "tile_latency_p99"
	SLOZeroFill    = "zero_fill_ratio"
)

// NewSLOEngine builds an engine over m's windowed instruments with the
// standard ADCNN objectives: p99 tile latency and zero-fill ratio.
func NewSLOEngine(m *Metrics, cfg SLOConfig) *telemetry.SLOEngine {
	if cfg.TileP99 == 0 {
		cfg.TileP99 = DefaultTileP99
	}
	if cfg.MissBudget == 0 {
		cfg.MissBudget = DefaultMissBudget
	}
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = DefaultSLOWindows[0]
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = DefaultSLOWindows[1]
	}
	e := telemetry.NewSLOEngine(m.Registry)
	if cfg.TileP99 > 0 {
		e.Register(telemetry.NewLatencySLO(SLOTileLatency, m.TileLatencyWindow,
			0.99, cfg.TileP99, cfg.FastWindow, cfg.SlowWindow))
	}
	if cfg.MissBudget > 0 {
		e.Register(telemetry.NewRatioSLO(SLOZeroFill, m.TilesOKWindow, m.TilesMissWindow,
			cfg.MissBudget, cfg.FastWindow, cfg.SlowWindow))
	}
	return e
}

// WireSLO subscribes the Central to engine transitions: every
// transition lands in the flight-recorder event stream, and a
// transition *into* breach dumps the whole ring — the events leading up
// to the breach span many images, so the image-scoped Dump would lose
// them — with the dump reason naming the breaching objective and the
// worst-health node.
func (c *Central) WireSLO(engine *telemetry.SLOEngine) {
	if engine == nil {
		return
	}
	engine.Subscribe(func(tr telemetry.SLOTransition) {
		c.flight.Record("slo-"+tr.ToName, 0, -1, -1,
			fmt.Sprintf("%s %s→%s: %s", tr.Objective, tr.FromName, tr.ToName, tr.Detail))
		if tr.To != telemetry.SLOBreach {
			return
		}
		node, score, phase := c.health.Worst()
		reason := fmt.Sprintf("slo-breach %s", tr.Objective)
		if node >= 0 && score > 0 {
			reason += fmt.Sprintf(" worst-node=%d health=%.2f phase=%s", node, score, phase)
		}
		c.flight.DumpAll(reason)
	})
}

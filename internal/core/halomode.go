package core

import (
	"fmt"
	"sync"
	"time"

	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/tensor"
)

// HaloCentral distributes inference with *exact* halo-extended tiles
// (the AOFL/DeepThings execution style the paper compares against):
// each Conv node receives its tile extended by the separable prefix's
// receptive-field margin, runs the unmodified Front, and the Central
// node crops the contaminated border before reassembly. No retraining
// is needed and the result is bit-identical to local execution — at the
// cost of transmitting and computing the halo overlap, which is exactly
// the overhead ADCNN's FDSP eliminates.
type HaloCentral struct {
	Model *models.Model // an UNpartitioned model (Options zero value)
	Grid  fdsp.Grid
	Conns []Conn
	TL    time.Duration

	margin int
	down   int

	imageID uint32
	mu      sync.Mutex
}

// NewHaloCentral builds the exact-mode central node. The model must be
// unpartitioned (halo execution works on the original weights).
func NewHaloCentral(m *models.Model, g fdsp.Grid, conns []Conn, tl time.Duration) (*HaloCentral, error) {
	if m.Opt.Partitioned() || m.Opt.Clipped() {
		return nil, fmt.Errorf("core: halo mode needs the original (unmodified) model")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(conns) == 0 {
		return nil, fmt.Errorf("core: need at least one conv node")
	}
	var geoms []fdsp.LayerGeom
	for _, gg := range m.Cfg.HaloGeoms(m.Cfg.Separable) {
		geoms = append(geoms, fdsp.LayerGeom{Kernel: gg[0], Stride: gg[1]})
	}
	margin := fdsp.HaloMargin(geoms)
	down := fdsp.Downsample(geoms)
	if margin%down != 0 {
		margin += down - margin%down
	}
	return &HaloCentral{Model: m, Grid: g, Conns: conns, TL: tl, margin: margin, down: down}, nil
}

// Margin returns the per-tile input extension in pixels.
func (c *HaloCentral) Margin() int { return c.margin }

// Infer runs one exact distributed inference.
func (c *HaloCentral) Infer(x *tensor.Tensor) (*tensor.Tensor, InferStats, error) {
	start := time.Now()
	c.mu.Lock()
	c.imageID++
	img := c.imageID
	c.mu.Unlock()

	h, w := x.Shape[2], x.Shape[3]
	tiles := c.Grid.Layout(h, w)
	exts := make([]fdsp.Tile, len(tiles))
	var wireOut int64
	for ti, tl := range tiles {
		if tl.Y0%c.down != 0 || tl.X0%c.down != 0 || tl.H%c.down != 0 || tl.W%c.down != 0 {
			return nil, InferStats{}, fmt.Errorf("core: tile %d not aligned to downsample %d", ti, c.down)
		}
		exts[ti] = fdsp.HaloExtension(tl, c.margin, h, w)
		payload := EncodeTensor(fdsp.ExtractTile(x, exts[ti]))
		wireOut += int64(len(payload))
		conn := c.Conns[ti%len(c.Conns)]
		if err := conn.Send(&Message{Kind: KindTask, ImageID: img, TileID: uint32(ti), Payload: payload}); err != nil {
			return nil, InferStats{}, fmt.Errorf("core: send tile %d: %w", ti, err)
		}
	}

	// Collect all extended results.
	type arrival struct {
		tile int
		t    *tensor.Tensor
	}
	results := make(chan arrival, len(tiles))
	var wg sync.WaitGroup
	perConn := make([]int, len(c.Conns))
	for ti := range tiles {
		perConn[ti%len(c.Conns)]++
	}
	for k, conn := range c.Conns {
		if perConn[k] == 0 {
			continue
		}
		wg.Add(1)
		go func(conn Conn, want int) {
			defer wg.Done()
			for i := 0; i < want; {
				m, err := conn.Recv()
				if err != nil || m.Kind != KindResult {
					return
				}
				if m.ImageID != img {
					continue
				}
				i++
				t, derr := DecodeTensor(m.Payload)
				if derr != nil {
					return
				}
				results <- arrival{int(m.TileID), t}
			}
		}(conn, perConn[k])
	}

	outs := make([]*tensor.Tensor, len(tiles))
	deadline := time.NewTimer(c.TL)
	defer deadline.Stop()
	got := 0
collect:
	for got < len(tiles) {
		select {
		case a := <-results:
			if outs[a.tile] == nil {
				outs[a.tile] = a.t
				got++
			}
		case <-deadline.C:
			break collect
		}
	}
	go func() { wg.Wait() }()
	if got < len(tiles) {
		return nil, InferStats{Latency: time.Since(start), TilesMissed: len(tiles) - got},
			fmt.Errorf("core: halo mode cannot zero-fill (exactness contract); %d tiles missing", len(tiles)-got)
	}

	// Crop each extended result to its exact tile region and reassemble.
	cropped := make([]*tensor.Tensor, len(tiles))
	for ti, tl := range tiles {
		ext := exts[ti]
		cropped[ti] = fdsp.Crop(outs[ti],
			(tl.Y0-ext.Y0)/c.down, (tl.X0-ext.X0)/c.down, tl.H/c.down, tl.W/c.down)
	}
	merged := fdsp.Reassemble(cropped, c.Grid)
	out := c.Model.Back.Forward(merged, false)
	return out, InferStats{Latency: time.Since(start), WireBytes: wireOut}, nil
}

// Shutdown stops the workers.
func (c *HaloCentral) Shutdown() {
	for _, conn := range c.Conns {
		_ = conn.Send(&Message{Kind: KindShutdown})
		_ = conn.Close()
	}
}

package core

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

// buildInstrumentedRuntime mirrors buildRuntime but shares one Metrics
// bundle between the Central and every Worker, plus a Trace.
func buildInstrumentedRuntime(t *testing.T, n int) (*Central, *Metrics, *telemetry.Trace, func()) {
	t.Helper()
	cfg := models.VGGSim()
	m, err := models.Build(cfg, models.Options{Grid: fdsp.Grid{Rows: 4, Cols: 4}}, 42)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	trace := telemetry.NewTrace()
	conns := make([]Conn, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		a, b := Pipe()
		conns[i] = a
		w := NewWorker(i+1, m)
		w.Metrics = met
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Serve(context.Background(), b)
		}()
	}
	c, err := NewCentral(m, conns, 5*time.Second, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	c.SetMetrics(met)
	c.SetTrace(trace)
	return c, met, trace, func() { c.Shutdown(); wg.Wait() }
}

// TestInferRecordsMetrics runs real inferences over Pipe transports and
// checks the whole metric chain: image counters, per-node tile counters,
// latency histograms, worker-side task counts, and wire frame/byte
// accounting — all through the public registry Value/Snapshot API.
func TestInferRecordsMetrics(t *testing.T) {
	const nodes, images, tiles = 4, 3, 16
	c, met, trace, stop := buildInstrumentedRuntime(t, nodes)
	defer stop()

	rng := rand.New(rand.NewSource(2))
	for i := 0; i < images; i++ {
		x := tensor.New(1, 3, 32, 32)
		x.RandN(rng, 1)
		if _, _, err := c.Infer(x); err != nil {
			t.Fatal(err)
		}
	}

	reg := met.Registry
	mustValue := func(name string, want float64, lv ...string) {
		t.Helper()
		v, ok := reg.Value(name, lv...)
		if !ok || v != want {
			t.Fatalf("%s%v = %v (ok=%v), want %v", name, lv, v, ok, want)
		}
	}
	mustValue("adcnn_central_images_total", images)
	mustValue("adcnn_central_tiles_missed_total", 0)

	var dispatched, received, tasks float64
	for k := 0; k < nodes; k++ {
		d, _ := reg.Value("adcnn_central_tiles_dispatched_total", nodeLabel(k))
		r, _ := reg.Value("adcnn_central_tiles_received_total", nodeLabel(k))
		w, _ := reg.Value("adcnn_worker_tasks_total", nodeLabel(k+1))
		if d == 0 || r != d || w != d {
			t.Fatalf("node %d: dispatched=%v received=%v tasks=%v", k, d, r, w)
		}
		dispatched += d
		received += r
		tasks += w
	}
	if dispatched != images*tiles {
		t.Fatalf("dispatched %v tiles, want %d", dispatched, images*tiles)
	}

	if h := c.metrics.ImageLatency.Snapshot(); h.Count != images || h.Sum <= 0 {
		t.Fatalf("image latency count=%d sum=%v", h.Count, h.Sum)
	}
	if h := c.metrics.TileRoundTrip.Snapshot(); h.Count != images*tiles {
		t.Fatalf("tile roundtrip count=%d, want %d", h.Count, images*tiles)
	}
	if h := c.metrics.WorkerProcess.Snapshot(); h.Count != images*tiles {
		t.Fatalf("worker process count=%d, want %d", h.Count, images*tiles)
	}

	// Wire accounting, both sides of the Pipe: the central sent
	// images*tiles tasks and workers received all of them; results flow
	// the other way. Byte counters must cover at least the frame headers.
	mustValue("adcnn_wire_frames_total", images*tiles, "task", "sent")
	mustValue("adcnn_wire_frames_total", images*tiles, "task", "recv")
	mustValue("adcnn_wire_frames_total", images*tiles, "result", "sent")
	mustValue("adcnn_wire_frames_total", images*tiles, "result", "recv")
	if v, _ := reg.Value("adcnn_wire_bytes_total", "task", "sent"); v < images*tiles*frameOverhead {
		t.Fatalf("task bytes = %v, below framing floor", v)
	}

	// Algorithm 2's speed estimates must be published per node.
	for k := 0; k < nodes; k++ {
		if v, ok := reg.Value("adcnn_sched_speed", nodeLabel(k)); !ok || v <= 0 {
			t.Fatalf("s_%d gauge = %v (ok=%v)", k, v, ok)
		}
	}
	if v, ok := reg.Value("adcnn_sched_allocations_total"); !ok || v != images {
		t.Fatalf("allocations = %v (ok=%v), want %d", v, ok, images)
	}

	// The trace must carry per-tile spans on worker rows and one span
	// per image on the central row.
	tileSpans, imageSpans := 0, 0
	for _, ev := range trace.Events() {
		if ev.Ph != "X" {
			continue
		}
		switch {
		case strings.HasPrefix(ev.Name, "tile "):
			tileSpans++
			if ev.TID < 1 || ev.TID > nodes {
				t.Fatalf("tile span on tid %d", ev.TID)
			}
		case strings.HasPrefix(ev.Name, "image "):
			imageSpans++
		}
	}
	if tileSpans != images*tiles || imageSpans != images {
		t.Fatalf("trace spans: tiles=%d images=%d, want %d/%d",
			tileSpans, imageSpans, images*tiles, images)
	}
}

// errConn fails Recv with a non-EOF error, simulating a mid-stream
// transport failure.
type errConn struct{ err error }

func (c errConn) Send(*Message) error     { return nil }
func (c errConn) Recv() (*Message, error) { return nil, c.err }
func (c errConn) Close() error            { return nil }

// TestWorkerServeDisconnectSemantics pins satellite 1: clean EOF returns
// nil and bumps the eof counter; a mid-stream error is returned to the
// caller and bumps the error counter.
func TestWorkerServeDisconnectSemantics(t *testing.T) {
	cfg := models.VGGSim()
	m, err := models.Build(cfg, models.Options{Grid: fdsp.Grid{Rows: 4, Cols: 4}}, 42)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)

	// Clean EOF: close the central side of a pipe.
	a, b := Pipe()
	w := NewWorker(1, m)
	w.Metrics = met
	done := make(chan error, 1)
	go func() { done <- w.Serve(context.Background(), b) }()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("clean EOF must return nil, got %v", err)
	}
	if v, _ := reg.Value("adcnn_worker_recv_eof_total"); v != 1 {
		t.Fatalf("eof counter = %v, want 1", v)
	}

	// Mid-stream failure: a Conn whose Recv breaks.
	broken := errors.New("wire torn")
	if err := w.Serve(context.Background(), errConn{err: broken}); !errors.Is(err, broken) {
		t.Fatalf("mid-stream failure must be returned, got %v", err)
	}
	if v, _ := reg.Value("adcnn_worker_recv_errors_total"); v != 1 {
		t.Fatalf("error counter = %v, want 1", v)
	}
	// io.EOF through a custom Conn is still a clean disconnect.
	if err := w.Serve(context.Background(), errConn{err: io.EOF}); err != nil {
		t.Fatalf("EOF from any transport must return nil, got %v", err)
	}
	if v, _ := reg.Value("adcnn_worker_recv_eof_total"); v != 2 {
		t.Fatalf("eof counter = %v, want 2", v)
	}
}

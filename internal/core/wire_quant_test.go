package core

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/quant"
	"adcnn/internal/tensor"
)

func TestQuantTensorCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	x := tensor.New(1, 3, 5, 7)
	x.RandU(rng, -2, 3)
	mn, mx := tensor.MinMax(x.Data)
	af, err := quant.AffineFor(mn, mx)
	if err != nil {
		t.Fatal(err)
	}
	buf := AppendQuantTensor(nil, x, af)
	if len(buf) != QuantTensorWireSize(x) {
		t.Fatalf("encoded %d bytes, want %d", len(buf), QuantTensorWireSize(x))
	}
	if QuantTensorWireSize(x) >= TensorWireSize(x) {
		t.Fatal("quantized encoding must be smaller than float32")
	}
	var q QuantTile
	if err := DecodeQuantTensorInto(&q, buf); err != nil {
		t.Fatal(err)
	}
	if len(q.Shape) != 4 || q.Shape[0] != 1 || q.Shape[1] != 3 || q.Shape[2] != 5 || q.Shape[3] != 7 {
		t.Fatalf("decoded shape %v", q.Shape)
	}
	if q.Affine != af {
		t.Fatalf("decoded affine %+v, want %+v", q.Affine, af)
	}
	want := make([]uint8, x.Len())
	tensor.QuantizeAffineSlice(want, x.Data, af.InvScale(), af.Zero)
	for i := range want {
		if q.Levels[i] != want[i] {
			t.Fatalf("level %d: %d vs %d", i, q.Levels[i], want[i])
		}
	}
	// DequantizeInto recovers values within one quantization step.
	var y tensor.Tensor
	q.DequantizeInto(&y)
	if len(y.Shape) != 4 || y.Len() != x.Len() {
		t.Fatalf("dequantized shape %v", y.Shape)
	}
	for i := range x.Data {
		if d := math.Abs(float64(y.Data[i] - x.Data[i])); d > float64(af.Scale) {
			t.Fatalf("dequant %d: |%g−%g| > step %g", i, y.Data[i], x.Data[i], af.Scale)
		}
	}
	q.Release()
	if q.Levels != nil {
		t.Fatal("Release must clear Levels")
	}
}

func TestDecodeQuantTensorRejectsCorrupt(t *testing.T) {
	var q QuantTile
	cases := [][]byte{
		nil,
		{4},                                  // truncated header
		{1, 2, 0, 0, 0, 0, 0, 0, 0, 128, 10}, // scale 0
		{1, 2, 0, 0, 0, 0, 0, 128, 127, 128, 10, 20}, // scale +Inf
		{1, 2, 0, 0, 0, 0, 0, 128, 63, 128, 10},      // 1 level, want 2
	}
	for i, data := range cases {
		if err := DecodeQuantTensorInto(&q, data); err == nil {
			t.Fatalf("case %d: corrupt payload accepted", i)
		}
	}
}

// TestDistributedQuantizedMatchesLocal runs the full int8 operating mode
// end to end — quantized uplink tiles, int8 Front on the workers, int8
// Back on the Central — and pins the output against the f32 oracle. The
// divergence is bounded by accumulated quantization error; the tolerance
// is an empirical pin (~3× observed) so a regression that breaks the
// levels path (not merely perturbs rounding) fails loudly.
func TestDistributedQuantizedMatchesLocal(t *testing.T) {
	cfg := models.VGGSim()
	opt := models.Options{Grid: fdsp.Grid{Rows: 4, Cols: 4}, Int8: true}
	m, err := models.Build(cfg, opt, 42)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	wantF32 := m.Net.Forward(x, false).Clone()

	if _, err := m.QuantizeInt8(); err != nil {
		t.Fatal(err)
	}
	if !m.Int8InputOK() {
		t.Fatal("VGGSim must support the quantized uplink")
	}
	c, _, stop := buildRuntimeConns(t, m, 4, 5*time.Second)
	defer stop()
	got, st, err := c.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	if st.TilesMissed != 0 {
		t.Fatalf("missed %d tiles with a generous deadline", st.TilesMissed)
	}
	// Local int8 forward differs from the distributed run only in the
	// input affine (whole image vs per tile) — they must agree closely.
	localQ := m.Net.Forward(x, false)
	var maxLQ, maxF float64
	for i := range got.Data {
		if d := math.Abs(float64(got.Data[i] - localQ.Data[i])); d > maxLQ {
			maxLQ = d
		}
		if d := math.Abs(float64(got.Data[i] - wantF32.Data[i])); d > maxF {
			maxF = d
		}
	}
	if maxLQ > 0.05 {
		t.Fatalf("distributed int8 vs local int8 max |Δ| = %g", maxLQ)
	}
	if maxF > 0.25 {
		t.Fatalf("distributed int8 vs f32 oracle max |Δ| = %g", maxF)
	}
	if got.ArgMax() != wantF32.ArgMax() {
		t.Fatalf("int8 path changed the prediction: %d vs %d", got.ArgMax(), wantF32.ArgMax())
	}
}

// TestQuantizedTaskF32WorkerFallback sends quantized tiles to a worker
// whose model never called QuantizeInt8: it must dequantize and serve the
// f32 path, so a mixed deployment degrades gracefully instead of failing.
func TestQuantizedTaskF32WorkerFallback(t *testing.T) {
	cfg := models.VGGSim()
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}, Int8: true}
	cm, err := models.Build(cfg, opt, 42)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := models.Build(cfg, opt, 42) // same weights, f32-only worker
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cm.QuantizeInt8(); err != nil {
		t.Fatal(err)
	}

	a, b := Pipe()
	w := NewWorker(1, wm)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = w.Serve(context.Background(), b)
	}()
	c, err := NewCentral(cm, []Conn{a}, 5*time.Second, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { c.Shutdown(); wg.Wait() }()

	rng := rand.New(rand.NewSource(5))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	// Oracle: the worker's own f32 graph on the dequantized input — but
	// the only quantization is the input tile encoding, so the f32 oracle
	// on the raw input is close: Back runs int8 on the Central, hence the
	// looser bound than the pure-f32 runtime tests use.
	want := wm.Net.Forward(x, false)
	got, _, err := c.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	var maxD float64
	for i := range got.Data {
		if d := math.Abs(float64(got.Data[i] - want.Data[i])); d > maxD {
			maxD = d
		}
	}
	if maxD > 0.25 {
		t.Fatalf("fallback path diverged: max |Δ| = %g", maxD)
	}
	if got.ArgMax() != want.ArgMax() {
		t.Fatalf("fallback changed the prediction: %d vs %d", got.ArgMax(), want.ArgMax())
	}
}

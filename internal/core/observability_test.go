package core

import (
	"context"
	"encoding/json"
	"math/rand"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

// tcpRuntime wires a Central to n real TCP Conv-node servers on
// loopback and returns the Central plus a stop func.
func tcpRuntime(t *testing.T, m *models.Model, n int, tl time.Duration) (*Central, func()) {
	t.Helper()
	var wg sync.WaitGroup
	conns := make([]Conn, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		w := NewWorker(i+1, m)
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := ln.Accept()
			if err != nil {
				return
			}
			_ = w.Serve(context.Background(), NewStreamConn(c))
		}()
		dial, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = NewStreamConn(dial)
	}
	c, err := NewCentral(m, conns, tl, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return c, func() {
		c.Shutdown()
		for _, ln := range listeners {
			ln.Close()
		}
		wg.Wait()
	}
}

// TestTCPTraceMergesBothSides is the tentpole acceptance check: a real
// TCP run with two Conv workers must produce ONE Chrome trace whose
// spans from both sides of the wire — the Central's dispatch/tile/image
// spans and the Conv-side uplink/queue/compute/downlink child spans —
// all carry the same trace ID for a given image.
func TestTCPTraceMergesBothSides(t *testing.T) {
	m, err := models.Build(models.VGGSim(), models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, stop := tcpRuntime(t, m, 2, 10*time.Second)
	defer stop()
	trace := telemetry.NewTrace()
	c.SetTrace(trace)

	rng := rand.New(rand.NewSource(11))
	var stats []InferStats
	for i := 0; i < 2; i++ {
		x := tensor.New(1, 3, 32, 32)
		x.RandN(rng, 1)
		_, st, err := c.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		if st.TraceID == 0 {
			t.Fatal("InferStats must carry the trace ID")
		}
		stats = append(stats, st)
	}
	if stats[0].TraceID == stats[1].TraceID {
		t.Fatal("distinct images must get distinct trace IDs")
	}

	// Write the trace file and read it back: the artifact itself is the
	// acceptance object, not just the in-memory events.
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := trace.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := telemetry.ReadTraceFile(f)
	if err != nil {
		t.Fatalf("trace file must parse back: %v", err)
	}

	convPhases := map[string]bool{"uplink": true, "queue": true, "compute": true, "downlink": true}
	for _, st := range stats {
		id := TraceIDString(st.TraceID)
		centralSide, convSide := 0, 0
		convTIDs := map[int]bool{}
		for _, ev := range evs {
			tid, ok := ev.Args["trace_id"].(string)
			if !ok || tid != id {
				continue
			}
			if ev.TID == 0 {
				centralSide++
			}
			if ev.Cat == "conv" && convPhases[ev.Name] {
				convSide++
				convTIDs[ev.TID] = true
			}
		}
		if centralSide == 0 {
			t.Fatalf("trace %s has no Central-side spans", id)
		}
		// 4 tiles × 4 phase spans, spread over both Conv node tracks.
		if convSide != 16 {
			t.Fatalf("trace %s has %d conv-side phase spans, want 16", id, convSide)
		}
		if len(convTIDs) != 2 {
			t.Fatalf("trace %s conv spans on tracks %v, want both nodes", id, convTIDs)
		}
	}
}

// TestInferBreakdownCloses: the per-image Breakdown must cover every
// tile, keep phases non-negative, and sum each tile's phases to its
// end-to-end latency (well inside the 5% acceptance bound — exact, by
// construction).
func TestInferBreakdownCloses(t *testing.T) {
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	c, _, stop := buildRuntime(t, opt, 2, 10*time.Second)
	defer stop()
	rng := rand.New(rand.NewSource(12))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	_, st, err := c.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	if st.Breakdown == nil || len(st.Breakdown.Tiles) != 4 {
		t.Fatalf("breakdown missing or incomplete: %+v", st.Breakdown)
	}
	if st.Breakdown.TraceID != st.TraceID {
		t.Fatal("breakdown trace ID must match the image's")
	}
	for _, tb := range st.Breakdown.Tiles {
		if tb.Conv == nil {
			t.Fatalf("tile %d lacks the Conv timing record", tb.Tile)
		}
		for p, d := range tb.Phase {
			if d < 0 {
				t.Fatalf("tile %d phase %s negative: %v", tb.Tile, PhaseNames[p], d)
			}
		}
		sum, total := tb.PhaseSum(), tb.Total
		diff := sum - total
		if diff < 0 {
			diff = -diff
		}
		if total <= 0 || float64(diff)/float64(total) > 0.05 {
			t.Fatalf("tile %d phases sum %v vs total %v (>5%%)", tb.Tile, sum, total)
		}
		if tb.Total > st.Latency {
			t.Fatalf("tile %d total %v exceeds image latency %v", tb.Tile, tb.Total, st.Latency)
		}
	}
}

// TestDeadlineMissDumpsFlightRecorder: a forced T_L miss must leave a
// non-empty flight dump naming the image and the missed tiles.
func TestDeadlineMissDumpsFlightRecorder(t *testing.T) {
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	c, _, stop := buildRuntime(t, opt, 2, time.Nanosecond)
	defer stop()
	flight := telemetry.NewFlightRecorder(0)
	c.SetFlightRecorder(flight)
	rng := rand.New(rand.NewSource(13))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	_, st, err := c.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	if st.TilesMissed == 0 {
		t.Skip("scheduler beat a 1ns deadline — environment too fast to force misses")
	}
	dumps := flight.Dumps()
	if len(dumps) == 0 {
		t.Fatal("a missed deadline must trigger a flight dump")
	}
	d := dumps[len(dumps)-1]
	if d.Reason != "deadline-miss" || d.Image == 0 {
		t.Fatalf("dump must name the image and reason: %+v", d)
	}
	if len(d.Events) == 0 {
		t.Fatal("flight dump must not be empty")
	}
	misses := 0
	for _, ev := range d.Events {
		if ev.Kind == "deadline-miss" {
			if ev.Image != d.Image || ev.Tile < 0 {
				t.Fatalf("miss event must name (image, tile): %+v", ev)
			}
			misses++
		}
	}
	if misses != st.TilesMissed {
		t.Fatalf("dump records %d misses, stats say %d", misses, st.TilesMissed)
	}
}

// TestDebugSessionsEndpoint: after traffic has flowed, /debug/sessions
// must report one row per node with live offset-estimator state.
func TestDebugSessionsEndpoint(t *testing.T) {
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	c, _, stop := buildRuntime(t, opt, 2, 10*time.Second)
	defer stop()
	if got := c.DebugSessions(); len(got) != 0 {
		t.Fatalf("before first Infer the session list is empty, got %d", len(got))
	}
	rng := rand.New(rand.NewSource(14))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	if _, _, err := c.Infer(x); err != nil {
		t.Fatal(err)
	}
	infos := c.DebugSessions()
	if len(infos) != 2 {
		t.Fatalf("want 2 session rows, got %d", len(infos))
	}
	for _, s := range infos {
		if !s.Alive || s.Epochs < 1 {
			t.Fatalf("session %d should be alive in epoch ≥1: %+v", s.Node, s)
		}
		if s.OffsetSamples < 1 {
			t.Fatalf("session %d has no offset samples after an image: %+v", s.Node, s)
		}
		if s.PendingTiles != 0 {
			t.Fatalf("session %d still pending %d tiles after Infer", s.Node, s.PendingTiles)
		}
	}

	rec := httptest.NewRecorder()
	c.SessionsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/sessions", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var rows []SessionDebug
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatalf("bad JSON from /debug/sessions: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("endpoint served %d rows", len(rows))
	}
}

// TestResultEchoesTraceContext: over the live runtime, every result a
// worker returns must echo the task's trace context — checked end to
// end through the pending-table demux by verifying the breakdown's
// timing records arrived (they ride the same frame).
func TestResultEchoesTraceContext(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	m, err := models.Build(models.VGGSim(), models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(1, m)
	done := make(chan struct{})
	go func() { defer close(done); _ = w.Serve(context.Background(), b) }()

	x := tensor.New(1, 3, 32, 32)
	x.RandN(rand.New(rand.NewSource(15)), 1)
	tls := m.Opt.Grid.Layout(32, 32)
	task := &Message{Kind: KindTask, ImageID: 5, TileID: 2, NodeID: 0,
		TraceID: 0xabc, SpanID: 0xdef, Payload: EncodeTensor(fdsp.ExtractTile(x, tls[2]))}
	if err := a.Send(task); err != nil {
		t.Fatal(err)
	}
	res, err := a.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindResult || res.ImageID != 5 || res.TileID != 2 {
		t.Fatalf("bad result %+v", res)
	}
	if res.TraceID != 0xabc || res.SpanID != 0xdef {
		t.Fatalf("result must echo trace context, got trace=%x span=%x", res.TraceID, res.SpanID)
	}
	tm := res.Timing
	if tm == nil {
		t.Fatal("result must carry a timing record")
	}
	if !(tm.RecvNs <= tm.DecodeNs && tm.DecodeNs <= tm.ComputeStartNs &&
		tm.ComputeStartNs <= tm.ComputeEndNs && tm.ComputeEndNs <= tm.EncodeNs &&
		tm.EncodeNs <= tm.SendNs) {
		t.Fatalf("timing record not monotone: %+v", tm)
	}
	a.Send(&Message{Kind: KindShutdown})
	a.Close()
	<-done
}

package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/tensor"
)

// TestRuntimeSurvivesWorkerDeath kills one Conv node mid-stream; the
// Central node must mark it dead, re-route its tiles to the survivors,
// and keep producing correct outputs ("this scheme naturally handles the
// Conv node failure", Section 6.3).
func TestRuntimeSurvivesWorkerDeath(t *testing.T) {
	cfg := models.VGGSim()
	opt := models.Options{Grid: fdsp.Grid{Rows: 4, Cols: 4}}
	m, err := models.Build(cfg, opt, 42)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 3
	conns := make([]Conn, workers)
	workerSides := make([]Conn, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		a, b := Pipe()
		conns[i] = a
		workerSides[i] = b
		w := NewWorker(i+1, m)
		wg.Add(1)
		go func() { defer wg.Done(); _ = w.Serve(context.Background(), b) }()
	}
	c, err := NewCentral(m, conns, 5*time.Second, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { c.Shutdown(); wg.Wait() }()

	rng := rand.New(rand.NewSource(9))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	want := m.Net.Forward(x, false)

	// Healthy inference first.
	out, st, err := c.Infer(x)
	if err != nil || !out.Equal(want, 1e-4) {
		t.Fatalf("healthy inference failed: %v", err)
	}
	if st.Alloc[1] == 0 {
		t.Fatal("node 2 should have had work before dying")
	}

	// Kill node 2 by closing its connection.
	conns[1].Close()

	// The image right after the death may lose tiles to the zero-fill
	// deadline (the node died holding work); after that, allocation must
	// avoid the dead node entirely and outputs must be exact again.
	deadlineMisses := 0
	for i := 0; i < 4; i++ {
		out, st, err := c.Infer(x)
		if err != nil {
			t.Fatalf("inference %d after death: %v", i, err)
		}
		if st.Alloc[1] != 0 && i > 0 {
			t.Fatalf("inference %d still assigned tiles to the dead node: %v", i, st.Alloc)
		}
		if st.TilesMissed > 0 {
			deadlineMisses++
			continue
		}
		if !out.Equal(want, 1e-4) {
			t.Fatalf("inference %d after death diverged", i)
		}
	}
	if deadlineMisses > 1 {
		t.Fatalf("only the transition image may miss tiles, got %d misses", deadlineMisses)
	}
}

// TestRuntimeAllWorkersDead verifies a clean error when no node is left.
func TestRuntimeAllWorkersDead(t *testing.T) {
	cfg := models.VGGSim()
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	m, err := models.Build(cfg, opt, 42)
	if err != nil {
		t.Fatal(err)
	}
	a, b := Pipe()
	_ = b
	c, err := NewCentral(m, []Conn{a}, 100*time.Millisecond, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	x := tensor.New(1, 3, 32, 32)
	if _, _, err := c.Infer(x); err == nil {
		t.Fatal("inference with every node dead must error")
	}
}

package core

import (
	"context"

	"adcnn/internal/tensor"
)

// Pipeline is the live counterpart of the simulator's StreamDepth
// admission control (stream.go): it bounds the number of in-flight
// images so an open-loop stream overlaps tile transfer, Conv-node
// compute, and Central back-layers across consecutive images (paper
// Figure 9) without growing its queue — and its per-image latency —
// without limit.
type Pipeline struct {
	C     *Central
	depth int
	sem   chan struct{}
}

// NewPipeline wraps c with bounded-depth admission. depth ≤ 0 uses
// StreamDepth, the same window the simulator models.
func NewPipeline(c *Central, depth int) *Pipeline {
	if depth <= 0 {
		depth = StreamDepth
	}
	return &Pipeline{C: c, depth: depth, sem: make(chan struct{}, depth)}
}

// Depth returns the admission bound.
func (p *Pipeline) Depth() int { return p.depth }

// InFlight returns the number of images currently holding an admission
// slot (dispatched, Wait not yet finished).
func (p *Pipeline) InFlight() int { return len(p.sem) }

// Submit blocks until an admission slot frees, then dispatches x's
// tiles and returns the in-flight handle. The slot is released when the
// handle's Wait finishes, so at most Depth images overlap. Every
// successful Submit must be paired with exactly one Wait.
func (p *Pipeline) Submit(ctx context.Context, x *tensor.Tensor) (*Inflight, error) {
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.C.ctx.Done():
		return nil, p.C.ctx.Err()
	}
	if m := p.C.metrics; m != nil {
		m.PipelineDepth.Set(float64(len(p.sem)))
	}
	h, err := p.C.InferAsync(ctx, x)
	if err != nil {
		<-p.sem
		return nil, err
	}
	h.release = func() {
		<-p.sem
		if m := p.C.metrics; m != nil {
			m.PipelineDepth.Set(float64(len(p.sem)))
		}
	}
	return h, nil
}

// PipelineResult is one streamed inference's outcome, delivered in
// submission order.
type PipelineResult struct {
	Index int
	Out   *tensor.Tensor
	Stats InferStats
	Err   error
}

// Run streams every input through the pipeline: a feeder submits images
// as admission slots free up while the collector Waits on them in
// submission order, so image i's back layers run while image i+1's
// tiles are already on the Conv nodes. The result channel closes after
// the last input's result. A submit failure is reported as that index's
// result; the stream keeps going so one bad image doesn't stall the
// rest (cancel ctx to abort everything).
func (p *Pipeline) Run(ctx context.Context, inputs <-chan *tensor.Tensor) <-chan PipelineResult {
	type slot struct {
		h   *Inflight
		err error
	}
	handles := make(chan slot, p.depth)
	out := make(chan PipelineResult)
	go func() {
		defer close(handles)
		for x := range inputs {
			h, err := p.Submit(ctx, x)
			handles <- slot{h, err}
			if err != nil && ctx.Err() != nil {
				return
			}
		}
	}()
	go func() {
		defer close(out)
		i := 0
		for s := range handles {
			r := PipelineResult{Index: i, Err: s.err}
			if s.err == nil {
				r.Out, r.Stats, r.Err = s.h.Wait()
			}
			out <- r
			i++
		}
	}()
	return out
}

package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"adcnn/internal/compress"
	"adcnn/internal/models"
	"adcnn/internal/quant"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

// Worker is a Conv node: it stores the separable layer blocks' weights,
// processes input tiles, applies the communication-reduction boundary,
// and streams intermediate results back (paper Figure 8, right side).
type Worker struct {
	ID    int
	Model *models.Model
	// Delay adds artificial per-tile latency — the live-runtime
	// equivalent of throttling a device with CPUlimit, used to exercise
	// the adaptive scheduler against a genuinely slow node. Set before
	// Serve starts; for mid-run changes use SetDelay.
	Delay time.Duration
	// Metrics, when set, records task counts, per-tile process time,
	// wire traffic, and disconnect causes.
	Metrics *Metrics

	// dynDelay overrides Delay once SetDelay has been called (value is
	// delay+1 so an explicit SetDelay(0) is distinguishable from unset).
	dynDelay atomic.Int64
	// clockSkew offsets every timestamp this worker stamps into timing
	// records — a fault-injection hook modelling a Conv node whose
	// monotonic clock disagrees with the Central's (the offset estimator
	// must absorb it; see the chaos harness's clock-skew drill).
	clockSkew atomic.Int64
}

// SetClockSkew shifts the worker's timing-record clock by d — race-safe,
// effective from the next timestamp. Zero restores honest stamps.
func (w *Worker) SetClockSkew(d time.Duration) {
	w.clockSkew.Store(int64(d))
}

// now is monoNow plus the injected clock skew; every ConvTiming
// timestamp the worker produces comes through here.
func (w *Worker) now() int64 {
	return monoNow() + w.clockSkew.Load()
}

// SetDelay changes the per-tile delay while Serve is running — the
// race-safe path for injecting a mid-run slowdown (gray-failure and SLO
// experiments).
func (w *Worker) SetDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	w.dynDelay.Store(int64(d) + 1)
}

// tileDelay returns the delay in effect for the next task.
func (w *Worker) tileDelay() time.Duration {
	if v := w.dynDelay.Load(); v > 0 {
		return time.Duration(v - 1)
	}
	return w.Delay
}

// NewWorker creates a Conv-node worker around a model instance (the
// worker uses only Front and Boundary).
func NewWorker(id int, m *models.Model) *Worker {
	return &Worker{ID: id, Model: m}
}

// Serve processes tasks from conn until the context is cancelled, a
// shutdown message arrives, or the peer disconnects cleanly (all return
// nil). A mid-stream transport failure is returned to the caller — and
// counted separately from clean disconnects — so operators can tell a
// Central that hung up from a network that broke.
//
// Serve is the single-session convenience wrapper: it runs one
// NodeServer session over conn. A node serving several Centrals at once
// shares one NodeServer across its accept loop instead.
func (w *Worker) Serve(ctx context.Context, conn Conn) error {
	return NewNodeServer(w, 0).ServeConn(ctx, conn)
}

// DefaultSessionQueue is the per-session bounded compute queue depth: a
// session's recv loop decodes at most this many tasks ahead of the
// compute loop before TCP backpressure reaches the Central.
const DefaultSessionQueue = 4

// NodeServer is the multi-session serving state of one Conv node: many
// Central replicas hold concurrent connections to the same node, each
// with an independent session (its own receive/compute goroutine pair,
// timing buffers and bounded compute queue), while the node's one
// simulated device — the Delay pacer — is shared across all of them, so
// two Centrals splitting a node see its real capacity split between
// them rather than doubled.
type NodeServer struct {
	w     *Worker
	queue int

	mu       sync.Mutex
	nextFree time.Time // shared device pacer across sessions
	seq      uint64
	sessions map[uint64]*workerSession
}

// NewNodeServer wraps w for concurrent multi-Central serving. queue ≤ 0
// uses DefaultSessionQueue.
func NewNodeServer(w *Worker, queue int) *NodeServer {
	if queue <= 0 {
		queue = DefaultSessionQueue
	}
	return &NodeServer{w: w, queue: queue, sessions: make(map[uint64]*workerSession)}
}

// Worker returns the wrapped worker.
func (ns *NodeServer) Worker() *Worker { return ns.w }

// ActiveSessions reports how many Central sessions are attached.
func (ns *NodeServer) ActiveSessions() int {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return len(ns.sessions)
}

// WorkerSessionDebug is one attached session's state snapshot, served as
// JSON at /debug/worker on the Conv daemon's metrics mux.
type WorkerSessionDebug struct {
	Session    uint64  `json:"session"`
	AgeSeconds float64 `json:"age_seconds"`
	Tiles      uint64  `json:"tiles"`
	QueueDepth int     `json:"queue_depth"`
}

// Sessions snapshots every attached session, oldest first.
func (ns *NodeServer) Sessions() []WorkerSessionDebug {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	out := make([]WorkerSessionDebug, 0, len(ns.sessions))
	for _, s := range ns.sessions {
		out = append(out, WorkerSessionDebug{
			Session:    s.id,
			AgeSeconds: time.Since(s.started).Seconds(),
			Tiles:      s.tilesDone.Load(),
			QueueDepth: len(s.tasks),
		})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Session < out[j-1].Session; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// pace charges the shared device pacer for one task and sleeps until the
// device frees up. Back-to-back tasks — from any session — chain off the
// previous release time, so the node's simulated capacity is one
// resource no matter how many Centrals are attached (see the Delay
// comment in the compute loop for why a plain sleep would be wrong).
func (ns *NodeServer) pace(ctx context.Context, delay time.Duration) bool {
	now := time.Now()
	ns.mu.Lock()
	if ns.nextFree.Before(now) {
		ns.nextFree = now
	}
	ns.nextFree = ns.nextFree.Add(delay)
	rem := time.Until(ns.nextFree)
	ns.mu.Unlock()
	if rem <= 0 {
		return true
	}
	select {
	case <-time.After(rem):
		return true
	case <-ctx.Done():
		return false
	}
}

// workerTask is one decoded tile task queued between a session's recv
// and compute loops. Tasks are pooled: the decoded tensor (or quantized
// levels) ride along so decode can run ahead of compute without
// reallocating per tile.
type workerTask struct {
	img, tile       uint32
	traceID, spanID uint64
	quantized       bool
	probe           bool   // link probe: echo the payload, skip pace/compute
	echo            []byte // probe payload to return verbatim (reused capacity)
	x               *tensor.Tensor
	qt              *QuantTile
	tm              ConvTiming
	start           time.Time
}

var workerTaskPool = sync.Pool{New: func() any {
	return &workerTask{x: new(tensor.Tensor), qt: new(QuantTile)}
}}

// workerSession is one Central's connection to the node: a recv loop
// (decode into the bounded task queue) and a compute loop (pace,
// compute, encode, send) with per-session scratch, so concurrent
// sessions never share mutable state beyond the device pacer.
type workerSession struct {
	ns      *NodeServer
	id      uint64
	conn    Conn
	tasks   chan *workerTask
	dead    chan struct{} // closed when the compute loop fails
	started time.Time

	tilesDone atomic.Uint64
	taskCtr   *telemetry.Counter // nil disables
}

// ServeConn runs one Central session over conn until the context is
// cancelled, a shutdown message arrives, or the peer disconnects
// cleanly (all return nil); a mid-stream transport failure is returned.
// Safe for concurrent use: each call is an independent session.
func (ns *NodeServer) ServeConn(ctx context.Context, conn Conn) error {
	if ctx == nil {
		ctx = context.Background()
	}
	w := ns.w
	met := w.Metrics
	if met != nil {
		conn = InstrumentConn(conn, met.Wire)
	}
	s := &workerSession{
		ns: ns, conn: conn,
		tasks:   make(chan *workerTask, ns.queue),
		dead:    make(chan struct{}),
		started: time.Now(),
	}
	if met != nil {
		s.taskCtr = met.WorkerTasks.With(nodeLabel(w.ID))
	}
	ns.mu.Lock()
	ns.seq++
	s.id = ns.seq
	ns.sessions[s.id] = s
	ns.mu.Unlock()
	defer func() {
		ns.mu.Lock()
		delete(ns.sessions, s.id)
		ns.mu.Unlock()
	}()

	// Cancellation closes the connection, which unblocks Recv; the stop
	// channel reaps the watchdog on a normal return.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			_ = conn.Close()
		case <-stop:
		}
	}()

	compErr := make(chan error, 1)
	go func() { compErr <- s.computeLoop(ctx) }()

	rerr := s.recvLoop(ctx)
	close(s.tasks)
	cerr := <-compErr
	// A compute-loop failure may leave undone tasks in the queue; send
	// their pooled scratch home.
	for t := range s.tasks {
		putWorkerTask(t)
	}
	if cerr != nil {
		return cerr
	}
	return rerr
}

// putWorkerTask returns a task's scratch to the pool.
func putWorkerTask(t *workerTask) {
	t.qt.Release()
	workerTaskPool.Put(t)
}

// recvLoop reads task frames off the connection, decodes each into a
// pooled task, and queues it for the compute loop. It returns nil on a
// clean end (EOF, shutdown message, cancellation, or a compute-loop
// failure that already owns the error) and the transport error
// otherwise.
func (s *workerSession) recvLoop(ctx context.Context) error {
	w := s.ns.w
	met := w.Metrics
	for {
		m, err := s.conn.Recv()
		if err != nil {
			select {
			case <-s.dead:
				// The compute loop failed and closed the connection to
				// unblock us; its error is the one that matters.
				return nil
			default:
			}
			if errors.Is(err, io.EOF) || ctx.Err() != nil {
				if met != nil {
					met.WorkerRecvEOF.Inc()
				}
				return nil // peer closed cleanly or we were cancelled
			}
			if met != nil {
				met.WorkerRecvErrors.Inc()
			}
			return fmt.Errorf("core: worker %d: recv: %w", w.ID, err)
		}
		switch m.Kind {
		case KindShutdown:
			return nil
		case KindTask:
			t := workerTaskPool.Get().(*workerTask)
			t.start = time.Now()
			t.probe = false
			t.tm = ConvTiming{RecvNs: w.now()}
			t.img, t.tile = m.ImageID, m.TileID
			t.traceID, t.spanID = m.TraceID, m.SpanID
			t.quantized = m.Quantized
			if t.quantized {
				err = DecodeQuantTensorInto(t.qt, m.Payload)
			} else {
				err = DecodeTensorInto(t.x, m.Payload)
			}
			m.ReleasePayload()
			if err != nil {
				putWorkerTask(t)
				return fmt.Errorf("core: worker %d: %w", w.ID, err)
			}
			t.tm.DecodeNs = w.now()
			select {
			case s.tasks <- t:
			case <-s.dead:
				putWorkerTask(t)
				return nil
			case <-ctx.Done():
				putWorkerTask(t)
				return nil
			}
		case KindProbe:
			// A probe rides the same bounded task queue as tiles (the
			// compute loop owns conn.Send, and queue wait cancels out of
			// the RTT estimate), but skips decode, pacing, and compute.
			t := workerTaskPool.Get().(*workerTask)
			t.start = time.Now()
			t.probe = true
			t.quantized = false
			t.tm = ConvTiming{RecvNs: w.now()}
			t.img, t.tile = m.ImageID, m.TileID
			t.traceID, t.spanID = m.TraceID, m.SpanID
			t.echo = append(t.echo[:0], m.Payload...)
			m.ReleasePayload()
			select {
			case s.tasks <- t:
			case <-s.dead:
				putWorkerTask(t)
				return nil
			case <-ctx.Done():
				putWorkerTask(t)
				return nil
			}
		default:
			return fmt.Errorf("core: worker %d: unexpected message kind %d", w.ID, m.Kind)
		}
	}
}

// computeLoop drains the task queue: pace the shared device, run
// Front + Boundary, encode, send the result. Results leave in task
// order, preserving the single-session wire contract. Per-session
// encode scratch is reused across tiles; the result message is only
// borrowed by Send.
func (s *workerSession) computeLoop(ctx context.Context) error {
	w := s.ns.w
	met := w.Metrics
	res := new(Message)
	var encBuf []byte
	defer func() { tensor.PutBytes(encBuf) }()
	for t := range s.tasks {
		if t.probe {
			// Echo the probe without charging the device pacer: RTT must
			// measure the link, not the simulated compute rate. Only the
			// receive/send stamps matter to the estimator; the rest of the
			// timing record stays zero.
			t.tm.SendNs = w.now()
			*res = Message{
				Kind: KindProbe, ImageID: t.img, TileID: t.tile,
				NodeID: uint32(w.ID), Payload: t.echo,
				TraceID: t.traceID, SpanID: t.spanID, Timing: &t.tm,
			}
			err := s.conn.Send(res)
			putWorkerTask(t)
			if err != nil {
				if ctx.Err() != nil {
					return nil
				}
				if met != nil {
					met.WorkerSendErrors.Inc()
				}
				return s.fail(fmt.Errorf("core: worker %d: probe send: %w", w.ID, err))
			}
			continue
		}
		// Delay models a device that serves tiles at a fixed rate: each
		// task occupies the device for Delay of wall-clock time, and
		// back-to-back tasks — across every attached session — chain off
		// the previous release time rather than off this goroutine's
		// (scheduler-jittered) wake-up. A plain sleep-per-task would model
		// a device that speeds up when more Centrals attach, which no real
		// device does. The wait sits between decode and compute, so it
		// shows up in the timing record as queue time, like a busy real
		// device — and so does any wait in the bounded task queue itself.
		if delay := w.tileDelay(); delay > 0 {
			if !s.ns.pace(ctx, delay) {
				putWorkerTask(t)
				return nil
			}
		}
		if ctx.Err() != nil {
			putWorkerTask(t)
			return nil
		}
		t.tm.ComputeStartNs = w.now()
		var out []byte
		var compressed, quantized bool
		var err error
		if t.quantized {
			out, compressed, quantized, err = w.computeEncodeLevels(t.qt, t.x, &t.tm, encBuf)
		} else {
			out, compressed, quantized, err = w.computeEncode(t.x, &t.tm, encBuf)
		}
		if err != nil {
			putWorkerTask(t)
			return s.fail(fmt.Errorf("core: worker %d: %w", w.ID, err))
		}
		encBuf = out
		s.tilesDone.Add(1)
		if met != nil {
			s.taskCtr.Inc()
			met.WorkerProcess.ObserveDuration(time.Since(t.start).Nanoseconds())
		}
		t.tm.SendNs = w.now()
		*res = Message{
			Kind: KindResult, ImageID: t.img, TileID: t.tile,
			NodeID: uint32(w.ID), Compressed: compressed, Quantized: quantized,
			Payload: out,
			TraceID: t.traceID, SpanID: t.spanID, Timing: &t.tm,
		}
		err = s.conn.Send(res)
		putWorkerTask(t)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if met != nil {
				met.WorkerSendErrors.Inc()
			}
			return s.fail(fmt.Errorf("core: worker %d: send: %w", w.ID, err))
		}
	}
	return nil
}

// fail marks the session dead and closes the connection so a recv loop
// blocked in Recv (or on the full task queue) unblocks and defers to
// this error.
func (s *workerSession) fail(err error) error {
	close(s.dead)
	_ = s.conn.Close()
	return err
}

// computeEncode runs one decoded tile through Front + Boundary and
// encodes the result into buf (a pooled scratch buffer the caller reuses
// across tiles; too small and it is swapped for a bigger pooled one),
// stamping the compute-done and encode-done marks into the timing
// record. The returned slice is the (possibly replaced) buffer — the
// caller must retain it as the next call's buf. The two flags report
// how the payload is encoded: boundary-codec compressed, or quantized
// uint8 levels (mutually exclusive).
func (w *Worker) computeEncode(x *tensor.Tensor, tm *ConvTiming, buf []byte) ([]byte, bool, bool, error) {
	return w.boundaryEncode(w.Model.Front.Forward(x, false), tm, buf)
}

// computeEncodeLevels runs one quantized tile. When the model's front
// opens with an int8-enabled plain convolution, the decoded levels feed
// its quantized GEMM directly — the no-dequant fast path of the int8
// operating mode. Otherwise (residual-entry front, or a worker that
// never called QuantizeInt8) the tile is dequantized into x and takes
// the ordinary f32 path, so a mixed deployment still computes correctly.
func (w *Worker) computeEncodeLevels(q *QuantTile, x *tensor.Tensor, tm *ConvTiming, buf []byte) ([]byte, bool, bool, error) {
	if len(q.Shape) == 4 && q.Shape[0] == 1 {
		if y, ok := w.Model.ForwardFrontLevels(q.Levels, q.Shape[1], q.Shape[2], q.Shape[3], q.Affine); ok {
			return w.boundaryEncode(y, tm, buf)
		}
	}
	q.DequantizeInto(x)
	return w.computeEncode(x, tm, buf)
}

// boundaryEncode applies the boundary ops to a Front output and encodes
// the result into buf (pooled, reused across tiles — see computeEncode).
// Encoding preference: the boundary codec when the model clips and
// quantizes the boundary; otherwise, in the int8 operating mode, the
// result ships as uint8 affine levels (levels-native downlink — Central
// dequantizes in one fused pass, and the frame is 4× smaller than
// float32); float32 only as the fallback for value ranges that defy a
// finite affine (NaN/Inf activations).
func (w *Worker) boundaryEncode(y *tensor.Tensor, tm *ConvTiming, buf []byte) ([]byte, bool, bool, error) {
	opt := w.Model.Opt
	clipped := opt.Clipped()
	if clipped {
		// The boundary's clipped ReLU runs on the Conv node so the result
		// is sparse before encoding.
		y = w.Model.Boundary.Layers[0].Forward(y, false)
	}
	tm.ComputeEndNs = w.now()
	if clipped && opt.QuantBits > 0 {
		p := compress.NewPipeline(opt.QuantBits, opt.ClipHi-opt.ClipLo)
		// Pre-size to the worst case so the fused encoder never grows the
		// buffer mid-scan; at steady state the same buffer serves every tile.
		if n := p.MaxEncodedSize(y); cap(buf) < n {
			tensor.PutBytes(buf)
			buf = tensor.GetBytes(n)
		}
		out, err := p.EncodeInto(buf[:0], y)
		tm.EncodeNs = w.now()
		if err != nil {
			return buf[:0], true, false, err
		}
		return out, true, false, nil
	}
	if opt.Int8 {
		mn, mx := tensor.MinMax(y.Data)
		if af, aerr := quant.AffineFor(mn, mx); aerr == nil {
			if n := QuantTensorWireSize(y); cap(buf) < n {
				tensor.PutBytes(buf)
				buf = tensor.GetBytes(n)
			}
			out := AppendQuantTensor(buf[:0], y, af)
			tm.EncodeNs = w.now()
			return out, false, true, nil
		}
	}
	if n := TensorWireSize(y); cap(buf) < n {
		tensor.PutBytes(buf)
		buf = tensor.GetBytes(n)
	}
	out := AppendTensor(buf[:0], y)
	tm.EncodeNs = w.now()
	return out, false, false, nil
}

package core

import (
	"testing"
	"time"
)

// TestLinkStateTracksBandwidthCollapse pins the acceptance behaviour the
// chaos bandwidth drill relies on: after a collapse the seconds-per-byte
// EWMA with attack α must land within 25% of the throttled rate in 3
// samples, where a bytes-per-second EWMA would still be orders of
// magnitude high.
func TestLinkStateTracksBandwidthCollapse(t *testing.T) {
	var l linkState
	const tile = 1 << 20
	for i := 0; i < 10; i++ {
		l.observe(tile, tile, int64(time.Millisecond), int64(time.Millisecond))
	}
	up, down := l.rates()
	healthy := float64(tile) / 1e-3
	for dir, v := range []float64{up, down} {
		if v < 0.75*healthy || v > 1.25*healthy {
			t.Fatalf("healthy estimate[%d] %.0f B/s, want ~%.0f", dir, v, healthy)
		}
	}

	// Collapse: the same tile now takes 10s → ~105 KB/s true rate.
	for i := 0; i < 3; i++ {
		l.observe(tile, 0, int64(10*time.Second), 0)
	}
	up, _ = l.rates()
	target := float64(tile) / 10
	if up < 0.75*target || up > 1.25*target {
		t.Fatalf("collapsed uplink estimate %.0f B/s, want within 25%% of %.0f", up, target)
	}

	// Recovery decays more slowly than collapse attacks, but must still
	// converge: a run of healthy samples brings the estimate back.
	for i := 0; i < 50; i++ {
		l.observe(tile, 0, int64(time.Millisecond), 0)
	}
	up, _ = l.rates()
	if up < 0.75*healthy {
		t.Fatalf("post-heal estimate %.0f B/s stuck low, want ~%.0f", up, healthy)
	}
}

func TestLinkStateMinSamplesAndReset(t *testing.T) {
	var l linkState
	for i := 0; i < linkMinSamples-1; i++ {
		l.observe(1024, 1024, int64(time.Millisecond), int64(time.Millisecond))
	}
	if up, down := l.rates(); up != 0 || down != 0 {
		t.Fatalf("rates before %d samples = (%f, %f), want unknown", linkMinSamples, up, down)
	}
	l.observe(1024, 1024, int64(time.Millisecond), int64(time.Millisecond))
	if up, down := l.rates(); up <= 0 || down <= 0 {
		t.Fatalf("converged estimate missing: (%f, %f)", up, down)
	}
	l.reset()
	if up, down := l.rates(); up != 0 || down != 0 {
		t.Fatal("reset must clear the estimates")
	}
}

func TestLinkStateDurationFloorAndProbes(t *testing.T) {
	var l linkState
	for i := 0; i < linkMinSamples; i++ {
		l.observe(1<<20, 0, 1, 0) // 1ns transfer: clamped by the floor, not ∞
	}
	up, _ := l.rates()
	ceil := float64(1<<20) / linkMinDur.Seconds()
	if up <= 0 || up > ceil+1 {
		t.Fatalf("floored estimate %.0f B/s, want in (0, %.0f]", up, ceil)
	}
	l.observeProbe(int64(200 * time.Microsecond))
	l.observeProbe(int64(250 * time.Microsecond))
	if _, _, _, probes := l.snapshot(); probes != 2 {
		t.Fatalf("probe count = %d, want 2", probes)
	}
}

package core

import (
	"testing"
	"time"
)

func TestStreamThroughputExceedsInverseLatency(t *testing.T) {
	// With pipelining, throughput is bounded by the slowest stage, not
	// the whole per-image latency, so it must beat 1/latency.
	s := vggSim(t, 8, nil)
	probe := s.RunImage()
	latency := probe.Latency

	s2 := vggSim(t, 8, nil)
	res := s2.RunStream(50, nil)
	if res.Images != 50 || res.Throughput <= 0 {
		t.Fatalf("bad stream result %+v", res)
	}
	unpipelined := 1.0 / latency.Seconds()
	if res.Throughput <= unpipelined {
		t.Fatalf("pipelined throughput %.2f img/s must beat un-pipelined %.2f img/s",
			res.Throughput, unpipelined)
	}
	// Per-image latency under streaming cannot be below the isolated one.
	if res.AvgLatency < latency/2 {
		t.Fatalf("stream latency %v implausibly below isolated %v", res.AvgLatency, latency)
	}
}

func TestStreamMakespanMonotone(t *testing.T) {
	run := func(n int) time.Duration {
		s := vggSim(t, 4, nil)
		return s.RunStream(n, nil).Makespan
	}
	if !(run(5) < run(10) && run(10) < run(20)) {
		t.Fatal("makespan must grow with the number of images")
	}
}

func TestStreamZeroImages(t *testing.T) {
	s := vggSim(t, 2, nil)
	if res := s.RunStream(0, nil); res.Throughput != 0 || res.Images != 0 {
		t.Fatalf("zero-image stream: %+v", res)
	}
}

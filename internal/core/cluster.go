package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"adcnn/internal/sched"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

// Cluster runs N Central replicas over one shared Conv pool as a single
// control plane. Each replica is a full Central — its own sessions to
// every node (the Conv side serves each an independent session, see
// NodeServer), its own Algorithm 2 statistics and pending table — and
// the cluster supplies the two things no replica can do alone:
//
//   - capacity partitioning: a rebalance loop measures each replica's
//     demand (queued + in-flight images) and installs demand-weighted
//     per-node capacity shares (sched.DemandShares) via SetShare, so
//     the replicas' independent Algorithm 3 runs jointly respect each
//     node's real capacity instead of all assuming they own it;
//
//   - work stealing: submissions enter per-replica queues, and an idle
//     replica whose queue is dry steals the head of the deepest queue
//     once it exceeds StealThreshold — covering the imbalance that
//     builds *between* rebalances, which share scaling alone cannot.
//
// Shutdown drains: everything queued or in flight completes and is
// delivered before the replicas are torn down.
type Cluster struct {
	replicas []*Central
	pipes    []*Pipeline
	opts     ClusterOptions

	qmu      sync.Mutex
	cond     *sync.Cond
	queues   [][]*clusterItem
	closed   bool
	entitled []float64 // scalar per-replica entitlement from the last rebalance

	admit []chan struct{} // per-origin admission tokens, cap QueueCap
	slots []chan struct{} // per-replica execution slots, cap pipeline depth

	steals []atomic.Int64

	dispWG sync.WaitGroup // dispatcher goroutines
	waitWG sync.WaitGroup // outstanding Wait deliverers
	ctx    context.Context
	cancel context.CancelFunc

	met *clusterMetrics

	lastShares [][]float64 // audit: previous rebalance's shares
}

// ClusterOptions configures NewCluster. Zero values take defaults.
type ClusterOptions struct {
	// Replicas is the number of Central replicas (default 2).
	Replicas int
	// QueueCap bounds each replica's submission queue (default 64):
	// Submit blocks once the origin replica has QueueCap undispatched
	// images.
	QueueCap int
	// StealThreshold is the queue depth at which an idle replica starts
	// stealing from a victim (default 1). A dispatcher only reaches the
	// steal check when it has nothing of its own to run, so taking even
	// a single queued image is a pure latency win; raise the threshold
	// to keep short bursts on their origin replica (warmer statistics)
	// at the cost of them waiting out its in-service image.
	StealThreshold int
	// Depth is each replica's pipeline admission depth (default
	// StreamDepth).
	Depth int
	// RebalanceEvery is the share-rebalance interval (default 250ms);
	// negative disables rebalancing (static fair shares forever).
	RebalanceEvery time.Duration
	// Registry, when set, receives the cluster-level metric families
	// (queue depth, steals, shares, per-replica images and latency).
	Registry *telemetry.Registry
	// Audit, when set, records every material share rebalance as a
	// scheduler decision.
	Audit *sched.Audit
}

func (o *ClusterOptions) defaults() {
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.StealThreshold <= 0 {
		o.StealThreshold = 1
	}
	if o.RebalanceEvery == 0 {
		o.RebalanceEvery = 250 * time.Millisecond
	}
}

// ClusterResult is one submitted image's outcome.
type ClusterResult struct {
	Out   *tensor.Tensor
	Stats InferStats
	// Origin is the replica the image was submitted to; Replica the one
	// that executed it (different after a steal).
	Origin  int
	Replica int
	Err     error
}

// clusterItem is one queued submission.
type clusterItem struct {
	x      *tensor.Tensor
	origin int
	ch     chan ClusterResult
}

// clusterMetrics are the cluster-level families.
type clusterMetrics struct {
	queueDepth *telemetry.GaugeVec   // replica
	steals     *telemetry.CounterVec // replica (executing side)
	share      *telemetry.GaugeVec   // replica, node
	images     *telemetry.CounterVec // replica (executing side)
	latency    *telemetry.HistogramVec
}

func newClusterMetrics(reg *telemetry.Registry) *clusterMetrics {
	if reg == nil {
		return nil
	}
	return &clusterMetrics{
		queueDepth: reg.GaugeVec("adcnn_cluster_queue_depth", "Undispatched images queued per replica.", "replica"),
		steals:     reg.CounterVec("adcnn_cluster_steals_total", "Queued images stolen by each replica from another replica's queue.", "replica"),
		share:      reg.GaugeVec("adcnn_cluster_share", "Fraction of each Conv node's capacity assigned to each replica.", "replica", "node"),
		images:     reg.CounterVec("adcnn_cluster_images_total", "Images executed per replica (including stolen ones).", "replica"),
		latency:    reg.HistogramVec("adcnn_cluster_image_latency_seconds", "Submit-to-result latency per executing replica.", nil, "replica"),
	}
}

// NewCluster builds opts.Replicas Centrals via build (r is the replica
// index; each call must return a Central with its own connections to
// the shared pool) and starts the dispatchers and the rebalance loop.
// Static fair shares are installed up front.
func NewCluster(build func(r int) (*Central, error), opts ClusterOptions) (*Cluster, error) {
	opts.defaults()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Cluster{
		replicas: make([]*Central, opts.Replicas),
		pipes:    make([]*Pipeline, opts.Replicas),
		opts:     opts,
		queues:   make([][]*clusterItem, opts.Replicas),
		admit:    make([]chan struct{}, opts.Replicas),
		slots:    make([]chan struct{}, opts.Replicas),
		steals:   make([]atomic.Int64, opts.Replicas),
		entitled: make([]float64, opts.Replicas),
		ctx:      ctx,
		cancel:   cancel,
		met:      newClusterMetrics(opts.Registry),
	}
	c.cond = sync.NewCond(&c.qmu)
	for r := 0; r < opts.Replicas; r++ {
		cen, err := build(r)
		if err != nil {
			cancel()
			for _, prev := range c.replicas {
				if prev != nil {
					prev.Shutdown()
				}
			}
			return nil, fmt.Errorf("core: cluster replica %d: %w", r, err)
		}
		c.replicas[r] = cen
		c.pipes[r] = NewPipeline(cen, opts.Depth)
		c.admit[r] = make(chan struct{}, opts.QueueCap)
		c.slots[r] = make(chan struct{}, c.pipes[r].Depth())
		for i := 0; i < c.pipes[r].Depth(); i++ {
			c.slots[r] <- struct{}{}
		}
	}
	nodes := c.replicas[0].NumNodes()
	if nodes == 0 {
		nodes = len(c.replicas[0].Conns)
	}
	c.applyShares(sched.FairShares(nodes, opts.Replicas), nil)
	for r := 0; r < opts.Replicas; r++ {
		c.dispWG.Add(1)
		go c.dispatch(r)
	}
	if opts.RebalanceEvery > 0 {
		go c.rebalanceLoop()
	}
	return c, nil
}

// Replicas returns the replica count.
func (c *Cluster) Replicas() int { return len(c.replicas) }

// Replica returns replica r's Central (membership changes, debug).
func (c *Cluster) Replica(r int) *Central { return c.replicas[r] }

// Steals returns how many queued images each replica has stolen.
func (c *Cluster) Steals() []int64 {
	out := make([]int64, len(c.steals))
	for r := range c.steals {
		out[r] = c.steals[r].Load()
	}
	return out
}

// QueueDepths snapshots the undispatched queue length per replica.
func (c *Cluster) QueueDepths() []int {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	out := make([]int, len(c.queues))
	for r := range c.queues {
		out[r] = len(c.queues[r])
	}
	return out
}

// Submit hands an image to replica origin's queue and returns a channel
// that delivers its result exactly once. Submit blocks while origin
// already has QueueCap undispatched images (admission control); the
// image may ultimately execute on a different replica if stolen.
func (c *Cluster) Submit(ctx context.Context, origin int, x *tensor.Tensor) (<-chan ClusterResult, error) {
	if origin < 0 || origin >= len(c.replicas) {
		return nil, fmt.Errorf("core: cluster has no replica %d", origin)
	}
	select {
	case c.admit[origin] <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.ctx.Done():
		return nil, fmt.Errorf("core: cluster is shut down")
	}
	it := &clusterItem{x: x, origin: origin, ch: make(chan ClusterResult, 1)}
	c.qmu.Lock()
	if c.closed {
		c.qmu.Unlock()
		<-c.admit[origin]
		return nil, fmt.Errorf("core: cluster is shut down")
	}
	c.queues[origin] = append(c.queues[origin], it)
	depth := len(c.queues[origin])
	// Broadcast, not Signal: a single wakeup can land on a dispatcher
	// whose own queue is empty and for whom this queue is still below
	// the steal threshold — it re-checks, sleeps again, and the one
	// dispatcher that would run this item never wakes.
	c.cond.Broadcast()
	c.qmu.Unlock()
	if c.met != nil {
		c.met.queueDepth.With(replicaLabel(origin)).Set(float64(depth))
	}
	return it.ch, nil
}

// take blocks until replica r has an image to run: its own queue's
// head, or — when its queue is dry and a victim's depth has reached
// StealThreshold — the deepest victim's head. After close it drains
// whatever remains anywhere, then returns nil.
func (c *Cluster) take(r int) *clusterItem {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	for {
		if len(c.queues[r]) > 0 {
			return c.popLocked(r, r)
		}
		victim, depth := -1, 0
		for o := range c.queues {
			if o != r && len(c.queues[o]) > depth {
				victim, depth = o, len(c.queues[o])
			}
		}
		if victim >= 0 && (depth >= c.opts.StealThreshold || c.closed) {
			return c.popLocked(victim, r)
		}
		if c.closed {
			return nil
		}
		c.cond.Wait()
	}
}

// popLocked removes queue from's head on behalf of replica by,
// releasing the origin's admission token. Caller holds qmu.
func (c *Cluster) popLocked(from, by int) *clusterItem {
	q := c.queues[from]
	it := q[0]
	q[0] = nil
	c.queues[from] = q[1:]
	depth := len(c.queues[from])
	<-c.admit[it.origin]
	if from != by {
		c.steals[by].Add(1)
		if c.met != nil {
			c.met.steals.With(replicaLabel(by)).Inc()
		}
	}
	if c.met != nil {
		c.met.queueDepth.With(replicaLabel(from)).Set(float64(depth))
	}
	return it
}

// dispatch is replica r's executor: reserve an execution slot, pop (or
// steal) an image, submit it through r's pipeline, and deliver the
// result from a waiter goroutine so the next image can dispatch while
// this one's results are still arriving.
//
// The slot acquisition MUST precede take(): a dispatcher whose
// pipeline is at depth would otherwise still grab an item — possibly
// stealing it — and then block in Submit holding it hostage, while the
// item's origin replica sits idle and could have run it immediately.
// Reserving capacity first means only a replica that can actually
// start an image competes for one.
func (c *Cluster) dispatch(r int) {
	defer c.dispWG.Done()
	for {
		<-c.slots[r]
		it := c.take(r)
		if it == nil {
			return
		}
		start := time.Now()
		h, err := c.pipes[r].Submit(context.Background(), it.x)
		if err != nil {
			c.slots[r] <- struct{}{}
			it.ch <- ClusterResult{Origin: it.origin, Replica: r, Err: err}
			continue
		}
		c.waitWG.Add(1)
		go func(it *clusterItem) {
			defer c.waitWG.Done()
			out, stats, werr := h.Wait()
			c.slots[r] <- struct{}{}
			if c.met != nil {
				c.met.images.With(replicaLabel(r)).Inc()
				c.met.latency.With(replicaLabel(r)).ObserveDuration(time.Since(start).Nanoseconds())
			}
			it.ch <- ClusterResult{Out: out, Stats: stats, Origin: it.origin, Replica: r, Err: werr}
		}(it)
	}
}

// rebalanceLoop periodically re-partitions node capacity by demand.
func (c *Cluster) rebalanceLoop() {
	t := time.NewTicker(c.opts.RebalanceEvery)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
			c.Rebalance()
		}
	}
}

// Rebalance recomputes the demand-weighted capacity shares and installs
// them on every replica (also runs on the RebalanceEvery timer; exposed
// for tests and manual triggers).
func (c *Cluster) Rebalance() {
	n := len(c.replicas)
	demand := make([]float64, n)
	c.qmu.Lock()
	for r := range c.queues {
		demand[r] = float64(len(c.queues[r]))
	}
	c.qmu.Unlock()
	for r, cen := range c.replicas {
		demand[r] += float64(cen.InFlight())
	}
	nodes := c.replicas[0].NumNodes()
	if nodes == 0 {
		nodes = len(c.replicas[0].Conns)
	}
	c.applyShares(sched.DemandShares(nodes, demand), demand)
}

// applyShares installs a share matrix on the replicas, publishes the
// share gauges, and audits material changes.
func (c *Cluster) applyShares(shares [][]float64, demand []float64) {
	if shares == nil {
		return
	}
	for r, cen := range c.replicas {
		cen.SetShare(shares[r])
	}
	totals := sched.ShareTotals(shares)
	c.qmu.Lock()
	copy(c.entitled, totals)
	prev := c.lastShares
	changed := prev == nil
	for r := range shares {
		if changed {
			break
		}
		for k := range shares[r] {
			if k >= len(prev[r]) || abs(shares[r][k]-prev[r][k]) > 0.02 {
				changed = true
				break
			}
		}
	}
	if changed {
		c.lastShares = shares
	}
	c.qmu.Unlock()
	if c.met != nil {
		for r := range shares {
			for k := range shares[r] {
				c.met.share.With(replicaLabel(r), nodeLabel(k)).Set(shares[r][k])
			}
		}
	}
	if changed && c.opts.Audit != nil {
		// A share rebalance in the decision ring: Speeds carry the demand
		// signal, Next the per-replica share in percent points.
		d := sched.Decision{At: time.Now(), Trigger: "cluster-rebalance"}
		if demand != nil {
			d.Speeds = append([]float64(nil), demand...)
		}
		d.Next = make(sched.Allocation, len(totals))
		for r, t := range totals {
			d.Next[r] = int(t*100 + 0.5)
		}
		if prev != nil {
			pt := sched.ShareTotals(prev)
			d.Prev = make(sched.Allocation, len(pt))
			for r, t := range pt {
				d.Prev[r] = int(t*100 + 0.5)
			}
		}
		c.opts.Audit.Record(d)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Shutdown drains the queues (dispatchers keep stealing until every
// queue is empty), waits for all outstanding results to deliver, then
// tears the replicas down. Submissions racing Shutdown either make it
// into a queue — and complete — or fail with a shut-down error.
func (c *Cluster) Shutdown() {
	c.qmu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.qmu.Unlock()
	c.dispWG.Wait()
	c.waitWG.Wait()
	c.cancel()
	for _, cen := range c.replicas {
		cen.Shutdown()
	}
}

// replicaLabel names a replica for metric labels.
func replicaLabel(r int) string { return nodeLabel(r) }

package core

import (
	"bytes"
	"math/rand"
	"testing"

	"adcnn/internal/compress"
	"adcnn/internal/tensor"
)

// TestTileRoundTripZeroAlloc drives a full worker-tile round trip at the
// wire level — fused boundary encode → frame write → frame read → fused
// decode — with every buffer recycled, and requires zero steady-state
// heap allocations. This is the tentpole property: a tile exchange costs
// CPU, not garbage.
func TestTileRoundTripZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop puts; alloc counts are meaningless")
	}
	rng := rand.New(rand.NewSource(9))
	y := tensor.New(1, 8, 16, 16)
	for i := range y.Data {
		if rng.Float64() > 0.8 {
			y.Data[i] = 6 * rng.Float32()
		}
	}
	p := compress.NewPipeline(4, 6)
	encBuf := tensor.GetBytes(p.MaxEncodedSize(y))
	m := &Message{
		Kind: KindResult, ImageID: 1, TileID: 2, NodeID: 3, Compressed: true,
		TraceID: 7, SpanID: 8, Timing: &ConvTiming{RecvNs: 1, SendNs: 6},
	}
	var frame bytes.Buffer
	var rd bytes.Reader
	rm := &Message{}
	var dst tensor.Tensor

	roundTrip := func() {
		out, err := p.EncodeInto(encBuf[:0], y)
		if err != nil {
			t.Fatal(err)
		}
		encBuf = out
		m.Payload = out
		frame.Reset()
		if err := WriteMessage(&frame, m); err != nil {
			t.Fatal(err)
		}
		rd.Reset(frame.Bytes())
		if err := ReadMessageInto(&rd, rm); err != nil {
			t.Fatal(err)
		}
		if err := compress.DecodeInto(&dst, rm.Payload); err != nil {
			t.Fatal(err)
		}
	}
	roundTrip() // warm: frame capacity, pooled payload, timing record, LUT

	allocs := testing.AllocsPerRun(100, roundTrip)
	if allocs != 0 {
		t.Fatalf("tile round trip allocated %.1f times per op, want 0", allocs)
	}
	if rm.ImageID != 1 || rm.TileID != 2 || !rm.Compressed || rm.Timing == nil {
		t.Fatalf("round-tripped message corrupted: %+v", rm)
	}
	if dst.Len() != y.Len() {
		t.Fatalf("decoded %d values, want %d", dst.Len(), y.Len())
	}
}

// TestRawTensorRoundTripZeroAlloc is the uncompressed-path twin: task
// dispatch frames carry AppendTensor payloads and the worker decodes
// them with DecodeTensorInto.
func TestRawTensorRoundTripZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop puts; alloc counts are meaningless")
	}
	y := tensor.New(1, 3, 32, 32)
	for i := range y.Data {
		y.Data[i] = float32(i)
	}
	encBuf := tensor.GetBytes(TensorWireSize(y))
	m := &Message{Kind: KindTask, ImageID: 1, TileID: 0}
	var frame bytes.Buffer
	var rd bytes.Reader
	rm := &Message{}
	var dst tensor.Tensor

	roundTrip := func() {
		encBuf = AppendTensor(encBuf[:0], y)
		m.Payload = encBuf
		frame.Reset()
		if err := WriteMessage(&frame, m); err != nil {
			t.Fatal(err)
		}
		rd.Reset(frame.Bytes())
		if err := ReadMessageInto(&rd, rm); err != nil {
			t.Fatal(err)
		}
		if err := DecodeTensorInto(&dst, rm.Payload); err != nil {
			t.Fatal(err)
		}
	}
	roundTrip()

	allocs := testing.AllocsPerRun(100, roundTrip)
	if allocs != 0 {
		t.Fatalf("raw tensor round trip allocated %.1f times per op, want 0", allocs)
	}
	for i := range y.Data {
		if dst.Data[i] != y.Data[i] {
			t.Fatalf("value %d: got %v want %v", i, dst.Data[i], y.Data[i])
		}
	}
}

// TestPipeSendCopiesPayload pins the Conn.Send borrow contract on the
// in-process transport: the sender may clobber or release its buffer the
// moment Send returns, and the receiver still sees the original frame
// (and can release its own copy independently).
func TestPipeSendCopiesPayload(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	payload := tensor.GetBytes(4)
	copy(payload, []byte{1, 2, 3, 4})
	tm := &ConvTiming{RecvNs: 42}
	m := &Message{Kind: KindResult, ImageID: 9, Payload: payload, Timing: tm}
	if err := a.Send(m); err != nil {
		t.Fatal(err)
	}
	// Sender reuses its storage immediately.
	for i := range payload {
		payload[i] = 0xff
	}
	tm.RecvNs = -1
	m.ImageID = 0

	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.ImageID != 9 || !bytes.Equal(got.Payload, []byte{1, 2, 3, 4}) {
		t.Fatalf("receiver saw sender-side mutations: %+v payload %x", got, got.Payload)
	}
	if got.Timing == nil || got.Timing.RecvNs != 42 {
		t.Fatalf("timing record shared with sender: %+v", got.Timing)
	}
	got.ReleasePayload()
	if got.Payload != nil {
		t.Fatal("ReleasePayload must clear the field")
	}
	got.ReleasePayload() // idempotent
}

// TestReadMessageIntoReusesTiming: the recycled destination keeps one
// ConvTiming across frames and drops it when a frame has none.
func TestReadMessageIntoReusesTiming(t *testing.T) {
	var frame bytes.Buffer
	m := &Message{Kind: KindResult, Timing: &ConvTiming{RecvNs: 5}}
	if err := WriteMessage(&frame, m); err != nil {
		t.Fatal(err)
	}
	rm := &Message{}
	if err := ReadMessageInto(bytes.NewReader(frame.Bytes()), rm); err != nil {
		t.Fatal(err)
	}
	first := rm.Timing
	if first == nil || first.RecvNs != 5 {
		t.Fatalf("timing not decoded: %+v", rm.Timing)
	}
	if err := ReadMessageInto(bytes.NewReader(frame.Bytes()), rm); err != nil {
		t.Fatal(err)
	}
	if rm.Timing != first {
		t.Fatal("second read should reuse the existing timing record")
	}
	frame.Reset()
	if err := WriteMessage(&frame, &Message{Kind: KindTask}); err != nil {
		t.Fatal(err)
	}
	if err := ReadMessageInto(bytes.NewReader(frame.Bytes()), rm); err != nil {
		t.Fatal(err)
	}
	if rm.Timing != nil {
		t.Fatal("timing must be cleared for frames without a record")
	}
}

package core

import "testing"

// TestSimRespectsStorageCapacity exercises Equation (1)'s constraint
// M·x_k ≤ H_k end to end: a node whose storage only fits two input
// tiles never receives more, and the excess spreads over the others.
func TestSimRespectsStorageCapacity(t *testing.T) {
	s := vggSim(t, 4, nil)
	// One input tile's wire size (1 byte/value, 8x8 grid on 224²×3).
	tileBytes := int64(3*224*224) / 64
	s.cfg.Nodes[0].Capacity = 2 * tileBytes
	for i := 0; i < 6; i++ {
		r := s.RunImage()
		if r.Alloc[0] > 2 {
			t.Fatalf("image %d: capacity-limited node got %d tiles: %v", i, r.Alloc[0], r.Alloc)
		}
		if r.Alloc.Total() != 64 {
			t.Fatalf("image %d: tiles lost: %v", i, r.Alloc)
		}
	}
}

// All nodes capacity-limited below the tile count: allocation fails and
// the image is zero-filled rather than wedging the system.
func TestSimAllCapacityExhausted(t *testing.T) {
	s := vggSim(t, 2, nil)
	tileBytes := int64(3*224*224) / 64
	s.cfg.Nodes[0].Capacity = 4 * tileBytes
	s.cfg.Nodes[1].Capacity = 4 * tileBytes
	r := s.RunImage()
	if r.TilesMissed != 64 {
		t.Fatalf("expected total loss when capacity < tiles, got %d missed", r.TilesMissed)
	}
	if r.Latency <= 0 {
		t.Fatal("latency must remain finite")
	}
}

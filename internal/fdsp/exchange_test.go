package fdsp_test

import (
	"math/rand"
	"testing"

	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/tensor"
)

// Halo exchange must reproduce the monolithic Front bit-for-bit — it is
// the exact-but-communicating strategy of paper Figure 4(c).
func TestExchangeMatchesFullRun(t *testing.T) {
	for _, cfg := range []models.Config{models.VGGSim(), models.ResNetSim(), models.FCNSim()} {
		m, err := models.Build(cfg, models.Options{}, 17)
		if err != nil {
			t.Fatal(err)
		}
		blocks, err := m.ExchangeBlocks()
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		rng := rand.New(rand.NewSource(18))
		x := tensor.New(1, cfg.InputC, cfg.InputH, cfg.InputW)
		x.RandN(rng, 1)
		want := m.Front.Forward(x, false)
		for _, g := range []fdsp.Grid{{Rows: 2, Cols: 2}, {Rows: 4, Cols: 4}} {
			got, st, err := fdsp.RunWithExchange(blocks, x, g)
			if err != nil {
				t.Fatalf("%s %v: %v", cfg.Name, g, err)
			}
			if !got.Equal(want, 1e-4) {
				t.Fatalf("%s %v: exchange output diverged from full run", cfg.Name, g)
			}
			if st.HaloBytes <= 0 || st.Rounds == 0 {
				t.Fatalf("%s %v: no halo traffic recorded: %+v", cfg.Name, g, st)
			}
		}
	}
}

// Halo traffic is far below shipping whole feature maps (the paper's
// argument for spatial over channel partitioning), but nonzero — the
// overhead FDSP then removes entirely.
func TestExchangeTrafficBetweenFDSPAndChannel(t *testing.T) {
	cfg := models.VGGSim()
	m, err := models.Build(cfg, models.Options{}, 19)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := m.ExchangeBlocks()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20))
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rng, 1)
	g := fdsp.Grid{Rows: 4, Cols: 4}
	_, st, err := fdsp.RunWithExchange(blocks, x, g)
	if err != nil {
		t.Fatal(err)
	}
	// Channel partitioning would move each block's whole ofmap (K-1 times).
	var channelBytes int64
	for _, b := range cfg.Profile()[:cfg.Separable] {
		channelBytes += b.OfmapBytes * int64(g.Tiles()-1)
	}
	if st.HaloBytes >= channelBytes {
		t.Fatalf("halo traffic %d should be far below channel partitioning's %d",
			st.HaloBytes, channelBytes)
	}
	if st.HaloBytes == 0 {
		t.Fatal("naive spatial partitioning must still communicate (FDSP's advantage)")
	}
}

func TestExchangeRejectsBadInputs(t *testing.T) {
	m, err := models.Build(models.VGGSim(), models.Options{}, 21)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := m.ExchangeBlocks()
	if err != nil {
		t.Fatal(err)
	}
	// Batch > 1.
	if _, _, err := fdsp.RunWithExchange(blocks, tensor.New(2, 3, 32, 32), fdsp.Grid{Rows: 2, Cols: 2}); err == nil {
		t.Fatal("batch > 1 must be rejected")
	}
	// Indivisible grid.
	if _, _, err := fdsp.RunWithExchange(blocks, tensor.New(1, 3, 32, 32), fdsp.Grid{Rows: 5, Cols: 5}); err == nil {
		t.Fatal("indivisible grid must be rejected")
	}
}

func TestExchangeBlocksRejectStride(t *testing.T) {
	cfg := models.ResNet18() // stem has stride 2
	cfg.Separable = 1
	m, err := models.Build(cfg, models.Options{}, 22)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ExchangeBlocks(); err == nil {
		t.Fatal("stride-2 block must be rejected")
	}
}

package fdsp_test

import (
	"fmt"

	"adcnn/internal/fdsp"
	"adcnn/internal/tensor"
)

// Partition an image into a 2×2 grid and put it back together.
func ExampleGrid_Layout() {
	g := fdsp.Grid{Rows: 2, Cols: 2}
	img := tensor.New(1, 3, 8, 8)
	for i := range img.Data {
		img.Data[i] = float32(i)
	}
	tiles := g.Layout(8, 8)
	parts := make([]*tensor.Tensor, len(tiles))
	for i, t := range tiles {
		parts[i] = fdsp.ExtractTile(img, t)
	}
	back := fdsp.Reassemble(parts, g)
	fmt.Println(g, len(tiles), "tiles, lossless:", back.Equal(img, 0))
	// Output: 2x2 4 tiles, lossless: true
}

// Compute the data-halo margin the AOFL baseline needs for a fused
// conv3x3 → pool2 → conv3x3 stack.
func ExampleHaloMargin() {
	stack := []fdsp.LayerGeom{{Kernel: 3, Stride: 1}, {Kernel: 2, Stride: 2}, {Kernel: 3, Stride: 1}}
	fmt.Println("margin:", fdsp.HaloMargin(stack), "downsample:", fdsp.Downsample(stack))
	// Output: margin: 3 downsample: 2
}

// Package fdsp implements Fully Decomposable Spatial Partition (paper
// Section 3.2): the input feature map is split into an R×C grid of tiles
// and the early ("separable") layer blocks process every tile completely
// independently, zero-padding at tile borders instead of exchanging data
// halos. The package also implements the exact halo-extended partition
// used by the AOFL baseline, so the two strategies can be compared
// numerically.
package fdsp

import (
	"fmt"

	"adcnn/internal/tensor"
)

// Grid describes an R×C spatial partition.
type Grid struct {
	Rows, Cols int
}

// Tiles returns the number of tiles in the grid.
func (g Grid) Tiles() int { return g.Rows * g.Cols }

// Validate checks the grid is non-degenerate.
func (g Grid) Validate() error {
	if g.Rows < 1 || g.Cols < 1 {
		return fmt.Errorf("fdsp: invalid grid %dx%d", g.Rows, g.Cols)
	}
	return nil
}

// String formats the grid the way the paper writes partitions ("8x8").
func (g Grid) String() string { return fmt.Sprintf("%dx%d", g.Rows, g.Cols) }

// Tile identifies one cell of the partition and its pixel rectangle in
// the source image.
type Tile struct {
	Index    int // row-major index, also the paper's tile ID t_id
	Row, Col int
	Y0, X0   int // top-left corner in the source image
	H, W     int // tile size in pixels
}

// Layout computes the tile rectangles for an h×w image. Remainder pixels
// are distributed to the earliest rows/columns so tile sizes differ by at
// most one.
func (g Grid) Layout(h, w int) []Tile {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	if h < g.Rows || w < g.Cols {
		panic(fmt.Sprintf("fdsp: image %dx%d smaller than grid %v", h, w, g))
	}
	tiles := make([]Tile, 0, g.Tiles())
	y := 0
	for r := 0; r < g.Rows; r++ {
		th := h / g.Rows
		if r < h%g.Rows {
			th++
		}
		x := 0
		for c := 0; c < g.Cols; c++ {
			tw := w / g.Cols
			if c < w%g.Cols {
				tw++
			}
			tiles = append(tiles, Tile{
				Index: r*g.Cols + c, Row: r, Col: c,
				Y0: y, X0: x, H: th, W: tw,
			})
			x += tw
		}
		y += th
	}
	return tiles
}

// ExtractTile copies tile t out of a [1,C,H,W] image.
func ExtractTile(x *tensor.Tensor, t Tile) *tensor.Tensor {
	if x.Rank() != 4 || x.Shape[0] != 1 {
		panic(fmt.Sprintf("fdsp: ExtractTile expects [1,C,H,W], got %v", x.Shape))
	}
	c, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	if t.Y0+t.H > h || t.X0+t.W > w {
		panic(fmt.Sprintf("fdsp: tile %+v outside image %dx%d", t, h, w))
	}
	out := tensor.New(1, c, t.H, t.W)
	for ch := 0; ch < c; ch++ {
		for ty := 0; ty < t.H; ty++ {
			srcOff := ch*h*w + (t.Y0+ty)*w + t.X0
			dstOff := ch*t.H*t.W + ty*t.W
			copy(out.Data[dstOff:dstOff+t.W], x.Data[srcOff:srcOff+t.W])
		}
	}
	return out
}

// ExtractTileWithHalo copies tile t extended by margin pixels on every
// side. Pixels outside the source image are zero-filled, which matches
// what same-padding convolution would have produced at the true image
// border.
func ExtractTileWithHalo(x *tensor.Tensor, t Tile, margin int) *tensor.Tensor {
	if margin < 0 {
		panic("fdsp: negative halo margin")
	}
	c, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	eh, ew := t.H+2*margin, t.W+2*margin
	out := tensor.New(1, c, eh, ew)
	for ch := 0; ch < c; ch++ {
		for ey := 0; ey < eh; ey++ {
			sy := t.Y0 - margin + ey
			if sy < 0 || sy >= h {
				continue
			}
			for ex := 0; ex < ew; ex++ {
				sx := t.X0 - margin + ex
				if sx < 0 || sx >= w {
					continue
				}
				out.Data[ch*eh*ew+ey*ew+ex] = x.Data[ch*h*w+sy*w+sx]
			}
		}
	}
	return out
}

// Crop copies the h×w rectangle at (top, left) out of a [1,C,H,W] map.
func Crop(x *tensor.Tensor, top, left, h, w int) *tensor.Tensor {
	c, sh, sw := x.Shape[1], x.Shape[2], x.Shape[3]
	if top < 0 || left < 0 || top+h > sh || left+w > sw {
		panic(fmt.Sprintf("fdsp: crop (%d,%d,%d,%d) outside map %dx%d", top, left, h, w, sh, sw))
	}
	out := tensor.New(1, c, h, w)
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			srcOff := ch*sh*sw + (y+top)*sw + left
			dstOff := ch*h*w + y*w
			copy(out.Data[dstOff:dstOff+w], x.Data[srcOff:srcOff+w])
		}
	}
	return out
}

// CropCenter removes margin pixels from every side of a [1,C,H,W] map.
func CropCenter(x *tensor.Tensor, margin int) *tensor.Tensor {
	c, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	nh, nw := h-2*margin, w-2*margin
	if nh <= 0 || nw <= 0 {
		panic(fmt.Sprintf("fdsp: crop margin %d too large for %dx%d", margin, h, w))
	}
	out := tensor.New(1, c, nh, nw)
	for ch := 0; ch < c; ch++ {
		for y := 0; y < nh; y++ {
			srcOff := ch*h*w + (y+margin)*w + margin
			dstOff := ch*nh*nw + y*nw
			copy(out.Data[dstOff:dstOff+nw], x.Data[srcOff:srcOff+nw])
		}
	}
	return out
}

// Reassemble stitches per-tile outputs (index order matching Layout) back
// into one [1,C,H,W] map. Tiles in the same grid row must share a height
// and tiles in the same grid column must share a width; this holds
// whenever the per-tile network applies a uniform downsampling factor.
func Reassemble(tiles []*tensor.Tensor, g Grid) *tensor.Tensor {
	if len(tiles) != g.Tiles() {
		panic(fmt.Sprintf("fdsp: %d tiles for grid %v", len(tiles), g))
	}
	c := tiles[0].Shape[1]
	rowH := make([]int, g.Rows)
	colW := make([]int, g.Cols)
	for r := 0; r < g.Rows; r++ {
		rowH[r] = tiles[r*g.Cols].Shape[2]
	}
	for cc := 0; cc < g.Cols; cc++ {
		colW[cc] = tiles[cc].Shape[3]
	}
	totalH, totalW := 0, 0
	for _, h := range rowH {
		totalH += h
	}
	for _, w := range colW {
		totalW += w
	}
	out := tensor.New(1, c, totalH, totalW)
	y := 0
	for r := 0; r < g.Rows; r++ {
		x := 0
		for cc := 0; cc < g.Cols; cc++ {
			t := tiles[r*g.Cols+cc]
			if t.Shape[1] != c || t.Shape[2] != rowH[r] || t.Shape[3] != colW[cc] {
				panic(fmt.Sprintf("fdsp: tile (%d,%d) shape %v inconsistent with row height %d / col width %d",
					r, cc, t.Shape, rowH[r], colW[cc]))
			}
			th, tw := t.Shape[2], t.Shape[3]
			for ch := 0; ch < c; ch++ {
				for ty := 0; ty < th; ty++ {
					srcOff := ch*th*tw + ty*tw
					dstOff := ch*totalH*totalW + (y+ty)*totalW + x
					copy(out.Data[dstOff:dstOff+tw], t.Data[srcOff:srcOff+tw])
				}
			}
			x += tw
		}
		y += rowH[r]
	}
	return out
}

// SplitBatch rearranges [N,C,H,W] into [N*T,C,H/R,W/C] so the separable
// blocks can process every tile of every sample as one batch. H must be
// divisible by R and W by C (training-time sim models choose such sizes).
func SplitBatch(x *tensor.Tensor, g Grid) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if h%g.Rows != 0 || w%g.Cols != 0 {
		panic(fmt.Sprintf("fdsp: SplitBatch needs %dx%d divisible by grid %v", h, w, g))
	}
	th, tw := h/g.Rows, w/g.Cols
	out := tensor.New(n*g.Tiles(), c, th, tw)
	for i := 0; i < n; i++ {
		for r := 0; r < g.Rows; r++ {
			for cc := 0; cc < g.Cols; cc++ {
				dst := ((i*g.Tiles() + r*g.Cols + cc) * c) * th * tw
				for ch := 0; ch < c; ch++ {
					for ty := 0; ty < th; ty++ {
						srcOff := ((i*c+ch)*h+(r*th+ty))*w + cc*tw
						dstOff := dst + ch*th*tw + ty*tw
						copy(out.Data[dstOff:dstOff+tw], x.Data[srcOff:srcOff+tw])
					}
				}
			}
		}
	}
	return out
}

// MergeBatch reverses SplitBatch after the per-tile network has run:
// [N*T,C',h,w] becomes [N,C',h*R,w*C].
func MergeBatch(y *tensor.Tensor, g Grid, n int) *tensor.Tensor {
	nt, c, th, tw := y.Shape[0], y.Shape[1], y.Shape[2], y.Shape[3]
	if nt != n*g.Tiles() {
		panic(fmt.Sprintf("fdsp: MergeBatch got %d tile-samples for n=%d grid %v", nt, n, g))
	}
	h, w := th*g.Rows, tw*g.Cols
	out := tensor.New(n, c, h, w)
	for i := 0; i < n; i++ {
		for r := 0; r < g.Rows; r++ {
			for cc := 0; cc < g.Cols; cc++ {
				src := ((i*g.Tiles() + r*g.Cols + cc) * c) * th * tw
				for ch := 0; ch < c; ch++ {
					for ty := 0; ty < th; ty++ {
						srcOff := src + ch*th*tw + ty*tw
						dstOff := ((i*c+ch)*h+(r*th+ty))*w + cc*tw
						copy(out.Data[dstOff:dstOff+tw], y.Data[srcOff:srcOff+tw])
					}
				}
			}
		}
	}
	return out
}

package fdsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adcnn/internal/nn"
	"adcnn/internal/tensor"
)

func TestLayoutCoversImageExactly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Grid{Rows: 1 + rng.Intn(6), Cols: 1 + rng.Intn(6)}
		h := g.Rows + rng.Intn(40)
		w := g.Cols + rng.Intn(40)
		tiles := g.Layout(h, w)
		cover := make([][]int, h)
		for y := range cover {
			cover[y] = make([]int, w)
		}
		for _, tl := range tiles {
			if tl.H < 1 || tl.W < 1 {
				return false
			}
			for y := tl.Y0; y < tl.Y0+tl.H; y++ {
				for x := tl.X0; x < tl.X0+tl.W; x++ {
					cover[y][x]++
				}
			}
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if cover[y][x] != 1 {
					return false // gap or overlap
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutTileSizesDifferByAtMostOne(t *testing.T) {
	g := Grid{Rows: 3, Cols: 3}
	tiles := g.Layout(10, 11)
	for _, tl := range tiles {
		if tl.H < 3 || tl.H > 4 || tl.W < 3 || tl.W > 4 {
			t.Fatalf("tile %+v not near-equal for 10x11 / 3x3", tl)
		}
	}
}

func TestLayoutPanicsOnTinyImage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Grid{Rows: 4, Cols: 4}.Layout(2, 8)
}

func TestGridString(t *testing.T) {
	if (Grid{8, 8}).String() != "8x8" {
		t.Fatal("String format")
	}
	if (Grid{4, 8}).Tiles() != 32 {
		t.Fatal("Tiles")
	}
}

func TestExtractReassembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(1, 3, 12, 8)
	x.RandN(rng, 1)
	g := Grid{Rows: 3, Cols: 2}
	tiles := g.Layout(12, 8)
	parts := make([]*tensor.Tensor, len(tiles))
	for i, tl := range tiles {
		parts[i] = ExtractTile(x, tl)
	}
	back := Reassemble(parts, g)
	if !back.Equal(x, 0) {
		t.Fatal("Reassemble(ExtractTile...) must reproduce the image")
	}
}

func TestExtractReassembleNonDivisible(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(1, 2, 7, 5)
	x.RandN(rng, 1)
	g := Grid{Rows: 2, Cols: 3}
	tiles := g.Layout(7, 5)
	parts := make([]*tensor.Tensor, len(tiles))
	for i, tl := range tiles {
		parts[i] = ExtractTile(x, tl)
	}
	if !Reassemble(parts, g).Equal(x, 0) {
		t.Fatal("non-divisible round trip failed")
	}
}

func TestSplitMergeBatchRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Grid{Rows: 1 + rng.Intn(4), Cols: 1 + rng.Intn(4)}
		n := 1 + rng.Intn(3)
		c := 1 + rng.Intn(3)
		h := g.Rows * (1 + rng.Intn(4))
		w := g.Cols * (1 + rng.Intn(4))
		x := tensor.New(n, c, h, w)
		x.RandN(rng, 1)
		y := MergeBatch(SplitBatch(x, g), g, n)
		return y.Equal(x, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitBatchIndivisiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SplitBatch(tensor.New(1, 1, 7, 8), Grid{Rows: 2, Cols: 2})
}

func TestSplitBatchMatchesExtractTile(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(1, 2, 8, 8)
	x.RandN(rng, 1)
	g := Grid{Rows: 2, Cols: 2}
	batch := SplitBatch(x, g)
	tiles := g.Layout(8, 8)
	for i, tl := range tiles {
		ref := ExtractTile(x, tl)
		got := tensor.FromSlice(
			batch.Data[i*2*4*4:(i+1)*2*4*4], 1, 2, 4, 4)
		if !got.Equal(ref, 0) {
			t.Fatalf("tile %d differs between SplitBatch and ExtractTile", i)
		}
	}
}

func TestHaloMargin(t *testing.T) {
	// Two 3x3 stride-1 convs: margin 1+1 = 2.
	m := HaloMargin([]LayerGeom{{3, 1}, {3, 1}})
	if m != 2 {
		t.Fatalf("margin = %d, want 2", m)
	}
	// conv3x3 then pool2: backward: pool need 0*2+0... walk: start 0;
	// pool(k2,s2): 0*2 + (2-1)/2 = 0; conv(3,1): 0 + 1 = 1.
	m = HaloMargin([]LayerGeom{{3, 1}, {2, 2}})
	if m != 1 {
		t.Fatalf("margin = %d, want 1", m)
	}
	// conv, pool, conv: conv needs 1; pool doubles: 2; first conv adds 1 → 3.
	m = HaloMargin([]LayerGeom{{3, 1}, {2, 2}, {3, 1}})
	if m != 3 {
		t.Fatalf("margin = %d, want 3", m)
	}
	if Downsample([]LayerGeom{{3, 1}, {2, 2}, {3, 1}, {2, 2}}) != 4 {
		t.Fatal("Downsample wrong")
	}
}

// buildConvStack creates a small conv/pool network and its geometry.
func buildConvStack(seed int64) (*nn.Sequential, []LayerGeom) {
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewSequential("stack",
		nn.NewConv2D("c1", 2, 4, 3, 3, 1, 1, rng),
		nn.NewReLU("r1"),
		nn.NewMaxPool2D("p1", 2, 2),
		nn.NewConv2D("c2", 4, 4, 3, 3, 1, 1, rng),
		nn.NewReLU("r2"),
	)
	geom := []LayerGeom{{3, 1}, {2, 2}, {3, 1}}
	return net, geom
}

func TestRunWithHaloIsExact(t *testing.T) {
	net, geom := buildConvStack(11)
	rng := rand.New(rand.NewSource(12))
	x := tensor.New(1, 2, 16, 16)
	x.RandN(rng, 1)
	full := net.Forward(x, false)
	for _, g := range []Grid{{2, 2}, {4, 4}, {2, 4}} {
		tiled := RunWithHalo(net, x, g, geom)
		if !tiled.Equal(full, 1e-4) {
			t.Fatalf("halo partition %v must be numerically exact", g)
		}
	}
}

func TestRunFDSPApproximatesFullRun(t *testing.T) {
	net, _ := buildConvStack(13)
	rng := rand.New(rand.NewSource(14))
	x := tensor.New(1, 2, 16, 16)
	x.RandN(rng, 1)
	full := net.Forward(x, false)
	tiled := RunFDSP(net, x, Grid{2, 2})
	if !tiled.SameShape(full) {
		t.Fatalf("FDSP output shape %v, want %v", tiled.Shape, full.Shape)
	}
	if tiled.Equal(full, 1e-6) {
		t.Fatal("FDSP zero-padding should perturb border outputs (else the test is vacuous)")
	}
	// Pixels whose receptive field never crosses a tile border must be
	// exact. Output pixel p (pool coords) needs input rows [2p-3, 2p+4];
	// for tile (0,0) (input rows 0..7) that holds for p ≤ 1, and for tile
	// (1,1) (input rows 8..15) for p ≥ 6 — so (1,1) and (6,6) are interior.
	var worstInterior float64
	for ch := 0; ch < full.Shape[1]; ch++ {
		for _, pos := range [][2]int{{1, 1}, {6, 6}, {1, 6}, {6, 1}} {
			d := math.Abs(float64(full.At(0, ch, pos[0], pos[1]) - tiled.At(0, ch, pos[0], pos[1])))
			if d > worstInterior {
				worstInterior = d
			}
		}
	}
	if worstInterior > 1e-4 {
		t.Fatalf("tile-interior outputs should match the full run, worst diff %v", worstInterior)
	}
}

func TestFrontLayerForwardMatchesPerTileRun(t *testing.T) {
	net, _ := buildConvStack(15)
	g := Grid{2, 2}
	front := NewFrontLayer("front", g, net)
	rng := rand.New(rand.NewSource(16))
	x := tensor.New(1, 2, 16, 16)
	x.RandN(rng, 1)
	got := front.Forward(x, false)
	want := RunFDSP(net, x, g)
	if !got.Equal(want, 1e-5) {
		t.Fatal("FrontLayer batched execution must equal per-tile execution")
	}
}

func TestFrontLayerGradientFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	inner := nn.NewSequential("inner", nn.NewConv2D("c", 1, 2, 3, 3, 1, 1, rng))
	front := NewFrontLayer("front", Grid{2, 2}, inner)
	x := tensor.New(1, 1, 8, 8)
	x.RandN(rng, 1)
	y := front.Forward(x, true)
	grad := tensor.New(y.Shape...)
	grad.Fill(1)
	dx := front.Backward(grad)
	if !dx.SameShape(x) {
		t.Fatalf("input gradient shape %v", dx.Shape)
	}
	// conv weight gradient must be non-zero (gradient reached the params)
	var nz bool
	for _, v := range front.Params()[0].Grad.Data {
		if v != 0 {
			nz = true
			break
		}
	}
	if !nz {
		t.Fatal("no gradient reached the inner conv weights")
	}
}

// Property: FDSP with a 1x1 grid is exactly the full run.
func TestFDSPTrivialGridIsExact(t *testing.T) {
	net, _ := buildConvStack(18)
	rng := rand.New(rand.NewSource(19))
	x := tensor.New(1, 2, 8, 8)
	x.RandN(rng, 1)
	full := net.Forward(x, false)
	tiled := RunFDSP(net, x, Grid{1, 1})
	if !tiled.Equal(full, 0) {
		t.Fatal("1x1 FDSP must be bit-identical to the full run")
	}
}

func TestExtractTileWithHaloZeroFill(t *testing.T) {
	x := tensor.New(1, 1, 4, 4)
	x.Fill(1)
	tl := Tile{Index: 0, Row: 0, Col: 0, Y0: 0, X0: 0, H: 2, W: 2}
	ext := ExtractTileWithHalo(x, tl, 1)
	if ext.Shape[2] != 4 || ext.Shape[3] != 4 {
		t.Fatalf("extended shape %v", ext.Shape)
	}
	// Top-left corner lies outside the image → zero.
	if ext.At(0, 0, 0, 0) != 0 {
		t.Fatal("outside pixels must be zero-filled")
	}
	// Bottom-right of extension lies inside → one.
	if ext.At(0, 0, 3, 3) != 1 {
		t.Fatal("inside pixels must be copied")
	}
}

func TestCropCenterPanicsWhenTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CropCenter(tensor.New(1, 1, 4, 4), 2)
}

package fdsp

import (
	"fmt"

	"adcnn/internal/nn"
	"adcnn/internal/tensor"
)

// ExchangeBlock is one round of the naive spatial partition the paper's
// Section 3.1 describes (Figure 4(c)): a stride-1 same-padding
// convolutional part whose tile-border inputs (the data halo, Margin
// pixels wide) must be fetched from neighbouring tiles, followed by an
// optional pooling layer whose receptive fields stay inside the tile.
type ExchangeBlock struct {
	Conv   *nn.Sequential // conv/bn/relu (and residual) part, stride 1
	Margin int            // halo width the Conv part needs
	Pool   nn.Layer       // nil when the block has no pooling
}

// ExchangeStats accounts the communication of a halo-exchange run.
type ExchangeStats struct {
	// HaloBytes is the total halo data moved between devices (counted
	// twice per strip: through the access point, as on a WiFi edge).
	HaloBytes int64
	// Rounds is the number of exchange rounds (blocks with Margin > 0).
	Rounds int
}

// RunWithExchange executes blocks tile-parallel over an R×C partition,
// reproducing the exact full-model computation by exchanging only the
// data halos between rounds — the communication pattern FDSP eliminates.
// The input spatial size must be divisible by the grid and every pooling
// stage must keep tiles evenly divisible.
func RunWithExchange(blocks []ExchangeBlock, x *tensor.Tensor, g Grid) (*tensor.Tensor, ExchangeStats, error) {
	if err := g.Validate(); err != nil {
		return nil, ExchangeStats{}, err
	}
	n, ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if n != 1 {
		return nil, ExchangeStats{}, fmt.Errorf("fdsp: exchange runs one image at a time")
	}
	if h%g.Rows != 0 || w%g.Cols != 0 {
		return nil, ExchangeStats{}, fmt.Errorf("fdsp: %dx%d not divisible by %v", h, w, g)
	}
	_ = ch

	// Current per-tile feature maps, row-major.
	tiles := make([]*tensor.Tensor, g.Tiles())
	for i, tl := range g.Layout(h, w) {
		tiles[i] = ExtractTile(x, tl)
	}

	var st ExchangeStats
	for bi, b := range blocks {
		m := b.Margin
		if m > 0 {
			ext, bytes, err := exchangeRound(tiles, g, m)
			if err != nil {
				return nil, st, fmt.Errorf("fdsp: block %d: %w", bi, err)
			}
			st.HaloBytes += bytes
			st.Rounds++
			for i := range tiles {
				th, tw := tiles[i].Shape[2], tiles[i].Shape[3]
				y := b.Conv.Forward(ext[i].t, false)
				if y.Shape[2] != ext[i].t.Shape[2] || y.Shape[3] != ext[i].t.Shape[3] {
					return nil, st, fmt.Errorf("fdsp: block %d is not size-preserving (stride must be 1)", bi)
				}
				tiles[i] = Crop(y, ext[i].top, ext[i].left, th, tw)
			}
		} else {
			for i := range tiles {
				tiles[i] = b.Conv.Forward(tiles[i], false)
			}
		}
		if b.Pool != nil {
			for i := range tiles {
				if tiles[i].Shape[2] < 2 && tiles[i].Shape[3] < 2 {
					return nil, st, fmt.Errorf("fdsp: block %d: tile too small to pool", bi)
				}
				tiles[i] = b.Pool.Forward(tiles[i], false)
			}
		}
	}
	return Reassemble(tiles, g), st, nil
}

// extTile is a halo-extended tile with its per-side extension record.
type extTile struct {
	t         *tensor.Tensor
	top, left int // extension actually applied on those sides
}

// exchangeRound builds each tile's halo-extended map from its
// neighbours' borders and counts the strip bytes moved. Extensions are
// clamped at true image borders so the network's own same-padding
// applies there exactly as in a monolithic run — extending past the
// border would let the convolution see virtual zeros as data and
// diverge in the outermost ring.
func exchangeRound(tiles []*tensor.Tensor, g Grid, m int) ([]extTile, int64, error) {
	c := tiles[0].Shape[1]
	th, tw := tiles[0].Shape[2], tiles[0].Shape[3]
	if th < m || tw < m {
		return nil, 0, fmt.Errorf("tile %dx%d smaller than margin %d", th, tw, m)
	}
	at := func(r, cc int) *tensor.Tensor {
		if r < 0 || r >= g.Rows || cc < 0 || cc >= g.Cols {
			return nil
		}
		return tiles[r*g.Cols+cc]
	}
	side := func(present bool) int {
		if present {
			return m
		}
		return 0
	}
	ext := make([]extTile, len(tiles))
	var bytes int64
	for r := 0; r < g.Rows; r++ {
		for cc := 0; cc < g.Cols; cc++ {
			top := side(r > 0)
			bottom := side(r < g.Rows-1)
			left := side(cc > 0)
			right := side(cc < g.Cols-1)
			eh, ew := top+th+bottom, left+tw+right
			e := tensor.New(1, c, eh, ew)
			// Copy from the 3×3 neighbourhood (including self).
			for dr := -1; dr <= 1; dr++ {
				for dc := -1; dc <= 1; dc++ {
					src := at(r+dr, cc+dc)
					if src == nil {
						continue
					}
					h, w := copyRegion(e, src, dr, dc, m, top, left)
					if dr != 0 || dc != 0 {
						bytes += int64(c) * int64(h) * int64(w) * 4
					}
				}
			}
			ext[r*g.Cols+cc] = extTile{t: e, top: top, left: left}
		}
	}
	// Strips traverse the shared medium twice (via the access point).
	return ext, bytes * 2, nil
}

// copyRegion copies the border region of neighbour (dr,dc) into the
// extended canvas e, whose own tile sits at offset (top, left). It
// returns the copied region's height and width for traffic accounting.
func copyRegion(e, src *tensor.Tensor, dr, dc, m, top, left int) (int, int) {
	c := src.Shape[1]
	th, tw := src.Shape[2], src.Shape[3]
	eh, ew := e.Shape[2], e.Shape[3]
	var sy, sx, h, w, dy, dx int
	switch dr {
	case -1:
		sy, h, dy = th-m, m, top-m // top-m == 0 whenever the neighbour exists
	case 0:
		sy, h, dy = 0, th, top
	case 1:
		sy, h, dy = 0, m, top+th
	}
	switch dc {
	case -1:
		sx, w, dx = tw-m, m, left-m
	case 0:
		sx, w, dx = 0, tw, left
	case 1:
		sx, w, dx = 0, m, left+tw
	}
	_ = eh
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			srcOff := ch*th*tw + (sy+y)*tw + sx
			dstOff := ch*eh*ew + (dy+y)*ew + dx
			copy(e.Data[dstOff:dstOff+w], src.Data[srcOff:srcOff+w])
		}
	}
	return h, w
}

package fdsp

import (
	"fmt"

	"adcnn/internal/nn"
	"adcnn/internal/tensor"
)

// FrontLayer wraps a model's separable layer blocks so that training sees
// exactly the partitioned forward pass the distributed system will run:
// the input is split into tiles, every tile flows through the blocks with
// zero padding at its own borders (no cross-tile information), and the
// per-tile outputs are stitched back together. This is the training-graph
// modification of paper Figure 7(b) for the FDSP stage of Algorithm 1.
//
// Gradients flow tile-locally, matching the independence constraint.
type FrontLayer struct {
	label string
	Grid  Grid
	Inner *nn.Sequential

	batch int
}

// NewFrontLayer builds the FDSP training wrapper.
func NewFrontLayer(label string, g Grid, inner *nn.Sequential) *FrontLayer {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return &FrontLayer{label: label, Grid: g, Inner: inner}
}

// Forward splits x into tiles, runs the inner blocks on the tile batch,
// and merges the outputs.
func (f *FrontLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Shape[0]
	if train {
		f.batch = n
	}
	tiles := SplitBatch(x, f.Grid)
	y := f.Inner.Forward(tiles, train)
	return MergeBatch(y, f.Grid, n)
}

// Backward splits the output gradient per tile, back-propagates through
// the inner blocks, and merges the input gradients.
func (f *FrontLayer) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := SplitBatch(grad, f.Grid)
	dx := f.Inner.Backward(g)
	return MergeBatch(dx, f.Grid, f.batch)
}

// Params exposes the inner blocks' parameters.
func (f *FrontLayer) Params() []*nn.Param { return f.Inner.Params() }

// Name returns the layer label.
func (f *FrontLayer) Name() string { return f.label }

// LayerGeom describes one sliding-window stage for halo-margin math.
type LayerGeom struct {
	Kernel int // window size
	Stride int
}

// HaloMargin computes how many input pixels beyond a tile's border are
// needed so a stack of stages produces the tile's exact output (the AOFL
// fused-layer extension). The recursion runs back to front: a pooling or
// strided stage multiplies the downstream requirement by its stride, and
// every stage adds its own half-window reach.
func HaloMargin(stack []LayerGeom) int {
	need := 0
	for i := len(stack) - 1; i >= 0; i-- {
		g := stack[i]
		need = need*g.Stride + (g.Kernel-1)/2
	}
	return need
}

// Downsample returns the total spatial downsampling factor of a stack.
func Downsample(stack []LayerGeom) int {
	d := 1
	for _, g := range stack {
		d *= g.Stride
	}
	return d
}

// HaloExtension returns the clamped extended region for tile t with the
// given margin inside an h×w image. The extension stops at image borders
// so the network's own same-padding applies there exactly as in a full
// run (extending past the border with zeros would instead convolve real
// pixels into the virtual region and diverge from the monolithic result).
func HaloExtension(t Tile, margin, h, w int) Tile {
	y0 := t.Y0 - margin
	if y0 < 0 {
		y0 = 0
	}
	x0 := t.X0 - margin
	if x0 < 0 {
		x0 = 0
	}
	y1 := t.Y0 + t.H + margin
	if y1 > h {
		y1 = h
	}
	x1 := t.X0 + t.W + margin
	if x1 > w {
		x1 = w
	}
	return Tile{Index: t.Index, Row: t.Row, Col: t.Col, Y0: y0, X0: x0, H: y1 - y0, W: x1 - x0}
}

// RunWithHalo executes the per-tile network exactly (no accuracy loss) by
// extending each tile with the halo needed by the stack, running the
// network, and cropping the contaminated border. stack must describe the
// sliding-window geometry of net's layers in order; tile offsets and
// sizes must be divisible by the stack's downsampling factor. The
// reassembled result equals running net on the whole image — this is the
// AOFL baseline's fused-layer execution.
func RunWithHalo(net *nn.Sequential, x *tensor.Tensor, g Grid, stack []LayerGeom) *tensor.Tensor {
	margin := HaloMargin(stack)
	down := Downsample(stack)
	// Round the margin up to a multiple of the downsampling factor so the
	// output crop lands on whole pixels.
	if margin%down != 0 {
		margin += down - margin%down
	}
	h, w := x.Shape[2], x.Shape[3]
	tiles := g.Layout(h, w)
	outs := make([]*tensor.Tensor, len(tiles))
	for i, t := range tiles {
		if t.Y0%down != 0 || t.X0%down != 0 || t.H%down != 0 || t.W%down != 0 {
			panic(fmt.Sprintf("fdsp: tile %+v not aligned to downsample factor %d", t, down))
		}
		ext := HaloExtension(t, margin, h, w)
		y := net.Forward(ExtractTile(x, ext), false)
		outs[i] = Crop(y, (t.Y0-ext.Y0)/down, (t.X0-ext.X0)/down, t.H/down, t.W/down)
	}
	return Reassemble(outs, g)
}

// RunFDSP executes the per-tile network with FDSP (zero padding at tile
// borders, tiles fully independent) and reassembles the outputs. This is
// the approximate-but-communication-free execution the paper retrains
// models to tolerate.
func RunFDSP(net *nn.Sequential, x *tensor.Tensor, g Grid) *tensor.Tensor {
	tiles := g.Layout(x.Shape[2], x.Shape[3])
	outs := make([]*tensor.Tensor, len(tiles))
	for i, t := range tiles {
		outs[i] = net.Forward(ExtractTile(x, t), false)
	}
	return Reassemble(outs, g)
}

// Package kernelbench measures the tensor compute kernels — the blocked
// GEMM engine, the retained naive references, im2col, and whole Conv2D
// forward passes over the GEMM shapes the model zoo actually produces —
// and renders the results as a machine-readable report. adcnn-bench
// (-exp kernels) writes the report to BENCH_kernels.json so the kernel
// perf trajectory is tracked across PRs.
package kernelbench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"adcnn/internal/nn"
	"adcnn/internal/quant"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

// Result is one benchmark measurement.
type Result struct {
	Name         string  `json:"name"`
	Shape        string  `json:"shape,omitempty"`
	Threads      int     `json:"threads"`
	NsPerOp      float64 `json:"ns_per_op"`
	GFlops       float64 `json:"gflops,omitempty"`
	GBPerSec     float64 `json:"gb_per_sec,omitempty"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	SpeedupVsRef float64 `json:"speedup_vs_ref,omitempty"`
	ScalingVs1T  float64 `json:"scaling_vs_1_thread,omitempty"`
}

// Report is the full kernel benchmark suite output. The embedded host
// metadata (OS/arch, CPU count, Go version, git commit) makes
// BENCH_*.json files comparable across machines.
type Report struct {
	Timestamp string `json:"timestamp"`
	telemetry.Host
	GOMAXPROCS int `json:"gomaxprocs"`
	// KernelTier is the SIMD dispatch tier the host CPU selected
	// (generic / sse / avx2 / avx512) — the tier every non-forced
	// result ran at.
	KernelTier string   `json:"kernel_tier"`
	Results    []Result `json:"results"`
}

// ConvShape is a GEMM shape as produced by a conv layer: M=OutC,
// K=InC·KH·KW, N=OH·OW. The conv-geometry fields (InC, spatial size,
// kernel, padding; stride is 1 throughout the zoo) let the whole-layer
// benchmarks rebuild the layer that produces the GEMM shape.
type ConvShape struct {
	Name    string
	M, K, N int
	InC     int // input channels
	H, W    int // input spatial size (output matches: stride 1, same pad)
	KH, KW  int // kernel size
	Pad     int // symmetric spatial padding
}

// ZooConvShapes are representative per-tile GEMM shapes from the model
// zoo (VGG16 / YOLO blocks on FDSP-partitioned feature maps).
var ZooConvShapes = []ConvShape{
	{"vgg_L2_64x64_56sq", 64, 64 * 9, 56 * 56, 64, 56, 56, 3, 3, 1},
	{"vgg_L4_128x128_28sq", 128, 128 * 9, 28 * 28, 128, 28, 28, 3, 3, 1},
	{"vgg_L7_256x256_14sq", 256, 256 * 9, 14 * 14, 256, 14, 14, 3, 3, 1},
	{"vgg_L13_512x512_7sq", 512, 512 * 9, 7 * 7, 512, 7, 7, 3, 3, 1},
	{"yolo_1x1_512to256_14sq", 256, 512, 14 * 14, 512, 14, 14, 1, 1, 0},
}

func benchGemm(m, k, n int, f func(c, a, b *tensor.Tensor)) (float64, int64) {
	rng := rand.New(rand.NewSource(1))
	a := tensor.New(m, k)
	b := tensor.New(k, n)
	c := tensor.New(m, n)
	a.RandU(rng, -1, 1)
	b.RandU(rng, -1, 1)
	r := testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			f(c, a, b)
		}
	})
	return float64(r.NsPerOp()), r.AllocsPerOp()
}

func gflops(m, k, n int, nsPerOp float64) float64 {
	return 2 * float64(m) * float64(k) * float64(n) / nsPerOp
}

// benchGemmSlices measures the slice-level blocked f32 GEMM (the engine
// the conv forward calls) at the current kernel tier and GOMAXPROCS.
func benchGemmSlices(m, k, n int) (float64, int64) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	c := make([]float32, m*n)
	for i := range a {
		a[i] = rng.Float32() - 0.5
	}
	for i := range b {
		b[i] = rng.Float32() - 0.5
	}
	r := testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			tensor.GemmInto(c, a, b, m, k, n)
		}
	})
	return float64(r.NsPerOp()), r.AllocsPerOp()
}

// Run executes the kernel suite. It temporarily pins GOMAXPROCS for the
// single-thread measurements and restores it afterwards.
func Run() Report {
	maxProcs := runtime.GOMAXPROCS(0)
	rep := Report{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Host:       telemetry.HostInfo(),
		GOMAXPROCS: maxProcs,
		KernelTier: tensor.DetectedKernelTier().String(),
	}
	add := func(r Result) { rep.Results = append(rep.Results, r) }

	// Acceptance shape: 256×256×256 MatMulTransB, single thread, blocked
	// engine vs retained naive reference.
	runtime.GOMAXPROCS(1)
	const s = 256
	refNs, refAllocs := benchGemm(s, s, s, func(c, a, b *tensor.Tensor) {
		tensor.RefMatMulTransB(a, b)
	})
	add(Result{Name: "matmul_transb_ref", Shape: "256x256x256", Threads: 1,
		NsPerOp: refNs, GFlops: gflops(s, s, s, refNs), AllocsPerOp: refAllocs})
	newNs, newAllocs := benchGemm(s, s, s, func(c, a, b *tensor.Tensor) {
		tensor.MatMulTransBInto(c, a, b)
	})
	add(Result{Name: "matmul_transb_blocked", Shape: "256x256x256", Threads: 1,
		NsPerOp: newNs, GFlops: gflops(s, s, s, newNs), AllocsPerOp: newAllocs,
		SpeedupVsRef: refNs / newNs})

	// MatMulInto single-thread baseline + scaling up to GOMAXPROCS.
	refMMNs, _ := benchGemm(s, s, s, func(c, a, b *tensor.Tensor) {
		tensor.RefMatMulInto(c, a, b)
	})
	add(Result{Name: "matmul_ref", Shape: "256x256x256", Threads: 1,
		NsPerOp: refMMNs, GFlops: gflops(s, s, s, refMMNs), AllocsPerOp: 0})
	var oneThreadNs float64
	for threads := 1; ; threads *= 2 {
		if threads > maxProcs {
			threads = maxProcs
		}
		runtime.GOMAXPROCS(threads)
		ns, al := benchGemm(s, s, s, func(c, a, b *tensor.Tensor) {
			tensor.MatMulInto(c, a, b)
		})
		if threads == 1 {
			oneThreadNs = ns
		}
		add(Result{Name: "matmul_blocked", Shape: "256x256x256", Threads: threads,
			NsPerOp: ns, GFlops: gflops(s, s, s, ns), AllocsPerOp: al,
			SpeedupVsRef: refMMNs / ns, ScalingVs1T: oneThreadNs / ns})
		if threads == maxProcs {
			break
		}
	}
	runtime.GOMAXPROCS(maxProcs)

	// SIMD tier comparison: the blocked f32 GEMM pinned to each dispatch
	// tier the host supports, single thread, so the AVX2-vs-SSE gain is
	// tracked explicitly. The SSE measurement doubles as the baseline the
	// int8 acceptance criterion (≥2×) is judged against.
	runtime.GOMAXPROCS(1)
	detected := tensor.DetectedKernelTier()
	var sseNs float64
	for _, tier := range []tensor.KernelTier{tensor.TierGeneric, tensor.TierSSE, tensor.TierAVX2, tensor.TierAVX512} {
		if tensor.SetKernelTier(tier) != nil {
			continue // above what this host supports
		}
		ns, al := benchGemm(s, s, s, func(c, a, b *tensor.Tensor) {
			tensor.MatMulTransBInto(c, a, b)
		})
		add(Result{Name: "matmul_blocked_" + tier.String(), Shape: "256x256x256",
			Threads: 1, NsPerOp: ns, GFlops: gflops(s, s, s, ns), AllocsPerOp: al,
			SpeedupVsRef: refNs / ns})
		if tier == tensor.TierSSE {
			sseNs = ns
		}
	}
	_ = tensor.SetKernelTier(detected)
	if sseNs == 0 {
		sseNs = newNs // no SSE tier (non-amd64 / noasm build): compare against the blocked engine
	}

	// Int8 quantized GEMM (s8×u8→s32 dot-product layout) on the
	// acceptance shape and the zoo shapes, single thread. speedup_vs_ref
	// is measured against the f32 SSE engine on the same shape — the
	// ≥2× acceptance criterion for the quantized compute path.
	benchInt8 := func(name string, m, k, n int, f32Ref float64) {
		kp := tensor.Int8KP(k)
		rng := rand.New(rand.NewSource(3))
		a8 := make([]int8, m*kp)
		b8 := make([]uint8, n*kp)
		c32 := make([]int32, m*n)
		for i := range a8 {
			a8[i] = int8(rng.Intn(255) - 127)
		}
		for i := range b8 {
			b8[i] = uint8(rng.Intn(256))
		}
		br := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				tensor.GemmInt8DotInto(c32, a8, b8, m, n, kp)
			}
		})
		ns := float64(br.NsPerOp())
		add(Result{Name: name, Shape: fmt.Sprintf("%dx%dx%d", m, k, n),
			Threads: 1, NsPerOp: ns, GFlops: gflops(m, k, n, ns),
			AllocsPerOp: br.AllocsPerOp(), SpeedupVsRef: f32Ref / ns})
	}
	benchInt8("gemm_int8_dot", s, s, s, sseNs)
	for _, cs := range ZooConvShapes {
		_ = tensor.SetKernelTier(tensor.TierSSE) // ignore error off-amd64; tier stays generic
		fNs, _ := benchGemmSlices(cs.M, cs.K, cs.N)
		_ = tensor.SetKernelTier(detected)
		benchInt8("gemm_int8_"+cs.Name, cs.M, cs.K, cs.N, fNs)
	}
	runtime.GOMAXPROCS(maxProcs)

	// Model-zoo conv GEMM shapes at full parallelism.
	for _, cs := range ZooConvShapes {
		ns, al := benchGemm(cs.M, cs.K, cs.N, func(c, a, b *tensor.Tensor) {
			tensor.MatMulInto(c, a, b)
		})
		add(Result{Name: "conv_gemm_" + cs.Name,
			Shape:   fmt.Sprintf("%dx%dx%d", cs.M, cs.K, cs.N),
			Threads: maxProcs, NsPerOp: ns,
			GFlops: gflops(cs.M, cs.K, cs.N, ns), AllocsPerOp: al})
	}

	// Whole-layer inference forward (pooled im2col, fused bias): the
	// allocs column is the zero-allocation acceptance criterion.
	rng := rand.New(rand.NewSource(2))
	conv := nn.NewConv2D("bench", 64, 64, 3, 3, 1, 1, rng)
	x := tensor.New(1, 64, 56, 56)
	x.RandU(rng, -1, 1)
	y := tensor.New(conv.OutShape(x.Shape)...)
	conv.ForwardInto(y, x, false) // prime the pool
	r := testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			conv.ForwardInto(y, x, false)
		}
	})
	oh, ow := conv.Geom.OutSize(56, 56)
	add(Result{Name: "conv2d_forward_64x64_3x3_56sq", Shape: "1x64x56x56",
		Threads: maxProcs, NsPerOp: float64(r.NsPerOp()),
		GFlops:      2 * 64 * 64 * 9 * float64(oh*ow) / float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp()})

	// The same layer through the int8 path: quantized weights, dynamic
	// activation affine, fused requantize. The allocs column is the int8
	// zero-allocation acceptance criterion; speedup_vs_ref compares
	// against the f32 forward just measured.
	if err := conv.QuantizeInt8(); err == nil {
		conv.ForwardInto(y, x, false) // prime the int8 pools
		qr := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				conv.ForwardInto(y, x, false)
			}
		})
		add(Result{Name: "conv2d_forward_int8_64x64_3x3_56sq", Shape: "1x64x56x56",
			Threads: maxProcs, NsPerOp: float64(qr.NsPerOp()),
			GFlops:       2 * 64 * 64 * 9 * float64(oh*ow) / float64(qr.NsPerOp()),
			AllocsPerOp:  qr.AllocsPerOp(),
			SpeedupVsRef: float64(r.NsPerOp()) / float64(qr.NsPerOp())})
		conv.ClearInt8()
	}

	// im2col kernel on the same feature map.
	g := conv.Geom
	colsLen := g.ColsLen(64, 56, 56)
	buf := tensor.GetBuf(colsLen)
	src := x.Data[:64*56*56]
	ir := testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			tensor.Im2ColSlice(buf, src, 64, 56, 56, g)
		}
	})
	tensor.PutBuf(buf)
	add(Result{Name: "im2col_64ch_3x3_56sq", Shape: "64x56x56",
		Threads: 1, NsPerOp: float64(ir.NsPerOp()), AllocsPerOp: ir.AllocsPerOp()})

	// Quantized im2col: the fused SIMD quantize-while-pack path against
	// the retained per-element reference, in both directions the int8
	// operating mode runs — f32 activations → packed levels (local
	// compute) and decoded wire levels → packed levels (the levels-native
	// quantized uplink). GB/s counts the source image read once plus the
	// packed column matrix written — the fixed data movement both
	// implementations share — so the reference's overlap-window re-reads
	// and re-quantization count against it, not for it.
	mn, mx := tensor.MinMax(src)
	af, _ := quant.AffineFor(mn, mx)
	qkp := tensor.Int8KP(64 * 9)
	qbuf := tensor.GetBytes(oh * ow * qkp)
	benchQuantIm2Col := func(name string, bytes float64, f func()) float64 {
		qr := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				f()
			}
		})
		ns := float64(qr.NsPerOp())
		add(Result{Name: name, Shape: "64x56x56", Threads: 1, NsPerOp: ns,
			GBPerSec: bytes / ns, AllocsPerOp: qr.AllocsPerOp()})
		return ns
	}
	qf32Bytes := float64(4*64*56*56 + oh*ow*qkp)
	refQNs := benchQuantIm2Col("quantized_im2col_f32_ref", qf32Bytes, func() {
		tensor.RefIm2ColQuantSlice(qbuf, src, 64, 56, 56, g, af.InvScale(), af.Zero, qkp)
	})
	fusedQNs := benchQuantIm2Col("quantized_im2col_f32_fused", qf32Bytes, func() {
		tensor.Im2ColQuantSlice(qbuf, src, 64, 56, 56, g, af.InvScale(), af.Zero, qkp)
	})
	rep.Results[len(rep.Results)-1].SpeedupVsRef = refQNs / fusedQNs
	lv := tensor.GetBytes(64 * 56 * 56)
	tensor.QuantizeAffineSlice(lv, src, af.InvScale(), af.Zero)
	qu8Bytes := float64(64*56*56 + oh*ow*qkp)
	refUNs := benchQuantIm2Col("quantized_im2col_u8_ref", qu8Bytes, func() {
		tensor.RefIm2ColU8Slice(qbuf, lv, 64, 56, 56, g, af.Zero, qkp)
	})
	fusedUNs := benchQuantIm2Col("quantized_im2col_u8_fused", qu8Bytes, func() {
		tensor.Im2ColU8Slice(qbuf, lv, 64, 56, 56, g, af.Zero, qkp)
	})
	rep.Results[len(rep.Results)-1].SpeedupVsRef = refUNs / fusedUNs
	tensor.PutBytes(lv)
	tensor.PutBytes(qbuf)

	// Whole-layer int8-vs-f32 ratio per model-zoo shape: each zoo GEMM
	// shape rebuilt as the conv layer that produces it, forward pass
	// measured f32 then int8 on the same layer. speedup_vs_ref is the
	// int8/f32 whole-layer ratio the bench gate watches — the exact
	// number that used to sit below 1.0 when im2col ate the GEMM win.
	for _, cs := range ZooConvShapes {
		lrng := rand.New(rand.NewSource(4))
		lconv := nn.NewConv2D(cs.Name, cs.InC, cs.M, cs.KH, cs.KW, 1, cs.Pad, lrng)
		lx := tensor.New(1, cs.InC, cs.H, cs.W)
		lx.RandU(lrng, -1, 1)
		ly := tensor.New(lconv.OutShape(lx.Shape)...)
		lconv.ForwardInto(ly, lx, false)
		fr := testing.Benchmark(func(tb *testing.B) {
			for i := 0; i < tb.N; i++ {
				lconv.ForwardInto(ly, lx, false)
			}
		})
		if err := lconv.QuantizeInt8(); err != nil {
			continue
		}
		lconv.ForwardInto(ly, lx, false)
		qr := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				lconv.ForwardInto(ly, lx, false)
			}
		})
		lconv.ClearInt8()
		flops := 2 * float64(cs.M) * float64(cs.K) * float64(cs.N)
		add(Result{Name: "int8_whole_layer_" + cs.Name,
			Shape:   fmt.Sprintf("1x%dx%dx%d", cs.InC, cs.H, cs.W),
			Threads: maxProcs, NsPerOp: float64(qr.NsPerOp()),
			GFlops:       flops / float64(qr.NsPerOp()),
			AllocsPerOp:  qr.AllocsPerOp(),
			SpeedupVsRef: float64(fr.NsPerOp()) / float64(qr.NsPerOp())})
	}

	return rep
}

// MinInt8WholeLayerRatio returns the smallest int8-vs-f32 whole-layer
// forward ratio in the report (the speedup_vs_ref of the
// int8_whole_layer_* results), or 0 when the report has none. The bench
// gate fails the kernels job when this dips below the floor.
func (r Report) MinInt8WholeLayerRatio() float64 {
	min := 0.0
	for _, res := range r.Results {
		if !strings.HasPrefix(res.Name, "int8_whole_layer_") {
			continue
		}
		if min == 0 || res.SpeedupVsRef < min {
			min = res.SpeedupVsRef
		}
	}
	return min
}

// WriteJSON writes the report, indented, to path.
func (r Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteText renders a human-readable table.
func (r Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "kernel benchmarks (%s, %s, GOMAXPROCS=%d, tier=%s)\n",
		r.GoVersion, r.GOARCH, r.GOMAXPROCS, r.KernelTier)
	fmt.Fprintf(w, "%-36s %-16s %8s %12s %9s %7s %7s %9s\n",
		"name", "shape", "threads", "ns/op", "GFLOP/s", "GB/s", "allocs", "vs-ref")
	for _, res := range r.Results {
		speed := ""
		if res.SpeedupVsRef > 0 {
			speed = fmt.Sprintf("%.2fx", res.SpeedupVsRef)
		}
		gf := ""
		if res.GFlops > 0 {
			gf = fmt.Sprintf("%.2f", res.GFlops)
		}
		gb := ""
		if res.GBPerSec > 0 {
			gb = fmt.Sprintf("%.2f", res.GBPerSec)
		}
		fmt.Fprintf(w, "%-36s %-16s %8d %12.0f %9s %7s %7d %9s\n",
			res.Name, res.Shape, res.Threads, res.NsPerOp, gf, gb, res.AllocsPerOp, speed)
	}
}

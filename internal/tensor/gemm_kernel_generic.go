package tensor

// gemmAxpy2x4Generic is the portable micro-kernel, compiled on every
// platform: two C rows updated with four packed A scalars each, j in
// [0, n), n a multiple of 4. On amd64 it is both the noasm fallback and
// the reference the build-tag parity test pins the assembly kernels
// against; elsewhere it is the only implementation.
func gemmAxpy2x4Generic(c0, c1, b0, b1, b2, b3 []float32, aq *[8]float32, n int) {
	a00, a01, a02, a03 := aq[0], aq[1], aq[2], aq[3]
	a10, a11, a12, a13 := aq[4], aq[5], aq[6], aq[7]
	x0 := c0[:n]
	x1 := c1[:n]
	v0 := b0[:n]
	v1 := b1[:n]
	v2 := b2[:n]
	v3 := b3[:n]
	for j := range v0 {
		bv0, bv1, bv2, bv3 := v0[j], v1[j], v2[j], v3[j]
		x0[j] += a00*bv0 + a01*bv1 + a02*bv2 + a03*bv3
		x1[j] += a10*bv0 + a11*bv1 + a12*bv2 + a13*bv3
	}
}

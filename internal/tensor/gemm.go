package tensor

import (
	"runtime"

	"adcnn/internal/parallel"
)

// Blocked GEMM engine. All three matmul entry points (MatMulInto,
// MatMulTransA, MatMulTransB) funnel into one row-major C = A·B kernel
// that is cache-blocked and register-tiled:
//
//   - the k dimension is blocked by gemmKC and the j dimension by gemmNC,
//     so the active B panel (gemmKC×gemmNC floats) stays resident in L2
//     while it is swept once per 4-row group of A;
//   - the inner kernel processes a 4×4 (rows × k) register tile per
//     j-sweep through the gemmAxpy2x4 micro-kernel — 4-wide SSE assembly
//     on amd64 (gemm_kernel_amd64.s), an unrolled Go loop elsewhere — so
//     each step retires 32 multiply-adds where the naive kernels issue one
//     latency-bound chain;
//   - transposed operands are repacked into scratch from the buffer pool
//     (GetBuf/PutBuf) so both GEMM inputs stream contiguously.
//
// Row ranges are scheduled over goroutines with parallel.ForChunked; a
// flop threshold keeps small products inline. The pre-engine serial
// kernels are retained verbatim as RefMatMulInto / RefMatMulTransA /
// RefMatMulTransB — they are the oracle for the property tests and the
// baseline for the kernel benchmarks.

const (
	gemmKC            = 128     // k-block: B panel height
	gemmNC            = 512     // j-block: B panel width
	gemmMR            = 4       // register tile rows
	gemmParallelFlops = 1 << 20 // 2·m·k·n below this runs inline
)

// GemmInto computes C = A·B on raw row-major slices: c[m*n] is
// overwritten with a[m*k]·b[k*n]. It is the slice-level core behind the
// tensor matmul API; hot paths that must not allocate call it directly.
func GemmInto(c, a, b []float32, m, k, n int) {
	if len(c) < m*n || len(a) < m*k || len(b) < k*n {
		panic("tensor: GemmInto operand shorter than its shape")
	}
	c = c[:m*n]
	for i := range c {
		c[i] = 0
	}
	if m == 0 || n == 0 || k == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if 2*int64(m)*int64(k)*int64(n) < gemmParallelFlops || workers <= 1 || m < 2*gemmMR {
		gemmRows(c, a, b, 0, m, k, n)
		return
	}
	// Chunks are multiples of the register-tile height so only the last
	// range per worker hits the remainder kernel.
	chunk := (m + 4*workers - 1) / (4 * workers)
	chunk = (chunk + gemmMR - 1) / gemmMR * gemmMR
	parallel.ForChunked(m, chunk, func(lo, hi int) {
		gemmRows(c, a, b, lo, hi, k, n)
	})
}

// gemmRows accumulates C[lo:hi] += A[lo:hi]·B with cache blocking. C rows
// in the range must already hold the desired initial value (GemmInto
// zeroes them).
func gemmRows(c, a, b []float32, lo, hi, k, n int) {
	for p0 := 0; p0 < k; p0 += gemmKC {
		p1 := min(p0+gemmKC, k)
		for j0 := 0; j0 < n; j0 += gemmNC {
			j1 := min(j0+gemmNC, n)
			i := lo
			for ; i+gemmMR <= hi; i += gemmMR {
				gemm4Rows(c, a, b, i, k, n, p0, p1, j0, j1)
			}
			for ; i < hi; i++ {
				gemm1Row(c, a, b, i, k, n, p0, p1, j0, j1)
			}
		}
	}
}

// gemm4Rows is the register-tiled micro-kernel: rows i..i+3 of C over
// columns [j0,j1), accumulating A·B over the k range [p0,p1). Each pass of
// the inner loop retires 16 multiply-adds against 4 B loads and 4 C
// load/store pairs.
func gemm4Rows(c, a, b []float32, i, k, n, p0, p1, j0, j1 int) {
	jw := j1 - j0
	a0 := a[(i+0)*k : (i+0)*k+k]
	a1 := a[(i+1)*k : (i+1)*k+k]
	a2 := a[(i+2)*k : (i+2)*k+k]
	a3 := a[(i+3)*k : (i+3)*k+k]
	c0 := c[(i+0)*n+j0 : (i+0)*n+j1]
	c1 := c[(i+1)*n+j0 : (i+1)*n+j1]
	c2 := c[(i+2)*n+j0 : (i+2)*n+j1]
	c3 := c[(i+3)*n+j0 : (i+3)*n+j1]
	p := p0
	for ; p+4 <= p1; p += 4 {
		aq0 := [8]float32{
			a0[p], a0[p+1], a0[p+2], a0[p+3],
			a1[p], a1[p+1], a1[p+2], a1[p+3],
		}
		aq1 := [8]float32{
			a2[p], a2[p+1], a2[p+2], a2[p+3],
			a3[p], a3[p+1], a3[p+2], a3[p+3],
		}
		b0 := b[(p+0)*n+j0 : (p+0)*n+j0+jw]
		b1 := b[(p+1)*n+j0:][:jw]
		b2 := b[(p+2)*n+j0:][:jw]
		b3 := b[(p+3)*n+j0:][:jw]
		// Vectorised body (SSE on amd64, unrolled Go elsewhere), then a
		// scalar tail for the jw%4 columns.
		jv := jw &^ 3
		if jv > 0 {
			gemmAxpy2x4(c0, c1, b0, b1, b2, b3, &aq0, jv)
			gemmAxpy2x4(c2, c3, b0, b1, b2, b3, &aq1, jv)
		}
		for j := jv; j < jw; j++ {
			bv0, bv1, bv2, bv3 := b0[j], b1[j], b2[j], b3[j]
			c0[j] += aq0[0]*bv0 + aq0[1]*bv1 + aq0[2]*bv2 + aq0[3]*bv3
			c1[j] += aq0[4]*bv0 + aq0[5]*bv1 + aq0[6]*bv2 + aq0[7]*bv3
			c2[j] += aq1[0]*bv0 + aq1[1]*bv1 + aq1[2]*bv2 + aq1[3]*bv3
			c3[j] += aq1[4]*bv0 + aq1[5]*bv1 + aq1[6]*bv2 + aq1[7]*bv3
		}
	}
	for ; p < p1; p++ {
		av0, av1, av2, av3 := a0[p], a1[p], a2[p], a3[p]
		brow := b[p*n+j0 : p*n+j0+jw]
		for j, bv := range brow {
			c0[j] += av0 * bv
			c1[j] += av1 * bv
			c2[j] += av2 * bv
			c3[j] += av3 * bv
		}
	}
}

// gemm1Row handles the m%4 remainder rows with a 4-way k unroll.
func gemm1Row(c, a, b []float32, i, k, n, p0, p1, j0, j1 int) {
	jw := j1 - j0
	arow := a[i*k : i*k+k]
	crow := c[i*n+j0 : i*n+j1]
	p := p0
	for ; p+4 <= p1; p += 4 {
		av0, av1, av2, av3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
		b0 := b[(p+0)*n+j0 : (p+0)*n+j0+jw]
		b1 := b[(p+1)*n+j0 : (p+1)*n+j0+jw]
		b2 := b[(p+2)*n+j0 : (p+2)*n+j0+jw]
		b3 := b[(p+3)*n+j0 : (p+3)*n+j0+jw]
		for j := 0; j < jw; j++ {
			crow[j] += av0*b0[j] + av1*b1[j] + av2*b2[j] + av3*b3[j]
		}
	}
	for ; p < p1; p++ {
		av := arow[p]
		if av == 0 {
			continue
		}
		brow := b[p*n+j0 : p*n+j0+jw]
		for j, bv := range brow {
			crow[j] += av * bv
		}
	}
}

// GemmTransBInto computes C = A·Bᵀ on raw slices: a is [m,k] row-major,
// b is [n,k] row-major, c receives [m,n]. Small m stays in a dot-product
// kernel (both operands already stream contiguously and a transpose would
// double the memory traffic); larger products repack Bᵀ into pooled
// scratch and reuse the blocked engine.
func GemmTransBInto(c, a, b []float32, m, k, n int) {
	if len(c) < m*n || len(a) < m*k || len(b) < n*k {
		panic("tensor: GemmTransBInto operand shorter than its shape")
	}
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		for i := range c[:m*n] {
			c[i] = 0
		}
		return
	}
	if m <= 8 {
		dotRows(c, a, b, 0, m, k, n)
		return
	}
	bt := GetBuf(k * n)
	transposeInto(bt, b, n, k)
	GemmInto(c, a, bt, m, k, n)
	PutBuf(bt)
}

// dotRows computes C[lo:hi] = A[lo:hi]·Bᵀ with four independent
// accumulator chains per A row (j unrolled by 4).
func dotRows(c, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[(j+0)*k : (j+0)*k+k]
			b1 := b[(j+1)*k : (j+1)*k+k]
			b2 := b[(j+2)*k : (j+2)*k+k]
			b3 := b[(j+3)*k : (j+3)*k+k]
			var s0, s1, s2, s3 float32
			for p, av := range arow {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			crow[j+0] = s0
			crow[j+1] = s1
			crow[j+2] = s2
			crow[j+3] = s3
		}
		for ; j < n; j++ {
			brow := b[j*k : j*k+k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] = s
		}
	}
}

// GemmTransAInto computes C = Aᵀ·B on raw slices: a is [k,m] row-major,
// b is [k,n] row-major, c receives [m,n]. A is repacked transposed into
// pooled scratch (cost m·k, negligible against 2·m·k·n) and the blocked
// engine does the rest.
func GemmTransAInto(c, a, b []float32, m, k, n int) {
	if len(c) < m*n || len(a) < k*m || len(b) < k*n {
		panic("tensor: GemmTransAInto operand shorter than its shape")
	}
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		for i := range c[:m*n] {
			c[i] = 0
		}
		return
	}
	at := GetBuf(m * k)
	transposeInto(at, a, k, m)
	GemmInto(c, at, b, m, k, n)
	PutBuf(at)
}

// transposeInto writes src (r×c row-major) into dst as its c×r transpose,
// tiled so both sides stay within a few cache lines per step.
func transposeInto(dst, src []float32, r, c int) {
	const tb = 32
	for i0 := 0; i0 < r; i0 += tb {
		i1 := min(i0+tb, r)
		for j0 := 0; j0 < c; j0 += tb {
			j1 := min(j0+tb, c)
			for i := i0; i < i1; i++ {
				srow := src[i*c : i*c+c]
				for j := j0; j < j1; j++ {
					dst[j*r+i] = srow[j]
				}
			}
		}
	}
}

// ---- Retained naive reference kernels ----------------------------------
//
// These are the pre-engine serial implementations, kept as the correctness
// oracle for the GEMM property tests and as the baseline the kernel
// benchmarks measure speedups against. Do not optimise them.

// RefMatMulInto is the reference C = A·B (axpy order, serial).
func RefMatMulInto(c, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	c.Zero()
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// RefMatMulTransA is the reference C = Aᵀ·B (serial).
func RefMatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	c := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : (p+1)*m]
		brow := b.Data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := c.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// RefMatMulTransB is the reference C = A·Bᵀ (serial dot products).
func RefMatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	c := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] = s
		}
	}
	return c
}

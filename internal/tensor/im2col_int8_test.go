package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestIm2ColQuantSliceMatchesReference checks the fused quantizing
// gather against the composition of the f32 im2col and the scalar
// quantizer, across geometries with and without padding and stride.
func TestIm2ColQuantSliceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	geoms := []ConvGeom{
		{KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
		{KH: 1, KW: 1, StrideH: 1, StrideW: 1},
		{KH: 5, KW: 3, StrideH: 1, StrideW: 2, PadH: 2, PadW: 0},
	}
	const c, h, w = 3, 9, 11
	src := make([]float32, c*h*w)
	for i := range src {
		src[i] = rng.Float32()*4 - 2
	}
	invScale, zp := float32(50), uint8(100)
	for _, g := range geoms {
		oh, ow := g.OutSize(h, w)
		plane := oh * ow
		k := c * g.KH * g.KW
		kp := Int8KP(k)
		ref := make([]float32, k*plane)
		Im2ColSlice(ref, src, c, h, w, g)
		dst := make([]uint8, plane*kp)
		for i := range dst {
			dst[i] = 0xAB // stale contents must be fully overwritten
		}
		Im2ColQuantSlice(dst, src, c, h, w, g, invScale, zp, kp)
		for j := 0; j < plane; j++ {
			for kk := 0; kk < k; kk++ {
				want := QuantizeAffine(ref[kk*plane+j], invScale, float32(zp))
				if got := dst[j*kp+kk]; got != want {
					t.Fatalf("geom %+v dst[%d][%d] = %d, want %d", g, j, kk, got, want)
				}
			}
			for kk := k; kk < kp; kk++ {
				if dst[j*kp+kk] != 0 {
					t.Fatalf("geom %+v: kp tail not zeroed at [%d][%d]", g, j, kk)
				}
			}
		}
	}
}

// TestIm2ColU8SliceMatchesQuantPath: gathering pre-quantized levels must
// equal quantizing during the gather when the source levels came from
// the same affine parameters.
func TestIm2ColU8SliceMatchesQuantPath(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := ConvGeom{KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	const c, h, w = 2, 8, 8
	src := make([]float32, c*h*w)
	for i := range src {
		src[i] = rng.Float32()*2 - 1
	}
	invScale, zp := float32(100), uint8(128)
	levels := make([]uint8, len(src))
	QuantizeAffineSlice(levels, src, invScale, zp)

	k := c * g.KH * g.KW
	kp := Int8KP(k)
	oh, ow := g.OutSize(h, w)
	a := make([]uint8, oh*ow*kp)
	b := make([]uint8, oh*ow*kp)
	Im2ColQuantSlice(a, src, c, h, w, g, invScale, zp, kp)
	Im2ColU8Slice(b, levels, c, h, w, g, zp, kp)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mismatch at %d: quant-gather %d vs u8-gather %d", i, a[i], b[i])
		}
	}
}

func TestQuantizeAffineRoundTrip(t *testing.T) {
	scale, zp := float32(0.02), uint8(77)
	lo := float64(scale) * float64(0-int32(zp))
	hi := float64(scale) * float64(255-int32(zp))
	for _, x := range []float32{-2, -1.54, -0.001, 0, 0.0099, 0.01, 0.5, 1.7, 3.56, 100} {
		q := QuantizeAffine(x, 1/scale, float32(zp))
		back := float64(scale) * float64(int32(q)-int32(zp))
		clamped := math.Min(math.Max(float64(x), lo), hi)
		if d := math.Abs(back - clamped); d > float64(scale)*0.51 {
			t.Fatalf("x=%g: round trip %g, clamped %g, |Δ|=%g", x, back, clamped, d)
		}
	}
	// Exact zero must land exactly on the zero point.
	if q := QuantizeAffine(0, 1/scale, float32(zp)); q != zp {
		t.Fatalf("QuantizeAffine(0) = %d, want zp %d", q, zp)
	}
}

func TestMinMax(t *testing.T) {
	mn, mx := MinMax([]float32{3, -1, 2, -7, 5})
	if mn != -7 || mx != 5 {
		t.Fatalf("MinMax = (%g, %g), want (-7, 5)", mn, mx)
	}
	mn, mx = MinMax(nil)
	if mn != 0 || mx != 0 {
		t.Fatalf("MinMax(nil) = (%g, %g), want zeros", mn, mx)
	}
	mn, mx = MinMax([]float32{1, float32(math.NaN()), 2})
	if !math.IsNaN(float64(mn)) || !math.IsNaN(float64(mx)) {
		t.Fatalf("MinMax with NaN = (%g, %g), want NaN propagation", mn, mx)
	}
}

func TestGetI32Pool(t *testing.T) {
	b := GetI32(100)
	if len(b) != 100 {
		t.Fatalf("GetI32(100) length %d", len(b))
	}
	PutI32(b)
	b2 := GetI32(70)
	if len(b2) != 70 {
		t.Fatalf("GetI32(70) length %d", len(b2))
	}
	PutI32(b2)
}

package tensor

import (
	"math"
	"testing"
)

// FuzzInt8PackRequant fuzzes the int8 pack → GEMM → requantize round
// trip: arbitrary bytes become activation levels and weight codes, the
// engine's requantized output must match a float64 evaluation of the
// dequantized operands (the int32 stage is exact, so only f32
// requantization rounding may separate them), and the affine
// quantize/dequantize round trip must stay within the analytic bound.
func FuzzInt8PackRequant(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 250, 130, 9, 200}, float32(0.05), uint8(128))
	f.Add([]byte{255, 255, 0, 0, 7, 7, 7, 7}, float32(2), uint8(0))
	f.Add(make([]byte, 64), float32(1e-4), uint8(255))
	f.Fuzz(func(t *testing.T, data []byte, scale float32, zp uint8) {
		if !(scale > 1e-6) || !(scale < 1e6) || len(data) < 4 {
			t.Skip()
		}
		if len(data) > 2048 {
			data = data[:2048]
		}
		// Affine round trip: dequantized levels must re-quantize to the
		// same level, and a fresh float must survive within one step.
		invScale := 1 / scale
		for _, q := range data[:min(len(data), 64)] {
			x := scale * float32(int32(q)-int32(zp))
			if !isFinite(x) {
				continue
			}
			back := QuantizeAffine(x, invScale, float32(zp))
			if d := int(back) - int(q); d < -1 || d > 1 {
				t.Fatalf("level %d dequant %g requant %d: drift beyond one level", q, x, back)
			}
		}
		// Pack a 2×n×kp product from the fuzz bytes.
		kp := int8KStep
		n := len(data) / kp
		if n == 0 {
			kp = int8KStep
			n = 1
		}
		if n > 8 {
			n = 8
		}
		const m = 2
		a := make([]int8, m*kp)
		b := make([]uint8, n*kp)
		for i := range a {
			a[i] = int8(data[i%len(data)])
		}
		for i := range b {
			b[i] = data[(i*7+3)%len(data)]
		}
		acc := make([]int32, m*n)
		GemmInt8DotInto(acc, a, b, m, n, kp)
		// Exactness vs float64.
		for i := 0; i < m; i++ {
			var rowSum int32
			for k := 0; k < kp; k++ {
				rowSum += int32(a[i*kp+k])
			}
			out := make([]float32, n)
			RequantizeI32Row(out, acc[i*n:(i+1)*n], scale, int32(zp)*rowSum, 0)
			for j := 0; j < n; j++ {
				var want float64
				for k := 0; k < kp; k++ {
					want += float64(a[i*kp+k]) * (float64(b[j*kp+k]) - float64(zp))
				}
				want *= float64(scale)
				got := float64(out[j])
				tol := math.Max(1e-3, math.Abs(want)*1e-5)
				if math.Abs(got-want) > tol {
					t.Fatalf("requant[%d][%d] = %g, want %g", i, j, got, want)
				}
			}
		}
	})
}

func isFinite(x float32) bool {
	return !math.IsNaN(float64(x)) && !math.IsInf(float64(x), 0)
}

package tensor

import (
	"math/bits"
	"sync"
)

// Scratch-buffer arena. The compute kernels (GEMM packing, im2col columns)
// need short-lived float32 slices on every forward call; allocating them
// fresh puts the garbage collector on the inference hot path. Buffers are
// recycled through size-bucketed sync.Pools instead: bucket b holds slices
// with capacity exactly 1<<b, so a Get never returns a buffer more than 2×
// the request and a Put always knows its bucket.
//
// The pools store *[]float32 rather than []float32 so that neither Get nor
// Put converts a slice header to an interface (which would heap-allocate
// and defeat the point). The pointer shells themselves are recycled through
// a second pool.

const maxBucket = 31

var (
	bufPools [maxBucket + 1]sync.Pool
	shells   = sync.Pool{New: func() any { return new([]float32) }}
)

// bucketFor returns the bucket index whose capacity (1<<b) is the smallest
// power of two >= n.
func bucketFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// GetBuf returns a float32 scratch slice of length n with unspecified
// contents. Pair it with PutBuf when done; losing a buffer is safe (the GC
// reclaims it) but wastes the recycling.
func GetBuf(n int) []float32 {
	if n < 0 {
		panic("tensor: GetBuf negative size")
	}
	b := bucketFor(n)
	if b > maxBucket {
		return make([]float32, n)
	}
	if v := bufPools[b].Get(); v != nil {
		p := v.(*[]float32)
		s := *p
		*p = nil
		shells.Put(p)
		return s[:n]
	}
	return make([]float32, n, 1<<b)
}

// GetBufZeroed returns a zero-filled scratch slice of length n.
func GetBufZeroed(n int) []float32 {
	s := GetBuf(n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// PutBuf recycles a buffer obtained from GetBuf. Only exact power-of-two
// capacities are accepted (anything else came from somewhere other than
// GetBuf and is silently dropped). The caller must not use buf afterwards.
func PutBuf(buf []float32) {
	c := cap(buf)
	if c == 0 || c&(c-1) != 0 || bits.Len(uint(c))-1 > maxBucket {
		return
	}
	p := shells.Get().(*[]float32)
	*p = buf[:0:c]
	bufPools[bits.Len(uint(c))-1].Put(p)
}

// Byte-buffer arena. The wire path (frame payloads, boundary-codec output)
// needs short-lived []byte scratch on every tile exchange; it recycles
// through the same size-bucketed scheme as the float32 pools.

var (
	bytePools  [maxBucket + 1]sync.Pool
	byteShells = sync.Pool{New: func() any { return new([]byte) }}
)

// GetBytes returns a byte scratch slice of length n with unspecified
// contents. Pair it with PutBytes when done; losing a buffer is safe (the
// GC reclaims it) but wastes the recycling.
func GetBytes(n int) []byte {
	if n < 0 {
		panic("tensor: GetBytes negative size")
	}
	b := bucketFor(n)
	if b > maxBucket {
		return make([]byte, n)
	}
	if v := bytePools[b].Get(); v != nil {
		p := v.(*[]byte)
		s := *p
		*p = nil
		byteShells.Put(p)
		return s[:n]
	}
	return make([]byte, n, 1<<b)
}

// PutBytes recycles a buffer obtained from GetBytes. Only exact
// power-of-two capacities are accepted (anything else came from somewhere
// other than GetBytes and is silently dropped). The caller must not use
// buf afterwards.
func PutBytes(buf []byte) {
	c := cap(buf)
	if c == 0 || c&(c-1) != 0 || bits.Len(uint(c))-1 > maxBucket {
		return
	}
	p := byteShells.Get().(*[]byte)
	*p = buf[:0:c]
	bytePools[bits.Len(uint(c))-1].Put(p)
}

// Int32 arena for the int8 GEMM accumulators, recycled through the same
// size-bucketed scheme as the float32 and byte pools.

var (
	i32Pools  [maxBucket + 1]sync.Pool
	i32Shells = sync.Pool{New: func() any { return new([]int32) }}
)

// GetI32 returns an int32 scratch slice of length n with unspecified
// contents. Pair it with PutI32 when done.
func GetI32(n int) []int32 {
	if n < 0 {
		panic("tensor: GetI32 negative size")
	}
	b := bucketFor(n)
	if b > maxBucket {
		return make([]int32, n)
	}
	if v := i32Pools[b].Get(); v != nil {
		p := v.(*[]int32)
		s := *p
		*p = nil
		i32Shells.Put(p)
		return s[:n]
	}
	return make([]int32, n, 1<<b)
}

// PutI32 recycles a buffer obtained from GetI32. Only exact power-of-two
// capacities are accepted. The caller must not use buf afterwards.
func PutI32(buf []int32) {
	c := cap(buf)
	if c == 0 || c&(c-1) != 0 || bits.Len(uint(c))-1 > maxBucket {
		return
	}
	p := i32Shells.Get().(*[]int32)
	*p = buf[:0:c]
	i32Pools[bits.Len(uint(c))-1].Put(p)
}

// GetTensor returns a tensor with pooled backing storage and unspecified
// contents. Release it with PutTensor. The Tensor header itself is a fresh
// allocation; callers on a zero-alloc path should hold raw slices instead.
func GetTensor(shape ...int) *Tensor {
	n := Volume(shape)
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: GetBuf(n)}
}

// PutTensor recycles a tensor's backing storage obtained from GetTensor.
// The tensor (and any views sharing its data) must not be used afterwards.
func PutTensor(t *Tensor) {
	if t == nil {
		return
	}
	PutBuf(t.Data)
	t.Data = nil
}

//go:build !amd64 || noasm

package tensor

// int8Dot2x4 routes to the portable kernel.
func int8Dot2x4(dst *[8]int32, a0, a1 []int8, b0, b1, b2, b3 []uint8, kp int) {
	int8Dot2x4Generic(dst, a0, a1, b0, b1, b2, b3, kp)
}

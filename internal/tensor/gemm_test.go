package tensor

import (
	"math/rand"
	"runtime"
	"testing"
)

// maxAbsDiff returns the largest elementwise |a-b|.
func maxAbsDiff(t *testing.T, got, want *Tensor) float64 {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("shape mismatch: got %v, want %v", got.Shape, want.Shape)
	}
	var m float64
	for i, v := range got.Data {
		d := float64(v - want.Data[i])
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// gemmTol is the accumulated-rounding tolerance for float32 products with
// operands in [-1,1]: proportional to the reduction depth.
func gemmTol(k int) float64 { return 1e-6 * float64(k+1) * 8 }

func randMat(rng *rand.Rand, r, c int) *Tensor {
	t := New(r, c)
	t.RandU(rng, -1, 1)
	return t
}

// TestGemmMatchesReference is the blocked-vs-naive property test: the
// blocked engine must agree with the retained reference kernels on
// randomized shapes, including shapes not divisible by the register tile
// (4) or the cache blocks (128/512), shapes with zero-size edges, and
// shapes straddling the parallel threshold.
func TestGemmMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		// zero-size edges
		{0, 5, 7}, {5, 0, 7}, {5, 7, 0}, {0, 0, 0},
		// minimal and remainder-heavy shapes
		{1, 1, 1}, {3, 3, 3}, {5, 6, 7}, {4, 4, 4}, {7, 9, 11},
		// dot-path (m <= 8) and just past it for TransB
		{8, 33, 17}, {9, 33, 17},
		// register-tile remainders around multiples of 4
		{13, 21, 19}, {16, 20, 24}, {17, 21, 25},
		// cache-block boundaries (gemmKC=128, gemmNC=512)
		{6, 127, 30}, {6, 128, 30}, {6, 129, 30},
		{5, 40, 511}, {5, 40, 512}, {5, 40, 513},
		{12, 130, 515},
		// large enough to cross the parallel threshold
		{64, 80, 128}, {130, 64, 96},
	}
	for i := 0; i < 25; i++ {
		shapes = append(shapes, [3]int{1 + rng.Intn(70), 1 + rng.Intn(150), 1 + rng.Intn(90)})
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		tol := gemmTol(k)

		got := New(m, n)
		got.Fill(42) // stale contents must be overwritten
		MatMulInto(got, a, b)
		want := New(m, n)
		RefMatMulInto(want, a, b)
		if d := maxAbsDiff(t, got, want); d > tol {
			t.Errorf("MatMulInto (%d,%d,%d): max |diff| = %g > %g", m, k, n, d, tol)
		}

		at := randMat(rng, k, m) // A stored transposed: [k,m]
		gotTA := MatMulTransA(at, b)
		wantTA := RefMatMulTransA(at, b)
		if d := maxAbsDiff(t, gotTA, wantTA); d > tol {
			t.Errorf("MatMulTransA (%d,%d,%d): max |diff| = %g > %g", m, k, n, d, tol)
		}

		bt := randMat(rng, n, k) // B stored transposed: [n,k]
		gotTB := MatMulTransB(a, bt)
		wantTB := RefMatMulTransB(a, bt)
		if d := maxAbsDiff(t, gotTB, wantTB); d > tol {
			t.Errorf("MatMulTransB (%d,%d,%d): max |diff| = %g > %g", m, k, n, d, tol)
		}
	}
}

// TestGemmParallelMatchesSerial forces multi-worker scheduling (the CI
// box may expose a single CPU, where GemmInto would otherwise always run
// inline) and checks the chunked row decomposition against the reference.
func TestGemmParallelMatchesSerial(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(13))
	for _, s := range [][3]int{{97, 120, 110}, {128, 128, 128}, {41, 300, 67}} {
		m, k, n := s[0], s[1], s[2]
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		got := New(m, n)
		MatMulInto(got, a, b)
		want := New(m, n)
		RefMatMulInto(want, a, b)
		if d := maxAbsDiff(t, got, want); d > gemmTol(k) {
			t.Errorf("parallel MatMulInto (%d,%d,%d): max |diff| = %g", m, k, n, d)
		}
	}
}

// TestGemmIntoSliceLevel exercises the raw-slice entry points directly,
// including operands longer than their logical shape (pooled buffers are
// usually oversized).
func TestGemmIntoSliceLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, k, n := 10, 23, 14
	a := randMat(rng, m, k)
	b := randMat(rng, k, n)
	want := New(m, n)
	RefMatMulInto(want, a, b)

	cbuf := make([]float32, m*n+13) // oversized, with poison tail
	for i := range cbuf {
		cbuf[i] = -99
	}
	abuf := append(append([]float32(nil), a.Data...), 7, 7, 7)
	bbuf := append(append([]float32(nil), b.Data...), 5, 5)
	GemmInto(cbuf, abuf, bbuf, m, k, n)
	for i := 0; i < m*n; i++ {
		d := float64(cbuf[i] - want.Data[i])
		if d < 0 {
			d = -d
		}
		if d > gemmTol(k) {
			t.Fatalf("GemmInto[%d] = %g, want %g", i, cbuf[i], want.Data[i])
		}
	}
	for i := m * n; i < len(cbuf); i++ {
		if cbuf[i] != -99 {
			t.Fatalf("GemmInto wrote past m*n at %d", i)
		}
	}
}

func TestGemmIntoPanicsOnShortOperands(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on short C")
		}
	}()
	GemmInto(make([]float32, 3), make([]float32, 4), make([]float32, 4), 2, 2, 2)
}

func TestMatMulUnchangedAPI(t *testing.T) {
	// MatMul still allocates and matches the references end to end.
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, 17, 29)
	b := randMat(rng, 29, 13)
	want := New(17, 13)
	RefMatMulInto(want, a, b)
	if d := maxAbsDiff(t, MatMul(a, b), want); d > gemmTol(29) {
		t.Fatalf("MatMul diverges from reference by %g", d)
	}
}

func TestIm2ColIntoMatchesIm2Col(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	geoms := []ConvGeom{
		{KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 0, PadW: 0},
		{KH: 1, KW: 1, StrideH: 1, StrideW: 1},
		{KH: 5, KW: 3, StrideH: 2, StrideW: 1, PadH: 2, PadW: 1},
	}
	for _, g := range geoms {
		x := New(3, 11, 9)
		x.RandU(rng, -1, 1)
		want := Im2Col(x, g)
		got := New(want.Shape...)
		got.Fill(-7) // stale pool contents must not leak through
		Im2ColInto(got, x, g)
		if !got.Equal(want, 0) {
			t.Errorf("Im2ColInto differs from Im2Col for geom %+v", g)
		}

		cols := want
		wantImg := Col2Im(cols, 3, 11, 9, g)
		gotImg := New(3, 11, 9)
		gotImg.Fill(13)
		Col2ImInto(gotImg, cols, g)
		if !gotImg.Equal(wantImg, 0) {
			t.Errorf("Col2ImInto differs from Col2Im for geom %+v", g)
		}
	}
}

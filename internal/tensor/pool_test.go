package tensor

import (
	"testing"
)

func TestBucketFor(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := bucketFor(n); got != want {
			t.Errorf("bucketFor(%d) = %d, want %d", n, got, want)
		}
		if n > 0 && 1<<bucketFor(n) < n {
			t.Errorf("bucket capacity 1<<%d < %d", bucketFor(n), n)
		}
	}
}

func TestGetPutBufRoundTrip(t *testing.T) {
	b := GetBuf(100)
	if len(b) != 100 {
		t.Fatalf("len = %d, want 100", len(b))
	}
	if cap(b) != 128 {
		t.Fatalf("cap = %d, want power-of-two 128", cap(b))
	}
	for i := range b {
		b[i] = float32(i)
	}
	PutBuf(b)
	// A recycled buffer must cover a smaller request from the same bucket.
	b2 := GetBuf(70)
	if len(b2) != 70 {
		t.Fatalf("len = %d, want 70", len(b2))
	}
	PutBuf(b2)
}

func TestPutBufRejectsForeignBuffers(t *testing.T) {
	// Non-power-of-two capacity (not from GetBuf) must be dropped, not
	// poison a bucket.
	PutBuf(make([]float32, 100))
	PutBuf(nil)
	b := GetBuf(100)
	if len(b) != 100 || cap(b)&(cap(b)-1) != 0 {
		t.Fatalf("pool returned foreign buffer: len %d cap %d", len(b), cap(b))
	}
}

func TestGetBufZeroed(t *testing.T) {
	b := GetBuf(64)
	for i := range b {
		b[i] = 3
	}
	PutBuf(b)
	z := GetBufZeroed(64)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetBufZeroed[%d] = %g", i, v)
		}
	}
	PutBuf(z)
}

func TestGetPutTensor(t *testing.T) {
	x := GetTensor(3, 4)
	if x.Len() != 12 || x.Shape[0] != 3 || x.Shape[1] != 4 {
		t.Fatalf("GetTensor shape %v len %d", x.Shape, x.Len())
	}
	x.Fill(1)
	PutTensor(x)
	if x.Data != nil {
		t.Fatal("PutTensor must detach the data slice")
	}
	PutTensor(nil) // must not panic
}

func TestGetBufAllocFree(t *testing.T) {
	// Steady-state Get/Put cycles must not allocate: that is the whole
	// point of the pool on the inference hot path.
	GetBuf(1 << 12) // prime the bucket's first make
	allocs := testing.AllocsPerRun(200, func() {
		b := GetBuf(1 << 12)
		PutBuf(b)
	})
	// Tolerate sub-1 noise: a GC sweep may empty the sync.Pool mid-run.
	if allocs >= 0.5 {
		t.Fatalf("GetBuf/PutBuf allocates %v per cycle, want 0", allocs)
	}
}

func TestGetPutBytesRoundTrip(t *testing.T) {
	b := GetBytes(100)
	if len(b) != 100 {
		t.Fatalf("len = %d, want 100", len(b))
	}
	if cap(b) != 128 {
		t.Fatalf("cap = %d, want power-of-two 128", cap(b))
	}
	for i := range b {
		b[i] = byte(i)
	}
	PutBytes(b)
	b2 := GetBytes(70)
	if len(b2) != 70 {
		t.Fatalf("len = %d, want 70", len(b2))
	}
	PutBytes(b2)
}

func TestPutBytesRejectsForeignBuffers(t *testing.T) {
	PutBytes(make([]byte, 100))
	PutBytes(nil)
	b := GetBytes(100)
	if len(b) != 100 || cap(b)&(cap(b)-1) != 0 {
		t.Fatalf("pool returned foreign buffer: len %d cap %d", len(b), cap(b))
	}
}

func TestGetBytesAllocFree(t *testing.T) {
	GetBytes(1 << 12) // prime the bucket's first make
	allocs := testing.AllocsPerRun(200, func() {
		b := GetBytes(1 << 12)
		PutBytes(b)
	})
	// Tolerate sub-1 noise: a GC sweep may empty the sync.Pool mid-run.
	if allocs >= 0.5 {
		t.Fatalf("GetBytes/PutBytes allocates %v per cycle, want 0", allocs)
	}
}

package tensor

import "testing"

func benchTier(b *testing.B, t KernelTier) {
	if err := SetKernelTier(t); err != nil {
		b.Skip(err)
	}
	defer SetKernelTier(DetectedKernelTier())
	const s = 256
	a := New(s, s)
	bb := New(s, s)
	c := New(s, s)
	b.SetBytes(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmInto(c.Data, a.Data, bb.Data, s, s, s)
	}
}

func BenchmarkGemmTierSSE(b *testing.B)    { benchTier(b, TierSSE) }
func BenchmarkGemmTierAVX2(b *testing.B)   { benchTier(b, TierAVX2) }
func BenchmarkGemmTierAVX512(b *testing.B) { benchTier(b, TierAVX512) }

//go:build amd64 && !noasm

#include "textflag.h"

// func int8DotKernel2x4AVX2(dst *[8]int32, a0, a1 *int8, b0, b1, b2, b3 *uint8, kp int)
//
// Eight dot products between two int8 weight rows and four uint8
// activation columns, kp a multiple of 16. Per iteration: 16 bytes of
// each operand row are widened to 16-bit words (VPMOVSXBW for the
// signed weights, VPMOVZXBW for the unsigned activations), then
// VPMADDWD multiplies word pairs and adds them into 8 int32 lanes —
// exact, since |s8·u8| ≤ 32640 and a pair sum ≤ 65280 fits int32.
// That retires 128 multiply-adds per iteration against six 16-byte
// loads. The eight YMM accumulators are horizontally reduced at the
// end.
TEXT ·int8DotKernel2x4AVX2(SB), NOSPLIT, $0-64
	MOVQ dst+0(FP), DI
	MOVQ a0+8(FP), AX
	MOVQ a1+16(FP), BX
	MOVQ b0+24(FP), R8
	MOVQ b1+32(FP), R9
	MOVQ b2+40(FP), R10
	MOVQ b3+48(FP), R11
	MOVQ kp+56(FP), CX

	VPXOR Y0, Y0, Y0 // row0·b0
	VPXOR Y1, Y1, Y1 // row0·b1
	VPXOR Y2, Y2, Y2 // row0·b2
	VPXOR Y3, Y3, Y3 // row0·b3
	VPXOR Y4, Y4, Y4 // row1·b0
	VPXOR Y5, Y5, Y5 // row1·b1
	VPXOR Y6, Y6, Y6 // row1·b2
	VPXOR Y7, Y7, Y7 // row1·b3

	XORQ DX, DX // byte offset into the packed rows
	SHRQ $4, CX // iterations = kp/16
	JZ   reduce

loop:
	VPMOVSXBW (AX)(DX*1), Y8   // a0: 16×s8 → 16×s16
	VPMOVSXBW (BX)(DX*1), Y9   // a1
	VPMOVZXBW (R8)(DX*1), Y10  // b0: 16×u8 → 16×s16 (0..255)
	VPMOVZXBW (R9)(DX*1), Y11  // b1
	VPMOVZXBW (R10)(DX*1), Y12 // b2
	VPMOVZXBW (R11)(DX*1), Y13 // b3

	VPMADDWD Y10, Y8, Y14
	VPADDD   Y14, Y0, Y0
	VPMADDWD Y11, Y8, Y14
	VPADDD   Y14, Y1, Y1
	VPMADDWD Y12, Y8, Y14
	VPADDD   Y14, Y2, Y2
	VPMADDWD Y13, Y8, Y14
	VPADDD   Y14, Y3, Y3
	VPMADDWD Y10, Y9, Y14
	VPADDD   Y14, Y4, Y4
	VPMADDWD Y11, Y9, Y14
	VPADDD   Y14, Y5, Y5
	VPMADDWD Y12, Y9, Y14
	VPADDD   Y14, Y6, Y6
	VPMADDWD Y13, Y9, Y14
	VPADDD   Y14, Y7, Y7

	ADDQ $16, DX
	DECQ CX
	JNZ  loop

reduce:
	// Horizontal sum of each YMM accumulator: fold the upper 128-bit
	// lane, then the 64-bit halves, then the 32-bit pair.
	VEXTRACTI128 $1, Y0, X14
	VPADDD       X14, X0, X0
	VPSHUFD      $0x4E, X0, X14
	VPADDD       X14, X0, X0
	VPSHUFD      $0xB1, X0, X14
	VPADDD       X14, X0, X0
	VMOVD        X0, 0(DI)

	VEXTRACTI128 $1, Y1, X14
	VPADDD       X14, X1, X1
	VPSHUFD      $0x4E, X1, X14
	VPADDD       X14, X1, X1
	VPSHUFD      $0xB1, X1, X14
	VPADDD       X14, X1, X1
	VMOVD        X1, 4(DI)

	VEXTRACTI128 $1, Y2, X14
	VPADDD       X14, X2, X2
	VPSHUFD      $0x4E, X2, X14
	VPADDD       X14, X2, X2
	VPSHUFD      $0xB1, X2, X14
	VPADDD       X14, X2, X2
	VMOVD        X2, 8(DI)

	VEXTRACTI128 $1, Y3, X14
	VPADDD       X14, X3, X3
	VPSHUFD      $0x4E, X3, X14
	VPADDD       X14, X3, X3
	VPSHUFD      $0xB1, X3, X14
	VPADDD       X14, X3, X3
	VMOVD        X3, 12(DI)

	VEXTRACTI128 $1, Y4, X14
	VPADDD       X14, X4, X4
	VPSHUFD      $0x4E, X4, X14
	VPADDD       X14, X4, X4
	VPSHUFD      $0xB1, X4, X14
	VPADDD       X14, X4, X4
	VMOVD        X4, 16(DI)

	VEXTRACTI128 $1, Y5, X14
	VPADDD       X14, X5, X5
	VPSHUFD      $0x4E, X5, X14
	VPADDD       X14, X5, X5
	VPSHUFD      $0xB1, X5, X14
	VPADDD       X14, X5, X5
	VMOVD        X5, 20(DI)

	VEXTRACTI128 $1, Y6, X14
	VPADDD       X14, X6, X6
	VPSHUFD      $0x4E, X6, X14
	VPADDD       X14, X6, X6
	VPSHUFD      $0xB1, X6, X14
	VPADDD       X14, X6, X6
	VMOVD        X6, 24(DI)

	VEXTRACTI128 $1, Y7, X14
	VPADDD       X14, X7, X7
	VPSHUFD      $0x4E, X7, X14
	VPADDD       X14, X7, X7
	VPSHUFD      $0xB1, X7, X14
	VPADDD       X14, X7, X7
	VMOVD        X7, 28(DI)

	VZEROUPPER
	RET

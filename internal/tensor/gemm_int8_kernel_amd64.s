//go:build amd64 && !noasm

#include "textflag.h"

// func int8DotKernel2x4AVX2(dst *[8]int32, a0, a1 *int8, b0, b1, b2, b3 *uint8, kp int)
//
// Eight dot products between two int8 weight rows and four uint8
// activation columns, kp a multiple of 16. Per iteration: 16 bytes of
// each operand row are widened to 16-bit words (VPMOVSXBW for the
// signed weights, VPMOVZXBW for the unsigned activations), then
// VPMADDWD multiplies word pairs and adds them into 8 int32 lanes —
// exact, since |s8·u8| ≤ 32640 and a pair sum ≤ 65280 fits int32.
// That retires 128 multiply-adds per iteration against six 16-byte
// loads. The eight YMM accumulators are horizontally reduced at the
// end.
TEXT ·int8DotKernel2x4AVX2(SB), NOSPLIT, $0-64
	MOVQ dst+0(FP), DI
	MOVQ a0+8(FP), AX
	MOVQ a1+16(FP), BX
	MOVQ b0+24(FP), R8
	MOVQ b1+32(FP), R9
	MOVQ b2+40(FP), R10
	MOVQ b3+48(FP), R11
	MOVQ kp+56(FP), CX

	VPXOR Y0, Y0, Y0 // row0·b0
	VPXOR Y1, Y1, Y1 // row0·b1
	VPXOR Y2, Y2, Y2 // row0·b2
	VPXOR Y3, Y3, Y3 // row0·b3
	VPXOR Y4, Y4, Y4 // row1·b0
	VPXOR Y5, Y5, Y5 // row1·b1
	VPXOR Y6, Y6, Y6 // row1·b2
	VPXOR Y7, Y7, Y7 // row1·b3

	XORQ DX, DX // byte offset into the packed rows
	SHRQ $4, CX // iterations = kp/16
	JZ   reduce

loop:
	VPMOVSXBW (AX)(DX*1), Y8   // a0: 16×s8 → 16×s16
	VPMOVSXBW (BX)(DX*1), Y9   // a1
	VPMOVZXBW (R8)(DX*1), Y10  // b0: 16×u8 → 16×s16 (0..255)
	VPMOVZXBW (R9)(DX*1), Y11  // b1
	VPMOVZXBW (R10)(DX*1), Y12 // b2
	VPMOVZXBW (R11)(DX*1), Y13 // b3

	VPMADDWD Y10, Y8, Y14
	VPADDD   Y14, Y0, Y0
	VPMADDWD Y11, Y8, Y14
	VPADDD   Y14, Y1, Y1
	VPMADDWD Y12, Y8, Y14
	VPADDD   Y14, Y2, Y2
	VPMADDWD Y13, Y8, Y14
	VPADDD   Y14, Y3, Y3
	VPMADDWD Y10, Y9, Y14
	VPADDD   Y14, Y4, Y4
	VPMADDWD Y11, Y9, Y14
	VPADDD   Y14, Y5, Y5
	VPMADDWD Y12, Y9, Y14
	VPADDD   Y14, Y6, Y6
	VPMADDWD Y13, Y9, Y14
	VPADDD   Y14, Y7, Y7

	ADDQ $16, DX
	DECQ CX
	JNZ  loop

reduce:
	// Horizontal sum of each YMM accumulator: fold the upper 128-bit
	// lane, then the 64-bit halves, then the 32-bit pair.
	VEXTRACTI128 $1, Y0, X14
	VPADDD       X14, X0, X0
	VPSHUFD      $0x4E, X0, X14
	VPADDD       X14, X0, X0
	VPSHUFD      $0xB1, X0, X14
	VPADDD       X14, X0, X0
	VMOVD        X0, 0(DI)

	VEXTRACTI128 $1, Y1, X14
	VPADDD       X14, X1, X1
	VPSHUFD      $0x4E, X1, X14
	VPADDD       X14, X1, X1
	VPSHUFD      $0xB1, X1, X14
	VPADDD       X14, X1, X1
	VMOVD        X1, 4(DI)

	VEXTRACTI128 $1, Y2, X14
	VPADDD       X14, X2, X2
	VPSHUFD      $0x4E, X2, X14
	VPADDD       X14, X2, X2
	VPSHUFD      $0xB1, X2, X14
	VPADDD       X14, X2, X2
	VMOVD        X2, 8(DI)

	VEXTRACTI128 $1, Y3, X14
	VPADDD       X14, X3, X3
	VPSHUFD      $0x4E, X3, X14
	VPADDD       X14, X3, X3
	VPSHUFD      $0xB1, X3, X14
	VPADDD       X14, X3, X3
	VMOVD        X3, 12(DI)

	VEXTRACTI128 $1, Y4, X14
	VPADDD       X14, X4, X4
	VPSHUFD      $0x4E, X4, X14
	VPADDD       X14, X4, X4
	VPSHUFD      $0xB1, X4, X14
	VPADDD       X14, X4, X4
	VMOVD        X4, 16(DI)

	VEXTRACTI128 $1, Y5, X14
	VPADDD       X14, X5, X5
	VPSHUFD      $0x4E, X5, X14
	VPADDD       X14, X5, X5
	VPSHUFD      $0xB1, X5, X14
	VPADDD       X14, X5, X5
	VMOVD        X5, 20(DI)

	VEXTRACTI128 $1, Y6, X14
	VPADDD       X14, X6, X6
	VPSHUFD      $0x4E, X6, X14
	VPADDD       X14, X6, X6
	VPSHUFD      $0xB1, X6, X14
	VPADDD       X14, X6, X6
	VMOVD        X6, 24(DI)

	VEXTRACTI128 $1, Y7, X14
	VPADDD       X14, X7, X7
	VPSHUFD      $0x4E, X7, X14
	VPADDD       X14, X7, X7
	VPSHUFD      $0xB1, X7, X14
	VPADDD       X14, X7, X7
	VMOVD        X7, 28(DI)

	VZEROUPPER
	RET

// func int8DotKernel2x4AVX512(dst *[8]int32, a0, a1 *int8, b0, b1, b2, b3 *uint8, kp int)
//
// The AVX2 kernel above widened to ZMM: 32 bytes of each operand row
// per step (VPMOVSXBW/VPMOVZXBW widen a 32-byte load into 32 words,
// VPMADDWD pairs them into 16 int32 lanes — still exact), retiring 256
// multiply-adds per iteration. kp is a multiple of 16; the ZMM
// accumulators are folded to YMM *before* a kp≡16 (mod 32) remainder
// runs its YMM step, because an AVX-512 write to a YMM register zeroes
// the upper half of the corresponding ZMM — adding the tail into Y0
// first would silently discard the main loop's upper lanes.
TEXT ·int8DotKernel2x4AVX512(SB), NOSPLIT, $0-64
	MOVQ dst+0(FP), DI
	MOVQ a0+8(FP), AX
	MOVQ a1+16(FP), BX
	MOVQ b0+24(FP), R8
	MOVQ b1+32(FP), R9
	MOVQ b2+40(FP), R10
	MOVQ b3+48(FP), R11
	MOVQ kp+56(FP), CX

	VPXORQ Z0, Z0, Z0 // row0·b0
	VPXORQ Z1, Z1, Z1 // row0·b1
	VPXORQ Z2, Z2, Z2 // row0·b2
	VPXORQ Z3, Z3, Z3 // row0·b3
	VPXORQ Z4, Z4, Z4 // row1·b0
	VPXORQ Z5, Z5, Z5 // row1·b1
	VPXORQ Z6, Z6, Z6 // row1·b2
	VPXORQ Z7, Z7, Z7 // row1·b3

	XORQ DX, DX // byte offset into the packed rows
	MOVQ CX, R12
	SHRQ $5, R12 // 32-byte iterations = kp/32
	JZ   fold256

loop32:
	VPMOVSXBW (AX)(DX*1), Z8   // a0: 32×s8 → 32×s16
	VPMOVSXBW (BX)(DX*1), Z9   // a1
	VPMOVZXBW (R8)(DX*1), Z10  // b0: 32×u8 → 32×s16 (0..255)
	VPMOVZXBW (R9)(DX*1), Z11  // b1
	VPMOVZXBW (R10)(DX*1), Z12 // b2
	VPMOVZXBW (R11)(DX*1), Z13 // b3

	VPMADDWD Z10, Z8, Z14
	VPADDD   Z14, Z0, Z0
	VPMADDWD Z11, Z8, Z14
	VPADDD   Z14, Z1, Z1
	VPMADDWD Z12, Z8, Z14
	VPADDD   Z14, Z2, Z2
	VPMADDWD Z13, Z8, Z14
	VPADDD   Z14, Z3, Z3
	VPMADDWD Z10, Z9, Z14
	VPADDD   Z14, Z4, Z4
	VPMADDWD Z11, Z9, Z14
	VPADDD   Z14, Z5, Z5
	VPMADDWD Z12, Z9, Z14
	VPADDD   Z14, Z6, Z6
	VPMADDWD Z13, Z9, Z14
	VPADDD   Z14, Z7, Z7

	ADDQ $32, DX
	DECQ R12
	JNZ  loop32

fold256:
	// Fold each ZMM accumulator's upper 256-bit half onto the lower.
	// From here on only the YMM halves are live, so the tail step's
	// upper-zeroing YMM writes are harmless.
	VEXTRACTI64X4 $1, Z0, Y14
	VPADDD        Y14, Y0, Y0
	VEXTRACTI64X4 $1, Z1, Y14
	VPADDD        Y14, Y1, Y1
	VEXTRACTI64X4 $1, Z2, Y14
	VPADDD        Y14, Y2, Y2
	VEXTRACTI64X4 $1, Z3, Y14
	VPADDD        Y14, Y3, Y3
	VEXTRACTI64X4 $1, Z4, Y14
	VPADDD        Y14, Y4, Y4
	VEXTRACTI64X4 $1, Z5, Y14
	VPADDD        Y14, Y5, Y5
	VEXTRACTI64X4 $1, Z6, Y14
	VPADDD        Y14, Y6, Y6
	VEXTRACTI64X4 $1, Z7, Y14
	VPADDD        Y14, Y7, Y7

	TESTQ $16, CX // a 16-byte remainder?
	JZ    reduce512

	VPMOVSXBW (AX)(DX*1), Y8
	VPMOVSXBW (BX)(DX*1), Y9
	VPMOVZXBW (R8)(DX*1), Y10
	VPMOVZXBW (R9)(DX*1), Y11
	VPMOVZXBW (R10)(DX*1), Y12
	VPMOVZXBW (R11)(DX*1), Y13

	VPMADDWD Y10, Y8, Y14
	VPADDD   Y14, Y0, Y0
	VPMADDWD Y11, Y8, Y14
	VPADDD   Y14, Y1, Y1
	VPMADDWD Y12, Y8, Y14
	VPADDD   Y14, Y2, Y2
	VPMADDWD Y13, Y8, Y14
	VPADDD   Y14, Y3, Y3
	VPMADDWD Y10, Y9, Y14
	VPADDD   Y14, Y4, Y4
	VPMADDWD Y11, Y9, Y14
	VPADDD   Y14, Y5, Y5
	VPMADDWD Y12, Y9, Y14
	VPADDD   Y14, Y6, Y6
	VPMADDWD Y13, Y9, Y14
	VPADDD   Y14, Y7, Y7

reduce512:
	// Reduce the YMM halves exactly like the AVX2 kernel.
	VEXTRACTI128 $1, Y0, X14
	VPADDD       X14, X0, X0
	VPSHUFD      $0x4E, X0, X14
	VPADDD       X14, X0, X0
	VPSHUFD      $0xB1, X0, X14
	VPADDD       X14, X0, X0
	VMOVD        X0, 0(DI)

	VEXTRACTI128 $1, Y1, X14
	VPADDD       X14, X1, X1
	VPSHUFD      $0x4E, X1, X14
	VPADDD       X14, X1, X1
	VPSHUFD      $0xB1, X1, X14
	VPADDD       X14, X1, X1
	VMOVD        X1, 4(DI)

	VEXTRACTI128 $1, Y2, X14
	VPADDD       X14, X2, X2
	VPSHUFD      $0x4E, X2, X14
	VPADDD       X14, X2, X2
	VPSHUFD      $0xB1, X2, X14
	VPADDD       X14, X2, X2
	VMOVD        X2, 8(DI)

	VEXTRACTI128 $1, Y3, X14
	VPADDD       X14, X3, X3
	VPSHUFD      $0x4E, X3, X14
	VPADDD       X14, X3, X3
	VPSHUFD      $0xB1, X3, X14
	VPADDD       X14, X3, X3
	VMOVD        X3, 12(DI)

	VEXTRACTI128 $1, Y4, X14
	VPADDD       X14, X4, X4
	VPSHUFD      $0x4E, X4, X14
	VPADDD       X14, X4, X4
	VPSHUFD      $0xB1, X4, X14
	VPADDD       X14, X4, X4
	VMOVD        X4, 16(DI)

	VEXTRACTI128 $1, Y5, X14
	VPADDD       X14, X5, X5
	VPSHUFD      $0x4E, X5, X14
	VPADDD       X14, X5, X5
	VPSHUFD      $0xB1, X5, X14
	VPADDD       X14, X5, X5
	VMOVD        X5, 20(DI)

	VEXTRACTI128 $1, Y6, X14
	VPADDD       X14, X6, X6
	VPSHUFD      $0x4E, X6, X14
	VPADDD       X14, X6, X6
	VPSHUFD      $0xB1, X6, X14
	VPADDD       X14, X6, X6
	VMOVD        X6, 24(DI)

	VEXTRACTI128 $1, Y7, X14
	VPADDD       X14, X7, X7
	VPSHUFD      $0x4E, X7, X14
	VPADDD       X14, X7, X7
	VPSHUFD      $0xB1, X7, X14
	VPADDD       X14, X7, X7
	VMOVD        X7, 28(DI)

	VZEROUPPER
	RET

// func int8DotKernel2x4VNNI(dst *[8]int32, a0, a1 *int8, b0, b1, b2, b3 *uint8, kp int)
//
// The VNNI variant: VPDPBUSD multiplies 64 unsigned activation bytes
// against 64 signed weight bytes and accumulates quads directly into
// the 16 int32 lanes — one instruction where the widening kernel needs
// three, 512 multiply-adds per iteration, and still exact (each quad
// sum ≤ 4·32640 and the lane totals stay inside int32 for kp ≤
// int8MaxKP; this is the non-saturating VPDPBUSD, not VPDPBUSDS). kp
// is a multiple of 16; the ZMM accumulators are folded down to XMM
// before the ≤48-byte remainder runs its 16-byte XMM steps — an XMM
// write zeroes the rest of the ZMM, so folding must come first.
TEXT ·int8DotKernel2x4VNNI(SB), NOSPLIT, $0-64
	MOVQ dst+0(FP), DI
	MOVQ a0+8(FP), AX
	MOVQ a1+16(FP), BX
	MOVQ b0+24(FP), R8
	MOVQ b1+32(FP), R9
	MOVQ b2+40(FP), R10
	MOVQ b3+48(FP), R11
	MOVQ kp+56(FP), CX

	VPXORQ Z0, Z0, Z0 // row0·b0
	VPXORQ Z1, Z1, Z1 // row0·b1
	VPXORQ Z2, Z2, Z2 // row0·b2
	VPXORQ Z3, Z3, Z3 // row0·b3
	VPXORQ Z4, Z4, Z4 // row1·b0
	VPXORQ Z5, Z5, Z5 // row1·b1
	VPXORQ Z6, Z6, Z6 // row1·b2
	VPXORQ Z7, Z7, Z7 // row1·b3

	XORQ DX, DX // byte offset into the packed rows
	MOVQ CX, R12
	SHRQ $6, R12 // 64-byte iterations = kp/64
	JZ   vfold

loop64:
	VMOVDQU8 (AX)(DX*1), Z8   // a0: 64×s8
	VMOVDQU8 (BX)(DX*1), Z9   // a1
	VMOVDQU8 (R8)(DX*1), Z10  // b0: 64×u8
	VMOVDQU8 (R9)(DX*1), Z11  // b1
	VMOVDQU8 (R10)(DX*1), Z12 // b2
	VMOVDQU8 (R11)(DX*1), Z13 // b3

	VPDPBUSD Z8, Z10, Z0 // acc += u8(b)·s8(a), quads per lane
	VPDPBUSD Z8, Z11, Z1
	VPDPBUSD Z8, Z12, Z2
	VPDPBUSD Z8, Z13, Z3
	VPDPBUSD Z9, Z10, Z4
	VPDPBUSD Z9, Z11, Z5
	VPDPBUSD Z9, Z12, Z6
	VPDPBUSD Z9, Z13, Z7

	ADDQ $64, DX
	DECQ R12
	JNZ  loop64

vfold:
	// Fold each ZMM accumulator down to its XMM quarter (upper 256,
	// then upper 128) so the XMM tail steps can add in place.
	VEXTRACTI64X4 $1, Z0, Y14
	VPADDD        Y14, Y0, Y0
	VEXTRACTI128  $1, Y0, X14
	VPADDD        X14, X0, X0
	VEXTRACTI64X4 $1, Z1, Y14
	VPADDD        Y14, Y1, Y1
	VEXTRACTI128  $1, Y1, X14
	VPADDD        X14, X1, X1
	VEXTRACTI64X4 $1, Z2, Y14
	VPADDD        Y14, Y2, Y2
	VEXTRACTI128  $1, Y2, X14
	VPADDD        X14, X2, X2
	VEXTRACTI64X4 $1, Z3, Y14
	VPADDD        Y14, Y3, Y3
	VEXTRACTI128  $1, Y3, X14
	VPADDD        X14, X3, X3
	VEXTRACTI64X4 $1, Z4, Y14
	VPADDD        Y14, Y4, Y4
	VEXTRACTI128  $1, Y4, X14
	VPADDD        X14, X4, X4
	VEXTRACTI64X4 $1, Z5, Y14
	VPADDD        Y14, Y5, Y5
	VEXTRACTI128  $1, Y5, X14
	VPADDD        X14, X5, X5
	VEXTRACTI64X4 $1, Z6, Y14
	VPADDD        Y14, Y6, Y6
	VEXTRACTI128  $1, Y6, X14
	VPADDD        X14, X6, X6
	VEXTRACTI64X4 $1, Z7, Y14
	VPADDD        Y14, Y7, Y7
	VEXTRACTI128  $1, Y7, X14
	VPADDD        X14, X7, X7

	MOVQ CX, R12
	ANDQ $63, R12 // remainder bytes: 0, 16, 32, or 48
	JZ   reducev
	SHRQ $4, R12  // 16-byte remainder steps

vtailloop:
	VMOVDQU (AX)(DX*1), X8
	VMOVDQU (BX)(DX*1), X9
	VMOVDQU (R8)(DX*1), X10
	VMOVDQU (R9)(DX*1), X11
	VMOVDQU (R10)(DX*1), X12
	VMOVDQU (R11)(DX*1), X13

	VPDPBUSD X8, X10, X0
	VPDPBUSD X8, X11, X1
	VPDPBUSD X8, X12, X2
	VPDPBUSD X8, X13, X3
	VPDPBUSD X9, X10, X4
	VPDPBUSD X9, X11, X5
	VPDPBUSD X9, X12, X6
	VPDPBUSD X9, X13, X7

	ADDQ $16, DX
	DECQ R12
	JNZ  vtailloop

reducev:
	// 128-bit horizontal sum of each accumulator: 64-bit halves, then
	// the 32-bit pair.
	VPSHUFD $0x4E, X0, X14
	VPADDD  X14, X0, X0
	VPSHUFD $0xB1, X0, X14
	VPADDD  X14, X0, X0
	VMOVD   X0, 0(DI)

	VPSHUFD $0x4E, X1, X14
	VPADDD  X14, X1, X1
	VPSHUFD $0xB1, X1, X14
	VPADDD  X14, X1, X1
	VMOVD   X1, 4(DI)

	VPSHUFD $0x4E, X2, X14
	VPADDD  X14, X2, X2
	VPSHUFD $0xB1, X2, X14
	VPADDD  X14, X2, X2
	VMOVD   X2, 8(DI)

	VPSHUFD $0x4E, X3, X14
	VPADDD  X14, X3, X3
	VPSHUFD $0xB1, X3, X14
	VPADDD  X14, X3, X3
	VMOVD   X3, 12(DI)

	VPSHUFD $0x4E, X4, X14
	VPADDD  X14, X4, X4
	VPSHUFD $0xB1, X4, X14
	VPADDD  X14, X4, X4
	VMOVD   X4, 16(DI)

	VPSHUFD $0x4E, X5, X14
	VPADDD  X14, X5, X5
	VPSHUFD $0xB1, X5, X14
	VPADDD  X14, X5, X5
	VMOVD   X5, 20(DI)

	VPSHUFD $0x4E, X6, X14
	VPADDD  X14, X6, X6
	VPSHUFD $0xB1, X6, X14
	VPADDD  X14, X6, X6
	VMOVD   X6, 24(DI)

	VPSHUFD $0x4E, X7, X14
	VPADDD  X14, X7, X7
	VPSHUFD $0xB1, X7, X14
	VPADDD  X14, X7, X7
	VMOVD   X7, 28(DI)

	VZEROUPPER
	RET

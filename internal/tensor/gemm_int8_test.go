package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randInt8(rng *rand.Rand, n int) []int8 {
	s := make([]int8, n)
	for i := range s {
		s[i] = int8(rng.Intn(256) - 128)
	}
	return s
}

func randUint8(rng *rand.Rand, n int) []uint8 {
	s := make([]uint8, n)
	for i := range s {
		s[i] = uint8(rng.Intn(256))
	}
	return s
}

// TestGemmInt8MatchesRef pins the tiled engine against the naive oracle
// over shapes that exercise the 2×4 tile, the odd-row and odd-column
// tails, and (on multi-core hosts) the parallel row chunking.
func TestGemmInt8MatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{1, 1, 16}, {2, 4, 16}, {3, 5, 32}, {4, 4, 48},
		{7, 9, 16}, {8, 31, 64}, {16, 16, 160}, {5, 2, 4592},
		{64, 256, 128}, // crosses the parallel threshold
	}
	for _, s := range shapes {
		m, n, kp := s[0], s[1], s[2]
		a := randInt8(rng, m*kp)
		b := randUint8(rng, n*kp)
		got := make([]int32, m*n)
		want := make([]int32, m*n)
		GemmInt8DotInto(got, a, b, m, n, kp)
		RefGemmInt8DotInto(want, a, b, m, n, kp)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shape %v: c[%d] = %d, want %d", s, i, got[i], want[i])
			}
		}
	}
}

func TestGemmInt8RejectsBadKP(t *testing.T) {
	for _, kp := range []int{0, 8, 17, int8MaxKP + 16} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("kp=%d: expected panic", kp)
				}
			}()
			GemmInt8DotInto(make([]int32, 1), make([]int8, kp), make([]uint8, kp), 1, 1, kp)
		}()
	}
}

// TestKernelTierParityInt8 is the build-tag matrix parity test: for every
// kernel tier reachable on this host, the dispatched int8 micro-kernel
// must produce accumulations identical to the always-compiled pure-Go
// kernel — int8×uint8→int32 is exact arithmetic, so any deviation is a
// kernel bug, not rounding.
func TestKernelTierParityInt8(t *testing.T) {
	detected := DetectedKernelTier()
	defer SetKernelTier(detected)
	rng := rand.New(rand.NewSource(11))
	for tier := TierGeneric; tier <= detected; tier++ {
		if err := SetKernelTier(tier); err != nil {
			t.Fatalf("SetKernelTier(%v): %v", tier, err)
		}
		for trial := 0; trial < 20; trial++ {
			kp := int8KStep * (1 + rng.Intn(40))
			a0 := randInt8(rng, kp)
			a1 := randInt8(rng, kp)
			b0 := randUint8(rng, kp)
			b1 := randUint8(rng, kp)
			b2 := randUint8(rng, kp)
			b3 := randUint8(rng, kp)
			var got, want [8]int32
			int8Dot2x4(&got, a0, a1, b0, b1, b2, b3, kp)
			int8Dot2x4Generic(&want, a0, a1, b0, b1, b2, b3, kp)
			if got != want {
				t.Fatalf("tier %v kp=%d: kernel %v, generic %v", tier, kp, got, want)
			}
		}
	}
}

// TestKernelTierParityF32 extends the matrix to the f32 kernels: the SSE
// kernel uses the same operation order as the generic one (bit-exact);
// the AVX2 kernel fuses multiply-adds, so it is pinned within a
// k-scaled tolerance instead.
func TestKernelTierParityF32(t *testing.T) {
	detected := DetectedKernelTier()
	defer SetKernelTier(detected)
	rng := rand.New(rand.NewSource(13))
	for tier := TierGeneric; tier <= detected; tier++ {
		if err := SetKernelTier(tier); err != nil {
			t.Fatalf("SetKernelTier(%v): %v", tier, err)
		}
		for trial := 0; trial < 20; trial++ {
			n := 4 * (1 + rng.Intn(32))
			mk := func() []float32 {
				s := make([]float32, n)
				for i := range s {
					s[i] = rng.Float32()*2 - 1
				}
				return s
			}
			b0, b1, b2, b3 := mk(), mk(), mk(), mk()
			var aq [8]float32
			for i := range aq {
				aq[i] = rng.Float32()*2 - 1
			}
			got := mk()
			want := append([]float32(nil), got...)
			c1got := mk()
			c1want := append([]float32(nil), c1got...)
			gemmAxpy2x4(got, c1got, b0, b1, b2, b3, &aq, n)
			gemmAxpy2x4Generic(want, c1want, b0, b1, b2, b3, &aq, n)
			for j := 0; j < n; j++ {
				d0 := math.Abs(float64(got[j] - want[j]))
				d1 := math.Abs(float64(c1got[j] - c1want[j]))
				if tier <= TierSSE && (d0 != 0 || d1 != 0) {
					t.Fatalf("tier %v n=%d j=%d: not bit-exact (%g, %g)", tier, n, j, d0, d1)
				}
				if d0 > 1e-5 || d1 > 1e-5 {
					t.Fatalf("tier %v n=%d j=%d: beyond tolerance (%g, %g)", tier, n, j, d0, d1)
				}
			}
		}
	}
}

func TestSetKernelTierRejectsAboveDetected(t *testing.T) {
	if err := SetKernelTier(DetectedKernelTier() + 1); err == nil {
		t.Fatal("expected error for tier above detected")
	}
	if err := SetKernelTier(KernelTier(-1)); err == nil {
		t.Fatal("expected error for negative tier")
	}
	if got := CurrentKernelTier(); got != DetectedKernelTier() {
		t.Fatalf("rejected SetKernelTier changed the tier to %v", got)
	}
}

// TestRequantizeI32Row checks the requantization identity against a
// float64 evaluation.
func TestRequantizeI32Row(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	acc := make([]int32, 33)
	for i := range acc {
		acc[i] = rng.Int31n(1<<20) - 1<<19
	}
	dst := make([]float32, len(acc))
	scale, corr, bias := float32(0.003), int32(1234), float32(-0.5)
	RequantizeI32Row(dst, acc, scale, corr, bias)
	for i := range dst {
		want := float64(scale)*float64(acc[i]-corr) + float64(bias)
		if math.Abs(float64(dst[i])-want) > 1e-4 {
			t.Fatalf("dst[%d] = %g, want %g", i, dst[i], want)
		}
	}
}

// TestGemmInt8VsF32Oracle quantizes a random f32 product and checks the
// int8 GEMM + requantization lands within the analytic quantization
// error bound of the f32 reference:
//
//	|y − ŷ| ≤ aErr·Σ_k|w[k]| + wErr·Σ_k|x̂[k]|
//
// with aErr the activation step (rounding ½ + zero-point grid shift ½)
// and wErr half the per-channel weight step.
func TestGemmInt8VsF32Oracle(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	m, n, k := 6, 9, 40
	kp := Int8KP(k)
	w := make([]float32, m*k)
	x := make([]float32, k*n)
	for i := range w {
		w[i] = rng.Float32()*2 - 1
	}
	for i := range x {
		x[i] = rng.Float32()*4 - 1
	}
	// f32 reference: y[i][j] = Σ_k w[i][k]·x[k][j].
	ref := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for kk := 0; kk < k; kk++ {
				s += float64(w[i*k+kk]) * float64(x[kk*n+j])
			}
			ref[i*n+j] = s
		}
	}
	// Per-channel symmetric weight quantization.
	wq := make([]int8, m*kp)
	wScale := make([]float32, m)
	rowSum := make([]int32, m)
	for i := 0; i < m; i++ {
		var maxAbs float32
		for kk := 0; kk < k; kk++ {
			if a := float32(math.Abs(float64(w[i*k+kk]))); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			maxAbs = 1
		}
		sc := maxAbs / 127
		wScale[i] = sc
		for kk := 0; kk < k; kk++ {
			q := int8(math.Round(float64(w[i*k+kk] / sc)))
			wq[i*kp+kk] = q
			rowSum[i] += int32(q)
		}
	}
	// Affine activation quantization over the whole operand.
	mn, mx := MinMax(x)
	if mn > 0 {
		mn = 0
	}
	if mx < 0 {
		mx = 0
	}
	aScale := (mx - mn) / 255
	zp := uint8(math.Round(float64(-mn / aScale)))
	// Pack x transposed: bq[j][kk] = quant(x[kk][j]).
	bq := make([]uint8, n*kp)
	for j := 0; j < n; j++ {
		for kk := 0; kk < k; kk++ {
			bq[j*kp+kk] = QuantizeAffine(x[kk*n+j], 1/aScale, float32(zp))
		}
	}
	acc := make([]int32, m*n)
	GemmInt8DotInto(acc, wq, bq, m, n, kp)
	for i := 0; i < m; i++ {
		row := make([]float32, n)
		RequantizeI32Row(row, acc[i*n:(i+1)*n], wScale[i]*aScale, int32(zp)*rowSum[i], 0)
		for j := 0; j < n; j++ {
			// Analytic bound for this output element.
			var sumAbsW, sumAbsXhat float64
			for kk := 0; kk < k; kk++ {
				sumAbsW += math.Abs(float64(w[i*k+kk]))
				xhat := float64(aScale) * float64(int32(bq[j*kp+kk])-int32(zp))
				sumAbsXhat += math.Abs(xhat)
			}
			bound := float64(aScale)*sumAbsW + float64(wScale[i]/2)*sumAbsXhat + 1e-3
			if d := math.Abs(float64(row[j]) - ref[i*n+j]); d > bound {
				t.Fatalf("y[%d][%d]: int8 %g vs f32 %g, |Δ|=%g > bound %g",
					i, j, row[j], ref[i*n+j], d, bound)
			}
		}
	}
}

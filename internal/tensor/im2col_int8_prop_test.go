package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestMinMaxNaNTable pins NaN propagation position by position: the doc
// promises a NaN anywhere poisons both bounds, and ordered comparisons
// are always false against NaN, so only an explicit check catches the
// head/middle/tail cases.
func TestMinMaxNaNTable(t *testing.T) {
	nan := float32(math.NaN())
	cases := []struct {
		name string
		xs   []float32
	}{
		{"head", []float32{nan, 1, 2, 3}},
		{"middle", []float32{1, 2, nan, 3}},
		{"tail", []float32{1, 2, 3, nan}},
		{"only", []float32{nan}},
		{"pair-head", []float32{nan, 7}},
		{"pair-tail", []float32{7, nan}},
		{"all", []float32{nan, nan, nan}},
	}
	for _, tc := range cases {
		mn, mx := MinMax(tc.xs)
		if !math.IsNaN(float64(mn)) || !math.IsNaN(float64(mx)) {
			t.Errorf("%s: MinMax = (%g, %g), want (NaN, NaN)", tc.name, mn, mx)
		}
	}
	// And finite inputs must stay exact.
	if mn, mx := MinMax([]float32{4, -2, 9, 0}); mn != -2 || mx != 9 {
		t.Errorf("finite: MinMax = (%g, %g), want (-2, 9)", mn, mx)
	}
}

// quantTestValues builds inputs that stress every quantizer branch:
// deep negative and positive saturation (including values whose
// unclamped CVTTPS2DQ would overflow int32), both clamp boundaries,
// exact grid points, half-way rounding cases, and a bulk of ordinary
// in-range values.
func quantTestValues(rng *rand.Rand, n int) []float32 {
	special := []float32{
		0, -0.0001, 0.0001, -1e30, 1e30, -3e38, 3e38,
		255, 255.0001, 254.9999, -255, 2.55e10,
		0.005, -0.005, 0.0049999, 1.275, 12.75,
	}
	xs := make([]float32, n)
	for i := range xs {
		if i < len(special) {
			xs[i] = special[i]
		} else {
			xs[i] = rng.Float32()*600 - 300
		}
	}
	rng.Shuffle(n, func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	return xs
}

// TestQuantizeAffineSliceParity pins the vector quantizer bit-exact
// against the scalar QuantizeAffine oracle on every reachable kernel
// tier, across lengths that hit the 16/32-wide bodies and every tail
// residue, and across affine parameters including saturating scales.
func TestQuantizeAffineSliceParity(t *testing.T) {
	detected := DetectedKernelTier()
	defer SetKernelTier(detected)
	rng := rand.New(rand.NewSource(31))
	affines := []struct {
		invScale float32
		zp       uint8
	}{
		{50, 100}, {1.0 / 0.02, 0}, {255, 255}, {0.004, 128}, {1e9, 7}, {1, 128},
	}
	for tier := TierGeneric; tier <= detected; tier++ {
		if err := SetKernelTier(tier); err != nil {
			t.Fatalf("SetKernelTier(%v): %v", tier, err)
		}
		for _, n := range []int{0, 1, 15, 16, 17, 31, 32, 33, 63, 64, 100, 257, 1024} {
			xs := quantTestValues(rng, n)
			for _, af := range affines {
				got := make([]uint8, n)
				QuantizeAffineSlice(got, xs, af.invScale, af.zp)
				for i, x := range xs {
					want := QuantizeAffine(x, af.invScale, float32(af.zp))
					if got[i] != want {
						t.Fatalf("tier %v n=%d invScale=%g zp=%d: [%d] x=%g got %d want %d",
							tier, n, af.invScale, af.zp, i, x, got[i], want)
					}
				}
			}
		}
	}
}

// randGeom draws a convolution geometry with kernel, stride, and padding
// in the ranges the model zoo uses (plus edge-heavy degenerate combos).
func randGeom(rng *rand.Rand) ConvGeom {
	return ConvGeom{
		KH: 1 + rng.Intn(5), KW: 1 + rng.Intn(5),
		StrideH: 1 + rng.Intn(3), StrideW: 1 + rng.Intn(3),
		PadH: rng.Intn(3), PadW: rng.Intn(3),
	}
}

// TestIm2ColQuantSliceMatchesRef is the fused-packer property test: the
// run-copy + SIMD-quantize pipeline must reproduce the retained
// per-element reference bit-exactly across random shapes, strides, and
// padding, on every reachable kernel tier.
func TestIm2ColQuantSliceMatchesRef(t *testing.T) {
	detected := DetectedKernelTier()
	defer SetKernelTier(detected)
	rng := rand.New(rand.NewSource(37))
	for tier := TierGeneric; tier <= detected; tier++ {
		if err := SetKernelTier(tier); err != nil {
			t.Fatalf("SetKernelTier(%v): %v", tier, err)
		}
		for trial := 0; trial < 40; trial++ {
			g := randGeom(rng)
			c := 1 + rng.Intn(5)
			h := g.KH + rng.Intn(12)
			w := g.KW + rng.Intn(12)
			oh, ow := g.OutSize(h, w)
			if oh <= 0 || ow <= 0 {
				continue
			}
			src := make([]float32, c*h*w)
			for i := range src {
				src[i] = rng.Float32()*8 - 4
			}
			invScale := float32(1+rng.Intn(100)) / 2
			zp := uint8(rng.Intn(256))
			k := c * g.KH * g.KW
			kp := Int8KP(k)
			got := make([]uint8, oh*ow*kp)
			want := make([]uint8, oh*ow*kp)
			for i := range got {
				got[i] = 0xAB // stale bytes must be fully overwritten
				want[i] = 0xCD
			}
			Im2ColQuantSlice(got, src, c, h, w, g, invScale, zp, kp)
			RefIm2ColQuantSlice(want, src, c, h, w, g, invScale, zp, kp)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("tier %v geom %+v c=%d h=%d w=%d zp=%d: dst[%d] = %d, want %d",
						tier, g, c, h, w, zp, i, got[i], want[i])
				}
			}
		}
	}
}

// TestIm2ColU8SliceMatchesRef pins the levels-native run-copy gather
// against its per-element reference across random shapes, strides,
// padding, and pad levels — including kernels wider than the 8-byte
// word-move fast path.
func TestIm2ColU8SliceMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 80; trial++ {
		g := randGeom(rng)
		if trial%7 == 0 {
			g.KW = 9 + rng.Intn(4) // force the copy path past the word move
		}
		c := 1 + rng.Intn(5)
		h := g.KH + rng.Intn(12)
		w := g.KW + rng.Intn(12)
		oh, ow := g.OutSize(h, w)
		if oh <= 0 || ow <= 0 {
			continue
		}
		src := make([]uint8, c*h*w)
		rng.Read(src)
		pad := uint8(rng.Intn(256))
		k := c * g.KH * g.KW
		kp := Int8KP(k)
		got := make([]uint8, oh*ow*kp)
		want := make([]uint8, oh*ow*kp)
		for i := range got {
			got[i] = 0xAB
			want[i] = 0xCD
		}
		Im2ColU8Slice(got, src, c, h, w, g, pad, kp)
		RefIm2ColU8Slice(want, src, c, h, w, g, pad, kp)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("geom %+v c=%d h=%d w=%d pad=%d: dst[%d] = %d, want %d",
					g, c, h, w, pad, i, got[i], want[i])
			}
		}
	}
}

// TestInt8KernelVNNIParity exercises both AVX-512 int8 kernels on VNNI
// hosts: with the fast path forced off the widen+VPMADDWD kernel must
// produce the same exact accumulations as with VPDPBUSD on.
func TestInt8KernelVNNIParity(t *testing.T) {
	if DetectedKernelTier() < TierAVX512 {
		t.Skip("host has no AVX-512 tier")
	}
	prev := setVNNI(true)
	defer setVNNI(prev)
	if !prev {
		t.Skip("host has no VNNI")
	}
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 40; trial++ {
		kp := int8KStep * (1 + rng.Intn(40))
		a0 := randInt8(rng, kp)
		a1 := randInt8(rng, kp)
		b0 := randUint8(rng, kp)
		b1 := randUint8(rng, kp)
		b2 := randUint8(rng, kp)
		b3 := randUint8(rng, kp)
		var withVNNI, without, want [8]int32
		setVNNI(true)
		int8Dot2x4(&withVNNI, a0, a1, b0, b1, b2, b3, kp)
		setVNNI(false)
		int8Dot2x4(&without, a0, a1, b0, b1, b2, b3, kp)
		setVNNI(true)
		int8Dot2x4Generic(&want, a0, a1, b0, b1, b2, b3, kp)
		if withVNNI != want || without != want {
			t.Fatalf("kp=%d: vnni %v, widen %v, want %v", kp, withVNNI, without, want)
		}
	}
}

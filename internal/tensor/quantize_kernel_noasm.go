//go:build !amd64 || noasm

package tensor

// quantizeAffineSIMD: no vector quantizer is linked in; the scalar path
// handles everything.
func quantizeAffineSIMD(dst []uint8, src []float32, invScale, zpF float32) int { return 0 }

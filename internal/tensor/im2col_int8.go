package tensor

// Quantized im2col. The int8 conv forward consumes activations as uint8
// affine levels q = clamp(round(x/scale) + zp, 0, 255), packed in the
// transposed column layout the int8 GEMM expects: row j = output pixel
// oy·OW+ox, column k = (ch·KH+kh)·KW+kw, rows padded from k to kp. The
// two packers below build that matrix in one gather pass — one straight
// from a float32 image (quantizing on the fly), one from an image that
// is already uint8 levels (a decoded wire payload), which is how the
// Conv worker skips the dequant→f32→requant round trip.

// QuantizeAffine maps x to its uint8 affine level with invScale = 1/scale
// and zpF = float32(zero point): clamp(round(x·invScale + zp), 0, 255),
// rounding half away from zero toward +∞ after the shift. It is the
// canonical scalar quantizer; the slice and im2col packers reproduce it
// bit-exactly.
func QuantizeAffine(x, invScale, zpF float32) uint8 {
	v := x*invScale + zpF
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// QuantizeAffineSlice quantizes src into dst element-wise.
func QuantizeAffineSlice(dst []uint8, src []float32, invScale float32, zp uint8) {
	zpF := float32(zp)
	dst = dst[:len(src)]
	for i, x := range src {
		dst[i] = QuantizeAffine(x, invScale, zpF)
	}
}

// DequantizeAffineSlice reverses QuantizeAffineSlice up to rounding:
// dst[i] = scale·(src[i]−zp).
func DequantizeAffineSlice(dst []float32, src []uint8, scale float32, zp uint8) {
	z := int32(zp)
	dst = dst[:len(src)]
	for i, q := range src {
		dst[i] = scale * float32(int32(q)-z)
	}
}

// MinMax scans xs and returns its minimum and maximum. An empty slice
// returns (0, 0); NaNs propagate so callers can reject them.
func MinMax(xs []float32) (mn, mx float32) {
	if len(xs) == 0 {
		return 0, 0
	}
	mn, mx = xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		if v != v { // NaN poisons both bounds
			return v, v
		}
	}
	return mn, mx
}

// Im2ColQuantSlice gathers one C×H×W float32 image into the quantized
// transposed column matrix dst[OH·OW][kp], applying QuantizeAffine to
// every element. Spatial padding positions take the level zp (the affine
// image of 0.0) and the kp tail of each row is zero-filled, so dst is
// fully defined on return and pooled buffers are safe destinations.
func Im2ColQuantSlice(dst []uint8, src []float32, c, h, w int, g ConvGeom, invScale float32, zp uint8, kp int) {
	oh, ow := g.OutSize(h, w)
	k := c * g.KH * g.KW
	if kp < k {
		panic("tensor: Im2ColQuantSlice kp below C·KH·KW")
	}
	dst = dst[:oh*ow*kp]
	zpF := float32(zp)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			row := dst[(oy*ow+ox)*kp:][:kp]
			ki := 0
			for ch := 0; ch < c; ch++ {
				img := src[ch*h*w:]
				for kh := 0; kh < g.KH; kh++ {
					iy := oy*g.StrideH - g.PadH + kh
					if iy < 0 || iy >= h {
						for kw := 0; kw < g.KW; kw++ {
							row[ki] = zp
							ki++
						}
						continue
					}
					srow := img[iy*w:]
					for kw := 0; kw < g.KW; kw++ {
						ix := ox*g.StrideW - g.PadW + kw
						if ix >= 0 && ix < w {
							row[ki] = QuantizeAffine(srow[ix], invScale, zpF)
						} else {
							row[ki] = zp
						}
						ki++
					}
				}
			}
			for ; ki < kp; ki++ {
				row[ki] = 0
			}
		}
	}
}

// Im2ColU8Slice is Im2ColQuantSlice for an image that is already uint8
// levels: a pure gather, with spatial padding reading as pad (the level
// representing 0.0 under the source's affine parameters).
func Im2ColU8Slice(dst, src []uint8, c, h, w int, g ConvGeom, pad uint8, kp int) {
	oh, ow := g.OutSize(h, w)
	k := c * g.KH * g.KW
	if kp < k {
		panic("tensor: Im2ColU8Slice kp below C·KH·KW")
	}
	dst = dst[:oh*ow*kp]
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			row := dst[(oy*ow+ox)*kp:][:kp]
			ki := 0
			for ch := 0; ch < c; ch++ {
				img := src[ch*h*w:]
				for kh := 0; kh < g.KH; kh++ {
					iy := oy*g.StrideH - g.PadH + kh
					if iy < 0 || iy >= h {
						for kw := 0; kw < g.KW; kw++ {
							row[ki] = pad
							ki++
						}
						continue
					}
					srow := img[iy*w:]
					for kw := 0; kw < g.KW; kw++ {
						ix := ox*g.StrideW - g.PadW + kw
						if ix >= 0 && ix < w {
							row[ki] = srow[ix]
						} else {
							row[ki] = pad
						}
						ki++
					}
				}
			}
			for ; ki < kp; ki++ {
				row[ki] = 0
			}
		}
	}
}

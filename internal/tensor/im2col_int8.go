package tensor

import "encoding/binary"

// Quantized im2col. The int8 conv forward consumes activations as uint8
// affine levels q = clamp(round(x/scale) + zp, 0, 255), packed in the
// transposed column layout the int8 GEMM expects: row j = output pixel
// oy·OW+ox, column k = (ch·KH+kh)·KW+kw, rows padded from k to kp.
//
// The packers build that matrix in two fused stages instead of a
// per-element gather: the float image is quantized ONCE with the SIMD
// quantizer (the old path re-quantized every input pixel up to KH·KW
// times as the windows overlap), and the gather itself moves contiguous
// kw-runs — within one (ch, kh) segment consecutive kw values map to
// consecutive source bytes regardless of stride, so each segment is one
// small copy, with spatial padding handled once per clipped edge rather
// than per element. A levels-native entry point packs decoded wire
// uint8 levels straight into the layout with no float detour, which is
// how the Conv worker skips the dequant→f32→requant round trip.

// QuantizeAffine maps x to its uint8 affine level with invScale = 1/scale
// and zpF = float32(zero point): clamp(round(x·invScale + zp), 0, 255),
// rounding half away from zero toward +∞ after the shift. It is the
// canonical scalar quantizer; the slice and im2col packers reproduce it
// bit-exactly.
func QuantizeAffine(x, invScale, zpF float32) uint8 {
	v := x*invScale + zpF
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// QuantizeAffineSlice quantizes src into dst element-wise, bit-exact
// with QuantizeAffine. The bulk runs on the widest vector kernel the
// host provides (32 levels per AVX2 step, 16 per AVX-512 step); only
// the sub-register tail is scalar.
func QuantizeAffineSlice(dst []uint8, src []float32, invScale float32, zp uint8) {
	zpF := float32(zp)
	dst = dst[:len(src)]
	i := quantizeAffineSIMD(dst, src, invScale, zpF)
	for ; i < len(src); i++ {
		dst[i] = QuantizeAffine(src[i], invScale, zpF)
	}
}

// DequantizeAffineSlice reverses QuantizeAffineSlice up to rounding:
// dst[i] = scale·(src[i]−zp).
func DequantizeAffineSlice(dst []float32, src []uint8, scale float32, zp uint8) {
	z := int32(zp)
	dst = dst[:len(src)]
	for i, q := range src {
		dst[i] = scale * float32(int32(q)-z)
	}
}

// MinMax scans xs and returns its minimum and maximum. An empty slice
// returns (0, 0); a NaN anywhere in xs poisons both bounds (the scan
// checks NaN explicitly before the ordered comparisons, which are
// always false against NaN and would otherwise drop one silently), so
// callers can reject non-finite inputs by checking the result.
func MinMax(xs []float32) (mn, mx float32) {
	if len(xs) == 0 {
		return 0, 0
	}
	mn, mx = xs[0], xs[0]
	if mn != mn {
		return mn, mn
	}
	for _, v := range xs[1:] {
		if v != v { // NaN poisons both bounds
			return v, v
		}
		if v < mn {
			mn = v
		} else if v > mx {
			mx = v
		}
	}
	return mn, mx
}

// Im2ColQuantSlice gathers one C×H×W float32 image into the quantized
// transposed column matrix dst[OH·OW][kp], applying QuantizeAffine to
// every element. Spatial padding positions take the level zp (the affine
// image of 0.0) and the kp tail of each row is zero-filled, so dst is
// fully defined on return and pooled buffers are safe destinations.
//
// The image is quantized once into pooled scratch with the SIMD
// quantizer and then byte-gathered by Im2ColU8Slice — bit-exact with
// the retained per-element reference (RefIm2ColQuantSlice) because the
// quantizer is deterministic per element, and much faster because the
// overlap-window re-quantization and the per-element float work are
// gone. Zero allocations at pool steady state.
func Im2ColQuantSlice(dst []uint8, src []float32, c, h, w int, g ConvGeom, invScale float32, zp uint8, kp int) {
	k := c * g.KH * g.KW
	if kp < k {
		panic("tensor: Im2ColQuantSlice kp below C·KH·KW")
	}
	q := GetBytes(c * h * w)
	QuantizeAffineSlice(q, src[:c*h*w], invScale, zp)
	Im2ColU8Slice(dst, q, c, h, w, g, zp, kp)
	PutBytes(q)
}

// Im2ColU8Slice is Im2ColQuantSlice for an image that is already uint8
// levels: a pure gather, with spatial padding reading as pad (the level
// representing 0.0 under the source's affine parameters). Each (ch, kh)
// segment of a destination row is a contiguous kw-run of the source
// row, so the gather is run copies instead of element stores — and for
// the interior columns (no horizontal clipping) the segment loop is
// hoisted OUTSIDE the ox loop: one pass per (ch, kh) sweeps every
// interior output pixel of the row with a tight strided store loop
// (an 8-byte word move per pixel for kernels up to KW=8, a byte gather
// for 1×1 convs), so the per-segment slicing overhead is paid once per
// source row instead of once per output pixel. Clipped edge columns go
// through the general per-pixel path.
func Im2ColU8Slice(dst, src []uint8, c, h, w int, g ConvGeom, pad uint8, kp int) {
	oh, ow := g.OutSize(h, w)
	k := c * g.KH * g.KW
	if kp < k {
		panic("tensor: Im2ColU8Slice kp below C·KH·KW")
	}
	dst = dst[:oh*ow*kp]
	// Interior ox range [oxLo, oxHi): the kw-run [ix0, ix0+KW) stays
	// inside [0, w), so no horizontal clipping.
	oxLo := 0
	if g.PadW > 0 {
		oxLo = (g.PadW + g.StrideW - 1) / g.StrideW
	}
	oxHi := 0
	if hi := w - g.KW + g.PadW; hi >= 0 {
		oxHi = hi/g.StrideW + 1
	}
	if oxLo > ow {
		oxLo = ow
	}
	if oxHi > ow {
		oxHi = ow
	}
	if oxHi < oxLo {
		oxHi = oxLo
	}
	// Last ox whose 8-byte source read stays inside the image row
	// (ix0+8 <= w), for the word-move loop bound.
	oxWordLim := 0
	if num := w - 8 + g.PadW; num >= 0 {
		oxWordLim = num/g.StrideW + 1
	}
	padWord := 0x0101010101010101 * uint64(pad)
	plane := h * w
	for oy := 0; oy < oh; oy++ {
		iy0 := oy*g.StrideH - g.PadH
		// Valid kh range [khLo, khHi): iy0+kh inside [0, h).
		khLo := 0
		if iy0 < 0 {
			khLo = -iy0
		}
		khHi := g.KH
		if iy0+khHi > h {
			khHi = h - iy0
		}
		if khHi < khLo {
			khHi = khLo
		}
		base := oy * ow * kp
		for ox := 0; ox < oxLo; ox++ {
			gatherU8RowClipped(dst[base+ox*kp:][:kp], src, c, h, w, g, pad,
				ox*g.StrideW-g.PadW, iy0, khLo, khHi)
		}
		for ox := oxHi; ox < ow; ox++ {
			gatherU8RowClipped(dst[base+ox*kp:][:kp], src, c, h, w, g, pad,
				ox*g.StrideW-g.PadW, iy0, khLo, khHi)
		}
		if oxHi <= oxLo {
			continue
		}
		d0 := base + oxLo*kp
		dEnd := base + oxHi*kp
		ix0Lo := oxLo*g.StrideW - g.PadW
		if g.KH == 3 && g.KW == 3 && khLo == 0 && khHi == 3 {
			// 3×3 kernels with no vertical clipping (every row but the
			// padded top/bottom): the three kh segments of a channel are
			// 9 contiguous destination bytes fed by three source rows at
			// the same horizontal offset, so one pass per channel writes
			// the whole block — three loads, one word store, one byte
			// store per interior pixel. kp ≥ k = 9c keeps the 9-byte
			// block in-row for every channel, so no fallback is needed.
			oxW := oxHi
			if oxWordLim < oxW {
				oxW = oxWordLim
			}
			if oxW < oxLo {
				oxW = oxLo
			}
			for ch := 0; ch < c; ch++ {
				srow0 := src[ch*plane+iy0*w:]
				srow1 := srow0[w:]
				srow2 := srow1[w:]
				d := d0 + ch*9
				s := ix0Lo
				for ox := oxLo; ox < oxW; ox++ {
					w0 := binary.LittleEndian.Uint64(srow0[s:])
					w1 := binary.LittleEndian.Uint64(srow1[s:])
					w2 := binary.LittleEndian.Uint64(srow2[s:])
					binary.LittleEndian.PutUint64(dst[d:],
						w0&0xFFFFFF|(w1&0xFFFFFF)<<24|w2<<48)
					dst[d+8] = byte(w2 >> 16)
					d += kp
					s += g.StrideW
				}
				for ox := oxW; ox < oxHi; ox++ {
					copy(dst[d:d+3], srow0[s:s+3])
					copy(dst[d+3:d+6], srow1[s:s+3])
					copy(dst[d+6:d+9], srow2[s:s+3])
					d += kp
					s += g.StrideW
				}
			}
			for d := d0; d < dEnd; d += kp {
				fillU8(dst[d+k:d+kp], 0)
			}
			continue
		}
		for ch := 0; ch < c; ch++ {
			kiCh := ch * g.KH * g.KW
			for kh := 0; kh < g.KH; kh++ {
				ki := kiCh + kh*g.KW
				if kh < khLo || kh >= khHi {
					// Vertically clipped segment: spray pad across the
					// interior rows. The word overhang lands on
					// positions later segments (or the zeroed tail)
					// overwrite, same as the copy overhang below.
					if g.KW <= 8 && ki+8 <= kp {
						for d := d0 + ki; d < dEnd; d += kp {
							binary.LittleEndian.PutUint64(dst[d:], padWord)
						}
					} else {
						for d := d0 + ki; d < dEnd; d += kp {
							fillU8(dst[d:d+g.KW], pad)
						}
					}
					continue
				}
				srow := src[ch*plane+(iy0+kh)*w:]
				if g.KW == 1 {
					// 1×1 kernels: the segment is a single byte, so the
					// sweep is a strided byte gather (a transpose column).
					s := ix0Lo
					for d := d0 + ki; d < dEnd; d += kp {
						dst[d] = srow[s]
						s += g.StrideW
					}
					continue
				}
				oxW := oxHi
				if oxWordLim < oxW {
					oxW = oxWordLim
				}
				if oxW < oxLo {
					oxW = oxLo
				}
				d := d0 + ki
				s := ix0Lo
				if g.KW <= 8 && ki+8 <= kp {
					// One word move per interior pixel while the 8-byte
					// read stays inside the source row.
					for ox := oxLo; ox < oxW; ox++ {
						binary.LittleEndian.PutUint64(dst[d:],
							binary.LittleEndian.Uint64(srow[s:]))
						d += kp
						s += g.StrideW
					}
					for ox := oxW; ox < oxHi; ox++ {
						copy(dst[d:d+g.KW], srow[s:s+g.KW])
						d += kp
						s += g.StrideW
					}
					continue
				}
				for ox := oxLo; ox < oxHi; ox++ {
					copy(dst[d:d+g.KW], srow[s:s+g.KW])
					d += kp
					s += g.StrideW
				}
			}
		}
		for d := d0; d < dEnd; d += kp {
			fillU8(dst[d+k:d+kp], 0)
		}
	}
}

// gatherU8RowClipped fills one destination row for a horizontally
// clipped output column: out-of-image flanks take pad, the in-image
// middle run is copied, and the kp tail is zeroed.
func gatherU8RowClipped(row, src []uint8, c, h, w int, g ConvGeom, pad uint8, ix0, iy0, khLo, khHi int) {
	plane := h * w
	ki := 0
	for ch := 0; ch < c; ch++ {
		img := src[ch*plane:]
		for kh := 0; kh < g.KH; kh++ {
			if kh < khLo || kh >= khHi {
				fillU8(row[ki:ki+g.KW], pad)
				ki += g.KW
				continue
			}
			srow := img[(iy0+kh)*w:]
			lo, hi := ix0, ix0+g.KW
			if lo < 0 {
				lo = 0
			}
			if hi > w {
				hi = w
			}
			if hi <= lo { // run fully outside the image
				fillU8(row[ki:ki+g.KW], pad)
				ki += g.KW
				continue
			}
			fillU8(row[ki:ki+(lo-ix0)], pad)
			copy(row[ki+(lo-ix0):], srow[lo:hi])
			fillU8(row[ki+(hi-ix0):ki+g.KW], pad)
			ki += g.KW
		}
	}
	for ; ki < len(row); ki++ {
		row[ki] = 0
	}
}

// fillU8 sets every byte of s to v (the compiler lowers the loop to a
// memset-style fill for v==0 and a tight store loop otherwise).
func fillU8(s []uint8, v uint8) {
	for i := range s {
		s[i] = v
	}
}

// RefIm2ColQuantSlice is the retained per-element reference for
// Im2ColQuantSlice: same contract, scalar gather with one QuantizeAffine
// per destination element. The property tests pin the fused packer
// against it bit-exactly, and kernelbench uses it as the speedup
// baseline.
func RefIm2ColQuantSlice(dst []uint8, src []float32, c, h, w int, g ConvGeom, invScale float32, zp uint8, kp int) {
	oh, ow := g.OutSize(h, w)
	k := c * g.KH * g.KW
	if kp < k {
		panic("tensor: RefIm2ColQuantSlice kp below C·KH·KW")
	}
	dst = dst[:oh*ow*kp]
	zpF := float32(zp)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			row := dst[(oy*ow+ox)*kp:][:kp]
			ki := 0
			for ch := 0; ch < c; ch++ {
				img := src[ch*h*w:]
				for kh := 0; kh < g.KH; kh++ {
					iy := oy*g.StrideH - g.PadH + kh
					if iy < 0 || iy >= h {
						for kw := 0; kw < g.KW; kw++ {
							row[ki] = zp
							ki++
						}
						continue
					}
					srow := img[iy*w:]
					for kw := 0; kw < g.KW; kw++ {
						ix := ox*g.StrideW - g.PadW + kw
						if ix >= 0 && ix < w {
							row[ki] = QuantizeAffine(srow[ix], invScale, zpF)
						} else {
							row[ki] = zp
						}
						ki++
					}
				}
			}
			for ; ki < kp; ki++ {
				row[ki] = 0
			}
		}
	}
}

// RefIm2ColU8Slice is the retained per-element reference for
// Im2ColU8Slice.
func RefIm2ColU8Slice(dst, src []uint8, c, h, w int, g ConvGeom, pad uint8, kp int) {
	oh, ow := g.OutSize(h, w)
	k := c * g.KH * g.KW
	if kp < k {
		panic("tensor: RefIm2ColU8Slice kp below C·KH·KW")
	}
	dst = dst[:oh*ow*kp]
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			row := dst[(oy*ow+ox)*kp:][:kp]
			ki := 0
			for ch := 0; ch < c; ch++ {
				img := src[ch*h*w:]
				for kh := 0; kh < g.KH; kh++ {
					iy := oy*g.StrideH - g.PadH + kh
					if iy < 0 || iy >= h {
						for kw := 0; kw < g.KW; kw++ {
							row[ki] = pad
							ki++
						}
						continue
					}
					srow := img[iy*w:]
					for kw := 0; kw < g.KW; kw++ {
						ix := ox*g.StrideW - g.PadW + kw
						if ix >= 0 && ix < w {
							row[ki] = srow[ix]
						} else {
							row[ki] = pad
						}
						ki++
					}
				}
			}
			for ; ki < kp; ki++ {
				row[ki] = 0
			}
		}
	}
}

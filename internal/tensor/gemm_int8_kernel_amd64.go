//go:build amd64 && !noasm

package tensor

// int8DotKernel2x4AVX2 (gemm_int8_kernel_amd64.s) computes the eight dot
// products of the 2×4 int8 register tile with AVX2: 16 k-bytes per step,
// widened to 16-bit words (sign-extend for weights, zero-extend for
// activations) and multiply-accumulated exactly with VPMADDWD — every
// intermediate fits: |s8·u8| ≤ 128·255 and the pairwise sums stay far
// inside int32 for kp ≤ int8MaxKP. kp must be a multiple of 16.
//
//go:noescape
func int8DotKernel2x4AVX2(dst *[8]int32, a0, a1 *int8, b0, b1, b2, b3 *uint8, kp int)

// int8DotKernel2x4AVX512 is the same widen+VPMADDWD scheme at ZMM width:
// 32 k-bytes per step, one 16-byte YMM remainder step. Requires
// AVX-512 F+BW+VL — dispatch only on TierAVX512.
//
//go:noescape
func int8DotKernel2x4AVX512(dst *[8]int32, a0, a1 *int8, b0, b1, b2, b3 *uint8, kp int)

// int8DotKernel2x4VNNI replaces widen+VPMADDWD+VPADDD with one
// VPDPBUSD per accumulator: 64 k-bytes per step, 16-byte XMM remainder
// steps. Same exact int32 result. Requires AVX512-VNNI on top of the
// AVX-512 tier — dispatch only when hasVNNI.
//
//go:noescape
func int8DotKernel2x4VNNI(dst *[8]int32, a0, a1 *int8, b0, b1, b2, b3 *uint8, kp int)

// int8Dot2x4 dispatches the int8 micro-kernel by tier: VNNI or ZMM
// widen on AVX-512, AVX2 widen below that, the portable kernel
// otherwise (there is no SSE int8 kernel — the baseline tier for int8
// is pure Go).
func int8Dot2x4(dst *[8]int32, a0, a1 []int8, b0, b1, b2, b3 []uint8, kp int) {
	switch {
	case kernelTier >= TierAVX512 && hasVNNI:
		int8DotKernel2x4VNNI(dst, &a0[0], &a1[0], &b0[0], &b1[0], &b2[0], &b3[0], kp)
	case kernelTier >= TierAVX512:
		int8DotKernel2x4AVX512(dst, &a0[0], &a1[0], &b0[0], &b1[0], &b2[0], &b3[0], kp)
	case kernelTier >= TierAVX2:
		int8DotKernel2x4AVX2(dst, &a0[0], &a1[0], &b0[0], &b1[0], &b2[0], &b3[0], kp)
	default:
		int8Dot2x4Generic(dst, a0, a1, b0, b1, b2, b3, kp)
	}
}

//go:build !amd64 || noasm

package tensor

// detectKernelTier: no assembly kernels are linked in, so the portable
// kernel is the only tier.
func detectKernelTier() KernelTier { return TierGeneric }

// setVNNI: no VNNI without assembly kernels; the knob is inert.
func setVNNI(bool) bool { return false }

// gemmAxpy2x4 routes to the portable kernel.
func gemmAxpy2x4(c0, c1, b0, b1, b2, b3 []float32, aq *[8]float32, n int) {
	gemmAxpy2x4Generic(c0, c1, b0, b1, b2, b3, aq, n)
}

package tensor

// ConvGeom describes the geometry of a 2-D convolution or pooling window.
type ConvGeom struct {
	KH, KW     int // kernel height/width
	StrideH    int
	StrideW    int
	PadH, PadW int // symmetric zero padding
}

// OutSize returns the output spatial size for an input of h×w.
func (g ConvGeom) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*g.PadH-g.KH)/g.StrideH + 1
	ow = (w+2*g.PadW-g.KW)/g.StrideW + 1
	return
}

// ColsLen returns the element count of the im2col matrix for a c×h×w
// image: (c·KH·KW) × (OH·OW). Use it to size pooled scratch buffers.
func (g ConvGeom) ColsLen(c, h, w int) int {
	oh, ow := g.OutSize(h, w)
	return c * g.KH * g.KW * oh * ow
}

// Im2Col unfolds one image x[C,H,W] into a matrix of shape
// [C*KH*KW, OH*OW] so convolution becomes a matrix product with the
// flattened filters. Out-of-bounds positions read as zero (the padding).
func Im2Col(x *Tensor, g ConvGeom) *Tensor {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh, ow := g.OutSize(h, w)
	cols := New(c*g.KH*g.KW, oh*ow)
	Im2ColSlice(cols.Data, x.Data, c, h, w, g)
	return cols
}

// Im2ColInto is Im2Col writing into a caller-owned matrix of shape
// [C*KH*KW, OH*OW]. Any prior contents are overwritten.
func Im2ColInto(cols, x *Tensor, g ConvGeom) {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	if cols.Len() != g.ColsLen(c, h, w) {
		panic("tensor: Im2ColInto destination size mismatch")
	}
	Im2ColSlice(cols.Data, x.Data, c, h, w, g)
}

// Im2ColSlice is the raw-slice im2col kernel: src holds a C×H×W image and
// dst receives the [C*KH*KW, OH*OW] column matrix. dst is fully defined on
// return (padding positions are zeroed only when padding exists, every
// other position is written), so pooled buffers with stale contents are
// safe inputs.
func Im2ColSlice(dst, src []float32, c, h, w int, g ConvGeom) {
	oh, ow := g.OutSize(h, w)
	dst = dst[:c*g.KH*g.KW*oh*ow]
	if g.PadH != 0 || g.PadW != 0 {
		for i := range dst {
			dst[i] = 0
		}
	}
	for ch := 0; ch < c; ch++ {
		img := src[ch*h*w : (ch+1)*h*w]
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := ((ch*g.KH+kh)*g.KW + kw) * oh * ow
				out := dst[row : row+oh*ow]
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.StrideH - g.PadH + kh
					if iy < 0 || iy >= h {
						continue // stays zero
					}
					srow := img[iy*w:]
					drow := out[oy*ow:]
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.StrideW - g.PadW + kw
						if ix >= 0 && ix < w {
							drow[ox] = srow[ix]
						}
					}
				}
			}
		}
	}
}

// Col2Im folds a column matrix (as produced by Im2Col) back into an image
// of shape [C,H,W], accumulating overlapping contributions. It is the
// adjoint of Im2Col and is used for convolution input gradients.
func Col2Im(cols *Tensor, c, h, w int, g ConvGeom) *Tensor {
	x := New(c, h, w)
	Col2ImSlice(x.Data, cols.Data, c, h, w, g)
	return x
}

// Col2ImInto is Col2Im writing into a caller-owned image tensor of shape
// [C,H,W]. Any prior contents are overwritten.
func Col2ImInto(x, cols *Tensor, g ConvGeom) {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	if cols.Len() != g.ColsLen(c, h, w) {
		panic("tensor: Col2ImInto column size mismatch")
	}
	Col2ImSlice(x.Data, cols.Data, c, h, w, g)
}

// Col2ImSlice is the raw-slice col2im kernel: cols holds a
// [C*KH*KW, OH*OW] column matrix and dst receives the folded C×H×W image.
// dst is zeroed first, so pooled buffers are safe destinations.
func Col2ImSlice(dst, cols []float32, c, h, w int, g ConvGeom) {
	oh, ow := g.OutSize(h, w)
	dst = dst[:c*h*w]
	for i := range dst {
		dst[i] = 0
	}
	for ch := 0; ch < c; ch++ {
		img := dst[ch*h*w : (ch+1)*h*w]
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := ((ch*g.KH+kh)*g.KW + kw) * oh * ow
				src := cols[row : row+oh*ow]
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.StrideH - g.PadH + kh
					if iy < 0 || iy >= h {
						continue
					}
					drow := img[iy*w:]
					srow := src[oy*ow:]
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.StrideW - g.PadW + kw
						if ix >= 0 && ix < w {
							drow[ix] += srow[ox]
						}
					}
				}
			}
		}
	}
}

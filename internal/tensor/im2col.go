package tensor

// ConvGeom describes the geometry of a 2-D convolution or pooling window.
type ConvGeom struct {
	KH, KW     int // kernel height/width
	StrideH    int
	StrideW    int
	PadH, PadW int // symmetric zero padding
}

// OutSize returns the output spatial size for an input of h×w.
func (g ConvGeom) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*g.PadH-g.KH)/g.StrideH + 1
	ow = (w+2*g.PadW-g.KW)/g.StrideW + 1
	return
}

// Im2Col unfolds one image x[C,H,W] into a matrix of shape
// [C*KH*KW, OH*OW] so convolution becomes a matrix product with the
// flattened filters. Out-of-bounds positions read as zero (the padding).
func Im2Col(x *Tensor, g ConvGeom) *Tensor {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh, ow := g.OutSize(h, w)
	cols := New(c*g.KH*g.KW, oh*ow)
	for ch := 0; ch < c; ch++ {
		src := x.Data[ch*h*w : (ch+1)*h*w]
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := ((ch*g.KH+kh)*g.KW + kw) * oh * ow
				dst := cols.Data[row : row+oh*ow]
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.StrideH - g.PadH + kh
					if iy < 0 || iy >= h {
						continue // leave zeros
					}
					srow := src[iy*w:]
					drow := dst[oy*ow:]
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.StrideW - g.PadW + kw
						if ix >= 0 && ix < w {
							drow[ox] = srow[ix]
						}
					}
				}
			}
		}
	}
	return cols
}

// Col2Im folds a column matrix (as produced by Im2Col) back into an image
// of shape [C,H,W], accumulating overlapping contributions. It is the
// adjoint of Im2Col and is used for convolution input gradients.
func Col2Im(cols *Tensor, c, h, w int, g ConvGeom) *Tensor {
	oh, ow := g.OutSize(h, w)
	x := New(c, h, w)
	for ch := 0; ch < c; ch++ {
		dst := x.Data[ch*h*w : (ch+1)*h*w]
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := ((ch*g.KH+kh)*g.KW + kw) * oh * ow
				src := cols.Data[row : row+oh*ow]
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.StrideH - g.PadH + kh
					if iy < 0 || iy >= h {
						continue
					}
					drow := dst[iy*w:]
					srow := src[oy*ow:]
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.StrideW - g.PadW + kw
						if ix >= 0 && ix < w {
							drow[ix] += srow[ox]
						}
					}
				}
			}
		}
	}
	return x
}

//go:build amd64

package tensor

// gemmKernel2x4Asm is the SSE micro-kernel (gemm_kernel_amd64.s): for two
// C rows and four packed A scalars per row it computes, 4 floats per step,
//
//	c0[j] += a[0]*b0[j] + a[1]*b1[j] + a[2]*b2[j] + a[3]*b3[j]
//	c1[j] += a[4]*b0[j] + a[5]*b1[j] + a[6]*b2[j] + a[7]*b3[j]
//
// for j in [0, n). n must be a multiple of 4; callers handle the tail.
//
//go:noescape
func gemmKernel2x4Asm(c0, c1, b0, b1, b2, b3, a *float32, n int)

// gemmAxpy2x4 dispatches the vectorised inner sweep. n is a multiple of 4
// and at least 4; slices are at least n long.
func gemmAxpy2x4(c0, c1, b0, b1, b2, b3 []float32, aq *[8]float32, n int) {
	gemmKernel2x4Asm(&c0[0], &c1[0], &b0[0], &b1[0], &b2[0], &b3[0], &aq[0], n)
}

//go:build amd64 && !noasm

package tensor

// gemmKernel2x4SSE is the SSE micro-kernel (gemm_kernel_amd64.s): for two
// C rows and four packed A scalars per row it computes, 4 floats per step,
//
//	c0[j] += a[0]*b0[j] + a[1]*b1[j] + a[2]*b2[j] + a[3]*b3[j]
//	c1[j] += a[4]*b0[j] + a[5]*b1[j] + a[6]*b2[j] + a[7]*b3[j]
//
// for j in [0, n). n must be a multiple of 4; callers handle the tail.
//
//go:noescape
func gemmKernel2x4SSE(c0, c1, b0, b1, b2, b3, a *float32, n int)

// gemmKernel2x4AVX2 computes the same update 8 floats per step with
// YMM FMA (one 4-wide VEX-128 step handles n≡4 mod 8). Requires
// AVX2+FMA and OS YMM support — dispatch only on TierAVX2.
//
//go:noescape
func gemmKernel2x4AVX2(c0, c1, b0, b1, b2, b3, a *float32, n int)

// gemmKernel2x4AVX512 computes the same update 16 floats per step with
// ZMM FMA; 8- and 4-wide remainder steps reuse the low lanes of the
// broadcast registers. Requires AVX-512 F+BW+VL and OS ZMM support —
// dispatch only on TierAVX512.
//
//go:noescape
func gemmKernel2x4AVX512(c0, c1, b0, b1, b2, b3, a *float32, n int)

package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	for i, v := range x.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
	if x.Rank() != 3 || x.Dim(1) != 3 {
		t.Fatalf("bad shape bookkeeping: %v", x.Shape)
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3)
	x.Set(7, 1, 2)
	if got := x.At(1, 2); got != 7 {
		t.Fatalf("At(1,2) = %v, want 7", got)
	}
	// Row-major layout: index (1,2) of a 2x3 tensor is flat offset 5.
	if x.Data[5] != 7 {
		t.Fatalf("flat offset wrong: %v", x.Data)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	x.At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Data[0] = 42
	if x.Data[0] != 42 {
		t.Fatal("reshape must share underlying storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for volume mismatch")
		}
	}()
	x.Reshape(5)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3}, 3)
	y := x.Clone()
	y.Data[0] = 99
	if x.Data[0] != 1 {
		t.Fatal("clone must not alias original storage")
	}
}

func TestSumMeanMaxMinArgMax(t *testing.T) {
	x := FromSlice([]float32{3, -1, 4, 1, 5, -9}, 6)
	if x.Sum() != 3 {
		t.Fatalf("Sum = %v, want 3", x.Sum())
	}
	if math.Abs(x.Mean()-0.5) > 1e-9 {
		t.Fatalf("Mean = %v, want 0.5", x.Mean())
	}
	if x.Max() != 5 || x.Min() != -9 || x.ArgMax() != 4 {
		t.Fatalf("Max/Min/ArgMax wrong: %v %v %v", x.Max(), x.Min(), x.ArgMax())
	}
}

func TestSparsity(t *testing.T) {
	x := FromSlice([]float32{0, 1, 0, 0}, 4)
	if x.Sparsity() != 0.75 {
		t.Fatalf("Sparsity = %v, want 0.75", x.Sparsity())
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	a.Add(b)
	want := []float32{5, 7, 9}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("Add: %v", a.Data)
		}
	}
	a.Sub(b)
	for i, w := range []float32{1, 2, 3} {
		if a.Data[i] != w {
			t.Fatalf("Sub: %v", a.Data)
		}
	}
	a.Mul(b)
	for i, w := range []float32{4, 10, 18} {
		if a.Data[i] != w {
			t.Fatalf("Mul: %v", a.Data)
		}
	}
	a.Scale(0.5)
	for i, w := range []float32{2, 5, 9} {
		if a.Data[i] != w {
			t.Fatalf("Scale: %v", a.Data)
		}
	}
	a.AddScaled(2, b)
	for i, w := range []float32{10, 15, 21} {
		if a.Data[i] != w {
			t.Fatalf("AddScaled: %v", a.Data)
		}
	}
}

func TestAddShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	New(2).Add(New(3))
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulTransposes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 3)
	b := New(4, 5)
	a.RandN(rng, 1)
	b.RandN(rng, 1)
	// Aᵀ·B via MatMulTransA must equal materialised transpose product.
	at := New(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Set(a.At(i, j), j, i)
		}
	}
	got := MatMulTransA(a, b)
	want := MatMul(at, b)
	if !got.Equal(want, 1e-5) {
		t.Fatal("MatMulTransA disagrees with explicit transpose")
	}

	c := New(5, 3)
	c.RandN(rng, 1)
	ct := New(3, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			ct.Set(c.At(i, j), j, i)
		}
	}
	gotB := MatMulTransB(a, c) // A[4,3]·Cᵀ[3,5] → [4,5]
	wantB := MatMul(a, ct)
	if !gotB.Equal(wantB, 1e-5) {
		t.Fatal("MatMulTransB disagrees with explicit transpose")
	}
}

func TestMatMulMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inner-dim mismatch")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

// Property: (A+B) elementwise sum commutes.
func TestAddCommutativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		a := New(n)
		b := New(n)
		a.RandN(rng, 1)
		b.RandN(rng, 1)
		x := a.Clone().Add(b)
		y := b.Clone().Add(a)
		return x.Equal(y, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MatMul is linear in its first argument.
func TestMatMulLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a1, a2, b := New(m, k), New(m, k), New(k, n)
		a1.RandN(rng, 1)
		a2.RandN(rng, 1)
		b.RandN(rng, 1)
		lhs := MatMul(a1.Clone().Add(a2), b)
		rhs := MatMul(a1, b).Add(MatMul(a2, b))
		return lhs.Equal(rhs, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: Im2Col is the identity on the flattened image.
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	cols := Im2Col(x, ConvGeom{KH: 1, KW: 1, StrideH: 1, StrideW: 1})
	if cols.Shape[0] != 1 || cols.Shape[1] != 4 {
		t.Fatalf("shape = %v", cols.Shape)
	}
	for i := range x.Data {
		if cols.Data[i] != x.Data[i] {
			t.Fatalf("cols = %v", cols.Data)
		}
	}
}

func TestIm2ColKnown3x3(t *testing.T) {
	// 3x3 input, 2x2 kernel, stride 1, no padding → 2x2 output, 4 columns.
	x := FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	g := ConvGeom{KH: 2, KW: 2, StrideH: 1, StrideW: 1}
	cols := Im2Col(x, g)
	// Row r of cols corresponds to kernel offset (kh,kw); column c to output pos.
	// Output positions in order: (0,0),(0,1),(1,0),(1,1).
	want := [][]float32{
		{1, 2, 4, 5}, // kh=0,kw=0
		{2, 3, 5, 6}, // kh=0,kw=1
		{4, 5, 7, 8}, // kh=1,kw=0
		{5, 6, 8, 9}, // kh=1,kw=1
	}
	for r := range want {
		for c := range want[r] {
			if got := cols.At(r, c); got != want[r][c] {
				t.Fatalf("cols[%d,%d] = %v, want %v", r, c, got, want[r][c])
			}
		}
	}
}

func TestIm2ColPadding(t *testing.T) {
	x := FromSlice([]float32{5}, 1, 1, 1)
	g := ConvGeom{KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	oh, ow := g.OutSize(1, 1)
	if oh != 1 || ow != 1 {
		t.Fatalf("OutSize = %d,%d", oh, ow)
	}
	cols := Im2Col(x, g)
	// Only the centre tap (kh=1,kw=1) sees the pixel; the rest is padding.
	for r := 0; r < 9; r++ {
		want := float32(0)
		if r == 4 {
			want = 5
		}
		if cols.At(r, 0) != want {
			t.Fatalf("cols[%d] = %v, want %v", r, cols.At(r, 0), want)
		}
	}
}

// Property: Col2Im is the adjoint of Im2Col, i.e. <Im2Col(x), y> == <x, Col2Im(y)>.
func TestCol2ImAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 1 + rng.Intn(3)
		h := 2 + rng.Intn(5)
		w := 2 + rng.Intn(5)
		k := 1 + rng.Intn(3)
		if k > h || k > w {
			k = 1
		}
		g := ConvGeom{KH: k, KW: k, StrideH: 1, StrideW: 1, PadH: rng.Intn(2), PadW: rng.Intn(2)}
		x := New(c, h, w)
		x.RandN(rng, 1)
		cx := Im2Col(x, g)
		y := New(cx.Shape...)
		y.RandN(rng, 1)
		// <Im2Col(x), y>
		var lhs float64
		for i := range cx.Data {
			lhs += float64(cx.Data[i]) * float64(y.Data[i])
		}
		// <x, Col2Im(y)>
		z := Col2Im(y, c, h, w, g)
		var rhs float64
		for i := range x.Data {
			rhs += float64(x.Data[i]) * float64(z.Data[i])
		}
		return math.Abs(lhs-rhs) < 1e-2*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestVolume(t *testing.T) {
	if Volume([]int{2, 3, 4}) != 24 || Volume(nil) != 1 {
		t.Fatal("Volume wrong")
	}
}

func TestApply(t *testing.T) {
	x := FromSlice([]float32{-1, 2}, 2)
	x.Apply(func(v float32) float32 { return v * v })
	if x.Data[0] != 1 || x.Data[1] != 4 {
		t.Fatalf("Apply: %v", x.Data)
	}
}

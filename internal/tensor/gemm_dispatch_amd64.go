//go:build amd64 && !noasm

package tensor

import "adcnn/internal/cpufeat"

// detectKernelTier maps the host feature set onto the widest usable
// kernel tier: AVX2 requires FMA and OS YMM-state support, SSE is the
// amd64 baseline.
func detectKernelTier() KernelTier {
	if cpufeat.Detect().UsableAVX2() {
		return TierAVX2
	}
	return TierSSE
}

// gemmAxpy2x4 dispatches the vectorised inner sweep. n is a multiple of
// 4 and at least 4; slices are at least n long.
func gemmAxpy2x4(c0, c1, b0, b1, b2, b3 []float32, aq *[8]float32, n int) {
	switch kernelTier {
	case TierAVX2:
		gemmKernel2x4AVX2(&c0[0], &c1[0], &b0[0], &b1[0], &b2[0], &b3[0], &aq[0], n)
	case TierSSE:
		gemmKernel2x4SSE(&c0[0], &c1[0], &b0[0], &b1[0], &b2[0], &b3[0], &aq[0], n)
	default:
		gemmAxpy2x4Generic(c0, c1, b0, b1, b2, b3, aq, n)
	}
}

//go:build amd64 && !noasm

package tensor

import "adcnn/internal/cpufeat"

// detectKernelTier maps the host feature set onto the widest usable
// kernel tier: AVX-512 requires F+BW+VL and OS ZMM/opmask state, AVX2
// requires FMA and OS YMM-state support, SSE is the amd64 baseline.
func detectKernelTier() KernelTier {
	f := cpufeat.Detect()
	if f.UsableAVX512() {
		return TierAVX512
	}
	if f.UsableAVX2() {
		return TierAVX2
	}
	return TierSSE
}

// hasVNNI gates the VPDPBUSD int8 fast path inside the AVX-512 tier.
// It is a separate flag rather than a tier because VNNI changes no
// numeric behaviour (the int8 dot is exact either way) — only the
// instruction mix. Tests flip it through setVNNI to exercise both
// kernels on VNNI hosts.
var hasVNNI = cpufeat.Detect().UsableVNNI()

// setVNNI forces the VNNI fast path on or off for parity tests and
// baseline benchmarks; returns the previous value. Enabling it on a
// host without VNNI would fault, so callers must only restore a value
// previously returned by setVNNI. Same caveat as SetKernelTier: not
// safe concurrently with running GEMMs.
func setVNNI(on bool) bool {
	prev := hasVNNI
	hasVNNI = on && cpufeat.Detect().UsableVNNI()
	return prev
}

// gemmAxpy2x4 dispatches the vectorised inner sweep. n is a multiple of
// 4 and at least 4; slices are at least n long.
func gemmAxpy2x4(c0, c1, b0, b1, b2, b3 []float32, aq *[8]float32, n int) {
	switch kernelTier {
	case TierAVX512:
		gemmKernel2x4AVX512(&c0[0], &c1[0], &b0[0], &b1[0], &b2[0], &b3[0], &aq[0], n)
	case TierAVX2:
		gemmKernel2x4AVX2(&c0[0], &c1[0], &b0[0], &b1[0], &b2[0], &b3[0], &aq[0], n)
	case TierSSE:
		gemmKernel2x4SSE(&c0[0], &c1[0], &b0[0], &b1[0], &b2[0], &b3[0], &aq[0], n)
	default:
		gemmAxpy2x4Generic(c0, c1, b0, b1, b2, b3, aq, n)
	}
}

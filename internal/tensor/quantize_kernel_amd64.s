//go:build amd64 && !noasm

#include "textflag.h"

// func quantizePackAVX2(dst *uint8, src *float32, n int, invScale, zpF float32)
//
// Vectorized QuantizeAffine: q = clamp(trunc(clamp(x·inv + zp, 0, 255)
// + 0.5)) for 32 floats per iteration. Bit-exact with the scalar path
// by construction: the multiply and add are separate (scalar rounds
// each op, so FMA would diverge), the clamp runs on the float BEFORE
// the +0.5 and truncating convert (so an overflowing CVTTPS2DQ result
// can never appear), and the pack stages only see values already in
// [0, 255.5) where their saturation is inert. n must be a positive
// multiple of 32. NaN inputs are unspecified (callers reject them via
// MinMax/AffineFor before quantizing).
//
// Packing 4×8 int32 → 32 bytes: two VPACKSSDW and one VPACKUSWB work
// per 128-bit lane, leaving the 32 bytes in dword-interleaved order;
// the final VPERMD with pattern [0 4 1 5 2 6 3 7] restores source
// order.
TEXT ·quantizePackAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

	VBROADCASTSS invScale+24(FP), Y12
	VBROADCASTSS zpF+28(FP), Y13
	VXORPS       Y14, Y14, Y14          // 0.0
	MOVL         $0x437F0000, AX        // 255.0f
	VMOVD        AX, X15
	VBROADCASTSS X15, Y15
	MOVL         $0x3F000000, AX        // 0.5f
	VMOVD        AX, X11
	VBROADCASTSS X11, Y11

	// VPERMD index [0 4 1 5 2 6 3 7] via the stack-free route: build in
	// Y10 from a constant table in memory.
	VMOVDQU permIdx<>(SB), Y10

	SHRQ $5, CX // iterations = n/32
	XORQ DX, DX

loop:
	VMOVUPS (SI), Y0
	VMOVUPS 32(SI), Y1
	VMOVUPS 64(SI), Y2
	VMOVUPS 96(SI), Y3

	VMULPS Y12, Y0, Y0 // x·invScale (separately rounded — no FMA)
	VMULPS Y12, Y1, Y1
	VMULPS Y12, Y2, Y2
	VMULPS Y12, Y3, Y3
	VADDPS Y13, Y0, Y0 // + zp
	VADDPS Y13, Y1, Y1
	VADDPS Y13, Y2, Y2
	VADDPS Y13, Y3, Y3
	VMAXPS Y14, Y0, Y0 // clamp low: max(v, 0)
	VMAXPS Y14, Y1, Y1
	VMAXPS Y14, Y2, Y2
	VMAXPS Y14, Y3, Y3
	VMINPS Y15, Y0, Y0 // clamp high: min(v, 255)
	VMINPS Y15, Y1, Y1
	VMINPS Y15, Y2, Y2
	VMINPS Y15, Y3, Y3
	VADDPS Y11, Y0, Y0 // + 0.5, then truncate = round half up
	VADDPS Y11, Y1, Y1
	VADDPS Y11, Y2, Y2
	VADDPS Y11, Y3, Y3

	VCVTTPS2DQ Y0, Y0
	VCVTTPS2DQ Y1, Y1
	VCVTTPS2DQ Y2, Y2
	VCVTTPS2DQ Y3, Y3

	VPACKSSDW Y1, Y0, Y0 // words, per-lane interleaved
	VPACKSSDW Y3, Y2, Y2
	VPACKUSWB Y2, Y0, Y0 // bytes, dword-interleaved
	VPERMD    Y0, Y10, Y0
	VMOVDQU   Y0, (DI)

	ADDQ $128, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  loop

	VZEROUPPER
	RET

DATA  permIdx<>+0(SB)/4, $0
DATA  permIdx<>+4(SB)/4, $4
DATA  permIdx<>+8(SB)/4, $1
DATA  permIdx<>+12(SB)/4, $5
DATA  permIdx<>+16(SB)/4, $2
DATA  permIdx<>+20(SB)/4, $6
DATA  permIdx<>+24(SB)/4, $3
DATA  permIdx<>+28(SB)/4, $7
GLOBL permIdx<>(SB), RODATA|NOPTR, $32

// func quantizePackAVX512(dst *uint8, src *float32, n int, invScale, zpF float32)
//
// The AVX-512 variant is simpler: 16 floats per step, and VPMOVDB
// narrows the 16 int32 lanes straight to 16 bytes with no shuffle
// fixup (the values are already clamped to [0, 255], so plain
// truncating narrow is exact). Same scalar-exact op order as above.
// n must be a positive multiple of 16.
TEXT ·quantizePackAVX512(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

	VBROADCASTSS invScale+24(FP), Z12
	VBROADCASTSS zpF+28(FP), Z13
	VPXORQ       Z14, Z14, Z14   // 0.0
	MOVL         $0x437F0000, AX // 255.0f
	VMOVD        AX, X15
	VBROADCASTSS X15, Z15
	MOVL         $0x3F000000, AX // 0.5f
	VMOVD        AX, X11
	VBROADCASTSS X11, Z11

	SHRQ $4, CX // iterations = n/16

loop:
	VMOVUPS (SI), Z0
	VMULPS  Z12, Z0, Z0 // x·invScale (no FMA — scalar rounds each op)
	VADDPS  Z13, Z0, Z0 // + zp
	VMAXPS  Z14, Z0, Z0 // clamp low
	VMINPS  Z15, Z0, Z0 // clamp high
	VADDPS  Z11, Z0, Z0 // + 0.5
	VCVTTPS2DQ Z0, Z0
	VPMOVDB Z0, (DI)

	ADDQ $64, SI
	ADDQ $16, DI
	DECQ CX
	JNZ  loop

	VZEROUPPER
	RET

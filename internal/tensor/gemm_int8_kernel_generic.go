package tensor

// int8Dot2x4Generic is the portable int8 micro-kernel, compiled on every
// platform: eight dot products between two packed weight rows and four
// packed activation columns, exact int32 accumulation. kp is a multiple
// of int8KStep; all slices are at least kp long. The build-tag parity
// test pins the assembly kernel against this implementation.
func int8Dot2x4Generic(dst *[8]int32, a0, a1 []int8, b0, b1, b2, b3 []uint8, kp int) {
	var s00, s01, s02, s03, s10, s11, s12, s13 int32
	a0 = a0[:kp]
	a1 = a1[:kp]
	b0 = b0[:kp]
	b1 = b1[:kp]
	b2 = b2[:kp]
	b3 = b3[:kp]
	for k := 0; k < kp; k++ {
		av0 := int32(a0[k])
		av1 := int32(a1[k])
		bv0 := int32(b0[k])
		bv1 := int32(b1[k])
		bv2 := int32(b2[k])
		bv3 := int32(b3[k])
		s00 += av0 * bv0
		s01 += av0 * bv1
		s02 += av0 * bv2
		s03 += av0 * bv3
		s10 += av1 * bv0
		s11 += av1 * bv1
		s12 += av1 * bv2
		s13 += av1 * bv3
	}
	dst[0], dst[1], dst[2], dst[3] = s00, s01, s02, s03
	dst[4], dst[5], dst[6], dst[7] = s10, s11, s12, s13
}

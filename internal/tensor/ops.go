package tensor

import (
	"fmt"
)

// Add computes t += o elementwise. Shapes must match.
func (t *Tensor) Add(o *Tensor) *Tensor {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: Add shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i := range t.Data {
		t.Data[i] += o.Data[i]
	}
	return t
}

// Sub computes t -= o elementwise. Shapes must match.
func (t *Tensor) Sub(o *Tensor) *Tensor {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: Sub shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i := range t.Data {
		t.Data[i] -= o.Data[i]
	}
	return t
}

// Mul computes t *= o elementwise (Hadamard product). Shapes must match.
func (t *Tensor) Mul(o *Tensor) *Tensor {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: Mul shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i := range t.Data {
		t.Data[i] *= o.Data[i]
	}
	return t
}

// Scale multiplies every element by a.
func (t *Tensor) Scale(a float32) *Tensor {
	for i := range t.Data {
		t.Data[i] *= a
	}
	return t
}

// AddScaled computes t += a*o elementwise (axpy). Shapes must match.
func (t *Tensor) AddScaled(a float32, o *Tensor) *Tensor {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: AddScaled shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i := range t.Data {
		t.Data[i] += a * o.Data[i]
	}
	return t
}

// MatMul computes C = A·B for 2-D tensors A[m,k] and B[k,n], writing into a
// freshly allocated C[m,n]. The inner loops are ordered (i,k,j) so the B row
// is streamed sequentially, which is the cache-friendly order for row-major
// data.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v x %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.Shape, b.Shape))
	}
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes c = a·b, reusing c's storage. c must be [m,n].
// The product runs on the blocked GEMM engine (see gemm.go): cache-blocked,
// register-tiled, and parallelised over row chunks for large shapes.
func MatMulInto(c, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto output shape %v, want [%d %d]", c.Shape, m, n))
	}
	GemmInto(c.Data, a.Data, b.Data, m, k, n)
}

// MatMulTransA computes C = Aᵀ·B for A[k,m], B[k,n] → C[m,n].
func MatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.Shape[0], a.Shape[1]
	if b.Shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulTransA mismatch %v x %v", a.Shape, b.Shape))
	}
	c := New(m, b.Shape[1])
	MatMulTransAInto(c, a, b)
	return c
}

// MatMulTransAInto computes c = aᵀ·b, reusing c's storage ([m,n] for
// A[k,m], B[k,n]). A is repacked through the scratch pool, so steady-state
// calls do not allocate.
func MatMulTransAInto(c, a, b *Tensor) {
	k, m := a.Shape[0], a.Shape[1]
	if b.Shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulTransAInto mismatch %v x %v", a.Shape, b.Shape))
	}
	n := b.Shape[1]
	if c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransAInto output shape %v, want [%d %d]", c.Shape, m, n))
	}
	GemmTransAInto(c.Data, a.Data, b.Data, m, k, n)
}

// MatMulTransB computes C = A·Bᵀ for A[m,k], B[n,k] → C[m,n].
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	if b.Shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulTransB mismatch %v x %v", a.Shape, b.Shape))
	}
	c := New(m, n)
	GemmTransBInto(c.Data, a.Data, b.Data, m, k, n)
	return c
}

// MatMulTransBInto computes c = a·bᵀ, reusing c's storage ([m,n] for
// A[m,k], B[n,k]). Steady-state calls do not allocate.
func MatMulTransBInto(c, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	if b.Shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulTransBInto mismatch %v x %v", a.Shape, b.Shape))
	}
	if c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto output shape %v, want [%d %d]", c.Shape, m, n))
	}
	GemmTransBInto(c.Data, a.Data, b.Data, m, k, n)
}

// Apply replaces each element x with f(x).
func (t *Tensor) Apply(f func(float32) float32) *Tensor {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
	return t
}

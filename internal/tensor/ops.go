package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// Add computes t += o elementwise. Shapes must match.
func (t *Tensor) Add(o *Tensor) *Tensor {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: Add shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i := range t.Data {
		t.Data[i] += o.Data[i]
	}
	return t
}

// Sub computes t -= o elementwise. Shapes must match.
func (t *Tensor) Sub(o *Tensor) *Tensor {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: Sub shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i := range t.Data {
		t.Data[i] -= o.Data[i]
	}
	return t
}

// Mul computes t *= o elementwise (Hadamard product). Shapes must match.
func (t *Tensor) Mul(o *Tensor) *Tensor {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: Mul shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i := range t.Data {
		t.Data[i] *= o.Data[i]
	}
	return t
}

// Scale multiplies every element by a.
func (t *Tensor) Scale(a float32) *Tensor {
	for i := range t.Data {
		t.Data[i] *= a
	}
	return t
}

// AddScaled computes t += a*o elementwise (axpy). Shapes must match.
func (t *Tensor) AddScaled(a float32, o *Tensor) *Tensor {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: AddScaled shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i := range t.Data {
		t.Data[i] += a * o.Data[i]
	}
	return t
}

// MatMul computes C = A·B for 2-D tensors A[m,k] and B[k,n], writing into a
// freshly allocated C[m,n]. The inner loops are ordered (i,k,j) so the B row
// is streamed sequentially, which is the cache-friendly order for row-major
// data.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v x %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.Shape, b.Shape))
	}
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes c = a·b, reusing c's storage. c must be [m,n].
// Large products parallelise over row blocks (rows of c are independent).
func MatMulInto(c, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto output shape %v, want [%d %d]", c.Shape, m, n))
	}
	c.Zero()
	rowWork := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			crow := c.Data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := b.Data[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
	const parallelThreshold = 1 << 20 // flops below this run inline
	if int64(m)*int64(k)*int64(n) < parallelThreshold || m < 4 {
		rowWork(0, m)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			rowWork(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMulTransA computes C = Aᵀ·B for A[k,m], B[k,n] → C[m,n].
func MatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.Shape[0], a.Shape[1]
	if b.Shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulTransA mismatch %v x %v", a.Shape, b.Shape))
	}
	n := b.Shape[1]
	c := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : (p+1)*m]
		brow := b.Data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := c.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// MatMulTransB computes C = A·Bᵀ for A[m,k], B[n,k] → C[m,n].
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	if b.Shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulTransB mismatch %v x %v", a.Shape, b.Shape))
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] = s
		}
	}
	return c
}

// Apply replaces each element x with f(x).
func (t *Tensor) Apply(f func(float32) float32) *Tensor {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
	return t
}

package tensor

import (
	"math/rand"
	"testing"
)

// Benchmarks for the quantized im2col packers on the two shapes that
// bound the model zoo: the 64ch 3×3 56² VGG entry layer (word-move
// path) and the 512ch 1×1 14² YOLO reduction (byte-gather path).

func benchIm2ColU8(b *testing.B, c, h, w int, g ConvGeom, ref bool) {
	rng := rand.New(rand.NewSource(1))
	src := make([]uint8, c*h*w)
	for i := range src {
		src[i] = uint8(rng.Intn(256))
	}
	kp := Int8KP(c * g.KH * g.KW)
	oh, ow := g.OutSize(h, w)
	dst := make([]uint8, oh*ow*kp)
	b.SetBytes(int64(len(dst)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ref {
			RefIm2ColU8Slice(dst, src, c, h, w, g, 128, kp)
		} else {
			Im2ColU8Slice(dst, src, c, h, w, g, 128, kp)
		}
	}
}

func benchIm2ColQuant(b *testing.B, c, h, w int, g ConvGeom, ref bool) {
	rng := rand.New(rand.NewSource(1))
	src := make([]float32, c*h*w)
	for i := range src {
		src[i] = rng.Float32()*2 - 1
	}
	kp := Int8KP(c * g.KH * g.KW)
	oh, ow := g.OutSize(h, w)
	dst := make([]uint8, oh*ow*kp)
	b.SetBytes(int64(len(dst)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ref {
			RefIm2ColQuantSlice(dst, src, c, h, w, g, 127.5, 128, kp)
		} else {
			Im2ColQuantSlice(dst, src, c, h, w, g, 127.5, 128, kp)
		}
	}
}

var (
	geom3x3 = ConvGeom{KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	geom1x1 = ConvGeom{KH: 1, KW: 1, StrideH: 1, StrideW: 1}
)

func BenchmarkIm2ColQuant3x3(b *testing.B)    { benchIm2ColQuant(b, 64, 56, 56, geom3x3, false) }
func BenchmarkIm2ColQuant3x3Ref(b *testing.B) { benchIm2ColQuant(b, 64, 56, 56, geom3x3, true) }
func BenchmarkIm2ColU83x3(b *testing.B)       { benchIm2ColU8(b, 64, 56, 56, geom3x3, false) }
func BenchmarkIm2ColU83x3Ref(b *testing.B)    { benchIm2ColU8(b, 64, 56, 56, geom3x3, true) }
func BenchmarkIm2ColU81x1(b *testing.B)       { benchIm2ColU8(b, 512, 14, 14, geom1x1, false) }
func BenchmarkIm2ColU81x1Ref(b *testing.B)    { benchIm2ColU8(b, 512, 14, 14, geom1x1, true) }

package tensor

import (
	"math/rand"
	"testing"
)

// BenchmarkGemmInt8Dot256 measures the int8 engine on the acceptance
// shape; compare against BenchmarkGemmTierSSE for the f32 SSE baseline.
func BenchmarkGemmInt8Dot256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const m, n, kp = 256, 256, 256
	a := randInt8(rng, m*kp)
	bb := randUint8(rng, n*kp)
	c := make([]int32, m*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmInt8DotInto(c, a, bb, m, n, kp)
	}
}

//go:build amd64 && !noasm

package tensor

// quantizePackAVX2 (quantize_kernel_amd64.s) quantizes n floats (n a
// positive multiple of 32) into uint8 levels, bit-exact with
// QuantizeAffine on finite inputs.
//
//go:noescape
func quantizePackAVX2(dst *uint8, src *float32, n int, invScale, zpF float32)

// quantizePackAVX512 is the 16-wide AVX-512 variant (n a positive
// multiple of 16), using VPMOVDB to narrow without shuffles.
//
//go:noescape
func quantizePackAVX512(dst *uint8, src *float32, n int, invScale, zpF float32)

// quantizeAffineSIMD quantizes a prefix of src into dst with the widest
// available vector kernel and returns how many elements it handled; the
// caller finishes the tail with the scalar quantizer. Returns 0 when no
// vector kernel applies (short input or generic tier).
func quantizeAffineSIMD(dst []uint8, src []float32, invScale, zpF float32) int {
	switch {
	case kernelTier >= TierAVX512:
		if n := len(src) &^ 15; n > 0 {
			quantizePackAVX512(&dst[0], &src[0], n, invScale, zpF)
			return n
		}
	case kernelTier >= TierAVX2:
		if n := len(src) &^ 31; n > 0 {
			quantizePackAVX2(&dst[0], &src[0], n, invScale, zpF)
			return n
		}
	}
	return 0
}

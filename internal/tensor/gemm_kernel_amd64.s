//go:build amd64 && !noasm

#include "textflag.h"

// func gemmKernel2x4SSE(c0, c1, b0, b1, b2, b3, a *float32, n int)
//
// SSE (amd64 baseline) axpy micro-kernel over two C rows:
//
//	c0[j] += a[0]*b0[j] + a[1]*b1[j] + a[2]*b2[j] + a[3]*b3[j]
//	c1[j] += a[4]*b0[j] + a[5]*b1[j] + a[6]*b2[j] + a[7]*b3[j]
//
// for j in [0, n), n a multiple of 4. The eight A scalars are broadcast
// into X8..X15 once; each loop iteration retires 64 flops against six
// 16-byte loads and two stores.
TEXT ·gemmKernel2x4SSE(SB), NOSPLIT, $0-64
	MOVQ c0+0(FP), DI
	MOVQ c1+8(FP), SI
	MOVQ b0+16(FP), R8
	MOVQ b1+24(FP), R9
	MOVQ b2+32(FP), R10
	MOVQ b3+40(FP), R11
	MOVQ a+48(FP), AX
	MOVQ n+56(FP), CX

	// Broadcast a[0..7] across the four lanes of X8..X15.
	MOVSS  0(AX), X8
	SHUFPS $0x00, X8, X8
	MOVSS  4(AX), X9
	SHUFPS $0x00, X9, X9
	MOVSS  8(AX), X10
	SHUFPS $0x00, X10, X10
	MOVSS  12(AX), X11
	SHUFPS $0x00, X11, X11
	MOVSS  16(AX), X12
	SHUFPS $0x00, X12, X12
	MOVSS  20(AX), X13
	SHUFPS $0x00, X13, X13
	MOVSS  24(AX), X14
	SHUFPS $0x00, X14, X14
	MOVSS  28(AX), X15
	SHUFPS $0x00, X15, X15

	XORQ DX, DX // byte offset into the rows
	SHRQ $2, CX // iterations = n/4
	JZ   done

loop:
	MOVUPS (R8)(DX*1), X0
	MOVUPS (R9)(DX*1), X1
	MOVUPS (R10)(DX*1), X2
	MOVUPS (R11)(DX*1), X3
	MOVUPS (DI)(DX*1), X4
	MOVUPS (SI)(DX*1), X5

	// Row 0: X4 += X0*a0 + X1*a1 + X2*a2 + X3*a3 (pairwise tree).
	MOVAPS X0, X6
	MULPS  X8, X6
	MOVAPS X1, X7
	MULPS  X9, X7
	ADDPS  X7, X6
	MOVAPS X2, X7
	MULPS  X10, X7
	ADDPS  X7, X6
	MOVAPS X3, X7
	MULPS  X11, X7
	ADDPS  X7, X6
	ADDPS  X6, X4
	MOVUPS X4, (DI)(DX*1)

	// Row 1: X5 += X0*a4 + X1*a5 + X2*a6 + X3*a7.
	MOVAPS X0, X6
	MULPS  X12, X6
	MOVAPS X1, X7
	MULPS  X13, X7
	ADDPS  X7, X6
	MOVAPS X2, X7
	MULPS  X14, X7
	ADDPS  X7, X6
	MOVAPS X3, X7
	MULPS  X15, X7
	ADDPS  X7, X6
	ADDPS  X6, X5
	MOVUPS X5, (SI)(DX*1)

	ADDQ $16, DX
	DECQ CX
	JNZ  loop

done:
	RET

// func gemmKernel2x4AVX2(c0, c1, b0, b1, b2, b3, a *float32, n int)
//
// AVX2+FMA widening of the kernel above: the same two-row axpy update,
// 8 floats per step with fused multiply-add (128 flops per iteration
// against six 32-byte loads and two stores). n is a multiple of 4; the
// possible 4-column remainder after the 8-wide loop runs one VEX-128
// step, keeping everything VEX-encoded so there is no SSE/AVX
// transition penalty before VZEROUPPER.
TEXT ·gemmKernel2x4AVX2(SB), NOSPLIT, $0-64
	MOVQ c0+0(FP), DI
	MOVQ c1+8(FP), SI
	MOVQ b0+16(FP), R8
	MOVQ b1+24(FP), R9
	MOVQ b2+32(FP), R10
	MOVQ b3+40(FP), R11
	MOVQ a+48(FP), AX
	MOVQ n+56(FP), CX

	// Broadcast a[0..7] across the eight lanes of Y8..Y15.
	VBROADCASTSS 0(AX), Y8
	VBROADCASTSS 4(AX), Y9
	VBROADCASTSS 8(AX), Y10
	VBROADCASTSS 12(AX), Y11
	VBROADCASTSS 16(AX), Y12
	VBROADCASTSS 20(AX), Y13
	VBROADCASTSS 24(AX), Y14
	VBROADCASTSS 28(AX), Y15

	XORQ DX, DX // byte offset into the rows
	MOVQ CX, BX
	SHRQ $3, BX // 8-wide iterations = n/8
	JZ   tail4

loop8:
	VMOVUPS (R8)(DX*1), Y0
	VMOVUPS (R9)(DX*1), Y1
	VMOVUPS (R10)(DX*1), Y2
	VMOVUPS (R11)(DX*1), Y3
	VMOVUPS (DI)(DX*1), Y4
	VMOVUPS (SI)(DX*1), Y5

	VFMADD231PS Y8, Y0, Y4  // Y4 += b0*a0
	VFMADD231PS Y9, Y1, Y4  // Y4 += b1*a1
	VFMADD231PS Y10, Y2, Y4 // Y4 += b2*a2
	VFMADD231PS Y11, Y3, Y4 // Y4 += b3*a3
	VFMADD231PS Y12, Y0, Y5 // Y5 += b0*a4
	VFMADD231PS Y13, Y1, Y5 // Y5 += b1*a5
	VFMADD231PS Y14, Y2, Y5 // Y5 += b2*a6
	VFMADD231PS Y15, Y3, Y5 // Y5 += b3*a7

	VMOVUPS Y4, (DI)(DX*1)
	VMOVUPS Y5, (SI)(DX*1)

	ADDQ $32, DX
	DECQ BX
	JNZ  loop8

tail4:
	ANDQ $7, CX // remainder columns: 0 or 4 (n is a multiple of 4)
	JZ   done

	VMOVUPS (R8)(DX*1), X0
	VMOVUPS (R9)(DX*1), X1
	VMOVUPS (R10)(DX*1), X2
	VMOVUPS (R11)(DX*1), X3
	VMOVUPS (DI)(DX*1), X4
	VMOVUPS (SI)(DX*1), X5

	VFMADD231PS X8, X0, X4
	VFMADD231PS X9, X1, X4
	VFMADD231PS X10, X2, X4
	VFMADD231PS X11, X3, X4
	VFMADD231PS X12, X0, X5
	VFMADD231PS X13, X1, X5
	VFMADD231PS X14, X2, X5
	VFMADD231PS X15, X3, X5

	VMOVUPS X4, (DI)(DX*1)
	VMOVUPS X5, (SI)(DX*1)

done:
	VZEROUPPER
	RET

// func gemmKernel2x4AVX512(c0, c1, b0, b1, b2, b3, a *float32, n int)
//
// AVX-512 widening of the same two-row axpy update: 16 floats per step
// (256 flops per iteration against six 64-byte loads and two stores).
// n is a multiple of 4; after the 16-wide loop the 8- and 4-column
// remainders run one YMM and one XMM step against the low lanes of the
// same broadcast registers (Y8 is the low half of Z8), so every path
// stays VEX/EVEX-encoded until VZEROUPPER.
TEXT ·gemmKernel2x4AVX512(SB), NOSPLIT, $0-64
	MOVQ c0+0(FP), DI
	MOVQ c1+8(FP), SI
	MOVQ b0+16(FP), R8
	MOVQ b1+24(FP), R9
	MOVQ b2+32(FP), R10
	MOVQ b3+40(FP), R11
	MOVQ a+48(FP), AX
	MOVQ n+56(FP), CX

	// Broadcast a[0..7] across the sixteen lanes of Z8..Z15.
	VBROADCASTSS 0(AX), Z8
	VBROADCASTSS 4(AX), Z9
	VBROADCASTSS 8(AX), Z10
	VBROADCASTSS 12(AX), Z11
	VBROADCASTSS 16(AX), Z12
	VBROADCASTSS 20(AX), Z13
	VBROADCASTSS 24(AX), Z14
	VBROADCASTSS 28(AX), Z15

	XORQ DX, DX // byte offset into the rows
	MOVQ CX, BX
	SHRQ $4, BX // 16-wide iterations = n/16
	JZ   tail8

loop16:
	VMOVUPS (R8)(DX*1), Z0
	VMOVUPS (R9)(DX*1), Z1
	VMOVUPS (R10)(DX*1), Z2
	VMOVUPS (R11)(DX*1), Z3
	VMOVUPS (DI)(DX*1), Z4
	VMOVUPS (SI)(DX*1), Z5

	VFMADD231PS Z8, Z0, Z4  // Z4 += b0*a0
	VFMADD231PS Z9, Z1, Z4  // Z4 += b1*a1
	VFMADD231PS Z10, Z2, Z4 // Z4 += b2*a2
	VFMADD231PS Z11, Z3, Z4 // Z4 += b3*a3
	VFMADD231PS Z12, Z0, Z5 // Z5 += b0*a4
	VFMADD231PS Z13, Z1, Z5 // Z5 += b1*a5
	VFMADD231PS Z14, Z2, Z5 // Z5 += b2*a6
	VFMADD231PS Z15, Z3, Z5 // Z5 += b3*a7

	VMOVUPS Z4, (DI)(DX*1)
	VMOVUPS Z5, (SI)(DX*1)

	ADDQ $64, DX
	DECQ BX
	JNZ  loop16

tail8:
	TESTQ $8, CX // an 8-column remainder?
	JZ    tail4

	VMOVUPS (R8)(DX*1), Y0
	VMOVUPS (R9)(DX*1), Y1
	VMOVUPS (R10)(DX*1), Y2
	VMOVUPS (R11)(DX*1), Y3
	VMOVUPS (DI)(DX*1), Y4
	VMOVUPS (SI)(DX*1), Y5

	VFMADD231PS Y8, Y0, Y4
	VFMADD231PS Y9, Y1, Y4
	VFMADD231PS Y10, Y2, Y4
	VFMADD231PS Y11, Y3, Y4
	VFMADD231PS Y12, Y0, Y5
	VFMADD231PS Y13, Y1, Y5
	VFMADD231PS Y14, Y2, Y5
	VFMADD231PS Y15, Y3, Y5

	VMOVUPS Y4, (DI)(DX*1)
	VMOVUPS Y5, (SI)(DX*1)

	ADDQ $32, DX

tail4:
	TESTQ $4, CX // a 4-column remainder?
	JZ    done512

	VMOVUPS (R8)(DX*1), X0
	VMOVUPS (R9)(DX*1), X1
	VMOVUPS (R10)(DX*1), X2
	VMOVUPS (R11)(DX*1), X3
	VMOVUPS (DI)(DX*1), X4
	VMOVUPS (SI)(DX*1), X5

	VFMADD231PS X8, X0, X4
	VFMADD231PS X9, X1, X4
	VFMADD231PS X10, X2, X4
	VFMADD231PS X11, X3, X4
	VFMADD231PS X12, X0, X5
	VFMADD231PS X13, X1, X5
	VFMADD231PS X14, X2, X5
	VFMADD231PS X15, X3, X5

	VMOVUPS X4, (DI)(DX*1)
	VMOVUPS X5, (SI)(DX*1)

done512:
	VZEROUPPER
	RET

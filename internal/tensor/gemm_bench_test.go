package tensor_test

// Kernel microbenchmarks over the GEMM shapes the model zoo produces.
// Run with:
//
//	go test ./internal/tensor -bench 'Gemm|MatMul|Im2Col' -benchmem
//
// adcnn-bench -exp kernels runs the same suite programmatically (via
// internal/tensor/kernelbench) and records it to BENCH_kernels.json.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"adcnn/internal/tensor"
	"adcnn/internal/tensor/kernelbench"
)

func randMat(rng *rand.Rand, r, c int) *tensor.Tensor {
	t := tensor.New(r, c)
	t.RandU(rng, -1, 1)
	return t
}

func benchFlops(b *testing.B, m, k, n int) {
	b.Helper()
	b.ReportAllocs()
	b.SetBytes(0)
	b.ReportMetric(2*float64(m)*float64(k)*float64(n)*float64(b.N)/float64(b.Elapsed().Nanoseconds()), "GFLOP/s")
}

// BenchmarkMatMulTransB256 is the acceptance shape: blocked engine vs the
// retained naive reference, single thread.
func BenchmarkMatMulTransB256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, 256, 256)
	bt := randMat(rng, 256, 256)
	c := tensor.New(256, 256)
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	b.Run("ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.RefMatMulTransB(a, bt)
		}
		benchFlops(b, 256, 256, 256)
	})
	b.Run("blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MatMulTransBInto(c, a, bt)
		}
		benchFlops(b, 256, 256, 256)
	})
}

// BenchmarkMatMulInto256 measures the main C=A·B path, single-thread and
// at full GOMAXPROCS.
func BenchmarkMatMulInto256(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 256, 256)
	bb := randMat(rng, 256, 256)
	c := tensor.New(256, 256)
	b.Run("ref-1t", func(b *testing.B) {
		old := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(old)
		for i := 0; i < b.N; i++ {
			tensor.RefMatMulInto(c, a, bb)
		}
		benchFlops(b, 256, 256, 256)
	})
	b.Run("blocked-1t", func(b *testing.B) {
		old := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(old)
		for i := 0; i < b.N; i++ {
			tensor.MatMulInto(c, a, bb)
		}
		benchFlops(b, 256, 256, 256)
	})
	b.Run(fmt.Sprintf("blocked-%dt", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MatMulInto(c, a, bb)
		}
		benchFlops(b, 256, 256, 256)
	})
}

// BenchmarkGemmZooShapes sweeps the conv GEMM shapes from the model zoo.
func BenchmarkGemmZooShapes(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, cs := range kernelbench.ZooConvShapes {
		a := randMat(rng, cs.M, cs.K)
		bb := randMat(rng, cs.K, cs.N)
		c := tensor.New(cs.M, cs.N)
		b.Run(cs.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.MatMulInto(c, a, bb)
			}
			benchFlops(b, cs.M, cs.K, cs.N)
		})
	}
}

// BenchmarkIm2Col measures the pooled column unfold on a VGG-sized map.
func BenchmarkIm2Col(b *testing.B) {
	g := tensor.ConvGeom{KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	rng := rand.New(rand.NewSource(4))
	x := tensor.New(64, 56, 56)
	x.RandU(rng, -1, 1)
	buf := tensor.GetBuf(g.ColsLen(64, 56, 56))
	defer tensor.PutBuf(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Im2ColSlice(buf, x.Data, 64, 56, 56, g)
	}
}

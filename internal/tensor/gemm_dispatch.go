package tensor

import "fmt"

// KernelTier identifies which micro-kernel implementation the GEMM
// engine dispatches to. Tiers are ordered: a higher tier strictly
// requires the CPU features of the lower ones.
type KernelTier int

const (
	// TierGeneric is the portable pure-Go kernel (always available).
	TierGeneric KernelTier = iota
	// TierSSE is the amd64-baseline SSE kernel (4-wide f32).
	TierSSE
	// TierAVX2 is the AVX2+FMA kernel (8-wide f32, 16-byte int8 dot).
	TierAVX2
	// TierAVX512 is the AVX-512 F+BW+VL kernel (16-wide f32, 32-byte
	// int8 dot, with a VNNI fast path when the CPU has it).
	TierAVX512
)

// String names the tier for logs and benchmark reports.
func (t KernelTier) String() string {
	switch t {
	case TierGeneric:
		return "generic"
	case TierSSE:
		return "sse"
	case TierAVX2:
		return "avx2"
	case TierAVX512:
		return "avx512"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// detectedTier is the widest tier the host supports; kernelTier is the
// tier actually dispatched, normally equal to detectedTier but lowerable
// through SetKernelTier for baseline measurements and parity tests.
var (
	detectedTier = detectKernelTier()
	kernelTier   = detectedTier
)

// DetectedKernelTier returns the widest micro-kernel tier the host CPU
// (and OS register-state support) allows.
func DetectedKernelTier() KernelTier { return detectedTier }

// CurrentKernelTier returns the tier the GEMM engine is dispatching to.
func CurrentKernelTier() KernelTier { return kernelTier }

// SetKernelTier forces dispatch to a lower (or equal) tier than detected,
// so benchmarks can measure e.g. the SSE baseline on an AVX2 host and
// tests can exercise every reachable kernel. Requesting a tier above the
// detected one is an error. Not safe to call concurrently with running
// GEMMs; it is a measurement/testing knob, not a hot-path switch.
func SetKernelTier(t KernelTier) error {
	if t < TierGeneric || t > detectedTier {
		return fmt.Errorf("tensor: kernel tier %v not available (detected %v)", t, detectedTier)
	}
	kernelTier = t
	return nil
}

// Package tensor provides a minimal dense float32 tensor used by the ADCNN
// neural-network substrate. Layout is row-major; convolutional data uses
// NCHW order (batch, channel, height, width).
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float32 array with an explicit shape.
// The zero value is an empty tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero-filled tensor with the given shape.
// A nil or empty shape produces a scalar-like tensor of one element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %v", shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d)", len(data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: data}
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i, d := range t.Shape {
		if o.Shape[i] != d {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of t with a new shape of equal volume.
// The data is shared with t.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: reshape %v -> %v volume mismatch", t.Shape, shape))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: t.Data}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + ix
	}
	return off
}

// RandN fills t with samples from N(0, stddev²) using rng.
func (t *Tensor) RandN(rng *rand.Rand, stddev float32) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64()) * stddev
	}
}

// RandU fills t with uniform samples in [lo, hi) using rng.
func (t *Tensor) RandU(rng *rand.Rand, lo, hi float32) {
	for i := range t.Data {
		t.Data[i] = lo + (hi-lo)*rng.Float32()
	}
}

// Sum returns the sum of all elements (accumulated in float64).
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Max returns the maximum element; it panics on an empty tensor.
func (t *Tensor) Max() float32 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element; it panics on an empty tensor.
func (t *Tensor) Min() float32 {
	if len(t.Data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// ArgMax returns the index of the largest element.
func (t *Tensor) ArgMax() int {
	best, bi := float32(math.Inf(-1)), 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Sparsity returns the fraction of elements equal to zero.
func (t *Tensor) Sparsity() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	n := 0
	for _, v := range t.Data {
		if v == 0 {
			n++
		}
	}
	return float64(n) / float64(len(t.Data))
}

// String renders a compact description, not the full contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.Shape)
}

// Equal reports whether t and o have the same shape and elementwise values
// within tolerance eps.
func (t *Tensor) Equal(o *Tensor, eps float32) bool {
	if !t.SameShape(o) {
		return false
	}
	for i, v := range t.Data {
		d := v - o.Data[i]
		if d < -eps || d > eps {
			return false
		}
	}
	return true
}

// Volume returns the number of elements implied by shape.
func Volume(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

package tensor

import (
	"runtime"

	"adcnn/internal/parallel"
)

// Int8 GEMM engine. The quantized inference path multiplies per-channel
// int8 weights against uint8 affine-quantized activations, accumulating
// exactly in int32 and requantizing back to float32 afterwards. Unlike
// the f32 engine (axpy over a [k,n] B), both operands here are packed
// dot-product style so every k sweep is two contiguous byte streams:
//
//	A: [m][kp] int8  — weight rows, zero-padded from k to kp
//	B: [n][kp] uint8 — activation columns (transposed im2col), the
//	                   k..kp-1 tail zero-filled
//	C: [m][n] int32  — c[i*n+j] = Σ_k a[i][k]·b[j][k]
//
// kp is k rounded up to a multiple of int8KStep so the micro-kernels
// never need a k tail. Because the A pad is zero the B pad value never
// matters, but packers zero it anyway to keep buffers deterministic.

const (
	// int8KStep is the k granularity of the int8 micro-kernels: 16
	// bytes per step (one SSE-width load, sign/zero-extended to 16
	// words and multiply-accumulated exactly via VPMADDWD on AVX2).
	int8KStep = 16
	// int8MaxKP bounds kp so the int32 accumulator cannot overflow:
	// each product is at most 128·255, so |acc| ≤ kp·32640 must stay
	// below 2^31.
	int8MaxKP = 65776
	// int8ParallelMACs: m·n·kp below this runs inline.
	int8ParallelMACs = 1 << 20
)

// Int8KP returns k rounded up to the packing granularity of the int8
// GEMM operands.
func Int8KP(k int) int { return (k + int8KStep - 1) &^ (int8KStep - 1) }

// GemmInt8DotInto computes C = A·Bᵀ over the packed int8 layout above:
// c[i*n+j] = Σ_k a[i*kp+k]·b[j*kp+k], exact int32 arithmetic. kp must be
// a positive multiple of int8KStep and at most int8MaxKP.
func GemmInt8DotInto(c []int32, a []int8, b []uint8, m, n, kp int) {
	if kp <= 0 || kp%int8KStep != 0 || kp > int8MaxKP {
		panic("tensor: GemmInt8DotInto kp must be a multiple of 16 in (0, 65776]")
	}
	if len(c) < m*n || len(a) < m*kp || len(b) < n*kp {
		panic("tensor: GemmInt8DotInto operand shorter than its shape")
	}
	if m == 0 || n == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if int64(m)*int64(n)*int64(kp) < int8ParallelMACs || workers <= 1 || m < 4 {
		gemmInt8Rows(c, a, b, 0, m, n, kp)
		return
	}
	// Chunks are multiples of the 2-row register tile so only the last
	// range per worker hits the remainder path.
	chunk := (m + 4*workers - 1) / (4 * workers)
	chunk = (chunk + 1) &^ 1
	parallel.ForChunked(m, chunk, func(lo, hi int) {
		gemmInt8Rows(c, a, b, lo, hi, n, kp)
	})
}

// gemmInt8Rows fills C rows [lo, hi) with 2×4 register tiles.
func gemmInt8Rows(c []int32, a []int8, b []uint8, lo, hi, n, kp int) {
	var acc [8]int32
	i := lo
	for ; i+1 < hi; i += 2 {
		a0 := a[i*kp : (i+1)*kp]
		a1 := a[(i+1)*kp : (i+2)*kp]
		c0 := c[i*n : (i+1)*n]
		c1 := c[(i+1)*n : (i+2)*n]
		j := 0
		for ; j+3 < n; j += 4 {
			int8Dot2x4(&acc, a0, a1,
				b[j*kp:(j+1)*kp], b[(j+1)*kp:(j+2)*kp],
				b[(j+2)*kp:(j+3)*kp], b[(j+3)*kp:(j+4)*kp], kp)
			c0[j], c0[j+1], c0[j+2], c0[j+3] = acc[0], acc[1], acc[2], acc[3]
			c1[j], c1[j+1], c1[j+2], c1[j+3] = acc[4], acc[5], acc[6], acc[7]
		}
		for ; j < n; j++ {
			bj := b[j*kp : (j+1)*kp]
			c0[j] = int8DotGeneric(a0, bj)
			c1[j] = int8DotGeneric(a1, bj)
		}
	}
	if i < hi {
		ai := a[i*kp : (i+1)*kp]
		ci := c[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			ci[j] = int8DotGeneric(ai, b[j*kp:(j+1)*kp])
		}
	}
}

// RefGemmInt8DotInto is the retained naive oracle for GemmInt8DotInto:
// same contract, scalar triple loop.
func RefGemmInt8DotInto(c []int32, a []int8, b []uint8, m, n, kp int) {
	for i := 0; i < m; i++ {
		ar := a[i*kp : (i+1)*kp]
		for j := 0; j < n; j++ {
			br := b[j*kp : (j+1)*kp]
			var s int32
			for k := range ar {
				s += int32(ar[k]) * int32(br[k])
			}
			c[i*n+j] = s
		}
	}
}

// int8DotGeneric is the scalar single-dot tail kernel.
func int8DotGeneric(a []int8, b []uint8) int32 {
	var s int32
	for k := range a {
		s += int32(a[k]) * int32(b[k])
	}
	return s
}

// RequantizeI32Row maps one output-channel row of int32 accumulators back
// to float32: dst[j] = scale·(acc[j]−corr) + bias, where corr is the
// zero-point correction zp·Σ_k w_q[k] and scale the product of the weight
// channel scale and the activation scale.
func RequantizeI32Row(dst []float32, acc []int32, scale float32, corr int32, bias float32) {
	acc = acc[:len(dst)]
	for j := range dst {
		dst[j] = scale*float32(acc[j]-corr) + bias
	}
}

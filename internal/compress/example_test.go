package compress_test

import (
	"fmt"

	"adcnn/internal/compress"
	"adcnn/internal/tensor"
)

// Compress a sparse activation tile the way a Conv node does before
// transmitting it: 4-bit quantization over the clipped-ReLU range plus
// run-length encoding.
func ExamplePipeline_Encode() {
	p := compress.NewPipeline(4, 2.0)
	tile := tensor.New(1, 4, 8, 8)
	tile.Data[5] = 1.0 // one active neuron in a sea of zeros
	tile.Data[77] = 0.5

	payload, err := p.Encode(tile)
	if err != nil {
		panic(err)
	}
	back, err := compress.Decode(payload)
	if err != nil {
		panic(err)
	}
	fmt.Printf("raw %dB -> wire %dB, shape preserved: %v\n",
		compress.RawSize(tile), len(payload), back.SameShape(tile))
	// Output: raw 1024B -> wire 39B, shape preserved: true
}

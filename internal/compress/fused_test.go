package compress

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adcnn/internal/tensor"
)

// fusedSparseTensor builds a clipped-ReLU-shaped tensor: values in [0, rng]
// with roughly the requested fraction of exact zeros, plus a sprinkle of
// boundary-adjacent values that stress the zero-threshold classification.
func fusedSparseTensor(r *rand.Rand, n int, sparsity float64, rng float32) *tensor.Tensor {
	t := tensor.New(1, 1, 1, n)
	step := NewPipeline(4, rng).Quantizer().Step()
	for i := range t.Data {
		switch {
		case r.Float64() < sparsity:
			t.Data[i] = 0
		case r.Float64() < 0.1:
			// Hug the level-0/level-1 boundary.
			t.Data[i] = step * float32(r.Float64())
		default:
			t.Data[i] = rng * float32(r.Float64())
		}
	}
	return t
}

// TestFusedEncodeMatchesReference pins the fused single-pass encoder
// byte-identical to the retained quantize-then-RLE reference across
// sparsities, bit widths, and ranges.
func TestFusedEncodeMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, bits := range []int{1, 2, 4, 8, 12, 16} {
		for _, rng := range []float32{0.5, 1, 6} {
			p := NewPipeline(bits, rng)
			for _, sp := range []float64{0, 0.5, 0.8, 0.95, 1} {
				for trial := 0; trial < 20; trial++ {
					x := fusedSparseTensor(r, 1+r.Intn(2048), sp, rng)
					want, err := p.refEncode(x)
					if err != nil {
						t.Fatalf("refEncode: %v", err)
					}
					got, err := p.Encode(x)
					if err != nil {
						t.Fatalf("Encode: %v", err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("bits=%d rng=%v sparsity=%v: fused payload differs from reference (%d vs %d bytes)",
							bits, rng, sp, len(got), len(want))
					}
					if n := p.EncodedSize(x); n != len(want) {
						t.Fatalf("EncodedSize=%d, payload=%d bytes", n, len(want))
					}
					if rn := p.refEncodedSize(x); rn != len(want) {
						t.Fatalf("refEncodedSize=%d, payload=%d bytes", rn, len(want))
					}
					if max := p.MaxEncodedSize(x); len(want) > max {
						t.Fatalf("payload %d bytes exceeds MaxEncodedSize %d", len(want), max)
					}
				}
			}
		}
	}
}

// TestFusedEncodeMatchesReferenceQuick fuzzes arbitrary float patterns
// (negatives, overshoots past Range, subnormals) through both encoders.
func TestFusedEncodeMatchesReferenceQuick(t *testing.T) {
	p := NewPipeline(4, 1)
	f := func(vals []float32) bool {
		for i, v := range vals {
			if v != v { // NaN is outside the codec's contract
				vals[i] = 0
			}
		}
		x := tensor.FromSlice(vals, len(vals))
		want, err1 := p.refEncode(x)
		got, err2 := p.Encode(x)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestFusedDecodeMatchesReference pins DecodeInto value-identical to the
// reference decoder on round-tripped payloads.
func TestFusedDecodeMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, bits := range []int{1, 4, 8, 12} {
		p := NewPipeline(bits, 6)
		for _, sp := range []float64{0.5, 0.8, 0.95} {
			x := fusedSparseTensor(r, 4096, sp, 6)
			payload, err := p.Encode(x)
			if err != nil {
				t.Fatal(err)
			}
			want, err := refDecode(payload)
			if err != nil {
				t.Fatalf("refDecode: %v", err)
			}
			got, err := Decode(payload)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !shapeEq(got.Shape, want.Shape) {
				t.Fatalf("shape %v vs %v", got.Shape, want.Shape)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("bits=%d sparsity=%v: value %d: fused %v vs reference %v",
						bits, sp, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDecodeIntoReusesStorage checks the documented storage contract:
// a destination with enough capacity is reused in place, and shrinking
// payloads never leak the old backing array past the pool.
func TestDecodeIntoReusesStorage(t *testing.T) {
	p := NewPipeline(4, 6)
	r := rand.New(rand.NewSource(3))
	big := fusedSparseTensor(r, 1024, 0.8, 6)
	payload, err := p.Encode(big)
	if err != nil {
		t.Fatal(err)
	}
	var dst tensor.Tensor
	if err := DecodeInto(&dst, payload); err != nil {
		t.Fatal(err)
	}
	ptr := &dst.Data[0]
	small := fusedSparseTensor(r, 100, 0.8, 6)
	payload2, err := p.Encode(small)
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeInto(&dst, payload2); err != nil {
		t.Fatal(err)
	}
	if len(dst.Data) != 100 || &dst.Data[0] != ptr {
		t.Fatalf("smaller decode should reuse the existing backing array")
	}
}

// TestEncodeIntoAppends checks append semantics: existing bytes in dst
// are preserved and the payload lands after them.
func TestEncodeIntoAppends(t *testing.T) {
	p := NewPipeline(4, 6)
	x := tensor.FromSlice([]float32{0, 1, 0, 3.5}, 4)
	prefix := []byte{0xde, 0xad}
	out, err := p.EncodeInto(append([]byte(nil), prefix...), x)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:2], prefix) {
		t.Fatalf("prefix clobbered: %x", out[:2])
	}
	plain, err := p.Encode(x)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[2:], plain) {
		t.Fatalf("appended payload differs from plain encode")
	}
}

// TestEncodeIntoZeroAlloc: steady-state fused encode into a pre-sized
// buffer must not allocate.
func TestEncodeIntoZeroAlloc(t *testing.T) {
	p := NewPipeline(4, 6)
	r := rand.New(rand.NewSource(4))
	x := fusedSparseTensor(r, 4096, 0.8, 6)
	buf := tensor.GetBytes(p.MaxEncodedSize(x))
	var err error
	allocs := testing.AllocsPerRun(100, func() {
		buf, err = p.EncodeInto(buf[:0], x)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EncodeInto allocated %.1f times per op, want 0", allocs)
	}
}

// TestDecodeIntoZeroAlloc: steady-state fused decode into a warm
// destination must not allocate (after the one-time LUT build).
func TestDecodeIntoZeroAlloc(t *testing.T) {
	p := NewPipeline(4, 6)
	r := rand.New(rand.NewSource(5))
	x := fusedSparseTensor(r, 4096, 0.8, 6)
	payload, err := p.Encode(x)
	if err != nil {
		t.Fatal(err)
	}
	var dst tensor.Tensor
	if err := DecodeInto(&dst, payload); err != nil { // warm shape + LUT
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := DecodeInto(&dst, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeInto allocated %.1f times per op, want 0", allocs)
	}
}

// TestEncodedSizeZeroAlloc guards the satellite fix: EncodedSize (and
// Ratio on top of it) must not materialise a throwaway level slice.
func TestEncodedSizeZeroAlloc(t *testing.T) {
	p := NewPipeline(4, 6)
	r := rand.New(rand.NewSource(6))
	x := fusedSparseTensor(r, 4096, 0.8, 6)
	allocs := testing.AllocsPerRun(100, func() {
		_ = p.EncodedSize(x)
	})
	if allocs != 0 {
		t.Fatalf("EncodedSize allocated %.1f times per op, want 0", allocs)
	}
}

// TestDecodeVolumeLimit: a tiny payload must not be able to declare a
// near-2^31 tensor and drag the decoder into a giant allocation.
func TestDecodeVolumeLimit(t *testing.T) {
	// rank=1, dim=2^30, range=1.0, total=2^30, bits=4, one zero-run token.
	payload := []byte{1, 0, 0, 0, 0x40}
	payload = append(payload, 0, 0, 0x80, 0x3f) // range 1.0
	payload = append(payload, 0, 0, 0, 0x40, 4) // total 2^30, bits 4
	payload = append(payload, 0x00, 0x80, 0x80, 0x80, 0x80, 0x04)
	if err := DecodeInto(&tensor.Tensor{}, payload); err == nil {
		t.Fatal("decoder accepted a 2^30-element declaration")
	}
}

// TestZeroThresholdEdgeRanges exercises the fused encoder where the
// zero threshold is most fragile: denormal steps and huge ranges.
func TestZeroThresholdEdgeRanges(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, rng := range []float32{1e-38, 1e-30, 1e30, math.MaxFloat32} {
		p := NewPipeline(4, rng)
		x := fusedSparseTensor(r, 512, 0.5, rng)
		want, err := p.refEncode(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Encode(x)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("range %v: fused payload differs from reference", rng)
		}
	}
}

// Benchmarks for the fused hot paths at the paper's operating point
// (4-bit, 0.8 sparsity). codecbench sweeps the full grid; these exist so
// `go test -bench` and pprof work directly on the package.
func BenchmarkFusedEncode(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	t := fusedSparseTensor(r, 65536, 0.8, 6)
	p := NewPipeline(4, 6)
	buf := tensor.GetBytes(p.MaxEncodedSize(t))
	defer tensor.PutBytes(buf)
	b.SetBytes(int64(4 * t.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := p.EncodeInto(buf[:0], t)
		if err != nil {
			b.Fatal(err)
		}
		buf = out
	}
}

func BenchmarkFusedDecode(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	t := fusedSparseTensor(r, 65536, 0.8, 6)
	p := NewPipeline(4, 6)
	payload, err := p.Encode(t)
	if err != nil {
		b.Fatal(err)
	}
	var dst tensor.Tensor
	if err := DecodeInto(&dst, payload); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * t.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(&dst, payload); err != nil {
			b.Fatal(err)
		}
	}
}

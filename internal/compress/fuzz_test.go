package compress

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"adcnn/internal/tensor"
)

// validPayload encodes a small representative tensor for the seed corpus.
func validPayload(tb testing.TB) []byte {
	tb.Helper()
	p := NewPipeline(4, 6)
	x := tensor.FromSlice([]float32{0, 0, 1.5, 0, 6, 0.2, 0, 0}, 1, 2, 2, 2)
	payload, err := p.Encode(x)
	if err != nil {
		tb.Fatal(err)
	}
	return payload
}

// FuzzDecode hammers the fused decoder with corrupt payloads — broken
// rank/shape/range headers, levels-vs-shape mismatches, truncated RLE
// bodies, corrupt bits fields — and checks two properties:
//
//  1. no input makes DecodeInto panic or allocate unboundedly, and
//  2. any input the fused decoder accepts, the retained reference
//     decoder also accepts with identical shape and values (the fused
//     path may reject more: its volume-overflow guards are stricter).
func FuzzDecode(f *testing.F) {
	valid := validPayload(f)
	f.Add(valid)

	// Corrupt rank: claims 200 dims with a 4-dim body.
	rank := append([]byte(nil), valid...)
	rank[0] = 200
	f.Add(rank)

	// Corrupt shape: one dim blown up to 2^30 (levels-vs-shape mismatch
	// and a volume-limit probe in one).
	shape := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(shape[1:], 1<<30)
	f.Add(shape)

	// Shape whose volume wraps negative in int64 multiplication order.
	wrap := append([]byte(nil), valid...)
	for i := 0; i < 4; i++ {
		binary.LittleEndian.PutUint32(wrap[1+4*i:], 0xffffffff)
	}
	f.Add(wrap)

	// Corrupt range: NaN, zero, negative.
	for _, bad := range []float32{float32(math.NaN()), 0, -1} {
		r := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint32(r[1+4*4:], math.Float32bits(bad))
		f.Add(r)
	}

	// Corrupt bits field (0 and 17).
	for _, b := range []byte{0, 17} {
		bb := append([]byte(nil), valid...)
		bb[1+4*4+4+4] = b
		f.Add(bb)
	}

	// Truncated RLE body and truncated header.
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:7])
	f.Add([]byte{})

	// Declared total that disagrees with the shape volume.
	total := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(total[1+4*4+4:], 7)
	f.Add(total)

	// Zero-run declaring more symbols than the header's total.
	over := append([]byte(nil), valid...)
	over = over[:1+4*4+4+5]
	over = append(over, 0x00, 0xff, 0xff, 0xff, 0xff, 0x0f)
	f.Add(over)

	f.Fuzz(func(t *testing.T, payload []byte) {
		var dst tensor.Tensor
		err := DecodeInto(&dst, payload)
		if err != nil {
			return
		}
		// Accepted: the reference decoder must agree bit for bit.
		want, rerr := refDecode(payload)
		if rerr != nil {
			t.Fatalf("fused decoder accepted a payload the reference rejects: %v", rerr)
		}
		if !shapeEq(dst.Shape, want.Shape) {
			t.Fatalf("shape %v vs reference %v", dst.Shape, want.Shape)
		}
		for i := range want.Data {
			if dst.Data[i] != want.Data[i] && !(dst.Data[i] != dst.Data[i] && want.Data[i] != want.Data[i]) {
				t.Fatalf("value %d: fused %v vs reference %v", i, dst.Data[i], want.Data[i])
			}
		}
	})
}

// FuzzEncodeRoundTrip feeds arbitrary byte-derived float patterns
// through the fused encoder and checks the payload (a) matches the
// reference encoder and (b) decodes back to the quantizer's fixed point.
func FuzzEncodeRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0x3f, 0x80, 0, 0})
	f.Add(bytes.Repeat([]byte{0}, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		n := len(raw) / 4
		if n == 0 {
			return
		}
		vals := make([]float32, n)
		for i := range vals {
			v := math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
			if v != v { // NaN is outside the codec's contract
				v = 0
			}
			vals[i] = v
		}
		p := NewPipeline(4, 6)
		x := tensor.FromSlice(vals, n)
		got, err := p.Encode(x)
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.refEncode(x)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("fused and reference encoders disagree")
		}
		var dst tensor.Tensor
		if err := DecodeInto(&dst, got); err != nil {
			t.Fatalf("own payload rejected: %v", err)
		}
	})
}

package compress

import (
	"math/rand"
	"sync"
	"testing"

	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

// TestCodecUnderInstrumentSwaps runs fused encodes and decodes from many
// goroutines while Instrument is concurrently attached and detached —
// the race detector verifies the atomic instrument pointer and the LUT
// cache keep the hot path safe without locks.
func TestCodecUnderInstrumentSwaps(t *testing.T) {
	defer Instrument(nil) // leave the package-level hook clean

	p := NewPipeline(4, 6)
	x := fusedSparseTensor(rand.New(rand.NewSource(21)), 2048, 0.8, 6)
	payload, err := p.Encode(x)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := tensor.GetBytes(p.MaxEncodedSize(x))
			var dst tensor.Tensor
			for {
				select {
				case <-stop:
					return
				default:
				}
				out, err := p.EncodeInto(buf[:0], x)
				if err != nil {
					t.Error(err)
					return
				}
				buf = out
				if err := DecodeInto(&dst, payload); err != nil {
					t.Error(err)
					return
				}
				_ = p.EncodedSize(x)
			}
		}()
	}
	for i := 0; i < 200; i++ {
		Instrument(telemetry.NewRegistry())
		Instrument(nil)
	}
	close(stop)
	wg.Wait()
}

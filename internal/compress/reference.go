package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"adcnn/internal/quant"
	"adcnn/internal/rle"
	"adcnn/internal/tensor"
)

// Retained scalar reference implementations of the boundary codec: the
// original quantize-whole-tensor-then-RLE pipeline, kept unexported so
// property tests and codecbench can pin the fused single-pass codec
// (fused.go) byte-identical on encode and value-identical on decode.
// These paths allocate freely and must not be called from the runtime.

// refEncode is the reference for Pipeline.Encode/EncodeInto: it
// materialises the full []uint16 level stream and feeds it through
// package rle.
func (p Pipeline) refEncode(t *tensor.Tensor) ([]byte, error) {
	if t.Rank() > 255 {
		return nil, fmt.Errorf("compress: rank %d too large", t.Rank())
	}
	q := p.Quantizer()
	levels := q.EncodeSlice(t.Data)
	stream, err := rle.Encode(levels, p.Bits)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 0, 1+4*t.Rank()+4)
	hdr = append(hdr, byte(t.Rank()))
	var b4 [4]byte
	for _, d := range t.Shape {
		binary.LittleEndian.PutUint32(b4[:], uint32(d))
		hdr = append(hdr, b4[:]...)
	}
	binary.LittleEndian.PutUint32(b4[:], math.Float32bits(p.Range))
	hdr = append(hdr, b4[:]...)
	return append(hdr, stream...), nil
}

// refDecode is the reference for Decode/DecodeInto: rle.Decode to a level
// stream, then a dequantization pass.
func refDecode(payload []byte) (*tensor.Tensor, error) {
	if len(payload) < 1 {
		return nil, errors.New("compress: empty payload")
	}
	rank := int(payload[0])
	need := 1 + 4*rank + 4
	if len(payload) < need {
		return nil, errors.New("compress: truncated header")
	}
	shape := make([]int, rank)
	for i := 0; i < rank; i++ {
		shape[i] = int(binary.LittleEndian.Uint32(payload[1+4*i:]))
	}
	rng := math.Float32frombits(binary.LittleEndian.Uint32(payload[1+4*rank:]))
	if rng <= 0 || rng != rng { // NaN check
		return nil, fmt.Errorf("compress: corrupt range %v", rng)
	}
	levels, err := rle.Decode(payload[need:])
	if err != nil {
		return nil, err
	}
	if len(levels) != tensor.Volume(shape) {
		return nil, fmt.Errorf("compress: %d levels for shape %v", len(levels), shape)
	}
	if len(payload) > need+4 {
		bits := int(payload[need+4])
		if bits < 1 || bits > 16 {
			return nil, fmt.Errorf("compress: corrupt bits %d", bits)
		}
		q := quant.New(bits, rng)
		return tensor.FromSlice(q.DecodeSlice(levels), shape...), nil
	}
	return nil, errors.New("compress: missing RLE body")
}

// RefEncodeForBench exposes the retained reference encoder so codecbench
// (a separate package) can measure the before/after. Not for production
// paths — it allocates per call by design.
func RefEncodeForBench(p Pipeline, t *tensor.Tensor) ([]byte, error) { return p.refEncode(t) }

// RefDecodeForBench is RefEncodeForBench's decode twin.
func RefDecodeForBench(payload []byte) (*tensor.Tensor, error) { return refDecode(payload) }

// refEncodedSize is the reference for Pipeline.EncodedSize: it quantizes
// the whole tensor into a throwaway level slice just to measure it.
func (p Pipeline) refEncodedSize(t *tensor.Tensor) int {
	q := p.Quantizer()
	levels := q.EncodeSlice(t.Data)
	return 1 + 4*t.Rank() + 4 + rle.CompressedSize(levels, p.Bits)
}

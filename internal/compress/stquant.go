package compress

import (
	"adcnn/internal/nn"
	"adcnn/internal/tensor"
)

// STQuant is the quantization node inserted into the training graph
// (paper Figure 7(b)): the forward pass rounds activations to the
// pipeline's levels, while the backward pass uses the straight-through
// estimator (identity gradient), exactly the "full-precision gradients"
// rule of Section 4.4.
type STQuant struct {
	label string
	P     Pipeline
}

// NewSTQuant creates a straight-through quantization layer.
func NewSTQuant(label string, p Pipeline) *STQuant {
	return &STQuant{label: label, P: p}
}

// Forward rounds every activation to its quantization level.
func (s *STQuant) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := x.Clone()
	s.P.QuantizeInPlace(y)
	return y
}

// Backward passes the gradient through unchanged (straight-through).
func (s *STQuant) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Clone()
}

// Params returns nil; the quantizer is not trained.
func (s *STQuant) Params() []*nn.Param { return nil }

// Name returns the layer label.
func (s *STQuant) Name() string { return s.label }

var _ nn.Layer = (*STQuant)(nil)

package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"adcnn/internal/quant"
	"adcnn/internal/rle"
	"adcnn/internal/tensor"
)

// Fused boundary codec: the clip → quantize → RLE pipeline collapsed into
// a single pass over the float32 data, producing byte-identical payloads
// to the retained scalar reference (refEncode / refDecode) without ever
// materialising the intermediate []uint16 level stream.
//
// Encode runs are classified at the float level: a value quantizes to
// level 0 exactly when it lies below the quantizer's ZeroThreshold, so a
// zero run costs one compare per element and the divide+round only runs
// for the (sparse) literals, whose bits are packed as they are scanned.
// The sparsity and raw-vs-encoded telemetry counters fall out of the same
// scan. Decode dequantizes literals through a 2^bits lookup table and
// zero-fills runs with memclr-shaped loops straight into the destination
// tensor's (pooled) storage.

// maxDecodeVolume bounds the tensor volume a payload may declare —
// aligned with rle.MaxSymbols so the fused and reference decoders accept
// the same streams. A few token bytes can otherwise declare a
// multi-gigabyte zero fill.
const maxDecodeVolume = rle.MaxSymbols

// EncodeInto appends the fused encoding of t to dst and returns the
// extended slice (append semantics: dst may be nil, and the result may
// share dst's backing array). The payload is byte-identical to the
// reference pipeline's Encode. The scan performs no allocations beyond
// growing dst, so a caller that recycles a buffer of MaxEncodedSize
// capacity (e.g. from tensor.GetBytes) encodes with zero steady-state
// allocations. t.Data must not contain NaNs — the clipped-ReLU boundary
// never produces them, and run classification assumes ordered compares.
func (p Pipeline) EncodeInto(dst []byte, t *tensor.Tensor) ([]byte, error) {
	if t.Rank() > 255 {
		return nil, fmt.Errorf("compress: rank %d too large", t.Rank())
	}
	q := p.Quantizer() // validates Bits and Range
	var b4 [4]byte
	dst = append(dst, byte(t.Rank()))
	for _, d := range t.Shape {
		binary.LittleEndian.PutUint32(b4[:], uint32(d))
		dst = append(dst, b4[:]...)
	}
	binary.LittleEndian.PutUint32(b4[:], math.Float32bits(p.Range))
	dst = append(dst, b4[:]...)

	// Ensure capacity for the worst-case body once, then emit through a
	// write index into the full-capacity slice: the scan's inner loops do
	// plain indexed stores with no per-byte append grow checks. A caller
	// that pre-sized dst to MaxEncodedSize capacity (the bound below is
	// exactly its body term) never triggers the grow, so the steady-state
	// path performs zero allocations.
	data := t.Data
	runs := len(data)/2 + 1
	need := 5 + runs*2 + runs*(2+(p.Bits+7)/8)
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	buf := dst[:len(dst)+need]
	o := len(dst)

	// RLE stream header (see package rle): symbol count + bits byte.
	binary.LittleEndian.PutUint32(buf[o:], uint32(len(data)))
	buf[o+4] = byte(p.Bits)
	o += 5

	zt := q.ZeroThreshold()
	step := q.Step()
	maxLevel := uint32(q.Levels() - 1)
	bits := p.Bits
	// putToken emits a control byte + uvarint count. Runs in sparse
	// activation maps are short, so the single-byte-count fast path (two
	// stores, no PutUvarint call) carries most tokens.
	putToken := func(o int, tok byte, count int) int {
		if count < 0x80 {
			buf[o] = tok
			buf[o+1] = byte(count)
			return o + 2
		}
		buf[o] = tok
		return o + 1 + binary.PutUvarint(buf[o+1:], uint64(count))
	}
	// Runs strictly alternate, so after classifying the run that starts
	// the tensor each loop iteration handles one literal run followed by
	// one zero run with no re-classification branch: the compare that
	// terminated the previous scan already proved the next run's type.
	zeros := 0
	i := 0
	if len(data) > 0 && data[0] < zt {
		j := 1
		for j+3 < len(data) && data[j] < zt && data[j+1] < zt && data[j+2] < zt && data[j+3] < zt {
			j += 4
		}
		for j < len(data) && data[j] < zt {
			j++
		}
		o = putToken(o, rle.TokZeroRun, j)
		zeros = j
		i = j
	}
	for i < len(data) {
		// Literal run: data[i] >= zt is guaranteed by the scan above.
		j := i + 1
		for j < len(data) && data[j] >= zt {
			j++
		}
		o = putToken(o, rle.TokLiteral, j-i)
		// Quantize and bit-pack the literal run in place, LSB first — the
		// same accumulator discipline (and bytes) as the reference packer.
		// quantize reproduces uint16(math.Round(float64(v/step))) exactly:
		// the quotient is a float32 value in [0.5, 2^16), so adding 0.5 in
		// float64 is exact and truncation equals round-half-away-from-zero.
		quantize := func(v float32) uint32 {
			if v >= p.Range {
				return maxLevel
			}
			return uint32(float64(v/step) + 0.5)
		}
		switch bits {
		case 4:
			// The paper's setting: two levels per output byte.
			k := i
			for ; k+1 < j; k += 2 {
				buf[o] = byte(quantize(data[k]) | quantize(data[k+1])<<4)
				o++
			}
			if k < j {
				buf[o] = byte(quantize(data[k]))
				o++
			}
		case 8:
			for k := i; k < j; k++ {
				buf[o] = byte(quantize(data[k]))
				o++
			}
		default:
			var acc uint32
			var nbits int
			for k := i; k < j; k++ {
				acc |= quantize(data[k]) << nbits
				nbits += bits
				for nbits >= 8 {
					buf[o] = byte(acc)
					o++
					acc >>= 8
					nbits -= 8
				}
			}
			if nbits > 0 {
				buf[o] = byte(acc)
				o++
			}
		}
		i = j
		if i >= len(data) {
			break
		}
		// Zero run: the literal scan above stopped on data[i] < zt. The
		// 4-wide stride amortises loop overhead across the longer runs.
		j = i + 1
		for j+3 < len(data) && data[j] < zt && data[j+1] < zt && data[j+2] < zt && data[j+3] < zt {
			j += 4
		}
		for j < len(data) && data[j] < zt {
			j++
		}
		o = putToken(o, rle.TokZeroRun, j-i)
		zeros += j - i
		i = j
	}
	dst = buf[:o]
	if in := instr.Load(); in != nil {
		in.rawBytes.Add(float64(RawSize(t)))
		in.encodedBytes.Add(float64(len(dst)))
		in.tensors.Inc()
		in.zeroLevels.Add(float64(zeros))
		in.levels.Add(float64(len(data)))
	}
	return dst, nil
}

// MaxEncodedSize bounds len of the payload EncodeInto can append for t:
// the worst case is single-element runs alternating between zeros and
// literals. Sizing a reusable buffer to this bound keeps the encoder from
// ever growing it.
func (p Pipeline) MaxEncodedSize(t *tensor.Tensor) int {
	n := t.Len()
	runs := n/2 + 1
	return 1 + 4*t.Rank() + 4 + 5 + runs*2 + runs*(2+(p.Bits+7)/8)
}

// EncodedSize returns len(Encode(t)) without materialising the payload or
// the level stream: the same run scan as EncodeInto, counting instead of
// emitting.
func (p Pipeline) EncodedSize(t *tensor.Tensor) int {
	q := p.Quantizer()
	zt := q.ZeroThreshold()
	data := t.Data
	size := 1 + 4*t.Rank() + 4 + 5
	i := 0
	for i < len(data) {
		zero := data[i] < zt
		j := i + 1
		for j < len(data) && (data[j] < zt) == zero {
			j++
		}
		size += 1 + uvarintLen(uint64(j-i))
		if !zero {
			size += ((j-i)*p.Bits + 7) / 8
		}
		i = j
	}
	return size
}

// uvarintLen is len(binary.PutUvarint) without the buffer.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// dequantLUT caches the level → float32 table for one (bits, range)
// configuration. Steady state uses a single pipeline, so one atomically
// published entry removes the table build from the hot path entirely.
type dequantLUT struct {
	bits int
	rng  float32
	tab  []float32
}

var lutCache atomic.Pointer[dequantLUT]

// lutMaxBits caps table-based dequantization: above 8 bits the table is
// large enough (and corrupt headers varied enough) that per-level
// arithmetic is the better trade.
const lutMaxBits = 8

func lutFor(bits int, rng float32) []float32 {
	if l := lutCache.Load(); l != nil && l.bits == bits && l.rng == rng {
		return l.tab
	}
	step := quant.New(bits, rng).Step()
	tab := make([]float32, 1<<bits)
	for i := range tab {
		tab[i] = float32(i) * step
	}
	lutCache.Store(&dequantLUT{bits: bits, rng: rng, tab: tab})
	return tab
}

// DecodeInto decodes a fused (or reference — same bytes) payload into
// dst, reshaping it in place. dst must own its storage: when the current
// capacity is too small the old backing array is returned to the tensor
// buffer pool and a pooled replacement is taken, so a caller that feeds
// the same dst tensor repeatedly (or releases it with tensor.PutTensor)
// decodes with zero steady-state allocations. On error dst's contents are
// unspecified but its storage is still valid to reuse or release.
func DecodeInto(dst *tensor.Tensor, payload []byte) error {
	if len(payload) < 1 {
		return errors.New("compress: empty payload")
	}
	rank := int(payload[0])
	need := 1 + 4*rank + 4
	if len(payload) < need {
		return errors.New("compress: truncated header")
	}
	vol := 1
	for i := 0; i < rank; i++ {
		d := int(binary.LittleEndian.Uint32(payload[1+4*i:]))
		vol *= d
		// Reject overflow and absurd volumes before touching memory; no
		// legitimate boundary tensor exceeds the wire frame limit.
		if vol < 0 || vol > maxDecodeVolume {
			return fmt.Errorf("compress: tensor volume exceeds limit")
		}
	}
	rng := math.Float32frombits(binary.LittleEndian.Uint32(payload[1+4*rank:]))
	// Reject NaN and ±Inf outright: an infinite range makes step
	// arithmetic produce NaN (0·Inf), which no encoder-built payload
	// carries — the boundary range is always the finite ClipHi-ClipLo.
	if rng <= 0 || rng != rng || math.IsInf(float64(rng), 0) {
		return fmt.Errorf("compress: corrupt range %v", rng)
	}
	if len(payload) < need+5 {
		return errors.New("compress: missing RLE body")
	}
	total := int(binary.LittleEndian.Uint32(payload[need:]))
	if total != vol {
		return fmt.Errorf("compress: %d levels for volume %d", total, vol)
	}
	bits := int(payload[need+4])
	if bits < 1 || bits > 16 {
		return fmt.Errorf("compress: corrupt bits %d", bits)
	}

	dst.Shape = dst.Shape[:0]
	for i := 0; i < rank; i++ {
		dst.Shape = append(dst.Shape, int(binary.LittleEndian.Uint32(payload[1+4*i:])))
	}
	if cap(dst.Data) < vol {
		tensor.PutBuf(dst.Data)
		dst.Data = tensor.GetBuf(vol)
	}
	dst.Data = dst.Data[:vol]
	return decodeBody(dst.Data, payload[need+5:], bits, rng)
}

// decodeBody walks the RLE token stream, zero-filling runs and
// dequantizing literals directly into out (len(out) = declared total).
func decodeBody(out []float32, body []byte, bits int, rng float32) error {
	step := quant.New(bits, rng).Step()
	var lut []float32
	if bits <= lutMaxBits {
		lut = lutFor(bits, rng)
	}
	mask := uint32(1<<bits - 1)
	// One memclr for the whole tensor up front. Runs in sparse activation
	// maps are short (a handful of elements at the paper's 0.8 sparsity),
	// so per-token zero fills would pay the memclr call overhead thousands
	// of times per tile; a single bulk clear turns every zero-run token
	// into a pure cursor advance.
	for i := range out {
		out[i] = 0
	}
	pos, w := 0, 0
	for w < len(out) {
		if pos+1 >= len(body) {
			return errors.New("compress: truncated token stream")
		}
		tok := body[pos]
		// Inline the uvarint fast path: short runs dominate, and their
		// counts fit one byte.
		var count uint64
		if b := body[pos+1]; b < 0x80 {
			count = uint64(b)
			pos += 2
		} else {
			c64, n := binary.Uvarint(body[pos+1:])
			if n <= 0 {
				return errors.New("compress: bad run length")
			}
			count = c64
			pos += 1 + n
		}
		if count > uint64(len(out)-w) {
			return errors.New("compress: run overflows declared length")
		}
		c := int(count)
		switch tok {
		case rle.TokZeroRun:
			w += c // already cleared by the bulk memclr
		case rle.TokLiteral:
			needB := (c*bits + 7) / 8
			if pos+needB > len(body) {
				return errors.New("compress: truncated literal run")
			}
			data := body[pos : pos+needB]
			switch {
			case bits == 4 && lut != nil:
				// The paper's setting: two levels per byte, no accumulator.
				lo := lut[:16]
				for k := 0; k+1 < c; k += 2 {
					b := data[k>>1]
					out[w] = lo[b&15]
					out[w+1] = lo[b>>4]
					w += 2
				}
				if c&1 == 1 {
					out[w] = lo[data[c>>1]&15]
					w++
				}
			case bits == 8 && lut != nil:
				lo := lut[:256]
				for k := 0; k < c; k++ {
					out[w] = lo[data[k]]
					w++
				}
			case lut != nil:
				var acc uint32
				var nb, di int
				for k := 0; k < c; k++ {
					for nb < bits {
						acc |= uint32(data[di]) << nb
						di++
						nb += 8
					}
					out[w] = lut[acc&mask]
					w++
					acc >>= bits
					nb -= bits
				}
			default:
				var acc uint32
				var nb, di int
				for k := 0; k < c; k++ {
					for nb < bits {
						acc |= uint32(data[di]) << nb
						di++
						nb += 8
					}
					out[w] = float32(acc&mask) * step
					w++
					acc >>= bits
					nb -= bits
				}
			}
			pos += needB
		default:
			return fmt.Errorf("compress: unknown token %#x", tok)
		}
	}
	return nil
}

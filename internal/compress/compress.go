// Package compress implements ADCNN's Conv-node output compression
// (paper Section 4): the separable blocks end in a clipped ReLU whose
// output lies in [0, b-a] and is highly sparse; those activations are
// quantized to a few bits and run-length encoded before transmission to
// the Central node. This package provides the full tensor → wire-bytes →
// tensor round trip plus the size accounting used by Table 2 and
// Figure 12.
package compress

import (
	"sync/atomic"

	"adcnn/internal/quant"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

// instruments is the package-wide (optional) telemetry hook. Pipelines
// are constructed transiently per tile on the worker hot path, so the
// instruments live at package level rather than on the Pipeline value;
// an atomic pointer keeps Encode race-free against Instrument.
type instruments struct {
	rawBytes     *telemetry.Counter
	encodedBytes *telemetry.Counter
	tensors      *telemetry.Counter
	zeroLevels   *telemetry.Counter
	levels       *telemetry.Counter
}

var instr atomic.Pointer[instruments]

// Instrument publishes compression statistics on reg:
//
//	adcnn_compress_raw_bytes_total      float32 bytes before compression
//	adcnn_compress_encoded_bytes_total  payload bytes after quantize+RLE
//	adcnn_compress_tensors_total        tensors encoded
//	adcnn_compress_zero_levels_total    zero quantization levels (sparsity
//	                                    numerator; divide by levels_total)
//	adcnn_compress_levels_total         total quantization levels
//
// Pass nil to disable. The encoded/raw ratio is the paper's Table 2
// compression ratio; zero/total levels is the clipped-ReLU sparsity.
func Instrument(reg *telemetry.Registry) {
	if reg == nil {
		instr.Store(nil)
		return
	}
	instr.Store(&instruments{
		rawBytes:     reg.Counter("adcnn_compress_raw_bytes_total", "Tensor bytes before boundary compression."),
		encodedBytes: reg.Counter("adcnn_compress_encoded_bytes_total", "Payload bytes after quantize+RLE."),
		tensors:      reg.Counter("adcnn_compress_tensors_total", "Tensors encoded by the boundary pipeline."),
		zeroLevels:   reg.Counter("adcnn_compress_zero_levels_total", "Zero quantization levels observed (sparsity numerator)."),
		levels:       reg.Counter("adcnn_compress_levels_total", "Quantization levels observed (sparsity denominator)."),
	})
}

// Pipeline bundles the quantizer configuration used at the Front/Back
// boundary. Range must equal the clipped ReLU's b-a so the quantizer
// covers exactly the activation support.
type Pipeline struct {
	Bits  int
	Range float32
}

// NewPipeline creates a compression pipeline (the paper uses 4 bits).
func NewPipeline(bits int, rng float32) Pipeline {
	_ = quant.New(bits, rng) // validate
	return Pipeline{Bits: bits, Range: rng}
}

// Quantizer returns the pipeline's quantizer.
func (p Pipeline) Quantizer() quant.Quantizer { return quant.New(p.Bits, p.Range) }

// Encode compresses a clipped-ReLU output tensor into a self-describing
// payload: header (shape, range, bits) followed by the RLE stream of
// quantization levels. It runs the fused single-pass codec (see
// EncodeInto); the scalar quantize-then-RLE original is retained as
// refEncode for property tests and benchmarks.
func (p Pipeline) Encode(t *tensor.Tensor) ([]byte, error) {
	return p.EncodeInto(nil, t)
}

// Decode reverses Encode, returning the dequantized tensor. It runs the
// fused decoder (see DecodeInto) into a fresh tensor; callers on the hot
// path should call DecodeInto with a reused destination instead.
func Decode(payload []byte) (*tensor.Tensor, error) {
	t := &tensor.Tensor{}
	if err := DecodeInto(t, payload); err != nil {
		return nil, err
	}
	return t, nil
}

// RawSize returns the uncompressed float32 wire size of a tensor in
// bytes, the paper's "before pruning" reference.
func RawSize(t *tensor.Tensor) int { return 4 * t.Len() }

// Ratio returns compressed/raw size for t — Table 2 reports this per
// model (e.g. 0.032× for VGG16).
func (p Pipeline) Ratio(t *tensor.Tensor) float64 {
	return float64(p.EncodedSize(t)) / float64(RawSize(t))
}

// QuantizeInPlace applies the quantizer's rounding to t, which is what
// the modified training graph inserts after the clipped ReLU (forward
// pass only; the backward pass uses the straight-through estimator).
func (p Pipeline) QuantizeInPlace(t *tensor.Tensor) {
	p.Quantizer().Apply(t.Data)
}

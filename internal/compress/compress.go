// Package compress implements ADCNN's Conv-node output compression
// (paper Section 4): the separable blocks end in a clipped ReLU whose
// output lies in [0, b-a] and is highly sparse; those activations are
// quantized to a few bits and run-length encoded before transmission to
// the Central node. This package provides the full tensor → wire-bytes →
// tensor round trip plus the size accounting used by Table 2 and
// Figure 12.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"adcnn/internal/quant"
	"adcnn/internal/rle"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

// instruments is the package-wide (optional) telemetry hook. Pipelines
// are constructed transiently per tile on the worker hot path, so the
// instruments live at package level rather than on the Pipeline value;
// an atomic pointer keeps Encode race-free against Instrument.
type instruments struct {
	rawBytes     *telemetry.Counter
	encodedBytes *telemetry.Counter
	tensors      *telemetry.Counter
	zeroLevels   *telemetry.Counter
	levels       *telemetry.Counter
}

var instr atomic.Pointer[instruments]

// Instrument publishes compression statistics on reg:
//
//	adcnn_compress_raw_bytes_total      float32 bytes before compression
//	adcnn_compress_encoded_bytes_total  payload bytes after quantize+RLE
//	adcnn_compress_tensors_total        tensors encoded
//	adcnn_compress_zero_levels_total    zero quantization levels (sparsity
//	                                    numerator; divide by levels_total)
//	adcnn_compress_levels_total         total quantization levels
//
// Pass nil to disable. The encoded/raw ratio is the paper's Table 2
// compression ratio; zero/total levels is the clipped-ReLU sparsity.
func Instrument(reg *telemetry.Registry) {
	if reg == nil {
		instr.Store(nil)
		return
	}
	instr.Store(&instruments{
		rawBytes:     reg.Counter("adcnn_compress_raw_bytes_total", "Tensor bytes before boundary compression."),
		encodedBytes: reg.Counter("adcnn_compress_encoded_bytes_total", "Payload bytes after quantize+RLE."),
		tensors:      reg.Counter("adcnn_compress_tensors_total", "Tensors encoded by the boundary pipeline."),
		zeroLevels:   reg.Counter("adcnn_compress_zero_levels_total", "Zero quantization levels observed (sparsity numerator)."),
		levels:       reg.Counter("adcnn_compress_levels_total", "Quantization levels observed (sparsity denominator)."),
	})
}

// Pipeline bundles the quantizer configuration used at the Front/Back
// boundary. Range must equal the clipped ReLU's b-a so the quantizer
// covers exactly the activation support.
type Pipeline struct {
	Bits  int
	Range float32
}

// NewPipeline creates a compression pipeline (the paper uses 4 bits).
func NewPipeline(bits int, rng float32) Pipeline {
	_ = quant.New(bits, rng) // validate
	return Pipeline{Bits: bits, Range: rng}
}

// Quantizer returns the pipeline's quantizer.
func (p Pipeline) Quantizer() quant.Quantizer { return quant.New(p.Bits, p.Range) }

// Encode compresses a clipped-ReLU output tensor into a self-describing
// payload: header (shape, range, bits) followed by the RLE stream of
// quantization levels.
func (p Pipeline) Encode(t *tensor.Tensor) ([]byte, error) {
	if t.Rank() > 255 {
		return nil, fmt.Errorf("compress: rank %d too large", t.Rank())
	}
	q := p.Quantizer()
	levels := q.EncodeSlice(t.Data)
	stream, err := rle.Encode(levels, p.Bits)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 0, 1+4*t.Rank()+4)
	hdr = append(hdr, byte(t.Rank()))
	var b4 [4]byte
	for _, d := range t.Shape {
		binary.LittleEndian.PutUint32(b4[:], uint32(d))
		hdr = append(hdr, b4[:]...)
	}
	binary.LittleEndian.PutUint32(b4[:], math.Float32bits(p.Range))
	hdr = append(hdr, b4[:]...)
	out := append(hdr, stream...)
	if in := instr.Load(); in != nil {
		zeros := 0
		for _, l := range levels {
			if l == 0 {
				zeros++
			}
		}
		in.rawBytes.Add(float64(RawSize(t)))
		in.encodedBytes.Add(float64(len(out)))
		in.tensors.Inc()
		in.zeroLevels.Add(float64(zeros))
		in.levels.Add(float64(len(levels)))
	}
	return out, nil
}

// Decode reverses Encode, returning the dequantized tensor.
func Decode(payload []byte) (*tensor.Tensor, error) {
	if len(payload) < 1 {
		return nil, errors.New("compress: empty payload")
	}
	rank := int(payload[0])
	need := 1 + 4*rank + 4
	if len(payload) < need {
		return nil, errors.New("compress: truncated header")
	}
	shape := make([]int, rank)
	for i := 0; i < rank; i++ {
		shape[i] = int(binary.LittleEndian.Uint32(payload[1+4*i:]))
	}
	rng := math.Float32frombits(binary.LittleEndian.Uint32(payload[1+4*rank:]))
	if rng <= 0 || rng != rng { // NaN check
		return nil, fmt.Errorf("compress: corrupt range %v", rng)
	}
	levels, err := rle.Decode(payload[need:])
	if err != nil {
		return nil, err
	}
	if len(levels) != tensor.Volume(shape) {
		return nil, fmt.Errorf("compress: %d levels for shape %v", len(levels), shape)
	}
	if len(payload) > need+4 {
		bits := int(payload[need+4])
		if bits < 1 || bits > 16 {
			return nil, fmt.Errorf("compress: corrupt bits %d", bits)
		}
		q := quant.New(bits, rng)
		return tensor.FromSlice(q.DecodeSlice(levels), shape...), nil
	}
	return nil, errors.New("compress: missing RLE body")
}

// EncodedSize returns len(Encode(t)) without materialising the payload.
func (p Pipeline) EncodedSize(t *tensor.Tensor) int {
	q := p.Quantizer()
	levels := q.EncodeSlice(t.Data)
	return 1 + 4*t.Rank() + 4 + rle.CompressedSize(levels, p.Bits)
}

// RawSize returns the uncompressed float32 wire size of a tensor in
// bytes, the paper's "before pruning" reference.
func RawSize(t *tensor.Tensor) int { return 4 * t.Len() }

// Ratio returns compressed/raw size for t — Table 2 reports this per
// model (e.g. 0.032× for VGG16).
func (p Pipeline) Ratio(t *tensor.Tensor) float64 {
	return float64(p.EncodedSize(t)) / float64(RawSize(t))
}

// QuantizeInPlace applies the quantizer's rounding to t, which is what
// the modified training graph inserts after the clipped ReLU (forward
// pass only; the backward pass uses the straight-through estimator).
func (p Pipeline) QuantizeInPlace(t *tensor.Tensor) {
	p.Quantizer().Apply(t.Data)
}

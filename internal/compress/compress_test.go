package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adcnn/internal/nn"
	"adcnn/internal/tensor"
)

func sparseTensor(seed int64, n int, sparsity float64, rng32 float32) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := tensor.New(n)
	for i := range t.Data {
		if rng.Float64() >= sparsity {
			t.Data[i] = rng.Float32() * rng32
		}
	}
	return t
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := NewPipeline(4, 1.8)
	x := sparseTensor(1, 1000, 0.9, 1.8)
	payload, err := p.Encode(x)
	if err != nil {
		t.Fatal(err)
	}
	y, err := Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !y.SameShape(x) {
		t.Fatalf("shape %v, want %v", y.Shape, x.Shape)
	}
	q := p.Quantizer()
	for i := range x.Data {
		want := q.Decode(q.Encode(x.Data[i]))
		if y.Data[i] != want {
			t.Fatalf("element %d: %v, want %v", i, y.Data[i], want)
		}
	}
}

func TestRoundTripPreservesShape4D(t *testing.T) {
	p := NewPipeline(4, 2)
	x := tensor.New(1, 8, 4, 4)
	x.Fill(0.5)
	payload, err := p.Encode(x)
	if err != nil {
		t.Fatal(err)
	}
	y, err := Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(y.Shape) != 4 || y.Shape[1] != 8 {
		t.Fatalf("shape %v", y.Shape)
	}
}

func TestEncodedSizeMatchesEncode(t *testing.T) {
	f := func(seed int64) bool {
		p := NewPipeline(4, 1.5)
		x := sparseTensor(seed, 1+int(seed%511+511)%511, 0.8, 1.5)
		payload, err := p.Encode(x)
		if err != nil {
			return false
		}
		return p.EncodedSize(x) == len(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseCompressesBelowPaperScale(t *testing.T) {
	// Paper Table 2: 8x8-partition Conv-node outputs compress to
	// 0.01–0.06× of raw size. A 97%-sparse 4-bit stream should land in
	// that regime.
	p := NewPipeline(4, 1.0)
	x := sparseTensor(7, 100000, 0.97, 1.0)
	r := p.Ratio(x)
	if r > 0.08 {
		t.Fatalf("ratio %v, want < 0.08 for 97%% sparsity", r)
	}
}

func TestDenseDoesNotExplode(t *testing.T) {
	p := NewPipeline(4, 1.0)
	x := sparseTensor(8, 10000, 0.0, 1.0)
	// Dense 4-bit data: ~0.5 bytes/elem vs 4 raw → ratio ≈ 0.125 plus
	// small token overhead.
	if r := p.Ratio(x); r > 0.2 {
		t.Fatalf("dense ratio %v too large", r)
	}
}

func TestDecodeCorruptPayloads(t *testing.T) {
	p := NewPipeline(4, 1.0)
	x := sparseTensor(9, 64, 0.5, 1.0)
	payload, err := p.Encode(x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil payload must fail")
	}
	if _, err := Decode(payload[:3]); err == nil {
		t.Fatal("truncated header must fail")
	}
	if _, err := Decode(payload[:len(payload)-2]); err == nil {
		t.Fatal("truncated body must fail")
	}
	// Corrupt the range field to NaN.
	bad := append([]byte(nil), payload...)
	bad[1+4*1] = 0xff
	bad[1+4*1+1] = 0xff
	bad[1+4*1+2] = 0xff
	bad[1+4*1+3] = 0xff
	if _, err := Decode(bad); err == nil {
		t.Fatal("NaN range must fail")
	}
}

func TestQuantizeInPlaceIdempotent(t *testing.T) {
	p := NewPipeline(4, 1.2)
	x := sparseTensor(10, 200, 0.5, 1.2)
	p.QuantizeInPlace(x)
	y := x.Clone()
	p.QuantizeInPlace(y)
	if !y.Equal(x, 0) {
		t.Fatal("QuantizeInPlace must be idempotent")
	}
}

func TestSTQuantForwardRoundsBackwardIdentity(t *testing.T) {
	p := NewPipeline(4, 1.0)
	sq := NewSTQuant("q", p)
	x := tensor.FromSlice([]float32{0, 0.031, 0.5, 0.99, 1.5}, 5)
	y := sq.Forward(x, true)
	q := p.Quantizer()
	for i := range x.Data {
		if y.Data[i] != q.Decode(q.Encode(x.Data[i])) {
			t.Fatalf("forward not quantized at %d", i)
		}
	}
	g := tensor.FromSlice([]float32{1, 2, 3, 4, 5}, 5)
	dx := sq.Backward(g)
	if !dx.Equal(g, 0) {
		t.Fatal("straight-through backward must be identity")
	}
	if sq.Params() != nil {
		t.Fatal("STQuant has no params")
	}
}

// Property: compression round trip error is bounded by half a quant step.
func TestRoundTripErrorBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		p := NewPipeline(4, 2.0)
		x := sparseTensor(seed, 128, 0.6, 2.0)
		payload, err := p.Encode(x)
		if err != nil {
			return false
		}
		y, err := Decode(payload)
		if err != nil {
			return false
		}
		bound := float64(p.Quantizer().MaxError()) * 1.0001
		for i := range x.Data {
			if math.Abs(float64(x.Data[i]-y.Data[i])) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// End-to-end: clipped ReLU → STQuant inside a Sequential still trains
// (gradient reaches an upstream conv through the straight-through path).
func TestPipelineInTrainingGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	p := NewPipeline(4, 2.0)
	net := nn.NewSequential("g",
		nn.NewConv2D("c", 1, 2, 3, 3, 1, 1, rng),
		nn.NewClippedReLU("cr", 0.1, 2.1),
		NewSTQuant("q", p),
	)
	x := tensor.New(1, 1, 6, 6)
	x.RandN(rng, 1)
	y := net.Forward(x, true)
	g := tensor.New(y.Shape...)
	g.Fill(1)
	net.Backward(g)
	var nz bool
	for _, v := range net.Params()[0].Grad.Data {
		if v != 0 {
			nz = true
		}
	}
	if !nz {
		t.Fatal("gradient must reach the conv weights through clipped ReLU + STQuant")
	}
}

// Package codecbench measures the boundary codec — the fused single-pass
// clip→quant→RLE encoder and LUT decoder against the retained scalar
// reference pipeline — across the sparsity levels the clipped ReLU
// actually produces, and renders the results as a machine-readable
// report. adcnn-bench (-exp compress) writes the report to
// BENCH_compress.json so the codec perf trajectory is tracked across PRs.
package codecbench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"adcnn/internal/compress"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

// Result is one benchmark measurement.
type Result struct {
	Name         string  `json:"name"`
	Sparsity     float64 `json:"sparsity"`
	Bits         int     `json:"bits"`
	Elements     int     `json:"elements"`
	NsPerOp      float64 `json:"ns_per_op"`
	MBPerSec     float64 `json:"mb_per_sec"` // raw float32 bytes through the codec
	AllocsPerOp  int64   `json:"allocs_per_op"`
	SpeedupVsRef float64 `json:"speedup_vs_ref,omitempty"`
	Ratio        float64 `json:"compression_ratio,omitempty"`
}

// Report is the full codec benchmark suite output, with host metadata so
// BENCH_*.json files are comparable across machines.
type Report struct {
	Timestamp string `json:"timestamp"`
	telemetry.Host
	GOMAXPROCS int      `json:"gomaxprocs"`
	Results    []Result `json:"results"`
}

// Sparsities are the benchmark's activation-sparsity operating points:
// the paper's boundary tensors run ~0.8 zero after the clipped ReLU;
// 0.5 and 0.95 bracket the regime.
var Sparsities = []float64{0.5, 0.8, 0.95}

// tileElements sizes the benchmark tensor like a real boundary tile
// (e.g. a 256-channel 16×16 Front output).
const tileElements = 256 * 16 * 16

// sparse builds a clipped-ReLU-shaped tensor with the given zero
// fraction over [0, rng].
func sparse(seed int64, n int, sparsity float64, rng float32) *tensor.Tensor {
	r := rand.New(rand.NewSource(seed))
	t := tensor.New(1, 256, 16, 16)
	if t.Len() != n {
		t = tensor.New(1, 1, 1, n)
	}
	for i := range t.Data {
		if r.Float64() >= sparsity {
			t.Data[i] = rng * float32(r.Float64())
		}
	}
	return t
}

func bench(f func()) (float64, int64) {
	r := testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			f()
		}
	})
	return float64(r.NsPerOp()), r.AllocsPerOp()
}

// Run executes the codec suite: fused vs reference encode and decode at
// each sparsity point, 4-bit quantization (the paper's setting).
func Run() Report {
	rep := Report{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Host:       telemetry.HostInfo(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	const bits = 4
	const rng = 6.0
	p := compress.NewPipeline(bits, rng)
	mbps := func(ns float64) float64 {
		return 4 * float64(tileElements) / ns * 1e9 / 1e6
	}

	for i, sp := range Sparsities {
		x := sparse(int64(i+1), tileElements, sp, rng)
		ratio := p.Ratio(x)

		refEncNs, refEncAl := bench(func() {
			if _, err := compress.RefEncodeForBench(p, x); err != nil {
				panic(err)
			}
		})
		rep.Results = append(rep.Results, Result{
			Name: "encode_ref", Sparsity: sp, Bits: bits, Elements: tileElements,
			NsPerOp: refEncNs, MBPerSec: mbps(refEncNs), AllocsPerOp: refEncAl,
			Ratio: ratio,
		})

		buf := tensor.GetBytes(p.MaxEncodedSize(x))
		var encErr error
		fusedEncNs, fusedEncAl := bench(func() {
			buf, encErr = p.EncodeInto(buf[:0], x)
			if encErr != nil {
				panic(encErr)
			}
		})
		rep.Results = append(rep.Results, Result{
			Name: "encode_fused", Sparsity: sp, Bits: bits, Elements: tileElements,
			NsPerOp: fusedEncNs, MBPerSec: mbps(fusedEncNs), AllocsPerOp: fusedEncAl,
			SpeedupVsRef: refEncNs / fusedEncNs, Ratio: ratio,
		})

		payload, err := p.Encode(x)
		if err != nil {
			panic(err)
		}
		refDecNs, refDecAl := bench(func() {
			if _, err := compress.RefDecodeForBench(payload); err != nil {
				panic(err)
			}
		})
		rep.Results = append(rep.Results, Result{
			Name: "decode_ref", Sparsity: sp, Bits: bits, Elements: tileElements,
			NsPerOp: refDecNs, MBPerSec: mbps(refDecNs), AllocsPerOp: refDecAl,
		})

		var dst tensor.Tensor
		if err := compress.DecodeInto(&dst, payload); err != nil { // warm storage + LUT
			panic(err)
		}
		fusedDecNs, fusedDecAl := bench(func() {
			if err := compress.DecodeInto(&dst, payload); err != nil {
				panic(err)
			}
		})
		rep.Results = append(rep.Results, Result{
			Name: "decode_fused", Sparsity: sp, Bits: bits, Elements: tileElements,
			NsPerOp: fusedDecNs, MBPerSec: mbps(fusedDecNs), AllocsPerOp: fusedDecAl,
			SpeedupVsRef: refDecNs / fusedDecNs,
		})
		tensor.PutBytes(buf)
	}
	return rep
}

// WriteJSON writes the report, indented, to path.
func (r Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteText renders a human-readable table.
func (r Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "boundary codec benchmarks (%s, %s, GOMAXPROCS=%d)\n",
		r.GoVersion, r.GOARCH, r.GOMAXPROCS)
	fmt.Fprintf(w, "%-14s %9s %5s %9s %12s %9s %7s %8s %7s\n",
		"name", "sparsity", "bits", "elems", "ns/op", "MB/s", "allocs", "vs-ref", "ratio")
	for _, res := range r.Results {
		speed := ""
		if res.SpeedupVsRef > 0 {
			speed = fmt.Sprintf("%.2fx", res.SpeedupVsRef)
		}
		ratio := ""
		if res.Ratio > 0 {
			ratio = fmt.Sprintf("%.3f", res.Ratio)
		}
		fmt.Fprintf(w, "%-14s %9.2f %5d %9d %12.0f %9.1f %7d %8s %7s\n",
			res.Name, res.Sparsity, res.Bits, res.Elements, res.NsPerOp,
			res.MBPerSec, res.AllocsPerOp, speed, ratio)
	}
}

package experiments

import (
	"io"

	"adcnn/internal/models"
)

// StreamRow is one model's pipelined-stream behaviour.
type StreamRow struct {
	Model         string
	ThroughputIPS float64 // images/second under pipelining
	IsolatedMs    float64 // latency of a lone image
	StreamedMs    float64 // mean per-image latency inside the stream
	PipelineGain  float64 // throughput / (1/isolated latency)
}

// StreamResultSet is the cross-image pipelining experiment (an extension
// quantifying Figure 9's overlap claim at the stream level).
type StreamResultSet struct {
	Rows   []StreamRow
	Images int
}

// Throughput runs n images through each model's pipeline.
func Throughput(n int, o SimOptions) (*StreamResultSet, error) {
	res := &StreamResultSet{Images: n}
	for _, cfg := range models.FullScale() {
		probe, _, _, err := NewADCNNSim(cfg, o)
		if err != nil {
			return nil, err
		}
		isolated := probe.RunImage().Latency

		sim, _, _, err := NewADCNNSim(cfg, o)
		if err != nil {
			return nil, err
		}
		st := sim.RunStream(n, nil)
		res.Rows = append(res.Rows, StreamRow{
			Model:         cfg.Name,
			ThroughputIPS: st.Throughput,
			IsolatedMs:    ms(isolated),
			StreamedMs:    ms(st.AvgLatency),
			PipelineGain:  st.Throughput * isolated.Seconds(),
		})
	}
	return res, nil
}

// WriteText prints the table.
func (r *StreamResultSet) WriteText(w io.Writer) {
	fprintf(w, "Streaming throughput (extension): %d-image pipelined runs\n", r.Images)
	fprintf(w, "  %-10s %12s %14s %14s %10s\n",
		"model", "imgs/sec", "isolated(ms)", "streamed(ms)", "gain")
	for _, row := range r.Rows {
		fprintf(w, "  %-10s %12.2f %14.1f %14.1f %9.2fx\n",
			row.Model, row.ThroughputIPS, row.IsolatedMs, row.StreamedMs, row.PipelineGain)
	}
}

package experiments

import (
	"bytes"
	"testing"
)

func TestFeatureLocalityGrowsWithDepth(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy; skipped in -short")
	}
	setup := QuickAccuracySetup()
	res, err := FeatureLocality(setup)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatalf("need several depths, got %d", len(res.Points))
	}
	first := res.Points[0]
	last := res.Points[len(res.Points)-1]
	// Section 2.3's claim: deeper blocks see a wider input region.
	if last.Radius90 <= first.Radius90 {
		t.Fatalf("sensitivity radius must grow with depth: block1 %.1f vs block%d %.1f",
			first.Radius90, last.Block, last.Radius90)
	}
	// Theoretical receptive field grows monotonically.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].TheoreticalRF < res.Points[i-1].TheoreticalRF {
			t.Fatalf("theoretical RF must be monotone: %+v", res.Points)
		}
	}
	// The empirical radius never exceeds the theoretical bound by much
	// (it is a subset of the true receptive field).
	for _, p := range res.Points {
		if p.Radius90 > float64(p.TheoreticalRF)*1.6+1 {
			t.Fatalf("block %d: empirical radius %.1f outside theoretical RF %d",
				p.Block, p.Radius90, p.TheoreticalRF)
		}
	}
	var buf bytes.Buffer
	res.WriteText(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty output")
	}
}

package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFailureSweepDegradesGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy; skipped in -short")
	}
	setup := QuickAccuracySetup()
	res, err := FailureSweep(setup, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("expected 4 points, got %d", len(res.Points))
	}
	healthy := res.Points[0].Metric
	if healthy < 0.7 {
		t.Fatalf("healthy metric too low: %.3f", healthy)
	}
	// Degradation is graceful: losing 1 of 4 tiles must not collapse the
	// model to chance (1/8 classes), and more missing tiles can only make
	// things monotonically worse on average (allow small sampling slack).
	chance := 1.0 / 8
	if res.Points[1].Metric < chance {
		t.Fatalf("one missing tile collapsed the model: %.3f", res.Points[1].Metric)
	}
	if res.Points[3].Metric > res.Points[0].Metric+0.05 {
		t.Fatalf("3 missing tiles cannot beat healthy: %.3f vs %.3f",
			res.Points[3].Metric, res.Points[0].Metric)
	}
	var buf bytes.Buffer
	res.WriteText(&buf)
	if !strings.Contains(buf.String(), "missing") {
		t.Fatal("text output incomplete")
	}
}

package experiments

import (
	"io"
	"math/rand"

	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/tensor"
	"adcnn/internal/trainer"
)

// FailurePoint is one cell of the resilience sweep: the model's metric
// when a fraction of tiles is zero-filled (the Central node's behaviour
// when Conv nodes miss the deadline or die).
type FailurePoint struct {
	MissingTiles int
	Metric       float64
}

// FailureResult quantifies ADCNN's graceful degradation — the accuracy
// side of the paper's fault-tolerance claim, which its evaluation only
// covers from the latency side.
type FailureResult struct {
	Model  string
	Grid   fdsp.Grid
	Points []FailurePoint
}

// FailureSweep trains a partitioned model (with progressive retraining)
// and evaluates it with 0..maxMissing tiles zero-filled at the Front/Back
// boundary, mimicking deadline misses.
func FailureSweep(setup AccuracySetup, maxMissing int) (*FailureResult, error) {
	cfg := setup.Models[0]
	grid := setup.Grids[0]
	data, err := synthSet(cfg, setup.Samples, setup.Seed)
	if err != nil {
		return nil, err
	}
	train, test := data.Split(setup.Samples * 3 / 4)

	ori, err := models.Build(cfg, models.Options{}, setup.Seed)
	if err != nil {
		return nil, err
	}
	tr := trainer.New(trainer.Params{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4, BatchSize: 16, Seed: setup.Seed})
	tr.Train(ori, train, setup.OrigEpochs)
	lo, hi := trainer.SuggestClipBounds(ori, train, 8, 0.6, 0.995)
	pres, err := trainer.ProgressiveRetrain(tr, cfg, ori, train, test, trainer.ProgressiveConfig{
		Target:            models.Options{Grid: grid, ClipLo: lo, ClipHi: hi, QuantBits: setup.QuantBits},
		Tolerance:         setup.Tolerance,
		MaxEpochsPerStage: setup.StageEpochs,
		Seed:              setup.Seed + 7,
	})
	if err != nil {
		return nil, err
	}
	m := pres.Final

	res := &FailureResult{Model: cfg.Name, Grid: grid}
	rng := rand.New(rand.NewSource(setup.Seed + 99))
	for missing := 0; missing <= maxMissing && missing <= grid.Tiles(); missing++ {
		metric := evalWithMissingTiles(m, test, grid, missing, rng)
		res.Points = append(res.Points, FailurePoint{MissingTiles: missing, Metric: metric})
	}
	return res, nil
}

// evalWithMissingTiles runs distributed-style inference where `missing`
// random tiles' intermediate results are replaced by zeros.
func evalWithMissingTiles(m *models.Model, test interface {
	Len() int
	Batch(i, n int) (*tensor.Tensor, []int)
}, grid fdsp.Grid, missing int, rng *rand.Rand) float64 {

	n := test.Len()
	if n > 48 {
		n = 48
	}
	var weighted float64
	for i := 0; i < n; i++ {
		x, labels := test.Batch(i, 1)
		tiles := grid.Layout(x.Shape[2], x.Shape[3])
		outs := make([]*tensor.Tensor, len(tiles))
		for ti, tl := range tiles {
			y := m.Front.Forward(fdsp.ExtractTile(x, tl), false)
			y = m.Boundary.Forward(y, false)
			outs[ti] = y
		}
		// Zero-fill a random subset.
		perm := rng.Perm(len(tiles))
		for _, ti := range perm[:missing] {
			outs[ti] = tensor.New(outs[ti].Shape...)
		}
		merged := fdsp.Reassemble(outs, grid)
		logits := m.Back.Forward(merged, false)
		weighted += m.Metric(logits, labels)
	}
	return weighted / float64(n)
}

// WriteText prints the sweep.
func (r *FailureResult) WriteText(w io.Writer) {
	fprintf(w, "Failure resilience (extension): %s %s, metric vs zero-filled tiles\n",
		r.Model, r.Grid.String())
	for _, p := range r.Points {
		fprintf(w, "  missing %2d/%d tiles: metric %.3f\n", p.MissingTiles, r.Grid.Tiles(), p.Metric)
	}
}

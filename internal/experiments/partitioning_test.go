package experiments

import (
	"bytes"
	"testing"
)

func TestComparePartitioningOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy; skipped in -short")
	}
	res, err := ComparePartitioning(QuickAccuracySetup())
	if err != nil {
		t.Fatal(err)
	}
	traffic := map[string]int64{}
	exact := map[string]bool{}
	for _, row := range res.Rows {
		traffic[row.Strategy] = row.TrafficB
		exact[row.Strategy] = row.Exact
	}
	// Paper Section 3's conclusions as an ordering:
	// channel >> spatial+halo > FDSP boundary, batch = 0.
	if traffic["channel"] <= traffic["spatial+halo"] {
		t.Fatalf("channel %d must exceed halo exchange %d", traffic["channel"], traffic["spatial+halo"])
	}
	if traffic["spatial+halo"] <= traffic["FDSP (ADCNN)"] {
		t.Fatalf("halo exchange %d must exceed FDSP's compressed boundary %d",
			traffic["spatial+halo"], traffic["FDSP (ADCNN)"])
	}
	if traffic["batch"] != 0 {
		t.Fatal("batch partitioning moves no inter-device data")
	}
	if !exact["spatial+halo"] || !exact["channel"] || !exact["batch"] {
		t.Fatal("all strategies except FDSP are exact")
	}
	if exact["FDSP (ADCNN)"] {
		t.Fatal("FDSP trades exactness for independence (restored by retraining)")
	}
	var buf bytes.Buffer
	res.WriteText(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty text output")
	}
}

package experiments

import (
	"adcnn/internal/models"
	"adcnn/internal/trainer"
)

// ProgressiveVsOneShot runs the Section 5 ablation: starting from the
// same trained original model, retrain the fully-modified architecture
// either progressively (Algorithm 1, one modification per stage) or in
// one shot with the same total epoch budget, and return both final
// metrics. The paper motivates Algorithm 1 by the one-shot variant
// stalling 4-5% below the original accuracy.
func ProgressiveVsOneShot(setup AccuracySetup) (progressive, oneShot float64, err error) {
	cfg := setup.Models[0]
	grid := setup.Grids[0]
	data, err := synthSet(cfg, setup.Samples, setup.Seed)
	if err != nil {
		return 0, 0, err
	}
	train, test := data.Split(setup.Samples * 3 / 4)
	ori, err := models.Build(cfg, models.Options{}, setup.Seed)
	if err != nil {
		return 0, 0, err
	}
	tr := trainer.New(trainer.Params{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4, BatchSize: 16, Seed: setup.Seed})
	tr.Train(ori, train, setup.OrigEpochs)
	lo, hi := trainer.SearchClipBounds(ori, train, 8, 0.95)
	pc := trainer.ProgressiveConfig{
		Target:            models.Options{Grid: grid, ClipLo: lo, ClipHi: hi, QuantBits: setup.QuantBits},
		Tolerance:         setup.Tolerance,
		MaxEpochsPerStage: setup.StageEpochs,
		Seed:              setup.Seed + 7,
	}
	p, err := trainer.ProgressiveRetrain(tr, cfg, ori, train, test, pc)
	if err != nil {
		return 0, 0, err
	}
	o, err := trainer.OneShotRetrain(tr, cfg, ori, train, test, pc)
	if err != nil {
		return 0, 0, err
	}
	return p.FinalMetric(), o.FinalMetric(), nil
}

package experiments

import (
	"io"
	"math"

	"adcnn/internal/models"
	"adcnn/internal/nn"
	"adcnn/internal/tensor"
	"adcnn/internal/trainer"
)

// LocalityPoint is one depth of the feature-locality experiment.
type LocalityPoint struct {
	Block int
	// Radius90 is the input-space radius containing 90% of the
	// sensitivity (|∂activation/∂input|) mass of a centre unit.
	Radius90 float64
	// TheoreticalRF is half the analytic receptive field at that depth.
	TheoreticalRF int
}

// LocalityResult quantifies the paper's Section 2.3 observation: "early
// CNN layers tend to focus on detecting the local features … whereas
// later layers usually look for the high-level abstractions". The paper
// demonstrates it with deconvolution visualisations (Figure 2(d)); here
// the same property is measured as the effective receptive field of a
// centre unit at each layer-block depth — the mechanism that justifies
// applying FDSP to the early blocks only.
type LocalityResult struct {
	Model  string
	Points []LocalityPoint
}

// FeatureLocality trains a sim model briefly, then measures each block
// depth's sensitivity radius by backpropagating from a centre unit.
func FeatureLocality(setup AccuracySetup) (*LocalityResult, error) {
	cfg := setup.Models[0]
	data, err := synthSet(cfg, setup.Samples, setup.Seed)
	if err != nil {
		return nil, err
	}
	train, _ := data.Split(setup.Samples * 3 / 4)
	m, err := models.Build(cfg, models.Options{}, setup.Seed)
	if err != nil {
		return nil, err
	}
	tr := trainer.New(trainer.Params{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4, BatchSize: 16, Seed: setup.Seed})
	tr.Train(m, train, setup.OrigEpochs)

	x, _ := train.Batch(0, 1)
	res := &LocalityResult{Model: cfg.Name}
	// Freeze batch statistics: the probe must not let gradients flow
	// through batch means/variances, which couple every pixel.
	nn.FreezeBatchNorm(m.Front, true)
	defer nn.FreezeBatchNorm(m.Front, false)
	for b := 1; b <= cfg.Separable; b++ {
		prefix := nn.NewSequential("prefix", m.Front.Layers[:b]...)
		y := prefix.Forward(x, true)
		grad := tensor.New(y.Shape...)
		// Probe the strongest-responding unit — the paper's Section 2.3
		// method searches for the fragment with the largest filter
		// response; a dead (zero) unit would have no gradient at all.
		grad.Data[y.ArgMax()] = 1
		dx := prefix.Backward(grad)
		m.Net.ZeroGrad() // discard parameter gradients from the probe

		res.Points = append(res.Points, LocalityPoint{
			Block:         b,
			Radius90:      massRadius(dx, 0.9),
			TheoreticalRF: theoreticalRadius(cfg, b),
		})
	}
	return res, nil
}

// massRadius returns the smallest radius around the sensitivity centroid
// containing the given fraction of total |gradient| mass.
func massRadius(dx *tensor.Tensor, frac float64) float64 {
	c, h, w := dx.Shape[1], dx.Shape[2], dx.Shape[3]
	// Per-pixel mass summed over channels, plus the centroid.
	mass := make([]float64, h*w)
	var total, cy, cx float64
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				v := math.Abs(float64(dx.At(0, ch, y, x)))
				mass[y*w+x] += v
				total += v
				cy += v * float64(y)
				cx += v * float64(x)
			}
		}
	}
	if total == 0 {
		return 0
	}
	cy /= total
	cx /= total
	// Grow the radius until frac of the mass is inside.
	maxR := math.Hypot(float64(h), float64(w))
	for r := 0.0; r <= maxR; r += 0.5 {
		var inside float64
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if math.Hypot(float64(y)-cy, float64(x)-cx) <= r {
					inside += mass[y*w+x]
				}
			}
		}
		if inside >= frac*total {
			return r
		}
	}
	return maxR
}

// theoreticalRadius is the analytic receptive-field half-width of block
// b's output at the input.
func theoreticalRadius(cfg models.Config, b int) int {
	need := 0
	geoms := cfg.HaloGeoms(b)
	for i := len(geoms) - 1; i >= 0; i-- {
		need = need*geoms[i][1] + (geoms[i][0]-1)/2
	}
	return need
}

// WriteText prints the per-depth radii.
func (r *LocalityResult) WriteText(w io.Writer) {
	fprintf(w, "Feature locality (Section 2.3): effective receptive field vs depth, %s\n", r.Model)
	fprintf(w, "  %-6s %18s %16s\n", "block", "sensitivity r90", "theoretical RF/2")
	for _, p := range r.Points {
		fprintf(w, "  %-6d %18.1f %16d\n", p.Block, p.Radius90, p.TheoreticalRF)
	}
}

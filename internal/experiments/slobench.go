package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"adcnn/internal/core"
	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

// SLOBench measures the observability stack end to end: how fast does
// the burn-rate SLO engine detect a gray-failing node, does the health
// scorer finger the right one, and does the breach clear once the node
// recovers? The experiment runs a live in-process cluster, streams
// images continuously, calibrates the latency objective from a healthy
// baseline, then makes one node serve tiles factor× slower mid-run —
// the injected equivalent of a thermally-throttled edge device — and
// records every SLO transition with timestamps.

// SLOBenchConfig parameterizes the run; zero values take defaults.
//
// Factor scales the *measured* healthy tile p99, not BaseDelay: the
// injected node's per-tile service time becomes Factor×p99 while the
// objective sits at 2.5×p99, so the slow node is unambiguously bad and
// the healthy nodes unambiguously good regardless of how loaded the
// host running the experiment is.
type SLOBenchConfig struct {
	Nodes      int           // cluster size (default 4)
	BaseDelay  time.Duration // healthy per-tile Conv service time (default 2ms)
	Factor     float64       // injected service time, ×(baseline p99) (default 5)
	FastWindow time.Duration // SLO fast burn window (default 500ms)
	SlowWindow time.Duration // SLO slow burn window (default 2s)
	Baseline   time.Duration // healthy traffic before calibration (default 1.5×slow)
	Timeout    time.Duration // per-phase wait bound (default 6×slow)
}

func (c *SLOBenchConfig) fill() {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 2 * time.Millisecond
	}
	if c.Factor <= 1 {
		c.Factor = 5
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 500 * time.Millisecond
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 2 * time.Second
	}
	if c.Baseline <= 0 {
		c.Baseline = c.SlowWindow + c.SlowWindow/2
	}
	if c.Timeout <= 0 {
		c.Timeout = 6 * c.SlowWindow
	}
}

// SLOTimedTransition is one engine transition stamped relative to the
// run clock.
type SLOTimedTransition struct {
	AtMs float64 `json:"at_ms"` // since run start
	telemetry.SLOTransition
}

// SLOBenchReport is the persisted artifact (BENCH_slo.json).
type SLOBenchReport struct {
	Timestamp string `json:"timestamp"`
	telemetry.Host
	Model string `json:"model"`
	Grid  string `json:"grid"`
	Nodes int    `json:"nodes"`

	BaseDelayMs  float64 `json:"base_delay_ms"`
	Factor       float64 `json:"inject_factor"`
	FastWindowMs float64 `json:"fast_window_ms"`
	SlowWindowMs float64 `json:"slow_window_ms"`

	BaselineP99Ms float64 `json:"baseline_p99_ms"` // calibrated healthy tile p99
	ThresholdMs   float64 `json:"threshold_ms"`    // latency objective derived from it

	InjectNode      int     `json:"inject_node"`
	InjectAtMs      float64 `json:"inject_at_ms"`
	InjectedDelayMs float64 `json:"injected_delay_ms"` // Factor × baseline p99
	PaceMs          float64 `json:"pace_ms"`           // per-image period after calibration

	WarnAtMs           float64   `json:"warn_at_ms"`    // first ok→warn after injection (0 = none)
	BreachAtMs         float64   `json:"breach_at_ms"`  // first →breach after injection (0 = none)
	RecoverAtMs        float64   `json:"recover_at_ms"` // first →ok after the node healed (0 = none)
	DetectionMs        float64   `json:"detection_ms"`  // breach − inject
	WithinTwoFastWin   bool      `json:"within_two_fast_windows"`
	HealthAtBreach     []float64 `json:"health_at_breach,omitempty"`
	WorstNodeAtBreach  int       `json:"worst_node_at_breach"`
	WorstIsInjected    bool      `json:"worst_is_injected"`
	WorstPhaseAtBreach string    `json:"worst_phase_at_breach,omitempty"`

	Images      int                  `json:"images"`
	FlightDumps int                  `json:"flight_dumps"`
	Transitions []SLOTimedTransition `json:"transitions"`
}

// SLOBench runs the slow-node injection experiment.
func SLOBench(cfg SLOBenchConfig) (*SLOBenchReport, error) {
	cfg.fill()
	rep := &SLOBenchReport{
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
		Host:         telemetry.HostInfo(),
		Model:        models.VGGSim().Name,
		Grid:         "2x2",
		Nodes:        cfg.Nodes,
		BaseDelayMs:  ms(cfg.BaseDelay),
		Factor:       cfg.Factor,
		FastWindowMs: ms(cfg.FastWindow),
		SlowWindowMs: ms(cfg.SlowWindow),
		InjectNode:   cfg.Nodes - 1,
	}

	// One tile per node: the injected node's slowdown lands on exactly
	// its share of tiles, so the bad fraction is 1/Nodes by design.
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	reg := telemetry.NewRegistry()
	met := core.NewMetrics(reg)
	c, workers, stop, err := streamRuntime(opt, cfg.Nodes, func(w *core.Worker) {
		w.Delay = cfg.BaseDelay
		w.Metrics = met
	})
	if err != nil {
		return nil, err
	}
	defer stop()
	c.SetMetrics(met)
	flight := telemetry.NewFlightRecorder(0)
	c.SetFlightRecorder(flight)

	// Continuous traffic until the run ends. paceNs, once set, caps the
	// image rate at one per pace period: the injection slows the cluster
	// down, and without pacing that rate shift skews the good/bad tile
	// mix inside the burn windows and stretches the measured detection
	// latency for reasons that have nothing to do with the SLO engine.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var paceNs atomic.Int64
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rand.New(rand.NewSource(7)), 1)
	images := 0
	trafficDone := make(chan error, 1)
	go func() {
		for ctx.Err() == nil {
			t0 := time.Now()
			if _, _, err := c.Infer(x); err != nil {
				if ctx.Err() == nil {
					trafficDone <- err
					return
				}
				break
			}
			images++
			if p := paceNs.Load(); p > 0 {
				if d := time.Duration(p) - time.Since(t0); d > 0 {
					wait(ctx, d)
				}
			}
		}
		trafficDone <- nil
	}()
	start := time.Now()
	since := func(t time.Time) float64 { return ms(t.Sub(start)) }

	// Phase 1 — healthy baseline: warm the EWMAs and the windows, then
	// calibrate everything off the observed healthy p99: the objective at
	// 2.5×p99, the injected service time at Factor×p99 (Factor=5 puts bad
	// tiles at 2× the threshold), and the paced image period comfortably
	// above the injected delay so throughput holds through the injection.
	wait(ctx, cfg.Baseline)
	p99 := met.TileLatencyWindow.Quantile(cfg.SlowWindow, 0.99)
	if p99 <= 0 || p99 != p99 {
		cancel()
		<-trafficDone
		return nil, fmt.Errorf("experiments: no baseline traffic (p99=%v)", p99)
	}
	rep.BaselineP99Ms = p99 * 1e3
	threshold := 2.5 * p99
	rep.ThresholdMs = threshold * 1e3
	injectDelay := time.Duration(cfg.Factor * p99 * float64(time.Second))
	rep.InjectedDelayMs = ms(injectDelay)
	pace := injectDelay + injectDelay/2
	paceNs.Store(int64(pace))
	rep.PaceMs = ms(pace)

	engine := core.NewSLOEngine(met, core.SLOConfig{
		TileP99:    threshold,
		MissBudget: -1, // latency objective only: no tiles are dropped here
		FastWindow: cfg.FastWindow,
		SlowWindow: cfg.SlowWindow,
	})
	c.WireSLO(engine)
	var mu sync.Mutex
	var transitions []SLOTimedTransition
	engine.Subscribe(func(tr telemetry.SLOTransition) {
		mu.Lock()
		transitions = append(transitions, SLOTimedTransition{AtMs: since(tr.At), SLOTransition: tr})
		mu.Unlock()
	})
	go engine.Run(ctx, cfg.FastWindow/10)

	// Let the engine judge the healthy state and let a full slow window
	// of paced traffic accumulate, so the windows hold a uniform-density
	// stream when the injection hits.
	wait(ctx, cfg.SlowWindow)

	// Phase 2 — inject: the last node serves tiles at Factor× the
	// healthy p99.
	injectAt := time.Now()
	rep.InjectAtMs = since(injectAt)
	workers[rep.InjectNode].SetDelay(injectDelay)

	seen := func(to telemetry.SLOState, after float64) (float64, bool) {
		mu.Lock()
		defer mu.Unlock()
		for _, tr := range transitions {
			if tr.To == to && tr.AtMs >= after {
				return tr.AtMs, true
			}
		}
		return 0, false
	}
	breachAt, ok := waitFor(ctx, cfg.Timeout, func() (float64, bool) {
		return seen(telemetry.SLOBreach, rep.InjectAtMs)
	})
	if ok {
		rep.BreachAtMs = breachAt
		rep.DetectionMs = breachAt - rep.InjectAtMs
		rep.WithinTwoFastWin = rep.DetectionMs <= 2*ms(cfg.FastWindow)
		if at, ok := seen(telemetry.SLOWarn, rep.InjectAtMs); ok {
			rep.WarnAtMs = at
		}
		rep.HealthAtBreach = c.Health().Scores()
		node, _, phase := c.Health().Worst()
		rep.WorstNodeAtBreach = node
		rep.WorstIsInjected = node == rep.InjectNode
		rep.WorstPhaseAtBreach = phase
	}

	// Phase 3 — recover: restore the node and wait for the breach to
	// drain out of the slow window.
	recoverStart := time.Now()
	workers[rep.InjectNode].SetDelay(cfg.BaseDelay)
	if ok {
		if at, found := waitFor(ctx, cfg.Timeout, func() (float64, bool) {
			return seen(telemetry.SLOOK, since(recoverStart))
		}); found {
			rep.RecoverAtMs = at
		}
	}

	cancel()
	if err := <-trafficDone; err != nil {
		return nil, err
	}
	rep.Images = images
	rep.FlightDumps = len(flight.Dumps())
	mu.Lock()
	rep.Transitions = transitions
	mu.Unlock()
	return rep, nil
}

// wait sleeps d or until ctx is done.
func wait(ctx context.Context, d time.Duration) {
	select {
	case <-time.After(d):
	case <-ctx.Done():
	}
}

// waitFor polls cond (10ms cadence) until it reports found, the timeout
// elapses, or ctx is done.
func waitFor(ctx context.Context, timeout time.Duration, cond func() (float64, bool)) (float64, bool) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		if v, ok := cond(); ok {
			return v, true
		}
		wait(ctx, 10*time.Millisecond)
	}
	return cond()
}

// WriteJSON writes the report, indented, to path.
func (r *SLOBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteText renders the detection timeline.
func (r *SLOBenchReport) WriteText(w io.Writer) {
	fprintf(w, "SLO slow-node injection (%s %s, %d nodes, %s/%s, %d CPUs)\n",
		r.Model, r.Grid, r.Nodes, r.GOOS, r.GOARCH, r.NumCPU)
	fprintf(w, "  baseline p99 %.2fms -> objective p99 < %.2fms (windows %0.fms/%0.fms, burn warn/breach %.0f/%.0f)\n",
		r.BaselineP99Ms, r.ThresholdMs, r.FastWindowMs, r.SlowWindowMs,
		telemetry.DefaultWarnBurn, telemetry.DefaultBreachBurn)
	fprintf(w, "  injected node %d at %.0fms: %.1fms per-tile service time (%.0fx baseline p99; healthy base %.1fms, pace %.1fms/image)\n",
		r.InjectNode, r.InjectAtMs, r.InjectedDelayMs, r.Factor, r.BaseDelayMs, r.PaceMs)
	if r.BreachAtMs > 0 {
		fprintf(w, "  warn at %.0fms, breach at %.0fms -> detection latency %.0fms (within 2 fast windows: %v)\n",
			r.WarnAtMs, r.BreachAtMs, r.DetectionMs, r.WithinTwoFastWin)
		fprintf(w, "  health at breach %v -> worst node %d (%s), injected-node attribution: %v\n",
			r.HealthAtBreach, r.WorstNodeAtBreach, r.WorstPhaseAtBreach, r.WorstIsInjected)
	} else {
		fprintf(w, "  NO BREACH DETECTED within the timeout\n")
	}
	if r.RecoverAtMs > 0 {
		fprintf(w, "  recovered (ok) at %.0fms, %.0fms after the node healed\n",
			r.RecoverAtMs, r.RecoverAtMs-r.BreachAtMs)
	}
	fprintf(w, "  %d images streamed, %d flight dumps, %d SLO transitions\n",
		r.Images, r.FlightDumps, len(r.Transitions))
	for _, tr := range r.Transitions {
		fprintf(w, "    %8.0fms  %-18s %-5s -> %-6s  %s\n",
			tr.AtMs, tr.Objective, tr.FromName, tr.ToName, tr.Detail)
	}
}

package experiments

import (
	"io"

	"adcnn/internal/models"
	"adcnn/internal/perfmodel"
)

// Fig3Block is one bar of Figure 3: a layer block's execution time on a
// Raspberry Pi and its input feature-map size.
type Fig3Block struct {
	Name    string
	TimeMs  float64
	IfmapMB float64
}

// Fig3Model is one subplot of Figure 3.
type Fig3Model struct {
	Model  string
	Blocks []Fig3Block
	HeadMs float64
}

// Figure3Result reproduces Figure 3 ("Execution time and ifmap size of
// each layer block for different types of CNNs on Raspberry Pi").
type Figure3Result struct {
	Models []Fig3Model
}

// Figure3 computes the per-layer-block profile of VGG16, ResNet18, FCN
// and CharCNN on the calibrated Pi model.
func Figure3() Figure3Result {
	pi := perfmodel.RaspberryPi()
	var out Figure3Result
	for _, cfg := range []models.Config{models.VGG16(), models.ResNet18(), models.FCN(), models.CharCNN()} {
		m := Fig3Model{Model: cfg.Name}
		for _, b := range cfg.Profile() {
			m.Blocks = append(m.Blocks, Fig3Block{
				Name:    b.Name,
				TimeMs:  ms(pi.Time(b.FLOPs, b.IfmapBytes+b.OfmapBytes)),
				IfmapMB: float64(b.IfmapBytes) / 1e6,
			})
		}
		h := cfg.HeadProfile()
		m.HeadMs = ms(pi.Time(h.FLOPs, h.IfmapBytes+h.OfmapBytes))
		out.Models = append(out.Models, m)
	}
	return out
}

// WriteText prints the figure as rows.
func (r Figure3Result) WriteText(w io.Writer) {
	fprintf(w, "Figure 3: per-layer-block execution time and ifmap size (Raspberry Pi)\n")
	for _, m := range r.Models {
		fprintf(w, "\n%s:\n  %-8s %10s %10s\n", m.Model, "block", "time(ms)", "ifmap(MB)")
		for _, b := range m.Blocks {
			fprintf(w, "  %-8s %10.2f %10.3f\n", b.Name, b.TimeMs, b.IfmapMB)
		}
		fprintf(w, "  %-8s %10.2f\n", "FC/head", m.HeadMs)
	}
}

// EarlyShare returns the latency fraction of the first n blocks of one
// model (the paper: first 4 VGG16 blocks ≈ 41.4%).
func (r Figure3Result) EarlyShare(model string, n int) float64 {
	for _, m := range r.Models {
		if m.Model != model {
			continue
		}
		var first, total float64
		for i, b := range m.Blocks {
			total += b.TimeMs
			if i < n {
				first += b.TimeMs
			}
		}
		total += m.HeadMs
		if total == 0 {
			return 0
		}
		return first / total
	}
	return 0
}

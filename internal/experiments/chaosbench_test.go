package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestChaosBenchReducedSchedule runs the crash and clock-skew drills at
// reduced window sizes — the two schedules that exercise the most
// concurrency-sensitive machinery (session teardown/reconnect and the
// probe-fed offset estimator), which is what a race-enabled CI pass is
// for. The full four-drill schedule, including the three-act bandwidth
// collapse, runs un-instrumented in the chaos CI job via
// `adcnn-bench -exp chaos`.
func TestChaosBenchReducedSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live-cluster drill schedule")
	}
	rep, err := ChaosBench(ChaosBenchConfig{
		FastWindow: 250 * time.Millisecond,
		SlowWindow: time.Second,
		// Race instrumentation plus a contended CI host stretch every
		// timeline; the drills assert behavior, not wall-clock budgets.
		Timeout: 20 * time.Second,
		Drills:  []string{"crash", "skew"},
	})
	if err != nil {
		t.Fatalf("ChaosBench: %v", err)
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	t.Logf("report:\n%s", sb.String())
	for _, d := range rep.Drills {
		for _, c := range d.Checks {
			if !c.OK {
				t.Errorf("drill %s: check %s failed: %s", d.Drill, c.Name, c.Detail)
			}
		}
		if d.FailedImages != 0 {
			t.Errorf("drill %s: %d images failed", d.Drill, d.FailedImages)
		}
	}
	if !rep.Pass {
		t.Error("reduced chaos schedule did not pass")
	}
}
